(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§5) plus the Theorem 6.1 experiment, printing measured
   values next to the published ones, and runs Bechamel micro-benchmarks of
   the critical inner operations.

   Usage:  dune exec bench/main.exe -- [SECTION]... [--full] [--seed N]
   Sections: fig6 fig7 table1 semijoin micro (default: all).
   Quick mode uses reduced scales and run counts so the whole suite stays
   in CI budgets; --full approaches the paper's parameters. *)

module E = Jqi_experiments
module Synth = Jqi_synth.Synth
module Tpch = Jqi_tpch.Tpch
module Universe = Jqi_core.Universe
module State = Jqi_core.State
module Strategy = Jqi_core.Strategy
module Entropy = Jqi_core.Entropy
module Prng = Jqi_util.Prng
module Bits = Jqi_util.Bits
module Obs = Jqi_obs.Obs

let section_header title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 78 '=') title (String.make 78 '=')

(* Typed comparisons for the result checks below (R1: no polymorphic
   compare in Value-adjacent code). *)
let int_array_equal a b =
  Int.equal (Array.length a) (Array.length b)
  &&
  let rec go i = i >= Array.length a || (Int.equal a.(i) b.(i) && go (i + 1)) in
  go 0

let int_array_compare a b =
  let n = min (Array.length a) (Array.length b) in
  let rec go i =
    if i >= n then Int.compare (Array.length a) (Array.length b)
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

(* --universe: which constructor builds the fig6/fig7 universes (mirrors
   jqinfer's flag), so those sections report which builder produced their
   timings.  The quotient is the default everywhere. *)
let universe_builder_of ~seed spec =
  match String.lowercase_ascii (String.trim spec) with
  | "naive" -> Some Universe.build_naive
  | "quotient" -> Some Universe.build_quotient
  | "parallel" -> Some (fun r p -> Universe.build_parallel r p)
  | s when String.length s > 8 && String.equal (String.sub s 0 8) "sampled:" -> (
      match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
      | Some pairs when pairs > 0 ->
          Some (fun r p -> Universe.build_sampled (Prng.create seed) ~pairs r p)
      | Some _ | None -> None)
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Figure 6: TPC-H experiments.                                        *)
(* ------------------------------------------------------------------ *)

(* Lookahead acceleration: fast vs reference L1S/L2S on the two §5.1 joins
   with the largest signature quotients (Joins 4 and 5), full inference
   runs against the honest oracle.  The engines must agree question for
   question (the differential guarantee the test suite enforces); here we
   record the per-choice latency gap and emit it as BENCH_lookahead.json
   for CI artifacts. *)
let run_lookahead_bench ~seed =
  let module Json = Jqi_util.Json in
  Printf.printf
    "\n--- Lookahead acceleration: fast vs reference engine (scale=1) ---\n";
  let db = Tpch.generate ~seed ~scale:1 () in
  let joins = Tpch.joins db in
  let picks = [ List.nth joins 3; List.nth joins 4 ] in
  let entries =
    List.concat_map
      (fun (join : Tpch.goal_join) ->
        let universe = Universe.build join.r join.p in
        let omega = Universe.omega universe in
        let goal = Tpch.goal_predicate omega join in
        List.map
          (fun k ->
            let run strategy =
              Jqi_core.Inference.run universe strategy
                (Jqi_core.Oracle.honest ~goal)
            in
            let fast = run (Strategy.lks k) in
            let reference = run (Strategy.lks_reference k) in
            (* One extra instrumented run per entry: the oracle-interaction
               and engine counters that go with the timings. *)
            let metrics =
              let was_enabled = Obs.enabled () in
              Obs.reset ();
              Obs.set_enabled true;
              ignore (run (Strategy.lks k));
              let report = Obs.Report.snapshot () in
              Obs.set_enabled was_enabled;
              let grab name = (name, Json.int (Obs.Report.counter report name)) in
              Json.Obj
                (List.map grab
                   [
                     "oracle.questions"; "oracle.answers_positive";
                     "oracle.answers_negative"; "lookahead.branch_cache_hit";
                     "lookahead.branch_cache_miss"; "lookahead.candidates_scored";
                     "lookahead.candidates_pruned"; "state.certainty_scans";
                   ])
            in
            let per_choice (r : Jqi_core.Inference.result) =
              r.elapsed /. float_of_int (max 1 r.n_interactions)
            in
            let speedup = per_choice reference /. per_choice fast in
            let traces_match =
              List.equal
                (fun (c1, l1) (c2, l2) ->
                  Int.equal c1 c2 && Jqi_core.Sample.equal_label l1 l2)
                fast.steps reference.steps
              && Int.equal fast.n_interactions reference.n_interactions
            in
            Printf.printf
              "  %-22s L%dS: fast %8.3f ms/choice (%2d questions), reference \
               %8.3f ms/choice (%2d questions), speedup %6.1fx, traces %s\n"
              join.label k
              (per_choice fast *. 1e3)
              fast.n_interactions
              (per_choice reference *. 1e3)
              reference.n_interactions speedup
              (if traces_match then "identical" else "DIVERGED");
            Json.Obj
              [
                ("join", Json.Str join.label);
                ("k", Json.int k);
                ("classes", Json.int (Universe.n_classes universe));
                ("fast_ms_per_choice", Json.Num (per_choice fast *. 1e3));
                ("reference_ms_per_choice", Json.Num (per_choice reference *. 1e3));
                ("speedup", Json.Num speedup);
                ("interactions_fast", Json.int fast.n_interactions);
                ("interactions_reference", Json.int reference.n_interactions);
                ("traces_match", Json.Bool traces_match);
                ("metrics", metrics);
              ])
          [ 1; 2 ])
      picks
  in
  let path = "BENCH_lookahead.json" in
  Json.save_file path
    (Json.Obj [ ("seed", Json.int seed); ("runs", Json.List entries) ]);
  Printf.printf "wrote %s\n" path

let run_fig6 ~full ~seed ~builder ~builder_label =
  section_header
    (Printf.sprintf
       "Figure 6 — TPC-H: interactions (6a/6b) and time (6c/6d) [universe \
        builder: %s]"
       builder_label);
  let small = { E.Fig6.name = "small"; scale = (if full then 3 else 1); seed } in
  let large = { E.Fig6.name = "large"; scale = (if full then 10 else 3); seed } in
  let run_setting (setting : E.Fig6.setting) paper_times sub_int sub_time =
    let results = E.Fig6.run ~builder setting in
    Printf.printf "\n--- Figure %s: interactions, %s scale (scale=%d) ---\n"
      sub_int setting.name setting.scale;
    print_string
      (E.Fig6.interactions_chart
         ~title:
           (Printf.sprintf
              "Interactions per goal join (%s scale). Paper shape: size-1 joins \
               need 2-4 interactions, the size-2 join needs the most; TD/L2S win."
              setting.name)
         results);
    Printf.printf "\n--- Figure %s: inference time in seconds, %s scale ---\n"
      sub_time setting.name;
    print_string (E.Fig6.time_table ~paper:paper_times results);
    Printf.printf
      "(paper columns are %s on the authors' Python/testbed — compare shape, \
       not absolutes)\n"
      (String.concat "/" E.Paper.strategy_order);
    results
  in
  let small_results = run_setting small E.Paper.fig6c_times_sf1 "6a" "6c" in
  let large_results = run_setting large E.Paper.fig6d_times_sf100000 "6b" "6d" in
  run_lookahead_bench ~seed;
  (small_results, large_results)

(* ------------------------------------------------------------------ *)
(* Figure 7: synthetic experiments.                                    *)
(* ------------------------------------------------------------------ *)

let fig7_parts =
  [ ("a", "c"); ("b", "d"); ("e", "g"); ("f", "h"); ("i", "k"); ("j", "l") ]

let run_fig7 ~full ~seed ~builder ~builder_label =
  section_header
    (Printf.sprintf
       "Figure 7 — synthetic datasets: interactions and time [universe \
        builder: %s]"
       builder_label);
  let runs = if full then 100 else 10 in
  let goals_per_size = if full then None else Some 3 in
  List.map2
    (fun config ((int_part, time_part), (config_label, paper_times)) ->
      let result =
        match goals_per_size with
        | None -> E.Fig7.run ~builder ~seed ~runs config
        | Some k -> E.Fig7.run ~builder ~seed ~runs ~goals_per_size:k config
      in
      Printf.printf "\n--- Figure 7%s: interactions, config %s (%d runs) ---\n"
        int_part config_label runs;
      print_string (E.Fig7.interactions_chart result);
      Printf.printf "\n--- Figure 7%s: inference time (s), config %s ---\n"
        time_part config_label;
      print_string (E.Fig7.time_table ~paper:paper_times result);
      result)
    Synth.paper_configs
    (List.combine fig7_parts E.Paper.fig7_times)

(* ------------------------------------------------------------------ *)
(* Table 1: the summary.                                               *)
(* ------------------------------------------------------------------ *)

let run_table1 ~fig6_results ~fig7_results =
  section_header "Table 1 — summary of all experiments";
  let small_results, large_results = fig6_results in
  let paper_tpch rows =
    List.map
      (fun (r : E.Paper.table1_row) ->
        (String.concat "/" r.best, r.best_interactions))
      rows
  in
  Printf.printf "\nTPC-H, small scale (paper: SF=1):\n";
  print_string
    (E.Table1.render
       ~paper_hint:(paper_tpch E.Paper.table1_tpch_sf1)
       (E.Table1.of_fig6 ~dataset:"TPC-H small" small_results));
  Printf.printf "\nTPC-H, large scale (paper: SF=100000):\n";
  print_string
    (E.Table1.render
       ~paper_hint:(paper_tpch E.Paper.table1_tpch_sf100000)
       (E.Table1.of_fig6 ~dataset:"TPC-H large" large_results));
  List.iter2
    (fun (result : E.Fig7.config_result) (block : E.Paper.synth_block) ->
      Printf.printf "\nSynthetic %s (paper join ratio %.3f, ours %.3f):\n"
        block.config block.join_ratio result.join_ratio;
      print_string
        (E.Table1.render
           ~paper_hint:
             (Array.to_list
                (Array.map (fun (b, i, _) -> (b, i)) block.by_size))
           (E.Table1.of_fig7 result)))
    fig7_results E.Paper.table1_synth

(* ------------------------------------------------------------------ *)
(* Theorem 6.1: semijoin consistency.                                  *)
(* ------------------------------------------------------------------ *)

let run_semijoin ~full ~seed =
  section_header
    "Theorem 6.1 — CONS⋉ via the 3SAT reduction (agreement and scaling)";
  let sizes =
    if full then
      [ (3, 8); (4, 12); (5, 16); (6, 20); (8, 28); (10, 40); (12, 48) ]
    else [ (3, 8); (4, 12); (5, 16); (6, 20) ]
  in
  let per_point = if full then 20 else 5 in
  let points = E.Semijoin_exp.run ~seed ~per_point sizes in
  print_string (E.Semijoin_exp.render points);
  if List.for_all (fun (p : E.Semijoin_exp.point) -> p.agree) points then
    print_endline
      "All reduced instances agree with the 3SAT answer, as Theorem 6.1 requires."
  else print_endline "MISMATCH DETECTED — the reduction or a solver is wrong."

(* ------------------------------------------------------------------ *)
(* Scaling: interactions stay lattice-bound as the instance grows.     *)
(* ------------------------------------------------------------------ *)

let run_scaling ~full ~seed =
  section_header
    "Scaling — quotient size and interactions vs instance size (§5 claim)";
  let row_counts = if full then [ 25; 50; 100; 200; 400; 800 ] else [ 25; 50; 100; 200 ] in
  let runs = if full then 10 else 3 in
  let points = E.Scaling.run ~seed ~runs row_counts in
  print_string (E.Scaling.render points);
  print_endline
    "(build time grows with |D| = l², but the class count and the question \
     counts track the lattice, not the product — the quotient is what makes \
     the interactive protocol scale)";
  (* Sampled universes: the escape hatch when even one scan of |D| is too
     much (§1 "instances may be too big to be skimmed").  Same instance,
     full scan vs uniform draws. *)
  let rows = List.fold_left max 0 row_counts in
  let prng = Prng.create seed in
  let r, p = Synth.generate prng (Synth.config 3 3 rows 100) in
  let full_u = Universe.build r p in
  let draws = (rows * rows) / 10 in
  let sampled_u = Universe.build_sampled (Prng.create seed) ~pairs:draws r p in
  let goal =
    match Jqi_synth.Synth.goals_of_size full_u ~size:1 with
    | g :: _ -> g
    | [] -> Jqi_core.Omega.empty (Universe.omega full_u)
  in
  let infer u =
    let result =
      Jqi_core.Inference.run u Strategy.td (Jqi_core.Oracle.honest ~goal)
    in
    result.n_interactions
  in
  Printf.printf
    "\nSampled universe on the %dx%d instance (10%% of |D| drawn): full scan \
     sees %d classes and TD asks %d questions; the sample sees %d classes \
     and TD asks %d.\n"
    rows rows (Universe.n_classes full_u) (infer full_u)
    (Universe.n_classes sampled_u) (infer sampled_u)

(* ------------------------------------------------------------------ *)
(* Ablation: heuristics vs the minimax optimum, and the extension      *)
(* strategies (L3S, IGS) the paper's §7 points toward.                 *)
(* ------------------------------------------------------------------ *)

let run_ablation ~full ~seed =
  section_header
    "Ablation — strategies vs the minimax optimum (small instances, §4.1)";
  let prng = Prng.create seed in
  let instances = if full then 30 else 8 in
  let config = Synth.config 2 2 6 3 in
  Printf.printf
    "%d random %s instances; goals = all distinct signatures + ∅ + Ω.\n\
     OPT is the exponential minimax strategy — the lower bound the paper \
     proves exists but cannot run at scale.\n"
    instances
    (Fmt.str "%a" Synth.pp_config config);
  let strategies u =
    [
      ("BU", Strategy.bu);
      ("TD", Strategy.td);
      ("L1S", Strategy.l1s);
      ("L2S", Strategy.l2s);
      ("L3S", Strategy.lks 3);
      ("IGS", Strategy.igs ~samples:128 (Prng.create seed));
      ("TD+L2S", Strategy.hybrid);
      ("RND", Strategy.rnd (Prng.create seed));
      ("OPT", Jqi_core.Minimax.strategy u);
    ]
  in
  let totals = Hashtbl.create 8 in
  let n_runs = ref 0 in
  for _ = 1 to instances do
    let r, p = Synth.generate prng config in
    let universe = Universe.build r p in
    let omega = Universe.omega universe in
    let goals =
      Jqi_core.Omega.empty omega :: Jqi_core.Omega.full omega
      :: Universe.signatures universe
    in
    List.iter
      (fun goal ->
        incr n_runs;
        List.iter
          (fun (name, strategy) ->
            let result =
              Jqi_core.Inference.run universe strategy
                (Jqi_core.Oracle.honest ~goal)
            in
            let ints, time =
              Option.value ~default:(0, 0.) (Hashtbl.find_opt totals name)
            in
            Hashtbl.replace totals name
              (ints + result.n_interactions, time +. result.elapsed))
          (strategies universe))
      goals
  done;
  let rows =
    List.filter_map
      (fun name ->
        Option.map
          (fun (ints, time) ->
            ( name,
              float_of_int ints /. float_of_int !n_runs,
              time /. float_of_int !n_runs ))
          (Hashtbl.find_opt totals name))
      [ "OPT"; "L3S"; "L2S"; "TD+L2S"; "L1S"; "IGS"; "TD"; "BU"; "RND" ]
  in
  let opt_mean =
    match rows with ("OPT", m, _) :: _ -> m | _ -> nan
  in
  print_string
    (Jqi_util.Ascii_table.render
       ~headers:[ "strategy"; "avg interactions"; "vs OPT"; "avg time (s)" ]
       (List.map
          (fun (name, ints, time) ->
            [
              name;
              Printf.sprintf "%.2f" ints;
              Printf.sprintf "%+.1f%%" ((ints /. opt_mean -. 1.) *. 100.);
              Printf.sprintf "%.5f" time;
            ])
          rows));
  Printf.printf
    "(%d inference runs per strategy; OPT plays minimax against the \
     worst-case answer sequence, so heuristics can tie or even beat it on \
     specific goals while never beating its worst case)\n"
    !n_runs

(* ------------------------------------------------------------------ *)
(* Universe construction: naive vs quotient vs parallel (ISSUE 4).     *)
(* ------------------------------------------------------------------ *)

(* A/B of the universe builders on a duplicate-heavy TPC-H-shaped
   instance: lineitem and orders projected onto their low-cardinality
   flag/status/priority columns (the §5.1 table shapes with the key
   columns dropped), so row profiles repeat heavily and the quotient
   collapses the |R|·|P| scan to the distinct-profile product.  All three
   exact builders must produce identical universes — classes, counts and
   representatives — which is asserted here and by CI on the emitted
   BENCH_universe.json. *)
let run_universe ~full ~seed =
  let module Json = Jqi_util.Json in
  let module Algebra = Jqi_relational.Algebra in
  let module Relation = Jqi_relational.Relation in
  section_header
    "Universe construction — naive vs quotient vs parallel (profile quotient)";
  let scales = if full then [ 4; 16 ] else [ 2; 8 ] in
  let universes_equal u1 u2 =
    Int.equal (Universe.n_classes u1) (Universe.n_classes u2)
    && (let rec go i =
          i >= Universe.n_classes u1
          || Bits.equal (Universe.signature u1 i) (Universe.signature u2 i)
             && Int.equal (Universe.count u1 i) (Universe.count u2 i)
             && int_array_equal (Universe.cls u1 i).Universe.rep
                  (Universe.cls u2 i).Universe.rep
             && go (i + 1)
        in
        go 0)
  in
  let time_best f =
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to 3 do
      let x, dt = Jqi_util.Timer.time f in
      if dt < !best then best := dt;
      result := Some x
    done;
    (Option.get !result, !best)
  in
  let entries =
    List.map
      (fun scale ->
        let db = Tpch.generate ~seed ~scale () in
        let r =
          Algebra.project db.lineitem
            [ "l_returnflag"; "l_linestatus"; "l_shipmode" ]
        in
        let p =
          Algebra.project db.orders
            [ "o_orderstatus"; "o_orderpriority"; "o_shippriority" ]
        in
        let naive_u, naive_s = time_best (fun () -> Universe.build_naive r p) in
        let quot_u, quot_s = time_best (fun () -> Universe.build_quotient r p) in
        let par_u, par_s =
          time_best (fun () -> Universe.build_parallel ~domains:4 r p)
        in
        (* One instrumented quotient build for the profile/dict counters. *)
        let was_enabled = Obs.enabled () in
        Obs.reset ();
        Obs.set_enabled true;
        ignore (Universe.build_quotient r p);
        let counter name = Obs.Counter.find name in
        let profiles_r = counter "universe.profiles_r" in
        let profiles_p = counter "universe.profiles_p" in
        let dict_values = counter "universe.dict_values" in
        let pairs_skipped = counter "universe.pairs_skipped" in
        Obs.set_enabled was_enabled;
        let identical = universes_equal naive_u quot_u && universes_equal naive_u par_u in
        let speedup_quot = naive_s /. quot_s in
        let speedup_par = naive_s /. par_s in
        Printf.printf
          "  scale %2d: %4d x %4d rows (|D| = %7d), %3d x %2d profiles, %d \
           dict values, %d classes\n\
          \    naive    %8.2f ms\n\
          \    quotient %8.2f ms  (%.1fx)\n\
          \    parallel %8.2f ms  (%.1fx, 4 domains)\n\
          \    universes %s\n"
          scale (Relation.cardinality r) (Relation.cardinality p)
          (Relation.cardinality r * Relation.cardinality p)
          profiles_r profiles_p dict_values (Universe.n_classes quot_u)
          (naive_s *. 1e3) (quot_s *. 1e3) speedup_quot (par_s *. 1e3)
          speedup_par
          (if identical then "identical" else "DIVERGED");
        Json.Obj
          [
            ("scale", Json.int scale);
            ("rows_r", Json.int (Relation.cardinality r));
            ("rows_p", Json.int (Relation.cardinality p));
            ("profiles_r", Json.int profiles_r);
            ("profiles_p", Json.int profiles_p);
            ("dict_values", Json.int dict_values);
            ("pairs_skipped", Json.int pairs_skipped);
            ("classes", Json.int (Universe.n_classes quot_u));
            ("naive_s", Json.Num naive_s);
            ("quotient_s", Json.Num quot_s);
            ("parallel_s", Json.Num par_s);
            ("speedup_quotient", Json.Num speedup_quot);
            ("speedup_parallel", Json.Num speedup_par);
            ("identical", Json.Bool identical);
          ])
      scales
  in
  let path = "BENCH_universe.json" in
  Json.save_file path
    (Json.Obj
       [
         ("seed", Json.int seed);
         ( "instance",
           Json.Str
             "TPC-H lineitem(returnflag,linestatus,shipmode) x \
              orders(orderstatus,orderpriority,shippriority) — \
              duplicate-heavy projections" );
         ("entries", Json.List entries);
       ]);
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* k-ary joins: Leapfrog Triejoin vs composition vs naive (ISSUE 7).   *)
(* ------------------------------------------------------------------ *)

(* Three-table TPC-H chain part ⋈ partsupp ⋈ supplier on the natural
   keys.  Three measurements: (a) the k-ary quotient universe against
   its Cartesian reference (identical classes, large speedup), (b) the
   triejoin evaluator against left-deep hash composition and the naive
   nested loop (equal multisets, triejoin beating naive), and (c) k-ary
   inference convergence under BU/TD/L2S with an honest oracle.
   Results land in BENCH_KARY.json; CI asserts the identity bits and the
   triejoin-vs-naive speedup. *)
let run_kary ~full ~seed =
  let module Json = Jqi_util.Json in
  let module Algebra = Jqi_relational.Algebra in
  let module Relation = Jqi_relational.Relation in
  let module Leapfrog = Jqi_relational.Leapfrog in
  let module Ordering = Jqi_joinpath.Ordering in
  let module Omega = Jqi_core.Omega in
  let module Inference = Jqi_core.Inference in
  let module Oracle = Jqi_core.Oracle in
  section_header
    "k-ary joins — Leapfrog Triejoin vs pairwise composition vs naive";
  let scale = if full then 4 else 2 in
  let db = Tpch.generate ~seed ~scale () in
  let part = Algebra.project db.part [ "p_partkey"; "p_size" ] in
  let partsupp = Algebra.project db.partsupp [ "ps_partkey"; "ps_suppkey" ] in
  let supplier = Algebra.project db.supplier [ "s_suppkey"; "s_nationkey" ] in
  let rels = [| part; partsupp; supplier |] in
  let rel_list = [ part; partsupp; supplier ] in
  let eqs = [ ((0, 0), (1, 0)); ((1, 1), (2, 0)) ] in
  let time_best f =
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to 3 do
      let x, dt = Jqi_util.Timer.time f in
      if dt < !best then best := dt;
      result := Some x
    done;
    (Option.get !result, !best)
  in
  (* (a) universe: profile-trie walk vs Cartesian reference, on
     duplicate-heavy projections where quotienting can pay (unique-key
     columns have one profile per row, so there the two builders do the
     same work). *)
  let lw = Algebra.project db.lineitem [ "l_returnflag"; "l_linestatus"; "l_shipmode" ] in
  let ow = Algebra.project db.orders [ "o_orderstatus"; "o_orderpriority" ] in
  let cw = Algebra.project db.customer [ "c_mktsegment" ] in
  let wide_list = [ lw; ow; cw ] in
  let kary_u, kary_s = time_best (fun () -> Universe.build_kary wide_list) in
  let naive_u, naive_s =
    time_best (fun () -> Universe.build_kary_naive wide_list)
  in
  let universes_equal u1 u2 =
    Int.equal (Universe.n_classes u1) (Universe.n_classes u2)
    && (let rec go i =
          i >= Universe.n_classes u1
          || Bits.equal (Universe.signature u1 i) (Universe.signature u2 i)
             && Int.equal (Universe.count u1 i) (Universe.count u2 i)
             && int_array_equal (Universe.cls u1 i).Universe.rep
                  (Universe.cls u2 i).Universe.rep
             && go (i + 1)
        in
        go 0)
  in
  let u_identical = universes_equal kary_u naive_u in
  let u_speedup = naive_s /. kary_s in
  Printf.printf
    "  universe: %d x %d x %d rows (|D| = %d), %d classes\n\
    \    kary     %8.2f ms\n\
    \    naive    %8.2f ms  (%.1fx)\n\
    \    universes %s\n"
    (Relation.cardinality lw) (Relation.cardinality ow)
    (Relation.cardinality cw)
    (Universe.total_tuples kary_u)
    (Universe.n_classes kary_u) (kary_s *. 1e3) (naive_s *. 1e3) u_speedup
    (if u_identical then "identical" else "DIVERGED");
  (* (b) join evaluation: triejoin vs composition vs nested loop. *)
  let vars = Leapfrog.variables rels eqs in
  let order = Ordering.default vars in
  let tj_rows, tj_s = time_best (fun () -> Leapfrog.join ~order rels eqs) in
  let comp_rows, comp_s = time_best (fun () -> Leapfrog.compose rels eqs) in
  let ref_rows, ref_s = time_best (fun () -> Leapfrog.reference rels eqs) in
  let canon rows =
    let c = Array.map Array.copy rows in
    Array.sort int_array_compare c;
    c
  in
  let rows_agree a b =
    Int.equal (Array.length a) (Array.length b)
    && Array.for_all2 int_array_equal a b
  in
  let agree =
    rows_agree (canon tj_rows) (canon comp_rows)
    && rows_agree (canon tj_rows) (canon ref_rows)
  in
  let speedup_ref = ref_s /. tj_s in
  let speedup_comp = comp_s /. tj_s in
  Printf.printf
    "  join (%d result rows, %d variables):\n\
    \    triejoin %8.3f ms\n\
    \    compose  %8.3f ms  (triejoin %.1fx)\n\
    \    naive    %8.3f ms  (triejoin %.1fx)\n\
    \    results %s\n"
    (Array.length tj_rows) (Array.length vars) (tj_s *. 1e3) (comp_s *. 1e3)
    speedup_comp (ref_s *. 1e3) speedup_ref
    (if agree then "multiset-equal" else "DIVERGED");
  (* (c) inference convergence over the key-chain k-ary universe. *)
  let chain_u = Universe.build_kary rel_list in
  let omega = Universe.omega chain_u in
  let goal =
    Omega.of_names_kary omega
      [
        ("part.p_partkey", "partsupp.ps_partkey");
        ("partsupp.ps_suppkey", "supplier.s_suppkey");
      ]
  in
  let inference_entries =
    List.map
      (fun (name, strategy) ->
        let result = Inference.run chain_u strategy (Oracle.honest ~goal) in
        let verified = Inference.verified chain_u ~goal result in
        Printf.printf "  inference %-4s %4d interactions  %s\n" name
          result.Jqi_core.Inference.n_interactions
          (if verified then "converged" else "NOT instance-equivalent");
        Json.Obj
          [
            ("strategy", Json.Str name);
            ( "n_interactions",
              Json.int result.Jqi_core.Inference.n_interactions );
            ("verified", Json.Bool verified);
          ])
      [
        ("bu", Strategy.bu);
        ("td", Strategy.td);
        ("l2s", Strategy.lks 2);
      ]
  in
  let path = "BENCH_KARY.json" in
  Json.save_file path
    (Json.Obj
       [
         ("seed", Json.int seed);
         ("scale", Json.int scale);
         ( "instance",
           Json.Str
             "universe: TPC-H lineitem x orders x customer duplicate-heavy \
              projections; join/inference: part x partsupp x supplier \
              natural-key chain" );
         ( "universe",
           Json.Obj
             [
               ("classes", Json.int (Universe.n_classes kary_u));
               ("total_tuples", Json.int (Universe.total_tuples kary_u));
               ("kary_s", Json.Num kary_s);
               ("naive_s", Json.Num naive_s);
               ("speedup", Json.Num u_speedup);
               ("identical", Json.Bool u_identical);
             ] );
         ( "join",
           Json.Obj
             [
               ("result_rows", Json.int (Array.length tj_rows));
               ("variables", Json.int (Array.length vars));
               ("triejoin_s", Json.Num tj_s);
               ("compose_s", Json.Num comp_s);
               ("reference_s", Json.Num ref_s);
               ("speedup_vs_naive", Json.Num speedup_ref);
               ("speedup_vs_compose", Json.Num speedup_comp);
               ("agree", Json.Bool agree);
             ] );
         ("inference", Json.List inference_entries);
       ]);
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Out-of-core storage: paged heap files vs in-memory arrays.          *)
(* ------------------------------------------------------------------ *)

(* The flagship storage experiment: TPC-H lineitem and orders are saved
   as CSV, loaded once in memory and once into heap-file stores whose
   page count exceeds the buffer-pool budget (so universe builds really
   do evict), then the quotient universe is built over both backends
   and compared class by class — signatures, counts, representatives
   and join ratio must be byte-identical.  Alongside the A/B we record
   the buffer-pool hit rate of the paged build (sequential heap scans
   pin per record, so a 4 KiB page amortizes ~60 pins per fault —
   the acceptance floor is 0.9), random point-read throughput with its
   page-fault rate, a disk B-tree index probe, and the pinned-frame
   leak check.  Results land in BENCH_STORAGE.json. *)
let run_storage ~full ~seed =
  let module Json = Jqi_util.Json in
  let module Relation = Jqi_relational.Relation in
  let module Csv = Jqi_relational.Csv in
  let module Tuple = Jqi_relational.Tuple in
  let module Relstore = Jqi_storage.Relstore in
  let module Buffer_pool = Jqi_storage.Buffer_pool in
  let module Heap = Jqi_storage.Heap in
  let module Btree = Jqi_storage.Btree in
  section_header "Out-of-core storage — paged heap files vs in-memory arrays";
  let scale = if full then 60 else 20 in
  let frames = 8 in
  let db = Tpch.generate ~seed ~scale () in
  let tmp suffix = Filename.temp_file "jqibench" suffix in
  let r_csv = tmp "-lineitem.csv" and p_csv = tmp "-orders.csv" in
  Csv.save_relation r_csv db.lineitem;
  Csv.save_relation p_csv db.orders;
  (* Memory backend: the whole file becomes tuple arrays. *)
  let (mem_r, mem_p), mem_load_s =
    Jqi_util.Timer.time (fun () ->
        ( Csv.load_relation ~name:"lineitem" r_csv,
          Csv.load_relation ~name:"orders" p_csv ))
  in
  (* Paged backend: rows stream into heap files; keep the store handles
     so we can reach the pools, heaps and point reads directly. *)
  let (store_r, store_p), paged_load_s =
    Jqi_util.Timer.time (fun () ->
        ( Relstore.load_csv ~pool_frames:frames ~dest:(tmp "-lineitem.jqh")
            ~name:"lineitem" r_csv,
          Relstore.load_csv ~pool_frames:frames ~dest:(tmp "-orders.jqh")
            ~name:"orders" p_csv ))
  in
  let paged_r = Relstore.relation store_r in
  let paged_p = Relstore.relation store_p in
  let pages_r = Heap.data_pages (Relstore.heap store_r) in
  let pages_p = Heap.data_pages (Relstore.heap store_p) in
  let out_of_core = pages_r > frames && pages_p > frames in
  Printf.printf
    "  lineitem: %d rows in %d heap pages; orders: %d rows in %d pages; \
     pool budget %d frames each (%s)\n"
    (Relation.cardinality paged_r) pages_r (Relation.cardinality paged_p)
    pages_p frames
    (if out_of_core then "out-of-core" else "FITS IN POOL");
  let fp_equal =
    String.equal (Relation.fingerprint mem_r) (Relation.fingerprint paged_r)
    && String.equal (Relation.fingerprint mem_p) (Relation.fingerprint paged_p)
  in
  (* Quotient universe over both backends; the paged build is bracketed
     by pool-stat resets so the hit rate covers exactly that scan. *)
  let mem_u, mem_build_s =
    Jqi_util.Timer.time (fun () -> Universe.build_quotient mem_r mem_p)
  in
  Buffer_pool.reset_stats (Relstore.pool store_r);
  Buffer_pool.reset_stats (Relstore.pool store_p);
  let paged_u, paged_build_s =
    Jqi_util.Timer.time (fun () -> Universe.build_quotient paged_r paged_p)
  in
  let hit_rate =
    let st_r = Buffer_pool.stats (Relstore.pool store_r) in
    let st_p = Buffer_pool.stats (Relstore.pool store_p) in
    let hits = st_r.Buffer_pool.hits + st_p.Buffer_pool.hits in
    let misses = st_r.Buffer_pool.misses + st_p.Buffer_pool.misses in
    if hits + misses = 0 then 0. else float hits /. float (hits + misses)
  in
  let universes_equal u1 u2 =
    Int.equal (Universe.n_classes u1) (Universe.n_classes u2)
    && Float.equal (Universe.join_ratio u1) (Universe.join_ratio u2)
    && (let rec go i =
          i >= Universe.n_classes u1
          || Bits.equal (Universe.signature u1 i) (Universe.signature u2 i)
             && Int.equal (Universe.count u1 i) (Universe.count u2 i)
             && int_array_equal (Universe.cls u1 i).Universe.rep
                  (Universe.cls u2 i).Universe.rep
             && go (i + 1)
        in
        go 0)
  in
  let identical = universes_equal mem_u paged_u in
  Printf.printf
    "  fingerprints %s; universe: %d classes %s (mem %.2f ms, paged %.2f ms)\n\
    \  buffer-pool hit rate on the universe-build scan: %.4f\n"
    (if fp_equal then "equal" else "DIVERGED")
    (Universe.n_classes paged_u)
    (if identical then "identical" else "DIVERGED")
    (mem_build_s *. 1e3) (paged_build_s *. 1e3) hit_rate;
  (* Random point reads: rid-addressed row fetches through the pool,
     far exceeding the budget so faults are real. *)
  let prng = Prng.create (seed + 1) in
  let n_reads = if full then 50_000 else 20_000 in
  let n_rows = Relstore.row_count store_r in
  Buffer_pool.reset_stats (Relstore.pool store_r);
  let (), read_s =
    Jqi_util.Timer.time (fun () ->
        for _ = 1 to n_reads do
          ignore (Relstore.get_row store_r (Prng.int prng n_rows))
        done)
  in
  let read_stats = Buffer_pool.stats (Relstore.pool store_r) in
  let reads_per_s = float n_reads /. read_s in
  let fault_rate = float read_stats.Buffer_pool.misses /. float n_reads in
  Printf.printf
    "  point reads: %.0f rows/s (%d random reads, fault rate %.3f)\n"
    reads_per_s n_reads fault_rate;
  (* Disk B-tree over l_orderkey: every indexed rid must decode to a row
     whose column equals the probed key's value. *)
  let bt_path = tmp "-lineitem-okey.jqb" in
  let bt = Relstore.index_column ~pool_frames:frames ~path:bt_path store_r 0 in
  let bt_ok = ref (Int.equal (Btree.count bt) n_rows) in
  Btree.iter bt (fun code rid ->
      let row = Relstore.row_of_rid store_r (Int64.to_int rid) in
      let v = Tuple.get row 0 in
      let expect = Relstore.value_of_code store_r (Int64.to_int code) in
      if not (Jqi_relational.Value.eq v expect) then bt_ok := false);
  Printf.printf "  b-tree on l_orderkey: %d entries, height %d, probe %s\n"
    (Btree.count bt) (Btree.height bt)
    (if !bt_ok then "ok" else "MISMATCH");
  let pinned_leaked =
    Buffer_pool.pinned (Relstore.pool store_r)
    + Buffer_pool.pinned (Relstore.pool store_p)
  in
  Printf.printf "  pinned frames leaked after all scans: %d\n" pinned_leaked;
  let path = "BENCH_STORAGE.json" in
  Json.save_file path
    (Json.Obj
       [
         ("seed", Json.int seed);
         ("scale", Json.int scale);
         ( "instance",
           Json.Str
             "TPC-H lineitem x orders, CSV-loaded into heap-file stores \
              under a fixed buffer-pool budget" );
         ("rows_r", Json.int (Relation.cardinality paged_r));
         ("rows_p", Json.int (Relation.cardinality paged_p));
         ("heap_pages_r", Json.int pages_r);
         ("heap_pages_p", Json.int pages_p);
         ("pool_frames", Json.int frames);
         ("out_of_core", Json.Bool out_of_core);
         ("load_mem_s", Json.Num mem_load_s);
         ("load_paged_s", Json.Num paged_load_s);
         ("classes", Json.int (Universe.n_classes paged_u));
         ("universe_mem_s", Json.Num mem_build_s);
         ("universe_paged_s", Json.Num paged_build_s);
         ("fingerprints_equal", Json.Bool fp_equal);
         ("identical", Json.Bool identical);
         ("hit_rate", Json.Num hit_rate);
         ("point_reads_per_s", Json.Num reads_per_s);
         ("point_read_fault_rate", Json.Num fault_rate);
         ("btree_entries", Json.int (Btree.count bt));
         ("btree_height", Json.int (Btree.height bt));
         ("btree_ok", Json.Bool !bt_ok);
         ("pinned_leaked", Json.int pinned_leaked);
       ]);
  Btree.close bt;
  Relstore.close store_r;
  Relstore.close store_p;
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Data churn: incremental universe maintenance vs rebuild.            *)
(* ------------------------------------------------------------------ *)

(* The delta pipeline's headline number: updates/s through
   [Universe.apply_delta] vs re-running [Universe.build] after every
   batch, on a duplicate-heavy synthetic pair (small value domain, so
   deltas mostly shuffle class multiplicities — the incremental sweet
   spot).  The same pre-generated edit script drives both sides at each
   batch size, half deletions of live rows and half fresh insertions,
   and the final universes must be byte-identical — the differential
   guarantee test/test_churn.ml pins per batch, asserted here end to
   end and by CI on the emitted BENCH_CHURN.json.  The crossover is the
   smallest batch size at which a full rebuild amortizes better than
   patching (null when patching wins everywhere measured). *)
let run_churn ~full ~seed =
  let module Json = Jqi_util.Json in
  let module Relation = Jqi_relational.Relation in
  let module Tuple = Jqi_relational.Tuple in
  let module Delta = Jqi_relational.Delta in
  section_header
    "Data churn — incremental universe maintenance vs rebuild-from-scratch";
  let rows = if full then 4_000 else 1_000 in
  let values = 8 in
  let total_updates = if full then 512 else 128 in
  let cfg = Synth.config 3 3 rows values in
  let r0, p = Synth.generate (Prng.create seed) cfg in
  let arity = Jqi_relational.Schema.arity (Relation.schema r0) in
  (* One edit script per batch size, deterministic in the seed: each
     batch removes ⌊b/2⌋ live R-rows (tracked through the script, so a
     row is never claimed twice) and inserts ⌈b/2⌉ fresh rows from the
     generator's distribution. *)
  let gen_script ~batch =
    let prng = Prng.create (seed + batch) in
    let n_batches = max 1 (total_updates / batch) in
    (* Live R-rows as a swap-remove array with an explicit count, so
       picking and deleting a random live row is O(1). *)
    let base = Relation.rows r0 in
    let live = Array.make (Array.length base + (batch * n_batches)) base.(0) in
    Array.blit base 0 live 0 (Array.length base);
    let n_live = ref (Array.length base) in
    List.init n_batches (fun _ ->
        let n_rm = batch / 2 and n_add = batch - (batch / 2) in
        let removes =
          List.init n_rm (fun _ ->
              let i = Prng.int prng !n_live in
              let row = live.(i) in
              live.(i) <- live.(!n_live - 1);
              decr n_live;
              row)
        in
        let adds =
          List.init n_add (fun _ ->
              let row =
                Tuple.ints (List.init arity (fun _ -> Prng.int prng values))
              in
              live.(!n_live) <- row;
              incr n_live;
              row)
        in
        Delta.of_lists ~adds ~removes)
  in
  let universes_equal u1 u2 =
    Int.equal (Universe.n_classes u1) (Universe.n_classes u2)
    && Float.equal (Universe.join_ratio u1) (Universe.join_ratio u2)
    &&
    let rec go i =
      i >= Universe.n_classes u1
      || Bits.equal (Universe.signature u1 i) (Universe.signature u2 i)
         && Int.equal (Universe.count u1 i) (Universe.count u2 i)
         && int_array_equal (Universe.cls u1 i).Universe.rep
              (Universe.cls u2 i).Universe.rep
         && go (i + 1)
    in
    go 0
  in
  let u0 = Universe.build r0 p in
  Printf.printf
    "  instance: R×P %d×%d rows, %d values/attr, %d classes; %d row \
     updates per batch size\n"
    (Relation.cardinality r0) (Relation.cardinality p) values
    (Universe.n_classes u0) total_updates;
  let batches = [ 1; 4; 16; 64; 256 ] in
  let measurements =
    List.map
      (fun batch ->
        let script = gen_script ~batch in
        let n_batches = max 1 (total_updates / batch) in
        let updates = batch * n_batches in
        (* Incremental chain: patch the live universe per batch. *)
        let u_inc = ref (Universe.build r0 p) in
        let (), inc_s =
          Jqi_util.Timer.time (fun () ->
              List.iter
                (fun d -> u_inc := Universe.apply_delta !u_inc [ (0, d) ])
                script)
        in
        (* Rebuild chain: fold the delta into the relation, then build
           the universe from scratch — the pre-pipeline behaviour. *)
        let r_cur = ref r0 in
        let u_rb = ref u0 in
        let (), rb_s =
          Jqi_util.Timer.time (fun () ->
              List.iter
                (fun d ->
                  r_cur := Relation.apply_delta !r_cur d;
                  u_rb := Universe.build !r_cur p)
                script)
        in
        let identical = universes_equal !u_inc !u_rb in
        let inc_ups = float updates /. inc_s in
        let rb_ups = float updates /. rb_s in
        Printf.printf
          "  batch %3d: incremental %9.0f updates/s, rebuild %9.0f \
           updates/s, speedup %6.1fx, final universes %s\n"
          batch inc_ups rb_ups (inc_ups /. rb_ups)
          (if identical then "identical" else "DIVERGED");
        (batch, updates, inc_s, rb_s, inc_ups, rb_ups, identical))
      batches
  in
  let all_identical =
    List.for_all (fun (_, _, _, _, _, _, ok) -> ok) measurements
  in
  let speedup_at_1 =
    match measurements with
    | (1, _, _, _, inc, rb, _) :: _ -> inc /. rb
    | _ -> 0.
  in
  let crossover =
    List.find_map
      (fun (batch, _, _, _, inc, rb, _) -> if rb >= inc then Some batch else None)
      measurements
  in
  Printf.printf
    "  speedup at batch 1: %.1fx (floor: 5x); crossover batch: %s\n"
    speedup_at_1
    (match crossover with Some b -> string_of_int b | None -> "none measured");
  let path = "BENCH_CHURN.json" in
  Json.save_file path
    (Json.Obj
       [
         ("seed", Json.int seed);
         ( "instance",
           Json.Str
             "synthetic (3,3) pair, duplicate-heavy value domain, churn on R \
              only" );
         ("rows", Json.int rows);
         ("values", Json.int values);
         ("classes", Json.int (Universe.n_classes u0));
         ("updates_per_size", Json.int total_updates);
         ( "batches",
           Json.List
             (List.map
                (fun (batch, updates, inc_s, rb_s, inc_ups, rb_ups, ok) ->
                  Json.Obj
                    [
                      ("batch", Json.int batch);
                      ("updates", Json.int updates);
                      ("incremental_s", Json.Num inc_s);
                      ("rebuild_s", Json.Num rb_s);
                      ("incremental_updates_per_s", Json.Num inc_ups);
                      ("rebuild_updates_per_s", Json.Num rb_ups);
                      ("speedup", Json.Num (inc_ups /. rb_ups));
                      ("identical", Json.Bool ok);
                    ])
                measurements) );
         ("identical", Json.Bool all_identical);
         ("speedup_at_batch_1", Json.Num speedup_at_1);
         ( "crossover_batch",
           match crossover with Some b -> Json.int b | None -> Json.Null );
       ]);
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Observability overhead: instrumentation on vs off (ISSUE 2).        *)
(* ------------------------------------------------------------------ *)

(* A/B of the jqi.obs layer on the fig6 L2S workload: full L2S inference
   runs on TPC-H Joins 4 and 5 at scale 1, timed with instrumentation
   disabled and enabled.  The acceptance budget is <2% enabled overhead;
   disabled overhead is a flag load per call site and should not be
   measurable at all.  Results land in BENCH_obs.json. *)
let run_obs ~full ~seed =
  let module Json = Jqi_util.Json in
  section_header
    "Observability overhead — jqi.obs disabled vs enabled (fig6 L2S workload)";
  let db = Tpch.generate ~seed ~scale:1 () in
  let joins = Tpch.joins db in
  let workloads =
    List.map
      (fun (join : Tpch.goal_join) ->
        let universe = Universe.build join.r join.p in
        let goal = Tpch.goal_predicate (Universe.omega universe) join in
        (universe, goal))
      [ List.nth joins 3; List.nth joins 4 ]
  in
  let workload () =
    List.iter
      (fun (universe, goal) ->
        ignore
          (Jqi_core.Inference.run universe (Strategy.lks 2)
             (Jqi_core.Oracle.honest ~goal)))
      workloads
  in
  (* A workload pass is ~0.2s (L2S spends ~20 ms/choice on these joins), so
     a timed rep batches a handful of passes; medians of several reps are
     compared. *)
  let iters = if full then 20 else 5 in
  let reps = 5 in
  let timed_rep () =
    let t0 = Jqi_util.Timer.now () in
    for _ = 1 to iters do
      workload ()
    done;
    Jqi_util.Timer.now () -. t0
  in
  let median xs =
    let a = Array.of_list xs in
    Array.sort Float.compare a;
    a.(Array.length a / 2)
  in
  workload ();
  (* warmup *)
  (* Alternate off/on reps so drift (thermal, GC heap shape) hits both. *)
  let disabled = ref [] and enabled = ref [] in
  for _ = 1 to reps do
    Obs.set_enabled false;
    disabled := timed_rep () :: !disabled;
    Obs.reset ();
    Obs.set_enabled true;
    enabled := timed_rep () :: !enabled
  done;
  let report = Obs.Report.snapshot () in
  Obs.set_enabled false;
  let d = median !disabled and e = median !enabled in
  let overhead_pct = (e /. d -. 1.) *. 100. in
  Printf.printf
    "L2S on TPC-H joins 4+5, %d passes/rep, %d reps:\n\
    \  disabled %8.4fs/rep\n\
    \  enabled  %8.4fs/rep\n\
    \  overhead %+.2f%%  (budget: <2%%)\n"
    iters reps d e overhead_pct;
  let grab name = (name, Json.int (Obs.Report.counter report name)) in
  let path = "BENCH_obs.json" in
  Json.save_file path
    (Json.Obj
       [
         ("seed", Json.int seed);
         ("workload", Json.Str "fig6 L2S full inference, TPC-H joins 4+5, scale 1");
         ("iters_per_rep", Json.int iters);
         ("reps", Json.int reps);
         ("disabled_s", Json.Num d);
         ("enabled_s", Json.Num e);
         ("overhead_pct", Json.Num overhead_pct);
         ( "metrics",
           Json.Obj
             (List.map grab
                [
                  "oracle.questions"; "strategy.choices";
                  "lookahead.candidates_scored"; "lookahead.candidates_pruned";
                  "lookahead.branch_cache_hit"; "lookahead.branch_cache_miss";
                  "state.certainty_scans"; "state.labels";
                ]) );
       ]);
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Service layer: questions/sec through the full protocol stack.       *)
(* ------------------------------------------------------------------ *)

(* N sessions per TPC-H join, every request going through the wire codec
   ([Service.handle_line] on encoded frames) with an honest oracle driven
   from the goal predicate.  The first session per join pays the universe
   build; every later one must hit the cache — the hit rate lands in
   BENCH_server.json so CI can assert Ω really is built once. *)
let run_server ~full ~seed =
  let module Json = Jqi_util.Json in
  let module Relation = Jqi_relational.Relation in
  let module Omega = Jqi_core.Omega in
  let module Sample = Jqi_core.Sample in
  let module Catalog = Jqi_server.Catalog in
  let module Manager = Jqi_server.Manager in
  let module P = Jqi_server.Protocol in
  let module Service = Jqi_server.Service in
  section_header
    "Service layer — questions/sec and universe cache (TPC-H joins 4+5)";
  let db = Tpch.generate ~seed ~scale:1 () in
  let joins = Tpch.joins db in
  let picks = [ List.nth joins 3; List.nth joins 4 ] in
  let catalog = Catalog.create () in
  List.iter
    (fun (j : Tpch.goal_join) ->
      Catalog.add catalog j.r;
      Catalog.add catalog j.p)
    picks;
  let manager = Manager.create ~seed catalog in
  let sessions_per_join = if full then 50 else 10 in
  let next_id = ref 0 in
  let call req =
    incr next_id;
    Service.handle_line manager (P.encode_request ~id:!next_id req)
  in
  let questions = ref 0 in
  let drive (j : Tpch.goal_join) =
    let omega = Omega.of_schemas (Relation.schema j.r) (Relation.schema j.p) in
    let goal = Tpch.goal_predicate omega j in
    let session =
      match
        P.decode_response
          (call
             (P.Open_session
                { r = Relation.name j.r; p = Relation.name j.p; strategy = "td" }))
      with
      | Ok (_, P.Opened { session; _ }) -> session
      | _ -> failwith "server bench: open failed"
    in
    let rec loop resp =
      match P.decode_response resp with
      | Ok (_, P.Question { q_r_row; q_p_row; _ }) ->
          incr questions;
          let s = Sample.signature_of_tuple omega j.r j.p (q_r_row, q_p_row) in
          let label =
            if Bits.subset goal s then Sample.Positive else Sample.Negative
          in
          loop (call (P.Tell { session; label }))
      | Ok (_, P.Done _) -> ()
      | _ -> failwith "server bench: protocol failure"
    in
    loop (call (P.Ask { session }));
    ignore (call (P.Close { session }))
  in
  let t0 = Jqi_util.Timer.now () in
  for _ = 1 to sessions_per_join do
    List.iter drive picks
  done;
  let elapsed = Jqi_util.Timer.now () -. t0 in
  let hits, misses = Catalog.stats catalog in
  let hit_rate = float_of_int hits /. float_of_int (hits + misses) in
  let sessions = 2 * sessions_per_join in
  let qps = float_of_int !questions /. elapsed in
  Printf.printf
    "%d sessions (%d per join), %d questions in %.3fs through the JSON \
     codec:\n\
    \  %10.0f questions/sec\n\
    \  universe cache: %d hits / %d misses (hit rate %.3f)\n"
    sessions sessions_per_join !questions elapsed qps hits misses hit_rate;
  let path = "BENCH_server.json" in
  Json.save_file path
    (Json.Obj
       [
         ("seed", Json.int seed);
         ( "workload",
           Json.Str
             "TD inference sessions over TPC-H joins 4+5 via Service.handle_line" );
         ("sessions", Json.int sessions);
         ("questions", Json.int !questions);
         ("elapsed_s", Json.Num elapsed);
         ("questions_per_sec", Json.Num qps);
         ("cache_hits", Json.int hits);
         ("cache_misses", Json.int misses);
         ("cache_hit_rate", Json.Num hit_rate);
       ]);
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Server load: concurrent listener fleet vs single-client baseline.   *)
(* ------------------------------------------------------------------ *)

(* The paper's deployment is crowdsourced labeling: the server idles
   between a labeler's answers.  The baseline below is the stdin/stdout
   deployment ([Service.serve_channels] over a socketpair) driven by ONE
   client whose oracle thinks for [think] seconds before every answer —
   throughput is capped near 1/think.  The fleet run drives the same
   protocol through the real [Listener] + [Pool] front end with many
   concurrent client domains, overlapping their think time; the speedup
   is the whole point of the concurrent server and CI asserts its floor.
   Both runs must infer byte-identical predicates (the differential). *)
let run_server_load ~full ~seed =
  let module Json = Jqi_util.Json in
  let module Stats = Jqi_util.Stats in
  let module Relation = Jqi_relational.Relation in
  let module Omega = Jqi_core.Omega in
  let module Sample = Jqi_core.Sample in
  let module Catalog = Jqi_server.Catalog in
  let module Manager = Jqi_server.Manager in
  let module P = Jqi_server.Protocol in
  let module Service = Jqi_server.Service in
  let module Pool = Jqi_server.Pool in
  let module Listener = Jqi_server.Listener in
  section_header
    "Server load — concurrent listener fleet vs single-client baseline";
  let db = Tpch.generate ~seed ~scale:1 () in
  let joins = Tpch.joins db in
  let picks = [| List.nth joins 3; List.nth joins 4 |] in
  let goals =
    Array.map
      (fun (j : Tpch.goal_join) ->
        let omega =
          Omega.of_schemas (Relation.schema j.r) (Relation.schema j.p)
        in
        (j, omega, Tpch.goal_predicate omega j))
      picks
  in
  let n_joins = Array.length goals in
  let make_manager () =
    let catalog = Catalog.create () in
    Array.iter
      (fun (j : Tpch.goal_join) ->
        Catalog.add catalog j.r;
        Catalog.add catalog j.p)
      picks;
    (catalog, Manager.create ~seed catalog)
  in
  let think = 0.025 in
  let base_sessions = if full then 12 else 8 in
  let clients = if full then 32 else 16 in
  let sessions_per_client = if full then 8 else 4 in
  let workers = 4 in
  (* One honest session over the line transport [call]; the oracle
     sleeps [think] before each answer.  Wire latency (request sent →
     response parsed, think time excluded) accumulates in [latencies]. *)
  let drive_session ~latencies ~questions ~next_id ~call k =
    let (j : Tpch.goal_join), omega, goal = goals.(k) in
    let rpc req =
      incr next_id;
      let line = P.encode_request ~id:!next_id req in
      let t0 = Jqi_util.Timer.now () in
      let resp = call line in
      latencies := (Jqi_util.Timer.now () -. t0) :: !latencies;
      P.decode_response resp
    in
    let session =
      match
        rpc
          (P.Open_session
             { r = Relation.name j.r; p = Relation.name j.p; strategy = "td" })
      with
      | Ok (_, P.Opened { session; _ }) -> session
      | _ -> failwith "server-load: open failed"
    in
    let rec loop resp =
      match resp with
      | Ok (_, P.Question { q_r_row; q_p_row; _ }) ->
          incr questions;
          let s = Sample.signature_of_tuple omega j.r j.p (q_r_row, q_p_row) in
          let label =
            if Bits.subset goal s then Jqi_core.Sample.Positive
            else Jqi_core.Sample.Negative
          in
          Unix.sleepf think;
          loop (rpc (P.Tell { session; label }))
      | Ok (_, P.Done { predicate; _ }) ->
          ignore (rpc (P.Close { session }));
          predicate
      | _ -> failwith "server-load: protocol failure"
    in
    loop (rpc (P.Ask { session }))
  in
  let line_call ic oc line =
    output_string oc line;
    output_char oc '\n';
    flush oc;
    input_line ic
  in
  (* Baseline: the blocking single-client loop over a socketpair. *)
  let _catalog_b, manager_b = make_manager () in
  let srv_fd, cli_fd = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let server_thread =
    Thread.create
      (fun () ->
        Service.serve_channels manager_b
          (Unix.in_channel_of_descr srv_fd)
          (Unix.out_channel_of_descr srv_fd))
      ()
  in
  let base_ic = Unix.in_channel_of_descr cli_fd in
  let base_oc = Unix.out_channel_of_descr cli_fd in
  let base_latencies = ref [] in
  let base_questions = ref 0 in
  let base_next_id = ref 0 in
  let base_predicates = Array.make n_joins [] in
  let t0 = Jqi_util.Timer.now () in
  for s = 0 to base_sessions - 1 do
    let k = s mod n_joins in
    base_predicates.(k) <-
      drive_session ~latencies:base_latencies ~questions:base_questions
        ~next_id:base_next_id
        ~call:(line_call base_ic base_oc)
        k
  done;
  let base_elapsed = Jqi_util.Timer.now () -. t0 in
  close_out base_oc;
  Thread.join server_thread;
  Unix.close srv_fd;
  let base_qps = float_of_int !base_questions /. base_elapsed in
  (* Fleet: client domains against the real listener + worker pool. *)
  let catalog_f, manager_f = make_manager () in
  let pool = Pool.create ~capacity:256 ~workers () in
  let listener = Listener.start ~pool manager_f (Listener.Tcp ("127.0.0.1", 0)) in
  let port =
    match Listener.address listener with
    | Listener.Tcp (_, p) -> p
    | Listener.Unix_path _ -> failwith "server-load: expected a tcp address"
  in
  let run_client c =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
    Unix.setsockopt fd Unix.TCP_NODELAY true;
    let ic = Unix.in_channel_of_descr fd in
    let oc = Unix.out_channel_of_descr fd in
    let latencies = ref [] in
    let questions = ref 0 in
    let next_id = ref 0 in
    let preds = Array.make n_joins [] in
    for s = 0 to sessions_per_client - 1 do
      let k = (c + s) mod n_joins in
      preds.(k) <-
        drive_session ~latencies ~questions ~next_id ~call:(line_call ic oc) k
    done;
    close_out oc;
    (!latencies, !questions, preds)
  in
  (* [clients] connections spread over a few client domains, one
     systhread per connection: blocking IO and think-time sleeps release
     the runtime lock, so connections overlap within a domain, and a low
     domain count keeps minor-GC stop-the-world sync cheap on small
     machines. *)
  let client_domains = 4 in
  let per_domain = (clients + client_domains - 1) / client_domains in
  let t1 = Jqi_util.Timer.now () in
  let domains =
    List.init client_domains (fun d ->
        Domain.spawn (fun () ->
            let lo = min clients (d * per_domain) in
            let hi = min clients (lo + per_domain) in
            let slots =
              List.init (hi - lo) (fun i ->
                  let out = ref ([], 0, Array.make n_joins []) in
                  ( out,
                    Thread.create (fun () -> out := run_client (lo + i)) () ))
            in
            List.map
              (fun (out, th) ->
                Thread.join th;
                !out)
              slots))
  in
  let results = List.concat_map Domain.join domains in
  let fleet_elapsed = Jqi_util.Timer.now () -. t1 in
  let leaked = Manager.session_count manager_f in
  Listener.stop listener;
  Pool.shutdown pool;
  let fleet_questions =
    List.fold_left (fun acc (_, q, _) -> acc + q) 0 results
  in
  let fleet_latencies =
    Array.of_list (List.concat_map (fun (ls, _, _) -> ls) results)
  in
  let fleet_qps = float_of_int fleet_questions /. fleet_elapsed in
  let speedup = fleet_qps /. base_qps in
  let p50 = Stats.percentile fleet_latencies 50. *. 1e3 in
  let p99 = Stats.percentile fleet_latencies 99. *. 1e3 in
  let pool_stats = Pool.stats pool in
  let hits, misses = Catalog.stats catalog_f in
  let hit_rate = float_of_int hits /. float_of_int (hits + misses) in
  (* The differential: every fleet session must land on the baseline's
     predicate for its join, attribute pair for attribute pair. *)
  let pred_equal =
    List.equal (fun (a, b) (c, d) -> String.equal a c && String.equal b d)
  in
  let theta_match =
    List.for_all
      (fun (_, _, preds) ->
        Array.for_all2
          (fun base mine ->
            match mine with [] -> true | _ :: _ -> pred_equal base mine)
          base_predicates preds)
      results
  in
  let fleet_sessions = clients * sessions_per_client in
  Printf.printf
    "think time %.0fms/answer; baseline 1 client x %d sessions, fleet %d \
     clients x %d sessions on %d worker domains:\n\
    \  baseline %8.0f questions/sec  (%d questions, %.2fs)\n\
    \  fleet    %8.0f questions/sec  (%d questions, %.2fs)\n\
    \  speedup  %8.2fx  (CI floor: 5x)\n\
    \  latency  p50 %.2fms  p99 %.2fms  (wire, think time excluded)\n\
    \  shed %d of %d submitted; universe cache %d hits / %d misses \
     (%.3f)\n\
    \  predicates %s baseline; %d sessions leaked\n"
    (think *. 1e3) base_sessions clients sessions_per_client workers base_qps
    !base_questions base_elapsed fleet_qps fleet_questions fleet_elapsed
    speedup p50 p99 pool_stats.Pool.shed pool_stats.Pool.submitted hits misses
    hit_rate
    (if theta_match then "identical to" else "DIVERGED from")
    leaked;
  let path = "BENCH_server.json" in
  Json.save_file path
    (Json.Obj
       [
         ("seed", Json.int seed);
         ( "workload",
           Json.Str
             "TD inference fleet over TPC-H joins 4+5 via the concurrent \
              listener, vs the blocking single-client loop" );
         ("think_ms", Json.Num (think *. 1e3));
         ("sessions", Json.int fleet_sessions);
         ("questions", Json.int fleet_questions);
         ("elapsed_s", Json.Num fleet_elapsed);
         ("questions_per_sec", Json.Num fleet_qps);
         ("cache_hits", Json.int hits);
         ("cache_misses", Json.int misses);
         ("cache_hit_rate", Json.Num hit_rate);
         ("clients", Json.int clients);
         ("workers", Json.int workers);
         ("baseline_sessions", Json.int base_sessions);
         ("baseline_questions", Json.int !base_questions);
         ("baseline_elapsed_s", Json.Num base_elapsed);
         ("baseline_questions_per_sec", Json.Num base_qps);
         ("speedup", Json.Num speedup);
         ("latency_p50_ms", Json.Num p50);
         ("latency_p99_ms", Json.Num p99);
         ("shed", Json.int pool_stats.Pool.shed);
         ("pool_submitted", Json.int pool_stats.Pool.submitted);
         ("pool_completed", Json.int pool_stats.Pool.completed);
         ("pool_max_depth", Json.int pool_stats.Pool.max_depth);
         ("theta_match", Json.Bool theta_match);
         ("sessions_leaked", Json.int leaked);
       ]);
  Printf.printf "wrote %s\n" path

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks.                                          *)
(* ------------------------------------------------------------------ *)

let micro_tests ~seed =
  let open Bechamel in
  let db = Tpch.generate ~seed ~scale:1 () in
  let joins = Tpch.joins db in
  let join4 = List.nth joins 3 in
  let universe = Universe.build join4.r join4.p in
  let omega = Universe.omega universe in
  let goal = Tpch.goal_predicate omega join4 in
  let mid_state () =
    (* A state mid-inference: a couple of TD-chosen labels. *)
    let st = State.create universe in
    let oracle = Jqi_core.Oracle.honest ~goal in
    (match Strategy.choose Strategy.td st with
    | Some c -> State.label st c (Jqi_core.Oracle.label oracle universe c)
    | None -> ());
    (match Strategy.choose Strategy.td st with
    | Some c -> State.label st c (Jqi_core.Oracle.label oracle universe c)
    | None -> ());
    st
  in
  let st = mid_state () in
  let informative = State.informative_classes st in
  let some_cls = List.hd informative in
  let synth_prng = Prng.create seed in
  let r_synth, p_synth = Synth.generate synth_prng (Synth.config 3 3 50 100) in
  let phi = Jqi_sat.Threesat.random (Prng.create seed) ~nvars:8 ~nclauses:24 in
  let cnf = Jqi_sat.Threesat.to_cnf phi in
  let red = Jqi_semijoin.Reduction.build phi in
  [
    (* Fig 6 critical path: quotienting the Cartesian product. *)
    Test.make ~name:"fig6:universe_build_quotient(J4,scale1)"
      (Staged.stage (fun () -> Universe.build join4.r join4.p));
    Test.make ~name:"fig6:universe_build_naive(J4,scale1)"
      (Staged.stage (fun () -> Universe.build_naive join4.r join4.p));
    Test.make ~name:"fig6:universe_build_parallel(J4,4 domains)"
      (Staged.stage (fun () -> Universe.build_parallel ~domains:4 join4.r join4.p));
    (* §3.4 / Theorem 3.5: the PTIME informativeness test. *)
    Test.make ~name:"fig6:informative_scan"
      (Staged.stage (fun () -> State.informative_classes st));
    (* Fig 6/7 lookahead inner loops. *)
    Test.make ~name:"fig7:entropy1"
      (Staged.stage (fun () -> Entropy.entropy1 st some_cls));
    Test.make ~name:"fig7:entropy2"
      (Staged.stage (fun () -> Entropy.entropy_k st 2 some_cls));
    Test.make ~name:"fig7:entropy2_ref"
      (Staged.stage (fun () -> Entropy.reference_k st 2 some_cls));
    (* One full strategy step each. *)
    Test.make ~name:"fig6:step_BU" (Staged.stage (fun () -> Strategy.choose Strategy.bu st));
    Test.make ~name:"fig6:step_TD" (Staged.stage (fun () -> Strategy.choose Strategy.td st));
    Test.make ~name:"fig6:step_L1S" (Staged.stage (fun () -> Strategy.choose Strategy.l1s st));
    (* Table 1 synth column: one full inference run. *)
    Test.make ~name:"fig7:full_run_TD(3,3,50,100)"
      (Staged.stage (fun () ->
           let u = Universe.build r_synth p_synth in
           let g = List.hd (Universe.signatures u) in
           E.Runner.run_goal u ~goal:g [ Strategy.td ]));
    (* Substrates. *)
    Test.make ~name:"substrate:hash_join(J4)"
      (Staged.stage (fun () ->
           Jqi_relational.Join.equijoin join4.r join4.p
             (Jqi_relational.Join.predicate_of_names join4.r join4.p join4.pairs)));
    Test.make ~name:"substrate:dpll(3sat n=8 m=24)"
      (Staged.stage (fun () -> Jqi_sat.Dpll.solve cnf));
    Test.make ~name:"thm6.1:cons_solve(n=8)"
      (Staged.stage (fun () ->
           Jqi_semijoin.Cons.consistent red.r red.p red.omega red.sample));
    Test.make ~name:"substrate:sql_group_by(orders)"
      (Staged.stage
         (let catalog = [ ("orders", db.orders) ] in
          fun () ->
            Jqi_sql.Engine.query catalog
              "SELECT o_orderstatus, COUNT(*) AS n, SUM(o_totalprice) AS s \
               FROM orders GROUP BY o_orderstatus"));
    Test.make ~name:"substrate:sql_parse"
      (Staged.stage (fun () ->
           Jqi_sql.Parser.parse
             "SELECT a, COUNT(*) AS n FROM t JOIN u ON a = b WHERE c >= 3 \
              GROUP BY a HAVING n > 1 ORDER BY n DESC LIMIT 10"));
    Test.make ~name:"extension:joinpath_build(3x20)"
      (Staged.stage
         (let prng3 = Prng.create seed in
          let mk name =
            let r, _ = Synth.generate prng3 (Synth.config 2 2 20 5) in
            Jqi_relational.Relation.with_name r name
          in
          let rels = [ mk "r1"; mk "r2"; mk "r3" ] in
          fun () -> Jqi_joinpath.Path.build rels));
  ]

let run_micro ~seed =
  section_header "Bechamel micro-benchmarks (per-figure critical operations)";
  let open Bechamel in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let raw =
    Benchmark.all cfg [ instance ]
      (Test.make_grouped ~name:"jqi" ~fmt:"%s %s" (micro_tests ~seed))
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (e :: _) -> e
          | _ -> nan
        in
        (name, ns) :: acc)
      results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  print_string
    (Jqi_util.Ascii_table.render
       ~headers:[ "benchmark"; "time/run" ]
       (List.map
          (fun (name, ns) ->
            [
              name;
              (if Float.is_nan ns then "n/a"
               else if ns < 1e3 then Printf.sprintf "%.0f ns" ns
               else if ns < 1e6 then Printf.sprintf "%.2f µs" (ns /. 1e3)
               else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
               else Printf.sprintf "%.2f s" (ns /. 1e9));
            ])
          rows))

(* ------------------------------------------------------------------ *)
(* Driver.                                                             *)
(* ------------------------------------------------------------------ *)

let all_sections =
  [ "fig6"; "fig7"; "table1"; "semijoin"; "scaling"; "ablation"; "universe";
    "kary"; "storage"; "churn"; "obs"; "server"; "server-load"; "micro" ]

let run sections full seed universe_spec =
  let sections = if sections = [] then all_sections else sections in
  List.iter
    (fun s ->
      if not (List.mem s all_sections) then (
        Printf.eprintf "unknown section %S (known: %s)\n" s
          (String.concat ", " all_sections);
        exit 2))
    sections;
  let builder, builder_label =
    match universe_builder_of ~seed universe_spec with
    | Some b -> (b, String.lowercase_ascii (String.trim universe_spec))
    | None ->
        Printf.eprintf
          "bad --universe %S (expected naive|quotient|parallel|sampled:<pairs>)\n"
          universe_spec;
        exit 2
  in
  let t0 = Jqi_util.Timer.now () in
  Printf.printf
    "jqi bench — reproduction of 'Interactive Inference of Join Queries' \
     (EDBT 2014)\nmode: %s, seed: %d, universe builder: %s, sections: %s\n"
    (if full then "full" else "quick")
    seed builder_label
    (String.concat " " sections);
  let want s = List.mem s sections in
  (* table1 is derived from fig6 + fig7 results; run them if needed. *)
  let need_fig6 = want "fig6" || want "table1" in
  let need_fig7 = want "fig7" || want "table1" in
  let fig6_results =
    if need_fig6 then Some (run_fig6 ~full ~seed ~builder ~builder_label)
    else None
  in
  let fig7_results =
    if need_fig7 then Some (run_fig7 ~full ~seed ~builder ~builder_label)
    else None
  in
  if want "table1" then
    run_table1
      ~fig6_results:(Option.get fig6_results)
      ~fig7_results:(Option.get fig7_results);
  if want "semijoin" then run_semijoin ~full ~seed;
  if want "scaling" then run_scaling ~full ~seed;
  if want "ablation" then run_ablation ~full ~seed;
  if want "universe" then run_universe ~full ~seed;
  if want "kary" then run_kary ~full ~seed;
  if want "storage" then run_storage ~full ~seed;
  if want "churn" then run_churn ~full ~seed;
  if want "obs" then run_obs ~full ~seed;
  if want "server" then run_server ~full ~seed;
  if want "server-load" then run_server_load ~full ~seed;
  if want "micro" then run_micro ~seed;
  Printf.printf "\nTotal bench time: %.1fs\n" (Jqi_util.Timer.now () -. t0)

open Cmdliner

let sections_arg =
  Arg.(
    value & pos_all string []
    & info [] ~docv:"SECTION"
        ~doc:"Sections to run: fig6, fig7, table1, semijoin, micro. Default: all.")

let full_arg =
  Arg.(value & flag & info [ "full" ] ~doc:"Run at paper-scale parameters (slow).")

let seed_arg = Arg.(value & opt int 2014 & info [ "seed" ] ~doc:"PRNG seed.")

let universe_spec_arg =
  Arg.(
    value & opt string "quotient"
    & info [ "universe" ] ~docv:"BUILDER"
        ~doc:"Universe constructor for the fig6/fig7 universes (mirrors \
              jqinfer): naive, quotient, parallel or sampled:<pairs>.")

let cmd =
  Cmd.v
    (Cmd.info "jqi-bench" ~doc:"Reproduce the paper's tables and figures")
    Term.(const run $ sections_arg $ full_arg $ seed_arg $ universe_spec_arg)

let () = exit (Cmd.eval cmd)
