(* jqlint — the project linter.

   Usage:
     jqlint [options] PATH...

   Parses every .ml/.mli under the given paths with the project compiler
   (compiler-libs) and enforces the R1..R12 rule catalog of
   doc/LINTING.md: the per-file rules R1..R8 plus the interprocedural
   concurrency/effect rules R9..R12 (lock discipline, no blocking under
   a lock, sans-IO purity, decoder totality).

   Exit codes (documented in doc/LINTING.md):
     0  no findings beyond the baseline
     1  fresh findings or parse errors
     2  bad usage (unknown flag/rule/format, unreadable baseline,
        git failure in --changed mode)

   Run it from the repository root so paths match the checked-in
   baseline: jqlint --baseline lint.baseline lib bin bench test *)

module Lint = Jqi_lint.Driver
module Baseline = Jqi_lint.Baseline
module Report = Jqi_lint.Report
module Rules = Jqi_lint.Rules

type format = Human | Json | Github

let usage =
  "jqlint [--format human|json|github] [--baseline FILE] [--update-baseline] \
   [--out FILE] [--rules IDS] [--changed[=REF]] [--jobs N] [--list-rules] \
   PATH..."

(* Files differing from [ref_] (committed or not), plus untracked ones —
   the pre-commit working set.  Paths come back repo-root-relative, which
   matches how the baseline and the lint targets are spelled. *)
let git_changed ref_ =
  let lines cmd =
    let ic = Unix.open_process_in cmd in
    let buf = ref [] in
    (try
       while true do
         buf := input_line ic :: !buf
       done
     with End_of_file -> ());
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 -> Ok (List.rev !buf)
    | Unix.WEXITED n -> Error (Printf.sprintf "%s exited %d" cmd n)
    | Unix.WSIGNALED _ | Unix.WSTOPPED _ ->
        Error (Printf.sprintf "%s killed" cmd)
  in
  match
    ( lines (Printf.sprintf "git diff --name-only %s --" (Filename.quote ref_)),
      lines "git ls-files --others --exclude-standard" )
  with
  | Ok a, Ok b -> Ok (List.sort_uniq String.compare (a @ b))
  | Error e, _ | _, Error e -> Error e

let parse_rules s =
  let ids = String.split_on_char ',' s |> List.map String.trim in
  List.iter
    (fun id ->
      if Rules.find_rule id = None then begin
        prerr_endline ("jqlint: unknown rule " ^ id ^ " (see --list-rules)");
        exit 2
      end)
    ids;
  ids

(* Arg cannot express an optional =VALUE, so --changed[=REF] is expanded
   to two tokens before parsing. *)
let preprocess argv =
  Array.to_list argv
  |> List.concat_map (fun a ->
         if String.equal a "--changed" then [ "--changed-ref"; "HEAD" ]
         else if String.starts_with ~prefix:"--changed=" a then
           [
             "--changed-ref";
             String.sub a 10 (String.length a - 10);
           ]
         else [ a ])
  |> Array.of_list

let () =
  let format = ref Human in
  let baseline_path = ref None in
  let update = ref false in
  let out_json = ref None in
  let list_rules = ref false in
  let rules = ref None in
  let changed_ref = ref None in
  let jobs = ref 1 in
  let paths = ref [] in
  let set_format = function
    | "human" -> format := Human
    | "json" -> format := Json
    | "github" -> format := Github
    | f ->
        prerr_endline ("jqlint: unknown format " ^ f);
        exit 2
  in
  let spec =
    [
      ("--format", Arg.String set_format, "FMT  output format: human (default), json, github");
      ("--baseline", Arg.String (fun s -> baseline_path := Some s), "FILE  tolerate findings pinned in FILE");
      ("--update-baseline", Arg.Set update, "  rewrite the baseline from the current findings and exit 0");
      ("--out", Arg.String (fun s -> out_json := Some s), "FILE  also write the full JSON report to FILE");
      ("--rules", Arg.String (fun s -> rules := Some (parse_rules s)), "IDS  only run these rules (comma-separated, e.g. R9,R10)");
      ("--changed-ref", Arg.String (fun s -> changed_ref := Some s), "REF  spelled --changed[=REF]: only report findings in files differing from REF (default HEAD)");
      ("--jobs", Arg.Int (fun n -> jobs := max 1 n), "N  parse/lint files across N domains (default 1)");
      ("--list-rules", Arg.Set list_rules, "  print the rule catalog and exit");
    ]
  in
  (try
     Arg.parse_argv (preprocess Sys.argv) spec
       (fun p -> paths := p :: !paths)
       usage
   with
  | Arg.Bad msg ->
      prerr_string msg;
      exit 2
  | Arg.Help msg ->
      print_string msg;
      exit 0);
  if !list_rules then begin
    List.iter
      (fun (r : Rules.rule) ->
        Printf.printf "%s  %s\n      fix: %s\n" r.id r.title r.hint)
      Rules.catalog;
    exit 0
  end;
  let paths = List.rev !paths in
  if paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let changed =
    match !changed_ref with
    | None -> None
    | Some ref_ -> (
        match git_changed ref_ with
        | Ok files -> Some (List.map Rules.normalize files)
        | Error msg ->
            prerr_endline ("jqlint: --changed: " ^ msg);
            exit 2)
  in
  let baseline =
    match !baseline_path with
    | None -> Baseline.empty
    | Some p when !update && not (Sys.file_exists p) -> Baseline.empty
    | Some p -> (
        match Baseline.load p with
        | Ok b -> b
        | Error msg ->
            prerr_endline ("jqlint: " ^ msg);
            exit 2)
  in
  let opts = { Lint.rules = !rules; changed; jobs = !jobs } in
  let outcome = Lint.run ~baseline ~opts paths in
  if !update then begin
    match !baseline_path with
    | None ->
        prerr_endline "jqlint: --update-baseline needs --baseline FILE";
        exit 2
    | Some p ->
        Baseline.save p (Baseline.of_findings outcome.findings);
        Printf.printf "jqlint: baseline %s updated (%d findings pinned)\n" p
          (List.length outcome.findings);
        exit 0
  end;
  let render_json () =
    Report.json ~wall_ms:outcome.wall_ms
      ?analysis:(Option.map Lint.analysis_to_json outcome.analysis)
      ~files:outcome.files ~findings:outcome.findings ~fresh:outcome.fresh
      ~stale:outcome.stale ()
  in
  (match !out_json with
  | None -> ()
  | Some p ->
      let oc = open_out p in
      output_string oc (render_json ());
      close_out oc);
  (match !format with
  | Human ->
      print_string
        (Report.human ~files:outcome.files
           ~total:(List.length outcome.findings)
           ~fresh:outcome.fresh ~stale:outcome.stale)
  | Json -> print_string (render_json ())
  | Github ->
      print_string (Report.github outcome.fresh);
      Printf.printf "jqlint: %d files, %d findings, %d new\n" outcome.files
        (List.length outcome.findings)
        (List.length outcome.fresh));
  exit (if Lint.clean outcome then 0 else 1)
