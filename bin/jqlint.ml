(* jqlint — the project linter.

   Usage:
     jqlint [options] PATH...

   Parses every .ml/.mli under the given paths with the project compiler
   (compiler-libs) and enforces the R1..R8 rule catalog of doc/LINTING.md.
   Exit code 0 means no findings beyond the baseline; 1 means new
   findings (or parse errors); 2 means bad usage.

   Run it from the repository root so paths match the checked-in
   baseline: jqlint --baseline lint.baseline lib bin bench test *)

module Lint = Jqi_lint.Driver
module Baseline = Jqi_lint.Baseline
module Report = Jqi_lint.Report
module Rules = Jqi_lint.Rules

type format = Human | Json | Github

let usage = "jqlint [--format human|json|github] [--baseline FILE] [--update-baseline] [--out FILE] [--rules] PATH..."

let () =
  let format = ref Human in
  let baseline_path = ref None in
  let update = ref false in
  let out_json = ref None in
  let show_rules = ref false in
  let paths = ref [] in
  let set_format = function
    | "human" -> format := Human
    | "json" -> format := Json
    | "github" -> format := Github
    | f ->
        prerr_endline ("jqlint: unknown format " ^ f);
        exit 2
  in
  let spec =
    [
      ("--format", Arg.String set_format, "FMT  output format: human (default), json, github");
      ("--baseline", Arg.String (fun s -> baseline_path := Some s), "FILE  tolerate findings pinned in FILE");
      ("--update-baseline", Arg.Set update, "  rewrite the baseline from the current findings and exit 0");
      ("--out", Arg.String (fun s -> out_json := Some s), "FILE  also write the full JSON report to FILE");
      ("--rules", Arg.Set show_rules, "  print the rule catalog and exit");
    ]
  in
  (try Arg.parse_argv Sys.argv spec (fun p -> paths := p :: !paths) usage
   with
  | Arg.Bad msg ->
      prerr_string msg;
      exit 2
  | Arg.Help msg ->
      print_string msg;
      exit 0);
  if !show_rules then begin
    List.iter
      (fun (r : Rules.rule) ->
        Printf.printf "%s  %s\n      fix: %s\n" r.id r.title r.hint)
      Rules.catalog;
    exit 0
  end;
  let paths = List.rev !paths in
  if paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  let baseline =
    match !baseline_path with
    | None -> Baseline.empty
    | Some p when !update && not (Sys.file_exists p) -> Baseline.empty
    | Some p -> (
        match Baseline.load p with
        | Ok b -> b
        | Error msg ->
            prerr_endline ("jqlint: " ^ msg);
            exit 2)
  in
  let outcome = Lint.run ~baseline paths in
  if !update then begin
    match !baseline_path with
    | None ->
        prerr_endline "jqlint: --update-baseline needs --baseline FILE";
        exit 2
    | Some p ->
        Baseline.save p (Baseline.of_findings outcome.findings);
        Printf.printf "jqlint: baseline %s updated (%d findings pinned)\n" p
          (List.length outcome.findings);
        exit 0
  end;
  (match !out_json with
  | None -> ()
  | Some p ->
      let oc = open_out p in
      output_string oc
        (Report.json ~files:outcome.files ~findings:outcome.findings
           ~fresh:outcome.fresh ~stale:outcome.stale);
      close_out oc);
  (match !format with
  | Human ->
      print_string
        (Report.human ~files:outcome.files
           ~total:(List.length outcome.findings)
           ~fresh:outcome.fresh ~stale:outcome.stale)
  | Json ->
      print_string
        (Report.json ~files:outcome.files ~findings:outcome.findings
           ~fresh:outcome.fresh ~stale:outcome.stale)
  | Github ->
      print_string (Report.github outcome.fresh);
      Printf.printf "jqlint: %d files, %d findings, %d new\n" outcome.files
        (List.length outcome.findings)
        (List.length outcome.fresh));
  exit (if Lint.clean outcome then 0 else 1)
