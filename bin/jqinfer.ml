(* jqinfer — command-line front end of the join-inference library.

   Subcommands:
     infer          interactively infer an equijoin over two CSV files
                    (the human is the oracle; labels read from stdin)
     simulate       replay the inference with a known goal predicate
     gen-tpch       generate TPC-H-style CSV files
     gen-synth      generate a synthetic instance (§5.2 configuration)
     semijoin-cons  decide CONS⋉ for a labeled sample over two CSV files
     lattice        export the Figure-4-style predicate lattice as Graphviz
     serve          speak the JSON-lines inference protocol on stdin/stdout
     client         drive a served session to completion (CI smoke tests) *)

module Value = Jqi_relational.Value
module Engine = Jqi_core.Engine
module Relation = Jqi_relational.Relation
module Tuple = Jqi_relational.Tuple
module Csv = Jqi_relational.Csv
module Omega = Jqi_core.Omega
module Universe = Jqi_core.Universe
module State = Jqi_core.State
module Sample = Jqi_core.Sample
module Strategy = Jqi_core.Strategy
module Oracle = Jqi_core.Oracle
module Inference = Jqi_core.Inference
module Lattice = Jqi_core.Lattice
module Prng = Jqi_util.Prng
module Obs = Jqi_obs.Obs
module Relstore = Jqi_storage.Relstore

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  if verbose then Logs.Src.set_level Inference.log_src (Some Logs.Debug)

(* --trace/--metrics observability plumbing: enable instrumentation before
   the run when either is requested, emit the artifacts afterwards. *)
let obs_setup ~trace ~metrics =
  if trace <> None || metrics then begin
    Obs.reset ();
    Obs.set_enabled true
  end

let obs_finish ~trace ~metrics =
  (match trace with
  | Some path ->
      Obs.save_trace path;
      Printf.printf "Trace written to %s (open in chrome://tracing or Perfetto).\n" path
  | None -> ());
  if metrics then begin
    print_newline ();
    print_string (Obs.Report.render (Obs.Report.snapshot ()))
  end

(* --backend mem|paged: [Mem] materializes rows in arrays; [Paged]
   streams the CSV into a heap-file store and scans it through a
   --buffer-pages-frame buffer pool (temp files, removed on exit). *)
let load_rel ?(backend = Relstore.Mem) path =
  Relstore.load_csv_relation ~backend
    ~name:(Filename.remove_extension (Filename.basename path))
    path

let load_pair ?backend r_path p_path =
  (load_rel ?backend r_path, load_rel ?backend p_path)

(* "--relations a.csv,b.csv,c.csv" — the k-ary instance. *)
let load_relations ?backend spec =
  let paths =
    List.filter
      (fun s -> not (String.equal s ""))
      (List.map String.trim (String.split_on_char ',' spec))
  in
  if List.compare_length_with paths 2 < 0 then begin
    Printf.eprintf "--relations needs at least two CSV paths, got %S\n" spec;
    exit 2
  end;
  List.map (fun p -> load_rel ?backend p) paths

(* Lookahead engine selection (--engine): the fast engine is the default;
   the reference engine is the Algorithm 5 transcription kept as the
   differential oracle; parallel fans candidate scoring over domains. *)
let lks_of ~engine k =
  match engine with
  | `Fast -> Strategy.lks k
  | `Reference -> Strategy.lks_reference k
  | `Parallel domains -> Strategy.lks_par ~domains k

(* Universe builder selection (--universe): the profile quotient is the
   default; naive is the per-pair reference scan kept for differentials;
   parallel fans distinct R-profiles over domains; sampled:<pairs> draws
   that many uniform random pairs instead of scanning the product. *)
let builder_name = function
  | `Naive -> "naive"
  | `Quotient -> "quotient"
  | `Parallel -> "parallel"
  | `Sampled pairs -> Printf.sprintf "sampled:%d" pairs

let builder_of ~seed = function
  | `Naive -> Universe.build_naive
  | `Quotient -> Universe.build_quotient
  | `Parallel -> fun r p -> Universe.build_parallel r p
  | `Sampled pairs -> fun r p -> Universe.build_sampled (Prng.create seed) ~pairs r p

(* The same selector for a k-ary relation list.  The quotient/parallel
   builders share the profile-trie walk; naive is the Cartesian
   reference; sampled draws random k-tuples. *)
let kary_builder_of ~seed ubuilder rels =
  match ubuilder with
  | `Naive -> Universe.build_kary_naive rels
  | `Quotient | `Parallel -> Universe.build_kary rels
  | `Sampled tuples ->
      Universe.build_sampled_kary (Prng.create seed) ~tuples rels

let strategy_of_name ~seed ~engine = function
  | "bu" -> Strategy.bu
  | "td" -> Strategy.td
  | "l1s" -> lks_of ~engine 1
  | "l2s" -> lks_of ~engine 2
  | "rnd" -> Strategy.rnd (Prng.create seed)
  | "igs" -> Strategy.igs (Prng.create seed)
  | "hybrid" -> Strategy.hybrid
  | s ->
      Printf.eprintf "unknown strategy %S (bu|td|l1s|l2s|rnd|igs|hybrid)\n" s;
      exit 2

(* "A1=B2,A3=B1" -> name pairs *)
let parse_goal spec =
  List.map
    (fun part ->
      match String.split_on_char '=' (String.trim part) with
      | [ a; b ] -> (String.trim a, String.trim b)
      | _ ->
          Printf.eprintf "bad goal component %S (expected lhs=rhs)\n" part;
          exit 2)
    (if spec = "" then [] else String.split_on_char ',' spec)

(* ----------------------------- infer ------------------------------ *)

(* Render an inferred predicate as an executable SQL statement. *)
let sql_of_predicate r p omega theta =
  let pairs =
    List.map
      (fun (i, j) ->
        ( Jqi_relational.Schema.name_at (Relation.schema r) i,
          Jqi_relational.Schema.name_at (Relation.schema p) j ))
      (Omega.to_pairs omega theta)
  in
  Jqi_sql.Ast.to_string
    (Jqi_sql.Ast.of_equijoin ~r:(Relation.name r) ~p:(Relation.name p) pairs)

(* Lenient label reading: y/n/+/-/yes/no in any case; anything else
   re-prompts; EOF returns [None] so the caller can freeze the session
   instead of dropping the user's answers on the floor. *)
let read_label () =
  let rec prompt () =
    Printf.printf "  [y]es / [n]o > %!";
    match input_line stdin |> String.trim |> String.lowercase_ascii with
    | "y" | "yes" | "+" -> Some Sample.Positive
    | "n" | "no" | "-" -> Some Sample.Negative
    | other ->
        Printf.printf "  (%S is not an answer — y, n, yes, no, + or -)\n" other;
        prompt ()
    | exception End_of_file -> None
  in
  prompt ()

let print_question r p (q : Engine.question) =
  match q.Engine.representative with
  | Some (tr, tp) ->
      Printf.printf "\nWould you combine these two rows?\n  %s: %s\n  %s: %s\n"
        (Relation.name r) (Tuple.to_string tr) (Relation.name p)
        (Tuple.to_string tp)
  | None -> ()

(* Freeze a live engine as a v2 session document: labels so far, the
   strategy, and the in-flight question if one is outstanding. *)
let save_session path universe strategy engine =
  let pending =
    match Engine.pending engine with
    | Some q -> Some (Universe.cls universe q.Engine.class_id).Universe.rep
    | None -> None
  in
  Jqi_core.Session.save ~strategy:(Strategy.name strategy) ?pending path
    universe (Engine.result engine).Engine.state

let cmd_infer_binary r_path p_path strategy_name seed verbose engine ubuilder
    backend resume save trace metrics =
  setup_logs verbose;
  obs_setup ~trace ~metrics;
  let r, p = load_pair ~backend r_path p_path in
  let universe = builder_of ~seed ubuilder r p in
  let omega = Universe.omega universe in
  Printf.printf
    "Loaded %s (%d rows) and %s (%d rows); %d tuple classes over |Ω| = %d \
     (%s universe builder).\n"
    (Relation.name r) (Relation.cardinality r) (Relation.name p)
    (Relation.cardinality p) (Universe.n_classes universe) (Omega.width omega)
    (builder_name ubuilder);
  let strategy = strategy_of_name ~seed ~engine strategy_name in
  let engine =
    match resume with
    | None -> Engine.create universe strategy
    | Some path ->
        let loaded = Jqi_core.Session.load_full path universe in
        Printf.printf "Resumed %d earlier answers from %s%s.\n"
          (State.n_interactions loaded.Jqi_core.Session.state)
          path
          (match loaded.Jqi_core.Session.strategy with
          | Some s -> Printf.sprintf " (saved under strategy %s)" s
          | None -> "");
        let pending =
          Jqi_core.Session.pending_class universe
            loaded.Jqi_core.Session.state loaded.Jqi_core.Session.pending
        in
        Engine.create ~state:loaded.Jqi_core.Session.state ?pending universe
          strategy
  in
  (* The interactive loop over the sans-IO engine.  [None] means stdin
     closed mid-session: autosave (to --save or a temp file) and print the
     exact command that resumes it. *)
  let rec drive engine =
    match Engine.pending engine with
    | None -> Some engine
    | Some q -> (
        print_question r p q;
        match read_label () with
        | Some label -> drive (Engine.answer engine label)
        | None ->
            let path =
              match save with
              | Some path -> path
              | None -> Filename.temp_file "jqinfer" "-session.json"
            in
            save_session path universe strategy engine;
            Printf.printf
              "\nInput closed — session autosaved to %s.\nResume with:\n  \
               jqinfer infer %s %s --strategy %s --resume %s\n"
              path r_path p_path strategy_name path;
            None)
  in
  match drive engine with
  | None -> obs_finish ~trace ~metrics
  | Some engine ->
      let result = Engine.result engine in
      (match save with
      | Some path ->
          save_session path universe strategy engine;
          Printf.printf "Session saved to %s.\n" path
      | None -> ());
      if result.Engine.halted then begin
        let cert = Jqi_core.Certificate.of_state result.Engine.state in
        Printf.printf
          "Minimal evidence: %d of your %d answers pinned the query down.\n"
          (Jqi_core.Certificate.size cert)
          result.Engine.n_interactions
      end;
      Printf.printf "\nInferred join predicate after %d answers:\n  %s\n"
        result.Engine.n_interactions
        (Omega.pred_to_string omega result.Engine.predicate);
      Printf.printf "As SQL:\n  %s\n"
        (sql_of_predicate r p omega result.Engine.predicate);
      let join =
        Jqi_relational.Join.equijoin r p
          (Omega.to_pairs omega result.Engine.predicate)
      in
      Printf.printf "It selects %d of the %d pairs.\n"
        (Relation.cardinality join)
        (Universe.total_tuples universe);
      obs_finish ~trace ~metrics

(* --------------------------- k-ary infer -------------------------- *)

let print_kquestion rels (q : Engine.question) =
  match q.Engine.rows with
  | Some tuples ->
      Printf.printf "\nWould you combine these rows?\n";
      Array.iteri
        (fun i t ->
          Printf.printf "  %s: %s\n"
            (Relation.name rels.(i))
            (Tuple.to_string t))
        tuples
  | None -> ()

(* How many k-tuples of the instance the predicate selects. *)
let selected_tuples universe predicate =
  let total = ref 0 in
  for i = 0 to Universe.n_classes universe - 1 do
    if Jqi_util.Bits.subset predicate (Universe.signature universe i) then
      total := !total + Universe.count universe i
  done;
  !total

let cmd_infer_kary spec strategy_name seed verbose engine ubuilder backend
    resume save trace metrics =
  setup_logs verbose;
  obs_setup ~trace ~metrics;
  let rels = load_relations ~backend spec in
  let universe = kary_builder_of ~seed ubuilder rels in
  let omega = Universe.omega universe in
  let rel_arr = Array.of_list rels in
  Printf.printf
    "Loaded %s; %d tuple classes over |Ω| = %d (%s universe builder).\n"
    (String.concat ", "
       (List.map
          (fun r ->
            Printf.sprintf "%s (%d rows)" (Relation.name r)
              (Relation.cardinality r))
          rels))
    (Universe.n_classes universe) (Omega.width omega) (builder_name ubuilder);
  let strategy = strategy_of_name ~seed ~engine strategy_name in
  let engine =
    match resume with
    | None -> Engine.create universe strategy
    | Some path ->
        let loaded = Jqi_core.Session.load_full path universe in
        Printf.printf "Resumed %d earlier answers from %s%s.\n"
          (State.n_interactions loaded.Jqi_core.Session.state)
          path
          (match loaded.Jqi_core.Session.strategy with
          | Some s -> Printf.sprintf " (saved under strategy %s)" s
          | None -> "");
        let pending =
          Jqi_core.Session.pending_class universe
            loaded.Jqi_core.Session.state loaded.Jqi_core.Session.pending
        in
        Engine.create ~state:loaded.Jqi_core.Session.state ?pending universe
          strategy
  in
  let rec drive engine =
    match Engine.pending engine with
    | None -> Some engine
    | Some q -> (
        print_kquestion rel_arr q;
        match read_label () with
        | Some label -> drive (Engine.answer engine label)
        | None ->
            let path =
              match save with
              | Some path -> path
              | None -> Filename.temp_file "jqinfer" "-session.json"
            in
            save_session path universe strategy engine;
            Printf.printf
              "\nInput closed — session autosaved to %s.\nResume with:\n  \
               jqinfer infer --relations %s --strategy %s --resume %s\n"
              path spec strategy_name path;
            None)
  in
  match drive engine with
  | None -> obs_finish ~trace ~metrics
  | Some engine ->
      let result = Engine.result engine in
      (match save with
      | Some path ->
          save_session path universe strategy engine;
          Printf.printf "Session saved to %s.\n" path
      | None -> ());
      if result.Engine.halted then begin
        let cert = Jqi_core.Certificate.of_state result.Engine.state in
        Printf.printf
          "Minimal evidence: %d of your %d answers pinned the query down.\n"
          (Jqi_core.Certificate.size cert)
          result.Engine.n_interactions
      end;
      Printf.printf "\nInferred join predicate after %d answers:\n  %s\n"
        result.Engine.n_interactions
        (Omega.pred_to_string omega result.Engine.predicate);
      Printf.printf "It selects %d of the %d tuple combinations.\n"
        (selected_tuples universe result.Engine.predicate)
        (Universe.total_tuples universe);
      obs_finish ~trace ~metrics

let cmd_infer r_path p_path relations strategy_name seed verbose engine
    ubuilder backend resume save trace metrics =
  match (relations, r_path, p_path) with
  | Some spec, None, None ->
      cmd_infer_kary spec strategy_name seed verbose engine ubuilder backend
        resume save trace metrics
  | Some _, Some _, _ | Some _, _, Some _ ->
      Printf.eprintf
        "infer takes either R.csv P.csv positionals or --relations, not both\n";
      exit 2
  | None, Some r, Some p ->
      cmd_infer_binary r p strategy_name seed verbose engine ubuilder backend
        resume save trace metrics
  | None, None, _ | None, _, None ->
      Printf.eprintf "infer needs R.csv P.csv positionals or --relations\n";
      exit 2

(* ---------------------------- simulate ---------------------------- *)

let cmd_simulate_binary r_path p_path goal_spec seed verbose engine ubuilder
    backend trace metrics =
  setup_logs verbose;
  obs_setup ~trace ~metrics;
  let r, p = load_pair ~backend r_path p_path in
  let universe = builder_of ~seed ubuilder r p in
  let omega = Universe.omega universe in
  let goal = Omega.of_names omega (parse_goal goal_spec) in
  Printf.printf
    "Instance: |D| = %d, %d classes, join ratio %.3f (%s universe builder); \
     goal %s\n"
    (Universe.total_tuples universe)
    (Universe.n_classes universe)
    (Universe.join_ratio universe)
    (builder_name ubuilder)
    (Omega.pred_to_string omega goal);
  List.iter
    (fun name ->
      let strategy = strategy_of_name ~seed ~engine name in
      let result = Inference.run universe strategy (Oracle.honest ~goal) in
      Printf.printf "  %-4s %4d interactions  %8.4fs  inferred %s%s\n"
        result.strategy result.n_interactions result.elapsed
        (Omega.pred_to_string omega result.predicate)
        (if Inference.verified universe ~goal result then ""
         else "  [NOT instance-equivalent]"))
    [ "bu"; "td"; "l1s"; "l2s"; "rnd"; "igs"; "hybrid" ];
  let td_result = Inference.run universe Strategy.td (Oracle.honest ~goal) in
  Printf.printf "inferred query as SQL:\n  %s\n"
    (sql_of_predicate r p omega td_result.predicate);
  obs_finish ~trace ~metrics

let cmd_simulate_kary spec goal_spec seed verbose engine ubuilder backend
    trace metrics =
  setup_logs verbose;
  obs_setup ~trace ~metrics;
  let rels = load_relations ~backend spec in
  let universe = kary_builder_of ~seed ubuilder rels in
  let omega = Universe.omega universe in
  let goal = Omega.of_names_kary omega (parse_goal goal_spec) in
  Printf.printf
    "Instance: %d relations, |D| = %d, %d classes, join ratio %.3f (%s \
     universe builder); goal %s\n"
    (List.length rels)
    (Universe.total_tuples universe)
    (Universe.n_classes universe)
    (Universe.join_ratio universe)
    (builder_name ubuilder)
    (Omega.pred_to_string omega goal);
  List.iter
    (fun name ->
      let strategy = strategy_of_name ~seed ~engine name in
      let result = Inference.run universe strategy (Oracle.honest ~goal) in
      Printf.printf "  %-4s %4d interactions  %8.4fs  inferred %s%s\n"
        result.strategy result.n_interactions result.elapsed
        (Omega.pred_to_string omega result.predicate)
        (if Inference.verified universe ~goal result then ""
         else "  [NOT instance-equivalent]"))
    [ "bu"; "td"; "l1s"; "l2s"; "rnd"; "igs"; "hybrid" ];
  obs_finish ~trace ~metrics

let cmd_simulate r_path p_path relations goal_spec seed verbose engine
    ubuilder backend trace metrics =
  match (relations, r_path, p_path) with
  | Some spec, None, None ->
      cmd_simulate_kary spec goal_spec seed verbose engine ubuilder backend
        trace metrics
  | Some _, Some _, _ | Some _, _, Some _ ->
      Printf.eprintf
        "simulate takes either R.csv P.csv positionals or --relations, not \
         both\n";
      exit 2
  | None, Some r, Some p ->
      cmd_simulate_binary r p goal_spec seed verbose engine ubuilder backend
        trace metrics
  | None, None, _ | None, _, None ->
      Printf.eprintf "simulate needs R.csv P.csv positionals or --relations\n";
      exit 2

(* ---------------------------- gen-tpch ---------------------------- *)

let cmd_gen_tpch scale seed out_dir =
  let db = Jqi_tpch.Tpch.generate ~seed ~scale () in
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  List.iter
    (fun rel ->
      let path = Filename.concat out_dir (Relation.name rel ^ ".csv") in
      Csv.save_relation path rel;
      Printf.printf "wrote %s (%d rows)\n" path (Relation.cardinality rel))
    [ db.part; db.supplier; db.partsupp; db.customer; db.orders; db.lineitem ]

(* ---------------------------- gen-synth --------------------------- *)

let cmd_gen_synth config_spec seed out_dir =
  let config =
    match
      List.map int_of_string_opt (String.split_on_char ',' config_spec)
    with
    | [ Some n; Some m; Some l; Some v ] -> Jqi_synth.Synth.config n m l v
    | _ ->
        Printf.eprintf "bad --config %S (expected n,m,l,v)\n" config_spec;
        exit 2
  in
  let prng = Prng.create seed in
  let r, p = Jqi_synth.Synth.generate prng config in
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  List.iter
    (fun rel ->
      let path = Filename.concat out_dir (Relation.name rel ^ ".csv") in
      Csv.save_relation path rel;
      Printf.printf "wrote %s (%d rows)\n" path (Relation.cardinality rel))
    [ r; p ]

(* -------------------------- semijoin-cons ------------------------- *)

let parse_indices spec =
  if String.trim spec = "" then []
  else
    List.map
      (fun s ->
        match int_of_string_opt (String.trim s) with
        | Some i -> i
        | None ->
            Printf.eprintf "bad row index %S\n" s;
            exit 2)
      (String.split_on_char ',' spec)

let cmd_semijoin_cons r_path p_path pos_spec neg_spec =
  let r, p = load_pair r_path p_path in
  let omega = Omega.of_schemas (Relation.schema r) (Relation.schema p) in
  let sample =
    Jqi_semijoin.Semijoin.sample ~pos:(parse_indices pos_spec)
      ~neg:(parse_indices neg_spec)
  in
  match Jqi_semijoin.Cons.solve r p omega sample with
  | Some theta ->
      Printf.printf "CONSISTENT — witness semijoin predicate:\n  %s\n"
        (Omega.pred_to_string omega theta);
      Printf.printf "R ⋉_θ P selects %d of %d rows of %s\n"
        (Relation.cardinality (Jqi_semijoin.Semijoin.eval r p omega theta))
        (Relation.cardinality r) (Relation.name r)
  | None ->
      print_endline
        "INCONSISTENT — no semijoin predicate selects all positives and no negative."

(* ----------------------------- lattice ---------------------------- *)

let cmd_lattice r_path p_path out =
  let r, p = load_pair r_path p_path in
  let universe = Universe.build r p in
  let omega = Universe.omega universe in
  let dot = Lattice.to_dot omega universe in
  (match out with
  | None -> print_string dot
  | Some path ->
      let oc = open_out path in
      output_string oc dot;
      close_out oc;
      Printf.printf "wrote %s\n" path);
  Printf.printf "%% %d signature classes, %d non-nullable predicates\n"
    (Universe.n_classes universe)
    (Lattice.non_nullable_count (Universe.signatures universe))

(* --------------------------- semijoin-infer ------------------------ *)

(* Interactive semijoin inference (the §7 heuristic): the user labels rows
   of R as kept / filtered out; certain rows are skipped via the SAT-backed
   consistency oracle. *)
let cmd_semijoin_infer r_path p_path max_queries =
  let r, p = load_pair r_path p_path in
  let omega = Omega.of_schemas (Relation.schema r) (Relation.schema p) in
  Printf.printf
    "Semijoin inference over %s (%d rows) against %s (%d rows).\n\
     Answer whether each row of %s should be KEPT (it has a matching row \
     in %s under the filter you have in mind).\n"
    (Relation.name r) (Relation.cardinality r) (Relation.name p)
    (Relation.cardinality p) (Relation.name r) (Relation.name p);
  let oracle i =
    Printf.printf "\nKeep this row of %s?\n  %s\n" (Relation.name r)
      (Tuple.to_string (Relation.row r i));
    let rec ask () =
      Printf.printf "  [y]es / [n]o > %!";
      match input_line stdin |> String.lowercase_ascii |> String.trim with
      | "y" | "yes" | "+" -> true
      | "n" | "no" | "-" -> false
      | _ -> ask ()
    in
    ask ()
  in
  let result =
    match max_queries with
    | Some m -> Jqi_semijoin.Heuristic.run ~max_queries:m r p omega ~oracle
    | None -> Jqi_semijoin.Heuristic.run r p omega ~oracle
  in
  Printf.printf
    "\nInferred semijoin predicate after %d questions (%d rows implied):\n  %s\n"
    result.n_queries
    (List.length result.implied)
    (Omega.pred_to_string omega result.predicate);
  Printf.printf "It keeps %d of %d rows.\n"
    (Relation.cardinality (Jqi_semijoin.Semijoin.eval r p omega result.predicate))
    (Relation.cardinality r)

(* ----------------------------- figure ----------------------------- *)

(* Print the instance the way the paper's Figures 3 and 5 do: every tuple
   of the Cartesian product with its most specific predicate T and its
   entropy (u⁺, u⁻) under the empty sample.  Guarded to small products —
   the table has one row per tuple. *)
let cmd_figure r_path p_path =
  let r, p = load_pair r_path p_path in
  let universe = Universe.build r p in
  let omega = Universe.omega universe in
  if Universe.total_tuples universe > 500 then begin
    Printf.eprintf
      "error: %d tuples is too many to tabulate (limit 500); use 'analyze'\n"
      (Universe.total_tuples universe);
    exit 1
  end;
  let st = State.create universe in
  let rows = ref [] in
  for i = Relation.cardinality r - 1 downto 0 do
    for j = Relation.cardinality p - 1 downto 0 do
      let s =
        Jqi_core.Tsig.of_tuples omega (Relation.row r i) (Relation.row p j)
      in
      let cls = Option.get (Universe.find_class universe s) in
      let entropy = Jqi_core.Entropy.entropy1 st cls in
      rows :=
        [
          Printf.sprintf "(%d,%d)" i j;
          Tuple.to_string (Relation.row r i);
          Tuple.to_string (Relation.row p j);
          Omega.pred_to_string omega s;
          Fmt.str "%a" Jqi_core.Entropy.pp entropy;
        ]
        :: !rows
    done
  done;
  Jqi_util.Ascii_table.print
    ~headers:[ "tuple"; Relation.name r; Relation.name p; "T (Fig. 3)"; "entropy (Fig. 5)" ]
    !rows

(* ----------------------------- analyze ---------------------------- *)

let cmd_analyze r_path p_path =
  let r, p = load_pair r_path p_path in
  let universe = Universe.build r p in
  Fmt.pr "%a@." Jqi_core.Analysis.pp (Jqi_core.Analysis.analyze universe)

(* ------------------------------ query ----------------------------- *)

(* Run a SQL query over CSV files registered as tables.  Table specs are
   name=path pairs; the table name is what the query references. *)
let cmd_query sql table_specs =
  let catalog =
    List.map
      (fun spec ->
        match String.index_opt spec '=' with
        | Some k ->
            let name = String.sub spec 0 k in
            let path = String.sub spec (k + 1) (String.length spec - k - 1) in
            (name, Csv.load_relation ~name path)
        | None ->
            (Filename.remove_extension (Filename.basename spec),
             Csv.load_relation
               ~name:(Filename.remove_extension (Filename.basename spec))
               spec))
      table_specs
  in
  match Jqi_sql.Engine.query catalog sql with
  | result -> Relation.print result
  | exception Jqi_sql.Engine.Error msg ->
      Printf.eprintf "error: %s\n" msg;
      exit 1

(* ------------------------------ serve ----------------------------- *)

(* "name=path" or bare "path" (named after the file). *)
let parse_table_spec spec =
  match String.index_opt spec '=' with
  | Some k ->
      ( String.sub spec 0 k,
        String.sub spec (k + 1) (String.length spec - k - 1) )
  | None -> (Filename.remove_extension (Filename.basename spec), spec)

(* "host:port" (numeric host) or "path.sock" → a listener address. *)
let parse_listen_addr spec =
  match String.rindex_opt spec ':' with
  | Some k -> (
      let host = String.sub spec 0 k in
      let port = String.sub spec (k + 1) (String.length spec - k - 1) in
      match int_of_string_opt port with
      | Some p when p >= 0 && p < 65536 ->
          Jqi_server.Listener.Tcp ((if host = "" then "127.0.0.1" else host), p)
      | Some _ | None -> Jqi_server.Listener.Unix_path spec)
  | None -> Jqi_server.Listener.Unix_path spec

(* JSON-lines service.  Default deployment is the blocking loop on
   stdin/stdout (one client, one frame per line).  --listen switches to
   the concurrent front end: a socket listener feeding a domain worker
   pool over the sharded manager. *)
let cmd_serve table_specs seed idle_timeout listen workers queue shards
    sweep_every backend =
  let catalog = Jqi_server.Catalog.create ~shards () in
  let loader ~name path = Relstore.load_csv_relation ~backend ~name path in
  List.iter
    (fun spec ->
      let name, path = parse_table_spec spec in
      Jqi_server.Catalog.add ~name catalog (loader ~name path))
    table_specs;
  let idle_timeout = if idle_timeout > 0. then Some idle_timeout else None in
  let manager =
    Jqi_server.Manager.create ?idle_timeout ~seed ~shards ~loader catalog
  in
  match listen with
  | None -> Jqi_server.Service.serve_channels manager stdin stdout
  | Some spec ->
      let addr = parse_listen_addr spec in
      let pool = Jqi_server.Pool.create ~capacity:queue ~workers () in
      let listener =
        Jqi_server.Listener.start ~sweep_every ~pool manager addr
      in
      Printf.eprintf "jqinfer: listening on %s (%d workers, queue %d, %d shards)\n%!"
        (Jqi_server.Listener.addr_to_string
           (Jqi_server.Listener.address listener))
        workers queue shards;
      let stop_requested = Atomic.make false in
      let shutdown _ = Atomic.set stop_requested true in
      Sys.set_signal Sys.sigint (Sys.Signal_handle shutdown);
      Sys.set_signal Sys.sigterm (Sys.Signal_handle shutdown);
      (* OCaml signal handlers only run when OCaml code executes, so a
         [Condition.wait] here would leave SIGINT/SIGTERM pending forever
         once every thread is parked in a blocking C call.  Napping in
         short ticks gives the runtime a safe point to deliver the
         handler, bounding shutdown latency to one tick. *)
      while not (Atomic.get stop_requested) do
        Thread.delay 0.2
      done;
      Jqi_server.Listener.stop listener;
      Jqi_server.Pool.shutdown pool

(* ------------------------------ client ---------------------------- *)

(* Scriptable protocol driver: spawn (or be pointed at) a server, load
   both CSVs into its catalog, open a session and answer every question
   honestly against --goal, evaluated locally.  Exits non-zero on any
   protocol failure, so CI can assert on both the exit code and the
   final "predicate:" line. *)
let cmd_client server_command r_path p_path goal_spec strategy resume_after
    churn_after =
  let module P = Jqi_server.Protocol in
  let ic, oc = Unix.open_process server_command in
  let next_id = ref 0 in
  let unexpected what resp =
    Printf.eprintf "%s: unexpected reply %s\n" what
      (P.encode_response ~id:0 resp);
    exit 1
  in
  let call req =
    incr next_id;
    output_string oc (P.encode_request ~id:!next_id req);
    output_char oc '\n';
    flush oc;
    match input_line ic with
    | exception End_of_file ->
        Printf.eprintf "server closed the connection\n";
        exit 1
    | line -> (
        match P.decode_response line with
        | Ok (_, resp) -> resp
        | Error msg ->
            Printf.eprintf "undecodable response: %s\n" msg;
            exit 1)
  in
  (match call (P.Hello { versions = [ P.version ] }) with
  | P.Welcome { version } -> Printf.printf "protocol v%d\n" version
  | resp -> unexpected "hello" resp);
  let load path =
    match call (P.Load { name = None; path }) with
    | P.Loaded { name; rows } ->
        Printf.printf "loaded %s (%d rows)\n" name rows;
        name
    | resp -> unexpected "load" resp
  in
  let r_name = load r_path in
  let p_name = load p_path in
  (* The honest oracle, computed locally: positive iff goal ⊆ T(t). *)
  let r, p = load_pair r_path p_path in
  let omega = Omega.of_schemas (Relation.schema r) (Relation.schema p) in
  let goal = Omega.of_names omega (parse_goal goal_spec) in
  let label_of r_row p_row =
    if
      Jqi_util.Bits.subset goal
        (Sample.signature_of_tuple omega r p (r_row, p_row))
    then Sample.Positive
    else Sample.Negative
  in
  let session =
    match call (P.Open_session { r = r_name; p = p_name; strategy }) with
    | P.Opened { session; classes; omega_width; cache_hit } ->
        Printf.printf "opened %s (%d classes, |Ω| = %d, cache_hit=%b)\n"
          session classes omega_width cache_hit;
        ref session
    | resp -> unexpected "open" resp
  in
  let answered = ref 0 in
  (* After --resume-after answers: freeze the session, close it and thaw
     the document into a fresh one — a live test of v2 persistence and of
     the universe cache (the re-open must be a hit). *)
  let freeze_thaw () =
    match call (P.Save { session = !session }) with
    | P.Saved { doc; _ } -> (
        (match call (P.Close { session = !session }) with
        | P.Closed _ -> ()
        | resp -> unexpected "close" resp);
        match
          call
            (P.Resume { r = r_name; p = p_name; strategy = Some strategy; doc })
        with
        | P.Opened { session = fresh; cache_hit; _ } ->
            Printf.printf "resumed as %s (cache_hit=%b)\n" fresh cache_hit;
            session := fresh
        | resp -> unexpected "resume" resp)
    | resp -> unexpected "save" resp
  in
  (* After --churn-after answers: duplicate R's first row over the wire,
     then delete the duplicate again — a net no-op churn round-trip whose
     point is the server-side machinery: both deltas must patch the
     cached universe and re-certify this very session (a stale flag is a
     protocol failure, since no label is contradicted). *)
  let churn () =
    let first_row_cells =
      List.map Jqi_relational.Value.to_string
        (Jqi_relational.Tuple.to_list (Relation.rows r).(0))
    in
    let send what insert delete =
      match call (P.Delta { relation = r_name; insert; delete }) with
      | P.Delta_applied
          { d_added; d_removed; d_cache_patched; d_recertified; d_stale; _ }
        ->
          Printf.printf
            "churn %s: +%d/-%d rows, %d cache entries patched, %d sessions \
             re-certified\n"
            what d_added d_removed d_cache_patched
            (List.length d_recertified);
          if not (List.mem !session d_recertified) then begin
            Printf.eprintf "churn %s: session %s was not re-certified\n" what
              !session;
            exit 1
          end;
          if not (List.is_empty d_stale) then begin
            Printf.eprintf "churn %s: unexpected stale sessions\n" what;
            exit 1
          end
      | resp -> unexpected ("churn " ^ what) resp
    in
    send "insert" [ first_row_cells ] [];
    send "delete" [] [ first_row_cells ]
  in
  let rec drive turn =
    match turn with
    | P.Question { q_r_row; q_p_row; q_r_cells; q_p_cells; _ } ->
        let label = label_of q_r_row q_p_row in
        incr answered;
        Printf.printf "Q%d  (%s) ⋈ (%s) -> %s\n" !answered
          (String.concat ", " q_r_cells)
          (String.concat ", " q_p_cells)
          (match label with Sample.Positive -> "+" | Sample.Negative -> "-");
        let next = call (P.Tell { session = !session; label }) in
        if Int.equal !answered churn_after then churn ();
        if Int.equal !answered resume_after then begin
          freeze_thaw ();
          drive (call (P.Ask { session = !session }))
        end
        else drive next
    | P.Done { predicate; n_interactions; _ } ->
        Printf.printf "predicate: %s\n"
          (String.concat ","
             (List.map (fun (a, b) -> a ^ "=" ^ b) predicate));
        Printf.printf "interactions: %d\n" n_interactions
    | resp -> unexpected "turn" resp
  in
  drive (call (P.Ask { session = !session }));
  (match call P.Stats with
  | P.Stats_reply { cache_hits; cache_misses; _ } ->
      Printf.printf "cache: %d hits, %d misses\n" cache_hits cache_misses
  | resp -> unexpected "stats" resp);
  (match call (P.Close { session = !session }) with
  | P.Closed _ -> ()
  | resp -> unexpected "close" resp);
  ignore (Unix.close_process (ic, oc))

(* ------------------------------ CLI ------------------------------- *)

open Cmdliner

let r_arg = Arg.(required & pos 0 (some file) None & info [] ~docv:"R.csv")
let p_arg = Arg.(required & pos 1 (some file) None & info [] ~docv:"P.csv")

(* infer/simulate accept either the two positionals or --relations; the
   positionals become optional there and the command validates. *)
let r_opt_arg = Arg.(value & pos 0 (some file) None & info [] ~docv:"R.csv")
let p_opt_arg = Arg.(value & pos 1 (some file) None & info [] ~docv:"P.csv")

let relations_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "relations" ] ~docv:"A.csv,B.csv,C.csv"
        ~doc:"Infer a k-ary equijoin over two or more comma-separated CSV \
              files instead of the R.csv P.csv positionals.  The universe is \
              the k-ary profile quotient; questions show one row per \
              relation.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed for randomized strategies.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Trace every question (debug logs).")

let strategy_arg =
  Arg.(
    value & opt string "td"
    & info [ "s"; "strategy" ] ~doc:"Strategy: bu, td, l1s, l2s, rnd, igs, hybrid.")

(* --engine picks the lookahead implementation behind l1s/l2s; the other
   strategies ignore it.  --domains only matters with --engine parallel. *)
let engine_arg =
  let engine_conv =
    Arg.enum [ ("fast", `Fast); ("reference", `Reference); ("parallel", `Parallel) ]
  in
  Arg.(
    value & opt engine_conv `Fast
    & info [ "engine" ]
        ~doc:"Lookahead engine for l1s/l2s: $(b,fast) (incremental, memoized, \
              pruned — the default), $(b,reference) (the direct Algorithm 5 \
              transcription), or $(b,parallel) (fast engine with candidate \
              scoring fanned over --domains domains).")

let domains_arg =
  Arg.(
    value & opt int 0
    & info [ "domains" ]
        ~doc:"Domain count for --engine parallel (0 = recommended count).")

let engine_term =
  Term.(
    const (fun engine domains ->
        match engine with
        | (`Fast | `Reference) as e -> e
        | `Parallel ->
            `Parallel
              (if domains > 0 then domains else Domain.recommended_domain_count ()))
    $ engine_arg $ domains_arg)

let universe_arg =
  let parse s =
    match String.lowercase_ascii (String.trim s) with
    | "naive" -> Ok `Naive
    | "quotient" -> Ok `Quotient
    | "parallel" -> Ok `Parallel
    | s when String.length s > 8 && String.equal (String.sub s 0 8) "sampled:" -> (
        match int_of_string_opt (String.sub s 8 (String.length s - 8)) with
        | Some pairs when pairs > 0 -> Ok (`Sampled pairs)
        | Some _ | None ->
            Error (`Msg "sampled:<pairs> needs a positive pair count"))
    | _ -> Error (`Msg "expected naive, quotient, parallel or sampled:<pairs>")
  in
  let print ppf b = Fmt.string ppf (builder_name b) in
  Arg.(
    value
    & opt (conv (parse, print)) `Quotient
    & info [ "universe" ] ~docv:"BUILDER"
        ~doc:"Universe constructor: $(b,quotient) (dictionary-encoded \
              row-profile quotient — the default), $(b,naive) (the per-pair \
              reference scan), $(b,parallel) (quotient with R-profiles \
              fanned over domains), or $(b,sampled:)$(i,PAIRS) (uniform \
              random pairs instead of a full scan; approximate).")

let trace_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace" ] ~docv:"TRACE.json"
        ~doc:"Write a Chrome-trace JSON of the run (open in chrome://tracing \
              or Perfetto).")

let metrics_arg =
  Arg.(
    value & flag
    & info [ "metrics" ]
        ~doc:"Print the instrumentation report (counters, histograms, span \
              tree) after the run.")

let backend_str_arg =
  Arg.(
    value & opt string "mem"
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:"Relation storage backend: $(b,mem) (rows in arrays — the \
              default) or $(b,paged) (rows stream into heap-file stores \
              read back through a --buffer-pages-frame buffer pool; \
              universes are byte-identical across backends).")

let buffer_pages_arg =
  Arg.(
    value & opt int Relstore.default_frames
    & info [ "buffer-pages" ] ~docv:"N"
        ~doc:"Buffer-pool frames per paged relation (with --backend paged).")

let backend_term =
  Term.(
    const (fun spec frames ->
        match Relstore.backend_of_string ~frames spec with
        | Some b -> b
        | None ->
            Printf.eprintf "unknown --backend %S (mem|paged)\n" spec;
            Stdlib.exit 2)
    $ backend_str_arg $ buffer_pages_arg)

let resume_arg =
  Arg.(value & opt (some file) None
       & info [ "resume" ] ~docv:"SESSION.json" ~doc:"Resume a saved session.")

let save_arg =
  Arg.(value & opt (some string) None
       & info [ "save" ] ~docv:"SESSION.json" ~doc:"Save the session when done.")

let infer_cmd =
  Cmd.v
    (Cmd.info "infer"
       ~doc:"Interactively infer an equijoin over two CSV files (or k with \
             --relations)")
    Term.(const cmd_infer $ r_opt_arg $ p_opt_arg $ relations_arg
          $ strategy_arg $ seed_arg $ verbose_arg $ engine_term $ universe_arg
          $ backend_term $ resume_arg $ save_arg $ trace_arg $ metrics_arg)

let goal_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "goal" ] ~docv:"A=B,C=D" ~doc:"Goal equijoin predicate (column name pairs).")

let simulate_cmd =
  Cmd.v
    (Cmd.info "simulate" ~doc:"Replay inference with a known goal, all strategies")
    Term.(const cmd_simulate $ r_opt_arg $ p_opt_arg $ relations_arg $ goal_arg
          $ seed_arg $ verbose_arg $ engine_term $ universe_arg $ backend_term
          $ trace_arg $ metrics_arg)

let scale_arg = Arg.(value & opt int 1 & info [ "scale" ] ~doc:"Scale factor.")
let out_arg = Arg.(value & opt string "data" & info [ "out" ] ~doc:"Output directory.")

let gen_tpch_cmd =
  Cmd.v
    (Cmd.info "gen-tpch" ~doc:"Generate TPC-H-style CSV files")
    Term.(const cmd_gen_tpch $ scale_arg $ seed_arg $ out_arg)

let config_arg =
  Arg.(
    value & opt string "3,3,50,100"
    & info [ "config" ] ~docv:"n,m,l,v" ~doc:"Synthetic configuration (§5.2).")

let gen_synth_cmd =
  Cmd.v
    (Cmd.info "gen-synth" ~doc:"Generate a synthetic instance")
    Term.(const cmd_gen_synth $ config_arg $ seed_arg $ out_arg)

let pos_arg =
  Arg.(value & opt string "" & info [ "pos" ] ~docv:"I,J,..." ~doc:"Positive row indexes (0-based) of R.")

let neg_arg =
  Arg.(value & opt string "" & info [ "neg" ] ~docv:"I,J,..." ~doc:"Negative row indexes (0-based) of R.")

let semijoin_cmd =
  Cmd.v
    (Cmd.info "semijoin-cons" ~doc:"Decide semijoin consistency (CONS⋉, NP-complete)")
    Term.(const cmd_semijoin_cons $ r_arg $ p_arg $ pos_arg $ neg_arg)

let dot_arg =
  Arg.(value & opt (some string) None & info [ "o" ] ~docv:"FILE.dot" ~doc:"Output file (stdout if absent).")

let sql_arg =
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SQL")

let tables_arg =
  Arg.(
    value & opt_all string []
    & info [ "t"; "table" ] ~docv:"NAME=FILE.csv"
        ~doc:"Register a CSV file as a table (repeatable).")

let max_queries_arg =
  Arg.(value & opt (some int) None & info [ "max-queries" ] ~doc:"Question budget.")

let semijoin_infer_cmd =
  Cmd.v
    (Cmd.info "semijoin-infer"
       ~doc:"Interactively infer a semijoin filter (NP-oracle heuristic)")
    Term.(const cmd_semijoin_infer $ r_arg $ p_arg $ max_queries_arg)

let figure_cmd =
  Cmd.v
    (Cmd.info "figure"
       ~doc:"Tabulate T and entropy for every tuple (the paper's Figures 3/5)")
    Term.(const cmd_figure $ r_arg $ p_arg)

let analyze_cmd =
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Report instance structure and recommend a strategy (§5.3)")
    Term.(const cmd_analyze $ r_arg $ p_arg)

let query_cmd =
  Cmd.v
    (Cmd.info "query" ~doc:"Run a SQL query over CSV tables")
    Term.(const cmd_query $ sql_arg $ tables_arg)

let lattice_cmd =
  Cmd.v
    (Cmd.info "lattice" ~doc:"Export the join-predicate lattice (Figure 4) as Graphviz")
    Term.(const cmd_lattice $ r_arg $ p_arg $ dot_arg)

let idle_timeout_arg =
  Arg.(
    value & opt float 0.
    & info [ "idle-timeout" ] ~docv:"SECONDS"
        ~doc:"Evict sessions idle longer than this (0 = never).")

let listen_arg =
  Arg.(
    value & opt (some string) None
    & info [ "listen" ] ~docv:"ADDR"
        ~doc:"Serve over a socket instead of stdin/stdout: $(i,HOST:PORT) \
              for TCP (port 0 picks one) or a filesystem path for a \
              Unix-domain socket.")

let workers_arg =
  Arg.(
    value & opt int 4
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker domains driving the inference engine (with --listen).")

let queue_arg =
  Arg.(
    value & opt int 256
    & info [ "queue" ] ~docv:"N"
        ~doc:"Bounded request queue; requests beyond it are shed with a \
              $(i,busy) error frame (with --listen).")

let shards_arg =
  Arg.(
    value & opt int 16
    & info [ "shards" ] ~docv:"N"
        ~doc:"Session/universe lock shards.")

let sweep_every_arg =
  Arg.(
    value & opt float 1.
    & info [ "sweep-every" ] ~docv:"SECONDS"
        ~doc:"Idle-eviction sweep period (with --listen; 0 disables).")

let serve_cmd =
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve the JSON-lines inference protocol (stdin/stdout, or \
             --listen for the concurrent socket front end)")
    Term.(const cmd_serve $ tables_arg $ seed_arg $ idle_timeout_arg
          $ listen_arg $ workers_arg $ queue_arg $ shards_arg
          $ sweep_every_arg $ backend_term)

let server_command_arg =
  Arg.(
    value
    & opt string "jqinfer serve"
    & info [ "server" ] ~docv:"CMD"
        ~doc:"Command to launch the server; spoken to over its stdin/stdout.")

let resume_after_arg =
  Arg.(
    value & opt int 0
    & info [ "resume-after" ] ~docv:"N"
        ~doc:"After N answers, save the session, close it and thaw it again \
              (exercises persistence and the universe cache); 0 disables.")

let churn_after_arg =
  Arg.(
    value & opt int 0
    & info [ "churn-after" ] ~docv:"N"
        ~doc:"After N answers, insert a duplicate of R's first row over the \
              wire and delete it again (exercises delta frames and session \
              re-certification); 0 disables.")

let client_cmd =
  Cmd.v
    (Cmd.info "client"
       ~doc:"Drive a served inference session to completion with a known goal")
    Term.(const cmd_client $ server_command_arg $ r_arg $ p_arg $ goal_arg
          $ strategy_arg $ resume_after_arg $ churn_after_arg)

let main =
  Cmd.group
    (Cmd.info "jqinfer" ~version:"1.0.0"
       ~doc:"Interactive inference of join queries (EDBT 2014 reproduction)")
    [ infer_cmd; simulate_cmd; gen_tpch_cmd; gen_synth_cmd; semijoin_cmd;
      semijoin_infer_cmd; lattice_cmd; query_cmd; analyze_cmd; figure_cmd;
      serve_cmd; client_cmd ]

let () = exit (Cmd.eval main)
