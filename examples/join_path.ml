(* Join paths (§7 extension): the travel agency again, now with three
   tables — the user wants flight + hotel + excursion packages, so the
   system must infer TWO join predicates at once from labels on full
   (flight, hotel, excursion) triples.

   Run with:  dune exec examples/join_path.exe *)

module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Omega = Jqi_core.Omega
module Sample = Jqi_core.Sample
module Path = Jqi_joinpath.Path

let flight =
  Relation.of_list ~name:"Flight"
    ~schema:(Schema.of_names [ "From"; "To"; "Airline" ])
    [
      Tuple.strs [ "Paris"; "Lille"; "AF" ];
      Tuple.strs [ "Lille"; "NYC"; "AA" ];
      Tuple.strs [ "NYC"; "Paris"; "AA" ];
      Tuple.strs [ "Paris"; "NYC"; "AF" ];
    ]

let hotel =
  Relation.of_list ~name:"Hotel"
    ~schema:(Schema.of_names [ "City"; "Discount" ])
    [
      Tuple.strs [ "NYC"; "AA" ];
      Tuple.strs [ "Paris"; "None" ];
      Tuple.strs [ "Lille"; "AF" ];
    ]

let excursion =
  Relation.of_list ~name:"Excursion"
    ~schema:(Schema.of_names [ "Place"; "Kind" ])
    [
      Tuple.strs [ "NYC"; "museum" ];
      Tuple.strs [ "NYC"; "boat" ];
      Tuple.strs [ "Paris"; "museum" ];
      Tuple.strs [ "Lille"; "market" ];
    ]

let () =
  let path = Path.build [ flight; hotel; excursion ] in
  Printf.printf
    "Chain Flight → Hotel → Excursion: %d path tuples in %d signature-vector \
     classes, %d edges.\n"
    (Array.fold_left (fun a (c : Path.combo) -> a + c.count) 0 path.combos)
    (Path.n_combos path) (Path.n_edges path);
  (* The goal: hotel in the destination city, excursion in the hotel's
     city. *)
  let goal =
    [|
      Omega.of_names path.omegas.(0) [ ("To", "City") ];
      Omega.of_names path.omegas.(1) [ ("City", "Place") ];
    |]
  in
  Printf.printf "goal (hidden): %s\n"
    (Fmt.str "%a" (Path.pp_predicates path) goal);
  List.iter
    (fun strategy ->
      let result = Path.run path strategy (Path.honest_oracle ~goal) in
      Printf.printf "\n%s: %d labels on (flight, hotel, excursion) triples\n"
        result.strategy result.n_interactions;
      List.iter
        (fun (i, lbl) ->
          let combo = Path.combo path i in
          let parts =
            List.mapi
              (fun k row -> Tuple.to_string (Relation.row path.relations.(k) row))
              (Array.to_list combo.rep)
          in
          Printf.printf "  %s %s\n"
            (match lbl with Sample.Positive -> "+" | Sample.Negative -> "-")
            (String.concat " ⊕ " parts))
        result.steps;
      Printf.printf "  inferred: %s%s\n"
        (Fmt.str "%a" (Path.pp_predicates path) result.predicates)
        (if Path.verified path ~goal result then "  (equivalent to the goal)"
         else "  (NOT equivalent — bug)"))
    [ Path.td; Path.l1s ];
  (* Show the packages the inferred path builds. *)
  let result = Path.run path Path.l1s (Path.honest_oracle ~goal) in
  print_endline "\nThe packages selected by the inferred join path:";
  Array.iter
    (fun (combo : Path.combo) ->
      if Path.selects result.predicates combo.signatures then
        let parts =
          List.mapi
            (fun k row -> Tuple.to_string (Relation.row path.relations.(k) row))
            (Array.to_list combo.rep)
        in
        Printf.printf "  %s (×%d)\n" (String.concat " ⊕ " parts) combo.count)
    path.combos
