(* Synthetic exploration (§5.2): the (3,3,100,100) configuration the paper
   singles out as representative of RDF triple stores — two ternary
   relations whose join predicate may align any subject/predicate/object
   position with any other.

   Sweeps goal sizes 0..4 over freshly generated instances and reports the
   average number of interactions per strategy, reproducing the shape of
   Figure 7a: BU wins only for the empty goal, TD is best at size 2 (the
   hard middle of the lattice), the lookahead strategies win elsewhere.

   Run with:  dune exec examples/synthetic_rdf.exe -- [runs] *)

module Synth = Jqi_synth.Synth
module Universe = Jqi_core.Universe
module Omega = Jqi_core.Omega
module Prng = Jqi_util.Prng
module E = Jqi_experiments

let () =
  let runs =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10
  in
  let config = Synth.config 3 3 100 100 in
  Printf.printf
    "Config %s: triple-store-like relations R(A1,A2,A3), P(B1,B2,B3), %d \
     rows each, values 0..%d; %d runs.\n"
    (Fmt.str "%a" Synth.pp_config config)
    config.rows (config.values - 1) runs;
  let result = E.Fig7.run ~seed:7 ~runs ~goals_per_size:3 config in
  Printf.printf "average join ratio: %.3f (paper: 1.647)\n\n" result.join_ratio;
  print_string (E.Fig7.interactions_chart result);
  print_newline ();
  (* Show one concrete inference in detail. *)
  let prng = Prng.create 99 in
  let r, p = Synth.generate prng config in
  let universe = Universe.build r p in
  let omega = Universe.omega universe in
  match Synth.goals_of_size universe ~size:2 with
  | [] -> print_endline "no size-2 goal on this draw"
  | goal :: _ ->
      Printf.printf "One size-2 inference in detail, goal %s:\n"
        (Omega.pred_to_string omega goal);
      let result =
        Jqi_core.Inference.run universe Jqi_core.Strategy.td
          (Jqi_core.Oracle.honest ~goal)
      in
      List.iter
        (fun (cls, label) ->
          Printf.printf "  asked about signature %s (×%d tuples) -> %s\n"
            (Omega.pred_to_string omega (Universe.signature universe cls))
            (Universe.count universe cls)
            (match label with
            | Jqi_core.Sample.Positive -> "+"
            | Jqi_core.Sample.Negative -> "-"))
        result.steps;
      Printf.printf "inferred %s in %d interactions (|D| = %d tuples)\n"
        (Omega.pred_to_string omega result.predicate)
        result.n_interactions
        (Universe.total_tuples universe)
