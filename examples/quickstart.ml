(* Quickstart: the paper's introduction example (§1, Figures 1-2).

   A travel-agency user wants flight&hotel packages but cannot write the
   join; we infer it by asking her to label a handful of (flight, hotel)
   pairs.  Two goal queries are played out:

     Q1: Flight.To = Hotel.City
     Q2: Flight.To = Hotel.City ∧ Flight.Airline = Hotel.Discount

   Run with:  dune exec examples/quickstart.exe *)

module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Omega = Jqi_core.Omega
module Universe = Jqi_core.Universe
module Strategy = Jqi_core.Strategy
module Oracle = Jqi_core.Oracle
module Inference = Jqi_core.Inference
module Sample = Jqi_core.Sample

let flight =
  Relation.of_list ~name:"Flight"
    ~schema:(Schema.of_names [ "From"; "To"; "Airline" ])
    [
      Tuple.strs [ "Paris"; "Lille"; "AF" ];
      Tuple.strs [ "Lille"; "NYC"; "AA" ];
      Tuple.strs [ "NYC"; "Paris"; "AA" ];
      Tuple.strs [ "Paris"; "NYC"; "AF" ];
    ]

let hotel =
  Relation.of_list ~name:"Hotel"
    ~schema:(Schema.of_names [ "City"; "Discount" ])
    [
      Tuple.strs [ "NYC"; "AA" ];
      Tuple.strs [ "Paris"; "None" ];
      Tuple.strs [ "Lille"; "AF" ];
    ]

let play ~title ~goal_pairs strategy =
  Printf.printf "\n== %s ==\n" title;
  let universe = Universe.build flight hotel in
  let omega = Universe.omega universe in
  let goal = Omega.of_names omega goal_pairs in
  Printf.printf "goal (hidden from the strategy): %s\n"
    (Omega.pred_to_string omega goal);
  let oracle = Oracle.honest ~goal in
  let result = Inference.run universe strategy oracle in
  List.iter
    (fun (cls, label) ->
      match Universe.representative universe cls with
      | Some (tf, th) ->
          Printf.printf "  user labels %s + %s  ->  %s\n"
            (Tuple.to_string tf) (Tuple.to_string th)
            (match label with Sample.Positive -> "yes, keep it"
                            | Sample.Negative -> "no, drop it")
      | None -> ())
    result.steps;
  Printf.printf "inferred after %d interactions: %s\n"
    result.n_interactions
    (Omega.pred_to_string omega result.predicate);
  Printf.printf "equivalent to the goal on this instance: %b\n"
    (Inference.verified universe ~goal result);
  (* The minimal evidence: which of the answers actually pinned the query
     down. *)
  let cert = Jqi_core.Certificate.of_state result.state in
  Printf.printf "minimal evidence: %d of the %d answers suffice\n"
    (Jqi_core.Certificate.size cert) result.n_interactions;
  (* Show the packages the inferred query builds. *)
  let join =
    Jqi_relational.Join.equijoin flight hotel
      (Omega.to_pairs omega result.predicate)
  in
  Printf.printf "the resulting packages (%d):\n" (Relation.cardinality join);
  Relation.iter
    (fun row -> Printf.printf "  %s\n" (Tuple.to_string row))
    join

let () =
  print_endline "Input tables (Figure 1):";
  Relation.print flight;
  Relation.print hotel;
  play ~title:"Inferring Q1 with the top-down strategy"
    ~goal_pairs:[ ("To", "City") ]
    Strategy.td;
  play ~title:"Inferring Q2 (with the discount constraint), top-down"
    ~goal_pairs:[ ("To", "City"); ("Airline", "Discount") ]
    Strategy.td;
  play ~title:"Inferring Q2 with the 2-step lookahead skyline strategy"
    ~goal_pairs:[ ("To", "City"); ("Airline", "Discount") ]
    Strategy.l2s
