(* Crowdsourcing cost model (§1 and §7).

   The paper motivates minimizing interactions by crowdsourcing economics:
   every label is a paid micro-task.  This example prices the strategies
   on the TPC-H joins at typical crowd rates, including majority-vote
   redundancy (each tuple shown to 2k+1 workers), and shows how the
   lookahead strategies translate to money saved.

   Run with:  dune exec examples/crowdsourcing.exe *)

module Universe = Jqi_core.Universe
module Strategy = Jqi_core.Strategy
module Oracle = Jqi_core.Oracle
module Inference = Jqi_core.Inference
module Tpch = Jqi_tpch.Tpch
module Prng = Jqi_util.Prng
module Table = Jqi_util.Ascii_table

let price_per_label = 0.05 (* dollars, a typical binary micro-task rate *)
let redundancy = 3 (* majority vote of 3 workers per tuple *)

let () =
  Printf.printf
    "Crowd pricing: $%.2f per label, %dx majority vote => $%.2f per presented tuple\n"
    price_per_label redundancy
    (price_per_label *. float_of_int redundancy);
  let db = Tpch.generate ~scale:2 () in
  let strategies =
    [
      Strategy.bu;
      Strategy.td;
      Strategy.l1s;
      Strategy.l2s;
      Strategy.rnd (Prng.create 1);
    ]
  in
  let rows =
    List.concat_map
      (fun (join : Tpch.goal_join) ->
        let universe = Universe.build join.r join.p in
        let goal = Tpch.goal_predicate (Universe.omega universe) join in
        List.map
          (fun strategy ->
            let result = Inference.run universe strategy (Oracle.honest ~goal) in
            let cost =
              float_of_int result.n_interactions
              *. float_of_int redundancy *. price_per_label
            in
            [
              join.label;
              result.strategy;
              string_of_int result.n_interactions;
              Printf.sprintf "$%.2f" cost;
              Printf.sprintf "%.3fs" result.elapsed;
            ])
          strategies)
      (Tpch.joins db)
  in
  print_string
    (Table.render
       ~headers:[ "goal join"; "strategy"; "labels"; "crowd cost"; "compute" ]
       rows);
  print_endline
    "\nReading: the lookahead strategies pay compute to save crowd dollars —\n\
     on the multi-attribute joins (4 and 5) L2S is typically several times\n\
     cheaper than BU/RND, which is the paper's economic argument for\n\
     entropy-guided tuple selection.";
  (* Total-cost comparison line. *)
  let totals = Hashtbl.create 8 in
  List.iter
    (fun row ->
      match row with
      | [ _; strat; labels; _; _ ] ->
          let c = Option.value ~default:0 (Hashtbl.find_opt totals strat) in
          Hashtbl.replace totals strat (c + int_of_string labels)
      | _ -> ())
    rows;
  print_endline "\nTotal labels to recover all five joins:";
  List.iter
    (fun name ->
      match Hashtbl.find_opt totals name with
      | Some n ->
          Printf.printf "  %-4s %4d labels  = $%.2f\n" name n
            (float_of_int (n * redundancy) *. price_per_label)
      | None -> ())
    [ "BU"; "TD"; "L1S"; "L2S"; "RND" ]
