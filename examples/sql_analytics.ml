(* SQL analytics over the generated TPC-H data.

   Once a join has been *inferred*, the user wants to *use* it: this
   example generates the warehouse, lets the inference engine rediscover
   the customer-order join, emits it as SQL, and then composes it with the
   engine's aggregate support for the kind of questions TPC-H exists to
   ask.

   Run with:  dune exec examples/sql_analytics.exe *)

module Relation = Jqi_relational.Relation
module Universe = Jqi_core.Universe
module Omega = Jqi_core.Omega
module Tpch = Jqi_tpch.Tpch
module Engine = Jqi_sql.Engine

let show title sql catalog =
  Printf.printf "\n-- %s\n%s\n" title sql;
  Relation.print (Engine.query catalog sql)

let () =
  let db = Tpch.generate ~scale:2 () in
  let catalog =
    [
      ("part", db.part); ("supplier", db.supplier); ("partsupp", db.partsupp);
      ("customer", db.customer); ("orders", db.orders); ("lineitem", db.lineitem);
    ]
  in
  (* Step 1: infer the customer ⋈ orders join from labels alone. *)
  let join3 = List.nth (Tpch.joins db) 2 in
  let universe = Universe.build join3.r join3.p in
  let omega = Universe.omega universe in
  let goal = Tpch.goal_predicate omega join3 in
  let result =
    Jqi_core.Inference.run universe Jqi_core.Strategy.td
      (Jqi_core.Oracle.honest ~goal)
  in
  let inferred_pairs =
    List.map
      (fun (i, j) ->
        ( Jqi_relational.Schema.name_at (Relation.schema join3.r) i,
          Jqi_relational.Schema.name_at (Relation.schema join3.p) j ))
      (Omega.to_pairs omega result.predicate)
  in
  let inferred_sql =
    Jqi_sql.Ast.to_string
      (Jqi_sql.Ast.of_equijoin ~r:"customer" ~p:"orders" inferred_pairs)
  in
  Printf.printf
    "Inferred the customer/orders join in %d labels; as SQL:\n  %s\n"
    result.n_interactions inferred_sql;

  (* Step 2: analytics on top of the discovered join. *)
  show "orders and revenue per market segment"
    "SELECT c_mktsegment, COUNT(*) AS orders, SUM(o_totalprice) AS revenue \
     FROM customer JOIN orders ON c_custkey = o_custkey \
     GROUP BY c_mktsegment ORDER BY c_mktsegment"
    catalog;
  show "busiest customers (3+ orders)"
    "SELECT c_name, COUNT(*) AS n FROM customer \
     JOIN orders ON c_custkey = o_custkey \
     GROUP BY c_name HAVING n >= 3 ORDER BY n DESC, c_name LIMIT 5"
    catalog;
  show "suppliers with no line items (anti join)"
    "SELECT s_suppkey, s_name FROM supplier \
     ANTI JOIN lineitem ON s_suppkey = l_suppkey ORDER BY s_suppkey LIMIT 5"
    catalog;
  show "average quantity per ship mode"
    "SELECT l_shipmode, AVG(l_quantity) AS avg_qty, COUNT(*) AS items \
     FROM lineitem GROUP BY l_shipmode ORDER BY l_shipmode"
    catalog;
  show "large urgent orders"
    "SELECT o_orderkey, o_totalprice FROM orders \
     WHERE o_orderpriority = '1-URGENT' AND o_totalprice >= 300000 \
     ORDER BY o_totalprice DESC LIMIT 5"
    catalog
