(* TPC-H exploration (§5.1): infer the five key/foreign-key joins of the
   benchmark with every strategy, never telling the strategies about the
   constraints.

   Run with:  dune exec examples/tpch_exploration.exe -- [scale] *)

module Relation = Jqi_relational.Relation
module Universe = Jqi_core.Universe
module Omega = Jqi_core.Omega
module Strategy = Jqi_core.Strategy
module Oracle = Jqi_core.Oracle
module Inference = Jqi_core.Inference
module Tpch = Jqi_tpch.Tpch
module Prng = Jqi_util.Prng

let () =
  let scale =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 2
  in
  Printf.printf "Generating TPC-H-style data at scale %d...\n" scale;
  let db = Tpch.generate ~scale () in
  Printf.printf
    "  part=%d supplier=%d partsupp=%d customer=%d orders=%d lineitem=%d rows\n"
    (Relation.cardinality db.part)
    (Relation.cardinality db.supplier)
    (Relation.cardinality db.partsupp)
    (Relation.cardinality db.customer)
    (Relation.cardinality db.orders)
    (Relation.cardinality db.lineitem);
  List.iter
    (fun (join : Tpch.goal_join) ->
      let universe = Universe.build join.r join.p in
      let omega = Universe.omega universe in
      let goal = Tpch.goal_predicate omega join in
      Printf.printf
        "\n%s: %s ⋈ %s, |D| = %d, %d signature classes, join ratio %.3f\n"
        join.label (Relation.name join.r) (Relation.name join.p)
        (Universe.total_tuples universe)
        (Universe.n_classes universe)
        (Universe.join_ratio universe);
      Printf.printf "  goal: %s\n" (Omega.pred_to_string omega goal);
      List.iter
        (fun strategy ->
          let result =
            Inference.run universe strategy (Oracle.honest ~goal)
          in
          Printf.printf "  %-4s %3d interactions  %8.4fs  %s\n"
            result.strategy result.n_interactions result.elapsed
            (if Inference.verified universe ~goal result then
               "recovered the FK join"
             else "NOT equivalent (bug!)"))
        [
          Strategy.bu;
          Strategy.td;
          Strategy.l1s;
          Strategy.l2s;
          Strategy.rnd (Prng.create 42);
        ])
    (Tpch.joins db)
