(* Semijoins and intractability (§6, Appendix A.1).

   1. Checks consistency of semijoin samples on the Example 2.1 instance
      and extracts witness predicates with the SAT-backed solver.
   2. Replays the paper's 3SAT reduction on its running formula
      φ0 = (x1 ∨ x2 ∨ ¬x3) ∧ (¬x1 ∨ x3 ∨ x4), prints the constructed
      Rφ0/Pφ0/Sφ0 and recovers a satisfying valuation from the witness
      semijoin predicate.

   Run with:  dune exec examples/semijoin_demo.exe *)

module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Omega = Jqi_core.Omega
module Semijoin = Jqi_semijoin.Semijoin
module Cons = Jqi_semijoin.Cons
module Reduction = Jqi_semijoin.Reduction
module Threesat = Jqi_sat.Threesat

let r0 =
  Relation.of_list ~name:"R0"
    ~schema:(Schema.of_names ~ty:Value.TInt [ "A1"; "A2" ])
    [ Tuple.ints [ 0; 1 ]; Tuple.ints [ 0; 2 ]; Tuple.ints [ 2; 2 ]; Tuple.ints [ 1; 0 ] ]

let p0 =
  Relation.of_list ~name:"P0"
    ~schema:(Schema.of_names ~ty:Value.TInt [ "B1"; "B2"; "B3" ])
    [ Tuple.ints [ 1; 1; 0 ]; Tuple.ints [ 0; 1; 2 ]; Tuple.ints [ 2; 0; 0 ] ]

let omega0 = Omega.of_schemas (Relation.schema r0) (Relation.schema p0)

let check_sample ~label pos neg =
  let s = Semijoin.sample ~pos ~neg in
  Printf.printf "\nSample %s: positives {%s}, negatives {%s}\n" label
    (String.concat "," (List.map (fun i -> Printf.sprintf "t%d" (i + 1)) pos))
    (String.concat "," (List.map (fun i -> Printf.sprintf "t%d" (i + 1)) neg));
  match Cons.solve r0 p0 omega0 s with
  | Some theta ->
      Printf.printf "  consistent; witness θ = %s\n"
        (Omega.pred_to_string omega0 theta);
      let selected = Semijoin.eval r0 p0 omega0 theta in
      Printf.printf "  R0 ⋉_θ P0 has %d tuples\n" (Relation.cardinality selected)
  | None -> Printf.printf "  NOT consistent (no semijoin predicate exists)\n"

let () =
  print_endline "== Semijoin consistency on the Example 2.1 instance ==";
  Relation.print r0;
  Relation.print p0;
  (* The paper's §6 example: consistent via θ = {(A1,B2)}. *)
  check_sample ~label:"S'" [ 0; 1 ] [ 2 ];
  (* Demanding t1 positive but t4 negative under every θ that also keeps
     t2, t3 positive: squeeze until inconsistency. *)
  check_sample ~label:"S''" [ 0; 1; 2 ] [ 3 ];
  check_sample ~label:"S'''" [ 3 ] [ 0; 1; 2 ];

  print_endline "\n== Theorem 6.1: the 3SAT reduction on φ0 ==";
  Printf.printf "φ0 = %s\n" (Fmt.str "%a" Threesat.pp Threesat.phi0);
  let red = Reduction.build Threesat.phi0 in
  print_endline "\nRφ0 (positives: the two clause tuples; negatives: X and the xᵢ*):";
  Relation.print red.r;
  print_endline "\nPφ0 (⊥ printed as empty cells = NULL, never matching):";
  Relation.print red.p;
  (match Cons.solve red.r red.p red.omega red.sample with
  | Some theta ->
      Printf.printf "\nCONS⋉ holds; witness θ = %s\n"
        (Omega.pred_to_string red.omega theta);
      let v = Reduction.valuation_of_predicate red theta in
      Printf.printf "decoded valuation: %s\n"
        (String.concat ", "
           (List.init red.nvars (fun i ->
                Printf.sprintf "x%d=%b" (i + 1) v.(i + 1))));
      Printf.printf "valuation satisfies φ0: %b\n" (Threesat.eval v Threesat.phi0)
  | None -> print_endline "\nreduction inconsistent — but φ0 is satisfiable: BUG");

  print_endline "\n== And on an unsatisfiable formula ==";
  let lit var pos = { Threesat.var; pos } in
  let contradiction =
    Threesat.create ~nvars:3
      (List.concat_map
         (fun p1 ->
           List.concat_map
             (fun p2 ->
               List.map (fun p3 -> (lit 1 p1, lit 2 p2, lit 3 p3))
                 [ true; false ])
             [ true; false ])
         [ true; false ])
  in
  Printf.printf "φ = all 8 sign patterns over x1,x2,x3 (unsatisfiable)\n";
  let red = Reduction.build contradiction in
  Printf.printf "CONS⋉ on its reduction: %b (expected false)\n"
    (Cons.consistent red.r red.p red.omega red.sample)
