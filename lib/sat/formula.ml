(* Propositional formulas and the Tseitin transform to CNF.

   The semijoin consistency encoder produces And/Or trees ("some tuple of P
   witnesses this positive example"); Tseitin turns them into equisatisfiable
   CNF with one auxiliary variable per internal node. *)

type t =
  | True
  | False
  | Var of int  (* >= 1 *)
  | Not of t
  | And of t list
  | Or of t list

let var v =
  if v < 1 then invalid_arg "Formula.var: variables start at 1";
  Var v

let neg f = Not f
let conj fs = And fs
let disj fs = Or fs

let rec eval assignment = function
  | True -> true
  | False -> false
  | Var v -> assignment.(v)
  | Not f -> not (eval assignment f)
  | And fs -> List.for_all (eval assignment) fs
  | Or fs -> List.exists (eval assignment) fs

let rec max_var = function
  | True | False -> 0
  | Var v -> v
  | Not f -> max_var f
  | And fs | Or fs -> List.fold_left (fun m f -> max m (max_var f)) 0 fs

(* Tseitin transform.  Returns a CNF equisatisfiable with [f]; models of
   the CNF restricted to the original variables are models of [f].
   [min_vars] forces at least that many variables to exist in the CNF even
   if [f] never mentions them (callers that decode fixed-width models rely
   on it). *)
let to_cnf ?(min_vars = 0) f =
  let next = ref (max (max_var f) min_vars + 1) in
  let fresh () =
    let v = !next in
    incr next;
    v
  in
  let clauses = ref [] in
  let emit c = clauses := Array.of_list c :: !clauses in
  (* Returns a literal equivalent to the subformula (in the implication
     direction needed for satisfiability: aux → subformula and
     subformula → aux). *)
  let rec lit = function
    | True ->
        let v = fresh () in
        emit [ v ];
        v
    | False ->
        let v = fresh () in
        emit [ -v ];
        v
    | Var v -> v
    | Not f -> -(lit f)
    | And fs ->
        let ls = List.map lit fs in
        let v = fresh () in
        (* v → each l;  all l → v *)
        List.iter (fun l -> emit [ -v; l ]) ls;
        emit (v :: List.map (fun l -> -l) ls);
        v
    | Or fs ->
        let ls = List.map lit fs in
        let v = fresh () in
        (* v → some l;  each l → v *)
        emit (-v :: ls);
        List.iter (fun l -> emit [ -l; v ]) ls;
        v
  in
  let root = lit f in
  emit [ root ];
  Cnf.create ~nvars:(!next - 1) (List.rev !clauses)
