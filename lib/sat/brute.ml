(* Exhaustive SAT checking — the reference oracle for the DPLL solver in
   tests.  Exponential in the variable count; refuses more than 22
   variables. *)

let max_vars = 22

let all_models cnf =
  let n = Cnf.nvars cnf in
  if n > max_vars then invalid_arg "Sat.Brute: too many variables";
  let models = ref [] in
  let assignment = Array.make (n + 1) false in
  for mask = 0 to (1 lsl n) - 1 do
    for v = 1 to n do
      assignment.(v) <- (mask lsr (v - 1)) land 1 = 1
    done;
    if Cnf.satisfied cnf assignment then models := Array.copy assignment :: !models
  done;
  List.rev !models

let is_sat cnf = all_models cnf <> []

let count_models cnf = List.length (all_models cnf)
