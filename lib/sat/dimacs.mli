(** DIMACS CNF reading and writing. *)

val to_string : Cnf.t -> string

(** Raises [Invalid_argument] on malformed input. *)
val parse_string : string -> Cnf.t

val write_file : string -> Cnf.t -> unit
val read_file : string -> Cnf.t
