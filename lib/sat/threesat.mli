(** 3SAT instances — the source language of the Appendix A.1 reduction. *)

type literal = { var : int;  (** 1-based *) pos : bool }
type clause = literal * literal * literal
type t

(** Raises [Invalid_argument] on out-of-range or repeated clause
    variables. *)
val create : nvars:int -> clause list -> t

val nvars : t -> int
val clauses : t -> clause list
val to_cnf : t -> Cnf.t
val eval : bool array -> t -> bool

(** Uniform fixed-clause-length random instance; needs [nvars >= 3]. *)
val random : Jqi_util.Prng.t -> nvars:int -> nclauses:int -> t

(** The paper's running example
    φ0 = (x1 ∨ x2 ∨ ¬x3) ∧ (¬x1 ∨ x3 ∨ x4). *)
val phi0 : t

val pp : Format.formatter -> t -> unit
