(** DPLL SAT solver with two-watched-literal unit propagation,
    most-occurrences decision heuristic, and chronological backtracking.
    Decides the NP-complete CONS⋉ instances of §6. *)

type result =
  | Sat of bool array  (** model; index 0 unused *)
  | Unsat

val solve : Cnf.t -> result
val is_sat : Cnf.t -> bool
