(** Exhaustive SAT checking — the test oracle for the DPLL solver.
    Refuses more than [max_vars] variables. *)

val max_vars : int

(** All satisfying assignments, in increasing bitmask order. *)
val all_models : Cnf.t -> bool array list

val is_sat : Cnf.t -> bool
val count_models : Cnf.t -> int
