(* DIMACS CNF reading and writing, for interoperability with external SAT
   tooling and for persisting the instances the semijoin reduction
   produces. *)

let to_string cnf =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" (Cnf.nvars cnf) (Cnf.n_clauses cnf));
  List.iter
    (fun c ->
      Array.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) c;
      Buffer.add_string buf "0\n")
    (Cnf.clauses cnf);
  Buffer.contents buf

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let nvars = ref (-1) in
  let clauses = ref [] in
  let pending = ref [] in
  let feed_token tok =
    match int_of_string_opt tok with
    | None -> invalid_arg (Printf.sprintf "Dimacs: bad token %S" tok)
    | Some 0 ->
        clauses := Array.of_list (List.rev !pending) :: !clauses;
        pending := []
    | Some l -> pending := l :: !pending
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' || line.[0] = '%' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; nv; _nc ] -> nvars := int_of_string nv
        | _ -> invalid_arg "Dimacs: malformed problem line"
      end
      else
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter feed_token)
    lines;
  if !pending <> [] then
    clauses := Array.of_list (List.rev !pending) :: !clauses;
  if !nvars < 0 then invalid_arg "Dimacs: missing problem line";
  Cnf.create ~nvars:!nvars (List.rev !clauses)

let write_file path cnf =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string cnf))

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      parse_string (really_input_string ic n))
