(* CNF formulas in DIMACS-style integer encoding.

   A literal is a non-zero int: v > 0 is the variable v, -v its negation.
   Variables are numbered from 1.  Clauses are int arrays.  This is the
   input format of the DPLL solver and the target of the Tseitin
   transform. *)

type clause = int array

type t = { nvars : int; clauses : clause list }

let create ~nvars clauses =
  List.iter
    (fun c ->
      Array.iter
        (fun l ->
          if l = 0 || abs l > nvars then
            invalid_arg (Printf.sprintf "Cnf: literal %d out of range" l))
        c)
    clauses;
  { nvars; clauses }

let nvars t = t.nvars
let clauses t = t.clauses
let n_clauses t = List.length t.clauses

let var_of_lit l = abs l
let is_pos l = l > 0

(* Remove duplicate literals; detect tautological clauses (x ∨ ¬x). *)
let normalize_clause c =
  let lits = List.sort_uniq compare (Array.to_list c) in
  if List.exists (fun l -> List.mem (-l) lits) lits then None
  else Some (Array.of_list lits)

let simplify t =
  { t with clauses = List.filter_map normalize_clause t.clauses }

(* Evaluate under a total assignment (index 0 unused). *)
let lit_true assignment l =
  if l > 0 then assignment.(l) else not assignment.(-l)

let clause_satisfied assignment c = Array.exists (lit_true assignment) c

let satisfied t assignment =
  Array.length assignment >= t.nvars + 1
  && List.for_all (clause_satisfied assignment) t.clauses

let pp ppf t =
  Fmt.pf ppf "@[<v>cnf: %d vars, %d clauses" t.nvars (n_clauses t);
  List.iter
    (fun c ->
      Fmt.pf ppf "@,  (%a)"
        (Fmt.array ~sep:(Fmt.any " ∨ ") (fun ppf l ->
             if l > 0 then Fmt.pf ppf "x%d" l else Fmt.pf ppf "¬x%d" (-l)))
        c)
    t.clauses;
  Fmt.pf ppf "@]"
