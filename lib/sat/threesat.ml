(* 3SAT instances: the source language of the Appendix A.1 reduction.

   A literal is (variable, polarity); a clause has exactly three literals
   over distinct variables.  [random] draws uniform instances (the classic
   fixed-clause-length model), used to exercise the reduction and to
   cross-validate the DPLL solver. *)

module Prng = Jqi_util.Prng

type literal = { var : int; pos : bool }  (* var in 1..n *)
type clause = literal * literal * literal
type t = { nvars : int; clauses : clause list }

let create ~nvars clauses =
  List.iter
    (fun (a, b, c) ->
      List.iter
        (fun l ->
          if l.var < 1 || l.var > nvars then
            invalid_arg "Threesat: variable out of range")
        [ a; b; c ];
      if a.var = b.var || a.var = c.var || b.var = c.var then
        invalid_arg "Threesat: clause variables must be distinct")
    clauses;
  { nvars; clauses }

let nvars t = t.nvars
let clauses t = t.clauses

let to_cnf t =
  let lit l = if l.pos then l.var else -l.var in
  Cnf.create ~nvars:t.nvars
    (List.map (fun (a, b, c) -> [| lit a; lit b; lit c |]) t.clauses)

let eval assignment t =
  let lit l = if l.pos then assignment.(l.var) else not assignment.(l.var) in
  List.for_all (fun (a, b, c) -> lit a || lit b || lit c) t.clauses

(* Uniform random instance with [nclauses] clauses over [nvars] >= 3
   variables. *)
let random prng ~nvars ~nclauses =
  if nvars < 3 then invalid_arg "Threesat.random: need at least 3 variables";
  let clause () =
    let v1 = 1 + Prng.int prng nvars in
    let rec draw_distinct excluded =
      let v = 1 + Prng.int prng nvars in
      if List.mem v excluded then draw_distinct excluded else v
    in
    let v2 = draw_distinct [ v1 ] in
    let v3 = draw_distinct [ v1; v2 ] in
    let lit v = { var = v; pos = Prng.bool prng } in
    (lit v1, lit v2, lit v3)
  in
  create ~nvars (List.init nclauses (fun _ -> clause ()))

(* The paper's example formula
   φ0 = (x1 ∨ x2 ∨ ¬x3) ∧ (¬x1 ∨ x3 ∨ x4)
   — the literal signs are chosen to match the Pϕ0 instance printed in
   Appendix A.1 (B^f_3 = ⊥ in tP,13 means x3 appears negatively in c1;
   B^t_1 = ⊥ in tP,21 means x1 appears negatively in c2, etc.). *)
let phi0 =
  create ~nvars:4
    [
      ( { var = 1; pos = true }, { var = 2; pos = true }, { var = 3; pos = false } );
      ( { var = 1; pos = false }, { var = 3; pos = true }, { var = 4; pos = true } );
    ]

let pp ppf t =
  let pp_lit ppf l = Fmt.pf ppf "%sx%d" (if l.pos then "" else "¬") l.var in
  Fmt.pf ppf "%a"
    (Fmt.list ~sep:(Fmt.any " ∧ ") (fun ppf (a, b, c) ->
         Fmt.pf ppf "(%a ∨ %a ∨ %a)" pp_lit a pp_lit b pp_lit c))
    t.clauses
