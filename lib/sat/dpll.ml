(* A DPLL SAT solver with two-watched-literal unit propagation.

   Semijoin consistency checking (§6) is NP-complete; the library decides
   it by encoding into SAT and solving here.  The solver is a classic
   iterative DPLL: watched literals make propagation cheap, decisions pick
   the most frequent unassigned variable, and backtracking is chronological
   with polarity flipping.  That is ample for the instance sizes the
   reduction produces, while staying small enough to audit. *)

type result = Sat of bool array  (* index 0 unused *) | Unsat

type solver = {
  nvars : int;
  clauses : int array array;
  (* watches.(lit_idx) = clauses currently watching that literal. *)
  watches : int list array;
  (* 0 unassigned / 1 true / 2 false *)
  assign : int array;
  trail : int Stack.t;         (* literals in assignment order *)
  mutable trail_lim : int list;  (* trail sizes at decision points *)
  occurrences : int array;     (* static decision heuristic *)
  mutable propagation_queue : int list;
}

let lit_idx l = if l > 0 then 2 * l else (2 * -l) + 1

let lit_value s l =
  let v = s.assign.(abs l) in
  if v = 0 then 0
  else
    let truth = if l > 0 then v = 1 else v = 2 in
    if truth then 1 else 2

let init cnf =
  let cnf = Cnf.simplify cnf in
  let nvars = Cnf.nvars cnf in
  let clauses = Array.of_list (Cnf.clauses cnf) in
  let s =
    {
      nvars;
      clauses;
      watches = Array.make ((2 * nvars) + 2) [];
      assign = Array.make (nvars + 1) 0;
      trail = Stack.create ();
      trail_lim = [];
      occurrences = Array.make (nvars + 1) 0;
      propagation_queue = [];
    }
  in
  Array.iter
    (fun c ->
      Array.iter (fun l -> s.occurrences.(abs l) <- s.occurrences.(abs l) + 1) c)
    clauses;
  s

exception Empty_clause

(* Watch the first two literals of every clause; collect unit clauses for
   the caller to enqueue (they must go through [enqueue] so the assignment
   is recorded). *)
let attach_watches s =
  let units = ref [] in
  Array.iteri
    (fun ci c ->
      match Array.length c with
      | 0 -> raise Empty_clause
      | 1 -> units := c.(0) :: !units
      | _ ->
          s.watches.(lit_idx c.(0)) <- ci :: s.watches.(lit_idx c.(0));
          s.watches.(lit_idx c.(1)) <- ci :: s.watches.(lit_idx c.(1)))
    s.clauses;
  !units

let enqueue s l =
  match lit_value s l with
  | 1 -> true (* already satisfied *)
  | 2 -> false (* conflict *)
  | _ ->
      s.assign.(abs l) <- (if l > 0 then 1 else 2);
      Stack.push l s.trail;
      s.propagation_queue <- l :: s.propagation_queue;
      true

(* Propagate all queued assignments; false on conflict. *)
let rec propagate s =
  match s.propagation_queue with
  | [] -> true
  | l :: rest ->
      s.propagation_queue <- rest;
      (* Clauses watching ¬l may have lost their watched literal. *)
      let falsified = -l in
      let watching = s.watches.(lit_idx falsified) in
      s.watches.(lit_idx falsified) <- [];
      let conflict = ref false in
      let keep = ref [] in
      List.iter
        (fun ci ->
          if !conflict then keep := ci :: !keep
          else begin
            let c = s.clauses.(ci) in
            (* Ensure the falsified literal sits at position 1. *)
            if c.(0) = falsified then begin
              c.(0) <- c.(1);
              c.(1) <- falsified
            end;
            if lit_value s c.(0) = 1 then
              (* Clause satisfied; keep watching. *)
              keep := ci :: !keep
            else begin
              (* Find a new literal to watch. *)
              let n = Array.length c in
              let rec find i = if i >= n then None
                else if lit_value s c.(i) <> 2 then Some i
                else find (i + 1)
              in
              match find 2 with
              | Some i ->
                  c.(1) <- c.(i);
                  c.(i) <- falsified;
                  s.watches.(lit_idx c.(1)) <- ci :: s.watches.(lit_idx c.(1))
              | None ->
                  (* Unit or conflicting. *)
                  keep := ci :: !keep;
                  if not (enqueue s c.(0)) then conflict := true
            end
          end)
        watching;
      s.watches.(lit_idx falsified) <-
        List.rev_append !keep s.watches.(lit_idx falsified);
      if !conflict then begin
        s.propagation_queue <- [];
        false
      end
      else propagate s

let decide_var s =
  let best = ref 0 and best_occ = ref (-1) in
  for v = 1 to s.nvars do
    if s.assign.(v) = 0 && s.occurrences.(v) > !best_occ then begin
      best := v;
      best_occ := s.occurrences.(v)
    end
  done;
  !best

(* Undo the trail back to the last decision; return that decision literal. *)
let backtrack s =
  match s.trail_lim with
  | [] -> None
  | lim :: rest ->
      s.trail_lim <- rest;
      let decision = ref 0 in
      while Stack.length s.trail > lim do
        (* Total: the loop guard just checked the stack is nonempty. *)
        let l = (Stack.pop s.trail [@lint.allow "R2"]) in
        s.assign.(abs l) <- 0;
        decision := l
      done;
      s.propagation_queue <- [];
      Some !decision

let solve cnf =
  let s = init cnf in
  match attach_watches s with
  | exception Empty_clause -> Unsat
  | units when not (List.for_all (enqueue s) units) -> Unsat
  | _ ->
      (* second_branch.(v) = true once both polarities of the decision on v
         have been explored at its current position in the search tree. *)
      let second = Array.make (s.nvars + 1) false in
      let rec search () =
        if propagate s then begin
          let v = decide_var s in
          if v = 0 then begin
            let model = Array.make (s.nvars + 1) false in
            for i = 1 to s.nvars do
              model.(i) <- s.assign.(i) = 1
            done;
            Sat model
          end
          else begin
            s.trail_lim <- Stack.length s.trail :: s.trail_lim;
            second.(v) <- false;
            ignore (enqueue s v);
            search ()
          end
        end
        else resolve_conflict ()
      and resolve_conflict () =
        match backtrack s with
        | None -> Unsat
        | Some decision ->
            let v = abs decision in
            if second.(v) then resolve_conflict ()
            else begin
              second.(v) <- true;
              s.trail_lim <- Stack.length s.trail :: s.trail_lim;
              ignore (enqueue s (-decision));
              search ()
            end
      in
      search ()

let is_sat cnf = match solve cnf with Sat _ -> true | Unsat -> false
