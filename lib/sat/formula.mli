(** Propositional formulas and the Tseitin transform to CNF. *)

type t =
  | True
  | False
  | Var of int  (** >= 1 *)
  | Not of t
  | And of t list
  | Or of t list

(** Raises [Invalid_argument] below 1. *)
val var : int -> t

val neg : t -> t
val conj : t list -> t
val disj : t list -> t
val eval : bool array -> t -> bool
val max_var : t -> int

(** Equisatisfiable CNF with one auxiliary variable per internal node;
    models restricted to the original variables are models of the input.
    [min_vars] forces the CNF to mention at least that many variables so
    fixed-width model decoding works. *)
val to_cnf : ?min_vars:int -> t -> Cnf.t
