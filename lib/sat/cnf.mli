(** CNF formulas in DIMACS-style integer encoding: a literal is a non-zero
    int ([v] positive, [-v] negated); variables are numbered from 1. *)

type clause = int array
type t

(** Raises [Invalid_argument] on literals out of [1..nvars]. *)
val create : nvars:int -> clause list -> t

val nvars : t -> int
val clauses : t -> clause list
val n_clauses : t -> int
val var_of_lit : int -> int
val is_pos : int -> bool

(** Deduplicate literals; drop tautological clauses (x ∨ ¬x). *)
val simplify : t -> t

(** [lit_true a l] under total assignment [a] (index 0 unused). *)
val lit_true : bool array -> int -> bool

val clause_satisfied : bool array -> clause -> bool
val satisfied : t -> bool array -> bool
val pp : Format.formatter -> t -> unit
