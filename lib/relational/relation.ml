(* A relation instance: a name, a schema and an array of rows.

   Rows are stored in insertion order; set semantics, when an operator needs
   them, are applied explicitly ([distinct]).  The inference engine treats
   R and P as arrays so that a tuple of the Cartesian product is addressed
   by a pair of row indexes. *)

type t = { name : string; schema : Schema.t; rows : Tuple.t array }

let create ~name ~schema rows =
  let arity = Schema.arity schema in
  Array.iter
    (fun r ->
      if not (Int.equal (Tuple.arity r) arity) then
        invalid_arg
          (Printf.sprintf "Relation %s: row arity %d, schema arity %d" name
             (Tuple.arity r) arity))
    rows;
  { name; schema; rows }

let of_list ~name ~schema rows = create ~name ~schema (Array.of_list rows)

let name t = t.name
let schema t = t.schema
let rows t = t.rows
let cardinality t = Array.length t.rows
let row t i = t.rows.(i)
let arity t = Schema.arity t.schema
let is_empty t = cardinality t = 0

let with_name t name = { t with name }
let with_rows t rows = create ~name:t.name ~schema:t.schema rows

let fold f acc t = Array.fold_left f acc t.rows
let iter f t = Array.iter f t.rows

let mem t tup = Array.exists (fun r -> Tuple.equal r tup) t.rows

let to_list t = Array.to_list t.rows

module Tuple_set = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

let tuple_set t = Tuple_set.of_seq (Array.to_seq t.rows)

(* Multiset-insensitive equality: same schema and same set of rows. *)
let equal_contents a b =
  Schema.equal a.schema b.schema
  && Tuple_set.equal (tuple_set a) (tuple_set b)

let pp ppf t =
  Fmt.pf ppf "@[<v>%s%a (%d rows)" t.name Schema.pp t.schema (cardinality t);
  let shown = min 20 (cardinality t) in
  for i = 0 to shown - 1 do
    Fmt.pf ppf "@,  %a" Tuple.pp t.rows.(i)
  done;
  if shown < cardinality t then Fmt.pf ppf "@,  ... (%d more)" (cardinality t - shown);
  Fmt.pf ppf "@]"

(* Console convenience for the interactive CLI; rendering itself lives in
   Ascii_table, this is the one sanctioned stdout write of the module. *)
let print t =
  let headers = Schema.names t.schema in
  let rows =
    Array.to_list
      (Array.map (fun r -> List.map Value.to_string (Tuple.to_list r)) t.rows)
  in
  (print_string [@lint.allow "R5"]) (Jqi_util.Ascii_table.render ~headers rows)
