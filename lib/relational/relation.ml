(* A relation instance: a name, a schema and a row store.

   Rows live behind a storage backend: [Backend.Mem] is the original
   in-memory array; [Backend.Paged] is a closure record wired up by an
   out-of-core store (jqi.storage's Relstore) so that this module — and
   the whole sans-IO relational tier — never references the storage
   library or does IO itself.  Rows are stored in insertion order; set
   semantics, when an operator needs them, are applied explicitly
   ([distinct]).  The inference engine treats R and P as arrays so that
   a tuple of the Cartesian product is addressed by a pair of row
   indexes; a paged backend must therefore provide random access
   ([get_row]) as well as the streaming scan ([iter_rows]) the
   universe builder prefers. *)

module Backend = struct
  type coded = {
    distinct : int;
    value : int -> Value.t;
    iter_codes : (int -> int array -> unit) -> unit;
  }

  type paged = {
    n_rows : int;
    get_row : int -> Tuple.t;
    iter_rows : (int -> Tuple.t -> unit) -> unit;
    coded : coded option;
    describe : string;
    apply_delta : (adds:Tuple.t array -> removed:int array -> paged) option;
  }

  type t = Mem of Tuple.t array | Paged of paged

  let name = function Mem _ -> "mem" | Paged _ -> "paged"
end

type t = { name : string; schema : Schema.t; backend : Backend.t }

let create ~name ~schema rows =
  let arity = Schema.arity schema in
  Array.iter
    (fun r ->
      if not (Int.equal (Tuple.arity r) arity) then
        invalid_arg
          (Printf.sprintf "Relation %s: row arity %d, schema arity %d" name
             (Tuple.arity r) arity))
    rows;
  { name; schema; backend = Backend.Mem rows }

let of_list ~name ~schema rows = create ~name ~schema (Array.of_list rows)

let of_paged ~name ~schema paged =
  { name; schema; backend = Backend.Paged paged }

let name t = t.name
let schema t = t.schema
let backend t = t.backend
let backend_name t = Backend.name t.backend

let cardinality t =
  match t.backend with
  | Backend.Mem rows -> Array.length rows
  | Backend.Paged p -> p.Backend.n_rows

let row t i =
  match t.backend with
  | Backend.Mem rows -> rows.(i)
  | Backend.Paged p -> p.Backend.get_row i

let iteri f t =
  match t.backend with
  | Backend.Mem rows -> Array.iteri f rows
  | Backend.Paged p -> p.Backend.iter_rows f

let iter f t = iteri (fun _ r -> f r) t

let rows t =
  match t.backend with
  | Backend.Mem rows -> rows
  | Backend.Paged p ->
      let out = Array.make p.Backend.n_rows [||] in
      p.Backend.iter_rows (fun i r -> out.(i) <- r);
      out

let arity t = Schema.arity t.schema
let is_empty t = cardinality t = 0

let with_name t name = { t with name }
let with_rows t rows = create ~name:t.name ~schema:t.schema rows

let fold f acc t =
  let acc = ref acc in
  iter (fun r -> acc := f !acc r) t;
  !acc

exception Found

let mem t tup =
  match iter (fun r -> if Tuple.equal r tup then raise Found) t with
  | () -> false
  | exception Found -> true

let to_list t = Array.to_list (rows t)

module Tuple_set = Set.Make (struct
  type t = Tuple.t

  let compare = Tuple.compare
end)

let tuple_set t = fold (fun s r -> Tuple_set.add r s) Tuple_set.empty t

(* Multiset-insensitive equality: same schema and same set of rows. *)
let equal_contents a b =
  Schema.equal a.schema b.schema && Tuple_set.equal (tuple_set a) (tuple_set b)

let pp ppf t =
  Fmt.pf ppf "@[<v>%s%a (%d rows)" t.name Schema.pp t.schema (cardinality t);
  let shown = min 20 (cardinality t) in
  for i = 0 to shown - 1 do
    Fmt.pf ppf "@,  %a" Tuple.pp (row t i)
  done;
  if shown < cardinality t then
    Fmt.pf ppf "@,  ... (%d more)" (cardinality t - shown);
  Fmt.pf ppf "@]"

(* Churn: apply one Delta batch, yielding the relation with the removed
   rows gone (surviving rows keep their relative order) and the added
   rows appended after them.  Removes address rows by value; resolution
   assigns each remove the earliest still-unclaimed [Tuple.equal]
   occurrence, in one streaming scan so a paged backend pays one pass,
   not |removes| random probes. *)
let resolve_removes t (d : Delta.t) =
  let n_removes = Array.length d.Delta.removes in
  let out = Jqi_util.Vec.create () in
  if n_removes > 0 then begin
    let pending = Array.map Option.some d.Delta.removes in
    let remaining = ref n_removes in
    iteri
      (fun i row ->
        if !remaining > 0 then begin
          let k = ref 0 and found = ref false in
          while (not !found) && !k < n_removes do
            (match pending.(!k) with
            | Some tup when Tuple.equal tup row ->
                pending.(!k) <- None;
                decr remaining;
                Jqi_util.Vec.push out i;
                found := true
            | Some _ | None -> ());
            incr k
          done
        end)
      t;
    if !remaining > 0 then
      invalid_arg
        (Printf.sprintf
           "Delta: %d delete row(s) not present in relation %s" !remaining
           t.name)
  end;
  (* Scan order is row order, so the indexes come out sorted ascending. *)
  Jqi_util.Vec.to_array out

let apply_delta t (d : Delta.t) =
  Delta.check_arity (Schema.arity t.schema) d;
  let removed = resolve_removes t d in
  match t.backend with
  | Backend.Paged { Backend.apply_delta = Some f; _ } ->
      let p = f ~adds:d.Delta.adds ~removed in
      { t with backend = Backend.Paged p }
  | Backend.Mem _ | Backend.Paged _ ->
      (* Mem, or a paged store without in-place delta support: build the
         surviving rows ++ adds as a fresh in-memory backend. *)
      let old_rows = rows t in
      let n = Array.length old_rows in
      let keep = Array.make n true in
      Array.iter (fun i -> keep.(i) <- false) removed;
      let out = Jqi_util.Vec.create () in
      for i = 0 to n - 1 do
        if keep.(i) then Jqi_util.Vec.push out old_rows.(i)
      done;
      Array.iter (Jqi_util.Vec.push out) d.Delta.adds;
      { t with backend = Backend.Mem (Jqi_util.Vec.to_array out) }

(* Content fingerprint: FNV-1a 64-bit over a canonical serialization of
   name, schema and every cell, in row-major order.  Cells are fed with a
   type tag (and floats by their IEEE bits), so values that merely render
   alike — Null vs Str "", Int 1 vs Str "1", 1.0 vs 2.0-1.0 rounding —
   cannot collide structurally.  Two relations with equal fingerprints can
   be treated as the same instance for caching purposes: equal name,
   schema, row order and cell values.  Computed over the streaming scan,
   so a paged relation fingerprints straight off its heap file and
   matches the in-memory backend byte for byte. *)
module Fp = struct
  type acc = int64

  let feed_byte h b =
    Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) 0x100000001b3L

  let feed_string h s =
    (* Length prefix keeps "ab"+"c" distinct from "a"+"bc". *)
    let h = feed_byte h (String.length s) in
    let h = feed_byte h (String.length s lsr 8) in
    String.fold_left (fun h c -> feed_byte h (Char.code c)) h s

  let feed_int64 h x =
    let h = ref h in
    for shift = 0 to 7 do
      h := feed_byte !h (Int64.to_int (Int64.shift_right_logical x (shift * 8)))
    done;
    !h

  let feed_value h v =
    match v with
    | Value.Null -> feed_byte h 0
    | Value.Bool b -> feed_byte (feed_byte h 1) (Bool.to_int b)
    | Value.Int i -> feed_int64 (feed_byte h 2) (Int64.of_int i)
    | Value.Float f -> feed_int64 (feed_byte h 3) (Int64.bits_of_float f)
    | Value.Str s -> feed_string (feed_byte h 4) s

  let feed_row h row = Array.fold_left feed_value h row
  let feed_rows h rows = Array.fold_left feed_row h rows

  let header t =
    let h = feed_string 0xcbf29ce484222325L t.name in
    List.fold_left
      (fun h (c : Schema.column) ->
        feed_string (feed_string h c.name) (Value.ty_name c.ty))
      h
      (Schema.columns t.schema)

  let of_relation t = fold feed_row (header t) t
  let render h = Printf.sprintf "%016Lx" h
end

let fingerprint t = Fp.render (Fp.of_relation t)

(* Console convenience for the interactive CLI; rendering itself lives in
   Ascii_table, this is the one sanctioned stdout write of the module. *)
let print t =
  let headers = Schema.names t.schema in
  let body =
    List.rev
      (fold
         (fun acc r -> List.map Value.to_string (Tuple.to_list r) :: acc)
         [] t)
  in
  (print_string [@lint.allow "R5"]) (Jqi_util.Ascii_table.render ~headers body)
