(** Relational algebra over in-memory relations.  All operators return
    fresh relations. *)

(** σ_p. *)
val select : Relation.t -> (Tuple.t -> bool) -> Relation.t

(** Π by column names; duplicates kept (compose with [distinct]). *)
val project : Relation.t -> string list -> Relation.t

val rename : Relation.t -> string -> string -> Relation.t

(** Duplicate elimination, keeping first occurrences in order. *)
val distinct : Relation.t -> Relation.t

(** Set union/intersection/difference; raise [Invalid_argument] on
    union-incompatible schemas. *)
val union : Relation.t -> Relation.t -> Relation.t

val inter : Relation.t -> Relation.t -> Relation.t
val difference : Relation.t -> Relation.t -> Relation.t

(** R × P, left-major row order; clashing column names are qualified with
    the relation names. *)
val product : Relation.t -> Relation.t -> Relation.t

val sort : ?compare:(Tuple.t -> Tuple.t -> int) -> Relation.t -> Relation.t
val sort_by : Relation.t -> string list -> Relation.t
val limit : Relation.t -> int -> Relation.t
