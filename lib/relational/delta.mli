(** First-class data churn: one batch of row insertions and deletions
    against a single relation.

    Deltas are pure data — no backend, no relation reference — so one
    value flows unchanged from a protocol frame through the catalog down
    to the storage engine.  Removals address rows {e by value}: each
    remove claims one occurrence of a [Tuple.equal] row (the earliest
    still-unclaimed one; see {!Relation.resolve_removes}), which is the
    only addressing a wire client has. *)

type t = { adds : Tuple.t array; removes : Tuple.t array }

val empty : t
val v : adds:Tuple.t array -> removes:Tuple.t array -> t
val of_lists : adds:Tuple.t list -> removes:Tuple.t list -> t
val is_empty : t -> bool

(** No removes — the append-only fast path (e.g. incremental
    fingerprint extension in the server catalog). *)
val inserts_only : t -> bool

(** [|adds| - |removes|]: how the relation's cardinality changes. *)
val cardinality_shift : t -> int

(** Raises [Invalid_argument] when any add/remove row has a different
    arity than [arity]. *)
val check_arity : int -> t -> unit
