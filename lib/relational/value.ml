(* Typed cell values.

   Equality is SQL-like: NULL compares unequal to everything including
   itself.  This is the equality used to build the most specific join
   predicate T(t) = {(Ai,Bj) | tR[Ai] = tP[Bj]}, and it is what the ⊥ values
   of the Appendix A.1 reduction rely on (⊥ must never produce a match).
   Numeric values of different types never compare equal either: the paper's
   setting is untyped value equality within a column type, and keeping Int
   and Float apart avoids float-rounding artifacts in T. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = TBool | TInt | TFloat | TString

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TString

let ty_name = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TString -> "string"

(* Join equality: NULL never matches. *)
let eq a b =
  match (a, b) with
  | Null, _ | _, Null -> false
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | _ -> false

(* Total order for sorting and map keys; NULLs sort first and are equal to
   each other *in this order only* (not under [eq]). *)
let compare a b =
  let rank = function
    | Null -> 0
    | Bool _ -> 1
    | Int _ -> 2
    | Float _ -> 3
    | Str _ -> 4
  in
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Stdlib.compare x y
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Str x, Str y -> String.compare x y
  | _ -> Stdlib.compare (rank a) (rank b)

let hash = function
  | Null -> 0
  | Bool b -> if b then 3 else 5
  | Int i -> i * 2654435761
  | Float f -> Hashtbl.hash f
  | Str s -> Hashtbl.hash s

let is_null = function Null -> true | _ -> false

let to_string = function
  | Null -> ""
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let pp ppf v =
  match v with
  | Null -> Fmt.string ppf "NULL"
  | Str s -> Fmt.pf ppf "%S" s
  | v -> Fmt.string ppf (to_string v)

(* Parse a raw CSV cell under a target type; empty cells are NULL. *)
let parse ty s =
  if String.length s = 0 then Some Null
  else
    match ty with
    | TBool -> (
        match String.lowercase_ascii s with
        | "true" | "t" | "1" | "yes" -> Some (Bool true)
        | "false" | "f" | "0" | "no" -> Some (Bool false)
        | _ -> None)
    | TInt -> int_of_string_opt s |> Option.map (fun i -> Int i)
    | TFloat -> float_of_string_opt s |> Option.map (fun f -> Float f)
    | TString -> Some (Str s)

(* Guess the narrowest type able to represent every sample cell. *)
let infer_ty cells =
  let can ty = List.for_all (fun c -> parse ty c <> None) cells in
  if can TInt then TInt
  else if can TFloat then TFloat
  else if can TBool then TBool
  else TString
