(* Typed cell values.

   Equality is SQL-like: NULL compares unequal to everything including
   itself.  This is the equality used to build the most specific join
   predicate T(t) = {(Ai,Bj) | tR[Ai] = tP[Bj]}, and it is what the ⊥ values
   of the Appendix A.1 reduction rely on (⊥ must never produce a match).
   Numeric values of different types never compare equal either: the paper's
   setting is untyped value equality within a column type, and keeping Int
   and Float apart avoids float-rounding artifacts in T. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = TBool | TInt | TFloat | TString

let type_of = function
  | Null -> None
  | Bool _ -> Some TBool
  | Int _ -> Some TInt
  | Float _ -> Some TFloat
  | Str _ -> Some TString

let ty_name = function
  | TBool -> "bool"
  | TInt -> "int"
  | TFloat -> "float"
  | TString -> "string"

let ty_equal a b =
  match (a, b) with
  | TBool, TBool | TInt, TInt | TFloat, TFloat | TString, TString -> true
  | (TBool | TInt | TFloat | TString), _ -> false

(* Join equality: NULL never matches. *)
let eq a b =
  match (a, b) with
  | Null, _ | _, Null -> false
  | Bool x, Bool y -> Bool.equal x y
  | Int x, Int y -> Int.equal x y
  (* IEEE equality on purpose: Float nan never joins, like SQL's unknown.
     Float.equal would make nan = nan true. *)
  | Float x, Float y -> ((x = y) [@lint.allow "R1"])
  | Str x, Str y -> String.equal x y
  (* Spelled out so that adding a constructor is a compile error here, not
     a silent "never joins". *)
  | Bool _, (Int _ | Float _ | Str _)
  | Int _, (Bool _ | Float _ | Str _)
  | Float _, (Bool _ | Int _ | Str _)
  | Str _, (Bool _ | Int _ | Float _) -> false

(* Total order for sorting and map keys; NULLs sort first and are equal to
   each other *in this order only* (not under [eq]). *)
let compare a b =
  let rank = function
    | Null -> 0
    | Bool _ -> 1
    | Int _ -> 2
    | Float _ -> 3
    | Str _ -> 4
  in
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Null, (Bool _ | Int _ | Float _ | Str _)
  | Bool _, (Null | Int _ | Float _ | Str _)
  | Int _, (Null | Bool _ | Float _ | Str _)
  | Float _, (Null | Bool _ | Int _ | Str _)
  | Str _, (Null | Bool _ | Int _ | Float _) ->
      Int.compare (rank a) (rank b)

(* Structural equality under [compare]'s total order: NULL equals NULL.
   This is the equality for container keys and deduplication — never for
   join predicates, which must use [eq]. *)
let equal a b =
  (* [compare] is the total order above, not Stdlib.compare — the lint
     flag is a shadowing false positive. *)
  ((compare a b) [@lint.allow "R1"]) = 0

(* The leaf hash may use the polymorphic hash: it sees only the unboxed
   float/string payload, never a Value.t, so NULL semantics are not in
   play. *)
let hash = function
  | Null -> 0
  | Bool b -> if b then 3 else 5
  | Int i -> i * 2654435761
  | Float f -> (Hashtbl.hash f [@lint.allow "R1"])
  | Str s -> (Hashtbl.hash s [@lint.allow "R1"])

let is_null = function
  | Null -> true
  | Bool _ | Int _ | Float _ | Str _ -> false

let to_string = function
  | Null -> ""
  | Bool b -> string_of_bool b
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Str s -> s

let pp ppf v =
  match v with
  | Null -> Fmt.string ppf "NULL"
  | Str s -> Fmt.pf ppf "%S" s
  | (Bool _ | Int _ | Float _) as v -> Fmt.string ppf (to_string v)

(* Parse a raw CSV cell under a target type; empty cells are NULL. *)
let parse ty s =
  if String.length s = 0 then Some Null
  else
    match ty with
    | TBool -> (
        match String.lowercase_ascii s with
        | "true" | "t" | "1" | "yes" -> Some (Bool true)
        | "false" | "f" | "0" | "no" -> Some (Bool false)
        | _ -> None)
    | TInt -> int_of_string_opt s |> Option.map (fun i -> Int i)
    | TFloat -> float_of_string_opt s |> Option.map (fun f -> Float f)
    | TString -> Some (Str s)

(* Guess the narrowest type able to represent every sample cell. *)
let infer_ty cells =
  let can ty = List.for_all (fun c -> parse ty c <> None) cells in
  if can TInt then TInt
  else if can TFloat then TFloat
  else if can TBool then TBool
  else TString
