(* Three evaluators for the same k-ary equijoin semantics.

   The semantics is fixed by [reference]: every row combination whose
   cells satisfy each constraint under [Value.eq].  NULL/NaN cells fail
   every constraint (themselves included), mirroring signature
   computation — so dictionary codes, where NULL encodes as [no_code]
   and is never interned, decide constraints exactly.

   [compose] and [join] both work on codes.  Constraints are first
   closed into join variables (connected components of positions); a row
   participates only when, for every variable touching its relation, all
   of that variable's columns in the row carry one equal, non-[no_code]
   code.  This per-relation "local validity" plus cross-relation code
   equality on shared variables is equivalent to checking every original
   constraint, because code equality is an equivalence on joinable
   values. *)

type pos = int * int
type eq = pos * pos
type var = { positions : pos list; card : int }

let validate rels eqs =
  let k = Array.length rels in
  let check (r, c) =
    if r < 0 || r >= k then
      invalid_arg (Printf.sprintf "Leapfrog: relation index %d out of range" r);
    if c < 0 || c >= Relation.arity rels.(r) then
      invalid_arg
        (Printf.sprintf "Leapfrog: column %d out of range for relation %d" c r)
  in
  List.iter
    (fun (p1, p2) ->
      check p1;
      check p2)
    eqs

(* Join variables as position lists: union-find over flat position ids,
   roots kept at the smallest member so discovery order is "sorted by
   smallest position".  Each component's positions come out ascending. *)
let components rels eqs =
  validate rels eqs;
  let k = Array.length rels in
  let off = Array.make (k + 1) 0 in
  for r = 0 to k - 1 do
    off.(r + 1) <- off.(r) + Relation.arity rels.(r)
  done;
  let total = off.(k) in
  let parent = Array.init total (fun i -> i) in
  let rec find i =
    if Int.equal parent.(i) i then i
    else begin
      let root = find parent.(i) in
      parent.(i) <- root;
      root
    end
  in
  let union i j =
    let ri = find i and rj = find j in
    if not (Int.equal ri rj) then
      if ri < rj then parent.(rj) <- ri else parent.(ri) <- rj
  in
  let mentioned = Array.make total false in
  let pid (r, c) = off.(r) + c in
  List.iter
    (fun (p1, p2) ->
      mentioned.(pid p1) <- true;
      mentioned.(pid p2) <- true;
      union (pid p1) (pid p2))
    eqs;
  let members = Hashtbl.create 16 in
  for i = total - 1 downto 0 do
    if mentioned.(i) then begin
      let root = find i in
      let prev =
        match Hashtbl.find_opt members root with Some l -> l | None -> []
      in
      Hashtbl.replace members root (i :: prev)
    end
  done;
  let roots =
    List.sort Int.compare (Hashtbl.fold (fun r _ acc -> r :: acc) members [])
  in
  let unpid i =
    let rec go r = if off.(r + 1) > i then (r, i - off.(r)) else go (r + 1) in
    go 0
  in
  Array.of_list
    (List.map
       (fun root ->
         match Hashtbl.find_opt members root with
         | Some pids -> List.map unpid pids
         | None -> [])
       roots)

let variables rels eqs =
  let comps = components rels eqs in
  let dict = Dict.create () in
  let codes = Array.map (Dict.encode_rows dict) rels in
  Array.map
    (fun positions ->
      let card =
        List.fold_left
          (fun acc (r, c) ->
            let seen = Hashtbl.create 16 in
            let distinct = ref 0 in
            for row = 0 to Relation.cardinality rels.(r) - 1 do
              let x = codes.(r).(row).(c) in
              if (not (Int.equal x Dict.no_code)) && not (Hashtbl.mem seen x)
              then begin
                Hashtbl.replace seen x ();
                incr distinct
              end
            done;
            min acc !distinct)
          max_int positions
      in
      { positions; card })
    comps

(* ------------------------------ unary ----------------------------- *)

let array_seek (a : int array) from v =
  let lo = ref from and hi = ref (Array.length a) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if a.(mid) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let unary sets =
  match sets with
  | [] -> invalid_arg "Leapfrog.unary: intersection of no sets"
  | [ only ] -> Array.to_list only
  | first :: _ :: _ ->
      let arrs = Array.of_list sets in
      let kk = Array.length arrs in
      if Array.exists (fun a -> Array.length a = 0) arrs then []
      else begin
        let idx = Array.make kk 0 in
        let out = ref [] in
        let maxv = ref first.(0) in
        let agree = ref 1 in
        let p = ref 1 in
        let running = ref true in
        while !running do
          let a = arrs.(!p) in
          let i = array_seek a idx.(!p) !maxv in
          idx.(!p) <- i;
          if i >= Array.length a then running := false
          else if Int.equal a.(i) !maxv then begin
            incr agree;
            if Int.equal !agree kk then begin
              out := !maxv :: !out;
              idx.(!p) <- i + 1;
              if i + 1 >= Array.length a then running := false
              else begin
                maxv := a.(i + 1);
                agree := 1
              end
            end;
            p := (!p + 1) mod kk
          end
          else begin
            maxv := a.(i);
            agree := 1;
            p := (!p + 1) mod kk
          end
        done;
        List.rev !out
      end

(* ---------------------------- reference --------------------------- *)

(* The differential oracle: never optimized, on purpose.  Each row
   combination is checked against the raw constraint list with the real
   [Value.eq] — no dictionary, no variables, no sharing — so it cannot
   inherit a bug from the machinery it is meant to check. *)
let reference rels eqs =
  if Array.length rels = 0 then invalid_arg "Leapfrog.reference: no relations";
  validate rels eqs;
  let k = Array.length rels in
  let out = ref [] in
  let vec = Array.make k 0 in
  let rec go r =
    if Int.equal r k then begin
      let ok =
        List.for_all
          (fun ((r1, c1), (r2, c2)) ->
            Value.eq
              (Tuple.get (Relation.row rels.(r1) vec.(r1)) c1)
              (Tuple.get (Relation.row rels.(r2) vec.(r2)) c2))
          eqs
      in
      if ok then out := Array.copy vec :: !out
    end
    else
      for row = 0 to Relation.cardinality rels.(r) - 1 do
        vec.(r) <- row;
        go (r + 1)
      done
  in
  go 0;
  Array.of_list (List.rev !out)

(* ----------------------- shared code plumbing --------------------- *)

(* Columns of variable [v] inside relation [r]. *)
let cols_in comps v r =
  List.filter_map
    (fun (rr, c) -> if Int.equal rr r then Some c else None)
    comps.(v)

(* The code variable [v] takes in row [row] of relation [r]: [Some x]
   when every column agrees on the non-NULL code [x]. *)
let var_code codes r row cols =
  match cols with
  | [] -> None
  | c0 :: rest ->
      let x = codes.(r).(row).(c0) in
      if Int.equal x Dict.no_code then None
      else if List.for_all (fun c -> Int.equal codes.(r).(row).(c) x) rest
      then Some x
      else None

(* ----------------------------- compose ---------------------------- *)

let compose rels eqs =
  if Array.length rels = 0 then invalid_arg "Leapfrog.compose: no relations";
  let k = Array.length rels in
  let comps = components rels eqs in
  let nvars = Array.length comps in
  let dict = Dict.create () in
  let codes = Array.map (Dict.encode_rows dict) rels in
  (* rel_cols.(r): the variables touching r, each with its columns. *)
  let rel_cols = Array.make k [] in
  for v = nvars - 1 downto 0 do
    for r = k - 1 downto 0 do
      match cols_in comps v r with
      | [] -> ()
      | _ :: _ as cols -> rel_cols.(r) <- (v, cols) :: rel_cols.(r)
    done
  done;
  let valid_rows r =
    let acc = ref [] in
    for row = Relation.cardinality rels.(r) - 1 downto 0 do
      if
        List.for_all
          (fun (_v, cols) -> Option.is_some (var_code codes r row cols))
          rel_cols.(r)
      then acc := row :: !acc
    done;
    !acc
  in
  (* Any prefix position of variable [v] (positions are ascending, so
     the head below relation [i] serves). *)
  let prefix_pos i v = List.find_opt (fun (r, _) -> r < i) comps.(v) in
  let acc = ref (List.map (fun row -> [| row |]) (valid_rows 0)) in
  for i = 1 to k - 1 do
    let shared =
      List.filter_map
        (fun (v, cols) ->
          match prefix_pos i v with
          | Some (r, c) -> Some (cols, r, c)
          | None -> None)
        rel_cols.(i)
    in
    let tbl = Hashtbl.create 64 in
    List.iter
      (fun row ->
        let key =
          Array.of_list
            (List.map
               (fun (cols, _, _) ->
                 match var_code codes i row cols with
                 | Some x -> x
                 | None -> Dict.no_code (* unreachable: row is valid *))
               shared)
        in
        let prev =
          match Hashtbl.find_opt tbl key with Some l -> l | None -> []
        in
        Hashtbl.replace tbl key (row :: prev))
      (valid_rows i);
    acc :=
      List.concat_map
        (fun vec ->
          let key =
            Array.of_list
              (List.map (fun (_, r, c) -> codes.(r).(vec.(r)).(c)) shared)
          in
          match Hashtbl.find_opt tbl key with
          | None -> []
          | Some matches ->
              List.rev_map
                (fun row ->
                  let nv = Array.make (i + 1) 0 in
                  Array.blit vec 0 nv 0 i;
                  nv.(i) <- row;
                  nv)
                matches)
        !acc
  done;
  Array.of_list !acc

(* ------------------------------ join ------------------------------ *)

let check_permutation order nvars =
  if not (Int.equal (Array.length order) nvars) then
    invalid_arg
      (Printf.sprintf "Leapfrog.join: order has %d entries for %d variables"
         (Array.length order) nvars);
  let seen = Array.make (max 1 nvars) false in
  Array.iter
    (fun v ->
      if v < 0 || v >= nvars then
        invalid_arg (Printf.sprintf "Leapfrog.join: variable %d out of range" v);
      if seen.(v) then
        invalid_arg (Printf.sprintf "Leapfrog.join: variable %d repeated" v);
      seen.(v) <- true)
    order

let join ?order rels eqs =
  if Array.length rels = 0 then invalid_arg "Leapfrog.join: no relations";
  let k = Array.length rels in
  let comps = components rels eqs in
  let nvars = Array.length comps in
  let order =
    match order with
    | None -> Array.init nvars (fun i -> i)
    | Some o ->
        check_permutation o nvars;
        Array.copy o
  in
  let dict = Dict.create () in
  let codes = Array.map (Dict.encode_rows dict) rels in
  (* rel_vars.(r): depths (positions in the global ordering) at which
     relation r participates, ascending — these are r's trie levels. *)
  let rel_vars = Array.make k [] in
  let rel_depth = Array.make k 0 in
  for d = nvars - 1 downto 0 do
    let v = order.(d) in
    List.iter
      (fun (r, _) ->
        match rel_vars.(r) with
        | d' :: _ when Int.equal d' d -> ()
        | [] | _ :: _ ->
            rel_vars.(r) <- d :: rel_vars.(r);
            rel_depth.(r) <- rel_depth.(r) + 1)
      comps.(v)
  done;
  let tries =
    Array.init k (fun r ->
        match rel_vars.(r) with
        | [] -> None
        | _ :: _ as vds ->
            let depth = rel_depth.(r) in
            let var_cols =
              Array.of_list (List.map (fun d -> cols_in comps order.(d) r) vds)
            in
            let entries = ref [] in
            for row = Relation.cardinality rels.(r) - 1 downto 0 do
              let key = Array.make depth 0 in
              let ok = ref true in
              Array.iteri
                (fun i cols ->
                  match var_code codes r row cols with
                  | Some x -> key.(i) <- x
                  | None -> ok := false)
                var_cols;
              if !ok then entries := (key, row) :: !entries
            done;
            Some (Trie.create ~depth !entries))
  in
  let iters =
    Array.map
      (function None -> None | Some trie -> Some (Trie.iter trie))
      tries
  in
  let iter_of r =
    match iters.(r) with
    | Some it -> it
    | None -> invalid_arg "Leapfrog.join: relation without a trie opened"
  in
  (* parts.(d): relations participating at depth d. *)
  let parts =
    Array.init nvars (fun d ->
        let touched = Array.make k false in
        List.iter (fun (r, _) -> touched.(r) <- true) comps.(order.(d));
        let acc = ref [] in
        for r = k - 1 downto 0 do
          if touched.(r) then acc := r :: !acc
        done;
        Array.of_list !acc)
  in
  let all_rows =
    Array.init k (fun r ->
        match rel_vars.(r) with
        | [] -> Array.init (Relation.cardinality rels.(r)) (fun i -> i)
        | _ :: _ -> [||])
  in
  let out = ref [] in
  let vec = Array.make k 0 in
  let emit () =
    let sets =
      Array.init k (fun r ->
          match tries.(r) with
          | None -> all_rows.(r)
          | Some _ -> Trie.rows (iter_of r))
    in
    let rec prod r =
      if Int.equal r k then out := Array.copy vec :: !out
      else
        Array.iter
          (fun row ->
            vec.(r) <- row;
            prod (r + 1))
          sets.(r)
    in
    prod 0
  in
  let rec go d =
    if Int.equal d nvars then emit ()
    else begin
      let its = Array.map iter_of parts.(d) in
      Array.iter Trie.open_ its;
      if not (Array.exists Trie.at_end its) then begin
        (* Leapfrog search: keep the iterators sorted by key, advance
           the smallest to the current maximum; a match means all sit on
           one value, and we descend. *)
        let arr = Array.copy its in
        Array.sort (fun a b -> Int.compare (Trie.key a) (Trie.key b)) arr;
        let kk = Array.length arr in
        let p = ref 0 in
        let maxk = ref (Trie.key arr.(kk - 1)) in
        let running = ref true in
        while !running do
          let it = arr.(!p) in
          if Int.equal (Trie.key it) !maxk then begin
            go (d + 1);
            Trie.next it;
            if Trie.at_end it then running := false
            else begin
              maxk := Trie.key it;
              p := (!p + 1) mod kk
            end
          end
          else begin
            Trie.seek it !maxk;
            if Trie.at_end it then running := false
            else begin
              maxk := Trie.key it;
              p := (!p + 1) mod kk
            end
          end
        done
      end;
      Array.iter Trie.up its
    end
  in
  go 0;
  Array.of_list (List.rev !out)
