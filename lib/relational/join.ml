(* Equijoin and semijoin evaluation.

   A join predicate at this level is a list of column-index pairs
   [(i, j)] meaning R.col_i = P.col_j (the θ of the paper, resolved to
   positions).  Two evaluators are provided: a nested-loop reference
   implementation and a hash join; the test suite checks they agree.

   The empty predicate θ = ∅ denotes the Cartesian product (every pair
   vacuously satisfies it), matching the paper's "most general join
   predicate H". *)

type predicate = (int * int) list

module Obs = Jqi_obs.Obs
module Vec = Jqi_util.Vec

let c_join_output = Obs.Counter.make "join.output_rows"
let c_nested_pairs = Obs.Counter.make "join.nested_pairs"

let check_predicate r p (theta : predicate) =
  List.iter
    (fun (i, j) ->
      if i < 0 || i >= Relation.arity r then
        invalid_arg (Printf.sprintf "Join: bad left column %d" i);
      if j < 0 || j >= Relation.arity p then
        invalid_arg (Printf.sprintf "Join: bad right column %d" j))
    theta

let matches (theta : predicate) tr tp =
  List.for_all (fun (i, j) -> Value.eq (Tuple.get tr i) (Tuple.get tp j)) theta

let product_schema r p =
  Schema.product
    ~left_prefix:(Relation.name r)
    ~right_prefix:(Relation.name p)
    (Relation.schema r) (Relation.schema p)

(* Output rows are accumulated in a growable buffer ([Jqi_util.Vec]), not
   the [list ref]/[List.rev]/[Array.of_list] chain: each output row is
   stored once, and the final array is one [Array.sub]. *)
let rows_relation r p (out : Tuple.t Vec.t) =
  Obs.Counter.add c_join_output (Vec.length out);
  Relation.create
    ~name:(Relation.name r ^ "_join_" ^ Relation.name p)
    ~schema:(product_schema r p)
    (Vec.to_array out)

(* R ⋈_θ P by nested loops — the executable definition. *)
let equijoin_nested r p (theta : predicate) =
  check_predicate r p theta;
  Obs.span "join.equijoin_nested" @@ fun () ->
  Obs.Counter.add c_nested_pairs (Relation.cardinality r * Relation.cardinality p);
  let out = Vec.create () in
  Relation.iter
    (fun tr ->
      Relation.iter
        (fun tp -> if matches theta tr tp then Vec.push out (Tuple.concat tr tp))
        p)
    r;
  rows_relation r p out

(* R ⋈_θ P with a hash index on P's join columns.  The probe key buffer is
   hoisted out of the loop over R ([Index.prober]), so the probe phase
   allocates only the output rows. *)
let equijoin r p (theta : predicate) =
  check_predicate r p theta;
  match theta with
  | [] -> equijoin_nested r p theta
  | _ :: _ ->
      Obs.span "join.equijoin" @@ fun () ->
      let idx = Index.build p ~columns:(List.map snd theta) in
      let probe = Index.prober idx ~probe_columns:(List.map fst theta) in
      let out = Vec.create () in
      Relation.iter
        (fun tr ->
          List.iter
            (fun j -> Vec.push out (Tuple.concat tr (Relation.row p j)))
            (probe tr))
        r;
      rows_relation r p out

let filter_rows r keep =
  let out = Vec.create () in
  Relation.iter (fun tr -> if keep tr then Vec.push out tr) r;
  Relation.with_rows r (Vec.to_array out)

(* R ⋉_θ P = Π_attrs(R)(R ⋈_θ P), duplicate-free over R's rows. *)
let semijoin r p (theta : predicate) =
  check_predicate r p theta;
  let keep =
    match theta with
    | [] -> fun _ -> not (Relation.is_empty p)
    | _ :: _ ->
        let idx = Index.build p ~columns:(List.map snd theta) in
        let probe = Index.prober idx ~probe_columns:(List.map fst theta) in
        fun tr -> (match probe tr with [] -> false | _ :: _ -> true)
  in
  filter_rows r keep

let semijoin_nested r p (theta : predicate) =
  check_predicate r p theta;
  filter_rows r
    (fun tr -> Relation.fold (fun acc tp -> acc || matches theta tr tp) false p)

(* Anti-join: rows of R with no θ-partner in P. *)
let antijoin r p (theta : predicate) =
  let selected = Relation.tuple_set (semijoin r p theta) in
  filter_rows r (fun tr -> not (Relation.Tuple_set.mem tr selected))

(* Resolve a predicate given by column names. *)
let predicate_of_names r p pairs : predicate =
  List.map
    (fun (a, b) ->
      ( Schema.index_of_exn (Relation.schema r) a,
        Schema.index_of_exn (Relation.schema p) b ))
    pairs

let pp_predicate r p ppf (theta : predicate) =
  let pp_pair ppf (i, j) =
    Fmt.pf ppf "%s.%s=%s.%s" (Relation.name r)
      (Schema.name_at (Relation.schema r) i)
      (Relation.name p)
      (Schema.name_at (Relation.schema p) j)
  in
  if theta = [] then Fmt.string ppf "∅"
  else Fmt.pf ppf "%a" (Fmt.list ~sep:(Fmt.any " ∧ ") pp_pair) theta
