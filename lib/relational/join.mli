(** Equijoin and semijoin evaluation.

    Predicates are lists of column-index pairs [(i, j)] meaning
    R.col_i = P.col_j; the empty predicate denotes the Cartesian product
    (the paper's most general predicate ∅). *)

type predicate = (int * int) list

(** Does the pair satisfy θ? *)
val matches : predicate -> Tuple.t -> Tuple.t -> bool

(** R ⋈_θ P by nested loops — the executable definition. *)
val equijoin_nested : Relation.t -> Relation.t -> predicate -> Relation.t

(** R ⋈_θ P with a hash index on P's join columns. *)
val equijoin : Relation.t -> Relation.t -> predicate -> Relation.t

(** R ⋉_θ P: rows of R with at least one θ-partner in P. *)
val semijoin : Relation.t -> Relation.t -> predicate -> Relation.t

val semijoin_nested : Relation.t -> Relation.t -> predicate -> Relation.t

(** Rows of R with no θ-partner. *)
val antijoin : Relation.t -> Relation.t -> predicate -> Relation.t

(** Resolve a predicate given by column names; raises on unknown names. *)
val predicate_of_names :
  Relation.t -> Relation.t -> (string * string) list -> predicate

val pp_predicate :
  Relation.t -> Relation.t -> Format.formatter -> predicate -> unit
