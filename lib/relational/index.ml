(* Hash indexes on one or more columns.

   The equijoin evaluator builds an index on the join columns of the smaller
   relation; NULL keys are excluded because NULL never joins under
   [Value.eq].

   Keys are [Value.t array]s (not lists): the per-key allocation is one
   flat block, and equality/hashing are index loops without list-spine
   chasing.  Callers probing many rows against the same columns should use
   [prober], which hoists the column resolution and the key buffer out of
   the probe loop — one key buffer is reused for every probe, so a
   [prober] closure allocates nothing per call. *)

module Obs = Jqi_obs.Obs

(* Hash-join instrumentation: rows hashed at build time, probe calls and
   rows returned by probes. *)
let c_build_rows = Obs.Counter.make "index.build_rows"
let c_probes = Obs.Counter.make "index.probes"
let c_probe_rows = Obs.Counter.make "index.probe_rows"

module Key = struct
  type t = Value.t array

  let equal a b =
    Int.equal (Array.length a) (Array.length b)
    &&
    let rec go i = i >= Array.length a || (Value.eq a.(i) b.(i) && go (i + 1)) in
    go 0

  let hash k = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 k
end

module H = Hashtbl.Make (Key)

type t = { columns : int array; table : int list H.t }

let key_of_row columns row = Array.map (fun c -> Tuple.get row c) columns

let has_null key = Array.exists Value.is_null key

let build rel ~columns =
  Obs.Counter.add c_build_rows (Relation.cardinality rel);
  let columns = Array.of_list columns in
  let table = H.create (max 16 (Relation.cardinality rel)) in
  (* Stream rather than materialize: on a Paged relation this is one
     heap scan under the buffer-pool budget. *)
  Relation.iteri
    (fun i row ->
      let key = key_of_row columns row in
      if not (has_null key) then
        let prev = Option.value ~default:[] (H.find_opt table key) in
        H.replace table key (i :: prev))
    rel;
  { columns; table }

(* [find_key] looks rows up by a caller-owned key buffer; the table never
   retains a probe key, so reusing one buffer across probes is safe. *)
let find_key t key =
  Obs.Counter.incr c_probes;
  if has_null key then []
  else
    let rows = Option.value ~default:[] (H.find_opt t.table key) in
    (match rows with [] -> () | _ :: _ -> Obs.Counter.add c_probe_rows (List.length rows));
    rows

(* Row indexes whose key columns match [row]'s [probe_columns] values. *)
let probe t ~probe_columns row =
  find_key t (key_of_row (Array.of_list probe_columns) row)

let prober t ~probe_columns =
  let cols = Array.of_list probe_columns in
  let n = Array.length cols in
  if n = 0 then fun _ -> find_key t [||]
  else
    (* The buffer is sized once and overwritten per probe; [Value.Null] is
       only the initial fill. *)
    let key = Array.make n Value.Null in
    fun row ->
      for k = 0 to n - 1 do
        key.(k) <- Tuple.get row cols.(k)
      done;
      find_key t key

let lookup t key = find_key t (Array.of_list key)

let distinct_keys t = H.length t.table
