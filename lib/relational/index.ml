(* Hash indexes on one or more columns.

   The equijoin evaluator builds an index on the join columns of the smaller
   relation; NULL keys are excluded because NULL never joins under
   [Value.eq]. *)

module Obs = Jqi_obs.Obs

(* Hash-join instrumentation: rows hashed at build time, probe calls and
   rows returned by probes. *)
let c_build_rows = Obs.Counter.make "index.build_rows"
let c_probes = Obs.Counter.make "index.probes"
let c_probe_rows = Obs.Counter.make "index.probe_rows"

module Key = struct
  type t = Value.t list

  let equal a b =
    Int.equal (List.length a) (List.length b) && List.for_all2 Value.eq a b
  let hash k = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 k
end

module H = Hashtbl.Make (Key)

type t = { columns : int list; table : int list H.t }

let key_of_row columns row = List.map (fun c -> Tuple.get row c) columns

let build rel ~columns =
  Obs.Counter.add c_build_rows (Relation.cardinality rel);
  let table = H.create (max 16 (Relation.cardinality rel)) in
  Array.iteri
    (fun i row ->
      let key = key_of_row columns row in
      if not (List.exists Value.is_null key) then
        let prev = Option.value ~default:[] (H.find_opt table key) in
        H.replace table key (i :: prev))
    (Relation.rows rel);
  { columns; table }

(* Row indexes whose key columns match [row]'s [probe_columns] values. *)
let probe t ~probe_columns row =
  Obs.Counter.incr c_probes;
  let key = key_of_row probe_columns row in
  if List.exists Value.is_null key then []
  else
    let rows = Option.value ~default:[] (H.find_opt t.table key) in
    (match rows with [] -> () | _ -> Obs.Counter.add c_probe_rows (List.length rows));
    rows

let lookup t key = Option.value ~default:[] (H.find_opt t.table key)

let distinct_keys t = H.length t.table
