(** Multi-way equijoin over k relations, three ways: Leapfrog Triejoin,
    left-deep pairwise hash composition, and a deliberately naive nested
    loop kept forever as the differential oracle.

    A join problem is a relation array plus a list of column-equality
    constraints; the answer is the set of row-id vectors (one row index
    per relation, in relation order) whose cells satisfy every
    constraint under {!Value.eq} — NULL and NaN never match anything,
    themselves included, exactly as in signature computation.  All three
    evaluators implement this same semantics, so on any input their
    results are equal as multisets; [test/test_kary.ml] pins that
    equivalence on hundreds of random NULL- and duplicate-heavy
    instances, which is what lets the fast paths evolve safely.

    Equality constraints are closed under transitivity into join
    {e variables} (connected components of column positions).  The
    triejoin path builds one {!Trie} per relation — key columns are the
    relation's variables in the chosen variable ordering — and runs the
    classic leapfrog search (Veldhuizen, ICDT 2014) level by level.
    Orderings come from [Jqi_joinpath]; any permutation of the variables
    yields the same result set. *)

(** A column position: (relation index, column index). *)
type pos = int * int

(** One equality constraint between two column positions. *)
type eq = pos * pos

(** A join variable: a maximal set of positions connected by the
    constraints.  [card] is the smallest number of distinct joinable
    (non-NULL) codes over its columns — the branching-factor estimate
    variable-ordering heuristics work from. *)
type var = { positions : pos list; card : int }

(** The join variables of a problem, in discovery order (sorted by their
    smallest position).  Raises [Invalid_argument] on an out-of-range
    position. *)
val variables : Relation.t array -> eq list -> var array

(** Leapfrog intersection of ascending, duplicate-free integer arrays —
    the unary core of triejoin, exposed for tests.  The intersection of
    no sets is undefined and raises [Invalid_argument]. *)
val unary : int array list -> int list

(** The oracle: k nested loops over all row combinations, each
    constraint checked with {!Value.eq} on the actual cells.  O(product
    of cardinalities); never optimized, by design — the other two
    evaluators are tested against it. *)
val reference : Relation.t array -> eq list -> int array array

(** Left-deep pairwise composition: fold relations left to right,
    hash-joining each onto the accumulated prefix on the variables they
    share (a cross product when they share none).  The classic binary
    join plan a k-ary engine must beat. *)
val compose : Relation.t array -> eq list -> int array array

(** Full Leapfrog Triejoin.  [order] is a permutation of variable
    indexes into {!variables} (identity by default); raises
    [Invalid_argument] when it is not a permutation.  Worst-case optimal
    in the AGM bound, and never worse than the best binary plan on
    skewed instances. *)
val join : ?order:int array -> Relation.t array -> eq list -> int array array
