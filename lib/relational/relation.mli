(** Relation instances: a name, a schema, and rows in insertion order.
    Set semantics are applied explicitly by [Algebra.distinct]. *)

type t

(** Raises [Invalid_argument] when a row's arity differs from the
    schema's. *)
val create : name:string -> schema:Schema.t -> Tuple.t array -> t

val of_list : name:string -> schema:Schema.t -> Tuple.t list -> t
val name : t -> string
val schema : t -> Schema.t
val rows : t -> Tuple.t array
val cardinality : t -> int
val row : t -> int -> Tuple.t
val arity : t -> int
val is_empty : t -> bool
val with_name : t -> string -> t
val with_rows : t -> Tuple.t array -> t
val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a
val iter : (Tuple.t -> unit) -> t -> unit
val mem : t -> Tuple.t -> bool
val to_list : t -> Tuple.t list

module Tuple_set : Set.S with type elt = Tuple.t

val tuple_set : t -> Tuple_set.t

(** Same schema and same *set* of rows (order- and duplicate-
    insensitive). *)
val equal_contents : t -> t -> bool

(** Content fingerprint (FNV-1a 64-bit, rendered as 16 hex digits) over
    name, schema and all cells in row-major order.  Cells are hashed with
    type tags, so renderings that coincide (NULL vs the empty string) do
    not collide structurally.  Equal fingerprints identify relations for
    cache keying — e.g. the server's universe cache. *)
val fingerprint : t -> string

val pp : Format.formatter -> t -> unit

(** Print as an ASCII table on stdout. *)
val print : t -> unit
