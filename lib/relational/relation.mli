(** Relation instances: a name, a schema, and rows in insertion order.
    Set semantics are applied explicitly by [Algebra.distinct].

    Rows live behind a storage {!Backend}: [Mem] is a plain array
    (zero-cost, the default everywhere); [Paged] is a record of
    closures provided by an out-of-core store (jqi.storage), keeping
    this tier free of IO while letting scans stream from disk. *)

(** Storage abstraction. *)
module Backend : sig
  (** Dictionary-coded access offered by stores that intern cell
      values on disk (jqi.storage's Relstore). [value] decodes a
      store-local code (0-based, dense, in first-occurrence =
      row-major order); [iter_codes f] calls [f row codes] for every
      row with the store codes of its cells, [-1] for uncodable cells
      (NULL/NaN). The [codes] buffer is reused between rows — copy it
      to retain. [Dict.iter_encoded] uses this to translate a whole
      file's codes through one table instead of re-hashing every
      cell. *)
  type coded = {
    distinct : int;  (** number of distinct codable values in the store *)
    value : int -> Value.t;
    iter_codes : (int -> int array -> unit) -> unit;
  }

  (** Closure interface an out-of-core store implements. [iter_rows f]
      calls [f i row] for [i] = 0..[n_rows]-1 in order; [get_row] is
      random access (one page fetch per call). [describe] names the
      store for diagnostics, e.g. ["paged:orders.jqh"]. *)
  type paged = {
    n_rows : int;
    get_row : int -> Tuple.t;
    iter_rows : (int -> Tuple.t -> unit) -> unit;
    coded : coded option;
    describe : string;
    apply_delta : (adds:Tuple.t array -> removed:int array -> paged) option;
        (** In-place churn support: [f ~adds ~removed] deletes the rows at
            the (sorted ascending, pre-delta) indexes [removed] from the
            store, appends [adds] after the survivors, and returns a fresh
            [paged] view of the mutated store.  Destructive — earlier
            views over the same store are invalidated.  When [None],
            {!Relation.apply_delta} falls back to materializing a [Mem]
            relation. *)
  }

  type t = Mem of Tuple.t array | Paged of paged

  val name : t -> string
  (** ["mem"] or ["paged"]. *)
end

type t

(** Raises [Invalid_argument] when a row's arity differs from the
    schema's. *)
val create : name:string -> schema:Schema.t -> Tuple.t array -> t

val of_list : name:string -> schema:Schema.t -> Tuple.t list -> t

(** Wrap an out-of-core store. The store's row arity is trusted. *)
val of_paged : name:string -> schema:Schema.t -> Backend.paged -> t

val backend : t -> Backend.t

val backend_name : t -> string
(** ["mem"] or ["paged"]. *)

val name : t -> string
val schema : t -> Schema.t

val rows : t -> Tuple.t array
(** On [Mem] the backing array itself (treat as read-only); on [Paged]
    a fresh, fully materialized copy — an escape hatch for callers
    that genuinely need an array (index build, join matrices). Scans
    should prefer {!iter}/{!iteri}/{!fold}, which stream. *)

val cardinality : t -> int
val row : t -> int -> Tuple.t
val arity : t -> int
val is_empty : t -> bool
val with_name : t -> string -> t

val with_rows : t -> Tuple.t array -> t
(** Always produces a [Mem] relation. *)

val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a
val iter : (Tuple.t -> unit) -> t -> unit

val iteri : (int -> Tuple.t -> unit) -> t -> unit
(** One streaming pass in row order; on [Paged] each row costs one
    (usually cached) page fetch and rows are decoded one at a time. *)

val mem : t -> Tuple.t -> bool
val to_list : t -> Tuple.t list

module Tuple_set : Set.S with type elt = Tuple.t

val tuple_set : t -> Tuple_set.t

(** Same schema and same *set* of rows (order- and duplicate-
    insensitive). *)
val equal_contents : t -> t -> bool

(** Resolve a delta's by-value removes to concrete (pre-delta) row
    indexes, sorted ascending: one streaming scan assigns each remove
    the earliest still-unclaimed [Tuple.equal] occurrence.  Raises
    [Invalid_argument] when some remove matches no remaining row. *)
val resolve_removes : t -> Delta.t -> int array

(** Apply one churn batch: the removed rows disappear (survivors keep
    their relative order) and the added rows are appended after them.
    On [Mem] this builds a fresh backing array, leaving the input value
    untouched.  On [Paged] stores that support it the store is mutated
    {e in place} (earlier views over the same store are invalidated);
    stores without delta support fall back to a materialized [Mem]
    result.  Raises [Invalid_argument] on an arity-mismatched row or an
    unmatched remove. *)
val apply_delta : t -> Delta.t -> t

(** Streaming fingerprint accumulator — the guts of {!fingerprint},
    exposed so the server catalog can {e extend} a cached fingerprint
    with appended rows in O(|adds|) instead of re-hashing the whole
    relation.  FNV-1a is sequential, so for an append-only delta
    [render (feed_rows acc adds)] equals the from-scratch fingerprint of
    the grown relation, provided [acc] covered the old contents. *)
module Fp : sig
  type acc

  (** Accumulator over name, schema and all current rows —
    [render (of_relation t) = fingerprint t]. *)
  val of_relation : t -> acc

  (** Extend with rows appended after everything [acc] has seen. *)
  val feed_rows : acc -> Tuple.t array -> acc

  val render : acc -> string
end

(** Content fingerprint (FNV-1a 64-bit, rendered as 16 hex digits) over
    name, schema and all cells in row-major order.  Cells are hashed with
    type tags, so renderings that coincide (NULL vs the empty string) do
    not collide structurally.  Equal fingerprints identify relations for
    cache keying — e.g. the server's universe cache.  Streams, so a paged
    relation is fingerprinted from its heap-file scan and agrees with the
    [Mem] fingerprint of the same contents. *)
val fingerprint : t -> string

val pp : Format.formatter -> t -> unit

(** Print as an ASCII table on stdout. *)
val print : t -> unit
