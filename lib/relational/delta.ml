(* First-class data churn: one batch of row insertions and deletions
   against a single relation.

   A delta is pure data — two tuple batches, no reference to the relation
   it targets — so the same value can travel untouched from a protocol
   frame through the catalog down to the storage engine.  Removals are
   *by value*: each remove claims one occurrence of an equal row
   ([Tuple.equal], NULL cells compare equal structurally), which is the
   only addressing mode a wire client has.  Resolution of removes to
   concrete row indexes is the relation's job ({!Relation.resolve_removes}),
   keeping this module free of any backend concern. *)

type t = { adds : Tuple.t array; removes : Tuple.t array }

let empty = { adds = [||]; removes = [||] }
let v ~adds ~removes = { adds; removes }

let of_lists ~adds ~removes =
  { adds = Array.of_list adds; removes = Array.of_list removes }

let is_empty d = Array.length d.adds = 0 && Array.length d.removes = 0
let inserts_only d = Array.length d.removes = 0
let cardinality_shift d = Array.length d.adds - Array.length d.removes

let check_arity arity d =
  let chk what r =
    if not (Int.equal (Tuple.arity r) arity) then
      invalid_arg
        (Printf.sprintf "Delta: %s row arity %d, relation arity %d" what
           (Tuple.arity r) arity)
  in
  Array.iter (chk "insert") d.adds;
  Array.iter (chk "delete") d.removes
