(** Hash indexes on one or more columns, used by the join evaluators.
    Rows whose key contains NULL are not indexed (NULL never joins). *)

type t

val build : Relation.t -> columns:int list -> t

(** Row indexes matching the probe row's [probe_columns] values; empty for
    NULL-containing probes. *)
val probe : t -> probe_columns:int list -> Tuple.t -> int list

(** Hoisted repeated probing: resolves [probe_columns] and allocates the
    key buffer once, returning a closure that probes without per-call
    allocation.  The closure reuses its buffer, so it must not be shared
    across domains. *)
val prober : t -> probe_columns:int list -> Tuple.t -> int list

(** Lookup counts as a probe for the instrumentation counters. *)
val lookup : t -> Value.t list -> int list

val distinct_keys : t -> int
