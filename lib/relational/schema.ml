(* Relation schemas: ordered, named, typed columns.

   The paper assumes attrs(R) and attrs(P) are disjoint; [product] enforces
   disjointness by qualifying clashing names, and [index_of_exn] is the only
   name → position lookup used by the engine. *)

type column = { name : string; ty : Value.ty }

type t = { columns : column array; by_name : (string, int) Hashtbl.t }

let column name ty = { name; ty }

let of_columns columns =
  let columns = Array.of_list columns in
  let by_name = Hashtbl.create (Array.length columns) in
  Array.iteri
    (fun i c ->
      if Hashtbl.mem by_name c.name then
        invalid_arg (Printf.sprintf "Schema: duplicate column %S" c.name);
      Hashtbl.add by_name c.name i)
    columns;
  { columns; by_name }

let of_names ?(ty = Value.TString) names =
  of_columns (List.map (fun n -> column n ty) names)

let arity t = Array.length t.columns
let columns t = Array.to_list t.columns
let column_at t i = t.columns.(i)
let name_at t i = t.columns.(i).name
let ty_at t i = t.columns.(i).ty
let names t = Array.to_list (Array.map (fun c -> c.name) t.columns)

let index_of t name = Hashtbl.find_opt t.by_name name

let index_of_exn t name =
  match index_of t name with
  | Some i -> i
  | None -> invalid_arg (Printf.sprintf "Schema: no column %S" name)

let mem t name = Hashtbl.mem t.by_name name

let equal a b =
  Int.equal (arity a) (arity b)
  && Array.for_all2
       (fun c d -> String.equal c.name d.name && Value.ty_equal c.ty d.ty)
       a.columns b.columns

(* Concatenation for Cartesian products.  Columns whose names clash are
   qualified with the given prefixes, keeping attribute sets disjoint as the
   paper's setting requires. *)
let product ?(left_prefix = "l") ?(right_prefix = "r") a b =
  let clash name = mem a name && mem b name in
  let qualify prefix c =
    if clash c.name then { c with name = prefix ^ "." ^ c.name } else c
  in
  of_columns
    (List.map (qualify left_prefix) (columns a)
    @ List.map (qualify right_prefix) (columns b))

let project t idxs =
  of_columns (List.map (fun i -> t.columns.(i)) idxs)

let rename t old_name new_name =
  let i = index_of_exn t old_name in
  of_columns
    (List.mapi
       (fun j c -> if Int.equal j i then { c with name = new_name } else c)
       (columns t))

let pp ppf t =
  Fmt.pf ppf "(%a)"
    Fmt.(list ~sep:(any ", ") (fun ppf c ->
             Fmt.pf ppf "%s:%s" c.name (Value.ty_name c.ty)))
    (columns t)
