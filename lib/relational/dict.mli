(** Dictionary encoding of cell values into dense integer codes shared
    across relations.

    Codes replicate {!Value.eq} (join equality): two values receive the
    same code iff they join-match, so signature computation over encoded
    rows is integer comparison.  NULL and Float NaN never join-match
    anything (themselves included) and are never interned — they encode as
    {!no_code}, a negative sentinel no real code ever equals. *)

type t

(** The sentinel code of NULL/NaN cells; negative, distinct from every
    interned code. *)
val no_code : int

val create : ?size:int -> unit -> t

(** Number of distinct interned values. *)
val size : t -> int

(** Intern [v], allocating the next dense code on first sight;
    [no_code] for NULL/NaN. *)
val code : t -> Value.t -> int

(** Like {!code} but read-only: [no_code] for values never interned. *)
val find : t -> Value.t -> int

(** Can [v] carry a code, i.e. is it ever join-equal to anything? *)
val codable : Value.t -> bool

(** Code vector of one row, in column order. *)
val encode_row : t -> Tuple.t -> int array

(** Intern a churn batch: the code vectors of the delta's {e added}
    rows, in batch order, minting dense codes for never-seen cells.
    Removed rows release nothing — codes are never recycled, so
    pre-delta and post-delta signatures stay mutually comparable. *)
val intern_delta : t -> Delta.t -> int array array

(** One streaming pass over [rel] in row order: [f i codes] receives
    the code vector of row [i].  The buffer is reused between rows —
    callers must copy it to retain it.  Interns values in row-major
    first-sight order on every backend (on a paged backend with coded
    access, via a translation table over the store's value dictionary
    instead of re-hashing each cell), so the resulting shared code
    space is identical whichever backend the relation lives on —
    the byte-identity contract the universe builder relies on. *)
val iter_encoded : t -> Relation.t -> (int -> int array -> unit) -> unit

(** Row-major encoding of a whole relation:
    [(encode_rows d r).(i).(k)] is the code of row [i], column [k].
    Materializes {!iter_encoded}. *)
val encode_rows : t -> Relation.t -> int array array

(** Single-column encoding, one code per row.  Raises [Invalid_argument]
    on an out-of-range column. *)
val encode_column : t -> Relation.t -> int -> int array
