(** Dictionary encoding of cell values into dense integer codes shared
    across relations.

    Codes replicate {!Value.eq} (join equality): two values receive the
    same code iff they join-match, so signature computation over encoded
    rows is integer comparison.  NULL and Float NaN never join-match
    anything (themselves included) and are never interned — they encode as
    {!no_code}, a negative sentinel no real code ever equals. *)

type t

(** The sentinel code of NULL/NaN cells; negative, distinct from every
    interned code. *)
val no_code : int

val create : ?size:int -> unit -> t

(** Number of distinct interned values. *)
val size : t -> int

(** Intern [v], allocating the next dense code on first sight;
    [no_code] for NULL/NaN. *)
val code : t -> Value.t -> int

(** Like {!code} but read-only: [no_code] for values never interned. *)
val find : t -> Value.t -> int

(** Can [v] carry a code, i.e. is it ever join-equal to anything? *)
val codable : Value.t -> bool

(** Code vector of one row, in column order. *)
val encode_row : t -> Tuple.t -> int array

(** Row-major encoding of a whole relation:
    [(encode_rows d r).(i).(k)] is the code of row [i], column [k]. *)
val encode_rows : t -> Relation.t -> int array array

(** Single-column encoding, one code per row.  Raises [Invalid_argument]
    on an out-of-range column. *)
val encode_column : t -> Relation.t -> int -> int array
