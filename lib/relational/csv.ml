(* Minimal RFC-4180-style CSV reader/writer.

   Supports quoted fields with embedded separators, quotes ("" escape) and
   newlines.  Used by the CLI to load the two input relations and by the
   generators to persist datasets. *)

let split_record ~sep line_stream =
  (* Parses one logical record (which may span physical lines when a quoted
     field contains a newline) from a function producing physical lines. *)
  match line_stream () with
  | None -> None
  | Some first ->
      let fields = ref [] in
      let buf = Buffer.create 32 in
      let flush_field () =
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf
      in
      let rec scan line i in_quotes =
        if i >= String.length line then
          if in_quotes then (
            (* Quoted newline: pull the next physical line. *)
            match line_stream () with
            | None -> failwith "Csv: unterminated quoted field"
            | Some next ->
                Buffer.add_char buf '\n';
                scan next 0 true)
          else flush_field ()
        else
          let c = line.[i] in
          if in_quotes then
            if c = '"' then
              if i + 1 < String.length line && line.[i + 1] = '"' then begin
                Buffer.add_char buf '"';
                scan line (i + 2) true
              end
              else scan line (i + 1) false
            else begin
              Buffer.add_char buf c;
              scan line (i + 1) true
            end
          else if c = '"' && Buffer.length buf = 0 then scan line (i + 1) true
          else if Char.equal c sep then begin
            flush_field ();
            scan line (i + 1) false
          end
          else begin
            Buffer.add_char buf c;
            scan line (i + 1) false
          end
      in
      scan first 0 false;
      Some (List.rev !fields)

let parse_string ?(sep = ',') text =
  let lines = String.split_on_char '\n' text in
  (* Drop a trailing empty line from a final newline. *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let lines = List.map (fun l ->
      (* Tolerate CRLF input. *)
      let n = String.length l in
      if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
      lines
  in
  let remaining = ref lines in
  let next_line () =
    match !remaining with
    | [] -> None
    | l :: rest ->
        remaining := rest;
        Some l
  in
  let rec collect acc =
    match split_record ~sep next_line with
    | None -> List.rev acc
    | Some r -> collect (r :: acc)
  in
  collect []

let quote_field ~sep s =
  let needs =
    String.exists
      (fun c -> Char.equal c sep || c = '"' || c = '\n' || c = '\r')
      s
  in
  if not needs then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_string ?(sep = ',') records =
  let buf = Buffer.create 1024 in
  List.iter
    (fun record ->
      Buffer.add_string buf
        (String.concat (String.make 1 sep) (List.map (quote_field ~sep) record));
      Buffer.add_char buf '\n')
    records;
  Buffer.contents buf

(* Stream records out of a channel: physical lines via [input_line]
   (CRLF-tolerant), logical records via [split_record].  Nothing is
   ever materialized beyond one record — the old reader slurped the
   whole file into a string and split it, which defeated out-of-core
   loading. *)
let fold_channel_records ~sep ic f acc =
  let next_line () =
    match In_channel.input_line ic with
    | None -> None
    | Some l ->
        let n = String.length l in
        if n > 0 && l.[n - 1] = '\r' then Some (String.sub l 0 (n - 1))
        else Some l
  in
  let rec go acc =
    match split_record ~sep next_line with
    | None -> acc
    | Some r -> go (f acc r)
  in
  go acc

let fold_file_records ~sep path f acc =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> fold_channel_records ~sep ic f acc)

let read_file ?(sep = ',') path =
  List.rev (fold_file_records ~sep path (fun acc r -> r :: acc) [])

let write_file ?sep path records =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?sep records))

(* Loading a relation: first record is the header; column types are inferred
   from the data unless a schema is supplied. *)
let relation_of_records ~name ?schema records =
  match records with
  | [] -> invalid_arg "Csv: empty input (no header)"
  | header :: data ->
      let ncols = List.length header in
      (* Records become arrays up front: the arity check is then O(1) per
         record and column slicing for type inference is O(rows) per
         column instead of List.nth's O(rows * ncols). *)
      let data = List.map Array.of_list data in
      List.iteri
        (fun i r ->
          if not (Int.equal (Array.length r) ncols) then
            invalid_arg
              (Printf.sprintf "Csv: record %d has %d fields, header has %d"
                 (i + 1) (Array.length r) ncols))
        data;
      let schema =
        match schema with
        | Some s -> s
        | None ->
            let col_cells i = List.map (fun r -> r.(i)) data in
            Schema.of_columns
              (List.mapi
                 (fun i h -> Schema.column h (Value.infer_ty (col_cells i)))
                 header)
      in
      let parse_row r : Tuple.t =
        Array.mapi
          (fun i cell ->
            let ty = Schema.ty_at schema i in
            match Value.parse ty cell with
            | Some v -> v
            | None ->
                invalid_arg
                  (Printf.sprintf "Csv: cannot parse %S as %s" cell
                     (Value.ty_name ty)))
          r
      in
      Relation.of_list ~name ~schema (List.map parse_row data)

(* Streaming import: two bounded-memory passes over the file.

   Pass 1 reads the header, checks every record against it (same error
   message and numbering as [relation_of_records]) and — when no
   schema is supplied — folds the per-column type-capability flags
   that replicate [Value.infer_ty] ("can every cell parse as TInt?
   else TFloat? else TBool? else TString") without a column slice.
   Pass 2 re-streams the file, parses each record under the now-known
   schema and hands the tuple to the sink.  Peak memory is one record
   plus whatever the sink keeps — a heap-file sink keeps nothing. *)
let load_into ?(sep = ',') ?schema path ~init ~push =
  let header = ref None in
  let n_data = ref 0 in
  let caps = ref [||] (* per column: can_int, can_float, can_bool *) in
  let see_header h =
    header := Some (Array.of_list h);
    caps := Array.map (fun _ -> (true, true, true)) (Array.of_list h)
  in
  let check_arity r =
    match !header with
    | None -> assert false
    | Some h ->
        incr n_data;
        if not (Int.equal (Array.length r) (Array.length h)) then
          invalid_arg
            (Printf.sprintf "Csv: record %d has %d fields, header has %d"
               !n_data (Array.length r) (Array.length h))
  in
  fold_file_records ~sep path
    (fun () record ->
      match !header with
      | None -> see_header record
      | Some _ ->
          let r = Array.of_list record in
          check_arity r;
          if Option.is_none schema then
            Array.iteri
              (fun i cell ->
                let can_i, can_f, can_b = !caps.(i) in
                (* skip the three parses once the column is TString *)
                if can_i || can_f || can_b then
                  !caps.(i) <-
                    ( (can_i && Value.parse Value.TInt cell <> None),
                      (can_f && Value.parse Value.TFloat cell <> None),
                      (can_b && Value.parse Value.TBool cell <> None) ))
              r)
    ();
  let header =
    match !header with
    | None -> invalid_arg "Csv: empty input (no header)"
    | Some h -> h
  in
  let schema =
    match schema with
    | Some s -> s
    | None ->
        Schema.of_columns
          (List.mapi
             (fun i h ->
               let can_i, can_f, can_b = !caps.(i) in
               let ty =
                 if can_i then Value.TInt
                 else if can_f then Value.TFloat
                 else if can_b then Value.TBool
                 else Value.TString
               in
               Schema.column h ty)
             (Array.to_list header))
  in
  let sink = init schema in
  let parse_cell i cell =
    let ty = Schema.ty_at schema i in
    match Value.parse ty cell with
    | Some v -> v
    | None ->
        invalid_arg
          (Printf.sprintf "Csv: cannot parse %S as %s" cell (Value.ty_name ty))
  in
  let first = ref true in
  fold_file_records ~sep path
    (fun () record ->
      if !first then first := false
      else push sink (Array.of_list record |> Array.mapi parse_cell))
    ();
  (sink, schema)

let load_relation ?sep ~name ?schema path =
  let vec, schema =
    load_into ?sep ?schema path
      ~init:(fun _ -> Jqi_util.Vec.create ())
      ~push:Jqi_util.Vec.push
  in
  Relation.create ~name ~schema (Jqi_util.Vec.to_array vec)

let records_of_relation rel =
  Schema.names (Relation.schema rel)
  :: List.map
       (fun row -> List.map Value.to_string (Tuple.to_list row))
       (Relation.to_list rel)

let save_relation ?sep path rel = write_file ?sep path (records_of_relation rel)
