(* Minimal RFC-4180-style CSV reader/writer.

   Supports quoted fields with embedded separators, quotes ("" escape) and
   newlines.  Used by the CLI to load the two input relations and by the
   generators to persist datasets. *)

let split_record ~sep line_stream =
  (* Parses one logical record (which may span physical lines when a quoted
     field contains a newline) from a function producing physical lines. *)
  match line_stream () with
  | None -> None
  | Some first ->
      let fields = ref [] in
      let buf = Buffer.create 32 in
      let flush_field () =
        fields := Buffer.contents buf :: !fields;
        Buffer.clear buf
      in
      let rec scan line i in_quotes =
        if i >= String.length line then
          if in_quotes then (
            (* Quoted newline: pull the next physical line. *)
            match line_stream () with
            | None -> failwith "Csv: unterminated quoted field"
            | Some next ->
                Buffer.add_char buf '\n';
                scan next 0 true)
          else flush_field ()
        else
          let c = line.[i] in
          if in_quotes then
            if c = '"' then
              if i + 1 < String.length line && line.[i + 1] = '"' then begin
                Buffer.add_char buf '"';
                scan line (i + 2) true
              end
              else scan line (i + 1) false
            else begin
              Buffer.add_char buf c;
              scan line (i + 1) true
            end
          else if c = '"' && Buffer.length buf = 0 then scan line (i + 1) true
          else if Char.equal c sep then begin
            flush_field ();
            scan line (i + 1) false
          end
          else begin
            Buffer.add_char buf c;
            scan line (i + 1) false
          end
      in
      scan first 0 false;
      Some (List.rev !fields)

let parse_string ?(sep = ',') text =
  let lines = String.split_on_char '\n' text in
  (* Drop a trailing empty line from a final newline. *)
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  let lines = List.map (fun l ->
      (* Tolerate CRLF input. *)
      let n = String.length l in
      if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
      lines
  in
  let remaining = ref lines in
  let next_line () =
    match !remaining with
    | [] -> None
    | l :: rest ->
        remaining := rest;
        Some l
  in
  let rec collect acc =
    match split_record ~sep next_line with
    | None -> List.rev acc
    | Some r -> collect (r :: acc)
  in
  collect []

let quote_field ~sep s =
  let needs =
    String.exists
      (fun c -> Char.equal c sep || c = '"' || c = '\n' || c = '\r')
      s
  in
  if not needs then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_string ?(sep = ',') records =
  let buf = Buffer.create 1024 in
  List.iter
    (fun record ->
      Buffer.add_string buf
        (String.concat (String.make 1 sep) (List.map (quote_field ~sep) record));
      Buffer.add_char buf '\n')
    records;
  Buffer.contents buf

let read_file ?sep path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let text = really_input_string ic n in
      parse_string ?sep text)

let write_file ?sep path records =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?sep records))

(* Loading a relation: first record is the header; column types are inferred
   from the data unless a schema is supplied. *)
let relation_of_records ~name ?schema records =
  match records with
  | [] -> invalid_arg "Csv: empty input (no header)"
  | header :: data ->
      let ncols = List.length header in
      (* Records become arrays up front: the arity check is then O(1) per
         record and column slicing for type inference is O(rows) per
         column instead of List.nth's O(rows * ncols). *)
      let data = List.map Array.of_list data in
      List.iteri
        (fun i r ->
          if not (Int.equal (Array.length r) ncols) then
            invalid_arg
              (Printf.sprintf "Csv: record %d has %d fields, header has %d"
                 (i + 1) (Array.length r) ncols))
        data;
      let schema =
        match schema with
        | Some s -> s
        | None ->
            let col_cells i = List.map (fun r -> r.(i)) data in
            Schema.of_columns
              (List.mapi
                 (fun i h -> Schema.column h (Value.infer_ty (col_cells i)))
                 header)
      in
      let parse_row r : Tuple.t =
        Array.mapi
          (fun i cell ->
            let ty = Schema.ty_at schema i in
            match Value.parse ty cell with
            | Some v -> v
            | None ->
                invalid_arg
                  (Printf.sprintf "Csv: cannot parse %S as %s" cell
                     (Value.ty_name ty)))
          r
      in
      Relation.of_list ~name ~schema (List.map parse_row data)

let load_relation ?sep ~name ?schema path =
  relation_of_records ~name ?schema (read_file ?sep path)

let records_of_relation rel =
  Schema.names (Relation.schema rel)
  :: List.map
       (fun row -> List.map Value.to_string (Tuple.to_list row))
       (Relation.to_list rel)

let save_relation ?sep path rel = write_file ?sep path (records_of_relation rel)
