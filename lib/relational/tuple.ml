(* Tuples are immutable-by-convention value arrays, positionally matched to a
   schema.  They deliberately do not carry their schema: the Cartesian
   product of the inference engine manipulates millions of tuples and the
   schema is shared context. *)

type t = Value.t array

let of_list = Array.of_list
let to_list = Array.to_list
let arity = Array.length
let get (t : t) i = t.(i)

let equal (a : t) (b : t) =
  Int.equal (Array.length a) (Array.length b)
  &&
  let rec go i =
    i >= Array.length a
    || (Value.compare a.(i) b.(i) = 0 && go (i + 1))
  in
  go 0

let compare (a : t) (b : t) =
  let la = Array.length a and lb = Array.length b in
  let c = Int.compare la lb in
  if c <> 0 then c
  else
    let rec go i =
      if i >= la then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let hash (t : t) =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t

let concat (a : t) (b : t) : t = Array.append a b

let project (t : t) idxs : t = Array.of_list (List.map (fun i -> t.(i)) idxs)

let pp ppf (t : t) =
  Fmt.pf ppf "(%a)" Fmt.(array ~sep:(any ", ") Value.pp) t

let to_string t = Fmt.str "%a" pp t

(* Convenience constructors for tests and generators. *)
let ints l : t = of_list (List.map (fun i -> Value.Int i) l)
let strs l : t = of_list (List.map (fun s -> Value.Str s) l)
