(* Dictionary encoding of cell values into dense integer codes.

   The universe constructor compares every R-cell against every P-cell
   under [Value.eq]; interning both relations' cells into one shared code
   space turns those comparisons into integer equality on pre-encoded
   arrays — no tag dispatch, no boxed payload reads in the inner loop.

   The code space mirrors [Value.eq] exactly:

   - two values share a code iff [Value.eq] holds between them, which the
     table guarantees by hashing with [Value.hash] and resolving with
     [Value.eq] (values of different types never match, so they never
     share a code even on hash collisions);
   - NULL and Float NaN are never equal to anything, themselves included,
     so they get [no_code] (which is negative and never equals a real
     code).  A NaN key must not enter the table at all: [Value.eq] on NaN
     is irreflexive, so an inserted NaN could never be found again and
     every occurrence would leak a fresh code.

   [no_code] slots still take part in row-profile equality (two rows that
   both hold NULL at a column behave identically against every partner
   row), which is exactly what the profile quotient needs. *)

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.eq
  let hash = Value.hash
end)

type t = { table : int VH.t; mutable next : int }

let no_code = -1

let create ?(size = 256) () = { table = VH.create (max 16 size); next = 0 }

let size t = t.next

let codable v =
  match v with
  | Value.Null -> false
  | Value.Float f -> not (Float.is_nan f)
  | Value.Bool _ | Value.Int _ | Value.Str _ -> true

let code t v =
  if not (codable v) then no_code
  else
    match VH.find_opt t.table v with
    | Some c -> c
    | None ->
        let c = t.next in
        t.next <- c + 1;
        VH.add t.table v c;
        c

let find t v =
  if not (codable v) then no_code
  else match VH.find_opt t.table v with Some c -> c | None -> no_code

let encode_row t row = Array.init (Tuple.arity row) (fun i -> code t (Tuple.get row i))

let encode_rows t rel = Array.map (encode_row t) (Relation.rows rel)

let encode_column t rel col =
  if col < 0 || col >= Relation.arity rel then
    invalid_arg (Printf.sprintf "Dict.encode_column: no column %d" col);
  Array.map (fun row -> code t (Tuple.get row col)) (Relation.rows rel)
