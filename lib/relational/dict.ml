(* Dictionary encoding of cell values into dense integer codes.

   The universe constructor compares every R-cell against every P-cell
   under [Value.eq]; interning both relations' cells into one shared code
   space turns those comparisons into integer equality on pre-encoded
   arrays — no tag dispatch, no boxed payload reads in the inner loop.

   The code space mirrors [Value.eq] exactly:

   - two values share a code iff [Value.eq] holds between them, which the
     table guarantees by hashing with [Value.hash] and resolving with
     [Value.eq] (values of different types never match, so they never
     share a code even on hash collisions);
   - NULL and Float NaN are never equal to anything, themselves included,
     so they get [no_code] (which is negative and never equals a real
     code).  A NaN key must not enter the table at all: [Value.eq] on NaN
     is irreflexive, so an inserted NaN could never be found again and
     every occurrence would leak a fresh code.

   [no_code] slots still take part in row-profile equality (two rows that
   both hold NULL at a column behave identically against every partner
   row), which is exactly what the profile quotient needs. *)

module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.eq
  let hash = Value.hash
end)

type t = { table : int VH.t; mutable next : int }

let no_code = -1

let create ?(size = 256) () = { table = VH.create (max 16 size); next = 0 }

let size t = t.next

let codable v =
  match v with
  | Value.Null -> false
  | Value.Float f -> not (Float.is_nan f)
  | Value.Bool _ | Value.Int _ | Value.Str _ -> true

let code t v =
  if not (codable v) then no_code
  else
    match VH.find_opt t.table v with
    | Some c -> c
    | None ->
        let c = t.next in
        t.next <- c + 1;
        VH.add t.table v c;
        c

let find t v =
  if not (codable v) then no_code
  else match VH.find_opt t.table v with Some c -> c | None -> no_code

let encode_row t row = Array.init (Tuple.arity row) (fun i -> code t (Tuple.get row i))

(* Churn interning: only the *added* rows can carry unseen values, and a
   first-sight cell mints the next dense code exactly as a fresh build
   would.  Removed rows never surrender their codes — codes are minted
   forever, so every signature computed before the delta stays
   comparable with every signature computed after it. *)
let intern_delta t (d : Delta.t) = Array.map (encode_row t) d.Delta.adds

(* Streaming row-major encoding.  The in-memory arm interns cell by
   cell, exactly like [encode_row] over [Relation.rows] used to.  The
   paged arm with coded access avoids re-hashing every cell: the
   store's codes are dense in first-occurrence order, which IS
   row-major first-sight order, so interning the store's value list in
   code order performs the same sequence of [code] calls as a
   row-major scan would — the shared dictionary ends up bit-identical,
   and each row then translates through a plain array lookup. *)
let iter_encoded t rel f =
  match Relation.backend rel with
  | Relation.Backend.Paged
      { Relation.Backend.coded = Some c; n_rows = _; get_row = _;
        iter_rows = _; describe = _; apply_delta = _ } ->
      let translate =
        Array.init c.Relation.Backend.distinct (fun fc ->
            code t (c.Relation.Backend.value fc))
      in
      c.Relation.Backend.iter_codes (fun i codes ->
          for k = 0 to Array.length codes - 1 do
            let fc = codes.(k) in
            codes.(k) <- (if fc < 0 then no_code else translate.(fc))
          done;
          f i codes)
  | Relation.Backend.Mem _
  | Relation.Backend.Paged
      { Relation.Backend.coded = None; n_rows = _; get_row = _;
        iter_rows = _; describe = _; apply_delta = _ } ->
      let buf = Array.make (Relation.arity rel) no_code in
      Relation.iteri
        (fun i row ->
          for k = 0 to Array.length buf - 1 do
            buf.(k) <- code t (Tuple.get row k)
          done;
          f i buf)
        rel

let encode_rows t rel =
  let out = Array.make (Relation.cardinality rel) [||] in
  iter_encoded t rel (fun i codes -> out.(i) <- Array.copy codes);
  out

let encode_column t rel col =
  if col < 0 || col >= Relation.arity rel then
    invalid_arg (Printf.sprintf "Dict.encode_column: no column %d" col);
  Array.map (fun row -> code t (Tuple.get row col)) (Relation.rows rel)
