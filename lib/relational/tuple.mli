(** Tuples: immutable-by-convention value arrays, positionally matched to
    a schema (not carried, for compactness at Cartesian-product scale). *)

type t = Value.t array

val of_list : Value.t list -> t
val to_list : t -> Value.t list
val arity : t -> int
val get : t -> int -> Value.t

(** Structural equality via [Value.compare] (NULL cells are equal as
    cells, though they never join). *)
val equal : t -> t -> bool

val compare : t -> t -> int
val hash : t -> int
val concat : t -> t -> t
val project : t -> int list -> t
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** All-int and all-string constructors for tests and generators. *)
val ints : int list -> t

val strs : string list -> t
