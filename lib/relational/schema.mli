(** Relation schemas: ordered, named, typed columns. *)

type column = { name : string; ty : Value.ty }
type t

val column : string -> Value.ty -> column

(** Raises [Invalid_argument] on duplicate column names. *)
val of_columns : column list -> t

(** All columns share [ty] (default string). *)
val of_names : ?ty:Value.ty -> string list -> t

val arity : t -> int
val columns : t -> column list
val column_at : t -> int -> column
val name_at : t -> int -> string
val ty_at : t -> int -> Value.ty
val names : t -> string list
val index_of : t -> string -> int option

(** Raises [Invalid_argument] on unknown names. *)
val index_of_exn : t -> string -> int

val mem : t -> string -> bool
val equal : t -> t -> bool

(** Concatenation for Cartesian products; clashing names are qualified
    with the given prefixes so attribute sets stay disjoint (the paper's
    standing assumption). *)
val product : ?left_prefix:string -> ?right_prefix:string -> t -> t -> t

val project : t -> int list -> t
val rename : t -> string -> string -> t
val pp : Format.formatter -> t -> unit
