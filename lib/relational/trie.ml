(* Sorted-array tries.  The whole structure is two parallel arrays —
   distinct key vectors in lexicographic order, and the row ids behind
   each — so "the subtrie under the current key" is always a contiguous
   index range and every iterator move is a binary search over one
   column of the key matrix.  This is the standard simple backing store
   for Leapfrog Triejoin: no nodes, no pointers, cache-friendly scans. *)

type t = {
  depth : int;
  keys : int array array;  (* distinct, lexicographically sorted *)
  rows : int array array;  (* rows.(i): ascending row ids of keys.(i) *)
}

let compare_keys (a : int array) (b : int array) =
  let n = Array.length a in
  let rec go i =
    if i >= n then 0
    else
      let c = Int.compare a.(i) b.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let create ~depth entries =
  if depth < 0 then invalid_arg "Trie.create: negative depth";
  List.iter
    (fun (key, _) ->
      if Array.length key <> depth then
        invalid_arg
          (Printf.sprintf "Trie.create: key of length %d in a depth-%d trie"
             (Array.length key) depth))
    entries;
  let sorted =
    List.sort
      (fun (k1, r1) (k2, r2) ->
        let c = compare_keys k1 k2 in
        if c <> 0 then c else Int.compare r1 r2)
      entries
  in
  (* Group runs of equal keys; rows were prepended so reverse restores
     ascending order. *)
  let groups =
    List.fold_left
      (fun acc (key, row) ->
        match acc with
        | (k, rs) :: tl when compare_keys k key = 0 -> (k, row :: rs) :: tl
        | [] | (_, _) :: _ -> (key, [ row ]) :: acc)
      [] sorted
  in
  let n = List.length groups in
  let keys = Array.make n [||] and rows = Array.make n [||] in
  List.iteri
    (fun idx (k, rs) ->
      let i = n - 1 - idx in
      keys.(i) <- Array.copy k;
      rows.(i) <- Array.of_list (List.rev rs))
    groups;
  { depth; keys; rows }

let depth t = t.depth
let size t = Array.length t.keys
let keys t = Array.map Array.copy t.keys

(* ----------------------------- iterators -------------------------- *)

(* One (lo, hi, pos) frame per level.  [pos] always sits on the *first*
   index of the current key value (next/seek land there by construction),
   so the current key's subtrie is [pos, upper-bound-of-key). *)
type iter = {
  trie : t;
  mutable ilevel : int;  (* -1 at the root *)
  lo : int array;
  hi : int array;
  pos : int array;
}

let iter trie =
  let d = max 1 trie.depth in
  {
    trie;
    ilevel = -1;
    lo = Array.make d 0;
    hi = Array.make d 0;
    pos = Array.make d 0;
  }

let level it = it.ilevel

let at_end it =
  if it.ilevel < 0 then invalid_arg "Trie.at_end: iterator at the root";
  it.pos.(it.ilevel) >= it.hi.(it.ilevel)

let key it =
  if it.ilevel < 0 then invalid_arg "Trie.key: iterator at the root";
  if it.pos.(it.ilevel) >= it.hi.(it.ilevel) then
    invalid_arg "Trie.key: iterator at the end";
  it.trie.keys.(it.pos.(it.ilevel)).(it.ilevel)

(* First index in [pos, hi) whose level-[l] key exceeds [v]. *)
let upper it l v =
  let lo = ref it.pos.(l) and hi = ref it.hi.(l) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if it.trie.keys.(mid).(l) <= v then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index in [pos, hi) whose level-[l] key is at least [v]. *)
let lower it l v =
  let lo = ref it.pos.(l) and hi = ref it.hi.(l) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if it.trie.keys.(mid).(l) < v then lo := mid + 1 else hi := mid
  done;
  !lo

let open_ it =
  if it.ilevel + 1 >= it.trie.depth then
    invalid_arg "Trie.open_: already at the leaf level";
  if it.ilevel < 0 then begin
    it.ilevel <- 0;
    it.lo.(0) <- 0;
    it.hi.(0) <- Array.length it.trie.keys;
    it.pos.(0) <- 0
  end
  else begin
    let l = it.ilevel in
    if it.pos.(l) >= it.hi.(l) then invalid_arg "Trie.open_: iterator at the end";
    let stop = upper it l it.trie.keys.(it.pos.(l)).(l) in
    it.ilevel <- l + 1;
    it.lo.(l + 1) <- it.pos.(l);
    it.hi.(l + 1) <- stop;
    it.pos.(l + 1) <- it.pos.(l)
  end

let up it =
  if it.ilevel < 0 then invalid_arg "Trie.up: iterator at the root";
  it.ilevel <- it.ilevel - 1

let next it =
  if it.ilevel < 0 then invalid_arg "Trie.next: iterator at the root";
  let l = it.ilevel in
  if it.pos.(l) >= it.hi.(l) then invalid_arg "Trie.next: iterator at the end";
  it.pos.(l) <- upper it l it.trie.keys.(it.pos.(l)).(l)

let seek it v =
  if it.ilevel < 0 then invalid_arg "Trie.seek: iterator at the root";
  let l = it.ilevel in
  if it.pos.(l) >= it.hi.(l) then invalid_arg "Trie.seek: iterator at the end";
  it.pos.(l) <- lower it l v

let rows it =
  if it.ilevel <> it.trie.depth - 1 || it.ilevel < 0 then
    invalid_arg "Trie.rows: iterator not at the leaf level";
  if it.pos.(it.ilevel) >= it.hi.(it.ilevel) then
    invalid_arg "Trie.rows: iterator at the end";
  it.trie.rows.(it.pos.(it.ilevel))
