(** Typed cell values with SQL-style NULL.

    Join equality ([eq]) is what builds T-signatures: NULL never matches
    anything (including NULL), and values of different types never match.
    Sorting and map keys use the separate total order [compare], under
    which NULLs are equal and sort first. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string

type ty = TBool | TInt | TFloat | TString

(** [None] for NULL. *)
val type_of : t -> ty option

val ty_name : ty -> string
val ty_equal : ty -> ty -> bool

(** Join equality: NULL ≠ everything; no cross-type coercion. *)
val eq : t -> t -> bool

(** Total order for sorting and keys (distinct from [eq] on NULLs). *)
val compare : t -> t -> int

(** Structural equality under [compare]'s total order — NULL equals NULL.
    For container keys and deduplication, never for join predicates. *)
val equal : t -> t -> bool

val hash : t -> int
val is_null : t -> bool

(** CSV cell rendering; NULL prints as the empty string. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit

(** Parse a raw cell under a target type; the empty string is NULL;
    [None] on malformed input. *)
val parse : ty -> string -> t option

(** Narrowest type able to represent all sample cells
    (int ⊏ float ⊏ bool ⊏ string, in trial order). *)
val infer_ty : string list -> ty
