(** Sorted trie indexes over dictionary codes, with the iterator
    interface Leapfrog Triejoin drives (Veldhuizen, ICDT 2014).

    A trie of depth [d] stores a set of length-[d] integer key vectors
    (typically [Dict] codes of a relation's join columns, permuted to a
    variable ordering), each carrying the row ids that produced it.  The
    physical layout is a lexicographically sorted array of distinct key
    vectors; every iterator level is a [(lo, hi)] slice of that array and
    all movement ([next], [seek]) is binary search, so a trie is built in
    O(n log n) and never materializes internal nodes.

    Iterators are deliberately low-level and mutable — one allocation per
    join, zero per movement — and enforce the triejoin discipline by
    raising [Invalid_argument] on misuse (reading a key at the root or
    past the end, opening below the leaf level).  The laws the interface
    obeys (seek is monotone and lands on the least key ≥ target; open/up
    are inverse level moves; a full depth-first walk re-emits the sorted
    key set) are pinned by the QCheck suite in [test/test_trie.ml]. *)

type t

(** [create ~depth entries] builds a trie from [(key, row)] pairs.  Keys
    must all have length [depth]; equal keys merge, accumulating their
    row ids.  Raises [Invalid_argument] on a key of the wrong length or a
    negative [depth]. *)
val create : depth:int -> (int array * int) list -> t

val depth : t -> int

(** Number of distinct key vectors. *)
val size : t -> int

(** The distinct key vectors in lexicographic order (a fresh copy). *)
val keys : t -> int array array

(** {1 Iterators} *)

type iter

(** A fresh iterator positioned at the root (level [-1]). *)
val iter : t -> iter

(** Current level: [-1] at the root, [0 .. depth-1] when open. *)
val level : iter -> int

(** Descend to the first key of the next level, within the current key's
    subtrie.  Raises [Invalid_argument] at the leaf level, past the end,
    or on a depth-0 trie. *)
val open_ : iter -> unit

(** Ascend one level (the parent position is restored).  Raises
    [Invalid_argument] at the root. *)
val up : iter -> unit

(** No key left at the current level.  Raises [Invalid_argument] at the
    root. *)
val at_end : iter -> bool

(** The current key.  Raises [Invalid_argument] at the root or past the
    end. *)
val key : iter -> int

(** Advance to the next distinct key at this level (possibly to the
    end).  Raises [Invalid_argument] at the root or past the end. *)
val next : iter -> unit

(** [seek it v] moves to the least key ≥ [v] at this level, or to the
    end.  Never moves backwards: seeking below the current key is a
    no-op.  Raises [Invalid_argument] at the root or past the end. *)
val seek : iter -> int -> unit

(** Row ids of the current full key vector, ascending.  Only valid at
    the leaf level ([depth - 1]) when not at the end; raises
    [Invalid_argument] otherwise.  The returned array is shared — do not
    mutate. *)
val rows : iter -> int array
