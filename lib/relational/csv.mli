(** RFC-4180-style CSV: quoted fields (with embedded separators, escaped
    quotes and newlines), relation loading with type inference, and
    persistence for the generators. *)

(** Parse raw records.  Tolerates CRLF; a trailing newline does not create
    an empty record. *)
val parse_string : ?sep:char -> string -> string list list

val to_string : ?sep:char -> string list list -> string
val read_file : ?sep:char -> string -> string list list
val write_file : ?sep:char -> string -> string list list -> unit

(** First record is the header.  Without [schema], column types are
    inferred from the data ([Value.infer_ty]).  Raises [Invalid_argument]
    on empty input, ragged records, or unparseable cells. *)
val relation_of_records :
  name:string -> ?schema:Schema.t -> string list list -> Relation.t

(** Streaming import into an arbitrary sink (e.g. a heap file): two
    bounded-memory passes over [path].  Pass 1 checks raggedness and —
    unless [schema] is given — infers column types exactly as
    {!Value.infer_ty} would; then [init] receives the schema and
    builds the sink, and pass 2 re-streams the file calling
    [push sink tuple] once per data row, in file order.  Never
    materializes the row list.  Same [Invalid_argument] errors as
    {!relation_of_records}. *)
val load_into :
  ?sep:char ->
  ?schema:Schema.t ->
  string ->
  init:(Schema.t -> 'sink) ->
  push:('sink -> Tuple.t -> unit) ->
  'sink * Schema.t

val load_relation :
  ?sep:char -> name:string -> ?schema:Schema.t -> string -> Relation.t

val records_of_relation : Relation.t -> string list list
val save_relation : ?sep:char -> string -> Relation.t -> unit
