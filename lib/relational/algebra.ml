(* Relational algebra over in-memory relations.

   Only what the paper's setting needs, but implemented with set semantics
   where the algebra requires it.  All operators return fresh relations and
   never mutate their inputs. *)

let select rel p =
  Relation.with_rows rel
    (Array.of_list (List.filter p (Relation.to_list rel)))

(* Projection onto columns given by name, Π_cols(rel).  Duplicates are kept;
   compose with [distinct] for set semantics. *)
let project rel cols =
  let schema = Relation.schema rel in
  let idxs = List.map (Schema.index_of_exn schema) cols in
  Relation.create
    ~name:(Relation.name rel)
    ~schema:(Schema.project schema idxs)
    (Array.map (fun r -> Tuple.project r idxs) (Relation.rows rel))

let rename rel old_name new_name =
  Relation.create ~name:(Relation.name rel)
    ~schema:(Schema.rename (Relation.schema rel) old_name new_name)
    (Relation.rows rel)

let distinct rel =
  let seen = Hashtbl.create (Relation.cardinality rel) in
  let keep = ref [] in
  Relation.iter
    (fun row ->
      let h = Tuple.hash row in
      let bucket = Option.value ~default:[] (Hashtbl.find_opt seen h) in
      if not (List.exists (Tuple.equal row) bucket) then begin
        Hashtbl.replace seen h (row :: bucket);
        keep := row :: !keep
      end)
    rel;
  Relation.with_rows rel (Array.of_list (List.rev !keep))

let check_union_compatible a b =
  if not (Schema.equal (Relation.schema a) (Relation.schema b)) then
    invalid_arg "Algebra: union-incompatible schemas"

let union a b =
  check_union_compatible a b;
  distinct
    (Relation.create
       ~name:(Relation.name a)
       ~schema:(Relation.schema a)
       (Array.append (Relation.rows a) (Relation.rows b)))

let inter a b =
  check_union_compatible a b;
  let sb = Relation.tuple_set b in
  distinct
    (select a (fun r -> Relation.Tuple_set.mem r sb))

let difference a b =
  check_union_compatible a b;
  let sb = Relation.tuple_set b in
  distinct
    (select a (fun r -> not (Relation.Tuple_set.mem r sb)))

(* Cartesian product R × P.  The result schema qualifies clashing column
   names with the relation names. *)
let product a b =
  let schema =
    Schema.product
      ~left_prefix:(Relation.name a)
      ~right_prefix:(Relation.name b)
      (Relation.schema a) (Relation.schema b)
  in
  let rows_a = Relation.rows a and rows_b = Relation.rows b in
  let out = ref [] in
  for i = Array.length rows_a - 1 downto 0 do
    for j = Array.length rows_b - 1 downto 0 do
      out := Tuple.concat rows_a.(i) rows_b.(j) :: !out
    done
  done;
  Relation.create
    ~name:(Relation.name a ^ "x" ^ Relation.name b)
    ~schema
    (Array.of_list !out)

let sort ?(compare = Tuple.compare) rel =
  let rows = Array.copy (Relation.rows rel) in
  (* [compare] here is the labelled parameter (Tuple.compare by default),
     not Stdlib.compare — the flag is a shadowing false positive. *)
  (Array.sort compare rows [@lint.allow "R1"]);
  Relation.with_rows rel rows

let sort_by rel cols =
  let schema = Relation.schema rel in
  let idxs = List.map (Schema.index_of_exn schema) cols in
  sort
    ~compare:(fun a b ->
      let rec go = function
        | [] -> Tuple.compare a b
        | i :: rest ->
            let c = Value.compare (Tuple.get a i) (Tuple.get b i) in
            if c <> 0 then c else go rest
      in
      go idxs)
    rel

let limit rel n =
  let n = min n (Relation.cardinality rel) in
  Relation.with_rows rel (Array.sub (Relation.rows rel) 0 n)
