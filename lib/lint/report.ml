(* Rendering findings for humans, machines, and GitHub annotations.

   Everything returns a string — the library never writes to stdout
   (its own rule R5), the CLI decides where bytes go. *)

module Json = Jqi_util.Json

let count_by_rule findings =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun (f : Finding.t) ->
      let n = Option.value ~default:0 (Hashtbl.find_opt tbl f.Finding.rule) in
      Hashtbl.replace tbl f.Finding.rule (n + 1))
    findings;
  Hashtbl.fold (fun rule n acc -> (rule, n) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let human ~files ~total ~fresh ~stale =
  let b = Buffer.create 1024 in
  List.iter
    (fun (f : Finding.t) ->
      Buffer.add_string b (Fmt.str "%a@." Finding.pp f);
      if not (String.equal f.Finding.hint "") then
        Buffer.add_string b (Fmt.str "    hint: %s@." f.Finding.hint))
    fresh;
  List.iter
    (fun e ->
      Buffer.add_string
        b
        (Fmt.str "stale baseline entry (ratchet it down): %a@." Baseline.pp_entry e))
    stale;
  let by_rule = count_by_rule fresh in
  let summary =
    if List.is_empty fresh then
      Fmt.str "jqlint: %d files, %d findings, 0 new@." files total
    else
      Fmt.str "jqlint: %d files, %d findings, %d NEW (%s)@." files total
        (List.length fresh)
        (String.concat ", "
           (List.map (fun (r, n) -> Printf.sprintf "%s x%d" r n) by_rule))
  in
  Buffer.add_string b summary;
  Buffer.contents b

(* GitHub workflow commands: one ::error line per fresh finding renders as
   an inline annotation on the PR diff. *)
let github fresh =
  let b = Buffer.create 1024 in
  List.iter
    (fun (f : Finding.t) ->
      Buffer.add_string b
        (Printf.sprintf "::error file=%s,line=%d,col=%d,title=jqlint %s::%s (%s)\n"
           f.Finding.file f.Finding.line (f.Finding.col + 1) f.Finding.rule
           f.Finding.message f.Finding.hint))
    fresh;
  Buffer.contents b

let json ?(wall_ms = 0.) ?analysis ~files ~findings ~fresh ~stale () =
  let base =
    [
      ("files", Json.int files);
      ("wall_ms", Json.Num wall_ms);
      ( "counts",
        Json.Obj
          (List.map (fun (r, n) -> (r, Json.int n)) (count_by_rule findings))
      );
      ("findings", Json.List (List.map Finding.to_json findings));
      ("fresh", Json.List (List.map Finding.to_json fresh));
      ("stale", Json.List (List.map Baseline.entry_to_json stale));
    ]
  in
  let fields =
    match analysis with
    | Some a -> base @ [ ("analysis", a) ]
    | None -> base
  in
  Json.to_string (Json.Obj fields)
