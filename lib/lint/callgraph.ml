(* Per-function summaries for the interprocedural pass.

   For each definition in the [Typed_source] program we run a small
   abstract interpreter over its body tracking the set of locks held:
   [must] (held on every path — used to *satisfy* guard obligations) and
   [may] (held on some path — used to *detect* reentrancy).  Along the
   way we record the events the R9..R12 checkers consume: lock
   acquisitions, guarded-field accesses, blocking operations, effectful
   identifiers (R11), raise sites not caught locally (R12), and every
   call site with the lock set and handler stack in force.

   Critical sections have three spellings here, all primitive to the
   analysis: [Mutex.lock]/[unlock] pairs (tracked linearly),
   [Mutex.protect m f], and the [Shard.with_key]/[with_slot]/[fold]/
   [mapi] family.  Shard entry points are primitive *by head module* so
   the lock token is derived from the shard table at the call site
   ("catalog.ml:shards" vs "manager.ml:shards") rather than collapsing
   through shard.ml's single internal mutex array.

   Project-local lock-scoped wrappers ([Catalog.with_names],
   [Manager.with_session]) are discovered by a fixpoint: a function that
   invokes a parameter while holding locks becomes a wrapper, and call
   sites passing a function literal to it analyze that literal under the
   wrapper's locks.  Closures passed to [Thread.create]/[Domain.spawn]/
   [Pool.async]/[Pool.submit] run on another thread with nothing held:
   they are analyzed from the empty lock set and their events are marked
   deferred so the effect propagation does not charge them to the
   spawning function. *)

(* Matching [Parsetree] exhaustively is impractical — its variants have
   dozens of constructors and extend with the language — so catch-alls
   are the norm here; fragile-match stays off for this file only. *)
[@@@warning "-4"]

open Parsetree
module T = Typed_source

(* ------------------------------------------------------------------ *)
(* Lock tokens                                                         *)
(* ------------------------------------------------------------------ *)

module Tok = struct
  type kind = Kmutex | Kshard

  type t = { unit_path : string; name : string; kind : kind }

  (* Identity ignores [kind]: a [@lint.guarded_by "shards"] obligation is
     met by the Shard token of the same unit and name. *)
  let compare a b =
    match String.compare a.unit_path b.unit_path with
    | 0 -> String.compare a.name b.name
    | c -> c

  let pp t =
    Printf.sprintf "%s:%s" (Filename.basename t.unit_path) t.name
end

module Tset = Set.Make (Tok)

let pp_tokens ts =
  String.concat ", " (List.map Tok.pp (Tset.elements ts))

(* ------------------------------------------------------------------ *)
(* Events                                                              *)
(* ------------------------------------------------------------------ *)

type site = {
  s_parts : string list;  (* syntactic path, for messages *)
  s_target : T.target;
  s_loc : Location.t;
  s_must : Tset.t;
  s_caught : string list;  (* exception names handled around the site *)
  s_deferred : bool;
}

type acquire = {
  a_tok : Tok.t;
  a_held : Tset.t;  (* may-held just before acquiring *)
  a_loc : Location.t;
  a_deferred : bool;
}

type access = {
  x_field : string;
  x_guard : Tok.t;
  x_must : Tset.t;
  x_loc : Location.t;
}

type blocking = {
  b_what : string;
  b_self : Tok.t option;  (* Condition.wait releases its own mutex *)
  b_must : Tset.t;
  b_loc : Location.t;
  b_deferred : bool;
}

type summary = {
  sm_def : T.def;
  sm_calls : site list;
  sm_acquires : acquire list;
  sm_accesses : access list;
  sm_blocking : blocking list;
  sm_forbidden : (string * Location.t) list;
  sm_raises : (string * Location.t * bool) list;  (* uncaught locally *)
  sm_exit_may : Tset.t;  (* locks possibly still held at return *)
}

type t = {
  summaries : (string, summary) Hashtbl.t;  (* key: unit ^ "|" ^ name *)
  wrappers : (string, (string * Tset.t) list) Hashtbl.t;
  rounds : int;
}

let summary t (def : T.def) =
  Hashtbl.find_opt t.summaries (T.key def.d_unit def.d_name)

(* ------------------------------------------------------------------ *)
(* Classifiers                                                         *)
(* ------------------------------------------------------------------ *)

let last_two parts =
  match List.rev parts with
  | [] -> ("", "")
  | [ f ] -> ("", f)
  | f :: m :: _ -> (m, f)

let dotted parts = String.concat "." parts

(* Unix entry points that can park the calling thread (IO, sleeps,
   process waits).  Fast metadata calls (getsockname, setsockopt,
   pipe, socket, bind, listen, shutdown) are deliberately absent, as is
   [Unix.gettimeofday] — the Obs clock must be readable under a lock. *)
let blocking_unix =
  [
    "accept"; "connect"; "read"; "write"; "write_substring"; "single_write";
    "recv"; "recvfrom"; "send"; "sendto"; "select"; "sleep"; "sleepf";
    "wait"; "waitpid"; "system"; "openfile"; "close";
  ]

let channel_fns =
  [
    "open_in"; "open_in_bin"; "open_out"; "open_out_bin"; "input_line";
    "input_char"; "input_byte"; "really_input"; "really_input_string";
    "output_string"; "output_char"; "output_byte"; "read_line"; "close_in";
    "close_out"; "close_in_noerr"; "close_out_noerr";
  ]

let mem s l = List.exists (String.equal s) l

let is_blocking parts =
  match last_two parts with
  | "Unix", f -> mem f blocking_unix
  | "Thread", ("join" | "delay") -> true
  | "Domain", "join" -> true
  | "Pool", "submit" -> true
  | ("In_channel" | "Out_channel"), _ -> true
  | "", f -> mem f channel_fns
  | _ -> false

(* R11: effects the sans-IO tiers must never reach. *)
let forbidden_effect parts =
  match parts with
  | [] -> false
  | head :: _ -> (
      mem head [ "Unix"; "Mutex"; "Condition"; "Domain"; "Thread" ]
      ||
      match last_two parts with
      | ("In_channel" | "Out_channel"), _ -> true
      | "Sys", "time" -> true
      | "", f -> mem f channel_fns
      | _ -> false)

(* Raising partial stdlib calls mapped to the exception they raise. *)
let partial_raises parts =
  match last_two parts with
  | "List", ("hd" | "tl" | "nth") -> Some "Failure"
  | "List", ("find" | "assoc") -> Some "Not_found"
  | "Option", "get" -> Some "Invalid_argument"
  | "Hashtbl", "find" -> Some "Not_found"
  | "Stack", ("pop" | "top") -> Some "Empty"
  | "Queue", ("pop" | "take" | "peek") -> Some "Empty"
  | "", ("int_of_string" | "float_of_string") -> Some "Failure"
  | m, "find" ->
      let m = String.lowercase_ascii m in
      if String.equal m "map" || String.ends_with ~suffix:"map" m then
        Some "Not_found"
      else None
  | _ -> None

let shard_fn_arg = function
  | "with_key" | "with_slot" -> Some 2
  | "mapi" -> Some 1
  | "fold" -> None  (* labelled ~f *)
  | _ -> None

let is_shard_primitive f =
  mem f [ "with_key"; "with_slot"; "fold"; "mapi" ]

(* Spawn primitives whose function argument runs on another thread:
   (head module, function, positional index of the closure). *)
let deferred_spawn = function
  | "Thread", "create" -> Some 0
  | "Domain", "spawn" -> Some 0
  | "Pool", ("async" | "submit") -> Some 1
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Expression helpers                                                  *)
(* ------------------------------------------------------------------ *)

let rec fun_literal e =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ -> true
  | Pexp_newtype (_, e) | Pexp_constraint (e, _) -> fun_literal e
  | _ -> false

(* The display name of a lock expression: the last field or variable on
   its path, unwrapping array indexing ([t.mutexes.(i)] -> "mutexes"). *)
let rec lock_base e =
  match e.pexp_desc with
  | Pexp_ident l | Pexp_field (_, l) -> (
      match List.rev (T.lid_parts l.txt) with
      | n :: _ -> Some n
      | [] -> None)
  | Pexp_constraint (e, _) -> lock_base e
  | Pexp_apply (f, args) -> (
      match f.pexp_desc with
      | Pexp_ident { txt; _ }
        when match last_two (T.lid_parts txt) with
             | "Array", ("get" | "unsafe_get") -> true
             | _ -> false -> (
          match List.find_opt (fun (l, _) -> l = Asttypes.Nolabel) args with
          | Some (_, a) -> lock_base a
          | None -> None)
      | _ -> None)
  | _ -> None

let lock_token ~unit_path ~kind e =
  let name =
    match lock_base e with
    | Some n -> n
    | None ->
        Printf.sprintf "<lock@%d>" e.pexp_loc.Location.loc_start.Lexing.pos_lnum
  in
  { Tok.unit_path; name; kind }

let positional args = List.filter_map
    (fun (l, a) -> if l = Asttypes.Nolabel then Some a else None)
    args

let labelled name args =
  List.find_map
    (fun (l, a) ->
      match l with
      | Asttypes.Labelled n when String.equal n name -> Some a
      | _ -> None)
    args

(* Pair call-site arguments with the callee's parameters: labelled args
   match by label, positional args fill the non-optional parameters in
   declaration order. *)
let match_params (params : T.param list) args =
  let pos = ref (positional args) in
  List.filter_map
    (fun (p : T.param) ->
      match p.p_label with
      | Asttypes.Labelled n | Asttypes.Optional n -> (
          match (labelled n args, p.p_name) with
          | Some a, Some pn -> Some (pn, a)
          | Some a, None -> Some (n, a)
          | None, _ ->
              if p.p_label = Asttypes.Labelled n then (
                (* An unlabelled application can still fill it. *)
                match !pos with
                | a :: rest when p.p_name <> None ->
                    pos := rest;
                    Option.map (fun pn -> (pn, a)) p.p_name
                | _ -> None)
              else None)
      | Asttypes.Nolabel -> (
          match !pos with
          | a :: rest ->
              pos := rest;
              Option.map (fun pn -> (pn, a)) p.p_name
          | [] -> None))
    params

(* Exception names a pattern catches; "*" means everything. *)
let rec pat_exn_names p =
  match p.ppat_desc with
  | Ppat_construct (l, _) -> (
      match List.rev (T.lid_parts l.txt) with n :: _ -> [ n ] | [] -> [ "*" ])
  | Ppat_or (a, b) -> pat_exn_names a @ pat_exn_names b
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> pat_exn_names p
  | _ -> [ "*" ]

(* Handler patterns of a try (or the exception cases of a match).
   Guarded handlers may decline, so they catch nothing for R12. *)
let handled_exns ~exception_cases cases =
  List.concat_map
    (fun c ->
      if c.pc_guard <> None then []
      else
        match (exception_cases, c.pc_lhs.ppat_desc) with
        | false, _ -> pat_exn_names c.pc_lhs
        | true, Ppat_exception p -> pat_exn_names p
        | true, _ -> [])
    cases

let catches caught exn =
  mem "*" caught || (not (String.equal exn "*")) && mem exn caught

(* ------------------------------------------------------------------ *)
(* The local abstract interpreter                                      *)
(* ------------------------------------------------------------------ *)

type state = { must : Tset.t; may : Tset.t }

let empty_state = { must = Tset.empty; may = Tset.empty }

let join a b = { must = Tset.inter a.must b.must; may = Tset.union a.may b.may }

let add_tok tok st = { must = Tset.add tok st.must; may = Tset.add tok st.may }

let remove_tok tok st =
  { must = Tset.remove tok st.must; may = Tset.remove tok st.may }

type ctx = { deferred : bool; caught : string list }

type acc = {
  mutable calls : site list;
  mutable acquires : acquire list;
  mutable accesses : access list;
  mutable blocking : blocking list;
  mutable forbidden : (string * Location.t) list;
  mutable raises : (string * Location.t * bool) list;
}

let analyze prog wrappers (def : T.def) : summary =
  let unit_path = def.d_unit in
  let u =
    match Hashtbl.find_opt prog.T.units unit_path with
    | Some u -> u
    | None -> { T.u_path = unit_path; u_dir = Filename.dirname unit_path; u_aliases = [] }
  in
  let params, body = T.peel_params def.d_body in
  let param_names = List.filter_map (fun (p : T.param) -> p.p_name) params in
  let is_param n = mem n param_names in
  let resolve parts = T.resolve prog u ~scope:def.d_name ~is_param parts in
  let acc =
    {
      calls = [];
      acquires = [];
      accesses = [];
      blocking = [];
      forbidden = [];
      raises = [];
    }
  in
  let note_forbidden parts loc =
    if forbidden_effect parts then acc.forbidden <- (dotted parts, loc) :: acc.forbidden
  in
  let note_raise ctx exn loc =
    if not (catches ctx.caught exn) then
      acc.raises <- (exn, loc, ctx.deferred) :: acc.raises
  in
  (* Events attached to any occurrence of an identifier, applied or not:
     the effect classifier (R11), blocking classifier (R10) and the
     partial-call exception map (R12). *)
  let note_ident ctx st parts loc =
    note_forbidden parts loc;
    if is_blocking parts then
      acc.blocking <-
        {
          b_what = dotted parts;
          b_self = None;
          b_must = st.must;
          b_loc = loc;
          b_deferred = ctx.deferred;
        }
        :: acc.blocking;
    match partial_raises parts with
    | Some exn -> note_raise ctx exn loc
    | None -> ()
  in
  let record_call ctx st ?(extra = Tset.empty) ~parts ~target loc =
    acc.calls <-
      {
        s_parts = parts;
        s_target = target;
        s_loc = loc;
        s_must = Tset.union st.must extra;
        s_caught = ctx.caught;
        s_deferred = ctx.deferred;
      }
      :: acc.calls
  in
  let record_acquire ctx st tok loc =
    acc.acquires <-
      { a_tok = tok; a_held = st.may; a_loc = loc; a_deferred = ctx.deferred }
      :: acc.acquires
  in
  (* [walk] threads the lock state through the control flow and returns
     the state at the expression's normal exit. *)
  let rec walk ctx st e : state =
    match e.pexp_desc with
    | Pexp_ident { txt; loc } ->
        note_ident ctx st (T.lid_parts txt) loc;
        st
    | Pexp_apply (fn, args) -> apply ctx st e fn args
    | Pexp_field (r, l) ->
        let st = walk ctx st r in
        note_access ctx st l e.pexp_loc;
        st
    | Pexp_setfield (r, l, v) ->
        let st = walk ctx st r in
        let st = walk ctx st v in
        note_access ctx st l e.pexp_loc;
        st
    | Pexp_let (_, vbs, cont) ->
        let st =
          List.fold_left
            (fun st vb ->
              let lifted =
                match T.binding_name vb with
                | Some n ->
                    T.is_function vb.pvb_expr
                    && Hashtbl.mem prog.T.defs
                         (T.key unit_path (def.d_name ^ "." ^ n))
                | None -> false
              in
              if lifted then st  (* analyzed as its own definition *)
              else walk ctx st vb.pvb_expr)
            st vbs
        in
        walk ctx st cont
    | Pexp_sequence (a, b) -> walk ctx (walk ctx st a) b
    | Pexp_ifthenelse (c, t, f) -> (
        let st = walk ctx st c in
        match f with
        | Some f -> join (walk ctx st t) (walk ctx st f)
        | None -> join st (walk ctx st t))
    | Pexp_match (scrut, cases) ->
        let exn_handled = handled_exns ~exception_cases:true cases in
        let sctx = { ctx with caught = exn_handled @ ctx.caught } in
        let st_scrut = walk sctx st scrut in
        branch_cases ctx ~normal:st_scrut ~handler:st cases
    | Pexp_try (bodye, cases) ->
        let caught = handled_exns ~exception_cases:false cases in
        let bctx = { ctx with caught = caught @ ctx.caught } in
        let st_body = walk bctx st bodye in
        branch_cases ctx ~normal:st_body ~handler:st
          (List.map (fun c -> { c with pc_lhs = c.pc_lhs }) cases)
        |> fun st_cases -> join st_body st_cases
    | Pexp_while (c, b) ->
        let st_c = walk ctx st c in
        join st_c (walk ctx st_c b)
    | Pexp_for (_, e1, e2, _, b) ->
        let st = walk ctx (walk ctx st e1) e2 in
        join st (walk ctx st b)
    | Pexp_fun _ | Pexp_function _ ->
        (* A closure not consumed by a recognized combinator: scan it for
           events under the current locks, keep the outer state. *)
        walk_literal ctx st e;
        st
    | Pexp_assert inner ->
        let st = walk ctx st inner in
        (match inner.pexp_desc with
        | Pexp_construct ({ txt = Longident.Lident "true"; _ }, None) -> ()
        | _ -> note_raise ctx "Assert_failure" e.pexp_loc);
        st
    | Pexp_lazy inner ->
        walk_literal ctx st inner;
        st
    | Pexp_tuple es | Pexp_array es ->
        List.fold_left (fun st e -> walk ctx st e) st es
    | Pexp_construct (_, arg) | Pexp_variant (_, arg) -> (
        match arg with Some a -> walk ctx st a | None -> st)
    | Pexp_record (fields, base) ->
        let st = match base with Some b -> walk ctx st b | None -> st in
        List.fold_left (fun st (_, v) -> walk ctx st v) st fields
    | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_newtype (_, e) ->
        walk ctx st e
    | Pexp_open (_, e) | Pexp_letmodule (_, _, e) | Pexp_letexception (_, e) ->
        walk ctx st e
    | Pexp_letop { let_; ands; body; _ } ->
        (* Monadic binds in this codebase ([let*] over result) apply the
           body immediately: thread the bound expressions then the body. *)
        let st = walk ctx st let_.pbop_exp in
        let st =
          List.fold_left (fun st a -> walk ctx st a.pbop_exp) st ands
        in
        walk ctx st body
    | _ -> st
  and note_access ctx st l loc =
    ignore ctx;
    match List.rev (T.lid_parts l.txt) with
    | field :: _ -> (
        match T.unit_guard prog unit_path field with
        | Some g ->
            acc.accesses <-
              {
                x_field = field;
                x_guard = { Tok.unit_path; name = g.T.g_lock; kind = Tok.Kmutex };
                x_must = st.must;
                x_loc = loc;
              }
              :: acc.accesses
        | None -> ())
    | [] -> ()
  and branch_cases ctx ~normal ~handler cases =
    let outs =
      List.map
        (fun c ->
          let start =
            match c.pc_lhs.ppat_desc with
            | Ppat_exception _ -> handler
            | _ -> normal
          in
          let start =
            match c.pc_guard with Some g -> walk ctx start g | None -> start
          in
          walk ctx start c.pc_rhs)
        cases
    in
    match outs with
    | [] -> normal
    | first :: rest -> List.fold_left join first rest
  (* Scan a function literal's body for events under [st], discarding
     its exit state (the closure may run zero or many times). *)
  and walk_literal ctx st e =
    let _, inner = T.peel_params e in
    match inner.pexp_desc with
    | Pexp_function cases ->
        ignore (branch_cases ctx ~normal:st ~handler:st cases)
    | _ -> ignore (walk ctx st inner)
  (* A critical-section combinator: [fn_arg] runs under [st + tok]. *)
  and critical_section ctx st ~tok ~fn_arg ~other_args loc =
    record_acquire ctx st tok loc;
    List.iter (fun a -> ignore (walk ctx st a)) other_args;
    (match fn_arg with
    | Some a when fun_literal a ->
        (* Thread the literal's state so a lock leaked inside the
           critical section stays visible after it. *)
        let params, inner = T.peel_params a in
        ignore params;
        let st_in = add_tok tok st in
        let st_out =
          match inner.pexp_desc with
          | Pexp_function cases ->
              branch_cases ctx ~normal:st_in ~handler:st_in cases
          | _ -> walk ctx st_in inner
        in
        ignore st_out
    | Some a -> apply_fn_value ctx st ~extra:(Tset.singleton tok) a
    | None -> ());
    st
  (* A function value (not a literal) invoked by a combinator while
     [extra] locks are held: parameters become wrapper evidence,
     resolved functions become call edges. *)
  and apply_fn_value ctx st ~extra a =
    match a.pexp_desc with
    | Pexp_ident { txt; loc } -> (
        let parts = T.lid_parts txt in
        note_ident ctx st parts loc;
        match resolve parts with
        | (T.Param _ | T.Internal _) as target ->
            record_call ctx st ~extra ~parts ~target loc
        | T.External _ -> ())
    | _ -> ignore (walk ctx st a)
  and apply ctx st whole fn args =
    match fn.pexp_desc with
    | Pexp_ident { txt = Longident.Lident "@@"; _ } -> (
        match positional args with
        | [ f; x ] -> apply ctx st whole f [ (Asttypes.Nolabel, x) ]
        | _ -> fallback_apply ctx st fn args)
    | Pexp_ident { txt = Longident.Lident "|>"; _ } -> (
        match positional args with
        | [ x; f ] -> apply ctx st whole f [ (Asttypes.Nolabel, x) ]
        | _ -> fallback_apply ctx st fn args)
    | Pexp_ident { txt; loc } -> apply_ident ctx st ~loc (T.lid_parts txt) args
    | _ -> fallback_apply ctx st fn args
  and fallback_apply ctx st fn args =
    let st = walk ctx st fn in
    List.fold_left (fun st (_, a) -> walk ctx st a) st args
  and apply_ident ctx st ~loc parts args =
    let m, f = last_two parts in
    let pos = positional args in
    match (m, f, pos) with
    | "Mutex", "lock", [ m_expr ] ->
        let st = walk ctx st m_expr in
        let tok = lock_token ~unit_path ~kind:Tok.Kmutex m_expr in
        note_forbidden parts loc;
        record_acquire ctx st tok loc;
        add_tok tok st
    | "Mutex", "unlock", [ m_expr ] ->
        let st = walk ctx st m_expr in
        note_forbidden parts loc;
        remove_tok (lock_token ~unit_path ~kind:Tok.Kmutex m_expr) st
    | "Mutex", "protect", m_expr :: rest ->
        let st = walk ctx st m_expr in
        let tok = lock_token ~unit_path ~kind:Tok.Kmutex m_expr in
        note_forbidden parts loc;
        critical_section ctx st ~tok
          ~fn_arg:(match rest with a :: _ -> Some a | [] -> None)
          ~other_args:[] loc
    | "Condition", "wait", [ c_expr; m_expr ] ->
        let st = walk ctx (walk ctx st c_expr) m_expr in
        note_forbidden parts loc;
        acc.blocking <-
          {
            b_what = "Condition.wait";
            b_self = Some (lock_token ~unit_path ~kind:Tok.Kmutex m_expr);
            b_must = st.must;
            b_loc = loc;
            b_deferred = ctx.deferred;
          }
          :: acc.blocking;
        st
    | "Shard", f, (t_expr :: _ as pos) when is_shard_primitive f ->
        let st = walk ctx st t_expr in
        let tok = lock_token ~unit_path ~kind:Tok.Kshard t_expr in
        let fn_arg, others =
          match shard_fn_arg f with
          | Some i ->
              ( List.nth_opt pos i,
                List.filteri (fun j _ -> j <> 0 && j <> i) pos )
          | None ->
              (* fold: the body is ~f, ~init threads normally. *)
              ( labelled "f" args,
                match labelled "init" args with
                | Some a -> [ a ]
                | None -> List.filteri (fun j _ -> j <> 0) pos )
        in
        critical_section ctx st ~tok ~fn_arg ~other_args:others loc
    | ("" | "Stdlib"), "failwith", _ ->
        let st = List.fold_left (fun st (_, a) -> walk ctx st a) st args in
        note_raise ctx "Failure" loc;
        st
    | ("" | "Stdlib"), "invalid_arg", _ ->
        let st = List.fold_left (fun st (_, a) -> walk ctx st a) st args in
        note_raise ctx "Invalid_argument" loc;
        st
    | ("" | "Stdlib"), ("raise" | "raise_notrace"), exn :: _ ->
        let st = List.fold_left (fun st (_, a) -> walk ctx st a) st args in
        let name =
          match exn.pexp_desc with
          | Pexp_construct (l, _) -> (
              match List.rev (T.lid_parts l.txt) with
              | n :: _ -> n
              | [] -> "*")
          | _ -> "*"  (* a re-raised variable: unknown constructor *)
        in
        note_raise ctx name loc;
        st
    | _ -> (
        match deferred_spawn (m, f) with
        | Some i ->
            note_ident ctx st parts loc;
            let fn_arg = List.nth_opt pos i in
            List.iteri
              (fun j a -> if j <> i then ignore (walk ctx st a))
              pos;
            (match fn_arg with
            | Some a when fun_literal a ->
                walk_literal { deferred = true; caught = [] } empty_state a
            | Some a ->
                apply_fn_value
                  { deferred = true; caught = [] }
                  empty_state ~extra:Tset.empty a
            | None -> ());
            resolved_call ctx st ~consumed:(Option.to_list fn_arg) ~parts ~loc
              args
        | None ->
            note_ident ctx st parts loc;
            resolved_call ctx st ~consumed:[] ~parts ~loc args)
  (* A plain call: record the edge if it resolves, instantiate wrapper
     locks over function arguments, walk everything else. *)
  and resolved_call ctx st ~consumed ~parts ~loc args =
    let target = resolve parts in
    let consumed = ref consumed in
    (match target with
    | T.Internal (tu, tf) ->
        record_call ctx st ~parts ~target loc;
        (match
           ( Hashtbl.find_opt wrappers (T.key tu tf),
             T.find_def prog tu tf )
         with
        | Some wrapper_params, Some callee ->
            let pairs = match_params callee.T.d_params args in
            List.iter
              (fun (pname, toks) ->
                if not (Tset.is_empty toks) then
                  match List.assoc_opt pname pairs with
                  | Some a when fun_literal a ->
                      consumed := a :: !consumed;
                      let st_in = Tset.fold add_tok toks st in
                      walk_literal ctx st_in a
                  | Some a when (match a.pexp_desc with
                                 | Pexp_ident _ -> true
                                 | _ -> false) ->
                      consumed := a :: !consumed;
                      apply_fn_value ctx st ~extra:toks a
                  | Some _ | None -> ())
              wrapper_params
        | _ -> ())
    | T.Param p ->
        record_call ctx st ~parts ~target:(T.Param p) loc
    | T.External _ -> ());
    List.fold_left
      (fun st (_, a) ->
        if List.memq a !consumed then st else walk ctx st a)
      st args
  in
  let exit_state =
    let ctx = { deferred = false; caught = [] } in
    match body.pexp_desc with
    | Pexp_function cases ->
        branch_cases ctx ~normal:empty_state ~handler:empty_state cases
    | _ -> walk ctx empty_state body
  in
  {
    sm_def = def;
    sm_calls = List.rev acc.calls;
    sm_acquires = List.rev acc.acquires;
    sm_accesses = List.rev acc.accesses;
    sm_blocking = List.rev acc.blocking;
    sm_forbidden = List.rev acc.forbidden;
    sm_raises = List.rev acc.raises;
    sm_exit_may = exit_state.may;
  }

(* ------------------------------------------------------------------ *)
(* Wrapper fixpoint                                                    *)
(* ------------------------------------------------------------------ *)

(* A function is a lock-scoped wrapper for parameter [p] if every
   invocation of [p] in its body happens with a common non-empty lock
   set: the intersection is the guarantee call sites may rely on. *)
let derive_wrappers summaries =
  let out = Hashtbl.create 16 in
  Hashtbl.iter
    (fun k (sm : summary) ->
      let by_param = Hashtbl.create 4 in
      List.iter
        (fun s ->
          match s.s_target with
          | T.Param p ->
              let cur = Hashtbl.find_opt by_param p in
              let toks =
                match cur with
                | Some toks -> Tset.inter toks s.s_must
                | None -> s.s_must
              in
              Hashtbl.replace by_param p toks
          | T.Internal _ | T.External _ -> ())
        sm.sm_calls;
      let entries =
        Hashtbl.fold
          (fun p toks l ->
            if Tset.is_empty toks then l else (p, toks) :: l)
          by_param []
      in
      match entries with
      | [] -> ()
      | _ ->
          Hashtbl.replace out k
            (List.sort (fun (a, _) (b, _) -> String.compare a b) entries))
    summaries;
  out

let wrappers_equal a b =
  let render t =
    Hashtbl.fold
      (fun k v l ->
        (k, List.map (fun (p, toks) -> (p, Tset.elements toks)) v) :: l)
      t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  render a = render b

let max_rounds = 6

let build (prog : T.program) : t =
  let defs = T.all_defs prog in
  let rec fix wrappers round =
    let summaries = Hashtbl.create 256 in
    List.iter
      (fun (d : T.def) ->
        Hashtbl.replace summaries (T.key d.d_unit d.d_name)
          (analyze prog wrappers d))
      defs;
    let next = derive_wrappers summaries in
    if round >= max_rounds || wrappers_equal wrappers next then
      { summaries; wrappers = next; rounds = round }
    else fix next (round + 1)
  in
  fix (Hashtbl.create 16) 1
