(** The lint pipeline: discover -> parse -> rules -> suppress -> baseline. *)

type outcome = {
  files : int;
  findings : Finding.t list;  (** post-suppression, sorted *)
  fresh : Finding.t list;  (** in excess of the baseline *)
  stale : Baseline.entry list;
  parse_errors : int;
}

(** Lint in-memory source as [path] (fixture tests); suppression applied,
    no R6/baseline. *)
val lint_source : path:string -> string -> Finding.t list

(** Lint files/directories: [(file count, sorted findings)]. *)
val lint_paths : string list -> int * Finding.t list

val run : ?baseline:Baseline.t -> string list -> outcome

(** No findings beyond the baseline. *)
val clean : outcome -> bool
