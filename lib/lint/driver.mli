(** The lint pipeline: discover -> parse -> rules -> suppress -> baseline.

    Parsing is sequential (compiler-libs' lexer keeps global buffers);
    the per-file rule walks (R1..R8) fan out across [jobs] domains with
    a deterministic report order; the interprocedural stage (R9..R12)
    builds the whole-program view once and runs sequentially. *)

type options = {
  rules : string list option;  (** None = every rule; ids like ["R9"] *)
  changed : string list option;
      (** normalized paths: only report findings landing in these files *)
  jobs : int;  (** domains for the per-file stage *)
}

val default_options : options

(** Interprocedural pass statistics for the JSON report. *)
type analysis = { units : int; defs : int; wrappers : int; rounds : int }

type outcome = {
  files : int;  (** files linted (the changed subset when restricted) *)
  findings : Finding.t list;  (** post-suppression, sorted *)
  fresh : Finding.t list;  (** in excess of the baseline *)
  stale : Baseline.entry list;  (** empty in changed mode *)
  parse_errors : int;
  wall_ms : float;
  analysis : analysis option;  (** present when R9..R12 ran *)
}

(** Lint in-memory sources as one little program: per-file rules plus
    R9..R12 over the set, suppression applied, no R6/baseline. *)
val lint_sources :
  ?opts:options -> (string * string) list -> Finding.t list

(** [lint_sources] with a single file (fixture tests). *)
val lint_source : ?opts:options -> path:string -> string -> Finding.t list

(** Lint files/directories:
    [(linted file count, sorted findings, analysis)]. *)
val lint_paths :
  ?opts:options -> string list -> int * Finding.t list * analysis option

val run : ?baseline:Baseline.t -> ?opts:options -> string list -> outcome

(** No findings beyond the baseline. *)
val clean : outcome -> bool

val analysis_to_json : analysis -> Jqi_util.Json.t
