(** Source discovery and compiler-libs parsing. *)

type kind = Impl | Intf

type parsed =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature

type file = { path : string; kind : kind; ast : parsed }

(** Walk the given files/directories, returning every [.ml]/[.mli] path in
    sorted order.  Hidden and [_build]-style directories are skipped. *)
val discover : string list -> string list

(** Parse a file from disk; [Error] is a "P0" parse-error finding. *)
val parse : string -> (file, Finding.t) result

(** Parse in-memory source as if it were the contents of [path] (tests). *)
val parse_string : path:string -> string -> (file, Finding.t) result
