(** [@lint.allow "Rn"] suppression scopes. *)

type scope

(** Collect suppression scopes from one parsed file (empty for .mli). *)
val of_file : Source.file -> scope list

(** Drop findings covered by a scope: rule listed (or bare [@lint.allow])
    and location inside the attributed node (or a whole-file
    [@@@lint.allow]). *)
val filter : scope list -> Finding.t list -> Finding.t list
