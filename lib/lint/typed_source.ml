(* Whole-program view for the interprocedural pass (R9..R12).

   jqlint runs from a bare source checkout — `dune build @lint` sandboxes
   only the .ml/.mli files, no cmt/cmi artifacts — so instead of driving
   the type-checker we build a deterministic "typing lite" layer over the
   parsetrees: per-unit module aliases, a table of every function
   definition (nested let-bound functions lifted under dotted names), the
   [@lint.guarded_by] field-guard table, and a name resolver that maps a
   [Longident] at a use site to the defining unit and function.  The
   resolver understands three spellings, which cover this codebase's
   idiom: a same-directory unit module ([Catalog.find] from manager.ml),
   a library-qualified path ([Jqi_util.Json.of_string], where [Jqi_x]
   names the dune library of lib/x), and a local alias for either
   ([module Json = Jqi_util.Json]).  Anything else is [External] and the
   analyses treat it by classifier, never by guess. *)

(* Matching [Parsetree] exhaustively is impractical — its variants have
   dozens of constructors and extend with the language — so catch-alls
   are the norm here; fragile-match stays off for this file only. *)
[@@@warning "-4"]

open Parsetree

type fn_kind = Toplevel | In_module | Nested

type param = { p_name : string option; p_label : Asttypes.arg_label }

type def = {
  d_unit : string;  (* normalized .ml path *)
  d_name : string;  (* dotted: "find", "Framing.feed", "submit.job" *)
  d_kind : fn_kind;
  d_params : param list;  (* [] for non-function bindings *)
  d_body : expression;  (* the full binding RHS, fun chain included *)
  d_loc : Location.t;
  d_public : bool;  (* reachable from outside the unit (mli surface) *)
}

type unit_info = {
  u_path : string;
  u_dir : string;  (* "lib/server" *)
  u_aliases : (string * string list) list;  (* local module alias -> path *)
}

(* A mutable field annotated [@lint.guarded_by "lock"]. *)
type guard = { g_lock : string; g_loc : Location.t }

(* A mutable (or mutable-container) field sharing a record with a mutex
   but carrying neither a guard nor a field-level [@lint.allow "R9"]. *)
type unguarded = {
  ug_unit : string;
  ug_field : string;
  ug_mutex : string;  (* the sibling lock field's name *)
  ug_loc : Location.t;
}

type program = {
  units : (string, unit_info) Hashtbl.t;
  defs : (string, def) Hashtbl.t;  (* key: unit ^ "|" ^ name *)
  guards : (string, guard) Hashtbl.t;  (* key: unit ^ "|" ^ field *)
  unguarded : unguarded list;
}

type target =
  | Internal of string * string  (* unit path, def name *)
  | Param of string
  | External of string list

let key u n = u ^ "|" ^ n
let find_def prog u n = Hashtbl.find_opt prog.defs (key u n)

let rec lid_parts = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> lid_parts l @ [ s ]
  | Longident.Lapply (a, b) -> lid_parts a @ lid_parts b

(* ------------------------------------------------------------------ *)
(* Function-shape helpers                                              *)
(* ------------------------------------------------------------------ *)

let rec peel_params e =
  match e.pexp_desc with
  | Pexp_fun (label, _, pat, body) ->
      let name =
        let rec go p =
          match p.ppat_desc with
          | Ppat_var v -> Some v.txt
          | Ppat_constraint (p, _) | Ppat_alias (p, _) -> go p
          | _ -> None
        in
        go pat
      in
      let params, inner = peel_params body in
      ({ p_name = name; p_label = label } :: params, inner)
  | Pexp_newtype (_, e) | Pexp_constraint (e, _) -> peel_params e
  | Pexp_function _ ->
      (* One anonymous scrutinee parameter; the cases are the body. *)
      ([ { p_name = None; p_label = Asttypes.Nolabel } ], e)
  | _ -> ([], e)

let is_function rhs = match peel_params rhs with [], _ -> false | _ -> true

let binding_name vb =
  let rec go p =
    match p.ppat_desc with
    | Ppat_var v -> Some v.txt
    | Ppat_constraint (p, _) -> go p
    | _ -> None
  in
  go vb.pvb_pat

(* ------------------------------------------------------------------ *)
(* Attribute helpers (shared with Suppress's payload grammar)          *)
(* ------------------------------------------------------------------ *)

let attr_strings (p : payload) : string list option =
  let const e =
    match e.pexp_desc with
    | Pexp_constant (Pconst_string (s, _, _)) -> Some s
    | _ -> None
  in
  match p with
  | PStr [] -> Some []
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
      match e.pexp_desc with
      | Pexp_constant (Pconst_string (s, _, _)) -> Some [ s ]
      | Pexp_tuple es ->
          let ss = List.filter_map const es in
          if List.compare_lengths ss es = 0 then Some ss else None
      | _ -> None)
  | _ -> None

let find_attr name attrs =
  List.find_opt (fun (a : attribute) -> String.equal a.attr_name.txt name) attrs

(* A field's attributes may land on the label declaration or on its core
   type depending on spelling; accept both. *)
let label_attrs (ld : label_declaration) =
  ld.pld_attributes @ ld.pld_type.ptyp_attributes

let guarded_by ld =
  match find_attr "lint.guarded_by" (label_attrs ld) with
  | Some a -> (
      match attr_strings a.attr_payload with Some [ l ] -> Some l | _ -> None)
  | None -> None

let field_allows_r9 ld =
  match find_attr "lint.allow" (label_attrs ld) with
  | Some a -> (
      match attr_strings a.attr_payload with
      | Some [] -> true
      | Some rules -> List.exists (String.equal "R9") rules
      | None -> false)
  | None -> false

(* ------------------------------------------------------------------ *)
(* Type scanning: guards and lock-completeness                         *)
(* ------------------------------------------------------------------ *)

let rec typ_mentions name ct =
  match ct.ptyp_desc with
  | Ptyp_constr (l, args) ->
      List.exists (String.equal name) (lid_parts l.txt)
      || List.exists (typ_mentions name) args
  | Ptyp_arrow (_, a, b) -> typ_mentions name a || typ_mentions name b
  | Ptyp_tuple ts -> List.exists (typ_mentions name) ts
  | Ptyp_poly (_, t) | Ptyp_alias (t, _) -> typ_mentions name t
  | _ -> false

(* Shared-container heads whose contents mutate even through an
   immutable field. *)
let container_head ct =
  match ct.ptyp_desc with
  | Ptyp_constr (l, _) -> (
      match List.rev (lid_parts l.txt) with
      | "t" :: m :: _ -> Some m
      | m :: _ -> Some m
      | [] -> None)
  | _ -> None

let mutable_container ld =
  match container_head ld.pld_type with
  | Some ("Hashtbl" | "Queue" | "Stack" | "Buffer") -> true
  | Some _ | None -> false

let scan_record ~unit_path guards unguarded (labels : label_declaration list) =
  let is_lock ld =
    typ_mentions "Mutex" ld.pld_type || typ_mentions "Condition" ld.pld_type
  in
  let mutex_field =
    List.find_opt (fun ld -> typ_mentions "Mutex" ld.pld_type) labels
  in
  List.iter
    (fun ld ->
      let field = ld.pld_name.txt in
      (match guarded_by ld with
      | Some lock ->
          Hashtbl.replace guards (key unit_path field)
            { g_lock = lock; g_loc = ld.pld_loc }
      | None -> ());
      match mutex_field with
      | Some m
        when (not (is_lock ld))
             && (not (String.equal ld.pld_name.txt m.pld_name.txt))
             && (ld.pld_mutable = Asttypes.Mutable || mutable_container ld)
             && guarded_by ld = None
             && not (field_allows_r9 ld) ->
          unguarded :=
            {
              ug_unit = unit_path;
              ug_field = field;
              ug_mutex = m.pld_name.txt;
              ug_loc = ld.pld_loc;
            }
            :: !unguarded
      | Some _ | None -> ())
    labels

(* ------------------------------------------------------------------ *)
(* Definition collection                                               *)
(* ------------------------------------------------------------------ *)

(* Register nested let-bound functions of [body] under dotted names, so
   [let job () = ... in ...] becomes the separate def "submit.job" and
   call sites can resolve it.  The scan recurses through every
   expression; [prefix] is the lexical chain of enclosing functions. *)
let rec scan_nested ~unit_path ~register ~prefix body =
  let super = Ast_iterator.default_iterator in
  let it =
    {
      super with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_let (_, vbs, cont) ->
              List.iter
                (fun vb ->
                  match binding_name vb with
                  | Some n when is_function vb.pvb_expr ->
                      let name = prefix ^ "." ^ n in
                      register
                        {
                          d_unit = unit_path;
                          d_name = name;
                          d_kind = Nested;
                          d_params = fst (peel_params vb.pvb_expr);
                          d_body = vb.pvb_expr;
                          d_loc = vb.pvb_loc;
                          d_public = false;
                        };
                      scan_nested ~unit_path ~register ~prefix:name vb.pvb_expr
                  | Some _ | None -> it.expr it vb.pvb_expr)
                vbs;
              it.expr it cont
          | _ -> super.expr it e);
    }
  in
  it.expr it body

let collect_unit ~unit_path (str : structure) =
  let defs = ref [] in
  let aliases = ref [] in
  let guards = Hashtbl.create 8 in
  let unguarded = ref [] in
  let register d = defs := d :: !defs in
  let init_count = ref 0 in
  let rec items ~mod_prefix list =
    List.iter
      (fun (si : structure_item) ->
        match si.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                let kind =
                  if String.equal mod_prefix "" then Toplevel else In_module
                in
                let name =
                  match binding_name vb with
                  | Some n -> mod_prefix ^ n
                  | None ->
                      incr init_count;
                      mod_prefix ^ Printf.sprintf "<init#%d>" !init_count
                in
                register
                  {
                    d_unit = unit_path;
                    d_name = name;
                    d_kind = kind;
                    d_params = fst (peel_params vb.pvb_expr);
                    d_body = vb.pvb_expr;
                    d_loc = vb.pvb_loc;
                    d_public = true (* refined against the mli below *);
                  };
                scan_nested ~unit_path ~register ~prefix:name vb.pvb_expr)
              vbs
        | Pstr_module mb -> (
            let rec peel me =
              match me.pmod_desc with
              | Pmod_constraint (me, _) -> peel me
              | d -> d
            in
            match (mb.pmb_name.txt, peel mb.pmb_expr) with
            | Some n, Pmod_structure inner ->
                items ~mod_prefix:(mod_prefix ^ n ^ ".") inner
            | Some n, Pmod_ident l ->
                aliases := (n, lid_parts l.txt) :: !aliases
            | _ -> ())
        | Pstr_type (_, decls) ->
            List.iter
              (fun td ->
                match td.ptype_kind with
                | Ptype_record labels ->
                    scan_record ~unit_path guards unguarded labels
                | _ -> ())
              decls
        | _ -> ())
      list
  in
  items ~mod_prefix:"" str;
  (List.rev !defs, List.rev !aliases, guards, List.rev !unguarded)

(* ------------------------------------------------------------------ *)
(* The mli surface                                                     *)
(* ------------------------------------------------------------------ *)

let sig_surface (s : signature) =
  let vals = ref [] in
  let mods = ref [] in
  List.iter
    (fun (si : signature_item) ->
      match si.psig_desc with
      | Psig_value vd -> vals := vd.pval_name.txt :: !vals
      | Psig_module md -> (
          match md.pmd_name.txt with
          | Some n -> mods := n :: !mods
          | None -> ())
      | _ -> ())
    s;
  (!vals, !mods)

let refine_public ~mli def =
  match mli with
  | None -> def  (* no interface: every toplevel value is reachable *)
  | Some (vals, mods) -> (
      match def.d_kind with
      | Nested -> { def with d_public = false }
      | Toplevel ->
          { def with d_public = List.exists (String.equal def.d_name) vals }
      | In_module ->
          let head =
            match String.index_opt def.d_name '.' with
            | Some i -> String.sub def.d_name 0 i
            | None -> def.d_name
          in
          { def with d_public = List.exists (String.equal head) mods })

(* ------------------------------------------------------------------ *)
(* Loading                                                             *)
(* ------------------------------------------------------------------ *)

let normalize path =
  let path =
    if String.length path > 1 && path.[0] = '.' && path.[1] = '/' then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.map (fun c -> if c = '\\' then '/' else c) path

let load (files : Source.file list) : program =
  let sigs = Hashtbl.create 16 in
  List.iter
    (fun (f : Source.file) ->
      match f.ast with
      | Source.Signature s ->
          Hashtbl.replace sigs (normalize f.path) (sig_surface s)
      | Source.Structure _ -> ())
    files;
  let units = Hashtbl.create 16 in
  let defs = Hashtbl.create 256 in
  let guards = Hashtbl.create 16 in
  let unguarded = ref [] in
  List.iter
    (fun (f : Source.file) ->
      match f.ast with
      | Source.Signature _ -> ()
      | Source.Structure str ->
          let unit_path = normalize f.path in
          let unit_defs, aliases, unit_guards, unit_unguarded =
            collect_unit ~unit_path str
          in
          let mli = Hashtbl.find_opt sigs (unit_path ^ "i") in
          Hashtbl.replace units unit_path
            {
              u_path = unit_path;
              u_dir = Filename.dirname unit_path;
              u_aliases = aliases;
            };
          List.iter
            (fun d ->
              let d = if d.d_kind = Nested then d else refine_public ~mli d in
              Hashtbl.replace defs (key unit_path d.d_name) d)
            unit_defs;
          Hashtbl.iter
            (fun k g -> Hashtbl.replace guards k g)
            unit_guards;
          unguarded := List.rev_append unit_unguarded !unguarded)
    files;
  { units; defs; guards; unguarded = List.rev !unguarded }

let unit_guard prog unit_path field =
  Hashtbl.find_opt prog.guards (key unit_path field)

let all_defs prog = Hashtbl.fold (fun _ d acc -> d :: acc) prog.defs []

(* ------------------------------------------------------------------ *)
(* Name resolution                                                     *)
(* ------------------------------------------------------------------ *)

let uncapitalize = String.uncapitalize_ascii

(* "Jqi_util" -> "lib/util": the dune library naming convention. *)
let lib_dir head =
  if String.length head > 4 && String.starts_with ~prefix:"Jqi_" head then
    Some ("lib/" ^ String.lowercase_ascii (String.sub head 4 (String.length head - 4)))
  else None

(* Scope chain for a bare name: inside "a.b", [n] may mean "a.b.n",
   "a.n" or the toplevel "n" — innermost wins, mirroring lexical scope
   of the lifted nested definitions. *)
let resolve_bare prog unit_path ~scope n =
  let rec chain segs =
    let candidate =
      match segs with [] -> n | _ -> String.concat "." segs ^ "." ^ n
    in
    if Hashtbl.mem prog.defs (key unit_path candidate) then
      Some (Internal (unit_path, candidate))
    else
      match List.rev segs with
      | [] -> None
      | _ :: outer -> chain (List.rev outer)
  in
  chain (String.split_on_char '.' scope)

let resolve prog (u : unit_info) ~scope ~is_param parts : target =
  match parts with
  | [] -> External []
  | [ n ] when is_param n -> Param n
  | [ n ] -> (
      match resolve_bare prog u.u_path ~scope n with
      | Some t -> t
      | None -> External [ n ])
  | head :: rest -> (
      let parts =
        match List.assoc_opt head u.u_aliases with
        | Some expansion -> expansion @ rest
        | None -> parts
      in
      let dotted = String.concat "." parts in
      (* A module nested in this very unit, e.g. Framing.feed from
         elsewhere in listener.ml. *)
      if Hashtbl.mem prog.defs (key u.u_path dotted) then
        Internal (u.u_path, dotted)
      else
        match parts with
        | [] -> External parts
        | head :: rest -> (
            match (lib_dir head, rest) with
            | Some dir, sub :: fn_parts when fn_parts <> [] ->
                let upath = dir ^ "/" ^ uncapitalize sub ^ ".ml" in
                let fn = String.concat "." fn_parts in
                if Hashtbl.mem prog.defs (key upath fn) then Internal (upath, fn)
                else External parts
            | _ ->
                (* Same-directory unit module: Catalog.find from
                   lib/server/manager.ml. *)
                let upath = u.u_dir ^ "/" ^ uncapitalize head ^ ".ml" in
                let fn = String.concat "." rest in
                if (not (String.equal fn ""))
                   && Hashtbl.mem prog.defs (key upath fn)
                then Internal (upath, fn)
                else External parts))
