(** The interprocedural rule checkers R9..R12 (doc/LINTING.md):

    - R9 lock discipline: [@lint.guarded_by] fields only touched under
      their lock, no reentrant acquisition, at most one shard lock at a
      time, no returning while holding, and guard-table completeness;
    - R10 no blocking under a lock (deadlock/convoy prevention);
    - R11 sans-IO purity of lib/core, lib/relational, lib/sat;
    - R12 decoder totality: nothing raising reachable from the
      [Protocol.decode]/[Framing] surface without a handler.

    Findings come back position-sorted and deduplicated; [@lint.allow]
    and the baseline are applied by the driver. *)

(** Units whose effects are by design (the Obs/timer boundary and the
    edge loaders); pass to [Effects.build]. *)
val sanctioned : string -> bool

val check :
  Typed_source.program -> Callgraph.t -> Effects.t -> Finding.t list
