(* Interprocedural effect fixpoints over the call-graph summaries.

   Five facts are computed per definition, each by a simple round-based
   fixpoint (the call graph is shallow; rounds are capped defensively):

   - [always_held]: locks held on *every* entry to the function — a
     greatest fixpoint meeting over call sites.  Functions on the mli
     surface can be entered from anywhere, so their value is pinned to
     the empty set; private helpers start at Top and only keep what all
     their observed call sites agree on.  A helper that is only ever
     invoked inside [Shard.with_key] therefore satisfies R9 guard
     obligations without any annotation.
   - [may_enter]: locks the function may acquire, transitively — feeds
     the R9 reentrancy check at call sites.
   - [may_block]: whether a blocking operation is reachable without an
     intervening thread hop, with a witness chain — feeds R10.
   - [may_raise]: exceptions that can escape the function, after
     subtracting handlers both locally and around each call site —
     feeds R12.
   - [reaches_forbidden]: whether a concurrency/IO/clock primitive is
     reachable, including through spawned closures — feeds R11.
     Sanctioned units (the Obs boundary) contribute nothing.

   Closures handed to spawn primitives were walked with [deferred] set
   by the callgraph layer: their blocking/raising happens on another
   thread, so deferred events and edges are excluded everywhere except
   [reaches_forbidden] (spawning a domain *is* an effect). *)

(* Catch-alls over (summary option * ah) pairs are clearer than
   enumerating the absent cases; fragile-match stays off here. *)
[@@@warning "-4"]

module T = Typed_source
module Tset = Callgraph.Tset

type ah = Top | Held of Tset.t

type t = {
  ah : (string, ah) Hashtbl.t;
  enter : (string, Tset.t) Hashtbl.t;
  block : (string, string) Hashtbl.t;
  raises : (string, (string * string) list) Hashtbl.t;
  forbidden : (string, string * string) Hashtbl.t;
}

let always_held t k =
  match Hashtbl.find_opt t.ah k with Some v -> v | None -> Top

let may_enter t k =
  match Hashtbl.find_opt t.enter k with Some v -> v | None -> Tset.empty

let may_block t k = Hashtbl.find_opt t.block k

let may_raise t k =
  match Hashtbl.find_opt t.raises k with Some v -> v | None -> []

let reaches_forbidden t k = Hashtbl.find_opt t.forbidden k

let short_fn unit_path name =
  Printf.sprintf "%s:%s" (Filename.basename unit_path) name

let line (loc : Location.t) = loc.loc_start.Lexing.pos_lnum

let sorted_keys (cg : Callgraph.t) =
  Hashtbl.fold (fun k _ l -> k :: l) cg.summaries []
  |> List.sort String.compare

let summary_of (cg : Callgraph.t) k = Hashtbl.find_opt cg.summaries k

let internal_target (cg : Callgraph.t) (s : Callgraph.site) =
  match s.s_target with
  | T.Internal (tu, tf) ->
      let k = T.key tu tf in
      if Hashtbl.mem cg.summaries k then Some (k, tu, tf) else None
  | T.Param _ | T.External _ -> None

let max_rounds = 64

(* ------------------------------------------------------------------ *)
(* always_held: greatest fixpoint, meet over call sites                *)
(* ------------------------------------------------------------------ *)

let compute_ah cg keys =
  let ah = Hashtbl.create 256 in
  List.iter
    (fun k ->
      match summary_of cg k with
      | Some sm ->
          Hashtbl.replace ah k
            (if sm.Callgraph.sm_def.T.d_public then Held Tset.empty else Top)
      | None -> ())
    keys;
  let round () =
    let contributions = Hashtbl.create 64 in
    List.iter
      (fun caller ->
        match (summary_of cg caller, Hashtbl.find_opt ah caller) with
        | Some sm, Some (Held base) ->
            List.iter
              (fun (s : Callgraph.site) ->
                match internal_target cg s with
                | Some (k, _, _) ->
                    let contrib = Tset.union base s.s_must in
                    let v =
                      match Hashtbl.find_opt contributions k with
                      | None -> contrib
                      | Some t -> Tset.inter t contrib
                    in
                    Hashtbl.replace contributions k v
                | None -> ())
              sm.Callgraph.sm_calls
        | _ -> ())
      keys;
    let changed = ref false in
    List.iter
      (fun k ->
        match summary_of cg k with
        | Some sm when not sm.Callgraph.sm_def.T.d_public -> (
            match Hashtbl.find_opt contributions k with
            | Some toks ->
                let next = Held toks in
                if Hashtbl.find_opt ah k <> Some next then (
                  Hashtbl.replace ah k next;
                  changed := true)
            | None -> ())
        | _ -> ())
      keys;
    !changed
  in
  let rec fix n = if n < max_rounds && round () then fix (n + 1) in
  fix 0;
  ah

(* ------------------------------------------------------------------ *)
(* may_enter: least fixpoint, union over acquisitions and callees      *)
(* ------------------------------------------------------------------ *)

let compute_enter cg keys =
  let enter = Hashtbl.create 256 in
  let get k =
    match Hashtbl.find_opt enter k with Some v -> v | None -> Tset.empty
  in
  let round () =
    let changed = ref false in
    List.iter
      (fun k ->
        match summary_of cg k with
        | Some sm ->
            let direct =
              List.fold_left
                (fun s (a : Callgraph.acquire) ->
                  if a.a_deferred then s else Tset.add a.a_tok s)
                Tset.empty sm.Callgraph.sm_acquires
            in
            let via =
              List.fold_left
                (fun s (site : Callgraph.site) ->
                  if site.s_deferred then s
                  else
                    match internal_target cg site with
                    | Some (tk, _, _) -> Tset.union s (get tk)
                    | None -> s)
                direct sm.Callgraph.sm_calls
            in
            if not (Tset.subset via (get k)) then (
              Hashtbl.replace enter k (Tset.union via (get k));
              changed := true)
        | None -> ())
      keys;
    !changed
  in
  let rec fix n = if n < max_rounds && round () then fix (n + 1) in
  fix 0;
  enter

(* ------------------------------------------------------------------ *)
(* may_block: reachability with witness chain                          *)
(* ------------------------------------------------------------------ *)

let compute_block cg keys =
  let block = Hashtbl.create 64 in
  List.iter
    (fun k ->
      match summary_of cg k with
      | Some sm -> (
          match
            List.find_opt
              (fun (b : Callgraph.blocking) -> not b.b_deferred)
              sm.Callgraph.sm_blocking
          with
          | Some b ->
              Hashtbl.replace block k
                (Printf.sprintf "%s (line %d)" b.b_what (line b.b_loc))
          | None -> ())
      | None -> ())
    keys;
  let round () =
    let changed = ref false in
    List.iter
      (fun k ->
        if not (Hashtbl.mem block k) then
          match summary_of cg k with
          | Some sm ->
              let found =
                List.find_map
                  (fun (s : Callgraph.site) ->
                    if s.s_deferred then None
                    else
                      match internal_target cg s with
                      | Some (tk, tu, tf) -> (
                          match Hashtbl.find_opt block tk with
                          | Some w ->
                              Some (Printf.sprintf "%s -> %s" (short_fn tu tf) w)
                          | None -> None)
                      | None -> None)
                  sm.Callgraph.sm_calls
              in
              (match found with
              | Some w ->
                  Hashtbl.replace block k w;
                  changed := true
              | None -> ())
          | None -> ())
      keys;
    !changed
  in
  let rec fix n = if n < max_rounds && round () then fix (n + 1) in
  fix 0;
  block

(* ------------------------------------------------------------------ *)
(* may_raise: escaping exceptions with witness chains                  *)
(* ------------------------------------------------------------------ *)

let caught_at caught exn =
  List.exists (String.equal "*") caught
  || ((not (String.equal exn "*")) && List.exists (String.equal exn) caught)

let compute_raise cg keys =
  let raises = Hashtbl.create 64 in
  List.iter
    (fun k ->
      match summary_of cg k with
      | Some sm ->
          let direct =
            List.fold_left
              (fun l (exn, loc, deferred) ->
                if deferred || List.mem_assoc exn l then l
                else (exn, Printf.sprintf "%s (line %d)" exn (line loc)) :: l)
              [] sm.Callgraph.sm_raises
          in
          if direct <> [] then Hashtbl.replace raises k (List.rev direct)
      | None -> ())
    keys;
  let round () =
    let changed = ref false in
    List.iter
      (fun k ->
        match summary_of cg k with
        | Some sm ->
            let cur =
              match Hashtbl.find_opt raises k with Some l -> l | None -> []
            in
            let next =
              List.fold_left
                (fun curl (s : Callgraph.site) ->
                  if s.s_deferred then curl
                  else
                    match internal_target cg s with
                    | Some (tk, tu, tf) ->
                        let callee =
                          match Hashtbl.find_opt raises tk with
                          | Some l -> l
                          | None -> []
                        in
                        List.fold_left
                          (fun curl (exn, w) ->
                            if
                              caught_at s.s_caught exn
                              || List.mem_assoc exn curl
                            then curl
                            else
                              ( exn,
                                Printf.sprintf "%s -> %s" (short_fn tu tf) w )
                              :: curl)
                          curl callee
                    | None -> curl)
                cur sm.Callgraph.sm_calls
            in
            (* the fold threads [cur] through physically when it adds
               nothing, so growth is a pointer comparison *)
            if next != cur then (
              Hashtbl.replace raises k next;
              changed := true)
        | None -> ())
      keys;
    !changed
  in
  let rec fix n = if n < max_rounds && round () then fix (n + 1) in
  fix 0;
  raises

(* ------------------------------------------------------------------ *)
(* reaches_forbidden: R11 reachability (deferred edges included)       *)
(* ------------------------------------------------------------------ *)

let compute_forbidden cg keys ~sanctioned =
  let forbidden = Hashtbl.create 64 in
  List.iter
    (fun k ->
      match summary_of cg k with
      | Some sm -> (
          if not (sanctioned sm.Callgraph.sm_def.T.d_unit) then
            match sm.Callgraph.sm_forbidden with
            | (what, loc) :: _ ->
                Hashtbl.replace forbidden k
                  (what, Printf.sprintf "%s (line %d)" what (line loc))
            | [] -> ())
      | None -> ())
    keys;
  let round () =
    let changed = ref false in
    List.iter
      (fun k ->
        if not (Hashtbl.mem forbidden k) then
          match summary_of cg k with
          | Some sm when not (sanctioned sm.Callgraph.sm_def.T.d_unit) ->
              let found =
                List.find_map
                  (fun (s : Callgraph.site) ->
                    match internal_target cg s with
                    | Some (tk, tu, tf) -> (
                        match Hashtbl.find_opt forbidden tk with
                        | Some (what, w) ->
                            Some
                              ( what,
                                Printf.sprintf "%s -> %s" (short_fn tu tf) w )
                        | None -> None)
                    | None -> None)
                  sm.Callgraph.sm_calls
              in
              (match found with
              | Some entry ->
                  Hashtbl.replace forbidden k entry;
                  changed := true
              | None -> ())
          | _ -> ())
      keys;
    !changed
  in
  let rec fix n = if n < max_rounds && round () then fix (n + 1) in
  fix 0;
  forbidden

let build (cg : Callgraph.t) ~sanctioned =
  let keys = sorted_keys cg in
  {
    ah = compute_ah cg keys;
    enter = compute_enter cg keys;
    block = compute_block cg keys;
    raises = compute_raise cg keys;
    forbidden = compute_forbidden cg keys ~sanctioned;
  }
