(** Rendering.  All functions return strings; the CLI owns stdout. *)

(** Per-rule counts, sorted by rule id. *)
val count_by_rule : Finding.t list -> (string * int) list

(** One line per fresh finding with its hint, stale-baseline notes, and a
    summary line. *)
val human :
  files:int ->
  total:int ->
  fresh:Finding.t list ->
  stale:Baseline.entry list ->
  string

(** GitHub workflow commands ([::error file=...]) for inline annotations. *)
val github : Finding.t list -> string

(** Full machine-readable report (all findings, fresh subset, counts,
    wall time, and — when the interprocedural pass ran — its summary
    object under ["analysis"]). *)
val json :
  ?wall_ms:float ->
  ?analysis:Jqi_util.Json.t ->
  files:int ->
  findings:Finding.t list ->
  fresh:Finding.t list ->
  stale:Baseline.entry list ->
  unit ->
  string
