(** A lint finding: one rule violation at one source location. *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 0-based *)
  rule : string;  (** "R1".."R8", or "P0" for parse errors *)
  message : string;
  hint : string;
}

val make :
  file:string ->
  line:int ->
  col:int ->
  rule:string ->
  message:string ->
  hint:string ->
  t

(** Position order (file, line, col, rule); total and deterministic. *)
val compare : t -> t -> int

val to_json : t -> Jqi_util.Json.t
val pp : Format.formatter -> t -> unit
