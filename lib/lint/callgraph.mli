(** Per-function summaries for the interprocedural rules: a small
    abstract interpreter tracks the set of locks held through each
    definition's control flow and records the events R9..R12 consume —
    acquisitions, guarded-field accesses, blocking operations, effectful
    identifiers, uncaught raises, and call sites with the lock set in
    force.  Lock-scoped wrapper functions (a parameter always invoked
    under the same locks) are discovered by fixpoint so call sites
    passing closures to them analyze those closures under the wrapper's
    locks. *)

module Tok : sig
  type kind = Kmutex | Kshard

  type t = { unit_path : string; name : string; kind : kind }

  (** Ordered by (unit, name); [kind] is display-only. *)
  val compare : t -> t -> int

  val pp : t -> string
end

module Tset : Set.S with type elt = Tok.t

val pp_tokens : Tset.t -> string

type site = {
  s_parts : string list;
  s_target : Typed_source.target;
  s_loc : Location.t;
  s_must : Tset.t;
  s_caught : string list;
  s_deferred : bool;
}

type acquire = {
  a_tok : Tok.t;
  a_held : Tset.t;
  a_loc : Location.t;
  a_deferred : bool;
}

type access = {
  x_field : string;
  x_guard : Tok.t;
  x_must : Tset.t;
  x_loc : Location.t;
}

type blocking = {
  b_what : string;
  b_self : Tok.t option;
  b_must : Tset.t;
  b_loc : Location.t;
  b_deferred : bool;
}

type summary = {
  sm_def : Typed_source.def;
  sm_calls : site list;
  sm_acquires : acquire list;
  sm_accesses : access list;
  sm_blocking : blocking list;
  sm_forbidden : (string * Location.t) list;
  sm_raises : (string * Location.t * bool) list;
  sm_exit_may : Tset.t;
}

type t = {
  summaries : (string, summary) Hashtbl.t;
  wrappers : (string, (string * Tset.t) list) Hashtbl.t;
  rounds : int;
}

val summary : t -> Typed_source.def -> summary option
val build : Typed_source.program -> t
