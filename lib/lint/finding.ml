(* A lint finding: one violation of one rule at one source location.

   Findings are value types shared by every stage of the pipeline
   (rules -> suppression -> baseline -> report), so they carry everything a
   reporter needs and nothing tied to the compiler-libs parsetree. *)

type t = {
  file : string;  (* path as given on the command line, '/'-separated *)
  line : int;  (* 1-based *)
  col : int;  (* 0-based, matching compiler convention *)
  rule : string;  (* "R1".."R8" or "P0" for parse errors *)
  message : string;  (* what is wrong, one line *)
  hint : string;  (* how to fix it, one line *)
}

let make ~file ~line ~col ~rule ~message ~hint =
  { file; line; col; rule; message; hint }

(* Order findings by position then rule id, so reports are deterministic
   and baseline excess is attributed to the last findings of a file. *)
let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c else String.compare a.rule b.rule

let to_json f =
  Jqi_util.Json.Obj
    [
      ("file", Jqi_util.Json.Str f.file);
      ("line", Jqi_util.Json.int f.line);
      ("col", Jqi_util.Json.int f.col);
      ("rule", Jqi_util.Json.Str f.rule);
      ("message", Jqi_util.Json.Str f.message);
      ("hint", Jqi_util.Json.Str f.hint);
    ]

let pp ppf f =
  Fmt.pf ppf "%s:%d:%d: [%s] %s" f.file f.line f.col f.rule f.message
