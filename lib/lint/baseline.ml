(* Pinned pre-existing debt.

   The baseline maps (file, rule) to an allowed finding count, so a clean
   CI run means "no NEW violations" without forcing a big-bang cleanup.
   Counts — not line numbers — are recorded: unrelated edits move lines
   around freely, while introducing one more violation of a rule in a file
   always breaks the budget.  When a count drops, the run reports the
   entry as stale so the budget can be ratcheted down. *)

module Json = Jqi_util.Json

type entry = { file : string; rule : string; count : int }
type t = entry list  (* sorted by (file, rule), counts > 0 *)

let empty = []

let compare_entry a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c else String.compare a.rule b.rule

let of_findings findings =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun (f : Finding.t) ->
      let key = (f.file, f.rule) in
      let n = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
      Hashtbl.replace tbl key (n + 1))
    findings;
  Hashtbl.fold (fun (file, rule) count acc -> { file; rule; count } :: acc) tbl []
  |> List.sort compare_entry

let allowed t ~file ~rule =
  match
    List.find_opt (fun e -> String.equal e.file file && String.equal e.rule rule) t
  with
  | Some e -> e.count
  | None -> 0

(* Split current findings into the tolerated prefix and the fresh excess,
   per (file, rule): with a budget of k, the first k findings (in source
   order) are tolerated and the rest are fresh.  Also report stale
   entries — budgets no longer fully used. *)
let apply t findings =
  let findings = List.sort Finding.compare findings in
  let used = Hashtbl.create 64 in
  let fresh =
    List.filter
      (fun (f : Finding.t) ->
        let key = (f.Finding.file, f.Finding.rule) in
        let n = Option.value ~default:0 (Hashtbl.find_opt used key) in
        Hashtbl.replace used key (n + 1);
        n >= allowed t ~file:f.Finding.file ~rule:f.Finding.rule)
      findings
  in
  let stale =
    List.filter
      (fun e ->
        Option.value ~default:0 (Hashtbl.find_opt used (e.file, e.rule)) < e.count)
      t
  in
  (fresh, stale)

let entry_to_json e =
  Json.Obj
    [
      ("file", Json.Str e.file);
      ("rule", Json.Str e.rule);
      ("count", Json.int e.count);
    ]

let to_json t =
  Json.Obj
    [ ("version", Json.int 1); ("entries", Json.List (List.map entry_to_json t)) ]

let of_json j =
  let as_str = function
    | Json.Str s -> Some s
    | Json.Null | Json.Bool _ | Json.Num _ | Json.List _ | Json.Obj _ -> None
  in
  let entry e =
    match
      ( Option.bind (Json.member "file" e) as_str,
        Option.bind (Json.member "rule" e) as_str,
        Option.bind (Json.member "count" e) Json.to_int )
    with
    | Some file, Some rule, Some count when count > 0 ->
        Some { file; rule; count }
    | (Some _ | None), (Some _ | None), (Some _ | None) -> None
  in
  match Json.member "entries" j with
  | Some (Json.List es) ->
      let entries = List.filter_map entry es in
      if List.length entries = List.length es then
        Ok (List.sort compare_entry entries)
      else Error "baseline: malformed entry"
  | Some (Json.Null | Json.Bool _ | Json.Num _ | Json.Str _ | Json.Obj _)
  | None ->
      Error "baseline: missing \"entries\" list"

let load path =
  match Json.load_file path with
  | j -> of_json j
  | exception Sys_error msg -> Error msg
  | exception Json.Parse_error { position; message } ->
      Error (Printf.sprintf "baseline %s: %s at offset %d" path message position)

let save path t = Json.save_file path (to_json t)

let pp_entry ppf e = Fmt.pf ppf "%s %s x%d" e.file e.rule e.count
