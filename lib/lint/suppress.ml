(* [@lint.allow "R2"] suppression scopes.

   An attribute attached to an expression, pattern, value binding or
   module binding suppresses the named rules inside that node's source
   range; a floating [@@@lint.allow "R3"] suppresses them for the whole
   file.  A bare [@lint.allow] (no payload) suppresses every rule — use
   it sparingly.  Suppressions are collected from the same parsetree the
   rules run on, so they cannot drift from the code. *)

(* Matching [Parsetree] exhaustively is impractical — its variants have
   dozens of constructors and extend with the language — so catch-alls
   are the norm here; fragile-match stays off for this file only. *)
[@@@warning "-4"]

open Parsetree

type scope = {
  rules : string list;  (* [] = every rule *)
  whole_file : bool;
  start_line : int;
  start_col : int;
  end_line : int;
  end_col : int;
}

let attr_name = "lint.allow"

(* Payload: a string constant or a tuple of string constants. *)
let payload_rules (p : payload) : string list option =
  let const e =
    match e.pexp_desc with
    | Pexp_constant (Pconst_string (s, _, _)) -> Some s
    | _ -> None
  in
  match p with
  | PStr [] -> Some []
  | PStr [ { pstr_desc = Pstr_eval (e, _); _ } ] -> (
      match e.pexp_desc with
      | Pexp_constant (Pconst_string (s, _, _)) -> Some [ s ]
      | Pexp_tuple es ->
          let ss = List.filter_map const es in
          if List.length ss = List.length es then Some ss else None
      | _ -> None)
  | _ -> None

let scope_of_loc ~whole_file rules (loc : Location.t) =
  {
    rules;
    whole_file;
    start_line = loc.loc_start.Lexing.pos_lnum;
    start_col = loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol;
    end_line = loc.loc_end.Lexing.pos_lnum;
    end_col = loc.loc_end.Lexing.pos_cnum - loc.loc_end.Lexing.pos_bol;
  }

let scopes_of_attrs ~whole_file (host_loc : Location.t) attrs acc =
  List.fold_left
    (fun acc (a : attribute) ->
      if String.equal a.attr_name.txt attr_name then
        match payload_rules a.attr_payload with
        | Some rules -> scope_of_loc ~whole_file rules host_loc :: acc
        | None -> acc
      else acc)
    acc attrs

let collect (str : structure) : scope list =
  let acc = ref [] in
  let super = Ast_iterator.default_iterator in
  let it =
    {
      super with
      expr =
        (fun it e ->
          acc := scopes_of_attrs ~whole_file:false e.pexp_loc e.pexp_attributes !acc;
          super.expr it e);
      pat =
        (fun it p ->
          acc := scopes_of_attrs ~whole_file:false p.ppat_loc p.ppat_attributes !acc;
          super.pat it p);
      value_binding =
        (fun it vb ->
          acc := scopes_of_attrs ~whole_file:false vb.pvb_loc vb.pvb_attributes !acc;
          super.value_binding it vb);
      module_binding =
        (fun it mb ->
          acc := scopes_of_attrs ~whole_file:false mb.pmb_loc mb.pmb_attributes !acc;
          super.module_binding it mb);
      structure_item =
        (fun it si ->
          (match si.pstr_desc with
          | Pstr_attribute a when String.equal a.attr_name.txt attr_name -> (
              match payload_rules a.attr_payload with
              | Some rules ->
                  acc := scope_of_loc ~whole_file:true rules si.pstr_loc :: !acc
              | None -> ())
          | _ -> ());
          super.structure_item it si);
    }
  in
  it.structure it str;
  !acc

let covers (s : scope) (f : Finding.t) =
  (List.is_empty s.rules || List.exists (String.equal f.Finding.rule) s.rules)
  && (s.whole_file
     ||
     let after_start =
       f.line > s.start_line || (f.line = s.start_line && f.col >= s.start_col)
     in
     let before_end =
       f.line < s.end_line || (f.line = s.end_line && f.col <= s.end_col)
     in
     after_start && before_end)

(* Drop the findings of one file covered by that file's scopes. *)
let filter scopes findings =
  List.filter (fun f -> not (List.exists (fun s -> covers s f) scopes)) findings

let of_file (f : Source.file) =
  match f.ast with Structure str -> collect str | Signature _ -> []
