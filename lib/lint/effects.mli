(** Interprocedural effect fixpoints over [Callgraph] summaries: locks
    always held on entry (meet over call sites), locks a function may
    acquire transitively, blocking reachability, escaping exceptions,
    and forbidden-effect reachability — each keyed by
    [Typed_source.key unit name] and carrying a human-readable witness
    chain where a rule message needs one.  Events recorded inside
    closures handed to spawn primitives are excluded from blocking and
    raising (they happen on another thread) but still count as
    forbidden effects. *)

type ah = Top | Held of Callgraph.Tset.t

type t

(** [Top] means "no call site observed" (an unreachable private helper):
    guard checks treat it as unknown and stay silent. *)
val always_held : t -> string -> ah

val may_enter : t -> string -> Callgraph.Tset.t

(** Witness chain like ["respond -> pool.ml:submit -> Condition.wait
    (line 120)"]. *)
val may_block : t -> string -> string option

(** Escaping exceptions with witnesses, handlers already subtracted. *)
val may_raise : t -> string -> (string * string) list

val reaches_forbidden : t -> string -> (string * string) option

(** [sanctioned] names units (by path) whose effects are by design —
    the Obs/timer boundary — and contribute nothing to
    [reaches_forbidden]. *)
val build : Callgraph.t -> sanctioned:(string -> bool) -> t
