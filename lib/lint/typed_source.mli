(** Whole-program "typing lite" layer for the interprocedural rules
    (R9..R12): per-unit function tables with nested functions lifted
    under dotted names, [@lint.guarded_by] field-guard tables, the mli
    public surface, and deterministic name resolution from a use site to
    the defining unit — no cmt artifacts required. *)

type fn_kind = Toplevel | In_module | Nested

type param = { p_name : string option; p_label : Asttypes.arg_label }

type def = {
  d_unit : string;  (** normalized .ml path *)
  d_name : string;  (** dotted: "find", "Framing.feed", "submit.job" *)
  d_kind : fn_kind;
  d_params : param list;  (** [] for non-function bindings *)
  d_body : Parsetree.expression;  (** full RHS, fun chain included *)
  d_loc : Location.t;
  d_public : bool;  (** on the unit's mli surface (or no mli exists) *)
}

type unit_info = {
  u_path : string;
  u_dir : string;
  u_aliases : (string * string list) list;
}

type guard = { g_lock : string; g_loc : Location.t }

(** A mutable field sharing a record with a mutex but carrying neither a
    [@lint.guarded_by] nor a field-level [@lint.allow "R9"]. *)
type unguarded = {
  ug_unit : string;
  ug_field : string;
  ug_mutex : string;
  ug_loc : Location.t;
}

type program = {
  units : (string, unit_info) Hashtbl.t;
  defs : (string, def) Hashtbl.t;  (** key: unit ^ "|" ^ name *)
  guards : (string, guard) Hashtbl.t;  (** key: unit ^ "|" ^ field *)
  unguarded : unguarded list;
}

type target =
  | Internal of string * string  (** unit path, def name *)
  | Param of string
  | External of string list

val key : string -> string -> string
val lid_parts : Longident.t -> string list

(** Split a binding RHS into its parameter chain and inner body.
    [Pexp_function] counts as one anonymous parameter. *)
val peel_params : Parsetree.expression -> param list * Parsetree.expression

val binding_name : Parsetree.value_binding -> string option
val is_function : Parsetree.expression -> bool
val normalize : string -> string

(** Build the program view from parsed files (both .ml and .mli). *)
val load : Source.file list -> program

val find_def : program -> string -> string -> def option
val unit_guard : program -> string -> string -> guard option
val all_defs : program -> def list

(** Resolve an identifier path seen in [u] inside function [scope]
    (dotted name) to its definition.  [is_param] tests the enclosing
    function's parameters. *)
val resolve :
  program ->
  unit_info ->
  scope:string ->
  is_param:(string -> bool) ->
  string list ->
  target
