(* The rule catalog and its parsetree implementations.

   Every rule is syntactic: it sees the parsetree of one file (plus, for
   R6, the project file list) and never type information.  That makes the
   checks fast and predictable but deliberately pessimistic — a flagged
   site that is provably fine is annotated with [@lint.allow "Rn"] and a
   proof comment rather than silenced globally (see doc/LINTING.md).

   Rule summary:
     R1  no polymorphic =/<>/compare/Hashtbl.hash where Value.t flows
     R2  no raising partial stdlib calls in lib/ (use _opt variants)
     R3  no List.length / @ / List.append inside loop bodies (quadratic)
     R4  no wall clocks or ambient randomness outside timer/obs
     R5  no stdout printing in lib/ outside the table/chart renderers
     R6  every lib/ module has an .mli
     R7  no Obj.magic / Obj.repr / Obj.obj
     R8  no catch-all try ... with _ -> *)

(* Matching [Parsetree] exhaustively is impractical — its variants have
   dozens of constructors and extend with the language — so catch-alls
   are the norm here; fragile-match stays off for this file only. *)
[@@@warning "-4"]

open Parsetree

type rule = { id : string; title : string; hint : string }

let catalog =
  [
    {
      id = "R1";
      title = "polymorphic comparison in a Value-handling module";
      hint =
        "use Value.eq/Value.equal/Value.compare (or Int.equal, String.equal, \
         ...); polymorphic = treats Null = Null as true";
    };
    {
      id = "R2";
      title = "raising partial function in lib/";
      hint =
        "use the _opt variant and handle None, or [@lint.allow \"R2\"] with \
         a comment proving the call total";
    };
    {
      id = "R3";
      title = "List.length/@/List.append inside a loop body";
      hint =
        "hoist it out of the loop or keep a counter/accumulator — this is \
         the O(n^2) shape of the PR 1 IGS sampling-loop bug";
    };
    {
      id = "R4";
      title = "nondeterministic clock or entropy source";
      hint =
        "take a Util.Prng.t argument or go through Util.Timer/Obs — traces \
         and QCheck replays must be reproducible";
    };
    {
      id = "R5";
      title = "direct stdout printing in lib/";
      hint = "return strings, use Fmt/Logs, or render via Ascii_table/Chart";
    };
    {
      id = "R6";
      title = "lib/ module without an .mli";
      hint = "add an interface file pinning the public surface";
    };
    {
      id = "R7";
      title = "unsafe Obj primitive";
      hint = "restructure the types; Obj.magic is never load-bearing here";
    };
    {
      id = "R8";
      title = "catch-all exception handler";
      hint = "match the specific exceptions; with _ -> hides real bugs";
    };
    {
      id = "R9";
      title = "lock discipline around [@lint.guarded_by] state";
      hint =
        "touch guarded fields only inside Mutex.protect / Shard.with_key \
         critical sections, never re-acquire a held lock, and hold at most \
         one shard lock at a time (lib/server/shard.mli contract)";
    };
    {
      id = "R10";
      title = "blocking operation reachable while holding a lock";
      hint =
        "release the mutex before IO, Pool.submit, joins, or waiting on a \
         foreign condition — blocking under a lock convoys every other \
         domain";
    };
    {
      id = "R11";
      title = "sans-IO tier reaching IO, threads, or ambient clocks";
      hint =
        "lib/core, lib/relational and lib/sat must stay pure: inject effects \
         from the service layer or route them through the Obs boundary";
    };
    {
      id = "R12";
      title = "exception reachable from the Protocol.decode/Framing surface";
      hint =
        "decoders are total: return Error frames for garbage input; add a \
         handler or use the _opt variant on the raising path";
    };
  ]

let find_rule id = List.find_opt (fun r -> String.equal r.id id) catalog

(* ------------------------------------------------------------------ *)
(* Path scoping                                                        *)
(* ------------------------------------------------------------------ *)

let normalize path =
  let path =
    if String.length path > 1 && path.[0] = '.' && path.[1] = '/' then
      String.sub path 2 (String.length path - 2)
    else path
  in
  String.map (fun c -> if c = '\\' then '/' else c) path

let in_dir dir path = String.starts_with ~prefix:(dir ^ "/") (normalize path)
let is_lib path = in_dir "lib" path
let is_test path = in_dir "test" path
let has_suffix s path = String.ends_with ~suffix:s (normalize path)

(* R4: the only modules allowed to read a wall clock. *)
let clock_allowed path =
  has_suffix "lib/util/timer.ml" path || in_dir "lib/obs" path

(* R5: the only lib/ modules allowed to write to stdout. *)
let print_allowed path =
  has_suffix "lib/util/ascii_table.ml" path || has_suffix "lib/util/chart.ml" path

(* ------------------------------------------------------------------ *)
(* Longident helpers                                                   *)
(* ------------------------------------------------------------------ *)

let rec lid_parts = function
  | Longident.Lident s -> [ s ]
  | Longident.Ldot (l, s) -> lid_parts l @ [ s ]
  | Longident.Lapply (a, b) -> lid_parts a @ lid_parts b

let last_two parts =
  match List.rev parts with
  | [] -> ("", "")
  | [ f ] -> ("", f)
  | f :: m :: _ -> (m, f)

(* ------------------------------------------------------------------ *)
(* Per-rule ident classification                                       *)
(* ------------------------------------------------------------------ *)

(* R2: partial stdlib calls that raise instead of returning an option.
   [M.find] is matched for Hashtbl and for *_map / *Map modules (the
   functor-made maps of the engine); find_opt never matches. *)
let partial_call parts =
  let m, f = last_two parts in
  match (m, f) with
  | "List", ("hd" | "tl" | "nth" | "find" | "assoc") -> true
  | "Option", "get" -> true
  | "Hashtbl", "find" -> true
  | "Stack", ("pop" | "top") -> true
  | "Queue", ("pop" | "take" | "peek") -> true
  | m, "find" ->
      let m = String.lowercase_ascii m in
      String.equal m "map" || String.ends_with ~suffix:"map" m
  | _ -> false

(* R4: ambient entropy and wall clocks.  The splitmix64 Util.Prng and the
   Obs clock are the only sanctioned sources. *)
let nondeterministic parts =
  List.exists (String.equal "Random") parts
  ||
  match last_two parts with
  | "Unix", ("gettimeofday" | "time") -> true
  | "Sys", "time" -> true
  | _ -> false

(* R5: direct stdout output. *)
let stdout_print parts =
  match last_two parts with
  | "Printf", "printf" -> true
  | "Format", ("printf" | "print_string" | "print_newline") -> true
  | ( "",
      ( "print_string" | "print_endline" | "print_newline" | "print_char"
      | "print_int" | "print_float" | "print_bytes" ) ) ->
      true
  | _ -> false

(* R7: unsafe coercions. *)
let obj_primitive parts =
  match last_two parts with
  | "Obj", ("magic" | "repr" | "obj") -> true
  | _ -> false

(* R3: calls that are linear in a list and therefore quadratic in a loop. *)
let linear_list_op parts =
  match last_two parts with
  | "List", ("length" | "append") -> true
  | "", "@" -> true
  | _ -> false

(* R3: higher-order functions whose function-literal argument is a loop
   body, plus the engine's own iteration entry points. *)
let is_hof_loop parts =
  match last_two parts with
  | m, ( "iter" | "iteri" | "map" | "mapi" | "fold" | "fold_left"
       | "fold_right" | "filter" | "filter_map" | "concat_map" | "for_all"
       | "exists" | "partition" | "init" ) ->
      not (String.equal m "")
  | _ -> false

(* R1: the polymorphic structural operations. *)
let poly_eq_op = function "=" | "<>" -> true | _ -> false

let poly_compare parts =
  match parts with
  | [ "compare" ] | [ "Stdlib"; "compare" ] -> true
  | _ -> false

let poly_hash parts =
  match parts with
  | [ "Hashtbl"; "hash" ] | [ "Stdlib"; "Hashtbl"; "hash" ] -> true
  | _ -> false

(* R1 exemption: comparing against a shallow literal (0, "x", [], None,
   a nullary constructor...) never recurses into a Value.t.  The one
   nullary constructor NOT exempted is [Null]: in a Value-handling module
   [x = Value.Null] is exactly the comparison where polymorphic = lies
   (Null = Null is true, join semantics say NULL never matches). *)
let rec shallow_operand e =
  match e.pexp_desc with
  | Pexp_constant _ -> true
  | Pexp_construct (l, None) -> (
      match List.rev (lid_parts l.txt) with
      | "Null" :: _ -> false
      | _ -> true)
  | Pexp_variant (_, None) -> true
  | Pexp_constraint (e, _) -> shallow_operand e
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Handles-Value detection (R1 scope)                                  *)
(* ------------------------------------------------------------------ *)

(* A module "handles Value.t/Tuple.t" if any identifier path in it
   mentions a Value or Tuple module (aliases like
   [module Tuple = Jqi_relational.Tuple] are caught through their
   right-hand side), or if it *is* the implementation of one. *)
let mentions_value_ident parts =
  List.exists (fun p -> String.equal p "Value" || String.equal p "Tuple") parts

let handles_value path (str : structure) =
  has_suffix "relational/value.ml" path
  || has_suffix "relational/tuple.ml" path
  ||
  let found = ref false in
  let lid l = if mentions_value_ident (lid_parts l) then found := true in
  let super = Ast_iterator.default_iterator in
  let it =
    {
      super with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident l | Pexp_construct (l, _) | Pexp_field (_, l) -> lid l.txt
          | _ -> ());
          super.expr it e);
      typ =
        (fun it t ->
          (match t.ptyp_desc with
          | Ptyp_constr (l, _) | Ptyp_class (l, _) -> lid l.txt
          | _ -> ());
          super.typ it t);
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_construct (l, _) -> lid l.txt
          | _ -> ());
          super.pat it p);
      module_expr =
        (fun it m ->
          (match m.pmod_desc with Pmod_ident l -> lid l.txt | _ -> ());
          super.module_expr it m);
    }
  in
  it.structure it str;
  !found

(* ------------------------------------------------------------------ *)
(* The per-file pass                                                   *)
(* ------------------------------------------------------------------ *)

let finding ~path ~loc ~rule ~message =
  let pos = loc.Location.loc_start in
  let hint = match find_rule rule with Some r -> r.hint | None -> "" in
  Finding.make ~file:path ~line:pos.Lexing.pos_lnum
    ~col:(pos.Lexing.pos_cnum - pos.Lexing.pos_bol)
    ~rule ~message ~hint

let path_str parts = String.concat "." parts

let check_structure ~path (str : structure) : Finding.t list =
  let path = normalize path in
  let out = ref [] in
  let emit ~loc ~rule message = out := finding ~path ~loc ~rule ~message :: !out in
  let value_module = handles_value path str in
  let lib = is_lib path in
  let apply_r1 = value_module && not (is_test path) in
  (* R3 context: > 0 when syntactically inside a while/for body or a
     function literal passed to an iteration combinator. *)
  let loop_depth = ref 0 in
  let in_loop body =
    incr loop_depth;
    body ();
    decr loop_depth
  in
  let check_ident ~loc parts =
    let dotted = path_str parts in
    if lib && partial_call parts then
      emit ~loc ~rule:"R2" (Printf.sprintf "raising partial call %s" dotted);
    if nondeterministic parts && not (clock_allowed path) then
      emit ~loc ~rule:"R4" (Printf.sprintf "nondeterministic %s" dotted);
    if lib && stdout_print parts && not (print_allowed path) then
      emit ~loc ~rule:"R5" (Printf.sprintf "stdout print %s" dotted);
    if obj_primitive parts then
      emit ~loc ~rule:"R7" (Printf.sprintf "unsafe %s" dotted);
    if !loop_depth > 0 && linear_list_op parts then
      emit ~loc ~rule:"R3"
        (Printf.sprintf "%s inside a loop body (quadratic pattern)" dotted);
    if apply_r1 && poly_compare parts then
      emit ~loc ~rule:"R1" "polymorphic compare in a Value-handling module";
    if apply_r1 && poly_hash parts then
      emit ~loc ~rule:"R1" "Hashtbl.hash in a Value-handling module"
  in
  let super = Ast_iterator.default_iterator in
  let rec is_fun_literal e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ -> true
    | Pexp_newtype (_, e) | Pexp_constraint (e, _) -> is_fun_literal e
    | _ -> false
  in
  let it =
    {
      super with
      expr =
        (fun it e ->
          match e.pexp_desc with
          | Pexp_ident { txt; loc } ->
              check_ident ~loc (lid_parts txt);
              super.expr it e
          | Pexp_apply
              ({ pexp_desc = Pexp_ident { txt = Longident.Lident op; loc }; _ }, args)
            when poly_eq_op op ->
              (if apply_r1 then
                 let operands =
                   List.filter_map
                     (function Asttypes.Nolabel, a -> Some a | _ -> None)
                     args
                 in
                 let safe = List.exists shallow_operand operands in
                 if not safe then
                   emit ~loc ~rule:"R1"
                     (Printf.sprintf
                        "polymorphic %s in a Value-handling module (Null %s \
                         Null is %b here)"
                        op op (String.equal op "=")));
              List.iter (fun (_, a) -> it.expr it a) args
          | Pexp_apply (f, args) ->
              let hof =
                match f.pexp_desc with
                | Pexp_ident { txt; _ } -> is_hof_loop (lid_parts txt)
                | _ -> false
              in
              it.expr it f;
              List.iter
                (fun (_, a) ->
                  if hof && is_fun_literal a then in_loop (fun () -> it.expr it a)
                  else it.expr it a)
                args
          | Pexp_while (cond, body) ->
              it.expr it cond;
              in_loop (fun () -> it.expr it body)
          | Pexp_for (pat, e1, e2, _, body) ->
              it.pat it pat;
              it.expr it e1;
              it.expr it e2;
              in_loop (fun () -> it.expr it body)
          | Pexp_try (body, cases) ->
              List.iter
                (fun c ->
                  match (c.pc_lhs.ppat_desc, c.pc_guard) with
                  | Ppat_any, None ->
                      emit ~loc:c.pc_lhs.ppat_loc ~rule:"R8"
                        "catch-all exception handler try ... with _ ->"
                  | _ -> ())
                cases;
              it.expr it body;
              List.iter (it.case it) cases
          | _ -> super.expr it e)
    }
  in
  it.structure it str;
  List.rev !out

let check_file (f : Source.file) : Finding.t list =
  match f.ast with
  | Structure str -> check_structure ~path:f.path str
  | Signature _ -> []

(* R6: every lib/ implementation ships an interface.  [paths] is the full
   discovered file list of the run. *)
let check_missing_mli paths : Finding.t list =
  let have = List.map normalize paths in
  let have_mli p = List.exists (String.equal (p ^ "i")) have in
  List.filter_map
    (fun p ->
      let p = normalize p in
      if is_lib p && String.ends_with ~suffix:".ml" p && not (have_mli p) then
        Some
          (Finding.make ~file:p ~line:1 ~col:0 ~rule:"R6"
             ~message:
               (Printf.sprintf "module %s has no interface file"
                  (Filename.remove_extension (Filename.basename p)))
             ~hint:
               (match find_rule "R6" with Some r -> r.hint | None -> ""))
      else None)
    paths
