(** The rule catalog (R1..R8) and its parsetree checks. *)

type rule = { id : string; title : string; hint : string }

val catalog : rule list
val find_rule : string -> rule option

(** Normalize a path: strip a leading "./", use '/' separators. *)
val normalize : string -> string

(** Run every expression-level rule over one parsed file.  Signatures
    produce no findings (R6 is project-level).  Findings are in source
    order; suppression attributes are NOT yet applied. *)
val check_file : Source.file -> Finding.t list

(** R6 over the full discovered path list: every [lib/**.ml] must have a
    sibling [.mli]. *)
val check_missing_mli : string list -> Finding.t list
