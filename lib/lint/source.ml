(* Source discovery and parsing.

   Files are parsed with the compiler's own front end
   (compiler-libs.common, version-pinned to the toolchain that builds the
   project — 5.1.1), so jqlint accepts exactly the syntax the build
   accepts and rules operate on the real parsetree rather than regexes.
   Parse failures are not fatal: they become "P0" findings so a broken
   file fails the lint run with a location instead of aborting it. *)

type kind = Impl | Intf

type parsed =
  | Structure of Parsetree.structure
  | Signature of Parsetree.signature

type file = { path : string; kind : kind; ast : parsed }

let kind_of_path path =
  if Filename.check_suffix path ".mli" then Some Intf
  else if Filename.check_suffix path ".ml" then Some Impl
  else None

(* Directories never worth descending into. *)
let skip_dir name =
  String.length name > 0 && (name.[0] = '.' || name.[0] = '_')

let discover roots =
  let out = ref [] in
  let rec walk path =
    match (Unix.stat path).Unix.st_kind with
    | Unix.S_DIR ->
        let entries = Sys.readdir path in
        Array.sort String.compare entries;
        Array.iter
          (fun e -> if not (skip_dir e) then walk (Filename.concat path e))
          entries
    | Unix.S_REG -> (
        match kind_of_path path with
        | Some _ -> out := path :: !out
        | None -> ())
    | Unix.S_CHR | Unix.S_BLK | Unix.S_LNK | Unix.S_FIFO | Unix.S_SOCK -> ()
    | exception Unix.Unix_error _ -> ()
  in
  List.iter walk roots;
  List.sort String.compare !out

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let parse_error_finding ~path ~line ~col msg =
  Finding.make ~file:path ~line ~col ~rule:"P0"
    ~message:(Printf.sprintf "parse error: %s" msg)
    ~hint:"fix the syntax error; jqlint parses with the project compiler"

let line_col (pos : Lexing.position) =
  (pos.Lexing.pos_lnum, pos.Lexing.pos_cnum - pos.Lexing.pos_bol)

(* Parse [source] as the contents of [path].  [path] only names the input;
   nothing is read from disk. *)
let parse_string ~path source : (file, Finding.t) result =
  match kind_of_path path with
  | None ->
      Error
        (parse_error_finding ~path ~line:1 ~col:0 "not an .ml or .mli file")
  | Some kind -> (
      let lexbuf = Lexing.from_string source in
      Lexing.set_filename lexbuf path;
      match
        match kind with
        | Impl -> Structure (Parse.implementation lexbuf)
        | Intf -> Signature (Parse.interface lexbuf)
      with
      | ast -> Ok { path; kind; ast }
      | exception Syntaxerr.Error e ->
          let loc = Syntaxerr.location_of_error e in
          let line, col = line_col loc.Location.loc_start in
          Error (parse_error_finding ~path ~line ~col "syntax error")
      | exception Lexer.Error (_, loc) ->
          let line, col = line_col loc.Location.loc_start in
          Error (parse_error_finding ~path ~line ~col "lexer error")
      | exception exn ->
          Error
            (parse_error_finding ~path ~line:1 ~col:0 (Printexc.to_string exn)))

let parse path : (file, Finding.t) result =
  match read_file path with
  | source -> parse_string ~path source
  | exception Sys_error msg -> Error (parse_error_finding ~path ~line:1 ~col:0 msg)
