(* R9..R12: the interprocedural rule checkers.

   Inputs: the [Typed_source] program view, the [Callgraph] per-function
   summaries, and the [Effects] fixpoints.  Each checker walks the
   summaries of the units in its scope and emits findings; the driver
   then applies [@lint.allow] scopes and the baseline like any other
   rule.

   Conventions shared by R9 and R10:
   - the lock set charged to an event is the local must-set at the event
     joined with [Effects.always_held] of the enclosing function; when
     the latter is Top (a private helper with no observed call site) the
     check stays silent rather than guessing;
   - self-recursive call edges are exempt from the call-site checks:
     holding your own lock while re-entering your own loop is the
     hand-over-hand worker idiom (pool.ml), and the direct checks still
     cover the body itself. *)

module T = Typed_source
module Tok = Callgraph.Tok
module Tset = Callgraph.Tset

let line_col (loc : Location.t) =
  (loc.loc_start.Lexing.pos_lnum, loc.loc_start.Lexing.pos_cnum - loc.loc_start.Lexing.pos_bol)

let finding ~rule ~unit_path ~(loc : Location.t) message =
  let hint =
    match Rules.find_rule rule with Some r -> r.Rules.hint | None -> ""
  in
  let line, col = line_col loc in
  Finding.make ~file:unit_path ~line ~col ~rule ~message ~hint

(* ------------------------------------------------------------------ *)
(* Scopes                                                              *)
(* ------------------------------------------------------------------ *)

let starts p s = String.starts_with ~prefix:p s

let locked_scope u = starts "lib/" u

let sans_io_units = [ "lib/core/"; "lib/relational/"; "lib/sat/" ]

(* Files inside the sans-IO tiers whose whole purpose is IO at the edge:
   the CSV and DIMACS loaders. *)
let sans_io_exempt = [ "lib/relational/csv.ml"; "lib/sat/dimacs.ml" ]

let sans_io_scope u =
  List.exists (fun p -> starts p u) sans_io_units
  && not (List.exists (String.equal u) sans_io_exempt)

(* Units whose effects are sanctioned by design: the Obs boundary is the
   one ambient-clock door the architecture permits (doc/OBSERVABILITY),
   and the edge loaders do IO on purpose.  Calls *into* these do not
   count as reaching a forbidden effect. *)
let sanctioned u =
  starts "lib/obs/" u
  || String.equal u "lib/util/timer.ml"
  || List.exists (String.equal u) sans_io_exempt

(* R12 entry points: the decoder surface that must be total. *)
let decoder_entry (d : T.def) =
  let depth n = List.length (String.split_on_char '.' n) in
  match d.d_unit with
  | "lib/server/protocol.ml" ->
      depth d.d_name = 1
      && (starts "decode" d.d_name || starts "parse_frame" d.d_name)
  | "lib/server/listener.ml" ->
      starts "Framing." d.d_name && depth d.d_name = 2
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Lock-set helpers                                                    *)
(* ------------------------------------------------------------------ *)

(* The effective lock set at an event, or None when entry context is
   unknown (Top). *)
let effective eff key must =
  match Effects.always_held eff key with
  | Effects.Top -> None
  | Effects.Held h -> Some (Tset.union must h)

let holds held (tok : Tok.t) = Tset.mem tok held

let self_edge (sm : Callgraph.summary) (s : Callgraph.site) =
  match s.s_target with
  | T.Internal (tu, tf) ->
      String.equal tu sm.sm_def.T.d_unit && String.equal tf sm.sm_def.T.d_name
  | T.Param _ | T.External _ -> false

let internal_key (s : Callgraph.site) =
  match s.s_target with
  | T.Internal (tu, tf) -> Some (T.key tu tf, tu, tf)
  | T.Param _ | T.External _ -> None

let short tu tf = Printf.sprintf "%s:%s" (Filename.basename tu) tf

(* ------------------------------------------------------------------ *)
(* R9 — lock discipline                                                *)
(* ------------------------------------------------------------------ *)

let check_r9 prog (cg : Callgraph.t) eff key (sm : Callgraph.summary) out =
  let u = sm.sm_def.T.d_unit in
  ignore cg;
  (* (a) guarded-field accesses must hold the declared lock *)
  List.iter
    (fun (x : Callgraph.access) ->
      match effective eff key x.x_must with
      | Some held when not (holds held x.x_guard) ->
          out
            (finding ~rule:"R9" ~unit_path:u ~loc:x.x_loc
               (Printf.sprintf
                  "field \"%s\" is accessed without holding \"%s\" (declared \
                   [@lint.guarded_by \"%s\"]); held here: {%s}"
                  x.x_field x.x_guard.Tok.name x.x_guard.Tok.name
                  (Callgraph.pp_tokens held)))
      | Some _ | None -> ())
    sm.sm_accesses;
  (* (b) no reentrant acquisition; at most one shard lock at a time *)
  List.iter
    (fun (a : Callgraph.acquire) ->
      match effective eff key a.a_held with
      | Some held ->
          if holds held a.a_tok then
            out
              (finding ~rule:"R9" ~unit_path:u ~loc:a.a_loc
                 (Printf.sprintf
                    "lock \"%s\" is acquired while already (possibly) held — \
                     reentrant locking deadlocks OCaml mutexes"
                    (Tok.pp a.a_tok)))
          else if a.a_tok.Tok.kind = Tok.Kshard then
            Tset.iter
              (fun t ->
                if t.Tok.kind = Tok.Kshard then
                  out
                    (finding ~rule:"R9" ~unit_path:u ~loc:a.a_loc
                       (Printf.sprintf
                          "shard lock \"%s\" is acquired while shard lock \
                           \"%s\" is held; the shard contract allows at most \
                           one shard lock at a time"
                          (Tok.pp a.a_tok) (Tok.pp t))))
              held
      | None -> ())
    sm.sm_acquires;
  (* (c) no call into a function that may re-acquire a lock we hold *)
  List.iter
    (fun (s : Callgraph.site) ->
      if not (self_edge sm s) then
        match internal_key s with
        | Some (tk, tu, tf) -> (
            match effective eff key s.s_must with
            | Some held ->
                let inter = Tset.inter held (Effects.may_enter eff tk) in
                Tset.choose_opt inter
                |> Option.iter (fun t ->
                       out
                         (finding ~rule:"R9" ~unit_path:u ~loc:s.s_loc
                            (Printf.sprintf
                               "call to %s may re-acquire \"%s\" which is \
                                already held here"
                               (short tu tf) (Tok.pp t))))
            | None -> ())
        | None -> ())
    sm.sm_calls;
  (* (e) the critical section must not outlive the function *)
  if not (Tset.is_empty sm.sm_exit_may) then
    out
      (finding ~rule:"R9" ~unit_path:u ~loc:sm.sm_def.T.d_loc
         (Printf.sprintf
            "\"%s\" may return while still holding {%s}; wrap the critical \
             section in Mutex.protect (or Shard.with_key) so every exit \
             releases the lock"
            sm.sm_def.T.d_name
            (Callgraph.pp_tokens sm.sm_exit_may)));
  ignore prog

(* (d) completeness: every mutable field sharing a record with a mutex
   must declare its guard (or carry a field-level allow). *)
let check_r9_completeness prog out =
  List.iter
    (fun (ug : T.unguarded) ->
      if locked_scope ug.ug_unit then
        out
          (finding ~rule:"R9" ~unit_path:ug.ug_unit ~loc:ug.ug_loc
             (Printf.sprintf
                "mutable field \"%s\" shares a record with mutex \"%s\" but \
                 declares no [@lint.guarded_by] (add the guard, or a \
                 field-level [@lint.allow \"R9\"] with a comment)"
                ug.ug_field ug.ug_mutex)))
    prog.T.unguarded

(* ------------------------------------------------------------------ *)
(* R10 — no blocking under a lock                                      *)
(* ------------------------------------------------------------------ *)

let check_r10 eff key (sm : Callgraph.summary) out =
  let u = sm.sm_def.T.d_unit in
  List.iter
    (fun (b : Callgraph.blocking) ->
      if not b.b_deferred then
        match effective eff key b.b_must with
        | Some held ->
            let held =
              match b.b_self with
              | Some s -> Tset.remove s held
              | None -> held
            in
            if not (Tset.is_empty held) then
              out
                (finding ~rule:"R10" ~unit_path:u ~loc:b.b_loc
                   (Printf.sprintf
                      "%s may block while holding {%s}; release the lock \
                       before blocking"
                      b.b_what (Callgraph.pp_tokens held)))
        | None -> ())
    sm.sm_blocking;
  List.iter
    (fun (s : Callgraph.site) ->
      if (not s.s_deferred) && not (self_edge sm s) then
        match internal_key s with
        | Some (tk, tu, tf) -> (
            match (effective eff key s.s_must, Effects.may_block eff tk) with
            | Some held, Some witness when not (Tset.is_empty held) ->
                out
                  (finding ~rule:"R10" ~unit_path:u ~loc:s.s_loc
                     (Printf.sprintf
                        "call to %s may block while holding {%s}: %s"
                        (short tu tf)
                        (Callgraph.pp_tokens held)
                        witness))
            | _ -> ())
        | None -> ())
    sm.sm_calls

(* ------------------------------------------------------------------ *)
(* R11 — sans-IO purity of core tiers                                  *)
(* ------------------------------------------------------------------ *)

let check_r11 eff key (sm : Callgraph.summary) out =
  ignore key;
  let u = sm.sm_def.T.d_unit in
  if sans_io_scope u then (
    List.iter
      (fun (what, loc) ->
        out
          (finding ~rule:"R11" ~unit_path:u ~loc
             (Printf.sprintf
                "sans-IO tier reaches %s; core/relational/sat must stay free \
                 of IO, threads, and ambient clocks"
                what)))
      sm.sm_forbidden;
    List.iter
      (fun (s : Callgraph.site) ->
        match internal_key s with
        | Some (tk, tu, tf) -> (
            (* In-scope callees are flagged at their own definition;
               sanctioned units are the permitted effect boundary. *)
            if (not (sans_io_scope tu)) && not (sanctioned tu) then
              match Effects.reaches_forbidden eff tk with
              | Some (what, witness) ->
                  out
                    (finding ~rule:"R11" ~unit_path:u ~loc:s.s_loc
                       (Printf.sprintf
                          "sans-IO tier calls %s which reaches %s: %s"
                          (short tu tf) what witness))
              | None -> ())
        | None -> ())
      sm.sm_calls)

(* ------------------------------------------------------------------ *)
(* R12 — decoder totality                                              *)
(* ------------------------------------------------------------------ *)

let check_r12 eff key (sm : Callgraph.summary) out =
  if decoder_entry sm.sm_def then
    List.iter
      (fun (exn, witness) ->
        out
          (finding ~rule:"R12" ~unit_path:sm.sm_def.T.d_unit
             ~loc:sm.sm_def.T.d_loc
             (Printf.sprintf
                "decoder entry \"%s\" may raise %s (decode must return Error, \
                 never raise): %s"
                sm.sm_def.T.d_name exn witness)))
      (Effects.may_raise eff key)

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)
(* ------------------------------------------------------------------ *)

let check prog (cg : Callgraph.t) (eff : Effects.t) : Finding.t list =
  let acc = ref [] in
  let out f = acc := f :: !acc in
  let keys =
    Hashtbl.fold (fun k _ l -> k :: l) cg.summaries []
    |> List.sort String.compare
  in
  List.iter
    (fun key ->
      match Hashtbl.find_opt cg.summaries key with
      | Some sm ->
          if locked_scope sm.sm_def.T.d_unit then (
            check_r9 prog cg eff key sm out;
            check_r10 eff key sm out);
          check_r11 eff key sm out;
          check_r12 eff key sm out
      | None -> ())
    keys;
  check_r9_completeness prog out;
  List.sort_uniq Finding.compare !acc
