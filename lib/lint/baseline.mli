(** Pinned pre-existing debt: (file, rule) -> allowed finding count. *)

type entry = { file : string; rule : string; count : int }
type t = entry list

val empty : t

(** Snapshot the current findings as the new budget. *)
val of_findings : Finding.t list -> t

(** [(fresh, stale)]: findings beyond the per-(file, rule) budget, in
    source order, and baseline entries whose budget is no longer fully
    used (ratchet candidates). *)
val apply : t -> Finding.t list -> Finding.t list * entry list

val entry_to_json : entry -> Jqi_util.Json.t
val to_json : t -> Jqi_util.Json.t
val of_json : Jqi_util.Json.t -> (t, string) result
val load : string -> (t, string) result
val save : string -> t -> unit
val pp_entry : Format.formatter -> entry -> unit
