(* The lint pipeline: discover -> parse -> rules -> suppress -> baseline.

   The driver is pure plumbing; policy lives in Rules (what is flagged),
   Concurrency (the interprocedural R9..R12), Suppress (what the code
   itself waives) and Baseline (what history tolerates).

   Two stages:
   - the per-file stage parses sequentially (compiler-libs' lexer keeps
     global buffers) and fans the pure rule walks (R1..R8 + suppression)
     out over [jobs] domains, results keyed by index so the report order
     is deterministic regardless of scheduling;
   - the program stage builds the Typed_source/Callgraph/Effects view of
     the whole tree sequentially (it is a fixpoint over shared tables)
     and runs R9..R12, then applies each file's suppression scopes to
     the findings that landed in it. *)

type options = {
  rules : string list option;  (* None = every rule *)
  changed : string list option;  (* only report findings in these files *)
  jobs : int;
}

let default_options = { rules = None; changed = None; jobs = 1 }

type analysis = { units : int; defs : int; wrappers : int; rounds : int }

type outcome = {
  files : int;
  findings : Finding.t list;  (* post-suppression, sorted; includes P0/R6 *)
  fresh : Finding.t list;  (* findings in excess of the baseline *)
  stale : Baseline.entry list;
  parse_errors : int;
  wall_ms : float;
  analysis : analysis option;  (* present when R9..R12 ran *)
}

let program_rules = [ "R9"; "R10"; "R11"; "R12" ]

let selected opts (rule : string) =
  String.equal rule "P0"
  ||
  match opts.rules with
  | None -> true
  | Some ids -> List.exists (String.equal rule) ids

let need_program opts = List.exists (selected opts) program_rules

let select_findings opts findings =
  match opts.rules with
  | None -> findings
  | Some _ ->
      List.filter (fun f -> selected opts f.Finding.rule) findings

(* ------------------------------------------------------------------ *)
(* Parallel fan-out                                                    *)
(* ------------------------------------------------------------------ *)

(* Work-stealing over an atomic index; each result lands in its input
   slot, so the output order is independent of domain scheduling. *)
let parallel_map ~jobs f xs =
  let n = List.length xs in
  let jobs = max 1 (min jobs n) in
  if jobs = 1 then List.map f xs
  else begin
    let inputs = Array.of_list xs in
    let out = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec go () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          out.(i) <- Some (f inputs.(i));
          go ()
        end
      in
      go ()
    in
    let domains = List.init (jobs - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join domains;
    Array.to_list out |> List.filter_map Fun.id
  end

(* ------------------------------------------------------------------ *)
(* Stages                                                              *)
(* ------------------------------------------------------------------ *)

type parsed = {
  p_path : string;
  p_file : Source.file option;  (* None on parse error *)
  p_scopes : Suppress.scope list;
  p_findings : Finding.t list;  (* per-file rules, suppressed *)
}

(* Parsing stays on one domain: compiler-libs' lexer keeps global
   buffers, so concurrent [Source.parse] calls corrupt each other.
   Everything downstream of the parse — the rule walks and suppression
   scoping — is pure AST traversal and fans out safely. *)
let process opts (path, parse_result) =
  match parse_result with
  | Ok f ->
      let scopes = Suppress.of_file f in
      let findings =
        Suppress.filter scopes (Rules.check_file f) |> select_findings opts
      in
      { p_path = path; p_file = Some f; p_scopes = scopes; p_findings = findings }
  | Error p0 -> { p_path = path; p_file = None; p_scopes = []; p_findings = [ p0 ] }

(* R9..R12 over already-parsed files; suppression scopes are applied
   per file to the findings that landed in it. *)
let program_stage parsed =
  let files = List.filter_map (fun p -> p.p_file) parsed in
  let prog = Typed_source.load files in
  let cg = Callgraph.build prog in
  let eff = Effects.build cg ~sanctioned:Concurrency.sanctioned in
  let raw = Concurrency.check prog cg eff in
  let scopes_of =
    let tbl = Hashtbl.create 64 in
    List.iter (fun p -> Hashtbl.replace tbl p.p_path p.p_scopes) parsed;
    fun path ->
      match Hashtbl.find_opt tbl path with Some s -> s | None -> []
  in
  let findings =
    List.concat_map
      (fun (f : Finding.t) -> Suppress.filter (scopes_of f.Finding.file) [ f ])
      raw
  in
  let analysis =
    {
      units = Hashtbl.length prog.Typed_source.units;
      defs = Hashtbl.length prog.Typed_source.defs;
      wrappers = Hashtbl.length cg.Callgraph.wrappers;
      rounds = cg.Callgraph.rounds;
    }
  in
  (findings, analysis)

(* ------------------------------------------------------------------ *)
(* In-memory entry points (fixtures, tests)                            *)
(* ------------------------------------------------------------------ *)

(* Lint in-memory sources as one little program: per-file rules plus the
   interprocedural pass, suppression applied, no R6/baseline. *)
let lint_sources ?(opts = default_options) sources =
  let parsed =
    List.map
      (fun (path, content) ->
        match Source.parse_string ~path content with
        | Ok f ->
            let scopes = Suppress.of_file f in
            let findings =
              Suppress.filter scopes (Rules.check_file f)
              |> select_findings opts
            in
            {
              p_path = path;
              p_file = Some f;
              p_scopes = scopes;
              p_findings = findings;
            }
        | Error p0 ->
            { p_path = path; p_file = None; p_scopes = []; p_findings = [ p0 ] })
      sources
  in
  let per_file = List.concat_map (fun p -> p.p_findings) parsed in
  let program =
    if need_program opts then fst (program_stage parsed) |> select_findings opts
    else []
  in
  List.sort Finding.compare (List.rev_append program per_file)

let lint_source ?opts ~path source = lint_sources ?opts [ (path, source) ]

(* ------------------------------------------------------------------ *)
(* On-disk pipeline                                                    *)
(* ------------------------------------------------------------------ *)

let in_changed opts path =
  match opts.changed with
  | None -> true
  | Some set -> List.exists (String.equal (Rules.normalize path)) set

let lint_paths ?(opts = default_options) paths =
  let all = Source.discover paths in
  (* In changed mode the per-file stage covers only the changed files;
     the whole tree is still parsed when an interprocedural rule is
     selected, because R9..R12 need the full call graph either way. *)
  let per_file_targets = List.filter (in_changed opts) all in
  let rest = List.filter (fun p -> not (in_changed opts p)) all in
  let parsed_targets =
    per_file_targets
    |> List.map (fun p -> (p, Source.parse p))
    |> parallel_map ~jobs:opts.jobs (process opts)
  in
  let parsed_rest =
    if need_program opts then
      rest
      |> List.map (fun p -> (p, Source.parse p))
      |> parallel_map ~jobs:opts.jobs (fun (path, parse_result) ->
             match parse_result with
             | Ok f ->
                 {
                   p_path = path;
                   p_file = Some f;
                   p_scopes = Suppress.of_file f;
                   p_findings = [];
                 }
             | Error _ ->
                 (* Already reported when the file is in the changed set;
                    otherwise out of scope for this run. *)
                 { p_path = path; p_file = None; p_scopes = []; p_findings = [] })
    else []
  in
  let per_file = List.concat_map (fun p -> p.p_findings) parsed_targets in
  let program, analysis =
    if need_program opts then begin
      let findings, analysis =
        program_stage (List.rev_append parsed_rest parsed_targets)
      in
      let findings =
        findings |> select_findings opts
        |> List.filter (fun f -> in_changed opts f.Finding.file)
      in
      (findings, Some analysis)
    end
    else ([], None)
  in
  let mli =
    (* R6 is a tree-level property: meaningless over a changed subset. *)
    if opts.changed = None && selected opts "R6" then
      Rules.check_missing_mli all
    else []
  in
  let findings =
    List.sort Finding.compare
      (List.rev_append mli (List.rev_append program per_file))
  in
  (List.length per_file_targets, findings, analysis)

let run ?(baseline = Baseline.empty) ?(opts = default_options) paths =
  let t0 = Jqi_util.Timer.now () in
  let files, findings, analysis = lint_paths ~opts paths in
  let fresh, stale = Baseline.apply baseline findings in
  (* A partial run cannot tell an unused budget from an unvisited file. *)
  let stale = if opts.changed = None then stale else [] in
  let parse_errors =
    List.length
      (List.filter (fun f -> String.equal f.Finding.rule "P0") findings)
  in
  let wall_ms = (Jqi_util.Timer.now () -. t0) *. 1000. in
  { files; findings; fresh; stale; parse_errors; wall_ms; analysis }

(* CI contract: fail on anything the baseline does not cover. *)
let clean outcome = List.is_empty outcome.fresh

let analysis_to_json a =
  let module Json = Jqi_util.Json in
  Json.Obj
    [
      ("units", Json.int a.units);
      ("functions", Json.int a.defs);
      ("lock_wrappers", Json.int a.wrappers);
      ("fixpoint_rounds", Json.int a.rounds);
    ]
