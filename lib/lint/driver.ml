(* The lint pipeline: discover -> parse -> rules -> suppress -> baseline.

   The driver is pure plumbing; policy lives in Rules (what is flagged),
   Suppress (what the code itself waives) and Baseline (what history
   tolerates). *)

type outcome = {
  files : int;
  findings : Finding.t list;  (* post-suppression, sorted; includes P0/R6 *)
  fresh : Finding.t list;  (* findings in excess of the baseline *)
  stale : Baseline.entry list;
  parse_errors : int;
}

let lint_parsed (f : Source.file) =
  Suppress.filter (Suppress.of_file f) (Rules.check_file f)

(* Lint in-memory source (fixture tests): every per-file rule plus
   suppression, no R6/baseline. *)
let lint_source ~path source =
  match Source.parse_string ~path source with
  | Ok f -> lint_parsed f
  | Error p0 -> [ p0 ]

let lint_paths paths =
  let files = Source.discover paths in
  let findings =
    List.concat_map
      (fun path ->
        match Source.parse path with
        | Ok f -> lint_parsed f
        | Error p0 -> [ p0 ])
      files
  in
  let findings = Rules.check_missing_mli files @ findings in
  (List.length files, List.sort Finding.compare findings)

let run ?(baseline = Baseline.empty) paths =
  let files, findings = lint_paths paths in
  let fresh, stale = Baseline.apply baseline findings in
  let parse_errors =
    List.length
      (List.filter (fun f -> String.equal f.Finding.rule "P0") findings)
  in
  { files; findings; fresh; stale; parse_errors }

(* CI contract: fail on anything the baseline does not cover. *)
let clean outcome = List.is_empty outcome.fresh
