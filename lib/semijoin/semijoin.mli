(** Semijoin queries R ⋉_θ P and their samples (§6).  Examples label rows
    of R: t is positive iff some row of P joins with it under θ. *)

type sample = { pos : int list; neg : int list }  (** row indexes into R *)

(** Raises [Invalid_argument] when a row appears on both sides. *)
val sample : pos:int list -> neg:int list -> sample

(** R ⋉_θ P. *)
val eval :
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Omega.t ->
  Jqi_util.Bits.t -> Jqi_relational.Relation.t

(** Does θ select row [i] of R?  t ∈ R ⋉_θ P iff ∃t' ∈ P. θ ⊆ T(t,t'). *)
val selects :
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Omega.t ->
  Jqi_util.Bits.t -> int -> bool

(** θ selects every positive row and no negative row. *)
val predicate_consistent :
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Omega.t ->
  Jqi_util.Bits.t -> sample -> bool
