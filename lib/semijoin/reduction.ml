(* The 3SAT → CONS⋉ reduction of Appendix A.1.

   Given φ = c_1 ∧ … ∧ c_k over variables x_1 … x_n, builds (Rφ, Pφ, Sφ)
   such that φ is satisfiable iff there is a semijoin predicate consistent
   with Sφ.  The ⊥ values of the construction are represented by NULL,
   which never matches under [Value.eq].  Used to validate Theorem 6.1
   empirically: a SAT solver on φ and the CONS⋉ decision procedure on the
   reduction must always agree. *)

module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Omega = Jqi_core.Omega
module Threesat = Jqi_sat.Threesat
module Bits = Jqi_util.Bits

type t = {
  r : Relation.t;
  p : Relation.t;
  omega : Omega.t;
  sample : Semijoin.sample;
  nvars : int;
}

let clause_marker i = Value.Str (Printf.sprintf "c%d+" i)
let var_marker i = Value.Str (Printf.sprintf "x%d*" i)

let build phi =
  let n = Threesat.nvars phi in
  let clauses = Threesat.clauses phi in
  let k = List.length clauses in
  (* Rφ: idR, A1 … An. *)
  let r_schema =
    Schema.of_columns
      (Schema.column "idR" Value.TString
      :: List.init n (fun j ->
             Schema.column (Printf.sprintf "A%d" (j + 1)) Value.TInt))
  in
  let body = List.init n (fun j -> Value.Int (j + 1)) in
  let r_rows =
    List.init k (fun i -> Tuple.of_list (clause_marker (i + 1) :: body))
    @ [ Tuple.of_list (Value.Str "X" :: body) ]
    @ List.init n (fun i -> Tuple.of_list (var_marker (i + 1) :: body))
  in
  let r = Relation.of_list ~name:"Rphi" ~schema:r_schema r_rows in
  (* Pφ: idP, B^t_1, B^f_1, …, B^t_n, B^f_n. *)
  let p_schema =
    Schema.of_columns
      (Schema.column "idP" Value.TString
      :: List.concat_map
           (fun j ->
             [
               Schema.column (Printf.sprintf "Bt%d" (j + 1)) Value.TInt;
               Schema.column (Printf.sprintf "Bf%d" (j + 1)) Value.TInt;
             ])
           (List.init n Fun.id))
  in
  (* One row per (clause, literal): the valuation "literal true" must not
     falsify the clause; the literal's own column pair encodes its
     polarity, all other variables keep both polarities. *)
  let clause_rows =
    List.concat
      (List.mapi
         (fun i (a, b, c) ->
           List.map
             (fun (l : Threesat.literal) ->
               let cells =
                 List.concat_map
                   (fun j ->
                     let j = j + 1 in
                     if not (Int.equal j l.var) then [ Value.Int j; Value.Int j ]
                     else if l.pos then [ Value.Int j; Value.Null ]
                     else [ Value.Null; Value.Int j ])
                   (List.init n Fun.id)
               in
               Tuple.of_list (clause_marker (i + 1) :: cells))
             [ a; b; c ])
         clauses)
  in
  let y_row =
    Tuple.of_list
      (Value.Str "Y"
      :: List.concat_map
           (fun j -> [ Value.Int (j + 1); Value.Int (j + 1) ])
           (List.init n Fun.id))
  in
  let var_rows =
    List.init n (fun i ->
        let cells =
          List.concat_map
            (fun j ->
              let j = j + 1 in
              if Int.equal j (i + 1) then [ Value.Null; Value.Null ]
              else [ Value.Int j; Value.Int j ])
            (List.init n Fun.id)
        in
        Tuple.of_list (var_marker (i + 1) :: cells))
  in
  let p =
    Relation.of_list ~name:"Pphi" ~schema:p_schema
      (clause_rows @ [ y_row ] @ var_rows)
  in
  let sample =
    Semijoin.sample
      ~pos:(List.init k Fun.id)
      ~neg:(List.init (n + 1) (fun i -> k + i))
  in
  {
    r;
    p;
    omega = Omega.of_schemas r_schema p_schema;
    sample;
    nvars = n;
  }

(* Decode a consistent predicate back into a valuation of φ: x_i is true
   iff (A_i, B^t_i) ∈ θ.  (The proof shows θ contains at least one of
   (A_i, B^t_i) / (A_i, B^f_i) for each i; when both occur the positive
   choice is as good as any: both polarities not falsifying any clause
   means x_i's value is irrelevant.) *)
let valuation_of_predicate t theta =
  Array.init (t.nvars + 1) (fun i ->
      if i = 0 then false
      else
        let col_bt = 1 + (2 * (i - 1)) in
        Bits.mem theta (Omega.index t.omega i col_bt))
