(* CONS⋉: does a semijoin predicate consistent with the sample exist?

   NP-complete (Theorem 6.1), so the main decision procedure encodes the
   question into SAT and runs the DPLL solver:

   - one propositional variable x_k per attribute pair k ∈ Ω;
   - a positive example t needs a witness: ∨_{t' ∈ P} ∧_{k ∉ T(t,t')} ¬x_k
     (θ must avoid every pair that t and t' disagree on, for some t');
   - a negative example t must reject every witness: for each t' ∈ P the
     clause ∨_{k ∉ T(t,t')} x_k (θ must contain a pair t and t' disagree
     on).

   A model restricted to the x_k gives a concrete consistent θ.  The
   brute-force procedure enumerates PP(Ω) and exists to cross-validate the
   encoder on small instances. *)

module Bits = Jqi_util.Bits
module Relation = Jqi_relational.Relation
module Omega = Jqi_core.Omega
module Tsig = Jqi_core.Tsig
module Formula = Jqi_sat.Formula
module Dpll = Jqi_sat.Dpll

let encode r p omega (s : Semijoin.sample) =
  let width = Omega.width omega in
  let var_of_pair k = k + 1 in
  let sig_row i j =
    Tsig.of_tuples omega (Relation.row r i) (Relation.row p j)
  in
  let np = Relation.cardinality p in
  let positive i =
    let witnesses =
      List.init np (fun j ->
          let t = sig_row i j in
          let forbidden =
            List.filter (fun k -> not (Bits.mem t k)) (List.init width Fun.id)
          in
          Formula.conj
            (List.map (fun k -> Formula.neg (Formula.var (var_of_pair k))) forbidden))
    in
    Formula.disj witnesses
  in
  let negative i =
    let rejections =
      List.init np (fun j ->
          let t = sig_row i j in
          let required =
            List.filter (fun k -> not (Bits.mem t k)) (List.init width Fun.id)
          in
          Formula.disj (List.map (fun k -> Formula.var (var_of_pair k)) required))
    in
    Formula.conj rejections
  in
  Formula.conj (List.map positive s.pos @ List.map negative s.neg)

(* Decide CONS⋉; returns a witness predicate when consistent. *)
let solve r p omega s =
  let f = encode r p omega s in
  match Dpll.solve (Formula.to_cnf ~min_vars:(Omega.width omega) f) with
  | Dpll.Unsat -> None
  | Dpll.Sat model ->
      let width = Omega.width omega in
      let theta = ref (Bits.empty width) in
      for k = 0 to width - 1 do
        if model.(k + 1) then theta := Bits.add !theta k
      done;
      (* The Tseitin model may set irrelevant pairs; the witness is checked
         against the semantics before being returned, as defense in
         depth. *)
      if Semijoin.predicate_consistent r p omega !theta s then Some !theta
      else
        invalid_arg "Cons.solve: internal error — SAT model is not consistent"

let consistent r p omega s = solve r p omega s <> None

(* Exponential reference: try every subset of Ω. *)
let max_brute_width = 20

let solve_brute r p omega s =
  if Omega.width omega > max_brute_width then
    invalid_arg "Cons.solve_brute: Ω too large";
  List.find_opt
    (fun theta -> Semijoin.predicate_consistent r p omega theta s)
    (Omega.all_predicates omega)

let consistent_brute r p omega s = solve_brute r p omega s <> None
