(** Minimality of semijoin predicates under positive-only samples — the
    paper's §7 coNP-complete "early attempt".  Minimality is of the
    selected set: no predicate covering the positives selects a strictly
    smaller subset of R.  Decided by enumeration (guarded by [max_width]),
    which also answers the paper's open uniqueness question per
    instance. *)

module Int_set : Set.S with type elt = int

val max_width : int

(** Rows of R selected by θ. *)
val selected_set :
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Omega.t ->
  Jqi_util.Bits.t -> Int_set.t

(** All predicates selecting every positive row, with their selected
    sets.  Raises [Invalid_argument] past [max_width]. *)
val consistent_with_positives :
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Omega.t ->
  pos:int list -> (Jqi_util.Bits.t * Int_set.t) list

val is_minimal :
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Omega.t ->
  pos:int list -> Jqi_util.Bits.t -> bool

(** The distinct minimal selected sets, one witness predicate each; a
    singleton means the minimal semijoin result is unique on this
    instance. *)
val minimal_results :
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Omega.t ->
  pos:int list -> (Jqi_util.Bits.t * Int_set.t) list
