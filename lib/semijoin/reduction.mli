(** The 3SAT → CONS⋉ reduction of Appendix A.1: φ is satisfiable iff the
    constructed (Rφ, Pφ, Sφ) admits a consistent semijoin predicate.  The
    construction's ⊥ values are NULLs (never matching). *)

type t = {
  r : Jqi_relational.Relation.t;
  p : Jqi_relational.Relation.t;
  omega : Jqi_core.Omega.t;
  sample : Semijoin.sample;
  nvars : int;
}

val build : Jqi_sat.Threesat.t -> t

(** Decode a consistent predicate into a valuation (x_i is true iff
    (A_i, B^t_i) ∈ θ); index 0 unused.  Satisfies φ whenever θ is
    consistent with the reduction's sample. *)
val valuation_of_predicate : t -> Jqi_util.Bits.t -> bool array
