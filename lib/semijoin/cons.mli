(** CONS⋉ — existence of a semijoin predicate consistent with a sample.
    NP-complete (Theorem 6.1); decided by SAT encoding, with a brute-force
    cross-check for small Ω. *)

(** The SAT encoding: one variable per pair of Ω, a witness disjunction
    per positive example, a rejection clause per (negative, P-row). *)
val encode :
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Omega.t ->
  Semijoin.sample -> Jqi_sat.Formula.t

(** Decide CONS⋉; returns a semantically verified witness predicate when
    consistent. *)
val solve :
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Omega.t ->
  Semijoin.sample -> Jqi_util.Bits.t option

val consistent :
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Omega.t ->
  Semijoin.sample -> bool

val max_brute_width : int

(** Enumerate PP(Ω); raises [Invalid_argument] past [max_brute_width]. *)
val solve_brute :
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Omega.t ->
  Semijoin.sample -> Jqi_util.Bits.t option

val consistent_brute :
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Omega.t ->
  Semijoin.sample -> bool
