(* Interactive semijoin inference — the paper's §7 future-work item
   ("design heuristics for the interactive inference of semijoins").

   The equijoin machinery of §3 does not carry over: deciding whether a
   tuple of R is uninformative is coNP-hard (it reduces to CONS⋉, Theorem
   6.1).  This heuristic therefore uses the SAT-backed consistency checker
   as an NP oracle:

   - a tuple t of R is *certain* w.r.t. the current sample S iff one of
     its labels makes S inconsistent (then the other label is implied);
     this is decided with two CONS⋉ calls;
   - tuples are asked in decreasing witness ambiguity (number of distinct
     T(t, ·) signatures): tuples with many possible witnesses constrain
     the version space most when labeled negative;
   - the loop skips certain tuples and halts when none is informative;
     the answer is any predicate consistent with the collected sample
     (a witness from the SAT solver).

   Exponential in the worst case — necessarily so unless P = NP — but the
   per-step instances are small in practice. *)

module Bits = Jqi_util.Bits
module Relation = Jqi_relational.Relation
module Omega = Jqi_core.Omega
module Tsig = Jqi_core.Tsig

type result = {
  predicate : Bits.t;          (* a consistent witness *)
  n_queries : int;
  asked : (int * bool) list;   (* (row of R, label), chronological *)
  implied : int list;          (* rows never asked because certain *)
}

let sample_with (s : Semijoin.sample) i positive =
  if positive then { s with Semijoin.pos = i :: s.Semijoin.pos }
  else { s with Semijoin.neg = i :: s.Semijoin.neg }

let certain_label r p omega s i =
  (* If labeling i negative kills consistency, positive is implied, and
     vice versa.  Both inconsistent cannot happen for a consistent s. *)
  if not (Cons.consistent r p omega (sample_with s i false)) then Some true
  else if not (Cons.consistent r p omega (sample_with s i true)) then
    Some false
  else None

(* Witness ambiguity: number of distinct signatures {T(t, t') | t' ∈ P}. *)
let ambiguity r p omega i =
  let module H = Hashtbl.Make (struct
    type t = Bits.t

    let equal = Bits.equal
    let hash = Bits.hash
  end) in
  let seen = H.create 16 in
  let tr = Relation.row r i in
  Relation.iter
    (fun tp -> H.replace seen (Tsig.of_tuples omega tr tp) ())
    p;
  H.length seen

let run ?(max_queries = max_int) r p omega ~oracle =
  let n = Relation.cardinality r in
  let order =
    (* Decorate-sort-undecorate: ambiguity costs a |P|-wide signature scan
       per row, so compute it once per row, not per comparison. *)
    List.init n (fun i -> (i, ambiguity r p omega i))
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.map fst
  in
  let sample = ref (Semijoin.sample ~pos:[] ~neg:[]) in
  let asked = ref [] in
  let implied = ref [] in
  let n_queries = ref 0 in
  List.iter
    (fun i ->
      if !n_queries < max_queries then
        match certain_label r p omega !sample i with
        | Some _ -> implied := i :: !implied
        | None ->
            let positive = oracle i in
            incr n_queries;
            asked := (i, positive) :: !asked;
            sample := sample_with !sample i positive)
    order;
  match Cons.solve r p omega !sample with
  | Some predicate ->
      {
        predicate;
        n_queries = !n_queries;
        asked = List.rev !asked;
        implied = List.rev !implied;
      }
  | None ->
      (* Unreachable with an oracle labeling consistently with some goal:
         every extension of a consistent sample by a non-certain label
         stays consistent. *)
      invalid_arg "Heuristic.run: oracle produced an inconsistent sample"

(* The honest semijoin user: labels t positive iff t ∈ R ⋉_goal P. *)
let honest_oracle r p omega ~goal i = Semijoin.selects r p omega goal i
