(* Minimality of semijoin predicates under positive-only samples — the
   paper's §7 "early attempt": deciding it is coNP-complete, and whether
   the minimal predicate is unique was open.

   Here minimality is of the *selected set*: θ is minimal for a
   positive-only sample S+ iff θ selects all of S+ and no predicate
   selects all of S+ while selecting a strictly smaller subset of R.
   The decision procedure enumerates PP(Ω) (exponential, matching the
   coNP-hardness; guarded by a width limit), which also lets the library
   answer the open uniqueness question *per instance*: [minimal_results]
   returns all minimal selected sets, so callers can observe instances
   with several incomparable minima. *)

module Bits = Jqi_util.Bits
module Relation = Jqi_relational.Relation
module Omega = Jqi_core.Omega

module Int_set = Set.Make (Int)

let max_width = 20

let selected_set r p omega theta =
  Int_set.of_list
    (List.filter
       (Semijoin.selects r p omega theta)
       (List.init (Relation.cardinality r) Fun.id))

(* All predicates selecting every positive row, as (θ, selected set). *)
let consistent_with_positives r p omega ~pos =
  if Omega.width omega > max_width then
    invalid_arg "Minimality: Ω too large for enumeration";
  let pos_set = Int_set.of_list pos in
  List.filter_map
    (fun theta ->
      let sel = selected_set r p omega theta in
      if Int_set.subset pos_set sel then Some (theta, sel) else None)
    (Omega.all_predicates omega)

(* Is θ's selected set minimal among predicates selecting all of [pos]? *)
let is_minimal r p omega ~pos theta =
  let pos_set = Int_set.of_list pos in
  let sel = selected_set r p omega theta in
  Int_set.subset pos_set sel
  && not
       (List.exists
          (fun (_, sel') -> Int_set.subset sel' sel && not (Int_set.equal sel' sel))
          (consistent_with_positives r p omega ~pos))

(* The distinct minimal selected sets (each with one witness predicate).
   A singleton answer means the minimal semijoin result is unique on this
   instance; several elements exhibit non-uniqueness. *)
let minimal_results r p omega ~pos =
  let candidates = consistent_with_positives r p omega ~pos in
  let minimal =
    List.filter
      (fun (_, sel) ->
        not
          (List.exists
             (fun (_, sel') ->
               Int_set.subset sel' sel && not (Int_set.equal sel' sel))
             candidates))
      candidates
  in
  (* Group by selected set, keep one witness each. *)
  List.fold_left
    (fun acc (theta, sel) ->
      if List.exists (fun (_, s) -> Int_set.equal s sel) acc then acc
      else (theta, sel) :: acc)
    [] minimal
