(* Semijoin queries R ⋉_θ P and their samples (§6).

   Examples now label tuples of R (not of the product): t is positive iff
   some tuple of P joins with it under θ.  Consistency checking CONS⋉ is
   NP-complete (Theorem 6.1); [Cons] decides it by SAT encoding and by
   brute force. *)

module Bits = Jqi_util.Bits
module Relation = Jqi_relational.Relation
module Join = Jqi_relational.Join
module Omega = Jqi_core.Omega
module Tsig = Jqi_core.Tsig

type sample = { pos : int list; neg : int list }  (* row indexes into R *)

let sample ~pos ~neg =
  (match List.find_opt (fun i -> List.mem i neg) pos with
  | Some i ->
      invalid_arg
        (Printf.sprintf "Semijoin.sample: tuple %d labeled both ways" i)
  | None -> ());
  { pos; neg }

(* R ⋉_θ P with θ given as a predicate over Ω. *)
let eval r p omega theta =
  Join.semijoin r p (Omega.to_pairs omega theta)

(* Does θ select row [i] of R?  t ∈ R ⋉_θ P iff ∃t' ∈ P. θ ⊆ T(t,t'). *)
let selects r p omega theta i =
  let tr = Relation.row r i in
  let np = Relation.cardinality p in
  let rec go j =
    j < np
    && (Tsig.selects theta (Tsig.of_tuples omega tr (Relation.row p j)) || go (j + 1))
  in
  go 0

(* θ is consistent with the sample iff it selects every positive row and no
   negative row. *)
let predicate_consistent r p omega theta s =
  List.for_all (selects r p omega theta) s.pos
  && List.for_all (fun i -> not (selects r p omega theta i)) s.neg
