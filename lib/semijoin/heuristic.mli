(** Interactive semijoin inference (§7 future work), using the SAT-backed
    consistency checker as an NP oracle: a row of R is certain when one of
    its labels would make the sample inconsistent; only informative rows
    are asked, in decreasing witness ambiguity. *)

type result = {
  predicate : Jqi_util.Bits.t;  (** a predicate consistent with the answers *)
  n_queries : int;
  asked : (int * bool) list;  (** (row of R, label), chronological *)
  implied : int list;  (** rows skipped because certain *)
}

(** Raises [Invalid_argument] if the oracle labels inconsistently (cannot
    happen for an oracle consistent with some goal predicate). *)
val run :
  ?max_queries:int ->
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Omega.t ->
  oracle:(int -> bool) -> result

(** Labels row i positive iff i ∈ R ⋉_goal P. *)
val honest_oracle :
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Omega.t ->
  goal:Jqi_util.Bits.t -> int -> bool
