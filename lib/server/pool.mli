(** Domain-based worker pool with a bounded job queue and load
    shedding.

    [submit] blocks the calling thread until a worker domain ran the
    job and returns its result ([Done]), re-raising the job's exception
    in the caller if it raised — a worker never dies of a job.  When the
    queue already holds [capacity] jobs, [submit] returns [Shed]
    immediately: that refusal is the server's backpressure signal
    (turned into a [busy] error frame by the listener).

    [async] enqueues fire-and-forget work under the same bound; its
    exceptions are swallowed.

    Shedding and queue depth are observable exactly via {!stats} and
    best-effort via the Obs counter [server.shed], the counter
    [server.pool.jobs], and the histogram [server.queue_depth]. *)

type t

type 'a outcome = Done of 'a | Shed

type stats = {
  submitted : int;  (** accepted into the queue *)
  completed : int;
  shed : int;  (** refused because the queue was full *)
  max_depth : int;  (** deepest the queue has been *)
}

(** [create ?capacity ~workers ()] spawns [workers] domains (clamped to
    ≥ 1).  [capacity] (default 256, clamped to ≥ 1) bounds the job
    queue. *)
val create : ?capacity:int -> workers:int -> unit -> t

val workers : t -> int
val capacity : t -> int

(** Run [f] on a worker, blocking until its result; [Shed] when the
    queue is full (or the pool is shutting down). *)
val submit : t -> (unit -> 'a) -> 'a outcome

(** Enqueue without waiting; [false] means shed. *)
val async : t -> (unit -> unit) -> bool

val stats : t -> stats

(** Stop accepting, drain the queue, and join the worker domains.
    Idempotent. *)
val shutdown : t -> unit
