(** Relation catalog with a content-hash-keyed universe cache, sharded
    for concurrent use.

    The catalog names the relations a server may open sessions over, and
    memoizes [Universe.build] per relation *pair*, keyed by the two
    {!Jqi_relational.Relation.fingerprint}s.  N sessions over the same
    CSV pair build Ω once; re-registering a relation with different
    contents changes its fingerprint and naturally misses the cache.

    Every operation is safe to call from any domain.  The universe cache
    is hashed across shards (one mutex each); a build holds only its own
    shard's lock, and two concurrent misses on the same pair perform
    exactly one build.

    Cache traffic is observable twice over: the plain {!stats} counters
    (exact — maintained under the shard locks, used by the bench) and
    the Obs counters [server.universe_cache_hit] /
    [server.universe_cache_miss] (best-effort across domains, for
    metrics-pinned tests and traces). *)

type t

(** [shards] defaults to {!Shard.default_shards}. *)
val create : ?shards:int -> unit -> t

(** Number of universe-cache shards. *)
val shards : t -> int

(** Register a relation under [name] (default: its own
    [Relation.name]).  Re-registering a name replaces the relation. *)
val add : ?name:string -> t -> Jqi_relational.Relation.t -> unit

val find : t -> string -> Jqi_relational.Relation.t option

(** Registered names, sorted. *)
val names : t -> string list

(** The universe of R × P, built on first use and cached by content
    fingerprint.  The flag is [true] on a cache hit (the build was
    skipped). *)
val universe :
  t -> Jqi_relational.Relation.t -> Jqi_relational.Relation.t ->
  bool * Jqi_core.Universe.t

(** K-ary {!universe}: the cache key is the colon-joined fingerprint
    list; two relations build via [Universe.build], more via
    [Universe.build_kary] (byte-identical on k = 2, so binary and k-ary
    lookups share entries).  Build errors ([Invalid_argument],
    [Universe.Kary_too_large]) propagate to the caller. *)
val universe_list :
  t -> Jqi_relational.Relation.t list -> bool * Jqi_core.Universe.t

(** Outcome of {!apply_delta}: the post-delta relation now registered
    under the name, the fingerprint transition, and what happened to the
    universe cache — [patched] entries were migrated in place (universe
    updated via [Universe.apply_delta], re-keyed under [new_fp]);
    [dropped] entries were evicted and will rebuild on next use. *)
type churn = {
  new_rel : Jqi_relational.Relation.t;
  old_fp : string;
  new_fp : string;
  patched : int;
  dropped : int;
}

(** Fold a delta into the named relation at cache granularity: instead
    of evicting every universe that involves the relation, each cached
    universe keyed on its pre-delta fingerprint is patched with
    [Universe.apply_delta] and re-keyed under the post-delta
    fingerprint, so open sessions re-certify against an
    already-maintained Ω with no rebuild.  The registered relation and
    its fingerprint accumulator are updated (append-only deltas extend
    the fingerprint in O(|adds|)).

    Paged relations share one mutable backing store, so the delta is
    applied to the store exactly once: the first cached single-position
    entry is patched (or, with no cache entries, the relation is
    updated directly) and any further entries — including self-join
    entries, where the fingerprint appears at two key positions — are
    dropped rather than double-applied.

    [None] when no relation is registered under [name].  Raises
    [Invalid_argument] when the delta itself is invalid against the
    relation (arity mismatch, or a remove matching no row). *)
val apply_delta : t -> name:string -> Jqi_relational.Delta.t -> churn option

(** (cache hits, cache misses) per shard, in shard order.  Exact: the
    counters are updated under the shard locks. *)
val shard_stats : t -> (int * int) list

(** (cache hits, cache misses) since [create] — the sum of
    {!shard_stats}. *)
val stats : t -> int * int
