(** Relation catalog with a content-hash-keyed universe cache.

    The catalog names the relations a server may open sessions over, and
    memoizes [Universe.build] per relation *pair*, keyed by the two
    {!Jqi_relational.Relation.fingerprint}s.  N sessions over the same
    CSV pair build Ω once; re-registering a relation with different
    contents changes its fingerprint and naturally misses the cache.

    Cache traffic is observable twice over: the plain {!stats} counters
    (always on, used by the bench) and the Obs counters
    [server.universe_cache_hit] / [server.universe_cache_miss] (for
    metrics-pinned tests and traces). *)

type t

val create : unit -> t

(** Register a relation under [name] (default: its own
    [Relation.name]).  Re-registering a name replaces the relation. *)
val add : ?name:string -> t -> Jqi_relational.Relation.t -> unit

val find : t -> string -> Jqi_relational.Relation.t option

(** Registered names, sorted. *)
val names : t -> string list

(** The universe of R × P, built on first use and cached by content
    fingerprint.  The flag is [true] on a cache hit (the build was
    skipped). *)
val universe :
  t -> Jqi_relational.Relation.t -> Jqi_relational.Relation.t ->
  bool * Jqi_core.Universe.t

(** (cache hits, cache misses) since [create]. *)
val stats : t -> int * int
