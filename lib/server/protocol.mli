(** Versioned JSON-lines wire protocol for the inference service.

    One frame per line.  Requests are
    [{"v":1,"id":N,"op":"...", ...}]; responses echo the id as
    [{"v":1,"id":N,"ok":true,"op":"...", ...}], or
    [{"v":1,"id":N,"ok":false,"op":"error","code":"...","message":"..."}]
    on failure.  The decoder never raises on wire input: truncated or
    garbage lines come back as a ready-to-send [Error] frame (with id 0
    when the id itself was unreadable).

    Version negotiation is a plain [hello] request listing the client's
    supported versions; the server answers [welcome] with the highest
    version both sides speak, and that version governs the connection. *)

(** The protocol version this build speaks. *)
val version : int

(** Highest mutually supported version, if any.  [negotiate versions] is
    over the client's advertised list. *)
val negotiate : int list -> int option

type request =
  | Hello of { versions : int list }
  | Load of { name : string option; path : string }
      (** register a CSV file in the catalog, optionally renamed *)
  | Open_session of { r : string; p : string; strategy : string }
  | Ask of { session : string }
  | Tell of { session : string; label : Jqi_core.Sample.label }
  | Save of { session : string }
  | Resume of {
      r : string;
      p : string;
      strategy : string option;  (** overrides the persisted name *)
      doc : Jqi_util.Json.t;  (** a [Session] document, v1 or v2 *)
    }
  | Open_kary of { relations : string list; strategy : string }
      (** open over an ordered list of catalog names; two names behave
          exactly like [Open_session] *)
  | Resume_kary of {
      relations : string list;
      strategy : string option;
      doc : Jqi_util.Json.t;  (** a [Session] document; v3 for k > 2 *)
    }
  | Delta of {
      relation : string;
      insert : string list list;
          (** rows to append, one cell list per row, parsed under the
              relation's schema like CSV cells ("" is NULL) *)
      delete : string list list;
          (** rows to remove, matched {e by value} — each claims one
              occurrence of an equal live row *)
    }
      (** fold a churn batch into a named relation; the server patches
          its caches and re-certifies every open session over it.  Both
          row lists may be omitted on the wire (empty). *)
  | Close of { session : string }
  | Stats

(** A question rendered for a client that has no relation data: the row
    indexes plus the cells, so it can show "does this pair join?". *)
type question = {
  q_session : string;
  q_class : int;
  q_r_row : int;
  q_p_row : int;
  q_r_cells : string list;
  q_p_cells : string list;
}

(** The k-ary rendering of {!question}: one row index and one cell row
    per relation, in session relation order.  Sessions opened over
    exactly two relations keep answering with the classic [Question]
    frame, so existing clients never see this op. *)
type kquestion = {
  k_session : string;
  k_class : int;
  k_rows : int list;
  k_cells : string list list;
}

type response =
  | Welcome of { version : int }
  | Loaded of { name : string; rows : int }
  | Opened of {
      session : string;
      classes : int;
      omega_width : int;
      cache_hit : bool;
    }
  | Question of question
  | Kquestion of kquestion
  | Done of {
      session : string;
      predicate : (string * string) list;
          (** attribute pairs of T(S+); k-ary sessions qualify both
              sides as ["rel.attr"] *)
      n_interactions : int;
    }
  | Saved of { session : string; doc : Jqi_util.Json.t }
  | Delta_applied of {
      d_relation : string;
      d_added : int;
      d_removed : int;
      d_cache_patched : int;
          (** universe-cache entries migrated incrementally *)
      d_cache_dropped : int;  (** entries evicted (rebuild on next use) *)
      d_recertified : string list;
          (** sessions carried over transparently, sorted *)
      d_stale : (string * string) list;
          (** (session id, reason) for sessions now refusing ask/tell *)
    }  (** answer to [Delta] *)
  | Closed of { session : string }
  | Stats_reply of {
      sessions : int;
      relations : string list;
      cache_hits : int;
      cache_misses : int;
    }
  | Error of { code : string; message : string }

val equal_request : request -> request -> bool
val equal_response : response -> response -> bool

(** One-line frame renderings (no trailing newline). *)
val encode_request : id:int -> request -> string

val encode_response : id:int -> response -> string

(** Server side: a request line to (id, request), or the (id, [Error])
    frame to send back.  Never raises. *)
val decode_request : string -> (int * request, int * response) result

(** Client side: a response line to (id, response).  Never raises. *)
val decode_response : string -> (int * response, string) result
