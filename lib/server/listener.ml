(* The network front end: a Unix-domain/TCP listener feeding a worker
   pool.

   Thread/domain layout: the accept loop and one reader thread per
   connection are plain systhreads (they only do blocking IO, which
   releases the runtime lock); the actual protocol work — decode already
   done on the reader thread, engine transitions in [Service.handle] —
   runs on the [Pool]'s worker domains.  A reader keeps at most one
   request of its connection in flight, so per-connection ordering is
   the protocol's ordering; concurrency comes from many connections.

   Backpressure: when the pool's bounded queue is full, the reader
   answers with a typed [busy] error frame immediately instead of
   queueing without bound.  Oversized lines get an [overflow] error
   frame and a clean disconnect; torn frames are buffered by [Framing]
   until their newline arrives; undecodable lines are answered by the
   reader thread directly (no pool round-trip) with the codec's error
   frame.  No input can raise out of a reader. *)

module Obs = Jqi_obs.Obs

let c_accepted = Obs.Counter.make "server.listener.accepted"
let c_frames = Obs.Counter.make "server.listener.frames"
let c_overflow = Obs.Counter.make "server.listener.overflow"

(* ------------------------------------------------------------------ *)
(* Incremental newline framing                                         *)
(* ------------------------------------------------------------------ *)

module Framing = struct
  type event = Frame of string | Overflow of int | Await

  type t = {
    max_frame : int;
    buf : Buffer.t;
    events : event Queue.t;
    mutable discarding : bool;  (* inside an oversized line *)
  }

  let default_max_frame = 1 lsl 20

  let create ?(max_frame = default_max_frame) () =
    {
      max_frame = (if max_frame < 1 then 1 else max_frame);
      buf = Buffer.create 256;
      events = Queue.create ();
      discarding = false;
    }

  (* One character at a time keeps the state machine trivially invariant
     under chunk boundaries: feeding a byte stream split any way yields
     the same event sequence. *)
  let feed_char t c =
    if t.discarding then begin
      if Char.equal c '\n' then t.discarding <- false
    end
    else if Char.equal c '\n' then begin
      let line = Buffer.contents t.buf in
      Buffer.clear t.buf;
      let line =
        (* JSON-lines over TCP often arrives CRLF-terminated. *)
        if String.length line > 0 && Char.equal line.[String.length line - 1] '\r'
        then String.sub line 0 (String.length line - 1)
        else line
      in
      Queue.add (Frame line) t.events
    end
    else begin
      Buffer.add_char t.buf c;
      if Buffer.length t.buf > t.max_frame then begin
        Queue.add (Overflow (Buffer.length t.buf)) t.events;
        Buffer.clear t.buf;
        t.discarding <- true
      end
    end

  let feed t chunk = String.iter (feed_char t) chunk

  let next t =
    match Queue.take_opt t.events with Some e -> e | None -> Await
end

(* ------------------------------------------------------------------ *)
(* Socket plumbing                                                     *)
(* ------------------------------------------------------------------ *)

type addr = Unix_path of string | Tcp of string * int

let addr_to_string = function
  | Unix_path p -> "unix:" ^ p
  | Tcp (host, port) -> Printf.sprintf "%s:%d" host port

type t = {
  manager : Manager.t;
  pool : Pool.t;
  max_frame : int;
  listen_fd : Unix.file_descr;
  (* Self-pipe: [stop] writes a byte so the accept loop's [select]
     wakes — closing a listening fd does not interrupt a blocked
     [accept] on Linux. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  actual : addr;
  conns : (int, Unix.file_descr) Hashtbl.t [@lint.guarded_by "conns_mutex"];
  conns_mutex : Mutex.t;
  mutable next_conn : int [@lint.guarded_by "conns_mutex"];
  mutable threads : Thread.t list [@lint.guarded_by "conns_mutex"];
  mutable accept_thread : Thread.t option
      [@lint.allow "R9"];
      (* Written in [start] before any other thread can see [t], read
         only by [stop]; same for [sweep_thread]. *)
  mutable sweep_thread : Thread.t option [@lint.allow "R9"];
  stopping : bool Atomic.t;
}

let ignore_unix_error f = try f () with Unix.Unix_error (_, _, _) -> ()

(* Write the whole string, returning [false] on a dead peer. *)
let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off >= len then true
    else
      match Unix.write_substring fd s off (len - off) with
      | 0 -> false
      | n -> go (off + n)
      | exception Unix.Unix_error (_, _, _) -> false
  in
  go 0

let reply_line fd line = write_all fd (line ^ "\n")

(* One request: decode on this thread, run on the pool, answer in
   order.  A full pool is the backpressure path: a typed busy frame. *)
let respond t fd line =
  match Protocol.decode_request line with
  | Error (id, resp) -> reply_line fd (Protocol.encode_response ~id resp)
  | Ok (id, request) -> (
      let outcome =
        try Pool.submit t.pool (fun () -> Service.handle t.manager request)
        with exn ->
          Pool.Done
            (Protocol.Error
               {
                 code = "internal";
                 message = "request failed: " ^ Printexc.to_string exn;
               })
      in
      match outcome with
      | Pool.Done resp -> reply_line fd (Protocol.encode_response ~id resp)
      | Pool.Shed -> reply_line fd (Protocol.encode_response ~id (Service.busy ())))

let overflow_frame size =
  Protocol.encode_response ~id:0
    (Protocol.Error
       {
         code = "overflow";
         message =
           Printf.sprintf "frame exceeds %d bytes (got %d); disconnecting" size
             size;
       })

let conn_main t cid fd =
  let framing = Framing.create ~max_frame:t.max_frame () in
  let buf = Bytes.create 4096 in
  let alive = ref true in
  (* Drain every complete frame the last read uncovered. *)
  let rec drain () =
    if !alive then
      match Framing.next framing with
      | Framing.Await -> ()
      | Framing.Frame line ->
          if not (String.equal (String.trim line) "") then begin
            Obs.Counter.incr c_frames;
            if not (respond t fd line) then alive := false
          end;
          drain ()
      | Framing.Overflow size ->
          Obs.Counter.incr c_overflow;
          ignore (write_all fd (overflow_frame size ^ "\n"));
          alive := false
  in
  while !alive do
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> alive := false
    | n ->
        Framing.feed framing (Bytes.sub_string buf 0 n);
        drain ()
    | exception Unix.Unix_error (_, _, _) -> alive := false
  done;
  ignore_unix_error (fun () -> Unix.close fd);
  Mutex.protect t.conns_mutex (fun () -> Hashtbl.remove t.conns cid)

(* Block in [select] (listen fd + self-pipe), not in [accept]: a byte
   on the pipe from [stop] ends the loop promptly, which a plain
   blocking [accept] would never notice. *)
let accept_loop t =
  let rec loop () =
    if not (Atomic.get t.stopping) then
      match Unix.select [ t.listen_fd; t.wake_r ] [] [] (-1.) with
      | exception Unix.Unix_error (_, _, _) -> ()
      | readable, _, _ ->
          if Atomic.get t.stopping || List.memq t.wake_r readable then ()
          else if List.memq t.listen_fd readable then begin
            match Unix.accept t.listen_fd with
            | exception Unix.Unix_error (_, _, _) -> loop ()
            | fd, _ ->
                (match t.actual with
                | Tcp (_, _) ->
                    (* Request/response over small frames: Nagle +
                       delayed ACK would add tens of ms per turn. *)
                    ignore_unix_error (fun () ->
                        Unix.setsockopt fd Unix.TCP_NODELAY true)
                | Unix_path _ -> ());
                Obs.Counter.incr c_accepted;
                Mutex.protect t.conns_mutex (fun () ->
                    let cid = t.next_conn in
                    t.next_conn <- cid + 1;
                    Hashtbl.replace t.conns cid fd;
                    let thread =
                      Thread.create (fun () -> conn_main t cid fd) ()
                    in
                    t.threads <- thread :: t.threads);
                loop ()
          end
          else loop ()
  in
  loop ()

(* Periodic idle-eviction sweep, in 50ms ticks so [stop] is prompt. *)
let sweep_loop t every =
  let tick = 0.05 in
  let rec go elapsed =
    if not (Atomic.get t.stopping) then
      if elapsed >= every then begin
        ignore (Manager.sweep t.manager);
        go 0.
      end
      else begin
        Thread.delay tick;
        go (elapsed +. tick)
      end
  in
  go 0.

let bind_socket = function
  | Unix_path path ->
      if Sys.file_exists path then Sys.remove path;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      Unix.bind fd (Unix.ADDR_UNIX path);
      Unix.listen fd 128;
      (fd, Unix_path path)
  | Tcp (host, port) ->
      let inet = Unix.inet_addr_of_string host in
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      Unix.setsockopt fd Unix.SO_REUSEADDR true;
      Unix.bind fd (Unix.ADDR_INET (inet, port));
      Unix.listen fd 128;
      let actual =
        match Unix.getsockname fd with
        | Unix.ADDR_INET (_, bound) -> Tcp (host, bound)
        | Unix.ADDR_UNIX _ -> Tcp (host, port)
      in
      (fd, actual)

let start ?(max_frame = Framing.default_max_frame) ?sweep_every ~pool manager
    addr =
  let listen_fd, actual = bind_socket addr in
  let wake_r, wake_w = Unix.pipe () in
  let t =
    {
      manager;
      pool;
      max_frame;
      listen_fd;
      wake_r;
      wake_w;
      actual;
      conns = Hashtbl.create 32;
      conns_mutex = Mutex.create ();
      next_conn = 1;
      threads = [];
      accept_thread = None;
      sweep_thread = None;
      stopping = Atomic.make false;
    }
  in
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  (match sweep_every with
  | Some every when every > 0. ->
      t.sweep_thread <- Some (Thread.create (fun () -> sweep_loop t every) ())
  | Some _ | None -> ());
  t

let address t = t.actual

let connections t =
  Mutex.protect t.conns_mutex (fun () -> Hashtbl.length t.conns)

let stop t =
  Atomic.set t.stopping true;
  ignore_unix_error (fun () -> ignore (Unix.write_substring t.wake_w "x" 0 1));
  let fds, threads =
    Mutex.protect t.conns_mutex (fun () ->
        (Hashtbl.fold (fun _ fd acc -> fd :: acc) t.conns [], t.threads))
  in
  List.iter
    (fun fd -> ignore_unix_error (fun () -> Unix.shutdown fd Unix.SHUTDOWN_ALL))
    fds;
  (match t.accept_thread with Some th -> Thread.join th | None -> ());
  (match t.sweep_thread with Some th -> Thread.join th | None -> ());
  List.iter Thread.join threads;
  ignore_unix_error (fun () -> Unix.close t.listen_fd);
  ignore_unix_error (fun () -> Unix.close t.wake_r);
  ignore_unix_error (fun () -> Unix.close t.wake_w);
  match t.actual with
  | Unix_path path -> if Sys.file_exists path then Sys.remove path
  | Tcp (_, _) -> ()
