(** Socket front end: Unix-domain/TCP listener over a sharded
    [Manager], with per-connection newline framing and a bounded worker
    [Pool].

    Each accepted connection gets a reader thread that buffers bytes
    into complete JSON-lines frames ({!Framing}), decodes them, and runs
    each request on the pool's worker domains — one request per
    connection in flight, so responses keep request order.  When the
    pool's queue is full the request is shed with a typed [busy] error
    frame instead of buffering unboundedly; oversized lines earn an
    [overflow] error frame and a clean disconnect; garbage earns the
    codec's error frame.  Nothing a client sends can raise out of the
    server.

    Obs: [server.listener.accepted] / [frames] / [overflow] counters,
    plus the pool's [server.shed] and [server.queue_depth]. *)

(** Incremental newline framing, exposed for tests and other
    transports.  Feed arbitrary chunks; take complete frames.  The
    event sequence is invariant under how the byte stream is split into
    chunks, trailing [\r] is stripped (CRLF tolerance), and a line
    longer than [max_frame] yields [Overflow] once and swallows the
    rest of that line. *)
module Framing : sig
  type event =
    | Frame of string  (** one complete line, newline and CR stripped *)
    | Overflow of int  (** buffered length when the bound was crossed *)
    | Await  (** nothing complete buffered — feed more bytes *)

  type t

  val default_max_frame : int
  (** 1 MiB. *)

  val create : ?max_frame:int -> unit -> t
  val feed : t -> string -> unit

  (** Pop the next event; [Await] when no complete frame is buffered. *)
  val next : t -> event
end

type addr =
  | Unix_path of string  (** Unix-domain socket at this path *)
  | Tcp of string * int  (** numeric host, port; port 0 picks one *)

val addr_to_string : addr -> string

type t

(** Bind, listen and start accepting.  [sweep_every] (seconds) runs
    [Manager.sweep] periodically on a background thread; omitted or
    non-positive disables sweeping.  [max_frame] bounds a single request
    line. *)
val start :
  ?max_frame:int -> ?sweep_every:float -> pool:Pool.t -> Manager.t -> addr -> t

(** The bound address — for [Tcp (_, 0)], the actual port. *)
val address : t -> addr

(** Currently open connections. *)
val connections : t -> int

(** Stop accepting, disconnect every client, join every thread, and (for
    Unix-domain sockets) remove the socket file.  The pool is the
    caller's to shut down. *)
val stop : t -> unit
