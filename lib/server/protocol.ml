(* The wire codec.  Deliberately boring: every frame is a flat JSON
   object, every field is read through total accessors, and every way a
   line can be wrong maps to an [Error] frame rather than an exception —
   a misbehaving client must not be able to kill the serve loop. *)

module Json = Jqi_util.Json
module Sample = Jqi_core.Sample

let version = 1

let negotiate versions =
  match List.filter (fun v -> v >= 1 && v <= version) versions with
  | [] -> None
  | vs -> Some (List.fold_left max 1 vs)

type request =
  | Hello of { versions : int list }
  | Load of { name : string option; path : string }
  | Open_session of { r : string; p : string; strategy : string }
  | Ask of { session : string }
  | Tell of { session : string; label : Sample.label }
  | Save of { session : string }
  | Resume of {
      r : string;
      p : string;
      strategy : string option;
      doc : Json.t;
    }
  | Open_kary of { relations : string list; strategy : string }
  | Resume_kary of {
      relations : string list;
      strategy : string option;
      doc : Json.t;
    }
  | Delta of {
      relation : string;
      insert : string list list;  (* rows to add, as CSV-style cells *)
      delete : string list list;  (* rows to remove, matched by value *)
    }
  | Close of { session : string }
  | Stats

type question = {
  q_session : string;
  q_class : int;
  q_r_row : int;
  q_p_row : int;
  q_r_cells : string list;
  q_p_cells : string list;
}

type kquestion = {
  k_session : string;
  k_class : int;
  k_rows : int list;
  k_cells : string list list;
}

type response =
  | Welcome of { version : int }
  | Loaded of { name : string; rows : int }
  | Opened of {
      session : string;
      classes : int;
      omega_width : int;
      cache_hit : bool;
    }
  | Question of question
  | Kquestion of kquestion
  | Done of {
      session : string;
      predicate : (string * string) list;
      n_interactions : int;
    }
  | Saved of { session : string; doc : Json.t }
  | Delta_applied of {
      d_relation : string;
      d_added : int;
      d_removed : int;
      d_cache_patched : int;
      d_cache_dropped : int;
      d_recertified : string list;  (* session ids carried over *)
      d_stale : (string * string) list;  (* (session id, reason) *)
    }
  | Closed of { session : string }
  | Stats_reply of {
      sessions : int;
      relations : string list;
      cache_hits : int;
      cache_misses : int;
    }
  | Error of { code : string; message : string }

(* No [Value]/[Tuple] in sight, so structural equality is exact here —
   frames are strings, ints, bools and Json trees. *)
let equal_request (a : request) (b : request) = a = b
let equal_response (a : response) (b : response) = a = b

(* ---- field accessors, all total ---- *)

let str_field name json =
  match Json.member name json with
  | Some (Json.Str s) -> Some s
  | Some (Json.Null | Json.Bool _ | Json.Num _ | Json.List _ | Json.Obj _)
  | None ->
      None

let int_field name json = Option.bind (Json.member name json) Json.to_int

let bool_field name json =
  match Json.member name json with
  | Some (Json.Bool b) -> Some b
  | Some (Json.Null | Json.Num _ | Json.Str _ | Json.List _ | Json.Obj _)
  | None ->
      None

let int_list_field name json =
  match Json.member name json with
  | Some (Json.List l) ->
      let ints = List.filter_map Json.to_int l in
      if List.compare_lengths ints l = 0 then Some ints else None
  | Some (Json.Null | Json.Bool _ | Json.Num _ | Json.Str _ | Json.Obj _)
  | None ->
      None

let str_list_field name json =
  match Json.member name json with
  | Some (Json.List l) ->
      let strs =
        List.filter_map
          (function
            | Json.Str s -> Some s
            | Json.Null | Json.Bool _ | Json.Num _ | Json.List _ | Json.Obj _
              ->
                None)
          l
      in
      if List.compare_lengths strs l = 0 then Some strs else None
  | Some (Json.Null | Json.Bool _ | Json.Num _ | Json.Str _ | Json.Obj _)
  | None ->
      None

(* A list of string lists — the per-relation cell rows of a kquestion. *)
let str_list_list_field name json =
  match Json.member name json with
  | Some (Json.List l) ->
      let row = function
        | Json.List cells ->
            let strs =
              List.filter_map
                (function
                  | Json.Str s -> Some s
                  | Json.Null | Json.Bool _ | Json.Num _ | Json.List _
                  | Json.Obj _ ->
                      None)
                cells
            in
            if List.compare_lengths strs cells = 0 then Some strs else None
        | Json.Null | Json.Bool _ | Json.Num _ | Json.Str _ | Json.Obj _ ->
            None
      in
      let rows = List.filter_map row l in
      if List.compare_lengths rows l = 0 then Some rows else None
  | Some (Json.Null | Json.Bool _ | Json.Num _ | Json.Str _ | Json.Obj _)
  | None ->
      None

let label_to_string = function
  | Sample.Positive -> "+"
  | Sample.Negative -> "-"

let label_of_string = function
  | "+" -> Some Sample.Positive
  | "-" -> Some Sample.Negative
  | _ -> None

(* ---- encoding ---- *)

let frame ~id fields = Json.Obj (("v", Json.int version) :: ("id", Json.int id) :: fields)

let request_fields = function
  | Hello { versions } ->
      [
        ("op", Json.Str "hello");
        ("versions", Json.List (List.map Json.int versions));
      ]
  | Load { name; path } ->
      List.concat
        [
          [ ("op", Json.Str "load"); ("path", Json.Str path) ];
          (match name with
          | Some n -> [ ("name", Json.Str n) ]
          | None -> []);
        ]
  | Open_session { r; p; strategy } ->
      [
        ("op", Json.Str "open");
        ("r", Json.Str r);
        ("p", Json.Str p);
        ("strategy", Json.Str strategy);
      ]
  | Ask { session } -> [ ("op", Json.Str "ask"); ("session", Json.Str session) ]
  | Tell { session; label } ->
      [
        ("op", Json.Str "tell");
        ("session", Json.Str session);
        ("label", Json.Str (label_to_string label));
      ]
  | Save { session } ->
      [ ("op", Json.Str "save"); ("session", Json.Str session) ]
  | Resume { r; p; strategy; doc } ->
      List.concat
        [
          [ ("op", Json.Str "resume"); ("r", Json.Str r); ("p", Json.Str p) ];
          (match strategy with
          | Some s -> [ ("strategy", Json.Str s) ]
          | None -> []);
          [ ("doc", doc) ];
        ]
  | Open_kary { relations; strategy } ->
      [
        ("op", Json.Str "open_kary");
        ("relations", Json.List (List.map (fun n -> Json.Str n) relations));
        ("strategy", Json.Str strategy);
      ]
  | Resume_kary { relations; strategy; doc } ->
      List.concat
        [
          [
            ("op", Json.Str "resume_kary");
            ( "relations",
              Json.List (List.map (fun n -> Json.Str n) relations) );
          ];
          (match strategy with
          | Some s -> [ ("strategy", Json.Str s) ]
          | None -> []);
          [ ("doc", doc) ];
        ]
  | Delta { relation; insert; delete } ->
      let rows rs =
        Json.List
          (List.map
             (fun row -> Json.List (List.map (fun c -> Json.Str c) row))
             rs)
      in
      [
        ("op", Json.Str "delta");
        ("relation", Json.Str relation);
        ("insert", rows insert);
        ("delete", rows delete);
      ]
  | Close { session } ->
      [ ("op", Json.Str "close"); ("session", Json.Str session) ]
  | Stats -> [ ("op", Json.Str "stats") ]

let encode_request ~id request = Json.to_string (frame ~id (request_fields request))

let response_fields = function
  | Welcome { version = v } ->
      [
        ("ok", Json.Bool true);
        ("op", Json.Str "welcome");
        ("version", Json.int v);
      ]
  | Loaded { name; rows } ->
      [
        ("ok", Json.Bool true);
        ("op", Json.Str "loaded");
        ("name", Json.Str name);
        ("rows", Json.int rows);
      ]
  | Opened { session; classes; omega_width; cache_hit } ->
      [
        ("ok", Json.Bool true);
        ("op", Json.Str "opened");
        ("session", Json.Str session);
        ("classes", Json.int classes);
        ("omega_width", Json.int omega_width);
        ("cache_hit", Json.Bool cache_hit);
      ]
  | Question q ->
      [
        ("ok", Json.Bool true);
        ("op", Json.Str "question");
        ("session", Json.Str q.q_session);
        ("class", Json.int q.q_class);
        ("r_row", Json.int q.q_r_row);
        ("p_row", Json.int q.q_p_row);
        ("r_cells", Json.List (List.map (fun c -> Json.Str c) q.q_r_cells));
        ("p_cells", Json.List (List.map (fun c -> Json.Str c) q.q_p_cells));
      ]
  | Kquestion k ->
      [
        ("ok", Json.Bool true);
        ("op", Json.Str "kquestion");
        ("session", Json.Str k.k_session);
        ("class", Json.int k.k_class);
        ("rows", Json.List (List.map Json.int k.k_rows));
        ( "cells",
          Json.List
            (List.map
               (fun row ->
                 Json.List (List.map (fun c -> Json.Str c) row))
               k.k_cells) );
      ]
  | Done { session; predicate; n_interactions } ->
      [
        ("ok", Json.Bool true);
        ("op", Json.Str "done");
        ("session", Json.Str session);
        ( "predicate",
          Json.List
            (List.map
               (fun (a, b) ->
                 Json.Obj [ ("r", Json.Str a); ("p", Json.Str b) ])
               predicate) );
        ("n_interactions", Json.int n_interactions);
      ]
  | Saved { session; doc } ->
      [
        ("ok", Json.Bool true);
        ("op", Json.Str "saved");
        ("session", Json.Str session);
        ("doc", doc);
      ]
  | Delta_applied d ->
      [
        ("ok", Json.Bool true);
        ("op", Json.Str "delta_applied");
        ("relation", Json.Str d.d_relation);
        ("added", Json.int d.d_added);
        ("removed", Json.int d.d_removed);
        ("cache_patched", Json.int d.d_cache_patched);
        ("cache_dropped", Json.int d.d_cache_dropped);
        ( "recertified",
          Json.List (List.map (fun s -> Json.Str s) d.d_recertified) );
        ( "stale",
          Json.List
            (List.map
               (fun (id, reason) ->
                 Json.Obj
                   [ ("session", Json.Str id); ("reason", Json.Str reason) ])
               d.d_stale) );
      ]
  | Closed { session } ->
      [
        ("ok", Json.Bool true);
        ("op", Json.Str "closed");
        ("session", Json.Str session);
      ]
  | Stats_reply { sessions; relations; cache_hits; cache_misses } ->
      [
        ("ok", Json.Bool true);
        ("op", Json.Str "stats");
        ("sessions", Json.int sessions);
        ("relations", Json.List (List.map (fun n -> Json.Str n) relations));
        ("cache_hits", Json.int cache_hits);
        ("cache_misses", Json.int cache_misses);
      ]
  | Error { code; message } ->
      [
        ("ok", Json.Bool false);
        ("op", Json.Str "error");
        ("code", Json.Str code);
        ("message", Json.Str message);
      ]

let encode_response ~id response =
  Json.to_string (frame ~id (response_fields response))

(* ---- decoding ---- *)

let err ~id code fmt =
  Printf.ksprintf
    (fun message -> Stdlib.Error (id, Error { code; message }))
    fmt

let parse_frame line =
  match Json.of_string line with
  | exception Json.Parse_error { position; message } ->
      Stdlib.Error (0, Error
        {
          code = "parse";
          message = Printf.sprintf "bad JSON at %d: %s" position message;
        })
  | (Json.Null | Json.Bool _ | Json.Num _ | Json.Str _ | Json.List _) as j ->
      Stdlib.Error (0, Error
        {
          code = "parse";
          message =
            Printf.sprintf "frame must be an object, got %s"
              (Json.to_string j);
        })
  | Json.Obj _ as json -> (
      let id = match int_field "id" json with Some i -> i | None -> 0 in
      match int_field "v" json with
      | Some v when v = version -> Stdlib.Ok (id, json)
      | Some v ->
          err ~id "version" "unsupported protocol version %d (speak %d)" v
            version
      | None -> err ~id "version" "frame missing v")

let required ~id ~op field = function
  | Some x -> Stdlib.Ok x
  | None -> err ~id "malformed" "%s frame missing %s" op field

let ( let* ) r f = match r with Stdlib.Ok x -> f x | Stdlib.Error _ as e -> e

let decode_request line =
  let* id, json = parse_frame line in
  let* op = required ~id ~op:"request" "op" (str_field "op" json) in
  match op with
  | "hello" ->
      let* versions =
        required ~id ~op "versions" (int_list_field "versions" json)
      in
      Stdlib.Ok (id, Hello { versions })
  | "load" ->
      let* path = required ~id ~op "path" (str_field "path" json) in
      Stdlib.Ok (id, Load { name = str_field "name" json; path })
  | "open" ->
      let* r = required ~id ~op "r" (str_field "r" json) in
      let* p = required ~id ~op "p" (str_field "p" json) in
      let* strategy = required ~id ~op "strategy" (str_field "strategy" json) in
      Stdlib.Ok (id, Open_session { r; p; strategy })
  | "ask" ->
      let* session = required ~id ~op "session" (str_field "session" json) in
      Stdlib.Ok (id, Ask { session })
  | "tell" ->
      let* session = required ~id ~op "session" (str_field "session" json) in
      let* raw = required ~id ~op "label" (str_field "label" json) in
      let* label =
        match label_of_string raw with
        | Some l -> Stdlib.Ok l
        | None -> err ~id "malformed" "tell label must be \"+\" or \"-\", got %S" raw
      in
      Stdlib.Ok (id, Tell { session; label })
  | "save" ->
      let* session = required ~id ~op "session" (str_field "session" json) in
      Stdlib.Ok (id, Save { session })
  | "resume" ->
      let* r = required ~id ~op "r" (str_field "r" json) in
      let* p = required ~id ~op "p" (str_field "p" json) in
      let* doc = required ~id ~op "doc" (Json.member "doc" json) in
      Stdlib.Ok (id, Resume { r; p; strategy = str_field "strategy" json; doc })
  | "open_kary" ->
      let* relations =
        required ~id ~op "relations" (str_list_field "relations" json)
      in
      let* strategy = required ~id ~op "strategy" (str_field "strategy" json) in
      Stdlib.Ok (id, Open_kary { relations; strategy })
  | "resume_kary" ->
      let* relations =
        required ~id ~op "relations" (str_list_field "relations" json)
      in
      let* doc = required ~id ~op "doc" (Json.member "doc" json) in
      Stdlib.Ok
        (id, Resume_kary { relations; strategy = str_field "strategy" json; doc })
  | "delta" ->
      let* relation = required ~id ~op "relation" (str_field "relation" json) in
      (* Both row lists are optional on the wire; a missing field is an
         empty batch side, but a malformed present one is an error. *)
      let rows field =
        match Json.member field json with
        | None | Some Json.Null -> Stdlib.Ok []
        | Some
            (Json.Bool _ | Json.Num _ | Json.Str _ | Json.List _ | Json.Obj _)
          -> (
            match str_list_list_field field json with
            | Some rs -> Stdlib.Ok rs
            | None ->
                err ~id "malformed" "delta %s must be a list of cell rows"
                  field)
      in
      let* insert = rows "insert" in
      let* delete = rows "delete" in
      Stdlib.Ok (id, Delta { relation; insert; delete })
  | "close" ->
      let* session = required ~id ~op "session" (str_field "session" json) in
      Stdlib.Ok (id, Close { session })
  | "stats" -> Stdlib.Ok (id, Stats)
  | other -> err ~id "unsupported" "unknown op %S" other

let decode_response line =
  let fail fmt = Printf.ksprintf (fun m -> Stdlib.Error m) fmt in
  match Json.of_string line with
  | exception Json.Parse_error { position; message } ->
      fail "bad JSON at %d: %s" position message
  | (Json.Null | Json.Bool _ | Json.Num _ | Json.Str _ | Json.List _) as j ->
      fail "frame must be an object, got %s" (Json.to_string j)
  | Json.Obj _ as json -> (
      let id = match int_field "id" json with Some i -> i | None -> 0 in
      let str name =
        match str_field name json with
        | Some s -> Stdlib.Ok s
        | None -> fail "response missing %s" name
      in
      let int name =
        match int_field name json with
        | Some i -> Stdlib.Ok i
        | None -> fail "response missing %s" name
      in
      let* op = str "op" in
      match op with
      | "welcome" ->
          let* v = int "version" in
          Stdlib.Ok (id, Welcome { version = v })
      | "loaded" ->
          let* name = str "name" in
          let* rows = int "rows" in
          Stdlib.Ok (id, Loaded { name; rows })
      | "opened" ->
          let* session = str "session" in
          let* classes = int "classes" in
          let* omega_width = int "omega_width" in
          let* cache_hit =
            match bool_field "cache_hit" json with
            | Some b -> Stdlib.Ok b
            | None -> fail "response missing cache_hit"
          in
          Stdlib.Ok (id, Opened { session; classes; omega_width; cache_hit })
      | "question" ->
          let* q_session = str "session" in
          let* q_class = int "class" in
          let* q_r_row = int "r_row" in
          let* q_p_row = int "p_row" in
          let* q_r_cells =
            match str_list_field "r_cells" json with
            | Some l -> Stdlib.Ok l
            | None -> fail "response missing r_cells"
          in
          let* q_p_cells =
            match str_list_field "p_cells" json with
            | Some l -> Stdlib.Ok l
            | None -> fail "response missing p_cells"
          in
          Stdlib.Ok
            (id, Question { q_session; q_class; q_r_row; q_p_row; q_r_cells; q_p_cells })
      | "kquestion" ->
          let* k_session = str "session" in
          let* k_class = int "class" in
          let* k_rows =
            match int_list_field "rows" json with
            | Some l -> Stdlib.Ok l
            | None -> fail "response missing rows"
          in
          let* k_cells =
            match str_list_list_field "cells" json with
            | Some l -> Stdlib.Ok l
            | None -> fail "response missing cells"
          in
          Stdlib.Ok (id, Kquestion { k_session; k_class; k_rows; k_cells })
      | "done" ->
          let* session = str "session" in
          let* n_interactions = int "n_interactions" in
          let* predicate =
            match Json.member "predicate" json with
            | Some (Json.List l) ->
                let pairs =
                  List.filter_map
                    (fun pair ->
                      match (str_field "r" pair, str_field "p" pair) with
                      | Some a, Some b -> Some (a, b)
                      | (Some _ | None), (Some _ | None) -> None)
                    l
                in
                if List.compare_lengths pairs l = 0 then Stdlib.Ok pairs
                else fail "done predicate entries must be {r,p} objects"
            | Some
                (Json.Null | Json.Bool _ | Json.Num _ | Json.Str _ | Json.Obj _)
            | None ->
                fail "response missing predicate"
          in
          Stdlib.Ok (id, Done { session; predicate; n_interactions })
      | "saved" ->
          let* session = str "session" in
          let* doc =
            match Json.member "doc" json with
            | Some d -> Stdlib.Ok d
            | None -> fail "response missing doc"
          in
          Stdlib.Ok (id, Saved { session; doc })
      | "delta_applied" ->
          let* d_relation = str "relation" in
          let* d_added = int "added" in
          let* d_removed = int "removed" in
          let* d_cache_patched = int "cache_patched" in
          let* d_cache_dropped = int "cache_dropped" in
          let* d_recertified =
            match str_list_field "recertified" json with
            | Some l -> Stdlib.Ok l
            | None -> fail "response missing recertified"
          in
          let* d_stale =
            match Json.member "stale" json with
            | Some (Json.List l) ->
                let pairs =
                  List.filter_map
                    (fun entry ->
                      match
                        (str_field "session" entry, str_field "reason" entry)
                      with
                      | Some s, Some r -> Some (s, r)
                      | (Some _ | None), (Some _ | None) -> None)
                    l
                in
                if List.compare_lengths pairs l = 0 then Stdlib.Ok pairs
                else fail "stale entries must be {session,reason} objects"
            | Some
                (Json.Null | Json.Bool _ | Json.Num _ | Json.Str _ | Json.Obj _)
            | None ->
                fail "response missing stale"
          in
          Stdlib.Ok
            ( id,
              Delta_applied
                {
                  d_relation;
                  d_added;
                  d_removed;
                  d_cache_patched;
                  d_cache_dropped;
                  d_recertified;
                  d_stale;
                } )
      | "closed" ->
          let* session = str "session" in
          Stdlib.Ok (id, Closed { session })
      | "stats" ->
          let* sessions = int "sessions" in
          let* cache_hits = int "cache_hits" in
          let* cache_misses = int "cache_misses" in
          let* relations =
            match str_list_field "relations" json with
            | Some l -> Stdlib.Ok l
            | None -> fail "response missing relations"
          in
          Stdlib.Ok
            (id, Stats_reply { sessions; relations; cache_hits; cache_misses })
      | "error" ->
          let* code = str "code" in
          let* message = str "message" in
          Stdlib.Ok (id, Error { code; message })
      | other -> fail "unknown response op %S" other)
