(** Request handler: one protocol frame in, one frame out.

    [Service] is the pure part of the serve loop — it owns no transport.
    [bin/jqinfer serve] reads stdin lines, feeds them through
    {!handle_line} and prints the answers; tests call {!handle} on
    structured frames directly.  Every failure path (unknown session,
    corrupt resume document, unreadable CSV, malformed frame) produces an
    [Error] response, never an exception. *)

(** Answer one decoded request. *)
val handle : Manager.t -> Protocol.request -> Protocol.response

(** Answer one wire line: decode, dispatch, encode.  Undecodable lines
    yield an encoded [Error] frame (id 0 when the id was unreadable). *)
val handle_line : Manager.t -> string -> string

(** The typed backpressure response (code ["busy"]) a shed request is
    answered with when the worker pool refuses it. *)
val busy : unit -> Protocol.response

(** The blocking single-client loop: read a line, {!handle_line} it,
    write and flush the answer, [sweep] the manager after each request
    (default [true]), until EOF.  [bin/jqinfer serve] runs this on
    stdin/stdout; the bench runs it over a socketpair as the
    single-threaded baseline. *)
val serve_channels :
  ?sweep:bool -> Manager.t -> in_channel -> out_channel -> unit
