(* The session manager: the server's heart.

   A session is an [Engine] plus addressing metadata; the manager owns the
   id space, the idle clock and the Obs accounting.  Sessions are hashed
   across shards by id — one mutex per shard — so requests for sessions
   on different shards run in parallel from any number of domains; each
   request is a pure state transition on one session's engine value,
   executed under exactly one shard lock.  Ids come from a process-wide
   atomic counter, so they are globally unique without any global lock.

   Eviction keeps the EOF-path guarantee: a swept session is first frozen
   as a v2 [Session] document (labels, strategy, and the in-flight
   question if one is outstanding) into a bounded per-shard morgue, from
   which [evicted_doc] lets a returning client resume instead of losing
   its answers. *)

module Engine = Jqi_core.Engine
module Strategy = Jqi_core.Strategy
module Session = Jqi_core.Session
module Universe = Jqi_core.Universe
module Sample = Jqi_core.Sample
module Delta = Jqi_relational.Delta
module Obs = Jqi_obs.Obs

let c_opened = Obs.Counter.make "server.sessions_opened"
let c_resumed = Obs.Counter.make "server.sessions_resumed"
let c_closed = Obs.Counter.make "server.sessions_closed"
let c_evicted = Obs.Counter.make "server.sessions_evicted"
let c_questions = Obs.Counter.make "server.questions"
let c_labels = Obs.Counter.make "server.labels"
let c_autosaved = Obs.Counter.make "server.shard.evict_autosave"
let c_recertified = Obs.Counter.make "server.sessions_recertified"
let c_stale = Obs.Counter.make "server.sessions_stale"

type error =
  | Unknown_relation of string
  | Unknown_strategy of string
  | Unknown_session of string
  | No_pending of string
  | Corrupt_session of string
  | Stale_label of string
  | Bad_delta of string

let error_message = function
  | Unknown_relation n -> Printf.sprintf "no relation %S in the catalog" n
  | Unknown_strategy n ->
      Printf.sprintf
        "unknown strategy %S (bu|td|l1s|l2s|hybrid|rnd|igs)" n
  | Unknown_session id -> Printf.sprintf "no session %S" id
  | No_pending id ->
      Printf.sprintf "session %S has no outstanding question (ask first)" id
  | Corrupt_session msg -> Printf.sprintf "session document rejected: %s" msg
  | Stale_label msg -> msg
  | Bad_delta msg -> Printf.sprintf "delta rejected: %s" msg

let label_glyph = function Sample.Positive -> "+" | Sample.Negative -> "-"

(* Render [Engine.stale_reason] for the wire: which part of the replay
   died, and on which signature, so a client can decide what to re-ask. *)
let stale_reason_string = function
  | Engine.Label_retired { step; signature; label } ->
      Printf.sprintf "label #%d (%s on %s) names a class retired by churn"
        step (label_glyph label)
        (Jqi_util.Bits.to_string signature)
  | Engine.Label_contradicts { step; signature; label } ->
      Printf.sprintf
        "label #%d (%s on %s) contradicts the post-churn instance" step
        (label_glyph label)
        (Jqi_util.Bits.to_string signature)
  | Engine.Question_retired { signature } ->
      Printf.sprintf
        "the pending question's class %s was retired by churn"
        (Jqi_util.Bits.to_string signature)

let stale_doc_message signature label =
  Printf.sprintf "%s class %s was retired by churn"
    (match label with
    | Some l -> Printf.sprintf "the %s-labeled" (label_glyph l)
    | None -> "the pending question's")
    (Jqi_util.Bits.to_string signature)

type info = {
  id : string;
  rel_names : string list;  (* catalog names, in relation order *)
  strategy_name : string;
  classes : int;
  omega_width : int;
  cache_hit : bool;
}

type turn = Next of Engine.question | Finished of Engine.outcome

type stats = {
  live : int;
  opened : int;
  resumed : int;
  closed : int;
  evicted : int;
  autosaved : int;
  questions : int;
  labels : int;
}

let zero_stats =
  {
    live = 0;
    opened = 0;
    resumed = 0;
    closed = 0;
    evicted = 0;
    autosaved = 0;
    questions = 0;
    labels = 0;
  }

let add_stats a b =
  {
    live = a.live + b.live;
    opened = a.opened + b.opened;
    resumed = a.resumed + b.resumed;
    closed = a.closed + b.closed;
    evicted = a.evicted + b.evicted;
    autosaved = a.autosaved + b.autosaved;
    questions = a.questions + b.questions;
    labels = a.labels + b.labels;
  }

type session = {
  s_id : string;
  s_rels : string list;  (* catalog names, in relation order *)
  s_strategy : string;  (* [Strategy.name], e.g. "TD" *)
  mutable s_universe : Universe.t [@lint.guarded_by "shards"];
      (* swapped by [apply_delta] when the session re-certifies *)
  mutable s_engine : Engine.t [@lint.guarded_by "shards"];
  mutable s_stale : string option [@lint.guarded_by "shards"];
      (* set when re-certification failed; ask/tell refuse, save works *)
  mutable s_last_active : float [@lint.guarded_by "shards"];
}

(* Everything inside a shard is guarded by that shard's mutex; the
   counters are exact, unlike the best-effort cross-domain Obs ones. *)
type shard = {
  sessions : (string, session) Hashtbl.t [@lint.guarded_by "shards"];
  morgue : (string, Jqi_util.Json.t) Hashtbl.t [@lint.guarded_by "shards"];
      (* autosaved evictees *)
  morgue_order : string Queue.t [@lint.guarded_by "shards"];
      (* FIFO for the morgue bound *)
  mutable st : stats [@lint.guarded_by "shards"];
      (* [live] unused here; computed from [sessions] *)
}

(* Autosaved documents kept per shard; older ones are dropped first. *)
let max_morgue = 512

type loader = name:string -> string -> Jqi_relational.Relation.t

type t = {
  catalog : Catalog.t;
  loader : loader;
  shards : shard Shard.t;
  clock : unit -> float;
  idle_timeout : float option;
  seed : int;
  next_id : int Atomic.t;
}

(* The default loader materializes in memory; [bin/jqinfer] injects a
   paged one (jqi.storage) so served relations can live in heap files
   under a buffer-pool budget without this library depending on the
   storage engine. *)
let default_loader ~name path = Jqi_relational.Csv.load_relation ~name path

let create ?clock ?idle_timeout ?(seed = 42) ?shards ?loader catalog =
  let clock = match clock with Some c -> c | None -> Obs.now in
  let loader = match loader with Some l -> l | None -> default_loader in
  {
    catalog;
    loader;
    shards =
      Shard.create ?shards (fun _ ->
          {
            sessions = Hashtbl.create 16;
            morgue = Hashtbl.create 4;
            morgue_order = Queue.create ();
            st = zero_stats;
          });
    clock;
    idle_timeout;
    seed;
    next_id = Atomic.make 1;
  }

let catalog t = t.catalog
let shards t = Shard.size t.shards

(* Load a CSV through the injected backend and register it in the
   catalog under [name].  Exceptions ([Sys_error], [Invalid_argument])
   propagate for the transport layer to render. *)
let load t ~name path =
  let rel = t.loader ~name path in
  Catalog.add ~name t.catalog rel;
  rel

let fresh_id t = Printf.sprintf "s%d" (Atomic.fetch_and_add t.next_id 1)

(* Shared tail of open/resume: wrap an engine into a registered session.
   The id is drawn before locking, so only the target shard is held. *)
let register t ~rel_names ~strategy_name ~universe ~cache_hit ~resumed engine =
  let id = fresh_id t in
  let session =
    {
      s_id = id;
      s_rels = rel_names;
      s_strategy = strategy_name;
      s_universe = universe;
      s_engine = engine;
      s_stale = None;
      s_last_active = t.clock ();
    }
  in
  Shard.with_key t.shards id (fun shard ->
      Hashtbl.replace shard.sessions id session;
      shard.st <-
        (if resumed then { shard.st with resumed = shard.st.resumed + 1 }
         else { shard.st with opened = shard.st.opened + 1 }));
  {
    id;
    rel_names;
    strategy_name;
    classes = Universe.n_classes universe;
    omega_width = Jqi_core.Omega.width (Universe.omega universe);
    cache_hit;
  }

(* Resolve catalog names in order; the first unknown name is the error. *)
let relation_list t names =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | name :: rest -> (
        match Catalog.find t.catalog name with
        | Some rel -> go (rel :: acc) rest
        | None -> Error (Unknown_relation name))
  in
  go [] names

let span_attrs names = [ ("relations", String.concat "," names) ]

(* Shared front of open/resume over any arity.  [Invalid_argument] (fewer
   than two relations) and [Universe.Kary_too_large] propagate — the
   service layer renders both as error frames. *)
let open_list t ~relations ~strategy =
  Obs.span ~attrs:(span_attrs relations) "server.open" (fun () ->
      match relation_list t relations with
      | Error e -> Error e
      | Ok rels -> (
          match Strategy.of_name ~seed:t.seed strategy with
          | None -> Error (Unknown_strategy strategy)
          | Some strat ->
              let cache_hit, universe = Catalog.universe_list t.catalog rels in
              let engine = Engine.create universe strat in
              Obs.Counter.incr c_opened;
              Ok
                (register t ~rel_names:relations
                   ~strategy_name:(Strategy.name strat) ~universe ~cache_hit
                   ~resumed:false engine)))

let open_session t ~r ~p ~strategy = open_list t ~relations:[ r; p ] ~strategy

let resume_list t ~relations ?strategy doc =
  Obs.span ~attrs:(span_attrs relations) "server.resume" (fun () ->
      match relation_list t relations with
      | Error e -> Error e
      | Ok rels -> (
          let cache_hit, universe = Catalog.universe_list t.catalog rels in
          match Session.of_json_full universe doc with
          | exception Session.Corrupt msg -> Error (Corrupt_session msg)
          | exception Session.Stale_label { signature; label } ->
              Error (Stale_label (stale_doc_message signature label))
          | loaded -> (
              let strategy_name =
                match (strategy, loaded.Session.strategy) with
                | Some s, _ -> s
                | None, Some s -> s
                | None, None -> "td"
              in
              match Strategy.of_name ~seed:t.seed strategy_name with
              | None -> Error (Unknown_strategy strategy_name)
              | Some strat -> (
                  match
                    Session.pending_class
                      ?signature:loaded.Session.pending_sig universe
                      loaded.Session.state loaded.Session.pending
                  with
                  | exception Session.Stale_label { signature; label } ->
                      Error (Stale_label (stale_doc_message signature label))
                  | pending ->
                      let engine =
                        Engine.create ~state:loaded.Session.state ?pending
                          universe strat
                      in
                      Obs.Counter.incr c_resumed;
                      Ok
                        (register t ~rel_names:relations
                           ~strategy_name:(Strategy.name strat) ~universe
                           ~cache_hit ~resumed:true engine)))))

let resume_session t ~r ~p ?strategy doc =
  resume_list t ~relations:[ r; p ] ?strategy doc

(* Run [f] on the live session [id] under its shard's lock, stamping the
   idle clock.  All reads and writes of a session happen inside this. *)
let with_session t id f =
  Shard.with_key t.shards id (fun shard ->
      match Hashtbl.find_opt shard.sessions id with
      | None -> Error (Unknown_session id)
      | Some s ->
          s.s_last_active <- t.clock ();
          f shard s)

let turn_of shard session =
  match Engine.pending session.s_engine with
  | Some q ->
      Obs.Counter.incr c_questions;
      shard.st <- { shard.st with questions = shard.st.questions + 1 };
      Next q
  | None -> Finished (Engine.result session.s_engine)

(* A stale session refuses further inference — its engine is pinned to a
   pre-delta universe the catalog no longer serves — but [save] still
   works, so the labels are recoverable. *)
let check_live id session =
  match session.s_stale with
  | None -> Ok ()
  | Some reason ->
      Error
        (Stale_label
           (Printf.sprintf "session %S is stale after data churn: %s" id
              reason))

let ask t id =
  Obs.span ~attrs:[ ("session", id) ] "server.ask" (fun () ->
      with_session t id (fun shard s ->
          match check_live id s with
          | Error err -> Error err
          | Ok () -> Ok (turn_of shard s)))

let tell t id label =
  Obs.span ~attrs:[ ("session", id) ] "server.tell" (fun () ->
      with_session t id (fun shard session ->
          match check_live id session with
          | Error err -> Error err
          | Ok () -> (
              match Engine.pending session.s_engine with
              | None -> Error (No_pending id)
              | Some _ ->
                  Obs.Counter.incr c_labels;
                  shard.st <- { shard.st with labels = shard.st.labels + 1 };
                  session.s_engine <- Engine.answer session.s_engine label;
                  Ok (turn_of shard session))))

(* Freeze a session as a v2 document: labels, strategy, and the pending
   question.  Called under the shard lock (from [save] and [sweep]). *)
let doc_of_session session =
  let pending =
    match Engine.pending session.s_engine with
    | Some q ->
        Some (Universe.cls session.s_universe q.Engine.class_id).Universe.rep
    | None -> None
  in
  let outcome = Engine.result session.s_engine in
  Session.to_json ~strategy:session.s_strategy ?pending session.s_universe
    outcome.Engine.state

let save t id =
  Obs.span ~attrs:[ ("session", id) ] "server.save" (fun () ->
      with_session t id (fun _shard session -> Ok (doc_of_session session)))

let close t id =
  with_session t id (fun shard _ ->
      Hashtbl.remove shard.sessions id;
      Obs.Counter.incr c_closed;
      shard.st <- { shard.st with closed = shard.st.closed + 1 };
      Ok ())

(* ---- data churn: delta ingestion + re-certification broadcast ---- *)

type delta_info = {
  relation : string;
  added : int;
  removed : int;
  cache_patched : int;  (* universe-cache entries migrated, not rebuilt *)
  cache_dropped : int;  (* universe-cache entries evicted *)
  recertified : string list;  (* sessions carried over, sorted *)
  stale : (string * string) list;  (* (session id, reason), sorted *)
}

(* Carry one session over to the post-delta universe.  Runs under the
   session's shard lock; the catalog lookup is expected to hit the entry
   [Catalog.apply_delta] just patched (distinct lock domains, so the
   nesting is safe). *)
let recertify_one t s =
  match relation_list t s.s_rels with
  | Error (Unknown_relation n) ->
      Error (Printf.sprintf "relation %S left the catalog" n)
  | Error
      ( Unknown_strategy _ | Unknown_session _ | No_pending _
      | Corrupt_session _ | Stale_label _ | Bad_delta _ ) ->
      Error "a session relation left the catalog"
  | Ok rels -> (
      match Catalog.universe_list t.catalog rels with
      | exception Universe.Kary_too_large { work; limit } ->
          Error
            (Printf.sprintf
               "the post-delta universe exceeds the k-ary work limit \
                (%d > %d)"
               work limit)
      | exception Invalid_argument msg -> Error msg
      | _hit, u' -> (
          match Engine.recertify s.s_engine u' with
          | Engine.Recertified e' ->
              s.s_engine <- e';
              s.s_universe <- u';
              s.s_stale <- None;
              Ok ()
          | Engine.Stale r -> Error (stale_reason_string r)))

(* Broadcast: every live session over [relation] is re-certified against
   the post-delta universe; the ones that fail are flagged stale (their
   engines keep the pre-delta universe, so [save] stays coherent). *)
let recertify_sessions t ~relation =
  Shard.fold t.shards ~init:([], []) ~f:(fun acc _ shard ->
      Hashtbl.fold
        (fun id s (ok, bad) ->
          if not (List.mem relation s.s_rels) then (ok, bad)
          else
            match recertify_one t s with
            | Ok () ->
                Obs.Counter.incr c_recertified;
                (id :: ok, bad)
            | Error reason ->
                s.s_stale <- Some reason;
                Obs.Counter.incr c_stale;
                (ok, (id, reason) :: bad))
        shard.sessions acc)

let apply_delta t ~relation d =
  Obs.span ~attrs:[ ("relation", relation) ] "server.delta" (fun () ->
      match Catalog.apply_delta t.catalog ~name:relation d with
      | None -> Error (Unknown_relation relation)
      | exception Invalid_argument msg -> Error (Bad_delta msg)
      | Some churn ->
          let ok, bad = recertify_sessions t ~relation in
          Ok
            {
              relation;
              added = Array.length d.Delta.adds;
              removed = Array.length d.Delta.removes;
              cache_patched = churn.Catalog.patched;
              cache_dropped = churn.Catalog.dropped;
              recertified = List.sort String.compare ok;
              stale = List.sort (fun (a, _) (b, _) -> String.compare a b) bad;
            })

(* Stash an evicted session's document, dropping the oldest entries past
   the morgue bound.  Under the shard lock. *)
let stash shard id doc =
  if not (Hashtbl.mem shard.morgue id) then Queue.add id shard.morgue_order;
  Hashtbl.replace shard.morgue id doc;
  while Hashtbl.length shard.morgue > max_morgue do
    match Queue.take_opt shard.morgue_order with
    | Some oldest -> Hashtbl.remove shard.morgue oldest
    | None -> Hashtbl.reset shard.morgue
  done

let sweep t =
  match t.idle_timeout with
  | None -> []
  | Some timeout ->
      let now = t.clock () in
      let evicted =
        Shard.fold t.shards ~init:[] ~f:(fun acc _ shard ->
            let stale =
              Hashtbl.fold
                (fun id s acc ->
                  if now -. s.s_last_active > timeout then (id, s) :: acc
                  else acc)
                shard.sessions []
            in
            List.iter
              (fun (id, s) ->
                (* The EOF-path guarantee: never drop a labeler's answers.
                   Autosave before removal — pending question included —
                   so the session is resumable from [evicted_doc]. *)
                stash shard id (doc_of_session s);
                Hashtbl.remove shard.sessions id;
                Obs.Counter.incr c_evicted;
                Obs.Counter.incr c_autosaved;
                shard.st <-
                  {
                    shard.st with
                    evicted = shard.st.evicted + 1;
                    autosaved = shard.st.autosaved + 1;
                  })
              stale;
            List.rev_append (List.rev_map fst stale) acc)
      in
      List.sort String.compare evicted

let evicted_doc t id =
  Shard.with_key t.shards id (fun shard -> Hashtbl.find_opt shard.morgue id)

let session_count t =
  Shard.fold t.shards ~init:0 ~f:(fun n _ shard ->
      n + Hashtbl.length shard.sessions)

let session_ids t =
  List.sort String.compare
    (Shard.fold t.shards ~init:[] ~f:(fun acc _ shard ->
         Hashtbl.fold (fun id _ acc -> id :: acc) shard.sessions acc))

let session_universe t id =
  Shard.with_key t.shards id (fun shard ->
      Option.map
        (fun s -> s.s_universe)
        (Hashtbl.find_opt shard.sessions id))

let shard_stats t =
  Shard.mapi t.shards (fun _ shard ->
      { shard.st with live = Hashtbl.length shard.sessions })

let stats t =
  List.fold_left add_stats zero_stats (shard_stats t)
