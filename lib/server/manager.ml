(* The session manager: the server's heart.

   A session is an [Engine] plus addressing metadata; the manager owns the
   id space, the idle clock and the Obs accounting.  Everything here is
   single-domain: concurrency at this layer means *interleaving* many
   sessions' requests, which the sans-IO engine makes trivial — each
   request is a pure state transition on one session's engine value. *)

module Engine = Jqi_core.Engine
module Strategy = Jqi_core.Strategy
module Session = Jqi_core.Session
module Universe = Jqi_core.Universe
module Obs = Jqi_obs.Obs

let c_opened = Obs.Counter.make "server.sessions_opened"
let c_resumed = Obs.Counter.make "server.sessions_resumed"
let c_closed = Obs.Counter.make "server.sessions_closed"
let c_evicted = Obs.Counter.make "server.sessions_evicted"
let c_questions = Obs.Counter.make "server.questions"
let c_labels = Obs.Counter.make "server.labels"

type error =
  | Unknown_relation of string
  | Unknown_strategy of string
  | Unknown_session of string
  | No_pending of string
  | Corrupt_session of string

let error_message = function
  | Unknown_relation n -> Printf.sprintf "no relation %S in the catalog" n
  | Unknown_strategy n ->
      Printf.sprintf
        "unknown strategy %S (bu|td|l1s|l2s|hybrid|rnd|igs)" n
  | Unknown_session id -> Printf.sprintf "no session %S" id
  | No_pending id ->
      Printf.sprintf "session %S has no outstanding question (ask first)" id
  | Corrupt_session msg -> Printf.sprintf "session document rejected: %s" msg

type info = {
  id : string;
  r_name : string;
  p_name : string;
  strategy_name : string;
  classes : int;
  omega_width : int;
  cache_hit : bool;
}

type turn = Next of Engine.question | Finished of Engine.outcome

type session = {
  s_id : string;
  s_r : string;
  s_p : string;
  s_strategy : string;  (* [Strategy.name], e.g. "TD" *)
  s_universe : Universe.t;
  mutable s_engine : Engine.t;
  mutable s_last_active : float;
}

type t = {
  catalog : Catalog.t;
  sessions : (string, session) Hashtbl.t;
  clock : unit -> float;
  idle_timeout : float option;
  seed : int;
  mutable next_id : int;
}

let create ?clock ?idle_timeout ?(seed = 42) catalog =
  let clock = match clock with Some c -> c | None -> Obs.now in
  {
    catalog;
    sessions = Hashtbl.create 64;
    clock;
    idle_timeout;
    seed;
    next_id = 1;
  }

let catalog t = t.catalog

let fresh_id t =
  let id = Printf.sprintf "s%d" t.next_id in
  t.next_id <- t.next_id + 1;
  id

let find_session t id =
  match Hashtbl.find_opt t.sessions id with
  | Some s ->
      s.s_last_active <- t.clock ();
      Ok s
  | None -> Error (Unknown_session id)

(* Shared tail of open/resume: wrap an engine into a registered session. *)
let register t ~r_name ~p_name ~strategy_name ~universe ~cache_hit engine =
  let id = fresh_id t in
  let session =
    {
      s_id = id;
      s_r = r_name;
      s_p = p_name;
      s_strategy = strategy_name;
      s_universe = universe;
      s_engine = engine;
      s_last_active = t.clock ();
    }
  in
  Hashtbl.replace t.sessions id session;
  {
    id;
    r_name;
    p_name;
    strategy_name;
    classes = Universe.n_classes universe;
    omega_width = Jqi_core.Omega.width (Universe.omega universe);
    cache_hit;
  }

let relation_pair t ~r ~p =
  match (Catalog.find t.catalog r, Catalog.find t.catalog p) with
  | Some rr, Some pp -> Ok (rr, pp)
  | None, _ -> Error (Unknown_relation r)
  | Some _, None -> Error (Unknown_relation p)

let open_session t ~r ~p ~strategy =
  Obs.span ~attrs:[ ("r", r); ("p", p) ] "server.open" (fun () ->
      match relation_pair t ~r ~p with
      | Error e -> Error e
      | Ok (rr, pp) -> (
          match Strategy.of_name ~seed:t.seed strategy with
          | None -> Error (Unknown_strategy strategy)
          | Some strat ->
              let cache_hit, universe = Catalog.universe t.catalog rr pp in
              let engine = Engine.create universe strat in
              Obs.Counter.incr c_opened;
              Ok
                (register t ~r_name:r ~p_name:p
                   ~strategy_name:(Strategy.name strat) ~universe ~cache_hit
                   engine)))

let resume_session t ~r ~p ?strategy doc =
  Obs.span ~attrs:[ ("r", r); ("p", p) ] "server.resume" (fun () ->
      match relation_pair t ~r ~p with
      | Error e -> Error e
      | Ok (rr, pp) -> (
          let cache_hit, universe = Catalog.universe t.catalog rr pp in
          match Session.of_json_full universe doc with
          | exception Session.Corrupt msg -> Error (Corrupt_session msg)
          | loaded -> (
              let strategy_name =
                match (strategy, loaded.Session.strategy) with
                | Some s, _ -> s
                | None, Some s -> s
                | None, None -> "td"
              in
              match Strategy.of_name ~seed:t.seed strategy_name with
              | None -> Error (Unknown_strategy strategy_name)
              | Some strat ->
                  let pending =
                    Session.pending_class universe loaded.Session.state
                      loaded.Session.pending
                  in
                  let engine =
                    Engine.create ~state:loaded.Session.state ?pending universe
                      strat
                  in
                  Obs.Counter.incr c_resumed;
                  Ok
                    (register t ~r_name:r ~p_name:p
                       ~strategy_name:(Strategy.name strat) ~universe
                       ~cache_hit engine))))

let turn_of session =
  match Engine.pending session.s_engine with
  | Some q ->
      Obs.Counter.incr c_questions;
      Next q
  | None -> Finished (Engine.result session.s_engine)

let ask t id =
  Obs.span ~attrs:[ ("session", id) ] "server.ask" (fun () ->
      Result.map turn_of (find_session t id))

let tell t id label =
  Obs.span ~attrs:[ ("session", id) ] "server.tell" (fun () ->
      match find_session t id with
      | Error e -> Error e
      | Ok session -> (
          match Engine.pending session.s_engine with
          | None -> Error (No_pending id)
          | Some _ ->
              Obs.Counter.incr c_labels;
              session.s_engine <- Engine.answer session.s_engine label;
              Ok (turn_of session)))

let save t id =
  Obs.span ~attrs:[ ("session", id) ] "server.save" (fun () ->
      match find_session t id with
      | Error e -> Error e
      | Ok session ->
          let pending =
            match Engine.pending session.s_engine with
            | Some q ->
                Some
                  (Universe.cls session.s_universe q.Engine.class_id)
                    .Universe.rep
            | None -> None
          in
          let outcome = Engine.result session.s_engine in
          Ok
            (Session.to_json ~strategy:session.s_strategy ?pending
               session.s_universe outcome.Engine.state))

let close t id =
  match find_session t id with
  | Error e -> Error e
  | Ok _ ->
      Hashtbl.remove t.sessions id;
      Obs.Counter.incr c_closed;
      Ok ()

let sweep t =
  match t.idle_timeout with
  | None -> []
  | Some timeout ->
      let now = t.clock () in
      let stale =
        Hashtbl.fold
          (fun id s acc ->
            if now -. s.s_last_active > timeout then id :: acc else acc)
          t.sessions []
      in
      List.iter
        (fun id ->
          Hashtbl.remove t.sessions id;
          Obs.Counter.incr c_evicted)
        stale;
      List.sort String.compare stale

let session_count t = Hashtbl.length t.sessions

let session_ids t =
  List.sort String.compare
    (Hashtbl.fold (fun id _ acc -> id :: acc) t.sessions [])

let session_universe t id =
  Option.map
    (fun s -> s.s_universe)
    (Hashtbl.find_opt t.sessions id)
