(* Frame dispatcher.  The interesting work happens in [Manager]; this
   module renders its answers for a client that holds no relation data —
   questions carry the representative pair's cells, outcomes carry the
   predicate as attribute-name pairs. *)

module Csv = Jqi_relational.Csv
module Relation = Jqi_relational.Relation
module Tuple = Jqi_relational.Tuple
module Value = Jqi_relational.Value
module Engine = Jqi_core.Engine
module Omega = Jqi_core.Omega
module Universe = Jqi_core.Universe

let error_code = function
  | Manager.Unknown_relation _ -> "unknown_relation"
  | Manager.Unknown_strategy _ -> "unknown_strategy"
  | Manager.Unknown_session _ -> "unknown_session"
  | Manager.No_pending _ -> "no_pending"
  | Manager.Corrupt_session _ -> "corrupt_session"
  | Manager.Stale_label _ -> "stale_label"
  | Manager.Bad_delta _ -> "bad_delta"

let error e =
  Protocol.Error { code = error_code e; message = Manager.error_message e }

let opened (info : Manager.info) =
  Protocol.Opened
    {
      session = info.Manager.id;
      classes = info.Manager.classes;
      omega_width = info.Manager.omega_width;
      cache_hit = info.Manager.cache_hit;
    }

let cells tuple = List.map Value.to_string (Tuple.to_list tuple)

(* Binary sessions keep the historical [Question] frame byte-for-byte;
   wider sessions answer with [Kquestion] (one row + cell list per
   relation). *)
let render_question universe session (q : Engine.question) =
  let rep = (Universe.cls universe q.Engine.class_id).Universe.rep in
  if Universe.n_relations universe = 2 then
    let r_cells, p_cells =
      match q.Engine.representative with
      | Some (tr, tp) -> (cells tr, cells tp)
      | None -> ([], [])
    in
    Protocol.Question
      {
        q_session = session;
        q_class = q.Engine.class_id;
        q_r_row = rep.(0);
        q_p_row = rep.(1);
        q_r_cells = r_cells;
        q_p_cells = p_cells;
      }
  else
    let k_cells =
      match q.Engine.rows with
      | Some tuples -> Array.to_list (Array.map cells tuples)
      | None -> []
    in
    Protocol.Kquestion
      {
        k_session = session;
        k_class = q.Engine.class_id;
        k_rows = Array.to_list rep;
        k_cells;
      }

let render_done universe session (outcome : Engine.outcome) =
  let omega = Universe.omega universe in
  let predicate =
    if Universe.n_relations universe = 2 then
      List.map
        (fun (i, j) -> (Omega.r_name omega i, Omega.p_name omega j))
        (Omega.to_pairs omega outcome.Engine.predicate)
    else
      let qualify i a =
        Omega.rel_name omega i ^ "." ^ Omega.attr_name omega i a
      in
      List.map
        (fun ((i, a), (j, b)) -> (qualify i a, qualify j b))
        (Omega.to_kpairs omega outcome.Engine.predicate)
  in
  Protocol.Done
    {
      session;
      predicate;
      n_interactions = outcome.Engine.n_interactions;
    }

let render_turn manager session turn =
  match Manager.session_universe manager session with
  | None ->
      Protocol.Error
        { code = "internal"; message = "session vanished mid-request" }
  | Some universe -> (
      match turn with
      | Manager.Next q -> render_question universe session q
      | Manager.Finished outcome -> render_done universe session outcome)

let handle manager request =
  match request with
  | Protocol.Hello { versions } -> (
      match Protocol.negotiate versions with
      | Some v -> Protocol.Welcome { version = v }
      | None ->
          Protocol.Error
            {
              code = "version";
              message =
                Printf.sprintf "no common protocol version (server speaks %d)"
                  Protocol.version;
            })
  | Protocol.Load { name; path } -> (
      let name =
        match name with
        | Some n -> n
        | None -> Filename.remove_extension (Filename.basename path)
      in
      match Manager.load manager ~name path with
      | exception Sys_error message -> Protocol.Error { code = "io"; message }
      | exception Invalid_argument message ->
          Protocol.Error { code = "csv"; message }
      | rel -> Protocol.Loaded { name; rows = Relation.cardinality rel })
  | Protocol.Open_session { r; p; strategy } -> (
      match Manager.open_session manager ~r ~p ~strategy with
      | exception Invalid_argument message ->
          Protocol.Error { code = "invalid"; message }
      | Ok info -> opened info
      | Error e -> error e)
  | Protocol.Ask { session } -> (
      match Manager.ask manager session with
      | Ok turn -> render_turn manager session turn
      | Error e -> error e)
  | Protocol.Tell { session; label } -> (
      match Manager.tell manager session label with
      | Ok turn -> render_turn manager session turn
      | Error e -> error e)
  | Protocol.Save { session } -> (
      match Manager.save manager session with
      | Ok doc -> Protocol.Saved { session; doc }
      | Error e -> error e)
  | Protocol.Resume { r; p; strategy; doc } -> (
      match Manager.resume_session manager ~r ~p ?strategy doc with
      | exception Invalid_argument message ->
          Protocol.Error { code = "invalid"; message }
      | Ok info -> opened info
      | Error e -> error e)
  | Protocol.Open_kary { relations; strategy } -> (
      match Manager.open_list manager ~relations ~strategy with
      | exception Invalid_argument message ->
          Protocol.Error { code = "invalid"; message }
      | exception Universe.Kary_too_large { work; limit } ->
          Protocol.Error
            {
              code = "too_large";
              message =
                Printf.sprintf
                  "k-ary universe too large: %d work units exceeds limit %d"
                  work limit;
            }
      | Ok info -> opened info
      | Error e -> error e)
  | Protocol.Resume_kary { relations; strategy; doc } -> (
      match Manager.resume_list manager ~relations ?strategy doc with
      | exception Invalid_argument message ->
          Protocol.Error { code = "invalid"; message }
      | exception Universe.Kary_too_large { work; limit } ->
          Protocol.Error
            {
              code = "too_large";
              message =
                Printf.sprintf
                  "k-ary universe too large: %d work units exceeds limit %d"
                  work limit;
            }
      | Ok info -> opened info
      | Error e -> error e)
  | Protocol.Delta { relation; insert; delete } -> (
      match Catalog.find (Manager.catalog manager) relation with
      | None -> error (Manager.Unknown_relation relation)
      | Some rel -> (
          (* Wire rows are cell strings; parse them under the live
             relation's schema, CSV-style ("" is NULL), so a client
             speaks the same dialect it loaded with. *)
          let schema = Relation.schema rel in
          let columns = Jqi_relational.Schema.columns schema in
          let arity = Jqi_relational.Schema.arity schema in
          let parse_rows what rows =
            List.map
              (fun cells ->
                if List.compare_lengths cells columns <> 0 then
                  invalid_arg
                    (Printf.sprintf "%s row cell count mismatch: %s has arity %d"
                       what relation arity)
                else
                  Tuple.of_list
                    (List.map2
                       (fun (col : Jqi_relational.Schema.column) c ->
                         match Value.parse col.Jqi_relational.Schema.ty c with
                         | Some v -> v
                         | None ->
                             invalid_arg
                               (Printf.sprintf
                                  "%s row cell %s: %S does not parse as %s"
                                  what col.Jqi_relational.Schema.name c
                                  (Value.ty_name col.Jqi_relational.Schema.ty)))
                       columns cells))
              rows
          in
          match
            Jqi_relational.Delta.of_lists
              ~adds:(parse_rows "insert" insert)
              ~removes:(parse_rows "delete" delete)
          with
          | exception Invalid_argument message ->
              Protocol.Error { code = "bad_delta"; message }
          | d -> (
              match Manager.apply_delta manager ~relation d with
              | Ok info ->
                  Protocol.Delta_applied
                    {
                      d_relation = info.Manager.relation;
                      d_added = info.Manager.added;
                      d_removed = info.Manager.removed;
                      d_cache_patched = info.Manager.cache_patched;
                      d_cache_dropped = info.Manager.cache_dropped;
                      d_recertified = info.Manager.recertified;
                      d_stale = info.Manager.stale;
                    }
              | Error e -> error e)))
  | Protocol.Close { session } -> (
      match Manager.close manager session with
      | Ok () -> Protocol.Closed { session }
      | Error e -> error e)
  | Protocol.Stats ->
      let catalog = Manager.catalog manager in
      let hits, misses = Catalog.stats catalog in
      Protocol.Stats_reply
        {
          sessions = Manager.session_count manager;
          relations = Catalog.names catalog;
          cache_hits = hits;
          cache_misses = misses;
        }

let handle_line manager line =
  match Protocol.decode_request line with
  | Ok (id, request) -> Protocol.encode_response ~id (handle manager request)
  | Error (id, response) -> Protocol.encode_response ~id response

(* The backpressure frame: what a shed request is answered with when the
   worker pool's bounded queue is full.  Typed so clients can tell
   overload (retry later, with backoff) from a protocol mistake. *)
let busy () =
  Protocol.Error
    {
      code = "busy";
      message = "server overloaded — request shed, retry with backoff";
    }

(* The original single-client deployment: a blocking JSON-lines loop
   over a channel pair.  [bin/jqinfer serve] runs it on stdin/stdout;
   the bench runs it over a socketpair as the single-threaded
   differential baseline for the concurrent listener. *)
let serve_channels ?(sweep = true) manager ic oc =
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> ()
    | line ->
        if not (String.equal (String.trim line) "") then begin
          output_string oc (handle_line manager line);
          output_char oc '\n';
          flush oc
        end;
        if sweep then ignore (Manager.sweep manager);
        loop ()
  in
  loop ()
