(* Domain-based worker pool with a bounded job queue.

   The listener's connection threads produce protocol requests; the
   pool's worker domains consume them.  The queue is bounded: when it is
   full, [submit]/[async] refuse immediately ([Shed]/[false]) instead of
   buffering without limit — the caller turns that into a typed [busy]
   error frame, which is the server's backpressure signal.  Shedding is
   counted exactly in [stats] and best-effort in the [server.shed] Obs
   counter; queue depth at each accepted submission feeds the
   [server.queue_depth] Obs histogram.

   One mutex guards the queue and counters; workers block on a condition
   variable.  Jobs are closures — [submit] parks the calling thread on a
   per-call cell until its job ran, re-raising whatever the job raised,
   so a worker can never die of a job's exception. *)

module Obs = Jqi_obs.Obs

let c_jobs = Obs.Counter.make "server.pool.jobs"
let c_shed = Obs.Counter.make "server.shed"
let h_depth = Obs.Histogram.make "server.queue_depth"

type 'a outcome = Done of 'a | Shed

type stats = {
  submitted : int;  (** accepted into the queue *)
  completed : int;
  shed : int;  (** refused because the queue was full *)
  max_depth : int;  (** deepest the queue has been *)
}

type t = {
  mutex : Mutex.t;
  not_empty : Condition.t;
  jobs : (unit -> unit) Queue.t [@lint.guarded_by "mutex"];
  capacity : int;
  mutable closing : bool [@lint.guarded_by "mutex"];
  mutable submitted : int [@lint.guarded_by "mutex"];
  mutable completed : int [@lint.guarded_by "mutex"];
  mutable shed : int [@lint.guarded_by "mutex"];
  mutable max_depth : int [@lint.guarded_by "mutex"];
  mutable domains : unit Domain.t list
      [@lint.allow "R9"];
      (* Written once in [create] before [t] escapes, read/cleared in
         [shutdown] after every worker has been joined — never raced. *)
}

let worker t =
  let rec loop () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.jobs && not t.closing do
      Condition.wait t.not_empty t.mutex
    done;
    match Queue.take_opt t.jobs with
    | None ->
        (* Empty and closing: drained, so this worker is done. *)
        Mutex.unlock t.mutex;
        ()
    | Some job ->
        Mutex.unlock t.mutex;
        job ();
        Mutex.lock t.mutex;
        t.completed <- t.completed + 1;
        Mutex.unlock t.mutex;
        Obs.Counter.incr c_jobs;
        loop ()
  in
  loop ()

let create ?(capacity = 256) ~workers () =
  let workers = if workers < 1 then 1 else workers in
  let t =
    {
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      jobs = Queue.create ();
      capacity = (if capacity < 1 then 1 else capacity);
      closing = false;
      submitted = 0;
      completed = 0;
      shed = 0;
      max_depth = 0;
      domains = [];
    }
  in
  t.domains <- List.init workers (fun _ -> Domain.spawn (fun () -> worker t));
  t

let workers t = List.length t.domains
let capacity t = t.capacity

(* Enqueue [job] if there is room.  Returns the accepted flag; counters
   and the depth histogram are updated inside the lock. *)
let enqueue t job =
  Mutex.lock t.mutex;
  let accepted = (not t.closing) && Queue.length t.jobs < t.capacity in
  if accepted then begin
    Queue.add job t.jobs;
    t.submitted <- t.submitted + 1;
    let depth = Queue.length t.jobs in
    if depth > t.max_depth then t.max_depth <- depth;
    Condition.signal t.not_empty;
    Mutex.unlock t.mutex;
    Obs.Histogram.observe h_depth (float_of_int depth)
  end
  else begin
    t.shed <- t.shed + 1;
    Mutex.unlock t.mutex;
    Obs.Counter.incr c_shed
  end;
  accepted

let async t job =
  enqueue t (fun () ->
      try job () with _exn -> ()
      (* A fire-and-forget job's exception has nowhere to go; swallowing
         it keeps the worker alive.  [submit] jobs re-raise instead. *))

type 'a cell = {
  cm : Mutex.t;
  cc : Condition.t;
  mutable state : [ `Pending | `Value of 'a | `Raised of exn ]
      [@lint.guarded_by "cm"];
}

let submit t f =
  let cell = { cm = Mutex.create (); cc = Condition.create (); state = `Pending } in
  let job () =
    let result = try `Value (f ()) with exn -> `Raised exn in
    Mutex.lock cell.cm;
    cell.state <- result;
    Condition.signal cell.cc;
    Mutex.unlock cell.cm
  in
  if not (enqueue t job) then Shed
  else begin
    Mutex.lock cell.cm;
    while cell.state = `Pending do
      Condition.wait cell.cc cell.cm
    done;
    let state = cell.state in
    Mutex.unlock cell.cm;
    match state with
    | `Value v -> Done v
    | `Raised exn -> raise exn
    | `Pending -> assert false
  end

let stats t =
  Mutex.protect t.mutex (fun () ->
      {
        submitted = t.submitted;
        completed = t.completed;
        shed = t.shed;
        max_depth = t.max_depth;
      })

let shutdown t =
  Mutex.lock t.mutex;
  t.closing <- true;
  Condition.broadcast t.not_empty;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []
