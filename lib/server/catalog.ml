(* Relation catalog + universe cache.

   Universe construction is the expensive part of opening a session — the
   profile-quotient scan touches every row of both relations — so it is
   memoized per relation pair.  The key is the pair of content
   fingerprints, not the names: re-registering "flights" with new rows
   yields a different fingerprint and a fresh build, while two differently
   registered names over identical content share one universe.

   Concurrency: the universe cache is sharded by fingerprint-pair key
   (one mutex per shard), so sessions over distinct pairs build and look
   up in parallel.  A build runs *inside* its shard's lock — two
   concurrent misses on the same pair produce exactly one build (the
   second caller blocks, then hits), at the price of briefly serializing
   unrelated pairs that hash to the same shard.  The name table is a
   single small mutex: registration is rare and lookups are O(1). *)

module Relation = Jqi_relational.Relation
module Delta = Jqi_relational.Delta
module Universe = Jqi_core.Universe
module Obs = Jqi_obs.Obs

let c_hit = Obs.Counter.make "server.universe_cache_hit"
let c_miss = Obs.Counter.make "server.universe_cache_miss"
let c_patched = Obs.Counter.make "server.universe_cache_patched"
let c_delta_evicted = Obs.Counter.make "server.universe_cache_delta_evicted"

type ushard = {
  universes : (string, Universe.t) Hashtbl.t [@lint.guarded_by "shards"];
      (* "fp(R):fp(P)" keyed *)
  mutable hits : int [@lint.guarded_by "shards"];
  mutable misses : int [@lint.guarded_by "shards"];
}

type t = {
  names_mutex : Mutex.t;
  relations : (string, Relation.t) Hashtbl.t [@lint.guarded_by "names_mutex"];
  fps : (string, Relation.Fp.acc) Hashtbl.t [@lint.guarded_by "names_mutex"];
      (* per-name fingerprint accumulators, so append-only deltas bump
         the fingerprint in O(|adds|) instead of rehashing the relation *)
  shards : ushard Shard.t;
}

let create ?shards () =
  {
    names_mutex = Mutex.create ();
    relations = Hashtbl.create 16;
    fps = Hashtbl.create 16;
    shards =
      Shard.create ?shards (fun _ ->
          { universes = Hashtbl.create 4; hits = 0; misses = 0 });
  }

let shards t = Shard.size t.shards

let with_names t f = Mutex.protect t.names_mutex f

let add ?name t rel =
  let name = match name with Some n -> n | None -> Relation.name rel in
  with_names t (fun () ->
      Hashtbl.replace t.relations name rel;
      (* a replaced relation's accumulator is stale; recomputed lazily *)
      Hashtbl.remove t.fps name)

let find t name = with_names t (fun () -> Hashtbl.find_opt t.relations name)

let names t =
  List.sort String.compare
    (with_names t (fun () ->
         Hashtbl.fold (fun name _ acc -> name :: acc) t.relations []))

(* One cache serves both arities: the key is the colon-joined fingerprint
   list, and a binary list builds via [Universe.build] (byte-identical to
   [Universe.build_kary] on two relations, so mixed lookups are safe). *)
let universe_list t rels =
  let key = String.concat ":" (List.map Relation.fingerprint rels) in
  Shard.with_key t.shards key (fun shard ->
      match Hashtbl.find_opt shard.universes key with
      | Some u ->
          shard.hits <- shard.hits + 1;
          Obs.Counter.incr c_hit;
          (true, u)
      | None ->
          shard.misses <- shard.misses + 1;
          Obs.Counter.incr c_miss;
          let u =
            Obs.span ~attrs:[ ("key", key) ] "server.universe_build" (fun () ->
                match rels with
                | [ r; p ] -> Universe.build r p
                | _ -> Universe.build_kary rels)
          in
          Hashtbl.replace shard.universes key u;
          (false, u))

let universe t r p = universe_list t [ r; p ]

(* ---- delta-granularity invalidation ---- *)

type churn = {
  new_rel : Relation.t;
  old_fp : string;
  new_fp : string;
  patched : int;  (* cache entries migrated to the new key *)
  dropped : int;  (* cache entries evicted instead of patched *)
}

(* Fingerprints are fixed-width hex (no ':'), so splitting a colon-joined
   cache key recovers the component list exactly. *)
let positions_of fp key =
  let parts = String.split_on_char ':' key in
  let rec go i acc = function
    | [] -> List.rev acc
    | p :: rest ->
        go (i + 1) (if String.equal p fp then i :: acc else acc) rest
  in
  go 0 [] parts

let rekey ~old_fp ~new_fp key =
  String.concat ":"
    (List.map
       (fun p -> if String.equal p old_fp then new_fp else p)
       (String.split_on_char ':' key))

let apply_delta t ~name (d : Delta.t) =
  match with_names t (fun () -> Hashtbl.find_opt t.relations name) with
  | None -> None
  | Some rel ->
      let old_acc =
        match with_names t (fun () -> Hashtbl.find_opt t.fps name) with
        | Some acc -> acc
        | None -> Relation.Fp.of_relation rel
      in
      let old_fp = Relation.Fp.render old_acc in
      (* Validate up front (read-only): a bad delta must raise before any
         cache entry is evicted or any paged store is touched — the
         patch loop below treats patch failures as evictions, which
         would otherwise swallow a genuinely malformed delta. *)
      Delta.check_arity (Relation.arity rel) d;
      ignore (Relation.resolve_removes rel d : int array);
      let paged = String.equal (Relation.backend_name rel) "paged" in
      (* Snapshot the cache entries keyed on the pre-delta fingerprint. *)
      let matches =
        Shard.fold t.shards ~init:[] ~f:(fun acc _ shard ->
            Hashtbl.fold
              (fun key u acc ->
                match positions_of old_fp key with
                | [] -> acc
                | ps -> (key, ps, u) :: acc)
              shard.universes acc)
      in
      List.iter
        (fun (key, _, _) ->
          Shard.with_key t.shards key (fun shard ->
              Hashtbl.remove shard.universes key))
        matches;
      let patched = ref 0 and dropped = ref 0 in
      let fresh_rel = ref None in
      let patch_one (key, ps, u) =
        match Universe.apply_delta u (List.map (fun i -> (i, d)) ps) with
        | u' ->
            incr patched;
            Obs.Counter.incr c_patched;
            (match (Universe.relation_array u', ps) with
            | Some rels, i :: _ when Option.is_none !fresh_rel ->
                fresh_rel := Some rels.(i)
            | (Some _ | None), _ -> ());
            Some (key, u')
        | exception (Invalid_argument _ | Universe.Kary_too_large _) ->
            incr dropped;
            Obs.Counter.incr c_delta_evicted;
            if paged then
              (* The store may hold the delta already (the class arithmetic
                 validates before mutating, but an empty final product
                 raises after); refresh the view without re-applying. *)
              fresh_rel := Some (Relation.apply_delta rel Delta.empty);
            None
      in
      let migrated =
        if paged then
          (* A paged delta mutates the one backing store, so it can be
             applied exactly once: patch the first entry, drop the rest
             (their pre-delta views are stale anyway).  A self-join entry
             (the same fingerprint at two positions) would re-apply, so
             it is dropped too. *)
          match matches with
          | (_, [ _ ], _) as first :: rest ->
              List.iter
                (fun _ ->
                  incr dropped;
                  Obs.Counter.incr c_delta_evicted)
                rest;
              Option.to_list (patch_one first)
          | matches ->
              List.iter
                (fun _ ->
                  incr dropped;
                  Obs.Counter.incr c_delta_evicted)
                matches;
              []
        else List.filter_map patch_one matches
      in
      let new_rel =
        match !fresh_rel with
        | Some r -> r
        | None -> Relation.apply_delta rel d
      in
      let new_acc =
        if Delta.inserts_only d then Relation.Fp.feed_rows old_acc d.Delta.adds
        else Relation.Fp.of_relation new_rel
      in
      let new_fp = Relation.Fp.render new_acc in
      List.iter
        (fun (key, u') ->
          let key' = rekey ~old_fp ~new_fp key in
          Shard.with_key t.shards key' (fun shard ->
              Hashtbl.replace shard.universes key' u'))
        migrated;
      with_names t (fun () ->
          Hashtbl.replace t.relations name new_rel;
          Hashtbl.replace t.fps name new_acc);
      Some
        { new_rel; old_fp; new_fp; patched = !patched; dropped = !dropped }

let shard_stats t = Shard.mapi t.shards (fun _ s -> (s.hits, s.misses))

let stats t =
  Shard.fold t.shards ~init:(0, 0) ~f:(fun (h, m) _ s ->
      (h + s.hits, m + s.misses))
