(* Relation catalog + universe cache.

   Universe construction is the expensive part of opening a session — the
   profile-quotient scan touches every row of both relations — so it is
   memoized per relation pair.  The key is the pair of content
   fingerprints, not the names: re-registering "flights" with new rows
   yields a different fingerprint and a fresh build, while two differently
   registered names over identical content share one universe. *)

module Relation = Jqi_relational.Relation
module Universe = Jqi_core.Universe
module Obs = Jqi_obs.Obs

let c_hit = Obs.Counter.make "server.universe_cache_hit"
let c_miss = Obs.Counter.make "server.universe_cache_miss"

type t = {
  relations : (string, Relation.t) Hashtbl.t;
  universes : (string, Universe.t) Hashtbl.t;  (* "fp(R):fp(P)" keyed *)
  mutable hits : int;
  mutable misses : int;
}

let create () =
  {
    relations = Hashtbl.create 16;
    universes = Hashtbl.create 16;
    hits = 0;
    misses = 0;
  }

let add ?name t rel =
  let name = match name with Some n -> n | None -> Relation.name rel in
  Hashtbl.replace t.relations name rel

let find t name = Hashtbl.find_opt t.relations name

let names t =
  List.sort String.compare
    (Hashtbl.fold (fun name _ acc -> name :: acc) t.relations [])

let universe t r p =
  let key = Relation.fingerprint r ^ ":" ^ Relation.fingerprint p in
  match Hashtbl.find_opt t.universes key with
  | Some u ->
      t.hits <- t.hits + 1;
      Obs.Counter.incr c_hit;
      (true, u)
  | None ->
      t.misses <- t.misses + 1;
      Obs.Counter.incr c_miss;
      let u =
        Obs.span ~attrs:[ ("key", key) ] "server.universe_build" (fun () ->
            Universe.build r p)
      in
      Hashtbl.replace t.universes key u;
      (false, u)

let stats t = (t.hits, t.misses)
