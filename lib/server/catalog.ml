(* Relation catalog + universe cache.

   Universe construction is the expensive part of opening a session — the
   profile-quotient scan touches every row of both relations — so it is
   memoized per relation pair.  The key is the pair of content
   fingerprints, not the names: re-registering "flights" with new rows
   yields a different fingerprint and a fresh build, while two differently
   registered names over identical content share one universe.

   Concurrency: the universe cache is sharded by fingerprint-pair key
   (one mutex per shard), so sessions over distinct pairs build and look
   up in parallel.  A build runs *inside* its shard's lock — two
   concurrent misses on the same pair produce exactly one build (the
   second caller blocks, then hits), at the price of briefly serializing
   unrelated pairs that hash to the same shard.  The name table is a
   single small mutex: registration is rare and lookups are O(1). *)

module Relation = Jqi_relational.Relation
module Universe = Jqi_core.Universe
module Obs = Jqi_obs.Obs

let c_hit = Obs.Counter.make "server.universe_cache_hit"
let c_miss = Obs.Counter.make "server.universe_cache_miss"

type ushard = {
  universes : (string, Universe.t) Hashtbl.t [@lint.guarded_by "shards"];
      (* "fp(R):fp(P)" keyed *)
  mutable hits : int [@lint.guarded_by "shards"];
  mutable misses : int [@lint.guarded_by "shards"];
}

type t = {
  names_mutex : Mutex.t;
  relations : (string, Relation.t) Hashtbl.t [@lint.guarded_by "names_mutex"];
  shards : ushard Shard.t;
}

let create ?shards () =
  {
    names_mutex = Mutex.create ();
    relations = Hashtbl.create 16;
    shards =
      Shard.create ?shards (fun _ ->
          { universes = Hashtbl.create 4; hits = 0; misses = 0 });
  }

let shards t = Shard.size t.shards

let with_names t f = Mutex.protect t.names_mutex f

let add ?name t rel =
  let name = match name with Some n -> n | None -> Relation.name rel in
  with_names t (fun () -> Hashtbl.replace t.relations name rel)

let find t name = with_names t (fun () -> Hashtbl.find_opt t.relations name)

let names t =
  List.sort String.compare
    (with_names t (fun () ->
         Hashtbl.fold (fun name _ acc -> name :: acc) t.relations []))

(* One cache serves both arities: the key is the colon-joined fingerprint
   list, and a binary list builds via [Universe.build] (byte-identical to
   [Universe.build_kary] on two relations, so mixed lookups are safe). *)
let universe_list t rels =
  let key = String.concat ":" (List.map Relation.fingerprint rels) in
  Shard.with_key t.shards key (fun shard ->
      match Hashtbl.find_opt shard.universes key with
      | Some u ->
          shard.hits <- shard.hits + 1;
          Obs.Counter.incr c_hit;
          (true, u)
      | None ->
          shard.misses <- shard.misses + 1;
          Obs.Counter.incr c_miss;
          let u =
            Obs.span ~attrs:[ ("key", key) ] "server.universe_build" (fun () ->
                match rels with
                | [ r; p ] -> Universe.build r p
                | _ -> Universe.build_kary rels)
          in
          Hashtbl.replace shard.universes key u;
          (false, u))

let universe t r p = universe_list t [ r; p ]

let shard_stats t = Shard.mapi t.shards (fun _ s -> (s.hits, s.misses))

let stats t =
  Shard.fold t.shards ~init:(0, 0) ~f:(fun (h, m) _ s ->
      (h + s.hits, m + s.misses))
