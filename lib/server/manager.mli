(** Concurrent-session manager: many independent labeling sessions over
    one relation catalog, each a sans-IO [Engine] addressed by id.

    The manager is transport-agnostic — [Service] maps protocol frames
    onto it, [Listener] serves it over sockets, the bench drives it
    directly.  Sessions are cheap: opening one costs a universe-cache
    lookup (the build itself is shared via [Catalog]) plus one strategy
    choice, so thousands of interleaved sessions are the intended load.

    Every operation is safe to call from any domain.  Sessions are
    hashed across shards by id, one mutex per shard: a request locks
    exactly its session's shard for the duration of the engine
    transition, so sessions on different shards proceed in parallel and
    two racing requests for the same session serialize — each sees a
    consistent engine value, never a torn one.

    Every call stamps the session's last-activity time from the
    manager's clock ([Obs.now] unless injected), and [sweep] evicts
    sessions idle longer than [idle_timeout] — first freezing each as a
    v2 session document retrievable via {!evicted_doc}, the same
    autosave guarantee the CLI's EOF path gives (in-flight pending
    question included).  All activity ticks [server.*] Obs counters
    (best-effort across domains); {!shard_stats} and {!stats} are exact,
    maintained under the shard locks. *)

module Engine = Jqi_core.Engine

type t

type error =
  | Unknown_relation of string
  | Unknown_strategy of string
  | Unknown_session of string
  | No_pending of string  (** tell without an outstanding question *)
  | Corrupt_session of string  (** resume document rejected; message *)
  | Stale_label of string
      (** a churn delta retired a class the session depends on: resuming
          a document whose label/pending signature no longer exists, or
          ask/tell on a session flagged stale by {!apply_delta} *)
  | Bad_delta of string  (** delta rejected against the live relation *)

val error_message : error -> string

(** What [open_session]/[resume_session] report back. *)
type info = {
  id : string;
  rel_names : string list;  (** catalog names, in relation order *)
  strategy_name : string;
  classes : int;
  omega_width : int;
  cache_hit : bool;  (** the universe came from the cache *)
}

(** One protocol step: either the next question to present, or the
    session's outcome (Γ reached — nothing informative left to ask). *)
type turn = Next of Engine.question | Finished of Engine.outcome

(** Exact activity counters.  As per-shard values ({!shard_stats}) each
    is maintained under that shard's lock; the global {!stats} is their
    sum, so shard stats always sum to global stats. *)
type stats = {
  live : int;  (** sessions currently registered *)
  opened : int;
  resumed : int;
  closed : int;
  evicted : int;
  autosaved : int;  (** evictions that stashed a resume document *)
  questions : int;
  labels : int;
}

val zero_stats : stats
val add_stats : stats -> stats -> stats

(** How [Load] requests turn a CSV path into a relation.  The default
    materializes in memory ([Csv.load_relation]); the CLI injects a
    paged loader (jqi.storage) so served relations stream from heap
    files — this library never depends on the storage engine. *)
type loader = name:string -> string -> Jqi_relational.Relation.t

(** [clock] defaults to [Obs.now]; [idle_timeout] (seconds) enables
    {!sweep}; [seed] feeds randomized strategies; [shards] defaults to
    {!Shard.default_shards}; [loader] services [Load] requests. *)
val create :
  ?clock:(unit -> float) -> ?idle_timeout:float -> ?seed:int ->
  ?shards:int -> ?loader:loader -> Catalog.t -> t

val catalog : t -> Catalog.t

val load : t -> name:string -> string -> Jqi_relational.Relation.t
(** Load a CSV via the manager's backend loader and add it to the
    catalog.  Raises [Sys_error] / [Invalid_argument] on bad input. *)

(** Number of session shards. *)
val shards : t -> int

(** Open a fresh session over two catalog relations with a strategy
    named as in [Strategy.of_name].  Equivalent to {!open_list} over the
    two-element relation list. *)
val open_session :
  t -> r:string -> p:string -> strategy:string -> (info, error) result

(** Open a fresh session over [relations] catalog names, in order.  Two
    names give the classic binary session; three or more build a k-ary
    quotient universe via [Universe.build_kary].  Build errors
    ([Invalid_argument] on degenerate lists, [Universe.Kary_too_large])
    propagate to the caller. *)
val open_list :
  t -> relations:string list -> strategy:string -> (info, error) result

(** Thaw a [Session] document (v1 or v2) into a live session.
    [strategy] overrides the persisted strategy name; without either the
    default is td.  A persisted in-flight question is re-presented when
    it is still informative. *)
val resume_session :
  t -> r:string -> p:string -> ?strategy:string -> Jqi_util.Json.t ->
  (info, error) result

(** K-ary {!resume_session}: thaw a session document (v3 for k > 2, any
    version for two relations) over [relations] catalog names. *)
val resume_list :
  t -> relations:string list -> ?strategy:string -> Jqi_util.Json.t ->
  (info, error) result

val ask : t -> string -> (turn, error) result
(** Fails with [Stale_label] on a session flagged stale by
    {!apply_delta} — {!save} remains available to recover the labels. *)

(** Label the outstanding question; returns the following turn. *)
val tell : t -> string -> Jqi_core.Sample.label -> (turn, error) result

(** Freeze the session as a v2 [Session] document (strategy + pending
    question included). *)
val save : t -> string -> (Jqi_util.Json.t, error) result

val close : t -> string -> (unit, error) result

(** {2 Data churn}

    Outcome of {!apply_delta}: the cache work the catalog did and the
    fate of every live session over the relation. *)
type delta_info = {
  relation : string;
  added : int;  (** rows inserted *)
  removed : int;  (** rows deleted *)
  cache_patched : int;
      (** universe-cache entries migrated via [Universe.apply_delta] *)
  cache_dropped : int;  (** universe-cache entries evicted instead *)
  recertified : string list;  (** sessions carried over, sorted *)
  stale : (string * string) list;
      (** (session id, reason) for sessions that could not be carried
          over, sorted by id.  Stale sessions refuse {!ask}/{!tell} but
          keep their pre-delta engine so {!save} stays coherent. *)
}

(** Fold a churn batch into the named catalog relation and broadcast
    re-certification: the catalog patches its cached universes at delta
    granularity ({!Catalog.apply_delta}), then every live session over
    the relation is replayed {e by signature} against the post-delta
    universe ([Engine.recertify]).  Still-consistent sessions continue
    transparently — same id, labels preserved, pending question
    re-anchored — while sessions depending on a retired class are
    flagged stale with a typed reason.

    [Unknown_relation] when [relation] is not registered; [Bad_delta]
    when the rows mismatch the relation's arity or a remove matches no
    live row (the relation and cache are untouched in both cases). *)
val apply_delta :
  t -> relation:string -> Jqi_relational.Delta.t ->
  (delta_info, error) result

(** Evict sessions idle past [idle_timeout]; returns the evicted ids,
    sorted.  Each evicted session is autosaved first — its v2 document
    (in-flight pending question included) lands in a bounded per-shard
    store readable via {!evicted_doc}.  No-op without a timeout. *)
val sweep : t -> string list

(** The autosaved document of an evicted session, if still retained
    (the per-shard store is bounded; oldest entries fall out first).
    Feed it to {!resume_session} to pick up where the evictee left
    off. *)
val evicted_doc : t -> string -> Jqi_util.Json.t option

val session_count : t -> int

(** Live ids, sorted. *)
val session_ids : t -> string list

(** The universe a session runs on, for callers that need to render
    predicates or signatures (e.g. [Service]). *)
val session_universe : t -> string -> Jqi_core.Universe.t option

(** Per-shard exact counters, in shard order. *)
val shard_stats : t -> stats list

(** Global exact counters: the sum of {!shard_stats}. *)
val stats : t -> stats
