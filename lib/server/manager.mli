(** Concurrent-session manager: many independent labeling sessions over
    one relation catalog, each a sans-IO [Engine] addressed by id.

    The manager is transport-agnostic — [Service] maps protocol frames
    onto it, the bench drives it directly, and a future network front end
    would too.  Sessions are cheap: opening one costs a universe-cache
    lookup (the build itself is shared via [Catalog]) plus one strategy
    choice, so thousands of interleaved sessions are the intended load.

    Every call stamps the session's last-activity time from the
    manager's clock ([Obs.now] unless injected), and [sweep] evicts
    sessions idle longer than [idle_timeout].  All activity ticks
    [server.*] Obs counters, with per-call spans carrying the session id
    as an attribute. *)

module Engine = Jqi_core.Engine

type t

type error =
  | Unknown_relation of string
  | Unknown_strategy of string
  | Unknown_session of string
  | No_pending of string  (** tell without an outstanding question *)
  | Corrupt_session of string  (** resume document rejected; message *)

val error_message : error -> string

(** What [open_session]/[resume_session] report back. *)
type info = {
  id : string;
  r_name : string;
  p_name : string;
  strategy_name : string;
  classes : int;
  omega_width : int;
  cache_hit : bool;  (** the universe came from the cache *)
}

(** One protocol step: either the next question to present, or the
    session's outcome (Γ reached — nothing informative left to ask). *)
type turn = Next of Engine.question | Finished of Engine.outcome

(** [clock] defaults to [Obs.now]; [idle_timeout] (seconds) enables
    {!sweep}; [seed] feeds randomized strategies. *)
val create :
  ?clock:(unit -> float) -> ?idle_timeout:float -> ?seed:int -> Catalog.t -> t

val catalog : t -> Catalog.t

(** Open a fresh session over two catalog relations with a strategy
    named as in [Strategy.of_name]. *)
val open_session :
  t -> r:string -> p:string -> strategy:string -> (info, error) result

(** Thaw a [Session] document (v1 or v2) into a live session.
    [strategy] overrides the persisted strategy name; without either the
    default is td.  A persisted in-flight question is re-presented when
    it is still informative. *)
val resume_session :
  t -> r:string -> p:string -> ?strategy:string -> Jqi_util.Json.t ->
  (info, error) result

val ask : t -> string -> (turn, error) result

(** Label the outstanding question; returns the following turn. *)
val tell : t -> string -> Jqi_core.Sample.label -> (turn, error) result

(** Freeze the session as a v2 [Session] document (strategy + pending
    question included). *)
val save : t -> string -> (Jqi_util.Json.t, error) result

val close : t -> string -> (unit, error) result

(** Evict sessions idle past [idle_timeout]; returns the evicted ids.
    No-op without a timeout. *)
val sweep : t -> string list

val session_count : t -> int

(** Live ids, sorted. *)
val session_ids : t -> string list

(** The universe a session runs on, for callers that need to render
    predicates or signatures (e.g. [Service]). *)
val session_universe : t -> string -> Jqi_core.Universe.t option
