(* Mutex-sharded state: the concurrency primitive under [Catalog] and
   [Manager].

   A ['a t] is N independent copies of some mutable state, each behind
   its own mutex.  Keys (session ids, universe fingerprints) are hashed
   to a shard with FNV-1a — deterministic across runs and domains, and
   deliberately not [Hashtbl.hash] so the distribution is fixed by this
   file alone.  A caller locks exactly one shard per operation, so
   operations on keys that land on different shards proceed in parallel;
   the global lock of the single-table design is gone.

   The discipline callers must keep: never call back into the same
   [Shard.t] from inside [with_key]/[with_slot]/[fold] (the mutexes are
   not reentrant), and never hold two shards of the same [t] at once.
   Operations over *different* [t]s (the manager's and the catalog's)
   may nest freely — they are acquired in call order and released before
   return, so no cycle can form. *)

type 'a t = { mutexes : Mutex.t array; states : 'a array }

let default_shards = 16

let create ?(shards = default_shards) init =
  let shards = if shards < 1 then 1 else shards in
  {
    mutexes = Array.init shards (fun _ -> Mutex.create ());
    states = Array.init shards init;
  }

let size t = Array.length t.states

(* 32-bit FNV-1a, folded into a non-negative OCaml int. *)
let fnv1a key =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x01000193 land 0xffffffff)
    key;
  !h land max_int

let index t key = fnv1a key mod Array.length t.states

let with_slot t i f = Mutex.protect t.mutexes.(i) (fun () -> f t.states.(i))

let with_key t key f = with_slot t (index t key) f

let fold t ~init ~f =
  let acc = ref init in
  for i = 0 to Array.length t.states - 1 do
    acc := with_slot t i (fun s -> f !acc i s)
  done;
  !acc

let mapi t f = List.rev (fold t ~init:[] ~f:(fun acc i s -> f i s :: acc))
