(** Mutex-sharded mutable state.

    [create ?shards init] builds [shards] independent states
    ([init i] for shard [i]), each behind its own mutex.  String keys
    are hashed to shards with FNV-1a (stable across runs — the shard a
    session lands on is a pure function of its id), so operations on
    keys of different shards never contend.

    Locking discipline: one shard of a given [t] at a time, no
    reentrancy.  Nesting across *different* [t]s is safe because every
    operation releases its shard before returning. *)

type 'a t

val default_shards : int

(** [create ?shards init] — [shards] defaults to {!default_shards} and
    is clamped to at least 1. *)
val create : ?shards:int -> (int -> 'a) -> 'a t

val size : 'a t -> int

(** The shard [key] hashes to: [fnv1a key mod size]. *)
val index : 'a t -> string -> int

(** Run [f] on [key]'s shard state while holding that shard's mutex. *)
val with_key : 'a t -> string -> ('a -> 'b) -> 'b

(** Run [f] on shard [i]'s state while holding its mutex. *)
val with_slot : 'a t -> int -> ('a -> 'b) -> 'b

(** Fold over every shard in index order, locking each one in turn
    (never two at once).  The result is a consistent per-shard snapshot,
    not a global atomic one. *)
val fold : 'a t -> init:'b -> f:('b -> int -> 'a -> 'b) -> 'b

(** [mapi t f] = per-shard [f i state] under each shard's lock, in
    index order. *)
val mapi : 'a t -> (int -> 'a -> 'b) -> 'b list
