(* Observability: spans, counters, histograms.

   Design constraints (see doc/OBSERVABILITY.md):

   - The disabled hot path must be as close to free as OCaml allows: one
     load of [on] and a conditional branch, no allocation, no clock read.
     Every mutating entry point starts with [if !on then ...].
   - The registry is process-global so that instrumented libraries
     ([jqi.core], [jqi.relational]) and consumers (CLI, bench, tests)
     agree on counters without threading handles through APIs.
   - Counters are plain mutable ints shared across domains; racing
     increments are memory-safe in OCaml 5 and may at worst lose updates,
     which metrics tolerate.  The span stack is main-domain only. *)

module Json = Jqi_util.Json
module Table = Jqi_util.Ascii_table

let on = ref false
let enabled () = !on
let set_enabled b = on := b

(* Monotonic-ized wall clock: gettimeofday clamped to never step back, so
   span durations and trace timestamps are always non-negative. *)
let last_now = ref 0.

let now () =
  let t = Unix.gettimeofday () in
  if t > !last_now then last_now := t;
  !last_now

let epoch = now ()

(* ----------------------------- counters --------------------------- *)

module Counter = struct
  type t = { name : string; mutable n : int }

  let registry : (string, t) Hashtbl.t = Hashtbl.create 64

  let make name =
    match Hashtbl.find_opt registry name with
    | Some c -> c
    | None ->
        let c = { name; n = 0 } in
        Hashtbl.add registry name c;
        c

  let incr c = if !on then c.n <- c.n + 1
  let add c k = if !on then c.n <- c.n + k
  let name c = c.name
  let value c = c.n

  let find name =
    match Hashtbl.find_opt registry name with Some c -> c.n | None -> 0

  let reset_all () = Hashtbl.iter (fun _ c -> c.n <- 0) registry
end

(* ---------------------------- histograms -------------------------- *)

module Histogram = struct
  (* Constant-time observations: running count/sum/min/max plus 64
     power-of-two buckets (bucket i covers (2^(i-33), 2^(i-32)]), enough
     resolution to separate µs from ms from s without storing samples. *)
  type t = {
    name : string;
    mutable count : int;
    mutable sum : float;
    mutable minv : float;
    mutable maxv : float;
    buckets : int array;
  }

  let n_buckets = 64
  let bucket_offset = 32

  let registry : (string, t) Hashtbl.t = Hashtbl.create 16

  let make name =
    match Hashtbl.find_opt registry name with
    | Some h -> h
    | None ->
        let h =
          { name; count = 0; sum = 0.; minv = nan; maxv = nan;
            buckets = Array.make n_buckets 0 }
        in
        Hashtbl.add registry name h;
        h

  let bucket_of v =
    if v <= 0. || Float.is_nan v then 0
    else
      let i = int_of_float (Float.ceil (Float.log2 v)) + bucket_offset in
      if i < 0 then 0 else if i >= n_buckets then n_buckets - 1 else i

  let observe h v =
    if !on then begin
      h.count <- h.count + 1;
      h.sum <- h.sum +. v;
      if h.count = 1 || v < h.minv then h.minv <- v;
      if h.count = 1 || v > h.maxv then h.maxv <- v;
      let b = h.buckets.(bucket_of v) in
      h.buckets.(bucket_of v) <- b + 1
    end

  let name h = h.name
  let count h = h.count
  let sum h = h.sum
  let mean h = if h.count = 0 then nan else h.sum /. float_of_int h.count

  let quantile h q =
    if h.count = 0 then nan
    else begin
      let target =
        int_of_float (Float.ceil (q *. float_of_int h.count)) |> max 1
      in
      let rec go i seen =
        if i >= n_buckets then h.maxv
        else
          let seen = seen + h.buckets.(i) in
          if seen >= target then Float.pow 2. (float_of_int (i - bucket_offset))
          else go (i + 1) seen
      in
      go 0 0
    end

  let reset_all () =
    Hashtbl.iter
      (fun _ h ->
        h.count <- 0;
        h.sum <- 0.;
        h.minv <- nan;
        h.maxv <- nan;
        Array.fill h.buckets 0 n_buckets 0)
      registry
end

(* ------------------------------ spans ----------------------------- *)

type handle = {
  sp_name : string;
  sp_path : string;
  sp_depth : int;
  sp_start : float;
  sp_attrs : (string * string) list;
  sp_live : bool;
}

type finished = {
  f_name : string;
  f_path : string;
  f_depth : int;
  f_start : float;
  f_dur : float;
  f_attrs : (string * string) list;
}

let null_handle =
  { sp_name = ""; sp_path = ""; sp_depth = 0; sp_start = 0.; sp_attrs = [];
    sp_live = false }

let stack : handle list ref = ref []
let finished : finished list ref = ref [] (* newest first *)

let enter ?(attrs = []) name =
  if not !on then null_handle
  else begin
    let path, depth =
      match !stack with
      | [] -> (name, 0)
      | parent :: _ -> (parent.sp_path ^ "/" ^ name, parent.sp_depth + 1)
    in
    let sp =
      { sp_name = name; sp_path = path; sp_depth = depth; sp_start = now ();
        sp_attrs = attrs; sp_live = true }
    in
    stack := sp :: !stack;
    sp
  end

let record sp =
  finished :=
    { f_name = sp.sp_name; f_path = sp.sp_path; f_depth = sp.sp_depth;
      f_start = sp.sp_start; f_dur = now () -. sp.sp_start;
      f_attrs = sp.sp_attrs }
    :: !finished

let exit sp =
  if sp.sp_live && List.memq sp !stack then begin
    (* Pop to the matching frame: inner spans missing their [exit] are
       closed here with the same end time. *)
    let rec pop = function
      | [] -> []
      | f :: rest ->
          record f;
          if f == sp then rest else pop rest
    in
    stack := pop !stack
  end

let span ?attrs name f =
  if not !on then f ()
  else begin
    let sp = enter ?attrs name in
    Fun.protect ~finally:(fun () -> exit sp) f
  end

let reset () =
  Counter.reset_all ();
  Histogram.reset_all ();
  stack := [];
  finished := []

(* ------------------------- trace export --------------------------- *)

(* Chrome trace format ("X" complete events), loadable in chrome://tracing
   and Perfetto.  Timestamps are microseconds from the process epoch. *)
let trace_json () =
  let event f =
    let base =
      [
        ("name", Json.Str f.f_name);
        ("cat", Json.Str "jqi");
        ("ph", Json.Str "X");
        ("ts", Json.Num ((f.f_start -. epoch) *. 1e6));
        ("dur", Json.Num (f.f_dur *. 1e6));
        ("pid", Json.int 1);
        ("tid", Json.int 1);
      ]
    in
    let args =
      match f.f_attrs with
      | [] -> []
      | attrs ->
          [ ("args", Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) attrs)) ]
    in
    Json.Obj (base @ args)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (List.rev_map event !finished));
      ("displayTimeUnit", Json.Str "ms");
    ]

let save_trace path = Json.save_file path (trace_json ())

(* ---------------------------- snapshot ---------------------------- *)

module Report = struct
  type histogram_summary = {
    h_count : int;
    h_sum : float;
    h_mean : float;
    h_min : float;
    h_max : float;
  }

  type span_summary = {
    s_path : string;
    s_name : string;
    s_depth : int;
    s_calls : int;
    s_total : float;
  }

  type t = {
    counters : (string * int) list;
    histograms : (string * histogram_summary) list;
    spans : span_summary list;
  }

  let by_name (a, _) (b, _) = String.compare a b

  let snapshot () =
    let counters =
      Hashtbl.fold (fun name c acc -> (name, c.Counter.n) :: acc)
        Counter.registry []
      |> List.sort by_name
    in
    let histograms =
      Hashtbl.fold
        (fun name (h : Histogram.t) acc ->
          ( name,
            { h_count = h.count; h_sum = h.sum; h_mean = Histogram.mean h;
              h_min = h.minv; h_max = h.maxv } )
          :: acc)
        Histogram.registry []
      |> List.sort by_name
    in
    let agg : (string, span_summary) Hashtbl.t = Hashtbl.create 32 in
    List.iter
      (fun f ->
        match Hashtbl.find_opt agg f.f_path with
        | Some s ->
            Hashtbl.replace agg f.f_path
              { s with s_calls = s.s_calls + 1; s_total = s.s_total +. f.f_dur }
        | None ->
            Hashtbl.add agg f.f_path
              { s_path = f.f_path; s_name = f.f_name; s_depth = f.f_depth;
                s_calls = 1; s_total = f.f_dur })
      !finished;
    let spans =
      Hashtbl.fold (fun _ s acc -> s :: acc) agg []
      (* Lexicographic order on the slash-joined path is a pre-order walk
         of the span tree ('/' sorts before every name character we use). *)
      |> List.sort (fun a b -> String.compare a.s_path b.s_path)
    in
    { counters; histograms; spans }

  let counter t name =
    match List.assoc_opt name t.counters with Some v -> v | None -> 0

  let num_or_null f = if Float.is_nan f then Json.Null else Json.Num f

  let to_json t =
    Json.Obj
      [
        ( "counters",
          Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) t.counters) );
        ( "histograms",
          Json.Obj
            (List.map
               (fun (k, h) ->
                 ( k,
                   Json.Obj
                     [
                       ("count", Json.int h.h_count);
                       ("sum", num_or_null h.h_sum);
                       ("mean", num_or_null h.h_mean);
                       ("min", num_or_null h.h_min);
                       ("max", num_or_null h.h_max);
                     ] ))
               t.histograms) );
        ( "spans",
          Json.List
            (List.map
               (fun s ->
                 Json.Obj
                   [
                     ("path", Json.Str s.s_path);
                     ("depth", Json.int s.s_depth);
                     ("calls", Json.int s.s_calls);
                     ("total_s", Json.Num s.s_total);
                   ])
               t.spans) );
      ]

  let render t =
    let buf = Buffer.create 1024 in
    if t.counters <> [] then begin
      Buffer.add_string buf "counters:\n";
      Buffer.add_string buf
        (Table.render
           ~aligns:[| Table.Left; Table.Right |]
           ~headers:[ "counter"; "value" ]
           (List.map (fun (k, v) -> [ k; string_of_int v ]) t.counters));
      Buffer.add_char buf '\n'
    end;
    if t.histograms <> [] then begin
      Buffer.add_string buf "histograms:\n";
      Buffer.add_string buf
        (Table.render
           ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right; Table.Right |]
           ~headers:[ "histogram"; "count"; "mean"; "min"; "max" ]
           (List.map
              (fun (k, h) ->
                [ k; string_of_int h.h_count; Printf.sprintf "%.6g" h.h_mean;
                  Printf.sprintf "%.6g" h.h_min; Printf.sprintf "%.6g" h.h_max ])
              t.histograms));
      Buffer.add_char buf '\n'
    end;
    if t.spans <> [] then begin
      Buffer.add_string buf "spans:\n";
      Buffer.add_string buf
        (Table.render
           ~aligns:[| Table.Left; Table.Right; Table.Right; Table.Right |]
           ~headers:[ "span"; "calls"; "total"; "mean" ]
           (List.map
              (fun s ->
                [
                  String.make (2 * s.s_depth) ' ' ^ s.s_name;
                  string_of_int s.s_calls;
                  Printf.sprintf "%.6fs" s.s_total;
                  Printf.sprintf "%.6fs" (s.s_total /. float_of_int s.s_calls);
                ])
              t.spans))
    end;
    Buffer.contents buf
end
