(** Observability: hierarchical spans, named counters and histograms.

    A zero-dependency instrumentation layer for the inference and join
    engines.  Everything is registered in a process-global registry and is
    inert until {!set_enabled}[ true]: the hot-path cost of a disabled
    {!Counter.incr} or {!span} is one flag load and a branch — no
    allocation, no clock read.

    Spans nest ({!span} within {!span} builds a tree), carry string
    attributes, and export both as an ASCII summary tree
    ({!Report.render}) and as Chrome-trace-format JSON ({!trace_json})
    loadable in [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}.

    Counters and histograms are shared across domains without locking;
    concurrent increments are memory-safe but may lose updates, which is
    acceptable for metrics.  The span stack is per-process and must only be
    used from the main domain. *)

(** {1 Global switch} *)

val enabled : unit -> bool
val set_enabled : bool -> unit

(** Zero every counter and histogram and drop all recorded spans.
    Registered counters stay registered. *)
val reset : unit -> unit

(** {1 Counters} *)

module Counter : sig
  type t

  (** [make name] registers (or retrieves) the process-global counter
      [name].  Calling [make] twice with the same name returns the same
      counter. *)
  val make : string -> t

  (** O(1); a no-op while disabled. *)
  val incr : t -> unit

  (** O(1); a no-op while disabled. *)
  val add : t -> int -> unit

  val name : t -> string
  val value : t -> int

  (** Current value of the counter registered under [name]; 0 when no such
      counter exists. *)
  val find : string -> int
end

(** {1 Histograms} *)

module Histogram : sig
  type t

  (** Same registry contract as {!Counter.make}. *)
  val make : string -> t

  (** Record one observation; a no-op while disabled.  Constant-time:
      count/sum/min/max plus a power-of-two bucket. *)
  val observe : t -> float -> unit

  val name : t -> string
  val count : t -> int
  val sum : t -> float
  val mean : t -> float

  (** Upper bound of the bucket containing the [q]-quantile (q in [0,1]);
      [nan] when empty.  Accurate to a factor of 2 — enough to tell µs from
      ms from s. *)
  val quantile : t -> float -> float
end

(** {1 Spans} *)

type handle

(** [span name f] runs [f ()] inside a span: nested calls build a tree,
    the monotonic start/stop times are recorded for the trace, and the
    span closes even when [f] raises.  While disabled this is exactly
    [f ()]. *)
val span : ?attrs:(string * string) list -> string -> (unit -> 'a) -> 'a

(** Manual bracket for code that cannot take a closure.  [exit] tolerates
    missed inner exits (it pops to the matching frame) and ignores handles
    that are no longer on the stack. *)
val enter : ?attrs:(string * string) list -> string -> handle

val exit : handle -> unit

(** Monotonic (non-decreasing) clock in seconds since an arbitrary
    process-local epoch — what spans are timed with. *)
val now : unit -> float

(** {1 Export} *)

(** The recorded spans as a Chrome-trace-format object
    [{"traceEvents": [...]}] of ["ph": "X"] complete events (microsecond
    [ts]/[dur], span attributes under ["args"]). *)
val trace_json : unit -> Jqi_util.Json.t

(** [save_trace path] writes {!trace_json} to [path]. *)
val save_trace : string -> unit

(** {1 Metrics snapshot} *)

module Report : sig
  type histogram_summary = {
    h_count : int;
    h_sum : float;
    h_mean : float;
    h_min : float;  (** [nan] when empty *)
    h_max : float;  (** [nan] when empty *)
  }

  type span_summary = {
    s_path : string;  (** slash-joined ancestry, e.g. ["inference.run/strategy.choose"] *)
    s_name : string;
    s_depth : int;
    s_calls : int;
    s_total : float;  (** summed wall-clock seconds *)
  }

  (** An immutable snapshot benches and tests can assert against. *)
  type t = {
    counters : (string * int) list;  (** sorted by name; zero-valued counters included *)
    histograms : (string * histogram_summary) list;  (** sorted by name *)
    spans : span_summary list;  (** pre-order (parents before children) *)
  }

  val snapshot : unit -> t

  (** Counter value in the snapshot; 0 when absent. *)
  val counter : t -> string -> int

  val to_json : t -> Jqi_util.Json.t

  (** Counter/histogram tables and the span tree, rendered with
      [Util.Ascii_table]. *)
  val render : t -> string
end
