(* A TPC-H-style data generator (dbgen replacement).

   Generates the six tables the paper's §5.1 experiments join — PART,
   SUPPLIER, PARTSUPP, CUSTOMER, ORDERS, LINEITEM — with the benchmark's
   schemas (standard column prefixes, so attribute sets of any table pair
   are disjoint), its key/foreign-key structure, and value distributions
   that preserve the property the paper leans on: small integers reoccur
   across key and non-key columns ("a value 15 may as well represent a
   key, a size, a price, or a quantity"), so the inference strategies must
   genuinely disambiguate the goal joins from accidental matches.

   The scale knob multiplies row counts, not bytes; the paper's reported
   Cartesian-product sizes are matched by the bench harness choosing
   scales that bracket them (see DESIGN.md, substitution 2). *)

module Prng = Jqi_util.Prng
module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Omega = Jqi_core.Omega

type db = {
  part : Relation.t;
  supplier : Relation.t;
  partsupp : Relation.t;
  customer : Relation.t;
  orders : Relation.t;
  lineitem : Relation.t;
}

(* Row counts at a given scale; ratios follow TPC-H (4 partsupp per part,
   ~1.5 orders per customer, ~4 lineitems per order), compressed so that
   products stay laptop-sized. *)
let counts ~scale =
  let s = max 1 scale in
  ( 25 * s (* part *),
    5 * s (* supplier *),
    100 * s (* partsupp: 4 per part *),
    15 * s (* customer *),
    22 * s (* orders *),
    88 * s (* lineitem: 4 per order *) )

let mfgrs = [| "Manufacturer#1"; "Manufacturer#2"; "Manufacturer#3"; "Manufacturer#4"; "Manufacturer#5" |]
let brands = [| "Brand#11"; "Brand#12"; "Brand#23"; "Brand#34"; "Brand#45"; "Brand#55" |]
let types_ = [| "STANDARD ANODIZED"; "SMALL PLATED"; "MEDIUM POLISHED"; "LARGE BRUSHED"; "ECONOMY BURNISHED"; "PROMO TIN" |]
let containers = [| "SM CASE"; "LG BOX"; "MED BAG"; "JUMBO JAR"; "WRAP PACK" |]
let segments = [| "AUTOMOBILE"; "BUILDING"; "FURNITURE"; "MACHINERY"; "HOUSEHOLD" |]
let priorities = [| "1-URGENT"; "2-HIGH"; "3-MEDIUM"; "4-NOT SPECIFIED"; "5-LOW" |]
let shipmodes = [| "REG AIR"; "AIR"; "RAIL"; "SHIP"; "TRUCK"; "MAIL"; "FOB" |]
let instructs = [| "DELIVER IN PERSON"; "COLLECT COD"; "NONE"; "TAKE BACK RETURN" |]
let statuses = [| "F"; "O"; "P" |]
let flags = [| "A"; "N"; "R" |]
let nouns = [| "deposits"; "packages"; "theodolites"; "requests"; "accounts"; "pinto beans"; "foxes"; "ideas"; "platelets"; "instructions" |]
let verbs = [| "sleep"; "haggle"; "nag"; "wake"; "cajole"; "detect"; "integrate"; "boost"; "engage"; "doze" |]
let adverbs = [| "carefully"; "quickly"; "furiously"; "slyly"; "blithely"; "ruthlessly"; "finally"; "express" |]

let comment prng =
  Printf.sprintf "%s %s %s" (Prng.pick prng adverbs) (Prng.pick prng nouns)
    (Prng.pick prng verbs)

let str s = Value.Str s
let int_ i = Value.Int i
let money prng lo hi = Value.Float (float_of_int (lo + Prng.int prng (hi - lo)) +. float_of_int (Prng.int prng 100) /. 100.)

(* Dates as integer day offsets from 1992-01-01, spanning seven years like
   the benchmark. *)
let date prng = Value.Int (Prng.int prng 2557)

let schema cols = Schema.of_columns (List.map (fun (n, t) -> Schema.column n t) cols)

let part_schema =
  schema
    [
      ("p_partkey", Value.TInt); ("p_name", Value.TString); ("p_mfgr", Value.TString);
      ("p_brand", Value.TString); ("p_type", Value.TString); ("p_size", Value.TInt);
      ("p_container", Value.TString); ("p_retailprice", Value.TFloat);
      ("p_comment", Value.TString);
    ]

let supplier_schema =
  schema
    [
      ("s_suppkey", Value.TInt); ("s_name", Value.TString); ("s_address", Value.TString);
      ("s_nationkey", Value.TInt); ("s_phone", Value.TString); ("s_acctbal", Value.TFloat);
      ("s_comment", Value.TString);
    ]

let partsupp_schema =
  schema
    [
      ("ps_partkey", Value.TInt); ("ps_suppkey", Value.TInt); ("ps_availqty", Value.TInt);
      ("ps_supplycost", Value.TFloat); ("ps_comment", Value.TString);
    ]

let customer_schema =
  schema
    [
      ("c_custkey", Value.TInt); ("c_name", Value.TString); ("c_address", Value.TString);
      ("c_nationkey", Value.TInt); ("c_phone", Value.TString); ("c_acctbal", Value.TFloat);
      ("c_mktsegment", Value.TString); ("c_comment", Value.TString);
    ]

let orders_schema =
  schema
    [
      ("o_orderkey", Value.TInt); ("o_custkey", Value.TInt); ("o_orderstatus", Value.TString);
      ("o_totalprice", Value.TFloat); ("o_orderdate", Value.TInt);
      ("o_orderpriority", Value.TString); ("o_clerk", Value.TString);
      ("o_shippriority", Value.TInt); ("o_comment", Value.TString);
    ]

let lineitem_schema =
  schema
    [
      ("l_orderkey", Value.TInt); ("l_partkey", Value.TInt); ("l_suppkey", Value.TInt);
      ("l_linenumber", Value.TInt); ("l_quantity", Value.TInt);
      ("l_extendedprice", Value.TFloat); ("l_discount", Value.TFloat);
      ("l_tax", Value.TFloat); ("l_returnflag", Value.TString);
      ("l_linestatus", Value.TString); ("l_shipdate", Value.TInt);
      ("l_commitdate", Value.TInt); ("l_receiptdate", Value.TInt);
      ("l_shipinstruct", Value.TString); ("l_shipmode", Value.TString);
      ("l_comment", Value.TString);
    ]

let generate ?(seed = 2014) ~scale () =
  let prng = Prng.create seed in
  let n_part, n_supp, n_ps, n_cust, n_ord, n_li = counts ~scale in
  let part =
    Relation.create ~name:"part" ~schema:part_schema
      (Array.init n_part (fun i ->
           Tuple.of_list
             [
               int_ (i + 1);
               str (Printf.sprintf "%s %s" (Prng.pick prng adverbs) (Prng.pick prng nouns));
               str (Prng.pick prng mfgrs);
               str (Prng.pick prng brands);
               str (Prng.pick prng types_);
               int_ (1 + Prng.int prng 50);
               str (Prng.pick prng containers);
               money prng 900 2000;
               str (comment prng);
             ]))
  in
  let supplier =
    Relation.create ~name:"supplier" ~schema:supplier_schema
      (Array.init n_supp (fun i ->
           Tuple.of_list
             [
               int_ (i + 1);
               str (Printf.sprintf "Supplier#%09d" (i + 1));
               str (Printf.sprintf "addr-%d" (Prng.int prng 10000));
               int_ (Prng.int prng 25);
               str (Printf.sprintf "%02d-%03d-%03d-%04d" (10 + Prng.int prng 25)
                      (Prng.int prng 1000) (Prng.int prng 1000) (Prng.int prng 10000));
               money prng (-999) 9999;
               str (comment prng);
             ]))
  in
  (* PARTSUPP: each part paired with distinct suppliers. *)
  let ps_rows = ref [] in
  let per_part = max 1 (n_ps / max 1 n_part) in
  for pk = 1 to n_part do
    let supps =
      Prng.sample prng per_part (Array.init n_supp (fun i -> i + 1))
    in
    Array.iter
      (fun sk ->
        ps_rows :=
          Tuple.of_list
            [
              int_ pk; int_ sk;
              int_ (1 + Prng.int prng 9999);
              money prng 1 1000;
              str (comment prng);
            ]
          :: !ps_rows)
      supps
  done;
  let partsupp =
    Relation.create ~name:"partsupp" ~schema:partsupp_schema
      (Array.of_list (List.rev !ps_rows))
  in
  let customer =
    Relation.create ~name:"customer" ~schema:customer_schema
      (Array.init n_cust (fun i ->
           Tuple.of_list
             [
               int_ (i + 1);
               str (Printf.sprintf "Customer#%09d" (i + 1));
               str (Printf.sprintf "addr-%d" (Prng.int prng 10000));
               int_ (Prng.int prng 25);
               str (Printf.sprintf "%02d-%03d-%03d-%04d" (10 + Prng.int prng 25)
                      (Prng.int prng 1000) (Prng.int prng 1000) (Prng.int prng 10000));
               money prng (-999) 9999;
               str (Prng.pick prng segments);
               str (comment prng);
             ]))
  in
  let orders =
    Relation.create ~name:"orders" ~schema:orders_schema
      (Array.init n_ord (fun i ->
           Tuple.of_list
             [
               int_ (i + 1);
               int_ (1 + Prng.int prng n_cust);
               str (Prng.pick prng statuses);
               money prng 1000 400000;
               date prng;
               str (Prng.pick prng priorities);
               str (Printf.sprintf "Clerk#%09d" (1 + Prng.int prng 1000));
               int_ 0;
               str (comment prng);
             ]))
  in
  (* LINEITEM: orderkey FK into ORDERS; (partkey, suppkey) drawn from
     PARTSUPP rows so the two-column FK of Join 5 holds. *)
  let ps_pairs =
    Array.map
      (fun row -> (Tuple.get row 0, Tuple.get row 1))
      (Relation.rows partsupp)
  in
  let li_rows = ref [] in
  let per_order = max 1 (n_li / max 1 n_ord) in
  for ok = 1 to n_ord do
    for ln = 1 to per_order do
      let pk, sk = Prng.pick prng ps_pairs in
      let ship = date prng in
      li_rows :=
        Tuple.of_list
          [
            int_ ok; pk; sk; int_ ln;
            int_ (1 + Prng.int prng 50);
            money prng 900 100000;
            Value.Float (float_of_int (Prng.int prng 11) /. 100.);
            Value.Float (float_of_int (Prng.int prng 9) /. 100.);
            str (Prng.pick prng flags);
            str (Prng.pick prng statuses);
            ship;
            date prng;
            date prng;
            str (Prng.pick prng instructs);
            str (Prng.pick prng shipmodes);
            str (comment prng);
          ]
        :: !li_rows
    done
  done;
  let lineitem =
    Relation.create ~name:"lineitem" ~schema:lineitem_schema
      (Array.of_list (List.rev !li_rows))
  in
  { part; supplier; partsupp; customer; orders; lineitem }

(* The five goal joins of §5.1: (R, P, goal predicate by column names).
   They are exactly the key/foreign-key joins of the benchmark; the
   strategies are never told this. *)
type goal_join = {
  label : string;
  r : Relation.t;
  p : Relation.t;
  pairs : (string * string) list;
}

let joins db =
  [
    {
      label = "Join 1";
      r = db.part;
      p = db.partsupp;
      pairs = [ ("p_partkey", "ps_partkey") ];
    };
    {
      label = "Join 2";
      r = db.supplier;
      p = db.partsupp;
      pairs = [ ("s_suppkey", "ps_suppkey") ];
    };
    {
      label = "Join 3";
      r = db.customer;
      p = db.orders;
      pairs = [ ("c_custkey", "o_custkey") ];
    };
    {
      label = "Join 4";
      r = db.orders;
      p = db.lineitem;
      pairs = [ ("o_orderkey", "l_orderkey") ];
    };
    {
      label = "Join 5";
      r = db.partsupp;
      p = db.lineitem;
      pairs = [ ("ps_partkey", "l_partkey"); ("ps_suppkey", "l_suppkey") ];
    };
  ]

let goal_predicate omega join = Omega.of_names omega join.pairs
