(** TPC-H-style data generator (dbgen replacement) for the six tables of
    the paper's §5.1 experiments, with the benchmark's schemas, key and
    foreign-key structure, and value pools that make small integers recur
    across key and non-key columns (the ambiguity the paper's strategies
    must resolve). *)

type db = {
  part : Jqi_relational.Relation.t;
  supplier : Jqi_relational.Relation.t;
  partsupp : Jqi_relational.Relation.t;
  customer : Jqi_relational.Relation.t;
  orders : Jqi_relational.Relation.t;
  lineitem : Jqi_relational.Relation.t;
}

(** Row counts per table at a scale:
    (part, supplier, partsupp, customer, orders, lineitem). *)
val counts : scale:int -> int * int * int * int * int * int

(** Deterministic in [seed]; row counts grow linearly with [scale]. *)
val generate : ?seed:int -> scale:int -> unit -> db

(** One of the five goal joins of §5.1: a table pair plus the
    key/foreign-key predicate (by column names) the user "has in mind". *)
type goal_join = {
  label : string;
  r : Jqi_relational.Relation.t;
  p : Jqi_relational.Relation.t;
  pairs : (string * string) list;
}

(** Joins 1-5, in the paper's order. *)
val joins : db -> goal_join list

val goal_predicate : Jqi_core.Omega.t -> goal_join -> Jqi_util.Bits.t
