(* The paper's synthetic dataset generator (§5.2).

   A configuration is (|attrs(R)|, |attrs(P)|, l, v): two relations with
   the given arities, [l] tuples each, and attribute values drawn uniformly
   from {0, …, v-1}.  The six configurations evaluated in Figure 7 and
   Table 1 are provided as constants. *)

module Prng = Jqi_util.Prng
module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Omega = Jqi_core.Omega
module Universe = Jqi_core.Universe
module Bits = Jqi_util.Bits

type config = { r_arity : int; p_arity : int; rows : int; values : int }

let config r_arity p_arity rows values =
  if r_arity < 1 || p_arity < 1 || rows < 1 || values < 1 then
    invalid_arg "Synth.config: all parameters must be positive";
  { r_arity; p_arity; rows; values }

let pp_config ppf c =
  Fmt.pf ppf "(%d,%d,%d,%d)" c.r_arity c.p_arity c.rows c.values

(* The configurations of Figure 7 / Table 1, in the paper's order. *)
let paper_configs =
  [
    config 3 3 100 100;
    config 3 3 50 100;
    config 3 4 50 100;
    config 2 5 50 100;
    config 2 4 50 50;
    config 2 4 50 100;
  ]

let relation prng ~name ~prefix ~arity ~rows ~values =
  let schema =
    Schema.of_names ~ty:Value.TInt
      (List.init arity (fun i -> Printf.sprintf "%s%d" prefix (i + 1)))
  in
  Relation.create ~name ~schema
    (Array.init rows (fun _ ->
         Tuple.of_list
           (List.init arity (fun _ -> Value.Int (Prng.int prng values)))))

let generate prng c =
  let r =
    relation prng ~name:"R" ~prefix:"A" ~arity:c.r_arity ~rows:c.rows
      ~values:c.values
  in
  let p =
    relation prng ~name:"P" ~prefix:"B" ~arity:c.p_arity ~rows:c.rows
      ~values:c.values
  in
  (r, p)

(* All non-nullable goal predicates of a given size on an instance: the
   distinct subsets of the universe's signatures with that cardinality
   (§4.2; the paper uses "all non-nullable join predicates as goal
   predicates" grouped by size).  Size 0 yields the single predicate ∅. *)
let goals_of_size universe ~size =
  let module H = Hashtbl.Make (struct
    type t = Bits.t

    let equal = Bits.equal
    let hash = Bits.hash
  end) in
  let acc = H.create 64 in
  List.iter
    (fun s ->
      if Bits.cardinal s >= size then
        List.iter
          (fun sub ->
            if Int.equal (Bits.cardinal sub) size then H.replace acc sub ())
          (Bits.subsets s))
    (Universe.signatures universe);
  H.fold (fun k () l -> k :: l) acc []
