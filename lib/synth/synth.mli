(** The paper's synthetic dataset generator (§5.2): configurations
    (|attrs R|, |attrs P|, l, v) with values uniform in 0..v-1. *)

type config = { r_arity : int; p_arity : int; rows : int; values : int }

(** Raises [Invalid_argument] on non-positive parameters. *)
val config : int -> int -> int -> int -> config

val pp_config : Format.formatter -> config -> unit

(** The six configurations of Figure 7 / Table 1, in the paper's order. *)
val paper_configs : config list

(** Fresh instance pair (R, P); deterministic in the generator state. *)
val generate :
  Jqi_util.Prng.t -> config ->
  Jqi_relational.Relation.t * Jqi_relational.Relation.t

(** All non-nullable goal predicates of a given size on an instance — the
    goal pool of the paper's synthetic runs.  Size 0 yields [∅]. *)
val goals_of_size : Jqi_core.Universe.t -> size:int -> Jqi_util.Bits.t list
