(* Hand-written lexer for the SQL subset.

   Keywords are case-insensitive; identifiers keep their case (and may be
   double-quoted to escape keywords or odd characters); strings are
   single-quoted with '' as the escape. *)

type token =
  | SELECT | DISTINCT | FROM | WHERE | JOIN | SEMI | ANTI | CROSS | INNER
  | ON | AND | OR | NOT | AS | IS | NULL | ORDER | BY | ASC | DESC | LIMIT
  | TRUE | FALSE | GROUP | HAVING | COUNT | SUM | AVG | MIN | MAX
  | IDENT of string
  | STRING of string
  | INT_LIT of int
  | FLOAT_LIT of float
  | STAR | COMMA | DOT | LPAREN | RPAREN | PLUS | MINUS | SLASH
  | EQ | NE | LT | LE | GT | GE
  | EOF

exception Error of { position : int; message : string }

let error position message = raise (Error { position; message })

let keyword_of_string s =
  match String.uppercase_ascii s with
  | "SELECT" -> Some SELECT
  | "DISTINCT" -> Some DISTINCT
  | "FROM" -> Some FROM
  | "WHERE" -> Some WHERE
  | "JOIN" -> Some JOIN
  | "SEMI" -> Some SEMI
  | "ANTI" -> Some ANTI
  | "CROSS" -> Some CROSS
  | "INNER" -> Some INNER
  | "ON" -> Some ON
  | "AND" -> Some AND
  | "OR" -> Some OR
  | "NOT" -> Some NOT
  | "AS" -> Some AS
  | "IS" -> Some IS
  | "NULL" -> Some NULL
  | "ORDER" -> Some ORDER
  | "BY" -> Some BY
  | "ASC" -> Some ASC
  | "DESC" -> Some DESC
  | "LIMIT" -> Some LIMIT
  | "TRUE" -> Some TRUE
  | "FALSE" -> Some FALSE
  | "GROUP" -> Some GROUP
  | "HAVING" -> Some HAVING
  | "COUNT" -> Some COUNT
  | "SUM" -> Some SUM
  | "AVG" -> Some AVG
  | "MIN" -> Some MIN
  | "MAX" -> Some MAX
  | _ -> None

let is_ident_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

(* Tokens paired with their start offset, for error reporting. *)
let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let emit pos tok = tokens := (tok, pos) :: !tokens in
  let i = ref 0 in
  while !i < n do
    let start = !i in
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      while !i < n && is_ident_char input.[!i] do
        incr i
      done;
      let word = String.sub input start (!i - start) in
      emit start
        (match keyword_of_string word with Some k -> k | None -> IDENT word)
    end
    else if is_digit c then begin
      while !i < n && is_digit input.[!i] do
        incr i
      done;
      let is_float =
        !i < n && input.[!i] = '.' && !i + 1 < n && is_digit input.[!i + 1]
      in
      if is_float then begin
        incr i;
        while !i < n && is_digit input.[!i] do
          incr i
        done;
        emit start (FLOAT_LIT (float_of_string (String.sub input start (!i - start))))
      end
      else emit start (INT_LIT (int_of_string (String.sub input start (!i - start))))
    end
    else if c = '\'' then begin
      (* String literal with '' escaping. *)
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        if input.[!i] = '\'' then
          if !i + 1 < n && input.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      if not !closed then error start "unterminated string literal";
      emit start (STRING (Buffer.contents buf))
    end
    else if c = '"' then begin
      (* Quoted identifier. *)
      let close =
        try String.index_from input (start + 1) '"'
        with Not_found -> error start "unterminated quoted identifier"
      in
      emit start (IDENT (String.sub input (start + 1) (close - start - 1)));
      i := close + 1
    end
    else begin
      let two = if !i + 1 < n then String.sub input !i 2 else "" in
      match two with
      | "<=" -> emit start LE; i := !i + 2
      | ">=" -> emit start GE; i := !i + 2
      | "<>" -> emit start NE; i := !i + 2
      | "!=" -> emit start NE; i := !i + 2
      | _ -> (
          incr i;
          match c with
          | '*' -> emit start STAR
          | '+' -> emit start PLUS
          | '-' -> emit start MINUS
          | '/' -> emit start SLASH
          | ',' -> emit start COMMA
          | '.' -> emit start DOT
          | '(' -> emit start LPAREN
          | ')' -> emit start RPAREN
          | '=' -> emit start EQ
          | '<' -> emit start LT
          | '>' -> emit start GT
          | _ -> error start (Printf.sprintf "unexpected character %C" c))
    end
  done;
  emit n EOF;
  List.rev !tokens

let token_name = function
  | SELECT -> "SELECT" | DISTINCT -> "DISTINCT" | FROM -> "FROM"
  | WHERE -> "WHERE" | JOIN -> "JOIN" | SEMI -> "SEMI" | ANTI -> "ANTI"
  | CROSS -> "CROSS" | INNER -> "INNER" | ON -> "ON" | AND -> "AND"
  | OR -> "OR" | NOT -> "NOT" | AS -> "AS" | IS -> "IS" | NULL -> "NULL"
  | ORDER -> "ORDER" | BY -> "BY" | ASC -> "ASC" | DESC -> "DESC"
  | LIMIT -> "LIMIT" | TRUE -> "TRUE" | FALSE -> "FALSE"
  | GROUP -> "GROUP" | HAVING -> "HAVING" | COUNT -> "COUNT" | SUM -> "SUM" | AVG -> "AVG"
  | MIN -> "MIN" | MAX -> "MAX"
  | IDENT s -> Printf.sprintf "identifier %S" s
  | STRING _ -> "string literal"
  | INT_LIT _ -> "integer literal"
  | FLOAT_LIT _ -> "float literal"
  | STAR -> "*" | COMMA -> "," | DOT -> "." | LPAREN -> "(" | RPAREN -> ")"
  | PLUS -> "+" | MINUS -> "-" | SLASH -> "/"
  | EQ -> "=" | NE -> "<>" | LT -> "<" | LE -> "<=" | GT -> ">" | GE -> ">="
  | EOF -> "end of input"
