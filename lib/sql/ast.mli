(** Abstract syntax for the SQL subset the engine executes.

    The subset is deliberately the paper's world: SELECT-FROM-WHERE over
    two or more relations with INNER/SEMI/ANTI/CROSS joins on conjunctions
    of predicates, plus projection, DISTINCT, GROUP BY/HAVING, ORDER BY and
    LIMIT.  The inference machinery emits queries in this AST
    ([of_equijoin], [of_semijoin]) so that an inferred predicate is
    immediately executable and printable. *)

type binop = Add | Sub | Mul | Div

type expr =
  | Col of string option * string  (** optional qualifier: [r.a] or [a] *)
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null
  | Binop of binop * expr * expr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type cond =
  | Cmp of cmp * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond
  | Is_null of expr
  | Is_not_null of expr

type join_kind = Inner | Semi | Anti | Cross

type source = { table : string; alias : string option }

type agg_fn = Count | Sum | Avg | Min | Max

type select_item =
  | Star
  | Expr of expr * string option  (** AS alias *)
  | Agg of agg_fn * expr option * string option
      (** a [None] argument means the star form of COUNT; others need one *)

type order = Asc | Desc

type query = {
  distinct : bool;
  select : select_item list;
  from : source;
  joins : (join_kind * source * cond option) list;
  where : cond option;
  group_by : expr list;
  having : cond option;  (** evaluated over the grouped output columns *)
  order_by : (expr * order) list;
  limit : int option;
}

val equal_binop : binop -> binop -> bool

val equal_expr : expr -> expr -> bool
(** Structural equality on expressions; used by GROUP BY to match select
    items against grouping keys.  Float literals compare with
    [Float.equal], so a nan literal matches itself syntactically. *)

val source : ?alias:string -> string -> source

val simple_query :
  ?distinct:bool ->
  ?joins:(join_kind * source * cond option) list ->
  ?where:cond ->
  ?group_by:expr list ->
  ?having:cond ->
  ?order_by:(expr * order) list ->
  ?limit:int ->
  select:select_item list ->
  from:source ->
  unit ->
  query

val of_equijoin : r:string -> p:string -> (string * string) list -> query
(** [SELECT * FROM r JOIN p ON pairs] — the query shape the paper infers.
    An empty pair list degenerates to CROSS JOIN, matching θ = ∅. *)

val of_semijoin : r:string -> p:string -> (string * string) list -> query
(** [SELECT * FROM r SEMI JOIN p ON pairs] — the §6 query shape. *)

val keywords : string list
(** Reserved words of the grammar, lowercase.  Kept in sync with the
    lexer by the printer round-trip tests. *)

val needs_quoting : string -> bool

(** {1 Printing}

    Printed queries re-parse to the same AST; binops are always
    parenthesized so the cycle is a fixpoint. *)

val pp_name : Format.formatter -> string -> unit
val binop_symbol : binop -> string
val pp_expr : Format.formatter -> expr -> unit
val cmp_symbol : cmp -> string
val pp_cond : Format.formatter -> cond -> unit
val pp_source : Format.formatter -> source -> unit
val join_keyword : join_kind -> string
val agg_name : agg_fn -> string
val pp_select_item : Format.formatter -> select_item -> unit
val pp_query : Format.formatter -> query -> unit
val to_string : query -> string
