(* Token-dispatch catch-alls ("anything else → not this production") are
   the recursive-descent idiom; fragile-match stays off for this file. *)
[@@@warning "-4"]

(* Recursive-descent parser for the SQL subset.

   Grammar (informally):

     query      ::= SELECT [DISTINCT] items FROM source join* [WHERE cond]
                    [GROUP BY expr (',' expr)*] [HAVING cond]
                    [ORDER BY order_items]
                    [LIMIT int]
     items      ::= '*' | item (',' item)*
     item       ::= expr [AS ident]
                  | (COUNT|SUM|AVG|MIN|MAX) '(' ('*' | expr) ')' [AS ident]
     source     ::= ident [AS ident | ident]
     join       ::= (JOIN | INNER JOIN | SEMI JOIN | ANTI JOIN) source ON cond
                  | CROSS JOIN source
     cond       ::= or_cond
     or_cond    ::= and_cond (OR and_cond)*
     and_cond   ::= not_cond (AND not_cond)*
     not_cond   ::= NOT not_cond | atom
     atom       ::= '(' cond ')' | expr IS [NOT] NULL | expr cmp expr
     expr       ::= term (('+'|'-') term)*
     term       ::= atom_expr (('*'|'/') atom_expr)*
     atom_expr  ::= literal | ident ['.' ident] | '(' expr ')'
     (negative literals are written 0 - x; there is no unary minus)      *)

type state = { mutable tokens : (Lexer.token * int) list }

exception Error of { position : int; message : string }

let error position message = raise (Error { position; message })

let peek st = match st.tokens with (t, p) :: _ -> (t, p) | [] -> (Lexer.EOF, 0)

let advance st =
  match st.tokens with _ :: rest -> st.tokens <- rest | [] -> ()

let expect st tok =
  let t, p = peek st in
  if t = tok then advance st
  else
    error p
      (Printf.sprintf "expected %s, found %s" (Lexer.token_name tok)
         (Lexer.token_name t))

let accept st tok =
  let t, _ = peek st in
  if t = tok then begin
    advance st;
    true
  end
  else false

let ident st =
  match peek st with
  | Lexer.IDENT name, _ ->
      advance st;
      name
  | t, p ->
      error p (Printf.sprintf "expected identifier, found %s" (Lexer.token_name t))

let rec parse_expr st : Ast.expr =
  let left = parse_term st in
  match peek st with
  | Lexer.PLUS, _ ->
      advance st;
      Ast.Binop (Ast.Add, left, parse_expr st)
  | Lexer.MINUS, _ ->
      advance st;
      Ast.Binop (Ast.Sub, left, parse_expr st)
  | _ -> left

and parse_term st : Ast.expr =
  let left = parse_atom_expr st in
  match peek st with
  | Lexer.STAR, _ ->
      advance st;
      Ast.Binop (Ast.Mul, left, parse_term st)
  | Lexer.SLASH, _ ->
      advance st;
      Ast.Binop (Ast.Div, left, parse_term st)
  | _ -> left

and parse_atom_expr st : Ast.expr =
  match peek st with
  | Lexer.INT_LIT i, _ -> advance st; Ast.Int i
  | Lexer.FLOAT_LIT f, _ -> advance st; Ast.Float f
  | Lexer.STRING s, _ -> advance st; Ast.Str s
  | Lexer.TRUE, _ -> advance st; Ast.Bool true
  | Lexer.FALSE, _ -> advance st; Ast.Bool false
  | Lexer.NULL, _ -> advance st; Ast.Null
  | Lexer.LPAREN, _ ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.RPAREN;
      e
  | Lexer.IDENT first, _ ->
      advance st;
      if accept st Lexer.DOT then Ast.Col (Some first, ident st)
      else Ast.Col (None, first)
  | t, p ->
      error p (Printf.sprintf "expected expression, found %s" (Lexer.token_name t))

let cmp_of_token = function
  | Lexer.EQ -> Some Ast.Eq
  | Lexer.NE -> Some Ast.Ne
  | Lexer.LT -> Some Ast.Lt
  | Lexer.LE -> Some Ast.Le
  | Lexer.GT -> Some Ast.Gt
  | Lexer.GE -> Some Ast.Ge
  | _ -> None

let rec parse_cond st = parse_or st

and parse_or st =
  let left = parse_and st in
  if accept st Lexer.OR then Ast.Or (left, parse_or st) else left

and parse_and st =
  let left = parse_not st in
  if accept st Lexer.AND then Ast.And (left, parse_and st) else left

and parse_not st =
  if accept st Lexer.NOT then Ast.Not (parse_not st) else parse_atom st

and parse_atom st =
  let comparison_of left =
    if accept st Lexer.IS then
      if accept st Lexer.NOT then begin
        expect st Lexer.NULL;
        Ast.Is_not_null left
      end
      else begin
        expect st Lexer.NULL;
        Ast.Is_null left
      end
    else
      let t, p = peek st in
      match cmp_of_token t with
      | Some op ->
          advance st;
          Ast.Cmp (op, left, parse_expr st)
      | None ->
          error p
            (Printf.sprintf "expected comparison operator, found %s"
               (Lexer.token_name t))
  in
  match peek st with
  | Lexer.LPAREN, _ -> (
      (* '(' opens either a nested condition or a parenthesized arithmetic
         expression; try the condition first and backtrack. *)
      let snapshot = st.tokens in
      match
        advance st;
        let c = parse_cond st in
        expect st Lexer.RPAREN;
        c
      with
      | c -> c
      | exception Error _ ->
          st.tokens <- snapshot;
          comparison_of (parse_expr st))
  | _ -> comparison_of (parse_expr st)

let parse_source st : Ast.source =
  let table = ident st in
  if accept st Lexer.AS then { table; alias = Some (ident st) }
  else
    match peek st with
    | Lexer.IDENT alias, _ ->
        advance st;
        { table; alias = Some alias }
    | _ -> { table; alias = None }

let agg_of_token = function
  | Lexer.COUNT -> Some Ast.Count
  | Lexer.SUM -> Some Ast.Sum
  | Lexer.AVG -> Some Ast.Avg
  | Lexer.MIN -> Some Ast.Min
  | Lexer.MAX -> Some Ast.Max
  | _ -> None

let parse_select_items st =
  if accept st Lexer.STAR then [ Ast.Star ]
  else begin
    let alias () = if accept st Lexer.AS then Some (ident st) else None in
    let item () =
      match agg_of_token (fst (peek st)) with
      | Some fn ->
          advance st;
          expect st Lexer.LPAREN;
          let arg =
            if fn = Ast.Count && accept st Lexer.STAR then None
            else Some (parse_expr st)
          in
          expect st Lexer.RPAREN;
          Ast.Agg (fn, arg, alias ())
      | None ->
          let e = parse_expr st in
          Ast.Expr (e, alias ())
    in
    let first = item () in
    let rec more acc =
      if accept st Lexer.COMMA then more (item () :: acc) else List.rev acc
    in
    more [ first ]
  end

let parse_joins st =
  let rec go acc =
    let kind =
      if accept st Lexer.CROSS then begin
        expect st Lexer.JOIN;
        Some Ast.Cross
      end
      else if accept st Lexer.SEMI then begin
        expect st Lexer.JOIN;
        Some Ast.Semi
      end
      else if accept st Lexer.ANTI then begin
        expect st Lexer.JOIN;
        Some Ast.Anti
      end
      else if accept st Lexer.INNER then begin
        expect st Lexer.JOIN;
        Some Ast.Inner
      end
      else if accept st Lexer.JOIN then Some Ast.Inner
      else None
    in
    match kind with
    | None -> List.rev acc
    | Some kind ->
        let src = parse_source st in
        let cond =
          if kind = Ast.Cross then
            (* CROSS JOIN takes no ON clause. *)
            None
          else begin
            expect st Lexer.ON;
            Some (parse_cond st)
          end
        in
        go ((kind, src, cond) :: acc)
  in
  go []

let parse_group_by st =
  if accept st Lexer.GROUP then begin
    expect st Lexer.BY;
    let first = parse_expr st in
    let rec more acc =
      if accept st Lexer.COMMA then more (parse_expr st :: acc)
      else List.rev acc
    in
    more [ first ]
  end
  else []

let parse_order_by st =
  if accept st Lexer.ORDER then begin
    expect st Lexer.BY;
    let item () =
      let e = parse_expr st in
      let dir =
        if accept st Lexer.DESC then Ast.Desc
        else begin
          ignore (accept st Lexer.ASC);
          Ast.Asc
        end
      in
      (e, dir)
    in
    let first = item () in
    let rec more acc =
      if accept st Lexer.COMMA then more (item () :: acc) else List.rev acc
    in
    more [ first ]
  end
  else []

let parse_limit st =
  if accept st Lexer.LIMIT then
    match peek st with
    | Lexer.INT_LIT n, _ ->
        advance st;
        Some n
    | t, p ->
        error p (Printf.sprintf "expected integer, found %s" (Lexer.token_name t))
  else None

let parse_query st =
  expect st Lexer.SELECT;
  let distinct = accept st Lexer.DISTINCT in
  let select = parse_select_items st in
  expect st Lexer.FROM;
  let from = parse_source st in
  let joins = parse_joins st in
  let where = if accept st Lexer.WHERE then Some (parse_cond st) else None in
  let group_by = parse_group_by st in
  let having = if accept st Lexer.HAVING then Some (parse_cond st) else None in
  let order_by = parse_order_by st in
  let limit = parse_limit st in
  { Ast.distinct; select; from; joins; where; group_by; having; order_by; limit }

(* Entry point.  Raises [Error] (or [Lexer.Error]) on malformed input. *)
let parse input =
  let st = { tokens = Lexer.tokenize input } in
  let q = parse_query st in
  (match peek st with
  | Lexer.EOF, _ -> ()
  | t, p ->
      error p (Printf.sprintf "trailing input: %s" (Lexer.token_name t)));
  q

let parse_result input =
  match parse input with
  | q -> Ok q
  | exception Error { position; message } ->
      Result.Error (Printf.sprintf "parse error at offset %d: %s" position message)
  | exception Lexer.Error { position; message } ->
      Result.Error (Printf.sprintf "lexical error at offset %d: %s" position message)
