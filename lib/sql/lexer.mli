(** Lexer for the SQL subset.  Keywords are case-insensitive; identifiers
    may be double-quoted; strings are single-quoted with [''] escaping. *)

type token =
  | SELECT | DISTINCT | FROM | WHERE | JOIN | SEMI | ANTI | CROSS | INNER
  | ON | AND | OR | NOT | AS | IS | NULL | ORDER | BY | ASC | DESC | LIMIT
  | TRUE | FALSE | GROUP | HAVING | COUNT | SUM | AVG | MIN | MAX
  | IDENT of string
  | STRING of string
  | INT_LIT of int
  | FLOAT_LIT of float
  | STAR | COMMA | DOT | LPAREN | RPAREN | PLUS | MINUS | SLASH
  | EQ | NE | LT | LE | GT | GE
  | EOF

exception Error of { position : int; message : string }

(** Tokens with their byte offsets; ends with [EOF].  Raises [Error] on
    malformed input. *)
val tokenize : string -> (token * int) list

(** Human-readable token description for error messages. *)
val token_name : token -> string
