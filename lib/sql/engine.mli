(** Query execution against a catalog of in-memory relations.

    INNER joins whose ON condition is a conjunction of column equalities
    run as hash joins (residual conditions filter); other joins fall back
    to filtered products.  Comparisons follow the inference layer's NULL
    semantics: NULL never compares equal or ordered to anything. *)

exception Error of string

type catalog = (string * Jqi_relational.Relation.t) list

(** Execute a parsed query.  Raises [Error] on unknown tables/columns or
    ambiguous references. *)
val execute : catalog -> Ast.query -> Jqi_relational.Relation.t

(** Parse and execute.  Raises [Error] (parse errors included). *)
val query : catalog -> string -> Jqi_relational.Relation.t
