(** Recursive-descent parser for the SQL subset:
    SELECT [DISTINCT] items FROM source (JOIN | SEMI/ANTI/CROSS JOIN …)*
    [WHERE cond] [GROUP BY …] [ORDER BY …] [LIMIT n], with
    COUNT/SUM/AVG/MIN/MAX select items and +,-,*,/ arithmetic in
    expressions. *)

exception Error of { position : int; message : string }

(** Raises [Error] or [Lexer.Error]. *)
val parse : string -> Ast.query

(** Error-message variant. *)
val parse_result : string -> (Ast.query, string) result
