(* Query execution against a catalog of in-memory relations.

   The planner is small but honest: INNER joins whose ON condition is a
   conjunction of column equalities run as hash joins with the residual
   applied as a filter; everything else falls back to filtered products.
   NULL comparisons follow [Value.eq] — a NULL never compares equal (or
   ordered) to anything, matching the inference layer's semantics. *)

module Value = Jqi_relational.Value
module Schema = Jqi_relational.Schema
module Tuple = Jqi_relational.Tuple
module Relation = Jqi_relational.Relation
module Index = Jqi_relational.Index

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type catalog = (string * Relation.t) list

(* A working table whose columns remember their qualifier (table alias). *)
type env = {
  cols : (string * string) array;  (* (qualifier, column name) *)
  tys : Value.ty array;
  rows : Tuple.t array;
}

let lookup_table catalog name =
  match List.assoc_opt name catalog with
  | Some rel -> rel
  | None -> err "unknown table %S" name

let env_of_source catalog (src : Ast.source) =
  let rel = lookup_table catalog src.table in
  let qualifier = Option.value ~default:src.table src.alias in
  let schema = Relation.schema rel in
  {
    cols =
      Array.init (Schema.arity schema) (fun i -> (qualifier, Schema.name_at schema i));
    tys = Array.init (Schema.arity schema) (fun i -> Schema.ty_at schema i);
    rows = Relation.rows rel;
  }

(* Resolve a column reference to its position. *)
let resolve env (q : string option) name =
  let matches =
    List.filter
      (fun i ->
        let cq, cn = env.cols.(i) in
        String.equal cn name
        && match q with None -> true | Some q -> String.equal cq q)
      (List.init (Array.length env.cols) Fun.id)
  in
  match matches with
  | [ i ] -> i
  | [] ->
      err "unknown column %s%s"
        (match q with Some q -> q ^ "." | None -> "")
        name
  | _ ->
      err "ambiguous column %s%s (qualify it)"
        (match q with Some q -> q ^ "." | None -> "")
        name

(* Arithmetic: NULL propagates; ints stay ints (truncating division, NULL
   on division by zero); any float operand promotes to float. *)
let eval_binop op a b =
  let float_op op a b =
    match (op : Ast.binop) with
    | Ast.Add -> a +. b
    | Ast.Sub -> a -. b
    | Ast.Mul -> a *. b
    | Ast.Div -> a /. b
  in
  match (a, b) with
  | Value.Null, _ | _, Value.Null -> Value.Null
  | Value.Int x, Value.Int y -> (
      match op with
      | Ast.Add -> Value.Int (x + y)
      | Ast.Sub -> Value.Int (x - y)
      | Ast.Mul -> Value.Int (x * y)
      | Ast.Div -> if y = 0 then Value.Null else Value.Int (x / y))
  | Value.Int x, Value.Float y -> Value.Float (float_op op (float_of_int x) y)
  | Value.Float x, Value.Int y -> Value.Float (float_op op x (float_of_int y))
  | Value.Float x, Value.Float y -> Value.Float (float_op op x y)
  | (Value.Bool _ | Value.Str _),
    (Value.Bool _ | Value.Int _ | Value.Float _ | Value.Str _)
  | (Value.Int _ | Value.Float _), (Value.Bool _ | Value.Str _) ->
      err "arithmetic on non-numeric values"

let rec eval_expr env row : Ast.expr -> Value.t = function
  | Ast.Col (q, name) -> Tuple.get row (resolve env q name)
  | Ast.Int i -> Value.Int i
  | Ast.Float f -> Value.Float f
  | Ast.Str s -> Value.Str s
  | Ast.Bool b -> Value.Bool b
  | Ast.Null -> Value.Null
  | Ast.Binop (op, a, b) ->
      eval_binop op (eval_expr env row a) (eval_expr env row b)

(* Three-valued logic collapsed to two: comparisons involving NULL are
   false, as are cross-type comparisons (mirroring Value.eq). *)
let eval_cmp op a b =
  match (op : Ast.cmp) with
  | Ast.Eq -> Value.eq a b
  | Ast.Ne -> (not (Value.is_null a)) && (not (Value.is_null b)) && not (Value.eq a b)
  | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge ->
      if Value.is_null a || Value.is_null b then false
      else if
        not
          (Option.equal Value.ty_equal (Value.type_of a) (Value.type_of b))
      then false
      else
        let c = Value.compare a b in
        (match op with
        | Ast.Lt -> c < 0
        | Ast.Le -> c <= 0
        | Ast.Gt -> c > 0
        | Ast.Ge -> c >= 0
        | Ast.Eq | Ast.Ne -> assert false)

let rec eval_cond env row : Ast.cond -> bool = function
  | Ast.Cmp (op, a, b) -> eval_cmp op (eval_expr env row a) (eval_expr env row b)
  | Ast.And (a, b) -> eval_cond env row a && eval_cond env row b
  | Ast.Or (a, b) -> eval_cond env row a || eval_cond env row b
  | Ast.Not c -> not (eval_cond env row c)
  | Ast.Is_null e -> Value.is_null (eval_expr env row e)
  | Ast.Is_not_null e -> not (Value.is_null (eval_expr env row e))

(* Split an ON condition into hashable equi pairs (left column = right
   column, one side per env) and a residual.  Returns pairs as
   (left position, right position). *)
let split_equi left right cond =
  let try_pair a b =
    match (a, b) with
    | Ast.Col (ql, nl), Ast.Col (qr, nr) -> (
        let on_left q n =
          match resolve left q n with i -> Some i | exception Error _ -> None
        in
        let on_right q n =
          match resolve right q n with i -> Some i | exception Error _ -> None
        in
        match (on_left ql nl, on_right qr nr) with
        | Some i, Some j when on_right ql nl = None && on_left qr nr = None ->
            Some (i, j)
        | (Some _ | None), (Some _ | None) -> (
            match (on_left qr nr, on_right ql nl) with
            | Some i, Some j when on_right qr nr = None && on_left ql nl = None ->
                Some (i, j)
            | (Some _ | None), (Some _ | None) -> None))
    | Ast.Col _,
      (Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Bool _ | Ast.Null | Ast.Binop _)
    | (Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Bool _ | Ast.Null | Ast.Binop _),
      _ ->
        None
  in
  let rec go cond =
    match cond with
    | Ast.Cmp (Ast.Eq, a, b) -> (
        match try_pair a b with
        | Some pair -> ([ pair ], [])
        | None -> ([], [ cond ]))
    | Ast.And (a, b) ->
        let pa, ra = go a and pb, rb = go b in
        (pa @ pb, ra @ rb)
    | Ast.Cmp ((Ast.Ne | Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge), _, _)
    | Ast.Or _ | Ast.Not _ | Ast.Is_null _ | Ast.Is_not_null _ ->
        ([], [ cond ])
  in
  go cond

let joined_env left right rows =
  {
    cols = Array.append left.cols right.cols;
    tys = Array.append left.tys right.tys;
    rows;
  }

(* The env seen by an ON condition: both sides concatenated. *)
let pair_env left right = joined_env left right [||]

let inner_join left right cond =
  match cond with
  | None -> (* CROSS *)
      let out = ref [] in
      Array.iter
        (fun lr ->
          Array.iter (fun rr -> out := Tuple.concat lr rr :: !out) right.rows)
        left.rows;
      joined_env left right (Array.of_list (List.rev !out))
  | Some cond ->
      let equi, residual = split_equi left right cond in
      let both = pair_env left right in
      let keep row =
        List.for_all (fun c -> eval_cond both row c) residual
      in
      let out = ref [] in
      if equi = [] then
        Array.iter
          (fun lr ->
            Array.iter
              (fun rr ->
                let row = Tuple.concat lr rr in
                if keep row then out := row :: !out)
              right.rows)
          left.rows
      else begin
        (* Hash join on the equi columns. *)
        let right_rel =
          Relation.create ~name:"right"
            ~schema:
              (Schema.of_columns
                 (Array.to_list
                    (Array.mapi
                       (fun i (_, _) -> Schema.column (string_of_int i) right.tys.(i))
                       right.cols)))
            right.rows
        in
        let idx = Index.build right_rel ~columns:(List.map snd equi) in
        Array.iter
          (fun lr ->
            let key = List.map (fun (i, _) -> Tuple.get lr i) equi in
            List.iter
              (fun j ->
                let row = Tuple.concat lr right.rows.(j) in
                if keep row then out := row :: !out)
              (Index.lookup idx key))
          left.rows
      end;
      joined_env left right (Array.of_list (List.rev !out))

let semi_or_anti ~anti left right cond =
  let both = pair_env left right in
  let has_partner lr =
    Array.exists
      (fun rr ->
        match cond with
        | None -> true
        | Some c -> eval_cond both (Tuple.concat lr rr) c)
      right.rows
  in
  {
    left with
    rows =
      Array.of_list
        (List.filter
           (fun lr -> if anti then not (has_partner lr) else has_partner lr)
           (Array.to_list left.rows));
  }

let apply_join catalog env (kind, src, cond) =
  let right = env_of_source catalog src in
  match (kind : Ast.join_kind) with
  | Ast.Inner -> inner_join env right cond
  | Ast.Cross -> inner_join env right None
  | Ast.Semi -> semi_or_anti ~anti:false env right cond
  | Ast.Anti -> semi_or_anti ~anti:true env right cond

(* Output column naming: unqualified when unambiguous, qualified
   otherwise. *)
let output_name env i =
  let q, n = env.cols.(i) in
  let dup =
    Array.exists
      (fun (q', n') -> String.equal n n' && not (String.equal q q'))
      (Array.mapi (fun j c -> if Int.equal j i then (q, "") else c) env.cols)
  in
  if dup then q ^ "." ^ n else n

let rec ty_of_expr env = function
  | Ast.Col (q, name) -> env.tys.(resolve env q name)
  | Ast.Int _ -> Value.TInt
  | Ast.Float _ -> Value.TFloat
  | Ast.Str _ -> Value.TString
  | Ast.Bool _ -> Value.TBool
  | Ast.Null -> Value.TString
  | Ast.Binop (_, a, b) ->
      if ty_of_expr env a = Value.TFloat || ty_of_expr env b = Value.TFloat
      then Value.TFloat
      else Value.TInt

let project env (items : Ast.select_item list) =
  let only_star =
    match items with
    | [ Ast.Star ] -> true
    | [] | (Ast.Star | Ast.Expr _ | Ast.Agg _) :: _ -> false
  in
  let columns, extract =
    if only_star then
      ( Array.to_list
          (Array.mapi (fun i _ -> Schema.column (output_name env i) env.tys.(i)) env.cols),
        fun row -> row )
    else begin
      let specs =
        List.concat_map
          (function
            | Ast.Star ->
                Array.to_list
                  (Array.mapi
                     (fun i _ ->
                       (Schema.column (output_name env i) env.tys.(i),
                        fun row -> Tuple.get row i))
                     env.cols)
            | Ast.Expr (e, alias) ->
                let name =
                  match (alias, e) with
                  | Some a, _ -> a
                  | None, Ast.Col (q, n) ->
                      let i = resolve env q n in
                      ignore i;
                      n
                  | ( None,
                      ( Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Bool _
                      | Ast.Null | Ast.Binop _ ) ) ->
                      "expr"
                in
                [ (Schema.column name (ty_of_expr env e), fun row -> eval_expr env row e) ]
            | Ast.Agg _ ->
                (* Aggregates are routed to [execute_grouped]. *)
                assert false)
          items
      in
      (List.map fst specs, fun row -> Array.of_list (List.map (fun (_, f) -> f row) specs))
    end
  in
  (columns, extract)

(* Columns may collide after projection (e.g. SELECT * over a self-join of
   aliases with equal column names): disambiguate with suffixes. *)
let dedupe_columns columns =
  let seen = Hashtbl.create 16 in
  List.map
    (fun (c : Schema.column) ->
      match Hashtbl.find_opt seen c.name with
      | None ->
          Hashtbl.add seen c.name 0;
          c
      | Some k ->
          Hashtbl.replace seen c.name (k + 1);
          { c with name = Printf.sprintf "%s_%d" c.name (k + 1) })
    columns

(* ---------------------------- aggregation -------------------------- *)

let agg_default_name = function
  | Ast.Count -> "count"
  | Ast.Sum -> "sum"
  | Ast.Avg -> "avg"
  | Ast.Min -> "min"
  | Ast.Max -> "max"

let agg_ty env fn arg =
  match (fn : Ast.agg_fn) with
  | Ast.Count -> Value.TInt
  | Ast.Avg -> Value.TFloat
  | Ast.Sum | Ast.Min | Ast.Max -> (
      match arg with
      | Some e -> ty_of_expr env e
      | None -> err "%s requires an argument" (agg_default_name fn))

(* Compute one aggregate over the rows of a group; NULLs are skipped, and
   the star form of COUNT counts rows regardless. *)
let eval_agg env rows fn arg =
  match ((fn : Ast.agg_fn), arg) with
  | Ast.Count, None -> Value.Int (List.length rows)
  | (Ast.Sum | Ast.Avg | Ast.Min | Ast.Max), None ->
      err "%s requires an argument" (agg_default_name fn)
  | ((Ast.Count | Ast.Sum | Ast.Avg | Ast.Min | Ast.Max) as fn), Some e -> (
      let values =
        List.filter_map
          (fun row ->
            let v = eval_expr env row e in
            if Value.is_null v then None else Some v)
          rows
      in
      match fn with
      | Ast.Count -> Value.Int (List.length values)
      | Ast.Sum -> (
          match values with
          | [] -> Value.Null
          | Value.Int _ :: _ ->
              Value.Int
                (List.fold_left
                   (fun acc -> function
                     | Value.Int i -> acc + i
                     | Value.Null | Value.Bool _ | Value.Float _ | Value.Str _
                       ->
                         err "SUM over mixed types")
                   0 values)
          | Value.Float _ :: _ ->
              Value.Float
                (List.fold_left
                   (fun acc -> function
                     | Value.Float f -> acc +. f
                     | Value.Null | Value.Bool _ | Value.Int _ | Value.Str _ ->
                         err "SUM over mixed types")
                   0. values)
          | (Value.Null | Value.Bool _ | Value.Str _) :: _ ->
              err "SUM over non-numeric values")
      | Ast.Avg -> (
          let as_float = function
            | Value.Int i -> float_of_int i
            | Value.Float f -> f
            | Value.Null | Value.Bool _ | Value.Str _ ->
                err "AVG over non-numeric values"
          in
          match values with
          | [] -> Value.Null
          | vs ->
              Value.Float
                (List.fold_left (fun acc v -> acc +. as_float v) 0. vs
                /. float_of_int (List.length vs)))
      | Ast.Min | Ast.Max -> (
          let pick a b =
            let c = Value.compare a b in
            if (fn = Ast.Min && c <= 0) || (fn = Ast.Max && c >= 0) then a else b
          in
          match values with
          | [] -> Value.Null
          | v :: vs -> List.fold_left pick v vs))

module Key_map = Map.Make (struct
  type t = Value.t list

  let compare a b = List.compare Value.compare a b
end)

(* Structural expression equality, for the "every selected column must be
   grouped" rule. *)
let expr_equal = Ast.equal_expr

let execute_grouped env rows (q : Ast.query) =
  List.iter
    (function
      | Ast.Star -> err "SELECT * cannot be combined with GROUP BY/aggregates"
      | Ast.Expr (e, _) when q.group_by = [] ->
          err "column %s selected without GROUP BY alongside aggregates"
            (Fmt.str "%a" Ast.pp_expr e)
      | Ast.Expr (e, _) when not (List.exists (expr_equal e) q.group_by) ->
          err "selected column %s is not in GROUP BY" (Fmt.str "%a" Ast.pp_expr e)
      | Ast.Expr _ | Ast.Agg _ -> ())
    q.select;
  (* Validate column references early (even for empty inputs). *)
  List.iter (fun e -> ignore (ty_of_expr env e)) q.group_by;
  List.iter
    (function
      | Ast.Agg (_, Some e, _) -> ignore (ty_of_expr env e)
      | Ast.Agg (_, None, _) | Ast.Star | Ast.Expr _ -> ())
    q.select;
  let groups =
    Array.fold_left
      (fun acc row ->
        let key = List.map (fun e -> eval_expr env row e) q.group_by in
        Key_map.update key
          (function Some rs -> Some (row :: rs) | None -> Some [ row ])
          acc)
      Key_map.empty rows
  in
  let groups =
    (* With no GROUP BY, aggregates run over all rows — including none. *)
    if q.group_by = [] && Key_map.is_empty groups then
      Key_map.singleton [] []
    else groups
  in
  let columns =
    List.map
      (function
        | Ast.Expr (e, alias) ->
            let name =
              match (alias, e) with
              | Some a, _ -> a
              | None, Ast.Col (_, n) -> n
              | ( None,
                  ( Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Bool _
                  | Ast.Null | Ast.Binop _ ) ) ->
                  "expr"
            in
            Schema.column name (ty_of_expr env e)
        | Ast.Agg (fn, arg, alias) ->
            Schema.column
              (Option.value ~default:(agg_default_name fn) alias)
              (agg_ty env fn arg)
        | Ast.Star -> assert false)
      q.select
  in
  let out_rows =
    Key_map.fold
      (fun _key group acc ->
        let group = List.rev group in
        let representative = List.nth_opt group 0 in
        let cells =
          List.map
            (function
              | Ast.Expr (e, _) -> (
                  match representative with
                  | Some row -> eval_expr env row e
                  | None -> Value.Null)
              | Ast.Agg (fn, arg, _) -> eval_agg env group fn arg
              | Ast.Star -> assert false)
            q.select
        in
        Array.of_list cells :: acc)
      groups []
    |> List.rev
  in
  let rel =
    Relation.create ~name:"result"
      ~schema:(Schema.of_columns (dedupe_columns columns))
      (Array.of_list out_rows)
  in
  (* HAVING filters groups via their output row (aggregates included, by
     their output column names). *)
  let rel =
    match q.having with
    | None -> rel
    | Some cond ->
        let schema = Relation.schema rel in
        let out_env =
          {
            cols =
              Array.init (Schema.arity schema) (fun i ->
                  ("", Schema.name_at schema i));
            tys = Array.init (Schema.arity schema) (fun i -> Schema.ty_at schema i);
            rows = [||];
          }
        in
        Relation.with_rows rel
          (Array.of_list
             (List.filter
                (fun row -> eval_cond out_env row cond)
                (Array.to_list (Relation.rows rel))))
  in
  (* ORDER BY on the output columns (by name). *)
  let rel =
    match q.order_by with
    | [] -> rel
    | obs ->
        let schema = Relation.schema rel in
        let keys =
          List.map
            (fun (e, dir) ->
              match e with
              | Ast.Col (_, name) -> (
                  match Schema.index_of schema name with
                  | Some i -> (i, dir)
                  | None -> err "ORDER BY column %s not in grouped output" name)
              | Ast.Int _ | Ast.Float _ | Ast.Str _ | Ast.Bool _ | Ast.Null
              | Ast.Binop _ ->
                  err "ORDER BY after GROUP BY must reference output columns")
            obs
        in
        let cmp a b =
          let rec go = function
            | [] -> 0
            | (i, dir) :: rest ->
                let c = Value.compare (Tuple.get a i) (Tuple.get b i) in
                let c = match (dir : Ast.order) with Ast.Asc -> c | Ast.Desc -> -c in
                if c <> 0 then c else go rest
          in
          go keys
        in
        let copy = Array.copy (Relation.rows rel) in
        Array.stable_sort cmp copy;
        Relation.with_rows rel copy
  in
  let rel = if q.distinct then Jqi_relational.Algebra.distinct rel else rel in
  match q.limit with
  | None -> rel
  | Some n -> Jqi_relational.Algebra.limit rel n

let execute_flat env rows (q : Ast.query) =
  (* ORDER BY runs on the pre-projection env so it can sort by any column. *)
  let rows =
    match q.order_by with
    | [] -> rows
    | obs ->
        let keys =
          List.map
            (fun (e, dir) -> ((fun row -> eval_expr env row e), dir))
            obs
        in
        let cmp a b =
          let rec go = function
            | [] -> 0
            | (key, dir) :: rest ->
                let c = Value.compare (key a) (key b) in
                let c = match (dir : Ast.order) with Ast.Asc -> c | Ast.Desc -> -c in
                if c <> 0 then c else go rest
          in
          go keys
        in
        let copy = Array.copy rows in
        Array.stable_sort cmp copy;
        copy
  in
  let columns, extract = project { env with rows } q.select in
  let out_rows = Array.map extract rows in
  let rel =
    Relation.create ~name:"result"
      ~schema:(Schema.of_columns (dedupe_columns columns))
      out_rows
  in
  let rel = if q.distinct then Jqi_relational.Algebra.distinct rel else rel in
  match q.limit with
  | None -> rel
  | Some n -> Jqi_relational.Algebra.limit rel n

let execute catalog (q : Ast.query) =
  let env = env_of_source catalog q.from in
  let env = List.fold_left (apply_join catalog) env q.joins in
  let rows =
    match q.where with
    | None -> env.rows
    | Some cond ->
        Array.of_list
          (List.filter (fun r -> eval_cond env r cond) (Array.to_list env.rows))
  in
  let has_agg =
    List.exists
      (function Ast.Agg _ -> true | Ast.Star | Ast.Expr _ -> false)
      q.select
  in
  if has_agg || q.group_by <> [] then execute_grouped env rows q
  else if q.having <> None then err "HAVING requires GROUP BY or aggregates"
  else execute_flat env rows q

(* Parse and run in one step. *)
let query catalog sql =
  match Parser.parse_result sql with
  | Ok ast -> execute catalog ast
  | Result.Error msg -> raise (Error msg)

