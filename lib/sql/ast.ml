(* Abstract syntax for the SQL subset the engine executes.

   The subset is deliberately the paper's world: SELECT-FROM-WHERE over two
   or more relations with INNER/SEMI/ANTI/CROSS joins on conjunctions of
   predicates, plus projection, DISTINCT, ORDER BY and LIMIT.  The
   inference machinery emits queries in this AST ([of_equijoin]) so that an
   inferred predicate is immediately executable and printable. *)

type binop = Add | Sub | Mul | Div

type expr =
  | Col of string option * string  (* optional qualifier: r.a or a *)
  | Int of int
  | Float of float
  | Str of string
  | Bool of bool
  | Null
  | Binop of binop * expr * expr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type cond =
  | Cmp of cmp * expr * expr
  | And of cond * cond
  | Or of cond * cond
  | Not of cond
  | Is_null of expr
  | Is_not_null of expr

type join_kind = Inner | Semi | Anti | Cross

type source = { table : string; alias : string option }

type agg_fn = Count | Sum | Avg | Min | Max

type select_item =
  | Star
  | Expr of expr * string option  (* AS alias *)
  | Agg of agg_fn * expr option * string option
      (* a None argument means the star form of COUNT; others need one *)

type order = Asc | Desc

type query = {
  distinct : bool;
  select : select_item list;
  from : source;
  joins : (join_kind * source * cond option) list;
  where : cond option;
  group_by : expr list;
  having : cond option;  (* evaluated over the grouped output columns *)
  order_by : (expr * order) list;
  limit : int option;
}

let equal_binop (a : binop) (b : binop) =
  match (a, b) with
  | Add, Add | Sub, Sub | Mul, Mul | Div, Div -> true
  | (Add | Sub | Mul | Div), _ -> false

(* Structural equality on expressions; used by GROUP BY to match select
   items against grouping keys.  Float literals compare with [Float.equal]
   so that a nan literal matches itself syntactically. *)
let rec equal_expr a b =
  match (a, b) with
  | Col (qa, ca), Col (qb, cb) ->
      Option.equal String.equal qa qb && String.equal ca cb
  | Int x, Int y -> Int.equal x y
  | Float x, Float y -> Float.equal x y
  | Str x, Str y -> String.equal x y
  | Bool x, Bool y -> Bool.equal x y
  | Null, Null -> true
  | Binop (o, l, r), Binop (o', l', r') ->
      equal_binop o o' && equal_expr l l' && equal_expr r r'
  | (Col _ | Int _ | Float _ | Str _ | Bool _ | Null | Binop _), _ -> false

let source ?alias table = { table; alias }

let simple_query ?(distinct = false) ?(joins = []) ?where ?(group_by = [])
    ?having ?(order_by = []) ?limit ~select ~from () =
  { distinct; select; from; joins; where; group_by; having; order_by; limit }

(* SELECT * FROM r JOIN p ON pairs — the query shape the paper infers.  An
   empty pair list degenerates to CROSS JOIN, matching θ = ∅. *)
let of_equijoin ~r ~p pairs =
  let on_cond =
    List.fold_left
      (fun acc (a, b) ->
        let eq = Cmp (Eq, Col (Some r, a), Col (Some p, b)) in
        match acc with None -> Some eq | Some c -> Some (And (c, eq)))
      None pairs
  in
  let kind = if pairs = [] then Cross else Inner in
  simple_query ~select:[ Star ] ~from:(source r)
    ~joins:[ (kind, source p, on_cond) ]
    ()

(* SELECT * FROM r SEMI JOIN p ON pairs — the §6 query shape. *)
let of_semijoin ~r ~p pairs =
  let q = of_equijoin ~r ~p pairs in
  match q.joins with
  | [ (_, src, cond) ] -> { q with joins = [ (Semi, src, cond) ] }
  | _ -> assert false

(* ------------------------------ printing --------------------------- *)

(* Keywords must be kept in sync with the lexer (which Ast cannot depend
   on without a cycle through the printer tests; the list is small and
   fixed by the grammar). *)
let keywords =
  [
    "select"; "distinct"; "from"; "where"; "join"; "semi"; "anti"; "cross";
    "inner"; "on"; "and"; "or"; "not"; "as"; "is"; "null"; "order"; "by";
    "asc"; "desc"; "limit"; "true"; "false"; "group"; "having"; "count";
    "sum"; "avg"; "min"; "max";
  ]

let needs_quoting name =
  name = ""
  || not
       (String.for_all
          (fun c ->
            (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
            || (c >= '0' && c <= '9')
            || c = '_')
          name)
  || (name.[0] >= '0' && name.[0] <= '9')
  || List.mem (String.lowercase_ascii name) keywords

let pp_name ppf name =
  if needs_quoting name then Fmt.pf ppf "\"%s\"" name else Fmt.string ppf name

let binop_symbol = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

(* Binops are always parenthesized, keeping the printed form unambiguous
   (and the print -> parse -> print cycle a fixpoint). *)
let rec pp_expr ppf = function
  | Col (None, c) -> pp_name ppf c
  | Col (Some q, c) -> Fmt.pf ppf "%a.%a" pp_name q pp_name c
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.pf ppf "%g" f
  | Str s ->
      Fmt.pf ppf "'%s'" (String.concat "''" (String.split_on_char '\'' s))
  | Bool b -> Fmt.string ppf (if b then "TRUE" else "FALSE")
  | Null -> Fmt.string ppf "NULL"
  | Binop (op, a, b) ->
      Fmt.pf ppf "(%a %s %a)" pp_expr a (binop_symbol op) pp_expr b

let cmp_symbol = function
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp_cond ppf = function
  | Cmp (op, a, b) -> Fmt.pf ppf "%a %s %a" pp_expr a (cmp_symbol op) pp_expr b
  | And (a, b) -> Fmt.pf ppf "%a AND %a" pp_cond_atom a pp_cond_atom b
  | Or (a, b) -> Fmt.pf ppf "%a OR %a" pp_cond_atom a pp_cond_atom b
  | Not c -> Fmt.pf ppf "NOT %a" pp_cond_atom c
  | Is_null e -> Fmt.pf ppf "%a IS NULL" pp_expr e
  | Is_not_null e -> Fmt.pf ppf "%a IS NOT NULL" pp_expr e

and pp_cond_atom ppf c =
  match c with
  | Cmp _ | Is_null _ | Is_not_null _ -> pp_cond ppf c
  | And _ | Or _ | Not _ -> Fmt.pf ppf "(%a)" pp_cond c

let pp_source ppf s =
  match s.alias with
  | None -> pp_name ppf s.table
  | Some a -> Fmt.pf ppf "%a AS %a" pp_name s.table pp_name a

let join_keyword = function
  | Inner -> "JOIN"
  | Semi -> "SEMI JOIN"
  | Anti -> "ANTI JOIN"
  | Cross -> "CROSS JOIN"

let agg_name = function
  | Count -> "COUNT" | Sum -> "SUM" | Avg -> "AVG" | Min -> "MIN" | Max -> "MAX"

let pp_select_item ppf = function
  | Star -> Fmt.string ppf "*"
  | Expr (e, None) -> pp_expr ppf e
  | Expr (e, Some a) -> Fmt.pf ppf "%a AS %a" pp_expr e pp_name a
  | Agg (fn, arg, alias) ->
      Fmt.pf ppf "%s(%a)%a" (agg_name fn)
        (fun ppf -> function
          | None -> Fmt.string ppf "*"
          | Some e -> pp_expr ppf e)
        arg
        (fun ppf -> function
          | None -> ()
          | Some a -> Fmt.pf ppf " AS %a" pp_name a)
        alias

let pp_query ppf q =
  Fmt.pf ppf "SELECT %s%a FROM %a"
    (if q.distinct then "DISTINCT " else "")
    (Fmt.list ~sep:(Fmt.any ", ") pp_select_item)
    q.select pp_source q.from;
  List.iter
    (fun (kind, src, cond) ->
      Fmt.pf ppf " %s %a" (join_keyword kind) pp_source src;
      match cond with
      | Some c -> Fmt.pf ppf " ON %a" pp_cond c
      | None -> ())
    q.joins;
  Option.iter (fun c -> Fmt.pf ppf " WHERE %a" pp_cond c) q.where;
  (match q.group_by with
  | [] -> ()
  | gbs ->
      Fmt.pf ppf " GROUP BY %a" (Fmt.list ~sep:(Fmt.any ", ") pp_expr) gbs);
  Option.iter (fun c -> Fmt.pf ppf " HAVING %a" pp_cond c) q.having;
  (match q.order_by with
  | [] -> ()
  | obs ->
      Fmt.pf ppf " ORDER BY %a"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf (e, o) ->
             Fmt.pf ppf "%a%s" pp_expr e
               (match o with Asc -> "" | Desc -> " DESC")))
        obs);
  Option.iter (fun n -> Fmt.pf ppf " LIMIT %d" n) q.limit

let to_string q = Fmt.str "%a" pp_query q
