(** Interactive inference of join paths (the paper's §7 future-work item).

    A chain R_1, …, R_k with one equijoin predicate per adjacent pair; the
    user labels path tuples (positive iff every edge predicate selects its
    pair).  The §3 machinery generalizes with polynomial certainty tests:
    Cert⁺ is the per-edge Lemma 3.3 conjunction, Cert⁻ a vector form of
    Lemma 3.4 checked against the maximal selecting vector. *)

module Bits = Jqi_util.Bits

(** A class of path tuples sharing the same signature vector. *)
type combo = {
  signatures : Bits.t array;  (** T of each adjacent pair *)
  count : int;
  rep : int array;  (** one row index per relation *)
}

type t = {
  relations : Jqi_relational.Relation.t array;
  omegas : Jqi_core.Omega.t array;  (** omegas.(i) spans R_i × R_{i+1} *)
  combos : combo array;
}

val max_path_tuples : int

(** Quotient the full path product by the signature vector.  Raises
    [Invalid_argument] on fewer than two relations, an empty relation, or
    a product beyond [max_path_tuples]. *)
val build : Jqi_relational.Relation.t list -> t

val n_edges : t -> int
val n_combos : t -> int
val combo : t -> int -> combo

(** Does a predicate vector select a signature vector (every edge ⊆)? *)
val selects : Bits.t array -> Bits.t array -> bool

exception Inconsistent of { combo_id : int; label : Jqi_core.Sample.label }

type state = {
  path : t;
  mutable tpos : Bits.t array;
  mutable negs : Bits.t array list;
  labels : Jqi_core.Sample.label option array;
  mutable history : (int * Jqi_core.Sample.label) list;
}

val create : t -> state

val certain_label_vec :
  tpos:Bits.t array -> negs:Bits.t array list -> Bits.t array ->
  Jqi_core.Sample.label option

val certain_label : state -> int -> Jqi_core.Sample.label option
val informative : state -> int -> bool
val informative_combos : state -> int list

(** Raises [Inconsistent] when contradicting a certain label. *)
val label : state -> int -> Jqi_core.Sample.label -> unit

val n_interactions : state -> int

(** The per-edge most specific predicates T(S+). *)
val inferred : state -> Bits.t array

(** Two vectors select the same combos of this path instance. *)
val equivalent : t -> Bits.t array -> Bits.t array -> bool

type strategy = { name : string; choose : state -> int option }

val bu : strategy
val td : strategy
val rnd : Jqi_util.Prng.t -> strategy
val l1s : strategy

type oracle = state -> int -> Jqi_core.Sample.label

val honest_oracle : goal:Bits.t array -> oracle

type result = {
  strategy : string;
  predicates : Bits.t array;
  n_interactions : int;
  steps : (int * Jqi_core.Sample.label) list;
  elapsed : float;
}

val run : ?max_interactions:int -> t -> strategy -> oracle -> result
val verified : t -> goal:Bits.t array -> result -> bool
val pp_predicates : t -> Format.formatter -> Bits.t array -> unit
