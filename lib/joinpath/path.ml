(* Interactive inference of join paths — the paper's §7 future-work item
   "extend our approach … to join paths".

   Setting: a chain R_1, …, R_k of relations with pairwise-disjoint
   attribute sets, and a goal vector of equijoin predicates
   θ_i ⊆ attrs(R_i) × attrs(R_{i+1}).  The user labels *path tuples*
   (t_1, …, t_k) of the full product: positive iff every adjacent pair is
   selected (∀i. θ_i ⊆ T(t_i, t_{i+1})).

   The paper's machinery generalizes: a path tuple is characterized by its
   *signature vector* (T(t_1,t_2), …, T(t_{k-1},t_k)); positives intersect
   into per-edge most-specific predicates tposᵢ; a negative example
   contributes the constraint "some edge predicate is ⊄ its signature".
   The certain-tuple characterizations stay polynomial:

   - Cert⁺ (every consistent vector selects the combo): tposᵢ ⊆ sᵢ for all
     edges — the per-edge Lemma 3.3, because any consistent θᵢ ⊆ tposᵢ;
   - Cert⁻ (no consistent vector selects it): the *maximal* selecting
     vector (sᵢ ∩ tposᵢ)ᵢ violates some negative constraint, i.e.
     ∃ negative (n₁…n_m). ∀i. sᵢ ∩ tposᵢ ⊆ nᵢ — a vector form of
     Lemma 3.4; maximality makes the single check sufficient because the
     constraint is monotone in each θᵢ. *)

module Bits = Jqi_util.Bits
module Prng = Jqi_util.Prng
module Relation = Jqi_relational.Relation
module Tuple = Jqi_relational.Tuple
module Omega = Jqi_core.Omega
module Tsig = Jqi_core.Tsig
module Sample = Jqi_core.Sample

type combo = {
  signatures : Bits.t array;  (* one per edge *)
  count : int;  (* multiplicity among path tuples *)
  rep : int array;  (* row indexes, one per relation *)
}

type t = {
  relations : Relation.t array;
  omegas : Omega.t array;  (* omegas.(i) spans R_i × R_{i+1} *)
  combos : combo array;
}

let n_edges t = Array.length t.omegas
let n_combos t = Array.length t.combos
let combo t i = t.combos.(i)

(* Guard: the combo table is the quotient of the full path product. *)
let max_path_tuples = 2_000_000

let build relations =
  (match relations with
  | [] | [ _ ] -> invalid_arg "Path.build: need at least two relations"
  | _ -> ());
  let relations = Array.of_list relations in
  let k = Array.length relations in
  let total =
    Array.fold_left (fun acc r -> acc * Relation.cardinality r) 1 relations
  in
  if total = 0 then invalid_arg "Path.build: empty relation in the chain";
  if total > max_path_tuples then
    invalid_arg "Path.build: path product too large";
  let omegas =
    Array.init (k - 1) (fun i ->
        Omega.of_schemas
          (Relation.schema relations.(i))
          (Relation.schema relations.(i + 1)))
  in
  let module H = Hashtbl in
  let acc : (string, Bits.t array * int * int array) H.t = H.create 256 in
  let key sigs =
    String.concat "|"
      (Array.to_list (Array.map Bits.to_string sigs))
  in
  let rows = Array.make k 0 in
  let rec scan depth =
    if Int.equal depth k then begin
      let sigs =
        Array.init (k - 1) (fun i ->
            Tsig.of_tuples omegas.(i)
              (Relation.row relations.(i) rows.(i))
              (Relation.row relations.(i + 1) rows.(i + 1)))
      in
      let key = key sigs in
      match H.find_opt acc key with
      | Some (s, c, r) -> H.replace acc key (s, c + 1, r)
      | None -> H.replace acc key (sigs, 1, Array.copy rows)
    end
    else
      for i = 0 to Relation.cardinality relations.(depth) - 1 do
        rows.(depth) <- i;
        scan (depth + 1)
      done
  in
  scan 0;
  let combos =
    H.fold
      (fun _ (signatures, count, rep) l -> { signatures; count; rep } :: l)
      acc []
    |> List.sort (fun a b ->
           (* Deterministic order on representatives (int arrays of equal
              length k): lexicographic. *)
           let rec go i =
             if i >= Array.length a.rep then 0
             else
               let c = Int.compare a.rep.(i) b.rep.(i) in
               if c <> 0 then c else go (i + 1)
           in
           go 0)
    |> Array.of_list
  in
  { relations; omegas; combos }

(* Does a predicate vector select a signature vector? *)
let selects thetas signatures =
  let n = Array.length thetas in
  let rec go i = i >= n || (Bits.subset thetas.(i) signatures.(i) && go (i + 1)) in
  go 0

(* ------------------------------ state ------------------------------ *)

exception Inconsistent of { combo_id : int; label : Sample.label }

type state = {
  path : t;
  mutable tpos : Bits.t array;  (* per-edge T(S+) *)
  mutable negs : Bits.t array list;  (* signature vectors of negatives *)
  labels : Sample.label option array;
  mutable history : (int * Sample.label) list;
}

let create path =
  {
    path;
    tpos = Array.map Omega.full path.omegas;
    negs = [];
    labels = Array.make (n_combos path) None;
    history = [];
  }

let certain_pos_vec ~tpos signatures =
  let n = Array.length tpos in
  let rec go i = i >= n || (Bits.subset tpos.(i) signatures.(i) && go (i + 1)) in
  go 0

let certain_neg_vec ~tpos ~negs signatures =
  let n = Array.length tpos in
  let dominated neg =
    let rec go i =
      i >= n || (Bits.subset (Bits.inter tpos.(i) signatures.(i)) neg.(i) && go (i + 1))
    in
    go 0
  in
  List.exists dominated negs

let certain_label_vec ~tpos ~negs signatures =
  if certain_pos_vec ~tpos signatures then Some Sample.Positive
  else if certain_neg_vec ~tpos ~negs signatures then Some Sample.Negative
  else None

let certain_label st i =
  certain_label_vec ~tpos:st.tpos ~negs:st.negs st.path.combos.(i).signatures

let informative st i = certain_label st i = None

let informative_combos st =
  List.filter (informative st) (List.init (n_combos st.path) Fun.id)

let label st i lbl =
  (match certain_label st i with
  | Some certain when not (Sample.equal_label certain lbl) ->
      raise (Inconsistent { combo_id = i; label = lbl })
  | _ -> ());
  let sigs = st.path.combos.(i).signatures in
  (match lbl with
  | Sample.Positive -> st.tpos <- Array.map2 Bits.inter st.tpos sigs
  | Sample.Negative -> st.negs <- Array.copy sigs :: st.negs);
  st.labels.(i) <- Some lbl;
  st.history <- (i, lbl) :: st.history

let n_interactions st = List.length st.history

(* The inferred predicate vector: per-edge T(S+). *)
let inferred st = Array.copy st.tpos

(* Instance equivalence over the path: two vectors select the same combos. *)
let equivalent path a b =
  Array.for_all
    (fun c -> Bool.equal (selects a c.signatures) (selects b c.signatures))
    path.combos

(* ---------------------------- strategies --------------------------- *)

type strategy = { name : string; choose : state -> int option }

let total_size sigs = Array.fold_left (fun acc s -> acc + Bits.cardinal s) 0 sigs

let min_by f = function
  | [] -> None
  | x :: xs ->
      Some
        (fst
           (List.fold_left
              (fun (bx, bv) y ->
                let v = f y in
                if v < bv then (y, v) else (bx, bv))
              (x, f x) xs))

(* BU: informative combo with the smallest total signature size. *)
let bu =
  {
    name = "BU";
    choose =
      (fun st ->
        min_by (fun i -> total_size st.path.combos.(i).signatures)
          (informative_combos st));
  }

(* TD: while no positive example exists, ask about combos whose signature
   vector is componentwise ⊆-maximal; afterwards BU. *)
let td =
  {
    name = "TD";
    choose =
      (fun st ->
        let has_positive =
          List.exists (fun (_, l) -> l = Sample.Positive) st.history
        in
        if has_positive then bu.choose st
        else begin
          let dominated a b =
            (* a strictly below b, componentwise *)
            let n = Array.length a in
            let rec le i = i >= n || (Bits.subset a.(i) b.(i) && le (i + 1)) in
            le 0
            && not (Array.for_all2 Bits.equal a b)
          in
          let all = Array.to_list (Array.map (fun c -> c.signatures) st.path.combos) in
          let is_maximal sigs = not (List.exists (dominated sigs) all) in
          match
            List.filter
              (fun i -> is_maximal st.path.combos.(i).signatures)
              (informative_combos st)
          with
          | [] -> bu.choose st
          | i :: _ -> Some i
        end);
  }

let rnd prng =
  {
    name = "RND";
    choose =
      (fun st ->
        match informative_combos st with
        | [] -> None
        | is -> Some (Prng.pick_list prng is));
  }

(* L1S: one-step lookahead on the combo quotient — the same skyline rule
   as Algorithm 4, with u± counted by the path certainty tests. *)
let l1s =
  {
    name = "L1S";
    choose =
      (fun st ->
        match informative_combos st with
        | [] -> None
        | is ->
            let count_certain ~tpos ~negs ids =
              List.fold_left
                (fun acc i ->
                  if
                    certain_label_vec ~tpos ~negs st.path.combos.(i).signatures
                    <> None
                  then acc + st.path.combos.(i).count
                  else acc)
                0 ids
            in
            let entropy i =
              let sigs = st.path.combos.(i).signatures in
              let u_pos =
                count_certain ~tpos:(Array.map2 Bits.inter st.tpos sigs)
                  ~negs:st.negs is
                - 1
              in
              let u_neg =
                count_certain ~tpos:st.tpos ~negs:(sigs :: st.negs) is - 1
              in
              Jqi_core.Entropy.make u_pos u_neg
            in
            let scored = List.map (fun i -> (i, entropy i)) is in
            Option.bind
              (Jqi_core.Entropy.best (List.map snd scored))
              (fun e ->
                List.find_map
                  (fun (i, ei) ->
                    if Jqi_core.Entropy.equal ei e then Some i else None)
                  scored));
  }

(* ---------------------------- inference ---------------------------- *)

type oracle = state -> int -> Sample.label

let honest_oracle ~goal : oracle =
  fun st i ->
    if selects goal st.path.combos.(i).signatures then Sample.Positive
    else Sample.Negative

type result = {
  strategy : string;
  predicates : Bits.t array;
  n_interactions : int;
  steps : (int * Sample.label) list;
  elapsed : float;
}

let run ?max_interactions path strategy (oracle : oracle) =
  let st = create path in
  let budget n =
    match max_interactions with None -> true | Some b -> n < b
  in
  let t0 = Jqi_util.Timer.now () in
  let rec loop n =
    if budget n then
      match strategy.choose st with
      | None -> ()
      | Some i ->
          label st i (oracle st i);
          loop (n + 1)
  in
  loop 0;
  {
    strategy = strategy.name;
    predicates = inferred st;
    n_interactions = n_interactions st;
    steps = List.rev st.history;
    elapsed = Jqi_util.Timer.now () -. t0;
  }

let verified path ~goal result = equivalent path goal result.predicates

let pp_predicates path ppf preds =
  Fmt.pf ppf "%a"
    (Fmt.list ~sep:(Fmt.any " ; ") (fun ppf (i, theta) ->
         Fmt.pf ppf "%s⋈%s: %a"
           (Relation.name path.relations.(i))
           (Relation.name path.relations.(i + 1))
           (Omega.pp_pred path.omegas.(i))
           theta))
    (List.mapi (fun i theta -> (i, theta)) (Array.to_list preds))
