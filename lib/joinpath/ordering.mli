(** Candidate variable orderings for Leapfrog Triejoin.

    Triejoin is worst-case optimal under {e any} total order of the join
    variables, but constant factors swing wildly with the order: binding
    low-cardinality, high-degree variables first prunes the search tree
    near the root.  This module enumerates a small deduplicated set of
    deterministic candidate orders over a {!Jqi_relational.Leapfrog.var}
    array — the search space the bench sweeps and the engine's default
    pick comes from.  Each order is a permutation of variable indexes,
    directly usable as [Leapfrog.join ~order]. *)

(** The classic triejoin heuristic: ascending estimated cardinality
    (fewest distinct joinable codes first), ties by discovery index. *)
val by_cardinality : Jqi_relational.Leapfrog.var array -> int array

(** Descending degree (variables touching the most column positions
    first), ties by discovery index. *)
val by_degree : Jqi_relational.Leapfrog.var array -> int array

(** Candidate orders, deduplicated, the default pick first: ascending
    cardinality, then descending degree, then discovery (identity)
    order.  Always non-empty; a single candidate means the heuristics
    agree. *)
val candidates : Jqi_relational.Leapfrog.var array -> int array list

(** The default order: {!by_cardinality}. *)
val default : Jqi_relational.Leapfrog.var array -> int array
