(* Candidate variable orderings.  All deterministic: sorts are stable
   only by construction (the comparison breaks ties on the variable
   index), so equal inputs give equal orders on every run. *)

module Leapfrog = Jqi_relational.Leapfrog

let permutation vars compare_at =
  let n = Array.length vars in
  let order = Array.init n (fun i -> i) in
  Array.sort compare_at order;
  order

let by_cardinality vars =
  permutation vars (fun a b ->
      let c =
        Int.compare vars.(a).Leapfrog.card vars.(b).Leapfrog.card
      in
      if c <> 0 then c else Int.compare a b)

let degree vars v = List.length vars.(v).Leapfrog.positions

let by_degree vars =
  permutation vars (fun a b ->
      let c = Int.compare (degree vars b) (degree vars a) in
      if c <> 0 then c else Int.compare a b)

let identity vars = Array.init (Array.length vars) (fun i -> i)

let equal_order (a : int array) (b : int array) =
  Array.length a = Array.length b
  &&
  let rec go i =
    i >= Array.length a || (Int.equal a.(i) b.(i) && go (i + 1))
  in
  go 0

let candidates vars =
  List.rev
    (List.fold_left
       (fun acc order ->
         if List.exists (equal_order order) acc then acc else order :: acc)
       []
       [ by_cardinality vars; by_degree vars; identity vars ])

let default = by_cardinality
