(* Minimal JSON reading and writing.

   Used to persist interactive sessions (and anything else that wants a
   structured on-disk format) without an external dependency.  Numbers are
   floats, as in JSON itself; [int] and [to_int] paper over the common
   integer case. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { position : int; message : string }

let int i = Num (float_of_int i)

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | Null | Bool _ | Num _ | Str _ | List _ | Obj _ -> None

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | List _ -> None

(* ------------------------------ writing ---------------------------- *)

let escape_into buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (string_of_bool b)
  | Num f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        Buffer.add_string buf (Printf.sprintf "%.0f" f)
      else Buffer.add_string buf (Printf.sprintf "%.17g" f)
  | Str s ->
      Buffer.add_char buf '"';
      escape_into buf s;
      Buffer.add_char buf '"'
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          write buf item)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_char buf '"';
          escape_into buf k;
          Buffer.add_string buf "\":";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string json =
  let buf = Buffer.create 256 in
  write buf json;
  Buffer.contents buf

(* ------------------------------ parsing ---------------------------- *)

type parser_state = { input : string; mutable pos : int }

let fail st message = raise (Parse_error { position = st.pos; message })

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.input
    && (match st.input.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
  do
    st.pos <- st.pos + 1
  done

let expect_char st c =
  match peek st with
  | Some d when d = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let parse_literal st word value =
  if
    st.pos + String.length word <= String.length st.input
    && String.sub st.input st.pos (String.length word) = word
  then begin
    st.pos <- st.pos + String.length word;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string_body st =
  expect_char st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' -> (
        st.pos <- st.pos + 1;
        match peek st with
        | Some '"' -> Buffer.add_char buf '"'; st.pos <- st.pos + 1; go ()
        | Some '\\' -> Buffer.add_char buf '\\'; st.pos <- st.pos + 1; go ()
        | Some '/' -> Buffer.add_char buf '/'; st.pos <- st.pos + 1; go ()
        | Some 'n' -> Buffer.add_char buf '\n'; st.pos <- st.pos + 1; go ()
        | Some 'r' -> Buffer.add_char buf '\r'; st.pos <- st.pos + 1; go ()
        | Some 't' -> Buffer.add_char buf '\t'; st.pos <- st.pos + 1; go ()
        | Some 'b' -> Buffer.add_char buf '\b'; st.pos <- st.pos + 1; go ()
        | Some 'f' -> Buffer.add_char buf '\012'; st.pos <- st.pos + 1; go ()
        | Some 'u' ->
            if st.pos + 5 > String.length st.input then fail st "bad \\u escape";
            let hex = String.sub st.input (st.pos + 1) 4 in
            (match int_of_string_opt ("0x" ^ hex) with
            | None -> fail st "bad \\u escape"
            | Some code ->
                (* Encode the code point as UTF-8 (BMP only, no surrogate
                   pairing — sufficient for the session files we write). *)
                if code < 0x80 then Buffer.add_char buf (Char.chr code)
                else if code < 0x800 then begin
                  Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end
                else begin
                  Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                  Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                  Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                end;
                st.pos <- st.pos + 5;
                go ())
        | _ -> fail st "bad escape")
    | Some c ->
        Buffer.add_char buf c;
        st.pos <- st.pos + 1;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    (c >= '0' && c <= '9') || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
  in
  while st.pos < String.length st.input && is_num_char st.input.[st.pos] do
    st.pos <- st.pos + 1
  done;
  match float_of_string_opt (String.sub st.input start (st.pos - start)) with
  | Some f -> Num f
  | None -> fail st "malformed number"

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some '}' then begin
        st.pos <- st.pos + 1;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws st;
          let key = parse_string_body st in
          skip_ws st;
          expect_char st ':';
          let value = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              fields ((key, value) :: acc)
          | Some '}' ->
              st.pos <- st.pos + 1;
              List.rev ((key, value) :: acc)
          | _ -> fail st "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      st.pos <- st.pos + 1;
      skip_ws st;
      if peek st = Some ']' then begin
        st.pos <- st.pos + 1;
        List []
      end
      else begin
        let rec items acc =
          let value = parse_value st in
          skip_ws st;
          match peek st with
          | Some ',' ->
              st.pos <- st.pos + 1;
              items (value :: acc)
          | Some ']' ->
              st.pos <- st.pos + 1;
              List.rev (value :: acc)
          | _ -> fail st "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '"' -> Str (parse_string_body st)
  | Some 't' -> parse_literal st "true" (Bool true)
  | Some 'f' -> parse_literal st "false" (Bool false)
  | Some 'n' -> parse_literal st "null" Null
  | Some _ -> parse_number st

let of_string input =
  let st = { input; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length input then fail st "trailing input";
  v

let save_file path json =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string json))

let load_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      of_string (really_input_string ic n))
