(** Minimal JSON reading and writing (session persistence). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of { position : int; message : string }

(** Integer convenience constructors over [Num]. *)
val int : int -> t

(** [Some i] when the number is integral. *)
val to_int : t -> int option

(** Field lookup on objects; [None] otherwise. *)
val member : string -> t -> t option

(** Compact rendering with string escaping. *)
val to_string : t -> string

(** Raises [Parse_error] on malformed input.  BMP \u escapes are decoded
    to UTF-8. *)
val of_string : string -> t

val save_file : string -> t -> unit
val load_file : string -> t
