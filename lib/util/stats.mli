(** Summary statistics for experiment results (Figure 7 / Table 1 averages). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation *)
  min : float;
  max : float;
  median : float;
}

val mean : float array -> float

(** Sample variance (n-1 denominator); 0 for fewer than two points. *)
val variance : float array -> float

val stddev : float array -> float

(** [percentile xs p] with linear interpolation; [p] in [0,100]. *)
val percentile : float array -> float -> float

val median : float array -> float
val min_max : float array -> float * float
val summarize : float array -> summary
val of_ints : int array -> float array
val pp_summary : Format.formatter -> summary -> unit
