(** Summary statistics for experiment results (Figure 7 / Table 1 averages). *)

type summary = {
  n : int;
  mean : float;
  stddev : float;  (** sample standard deviation *)
  min : float;
  max : float;
  median : float;
}

val mean : float array -> float

(** Sample variance (n-1 denominator); 0 for fewer than two points. *)
val variance : float array -> float

val stddev : float array -> float

(** [percentile xs p] with linear interpolation.  [nan] on the empty
    array; the single sample on a singleton for every [p].
    @raise Invalid_argument when [p] is NaN or outside [0,100]. *)
val percentile : float array -> float -> float

(** [quantile xs q] = [percentile xs (q *. 100.)].
    @raise Invalid_argument when [q] is NaN or outside [0,1]. *)
val quantile : float array -> float -> float

val median : float array -> float
val min_max : float array -> float * float
val summarize : float array -> summary
val of_ints : int array -> float array
val pp_summary : Format.formatter -> summary -> unit
