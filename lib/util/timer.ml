(* Wall-clock timing helpers for the inference-time measurements (Figures
   6c/6d, 7c/7d/7g/7h/7k/7l and the "Time of best strategy" column of
   Table 1). *)

let now () = Unix.gettimeofday ()

(* [time f] runs [f ()] and returns its result with the elapsed seconds. *)
let time f =
  let t0 = now () in
  let r = f () in
  let t1 = now () in
  (r, t1 -. t0)

let time_only f = snd (time f)

type t = { mutable started : float; mutable accumulated : float; mutable running : bool }

let create () = { started = 0.; accumulated = 0.; running = false }

let start t =
  if not t.running then begin
    t.started <- now ();
    t.running <- true
  end

let stop t =
  if t.running then begin
    t.accumulated <- t.accumulated +. (now () -. t.started);
    t.running <- false
  end

let elapsed t =
  if t.running then t.accumulated +. (now () -. t.started) else t.accumulated

let reset t =
  t.accumulated <- 0.;
  t.running <- false

let pp_seconds ppf s =
  if s < 1e-3 then Fmt.pf ppf "%.0fµs" (s *. 1e6)
  else if s < 1. then Fmt.pf ppf "%.1fms" (s *. 1e3)
  else Fmt.pf ppf "%.2fs" s
