(** Terminal bar charts, used to render the interaction figures (6a/6b and
    Figure 7's plots) as horizontal ASCII bars. *)

type group = { label : string; values : (string * float) list }

(** Grouped horizontal bars, scaled to the global maximum; zero values get
    an empty bar, tiny positive values at least one mark. *)
val render_grouped : title:string -> value_label:string -> group list -> string

val print_grouped : title:string -> value_label:string -> group list -> unit
