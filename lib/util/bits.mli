(** Fixed-width immutable bitsets.

    The inference engine represents join predicates — subsets of
    Ω = attrs(R) × attrs(P) — as bitsets indexed by a fixed pair numbering,
    so that the subset and intersection tests dominating the inner loops of
    Lemmas 3.3/3.4 cost O(|Ω|/word_size). *)

type t

(** [empty w] is the empty set over a universe of [w] elements. *)
val empty : int -> t

(** [full w] is the complete universe of [w] elements. *)
val full : int -> t

(** [singleton w i] is [{i}] over a universe of [w] elements. *)
val singleton : int -> int -> t

(** Universe size this set was created with. *)
val width : t -> int

val mem : t -> int -> bool
val add : t -> int -> t
val remove : t -> int -> t
val union : t -> t -> t
val inter : t -> t -> t

(** [diff a b] is [a \ b]. *)
val diff : t -> t -> t

(** Complement within the universe. *)
val complement : t -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** [subset a b] is true iff [a ⊆ b]. *)
val subset : t -> t -> bool

(** [inter_subset a b c] is [subset (inter a b) c] without allocating the
    intersection. *)
val inter_subset : t -> t -> t -> bool

val disjoint : t -> t -> bool
val is_empty : t -> bool
val cardinal : t -> int
val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a
val iter : (int -> unit) -> t -> unit

(** Elements in increasing order. *)
val elements : t -> int list

val of_list : int -> int list -> t

(** [build w f] marks bits through the setter passed to [f]; a single
    allocation regardless of how many bits are set.  The setter raises on
    out-of-range indexes. *)
val build : int -> ((int -> unit) -> unit) -> t
val for_all : (int -> bool) -> t -> bool
val exists : (int -> bool) -> t -> bool

(** All 2^|t| subsets of [t]. Exponential — only for brute-force oracles and
    the minimax strategy on tiny instances. *)
val subsets : t -> t list

val pp : Format.formatter -> t -> unit
val to_string : t -> string
