(* Growable arrays (amortized O(1) push).

   The join evaluators and the universe builders accumulate outputs whose
   size is unknown up front; a [list ref] + [List.rev] + [Array.of_list]
   chain allocates every element twice and walks the result three times.
   This is the usual doubling vector instead: OCaml 5.1 predates the
   stdlib's [Dynarray], so we carry our own minimal one. *)

type 'a t = { mutable data : 'a array; mutable len : int }

let create () = { data = [||]; len = 0 }

let length t = t.len

let push t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    (* The pushed element doubles as the fill of the fresh slots, so no
       dummy value is ever needed. *)
    let data = Array.make (max 8 (2 * cap)) x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let clear t = t.len <- 0

let to_array t = Array.sub t.data 0 t.len

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let to_list t =
  let rec go i acc = if i < 0 then acc else go (i - 1) (t.data.(i) :: acc) in
  go (t.len - 1) []
