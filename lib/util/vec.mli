(** Growable arrays (doubling vectors) for accumulating outputs of unknown
    size with amortized O(1) [push] — the replacement for the
    [list ref]/[List.rev]/[Array.of_list] accumulation pattern in the join
    evaluators.  Not thread-safe. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

(** Raises [Invalid_argument] outside [0, length). *)
val get : 'a t -> int -> 'a

(** Forget the contents; capacity is kept. *)
val clear : 'a t -> unit

(** Fresh array of the [length] pushed elements, in push order. *)
val to_array : 'a t -> 'a array

val to_list : 'a t -> 'a list
val iter : ('a -> unit) -> 'a t -> unit
