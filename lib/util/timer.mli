(** Wall-clock timing for the inference-time measurements (Figures 6c/6d,
    7, Table 1). *)

val now : unit -> float

(** [time f] runs [f ()]; returns its result and the elapsed seconds. *)
val time : (unit -> 'a) -> 'a * float

val time_only : (unit -> 'a) -> float

(** A stopwatch accumulating across start/stop pairs. *)
type t

val create : unit -> t
val start : t -> unit
val stop : t -> unit

(** Accumulated seconds (including the running segment, if any). *)
val elapsed : t -> float

val reset : t -> unit

(** Human-readable duration (µs/ms/s). *)
val pp_seconds : Format.formatter -> float -> unit
