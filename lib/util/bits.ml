(* Fixed-width immutable bitsets.

   Join predicates are subsets of Ω = attrs(R) × attrs(P); the inference
   inner loops are dominated by subset and intersection tests between such
   predicates, so we represent them as arrays of word-sized integers.
   Invariant: bits at positions >= width are always zero, which lets
   [equal]/[compare]/[hash] work word-wise. *)

let bits_per_word = Sys.int_size

type t = { width : int; words : int array }

let nwords width =
  if width < 0 then invalid_arg "Bits: negative width";
  (width + bits_per_word - 1) / bits_per_word

let empty width = { width; words = Array.make (max 1 (nwords width)) 0 }

let width t = t.width

let check_idx t i =
  if i < 0 || i >= t.width then
    invalid_arg (Printf.sprintf "Bits: index %d out of width %d" i t.width)

(* Mask for the last word so complement-like operations keep the invariant. *)
let last_mask width =
  let r = width mod bits_per_word in
  if r = 0 then -1 else (1 lsl r) - 1

let full width =
  let n = max 1 (nwords width) in
  let words = Array.make n 0 in
  let m = nwords width in
  for i = 0 to m - 1 do
    words.(i) <- -1
  done;
  if m > 0 then words.(m - 1) <- last_mask width;
  { width; words }

let mem t i =
  check_idx t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check_idx t i;
  let w = Array.copy t.words in
  let j = i / bits_per_word in
  w.(j) <- w.(j) lor (1 lsl (i mod bits_per_word));
  { t with words = w }

let remove t i =
  check_idx t i;
  let w = Array.copy t.words in
  let j = i / bits_per_word in
  w.(j) <- w.(j) land lnot (1 lsl (i mod bits_per_word));
  { t with words = w }

let singleton width i =
  let t = empty width in
  add t i

let check_same a b =
  if a.width <> b.width then invalid_arg "Bits: width mismatch"

let map2 f a b =
  check_same a b;
  { width = a.width; words = Array.map2 f a.words b.words }

let union a b = map2 ( lor ) a b
let inter a b = map2 ( land ) a b
let diff a b = map2 (fun x y -> x land lnot y) a b

let complement t =
  let u = diff (full t.width) t in
  u

let equal a b = a.width = b.width && Array.for_all2 ( = ) a.words b.words

let compare a b =
  let c = compare a.width b.width in
  if c <> 0 then c else compare a.words b.words

let hash t =
  Array.fold_left (fun acc w -> (acc * 486187739) + w) t.width t.words

let subset a b =
  check_same a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land lnot b.words.(i) = 0 && go (i + 1)) in
  go 0

(* (a ∩ b) ⊆ c without materializing the intersection; the fused form of
   the Lemma 3.4 test that dominates the lookahead leaf loops. *)
let inter_subset a b c =
  check_same a b;
  check_same a c;
  let n = Array.length a.words in
  let rec go i =
    i >= n
    || (a.words.(i) land b.words.(i) land lnot c.words.(i) = 0 && go (i + 1))
  in
  go 0

let disjoint a b =
  check_same a b;
  let n = Array.length a.words in
  let rec go i = i >= n || (a.words.(i) land b.words.(i) = 0 && go (i + 1)) in
  go 0

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount_word w =
  let rec go acc w = if w = 0 then acc else go (acc + 1) (w land (w - 1)) in
  go 0 w

let cardinal t = Array.fold_left (fun acc w -> acc + popcount_word w) 0 t.words

let fold f t acc =
  let acc = ref acc in
  for i = 0 to t.width - 1 do
    if mem t i then acc := f i !acc
  done;
  !acc

let iter f t = fold (fun i () -> f i) t ()
let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list width l = List.fold_left add (empty width) l

(* Single-allocation construction: [build w f] gives [f] a setter that
   marks bits in a fresh word array.  The hot T-signature scan uses this
   to avoid one array copy per matching attribute pair. *)
let build width f =
  let words = Array.make (max 1 (nwords width)) 0 in
  let set i =
    if i < 0 || i >= width then
      invalid_arg (Printf.sprintf "Bits.build: index %d out of width %d" i width);
    let j = i / bits_per_word in
    words.(j) <- words.(j) lor (1 lsl (i mod bits_per_word))
  in
  f set;
  { width; words }

let for_all p t = fold (fun i acc -> acc && p i) t true
let exists p t = fold (fun i acc -> acc || p i) t false

(* All subsets of [t], in no particular order.  Exponential: used only by
   brute-force test oracles and the minimax strategy on tiny instances. *)
let subsets t =
  let elems = elements t in
  List.fold_left
    (fun acc i -> List.concat_map (fun s -> [ s; add s i ]) acc)
    [ empty t.width ] elems

let pp ppf t =
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any ",") int) (elements t)

let to_string t = Fmt.str "%a" pp t
