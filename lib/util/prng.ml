(* Splittable deterministic PRNG (splitmix64).

   Every randomized component of the reproduction — the RND strategy, the
   synthetic and TPC-H generators, the random 3SAT generator — takes an
   explicit generator so that experiments are reproducible run to run, and so
   that averaging over N runs uses N independent, re-derivable streams. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

(* Non-negative int in [0, 2^62). *)
let next_int t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max_int62 = (1 lsl 62) - 1 in
  let limit = max_int62 - (max_int62 mod bound) in
  let rec go () =
    let v = next_int t in
    if v < limit then v mod bound else go ()
  in
  go ()

let float t bound =
  let v = next_int t in
  bound *. (float_of_int v /. float_of_int ((1 lsl 62) - 1))

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* Derive an independent stream; forking then drawing from both the parent
   and the child yields decorrelated sequences. *)
let split t =
  let seed = next_int64 t in
  { state = mix seed }

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Prng.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Prng.pick_list: empty list"
  | l ->
      (* Total: the index is drawn below the length just computed. *)
      (List.nth l (int t (List.length l)) [@lint.allow "R2"])

let shuffle t arr =
  let a = Array.copy arr in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  a

(* [sample t k arr] draws [k] distinct elements (reservoir sampling). *)
let sample t k arr =
  let n = Array.length arr in
  if k >= n then Array.copy arr
  else begin
    let res = Array.sub arr 0 k in
    for i = k to n - 1 do
      let j = int t (i + 1) in
      if j < k then res.(j) <- arr.(i)
    done;
    res
  end
