(* Summary statistics for experiment results.

   The paper's synthetic results (Figure 7, Table 1) are averages over 100
   runs; this module provides the aggregation used when reproducing them. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let mean xs =
  match Array.length xs with
  | 0 -> nan
  | n -> Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let percentile xs p =
  (* NaN and out-of-range ranks previously indexed outside the sorted
     array (p < 0 gave lo = -1, p > 100 gave hi = n); both are caller
     bugs, so reject them instead of clamping silently. *)
  if Float.is_nan p || p < 0. || p > 100. then
    invalid_arg (Printf.sprintf "Stats.percentile: p = %g not in [0,100]" p);
  match Array.length xs with
  | 0 -> nan
  | n ->
      let sorted = Array.copy xs in
      Array.sort Float.compare sorted;
      if n = 1 then sorted.(0)
      else begin
        let rank = p /. 100. *. float_of_int (n - 1) in
        let lo = int_of_float (floor rank) in
        let hi = int_of_float (ceil rank) in
        let frac = rank -. float_of_int lo in
        (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
      end

let quantile xs q =
  if Float.is_nan q || q < 0. || q > 1. then
    invalid_arg (Printf.sprintf "Stats.quantile: q = %g not in [0,1]" q);
  percentile xs (q *. 100.)

let median xs = percentile xs 50.

let min_max xs =
  match Array.length xs with
  | 0 -> (nan, nan)
  | _ ->
      Array.fold_left
        (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
        (xs.(0), xs.(0))
        xs

let summarize xs =
  let min, max = min_max xs in
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min;
    max;
    median = median xs;
  }

let of_ints xs = Array.map float_of_int xs

let pp_summary ppf s =
  Fmt.pf ppf "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f" s.n s.mean
    s.stddev s.min s.median s.max
