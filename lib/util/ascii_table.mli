(** Plain-text table rendering for the paper-vs-measured outputs. *)

type align = Left | Right | Center

(** Render with box-drawing ASCII; rows shorter than the header are padded
    with empty cells; [aligns] applies per column (default left). *)
val render : ?aligns:align array -> headers:string list -> string list list -> string

val print : ?aligns:align array -> headers:string list -> string list list -> unit
