(* Plain-text table rendering used by the bench harness to print the paper's
   tables (Figure 6c/6d sub-tables, Figure 7 time tables, Table 1) in a form
   directly comparable with the publication. *)

type align = Left | Right | Center

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
        let l = fill / 2 in
        String.make l ' ' ^ s ^ String.make (fill - l) ' '

let widths headers rows =
  let ncols = List.length headers in
  let w = Array.make ncols 0 in
  let feed row =
    List.iteri
      (fun i cell -> if i < ncols then w.(i) <- max w.(i) (String.length cell))
      row
  in
  feed headers;
  List.iter feed rows;
  w

let hline w =
  "+"
  ^ String.concat "+" (Array.to_list (Array.map (fun n -> String.make (n + 2) '-') w))
  ^ "+"

let render_row ?(aligns = [||]) w row =
  let cells =
    List.mapi
      (fun i cell ->
        let a = if i < Array.length aligns then aligns.(i) else Left in
        " " ^ pad a w.(i) cell ^ " ")
      row
  in
  (* Rows shorter than the header are padded with empty cells. *)
  let ncells = List.length row in
  let missing = Array.length w - ncells in
  let cells =
    if missing > 0 then
      cells @ List.init missing (fun j -> " " ^ pad Left w.(ncells + j) "" ^ " ")
    else cells
  in
  "|" ^ String.concat "|" cells ^ "|"

let render ?(aligns = [||]) ~headers rows =
  let w = widths headers rows in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (hline w);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (render_row ~aligns:[||] w headers);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (hline w);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row ~aligns w row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf (hline w);
  Buffer.contents buf

let print ?aligns ~headers rows = print_string (render ?aligns ~headers rows)
