(* Terminal bar charts.

   Figures 6a/6b and the interaction plots of Figure 7 are grouped bar charts
   (x axis: goal join / goal size; one bar per strategy).  The bench harness
   renders the same shape as horizontal ASCII bars so the reproduction can be
   eyeballed against the paper without a plotting stack. *)

type group = { label : string; values : (string * float) list }

let bar_width = 40

let render_grouped ~title ~value_label groups =
  let buf = Buffer.create 512 in
  Buffer.add_string buf (Printf.sprintf "%s\n" title);
  let vmax =
    List.fold_left
      (fun acc g -> List.fold_left (fun a (_, v) -> Float.max a v) acc g.values)
      0. groups
  in
  let vmax = if vmax <= 0. then 1. else vmax in
  let series_w =
    List.fold_left
      (fun acc g ->
        List.fold_left (fun a (s, _) -> max a (String.length s)) acc g.values)
      0 groups
  in
  List.iter
    (fun g ->
      Buffer.add_string buf (Printf.sprintf "  %s\n" g.label);
      List.iter
        (fun (series, v) ->
          let n = int_of_float (Float.round (v /. vmax *. float_of_int bar_width)) in
          let n = if v > 0. && n = 0 then 1 else n in
          Buffer.add_string buf
            (Printf.sprintf "    %-*s |%s %.3g\n" series_w series
               (String.make n '#') v))
        g.values;
      Buffer.add_char buf '\n')
    groups;
  Buffer.add_string buf
    (Printf.sprintf "  (bar length ∝ %s; full bar = %.3g)\n" value_label vmax);
  Buffer.contents buf

let print_grouped ~title ~value_label groups =
  print_string (render_grouped ~title ~value_label groups)
