(** Splittable deterministic PRNG (splitmix64).

    All randomness in the library flows through values of this type so that
    experiments and tests are reproducible from a single integer seed. *)

type t

(** [create seed] starts a stream determined entirely by [seed]. *)
val create : int -> t

(** Next raw 64-bit output. *)
val next_int64 : t -> int64

(** Uniform non-negative int in [0, 2^62). *)
val next_int : t -> int

(** [int t b] is uniform in [0, b), bias-free. Raises on [b <= 0]. *)
val int : t -> int -> int

(** [float t b] is uniform in [0, b]. *)
val float : t -> float -> float

val bool : t -> bool

(** Derive an independent stream (advances the parent). *)
val split : t -> t

(** Uniform element of a non-empty array. *)
val pick : t -> 'a array -> 'a

(** Uniform element of a non-empty list. *)
val pick_list : t -> 'a list -> 'a

(** Fisher-Yates shuffle of a copy; the input is not mutated. *)
val shuffle : t -> 'a array -> 'a array

(** [sample t k arr] draws [min k |arr|] distinct elements. *)
val sample : t -> int -> 'a array -> 'a array
