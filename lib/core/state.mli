(** Mutable inference state over the signature quotient.

    Holds the sample in the compact form the Lemma 3.3/3.4
    characterizations need — T(S+) and the negative signatures — and
    answers all certain/informative queries of §3.4 in polynomial time
    (Theorem 3.5). *)

(** Raised by [label] when the user labels against a certain label —
    Algorithm 1's error path (lines 6-7). *)
exception Inconsistent of { class_id : int; label : Sample.label }

type t

val create : Universe.t -> t

(** Independent copy (for lookahead simulations). *)
val copy : t -> t

val universe : t -> Universe.t

(** T(S+); Ω while no positive example was given. *)
val tpos : t -> Jqi_util.Bits.t

(** Distinct signatures of the negative examples. *)
val negatives : t -> Jqi_util.Bits.t list

(** Chronological (class, label) interactions. *)
val history : t -> (int * Sample.label) list

val n_interactions : t -> int
val label_of : t -> int -> Sample.label option

(** Lemma 3.3: Cert+ membership for a signature under a hypothetical
    sample. *)
val certain_pos_sig : tpos:Jqi_util.Bits.t -> Jqi_util.Bits.t -> bool

(** Lemma 3.4: Cert− membership. *)
val certain_neg_sig :
  tpos:Jqi_util.Bits.t -> negs:Jqi_util.Bits.t list -> Jqi_util.Bits.t -> bool

val certain_label_sig :
  tpos:Jqi_util.Bits.t -> negs:Jqi_util.Bits.t list -> Jqi_util.Bits.t ->
  Sample.label option

(** The certain label of a class, if any. *)
val certain_label : t -> int -> Sample.label option

(** Informative = not labeled and not certain (§3.4). *)
val informative : t -> int -> bool

val informative_classes : t -> int list
val has_informative : t -> bool
val has_positive : t -> bool

(** Record a user label.  Raises [Inconsistent] when it contradicts a
    certain label. *)
val label : t -> int -> Sample.label -> unit

(** Tuple-weighted count of certain (= uninformative, Lemma 3.2) tuples
    under a hypothetical (T(S+), negatives). *)
val uninf_tuples_with :
  Universe.t -> tpos:Jqi_util.Bits.t -> negs:Jqi_util.Bits.t list -> int

val uninf_tuples : t -> int

(** Hypothetical sample after adding labeled signatures; pure. *)
val extend_virtual :
  t -> (Jqi_util.Bits.t * Sample.label) list ->
  Jqi_util.Bits.t * Jqi_util.Bits.t list

(** Canonical form of a hypothetical sample: (T(S+), sorted antichain of
    ⊆-maximal negative signatures restricted to T(S+)).  Equal keys have
    equal Cert+/Cert− sets, hence equal informative classes and equal
    minimax/lookahead values — the memoization key of both the [Minimax]
    solver and the fast lookahead engine. *)
module Key : sig
  type t = { tpos : Jqi_util.Bits.t; negs : Jqi_util.Bits.t list }

  val canonical : tpos:Jqi_util.Bits.t -> negs:Jqi_util.Bits.t list -> t
  val equal : t -> t -> bool
  val hash : t -> int
end

(** A hypothetical sample extension with its informative classes maintained
    incrementally (monotone certainty: extensions only shrink the set). *)
type view = {
  vtpos : Jqi_util.Bits.t;
  vnegs : Jqi_util.Bits.t list;
  vinf : int list;   (** informative class ids, ascending *)
  vinf_tuples : int; (** count-weighted [vinf] *)
}

(** The view of the current sample. *)
val view : t -> view

(** Extend a view by one labeled signature, re-testing only the classes
    informative in the view: one subset test per class for a negative
    label (T(S+) is unchanged), a full certain test against the shrunk
    T(S+) for a positive one. *)
val view_extend : t -> view -> Jqi_util.Bits.t * Sample.label -> view

(** [Key.canonical] of a view's sample. *)
val view_key : view -> Key.t

(** The current answer, T(S+) (§3.3). *)
val inferred : t -> Jqi_util.Bits.t

(** §3.1 consistency of the accumulated sample. *)
val consistent : t -> bool

val pp : Format.formatter -> t -> unit
