(* The general inference algorithm (Algorithm 1).

   Repeatedly asks the strategy for an informative tuple, queries the
   oracle, and updates the sample, until the halt condition Γ holds (no
   informative tuple left) or an optional interaction budget is exhausted.
   The returned predicate is T(S+), the most specific predicate consistent
   with the user's labels (§3.3). *)

module Bits = Jqi_util.Bits
module Timer = Jqi_util.Timer
module Obs = Jqi_obs.Obs

(* Oracle interactions — the paper's primary cost measure (Figs. 5-7). *)
let c_questions = Obs.Counter.make "oracle.questions"
let c_positive = Obs.Counter.make "oracle.answers_positive"
let c_negative = Obs.Counter.make "oracle.answers_negative"
let c_runs = Obs.Counter.make "inference.runs"

(* Debug tracing: `Logs.Src.set_level Inference.log_src (Some Debug)` turns
   on one line per question. *)
let log_src = Logs.Src.create "jqi.inference" ~doc:"interactive inference loop"

module Log = (val Logs.src_log log_src)

type result = {
  strategy : string;
  predicate : Bits.t;       (* the inferred T(S+) *)
  steps : (int * Sample.label) list;  (* chronological (class, label) *)
  n_interactions : int;
  elapsed : float;          (* wall-clock seconds of the whole loop *)
  halted : bool;            (* Γ reached (vs. budget exhausted) *)
  state : State.t;
}

(* Algorithm 1 as a driver over the sans-IO [Engine]: the engine selects
   questions, this loop supplies the oracle's labels.  The question
   sequence is identical to the historical callback loop — the engine
   performs the same budget check before each strategy invocation — which
   the differential suite in test/test_engine.ml pins. *)
let run ?max_interactions ?state universe strategy oracle =
  let t0 = Timer.now () in
  Obs.Counter.incr c_runs;
  let outcome =
    Obs.span ~attrs:[ ("strategy", Strategy.name strategy) ] "inference.run"
      (fun () ->
        let rec loop engine =
          match Engine.pending engine with
          | None -> engine
          | Some q ->
              let cls = q.Engine.class_id in
              let lbl =
                Obs.span "oracle.label" (fun () ->
                    Oracle.label oracle universe cls)
              in
              Obs.Counter.incr c_questions;
              Obs.Counter.incr
                (match lbl with
                | Sample.Positive -> c_positive
                | Sample.Negative -> c_negative);
              Log.debug (fun m ->
                  m "%s asks class %d %a -> %a" (Strategy.name strategy) cls
                    (Omega.pp_pred (Universe.omega universe))
                    q.Engine.signature Sample.pp_label lbl);
              loop (Engine.answer engine lbl)
        in
        Engine.result
          (loop (Engine.create ?max_interactions ?state universe strategy)))
  in
  let elapsed = Timer.now () -. t0 in
  {
    strategy = Strategy.name strategy;
    predicate = outcome.Engine.predicate;
    steps = outcome.Engine.steps;
    n_interactions = outcome.Engine.n_interactions;
    elapsed;
    halted = outcome.Engine.halted;
    state = outcome.Engine.state;
  }

(* Success criterion of §3.3: the inferred predicate must be equivalent to
   the goal over the instance (indistinguishable by the user). *)
let verified universe ~goal result = Universe.equivalent universe goal result.predicate

let pp omega ppf r =
  Fmt.pf ppf "%s: %d interactions in %a, inferred %a%s" r.strategy
    r.n_interactions Timer.pp_seconds r.elapsed (Omega.pp_pred omega) r.predicate
    (if r.halted then "" else " (budget exhausted)")

(* Human-readable replay of the session: one line per question, with the
   representative tuple pair when the universe has backing relations, the
   signature otherwise. *)
let pp_transcript universe ppf r =
  let omega = Universe.omega universe in
  Fmt.pf ppf "@[<v>";
  List.iteri
    (fun k (cls, lbl) ->
      let mark = match lbl with Sample.Positive -> "+" | Sample.Negative -> "-" in
      match Universe.representative universe cls with
      | Some (tr, tp) ->
          Fmt.pf ppf "%2d. %s %a ⊕ %a@," (k + 1) mark
            Jqi_relational.Tuple.pp tr Jqi_relational.Tuple.pp tp
      | None ->
          Fmt.pf ppf "%2d. %s signature %a@," (k + 1) mark (Omega.pp_pred omega)
            (Universe.signature universe cls))
    r.steps;
  Fmt.pf ppf " => %a after %d questions@]" (Omega.pp_pred omega) r.predicate
    r.n_interactions
