(* The lattice of join predicates (§4.2).

   The full lattice is (PP(Ω), ⊆); the strategies only ever need the nodes
   that have corresponding tuples — the distinct T-signatures of the
   universe — plus the set of non-nullable predicates (subsets of some
   signature).  This module provides both views and a Graphviz export that
   reproduces Figure 4. *)

module Bits = Jqi_util.Bits

(* Signatures with no strict superset among [sigs]: the ⊆-maximal nodes the
   TD strategy visits first. *)
let maximal_signatures sigs =
  List.filter
    (fun s ->
      not
        (List.exists
           (fun s' -> (not (Bits.equal s s')) && Bits.subset s s')
           sigs))
    sigs

let minimal_signatures sigs =
  List.filter
    (fun s ->
      not
        (List.exists
           (fun s' -> (not (Bits.equal s s')) && Bits.subset s' s)
           sigs))
    sigs

(* A predicate is non-nullable iff it selects at least one tuple, i.e. iff
   it is a subset of some signature. *)
let non_nullable sigs theta = List.exists (fun s -> Bits.subset theta s) sigs

(* All non-nullable predicates: ∪_{s ∈ sigs} PP(s).  Exponential in the
   largest signature; usable for the small instances where one wants to see
   the whole lattice (Figure 4) or count its nodes. *)
let non_nullable_predicates sigs =
  let module H = Hashtbl.Make (struct
    type t = Bits.t

    let equal = Bits.equal
    let hash = Bits.hash
  end) in
  let seen = H.create 256 in
  List.iter
    (fun s -> List.iter (fun sub -> H.replace seen sub ()) (Bits.subsets s))
    sigs;
  H.fold (fun k () acc -> k :: acc) seen []

let non_nullable_count sigs = List.length (non_nullable_predicates sigs)

(* Hasse diagram edges between the given nodes: a covers b iff b ⊂ a with
   nothing in between. *)
let covers nodes =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b ->
          if
            (not (Bits.equal a b))
            && Bits.subset b a
            && not
                 (List.exists
                    (fun c ->
                      (not (Bits.equal c a)) && (not (Bits.equal c b))
                      && Bits.subset b c && Bits.subset c a)
                    nodes)
          then Some (b, a)
          else None)
        nodes)
    nodes

(* Graphviz rendering of the non-nullable lattice plus Ω, with the nodes
   that have corresponding tuples boxed — the exact shape of Figure 4. *)
let to_dot omega universe =
  let sigs = Universe.signatures universe in
  let nodes = non_nullable_predicates sigs in
  let omega_node = Omega.full omega in
  let nodes =
    if List.exists (Bits.equal omega_node) nodes then nodes
    else omega_node :: nodes
  in
  let has_tuple theta = List.exists (Bits.equal theta) sigs in
  let name theta = Omega.pred_to_string omega theta in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph lattice {\n  rankdir=BT;\n";
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [shape=%s];\n" (name n)
           (if has_tuple n then "box" else "ellipse")))
    nodes;
  List.iter
    (fun (lo, hi) ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\";\n" (name lo) (name hi)))
    (covers nodes);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
