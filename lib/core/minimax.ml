(* The optimal strategy (§4.1) as a memoized minimax over the quotient.

   value(S) is the number of interactions an optimal questioner needs in
   the worst case over user answers:

     value(S) = 0                            if no informative tuple
     value(S) = min_t max_α 1 + value(S+tα)  over informative t

   States are canonicalized to (T(S+), antichain of maximal negative
   signatures restricted to T(S+)): two samples with equal canonical form
   have the same certain sets, hence the same game value.  The state space
   is exponential — the paper leaves the exact complexity open and notes a
   straightforward implementation is in PSPACE — so a node budget guards
   against blowup; exceeding it raises [Too_large]. *)

module Bits = Jqi_util.Bits
module Obs = Jqi_obs.Obs

let c_memo_hit = Obs.Counter.make "minimax.memo_hit"
let c_memo_miss = Obs.Counter.make "minimax.memo_miss"

exception Too_large

(* The canonicalization lives in [State.Key] — the fast lookahead engine
   memoizes on the same quotient. *)
type key = State.Key.t = { tpos : Bits.t; negs : Bits.t list }

let canonical = State.Key.canonical

module Tbl = Hashtbl.Make (State.Key)

type solver = {
  universe : Universe.t;
  memo : (int * int option) Tbl.t;  (* value, best class *)
  max_nodes : int;
  mutable nodes : int;
}

let create ?(max_nodes = 2_000_000) universe =
  { universe; memo = Tbl.create 4096; max_nodes; nodes = 0 }

let informatives u ~tpos ~negs =
  let out = ref [] in
  for i = Universe.n_classes u - 1 downto 0 do
    if State.certain_label_sig ~tpos ~negs (Universe.signature u i) = None then
      out := i :: !out
  done;
  !out

let rec value solver ~tpos ~negs =
  let key = canonical ~tpos ~negs in
  match Tbl.find_opt solver.memo key with
  | Some v ->
      Obs.Counter.incr c_memo_hit;
      v
  | None ->
      Obs.Counter.incr c_memo_miss;
      solver.nodes <- solver.nodes + 1;
      if solver.nodes > solver.max_nodes then raise Too_large;
      let u = solver.universe in
      let result =
        match informatives u ~tpos ~negs:key.negs with
        | [] -> (0, None)
        | is ->
            List.fold_left
              (fun (best_v, best_i) i ->
                let s = Universe.signature u i in
                let v_pos, _ = value solver ~tpos:(Bits.inter tpos s) ~negs:key.negs in
                let v_neg, _ = value solver ~tpos ~negs:(s :: key.negs) in
                let v = 1 + max v_pos v_neg in
                if v < best_v then (v, Some i) else (best_v, best_i))
              (max_int, None) is
      in
      Tbl.replace solver.memo key result;
      result

(* Worst-case optimal number of interactions from the empty sample. *)
let optimal_interactions ?max_nodes universe =
  let solver = create ?max_nodes universe in
  fst (value solver ~tpos:(Omega.full (Universe.omega universe)) ~negs:[])

(* The optimal strategy: replay minimax from the current state each time.
   The memo table is shared across the whole inference run. *)
let strategy ?max_nodes universe =
  let solver = create ?max_nodes universe in
  Strategy.make "OPT" (fun state ->
      snd (value solver ~tpos:(State.tpos state) ~negs:(State.negatives state)))
