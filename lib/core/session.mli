(** Session persistence: save a labeling session as JSON, resume it later
    against the same relations.  Examples are stored as row-index vectors
    (one index per relation), so sessions are independent of class
    numbering; loading replays labels through [State.label] and rejects
    files inconsistent with the instance.

    Schema v2 additionally persists the strategy name and the in-flight
    question; v3 generalizes examples and pending to k-ary row vectors.
    Binary sessions keep writing v2 documents, so earlier readers and
    checked-in fixtures stay valid; v1..v3 files all load. *)

exception Corrupt of string

(** The newest version this build writes (3 — k-ary sessions only; binary
    sessions write 2).  Versions 1..[version] load. *)
val version : int

(** A thawed session: the replayed sample plus the v2+ metadata (absent
    for v1 files). *)
type loaded = {
  state : State.t;
  strategy : string option;  (** strategy name, e.g. ["TD"] *)
  pending : int array option;  (** in-flight question as a row vector *)
}

(** Requires a universe built from relations; raises [Corrupt] otherwise.
    [strategy] and [pending] become the v2+ metadata fields. *)
val to_json :
  ?strategy:string -> ?pending:int array -> Universe.t -> State.t ->
  Jqi_util.Json.t

(** Raises [Corrupt] on version mismatch, malformed structure, dangling
    row references, or labels inconsistent with the instance. *)
val of_json_full : Universe.t -> Jqi_util.Json.t -> loaded

(** [of_json u j] is [(of_json_full u j).state]. *)
val of_json : Universe.t -> Jqi_util.Json.t -> State.t

val save :
  ?strategy:string -> ?pending:int array -> string -> Universe.t ->
  State.t -> unit

val load : string -> Universe.t -> State.t
val load_full : string -> Universe.t -> loaded

(** Map a thawed [pending] row vector back to its class, provided the
    class is still informative under [state] — the guard a resuming
    engine uses before re-presenting the frozen question. *)
val pending_class : Universe.t -> State.t -> int array option -> int option
