(** Session persistence: save a labeling session as JSON, resume it later
    against the same relations.  Examples are stored as row-index pairs,
    so sessions are independent of class numbering; loading replays labels
    through [State.label] and rejects files inconsistent with the
    instance.

    Schema v2 additionally persists the strategy name and the in-flight
    question, so a whole [Engine] session freezes and thaws; v1 files
    (examples only) still load. *)

exception Corrupt of string

(** The version this build writes (2).  Versions 1..[version] load. *)
val version : int

(** A thawed session: the replayed sample plus the v2 metadata (absent
    for v1 files). *)
type loaded = {
  state : State.t;
  strategy : string option;  (** strategy name, e.g. ["TD"] *)
  pending : (int * int) option;  (** in-flight question as a row pair *)
}

(** Requires a universe built from relations; raises [Corrupt] otherwise.
    [strategy] and [pending] become the v2 metadata fields. *)
val to_json :
  ?strategy:string -> ?pending:int * int -> Universe.t -> State.t ->
  Jqi_util.Json.t

(** Raises [Corrupt] on version mismatch, malformed structure, dangling
    row references, or labels inconsistent with the instance. *)
val of_json_full : Universe.t -> Jqi_util.Json.t -> loaded

(** [of_json u j] is [(of_json_full u j).state]. *)
val of_json : Universe.t -> Jqi_util.Json.t -> State.t

val save :
  ?strategy:string -> ?pending:int * int -> string -> Universe.t ->
  State.t -> unit

val load : string -> Universe.t -> State.t
val load_full : string -> Universe.t -> loaded

(** Map a thawed [pending] row pair back to its class, provided the class
    is still informative under [state] — the guard a resuming engine uses
    before re-presenting the frozen question. *)
val pending_class : Universe.t -> State.t -> (int * int) option -> int option
