(** Session persistence: save a labeling session as JSON, resume it later
    against the same relations.  Examples are stored as row-index vectors
    (one index per relation), so sessions are independent of class
    numbering; loading replays labels through [State.label] and rejects
    files inconsistent with the instance.

    Schema v2 additionally persists the strategy name and the in-flight
    question; v3 generalizes examples and pending to k-ary row vectors.
    Binary sessions keep writing v2 documents, so earlier readers and
    checked-in fixtures stay valid; v1..v3 files all load. *)

exception Corrupt of string

(** A structurally valid document referring to a signature the universe no
    longer carries — the typed outcome of loading a session across a data
    delta that retired a labeled class or the pending question's class
    ([label] is [None] for the pending question).  Distinct from
    {!Corrupt}: the file is fine, the data moved. *)
exception
  Stale_label of {
    signature : Jqi_util.Bits.t;
    label : Sample.label option;
  }

(** The newest version this build writes (3 — k-ary sessions only; binary
    sessions write 2).  Versions 1..[version] load. *)
val version : int

(** A thawed session: the replayed sample plus the v2+ metadata (absent
    for v1 files). *)
type loaded = {
  state : State.t;
  strategy : string option;  (** strategy name, e.g. ["TD"] *)
  pending : int array option;
      (** in-flight question as a row vector; [None] when absent — or when
          the document carries a signature and the rows dangle (churn) *)
  pending_sig : Jqi_util.Bits.t option;
      (** the in-flight question's signature, when the document carries
          the additive ["sig"] field (written since the churn pipeline);
          authoritative over [pending] for resuming *)
}

(** Requires a universe built from relations; raises [Corrupt] otherwise.
    [strategy] and [pending] become the v2+ metadata fields. *)
val to_json :
  ?strategy:string -> ?pending:int array -> Universe.t -> State.t ->
  Jqi_util.Json.t

(** Raises [Corrupt] on version mismatch, malformed structure, dangling
    row references, or labels inconsistent with the instance. *)
val of_json_full : Universe.t -> Jqi_util.Json.t -> loaded

(** [of_json u j] is [(of_json_full u j).state]. *)
val of_json : Universe.t -> Jqi_util.Json.t -> State.t

val save :
  ?strategy:string -> ?pending:int array -> string -> Universe.t ->
  State.t -> unit

val load : string -> Universe.t -> State.t
val load_full : string -> Universe.t -> loaded

(** Map a thawed [pending] question back to its class, provided the class
    is still informative under [state] — the guard a resuming engine uses
    before re-presenting the frozen question.  When [signature] (the
    document's [pending_sig]) is given it is authoritative: the row
    vector is ignored, and a signature naming no class raises
    {!Stale_label} with [label = None] — the question's tuples were
    deleted.  Without it, dangling rows degrade to [None] as before. *)
val pending_class :
  ?signature:Jqi_util.Bits.t -> Universe.t -> State.t -> int array option ->
  int option
