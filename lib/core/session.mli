(** Session persistence: save a labeling session as JSON, resume it later
    against the same relations.  Examples are stored as row-index pairs,
    so sessions are independent of class numbering; loading replays labels
    through [State.label] and rejects files inconsistent with the
    instance. *)

exception Corrupt of string

val version : int

(** Requires a universe built from relations.  Raises [Corrupt]
    otherwise. *)
val to_json : Universe.t -> State.t -> Jqi_util.Json.t

(** Raises [Corrupt] on version mismatch, malformed structure, dangling
    row references, or labels inconsistent with the instance. *)
val of_json : Universe.t -> Jqi_util.Json.t -> State.t

val save : string -> Universe.t -> State.t -> unit
val load : string -> Universe.t -> State.t
