(* The quotient of the Cartesian product D = R_0 × … × R_{k-1} by the
   T-signature (k = 2 in the paper; k-ary per ROADMAP item 2).

   Whether a tuple is informative, certain, or selected by any predicate
   depends only on T(t) (Lemmas 3.3/3.4), so two tuples with equal
   signatures are interchangeable for inference.  The engine therefore
   groups D into equivalence classes, each carrying its signature, its
   multiplicity in D and one representative vector of row indexes.  This
   is also the paper's own observation in §5.3 ("if two tuples are
   selected by the same most specific join predicate, then they are
   basically equivalent w.r.t. the inference process") and is what makes
   TPC-H-sized products tractable. *)

module Bits = Jqi_util.Bits
module Obs = Jqi_obs.Obs
module Dict = Jqi_relational.Dict
module Relation = Jqi_relational.Relation
module Tuple = Jqi_relational.Tuple
module Vec = Jqi_util.Vec

type cls = { signature : Bits.t; count : int; rep : int array }

(* Carried forward along a chain of [apply_delta] calls so each batch
   pays only for the changed rows: the shared dictionary (append-only —
   codes are never recycled, mirroring [Dict]'s contract) and one code
   vector per row per relation.  Lazily built on the first delta; rows
   of unchanged relations share their arrays across universes. *)
type delta_cache = { dict : Dict.t; codes : int array array array }

type t = {
  omega : Omega.t;
  classes : cls array;
  total : int;  (* |D|; the sum of class multiplicities *)
  relations : Relation.t array option;
  (* Memoized on first use; single-writer like the relations it encodes
     (the server mutates universes only under its catalog shard lock). *)
  mutable cache : delta_cache option;
}

exception Kary_too_large of { work : int; limit : int }

module H = Hashtbl.Make (struct
  type t = Bits.t

  let equal = Bits.equal
  let hash = Bits.hash
end)

(* Lexicographically smaller of two same-length representative vectors —
   the deterministic merge rule every builder shares. *)
let rep_min a b =
  let rec go i =
    if i >= Array.length a then a
    else if a.(i) < b.(i) then a
    else if a.(i) > b.(i) then b
    else go (i + 1)
  in
  go 0

let of_ksignature_list ?relations omega sigs =
  let k = Omega.n_relations omega in
  (match relations with
  | Some rels ->
      if not (Int.equal (Array.length rels) k) then
        invalid_arg "Universe: need one relation per Omega relation"
  | None -> ());
  let acc = H.create 64 in
  List.iter
    (fun (signature, count, rep) ->
      if count <= 0 then invalid_arg "Universe: class multiplicity must be positive";
      if not (Int.equal (Array.length rep) k) then
        invalid_arg "Universe: representative must have one row index per relation";
      match H.find_opt acc signature with
      | Some (c, r) -> H.replace acc signature (c + count, r)
      | None -> H.replace acc signature (count, rep))
    sigs;
  let classes =
    H.fold (fun signature (count, rep) l -> { signature; count; rep } :: l) acc []
    |> List.sort (fun a b -> Bits.compare a.signature b.signature)
    |> Array.of_list
  in
  let total = Array.fold_left (fun s c -> s + c.count) 0 classes in
  { omega; classes; total; relations; cache = None }

let of_signature_list ?relations omega sigs =
  of_ksignature_list
    ?relations:(Option.map (fun (r, p) -> [| r; p |]) relations)
    omega
    (List.map (fun (s, c, (i, j)) -> (s, c, [| i; j |])) sigs)

(* The reference per-pair scan: every tuple of R × P gets its own
   [Tsig.of_tuples] call and bitset.  Kept as the executable definition
   and as the differential oracle for the quotient builders below; the
   default [build] is [build_quotient]. *)
let build_naive r p =
  Obs.span "universe.build_naive" @@ fun () ->
  let omega = Omega.of_schemas (Relation.schema r) (Relation.schema p) in
  let acc = H.create 256 in
  let nr = Relation.cardinality r and np = Relation.cardinality p in
  for i = 0 to nr - 1 do
    let tr = Relation.row r i in
    for j = 0 to np - 1 do
      let s = Tsig.of_tuples omega tr (Relation.row p j) in
      match H.find_opt acc s with
      | Some (c, rep) -> H.replace acc s (c + 1, rep)
      | None -> H.replace acc s (1, [| i; j |])
    done
  done;
  let sigs = H.fold (fun s (c, rep) l -> (s, c, rep) :: l) acc [] in
  (match sigs with
  | [] -> invalid_arg "Universe.build: empty Cartesian product"
  | _ :: _ -> ());
  of_ksignature_list ~relations:[| r; p |] omega sigs

(* ---------------- profile-quotient construction ------------------- *)

(* The quotient-first constructor exploits two levels of redundancy the
   per-pair scan ignores:

   1. Value dictionary: every cell of R and P is interned into one shared
      dense code space ([Jqi_relational.Dict]) replicating [Value.eq], so
      the signature inner loop compares integers on flat arrays instead of
      tag-dispatching on boxed [Value.t].

   2. Row profiles: two rows with the same code vector produce the same
      signature against *every* partner row, so it suffices to compute
      signatures for distinct-profile pairs and add multiplicity
      |profile_R| × |profile_P| per pair.  The scan shrinks from
      |R|·|P| to d_R·d_P where d is the distinct-profile count —
      orders of magnitude on duplicate-heavy (TPC-H-shaped) data.

   The result is identical to [build_naive]: same classes and counts by
   construction, and the same representatives because the full-scan rep of
   a class is its lexicographically smallest pair (i, j), which for a
   profile pair (a, b) — whose members are all combinations of a's rows
   with b's rows — is (first row of a, first row of b), min-merged across
   the profile pairs sharing a signature. *)

module Profile = struct
  type t = int array

  let equal a b =
    Int.equal (Array.length a) (Array.length b)
    &&
    let rec go i = i >= Array.length a || (Int.equal a.(i) b.(i) && go (i + 1)) in
    go 0

  let hash a = Array.fold_left (fun acc c -> (acc * 31) + c + 2) 17 a
end

module PH = Hashtbl.Make (Profile)

type profile = { codes : int array; mutable multiplicity : int; first_row : int }

(* Group a relation's rows by code vector, in first-seen (i.e.
   ascending first-row) order; [first_row] is the smallest row index of
   the group because rows are scanned in ascending order.

   Streaming: one [Dict.iter_encoded] pass over the relation, so a
   paged relation is grouped directly off its heap-file scan under the
   buffer pool's page budget — memory is bounded by the number of
   *distinct* profiles, never by the row count.  The reused code
   buffer is copied only on first sight of a profile. *)
let stream_profiles dict rel =
  let tbl = PH.create (max 16 (min 65536 (Relation.cardinality rel))) in
  let order = Vec.create () in
  Dict.iter_encoded dict rel (fun i codes ->
      match PH.find_opt tbl codes with
      | Some prof -> prof.multiplicity <- prof.multiplicity + 1
      | None ->
          let codes = Array.copy codes in
          let prof = { codes; multiplicity = 1; first_row = i } in
          PH.add tbl codes prof;
          Vec.push order prof);
  Vec.to_array order

let c_dict_values = Obs.Counter.make "universe.dict_values"
let c_profiles_r = Obs.Counter.make "universe.profiles_r"
let c_profiles_p = Obs.Counter.make "universe.profiles_p"
let c_profile_pairs = Obs.Counter.make "universe.profile_pairs"
let c_pairs_skipped = Obs.Counter.make "universe.pairs_skipped"

(* Shared front half of the quotient builders: intern both relations into
   one dictionary and group their rows into profiles. *)
let quotient_profiles r p =
  let nr = Relation.cardinality r and np = Relation.cardinality p in
  if nr = 0 || np = 0 then invalid_arg "Universe.build: empty Cartesian product";
  let dict = Dict.create ~size:(nr + np) () in
  let rprofs = stream_profiles dict r in
  let pprofs = stream_profiles dict p in
  Obs.Counter.add c_dict_values (Dict.size dict);
  Obs.Counter.add c_profiles_r (Array.length rprofs);
  Obs.Counter.add c_profiles_p (Array.length pprofs);
  let n_pairs = Array.length rprofs * Array.length pprofs in
  Obs.Counter.add c_profile_pairs n_pairs;
  Obs.Counter.add c_pairs_skipped ((nr * np) - n_pairs);
  (rprofs, pprofs)

let merge_into acc s count rep =
  match H.find_opt acc s with
  | Some (c, rep') -> H.replace acc s (c + count, rep_min rep rep')
  | None -> H.add acc s (count, rep)

let build_quotient r p =
  Obs.span "universe.build_quotient" @@ fun () ->
  let omega = Omega.of_schemas (Relation.schema r) (Relation.schema p) in
  let rprofs, pprofs = quotient_profiles r p in
  let acc = H.create 256 in
  Array.iter
    (fun a ->
      Array.iter
        (fun b ->
          merge_into acc
            (Tsig.of_codes omega a.codes b.codes)
            (a.multiplicity * b.multiplicity)
            [| a.first_row; b.first_row |])
        pprofs)
    rprofs;
  let sigs = H.fold (fun s (c, rep) l -> (s, c, rep) :: l) acc [] in
  of_ksignature_list ~relations:[| r; p |] omega sigs

(* The default constructor is the quotient; [build_naive] remains the
   differential oracle. *)
let build r p = build_quotient r p

(* Multicore quotient: partition the distinct R-*profiles* (not the raw
   rows) across domains, each scanning every P-profile; merge per-domain
   signature tables with the same min-rep rule as [build_quotient], so the
   result is deterministic regardless of scheduling and identical to the
   sequential builders.

   Partitioning profiles rather than rows also removes the per-pair-bitset
   minor-GC contention that used to make the row-parallel scan a net loss
   on few-core machines: only d_R·d_P bitsets are allocated in total, the
   same number the sequential quotient allocates.  The remaining trade-off
   is the fixed spawn cost — for small d_R·d_P the sequential
   [build_quotient] still wins; measure with `bench/main.exe universe`. *)
let build_parallel ?domains r p =
  Obs.span "universe.build_parallel" @@ fun () ->
  let omega = Omega.of_schemas (Relation.schema r) (Relation.schema p) in
  let rprofs, pprofs = quotient_profiles r p in
  let dr = Array.length rprofs in
  let domains =
    match domains with
    | Some d -> max 1 (min d dr)
    | None -> max 1 (min (Domain.recommended_domain_count ()) dr)
  in
  let chunk = (dr + domains - 1) / domains in
  let scan lo hi () =
    let acc = H.create 256 in
    for ai = lo to hi - 1 do
      let a = rprofs.(ai) in
      Array.iter
        (fun b ->
          merge_into acc
            (Tsig.of_codes omega a.codes b.codes)
            (a.multiplicity * b.multiplicity)
            [| a.first_row; b.first_row |])
        pprofs
    done;
    acc
  in
  let handles =
    List.init domains (fun d ->
        let lo = d * chunk in
        let hi = min dr ((d + 1) * chunk) in
        Domain.spawn (scan lo hi))
  in
  let merged = H.create 256 in
  List.iter
    (fun handle ->
      let table = Domain.join handle in
      H.iter (fun s (c, rep) -> merge_into merged s c rep) table)
    handles;
  let sigs = H.fold (fun s (c, rep) l -> (s, c, rep) :: l) merged [] in
  of_ksignature_list ~relations:[| r; p |] omega sigs
(* R11 waiver: this is the one sanctioned fork/join in the core — spawned
   domains share nothing mutable, results merge deterministically, and
   callers opt in explicitly ([build] stays sequential). *)
[@@lint.allow "R11"]

(* Approximate universe for products too large to scan (the paper's §1:
   "the database instances may be too big to be skimmed"): draw [pairs]
   uniform random tuple pairs instead of enumerating R × P.  Signatures
   that never come up in the sample are invisible, so the inference result
   is only guaranteed instance-equivalent on the sampled sub-product; rare
   signatures (small join ratio contributions) are the ones at risk.

   The representative of a class is the lexicographically smallest sampled
   member ([rep_min], not keep-first-drawn): reps then depend only on the
   sampled *set* of pairs, never on the order the PRNG produced them —
   the same determinism contract [build]/[build_parallel] satisfy, and a
   sample covering the whole product reproduces their universe exactly. *)
let build_sampled prng ~pairs r p =
  if pairs <= 0 then invalid_arg "Universe.build_sampled: need a positive sample size";
  let nr = Relation.cardinality r and np = Relation.cardinality p in
  if nr = 0 || np = 0 then invalid_arg "Universe.build_sampled: empty relation";
  let omega = Omega.of_schemas (Relation.schema r) (Relation.schema p) in
  let acc = H.create 256 in
  for _ = 1 to pairs do
    let i = Jqi_util.Prng.int prng nr and j = Jqi_util.Prng.int prng np in
    let s = Tsig.of_tuples omega (Relation.row r i) (Relation.row p j) in
    merge_into acc s 1 [| i; j |]
  done;
  let sigs = H.fold (fun s (c, rep) l -> (s, c, rep) :: l) acc [] in
  of_ksignature_list ~relations:[| r; p |] omega sigs

(* ---------------- k-ary construction (ROADMAP item 2) -------------- *)

let c_kary_profiles = Obs.Counter.make "universe.kary_profiles"
let c_kary_work = Obs.Counter.make "universe.kary_work"
let c_kary_collapsed = Obs.Counter.make "universe.kary_collapsed"

let kary_omega rels =
  Omega.of_schemas_kary
    (Array.to_list
       (Array.map (fun r -> (Relation.name r, Relation.schema r)) rels))

let check_kary ~entry rels =
  let k = Array.length rels in
  if k < 2 then invalid_arg (entry ^ ": need at least two relations");
  Array.iter
    (fun r ->
      if Relation.cardinality r = 0 then
        invalid_arg (entry ^ ": empty Cartesian product"))
    rels

(* The reference k-way scan: one [Tsig.of_ktuples] per raw tuple of
   ∏ R_i — the executable definition of the k-ary universe and the
   differential oracle for [build_kary].  Exponential in k; tests and
   benches only. *)
let build_kary_naive rels =
  Obs.span "universe.build_kary_naive" @@ fun () ->
  let rels = Array.of_list rels in
  check_kary ~entry:"Universe.build_kary" rels;
  let k = Array.length rels in
  let omega = kary_omega rels in
  let acc = H.create 256 in
  let tuples = Array.make k (Relation.row rels.(0) 0) in
  let rep = Array.make k 0 in
  let rec scan d =
    if Int.equal d k then begin
      let s = Tsig.of_ktuples omega tuples in
      match H.find_opt acc s with
      | Some (c, r) -> H.replace acc s (c + 1, r)
      | None -> H.replace acc s (1, Array.copy rep)
    end
    else
      for i = 0 to Relation.cardinality rels.(d) - 1 do
        tuples.(d) <- Relation.row rels.(d) i;
        rep.(d) <- i;
        scan (d + 1)
      done
  in
  scan 0;
  of_ksignature_list ~relations:rels omega
    (H.fold (fun s (c, r) l -> (s, c, r) :: l) acc [])

(* K-ary quotient: profile grouping per relation (as in the binary
   quotient), then a trie walk over distinct-profile k-tuples in the
   leapfrog spirit — relations are levels, profiles are keys, and whole
   subtrees collapse instead of being enumerated.  Two collapses apply:

   1. Profile quotient: ∏|R_i| raw tuples shrink to at most ∏ d_i
      distinct-profile combinations, each merged with the product of the
      profile multiplicities.

   2. Disconnected-suffix collapse: walking relations left to right, when
      none of the codes of the profiles chosen so far appears in any
      remaining relation, no further cross bits can be produced — the
      walk folds in the precomputed *suffix universe* (classes of
      R_j × … × R_{k-1} alone) in one step per suffix class rather than
      descending.  Suffix universes are built bottom-up by the same walk,
      so the construction is one pass of k stages.

   Pairwise block signatures are cached per (relation pair, profile
   pair), so each is computed once even though the walk revisits it on
   every branch — this is where the "pairwise binary composition" reuse
   lives.

   Identical to [build_kary_naive] by the same argument as the binary
   quotient: same classes and counts by construction, and representatives
   are min-merged lexicographically smallest row vectors.  For k = 2 the
   walk degenerates to the profile-pair scan and the result is
   byte-identical to [build] (asserted in test/test_kary.ml).

   [limit] bounds the number of class merges (the unit of real work); a
   walk exceeding it raises [Kary_too_large] — the typed refusal for
   products whose quotient is still too big. *)
let default_kary_limit = 20_000_000

let build_kary ?(limit = default_kary_limit) rels =
  Obs.span "universe.build_kary" @@ fun () ->
  let rels = Array.of_list rels in
  check_kary ~entry:"Universe.build_kary" rels;
  let k = Array.length rels in
  let omega = kary_omega rels in
  let width = Omega.width omega in
  let total_rows = Array.fold_left (fun s r -> s + Relation.cardinality r) 0 rels in
  let dict = Dict.create ~size:total_rows () in
  let profs = Array.map (fun r -> stream_profiles dict r) rels in
  Array.iter (fun ps -> Obs.Counter.add c_kary_profiles (Array.length ps)) profs;
  (* Which codes appear anywhere in each relation. *)
  let rel_codes =
    Array.map
      (fun ps ->
        let h = Hashtbl.create 64 in
        Array.iter
          (fun p ->
            Array.iter (fun c -> if c >= 0 then Hashtbl.replace h c ()) p.codes)
          ps;
        h)
      profs
  in
  (* Per profile, the bitmask of relations sharing at least one code. *)
  let touch =
    Array.map
      (fun ps ->
        Array.map
          (fun p ->
            let m = ref 0 in
            Array.iter
              (fun c ->
                if c >= 0 then
                  for j = 0 to k - 1 do
                    if Hashtbl.mem rel_codes.(j) c then m := !m lor (1 lsl j)
                  done)
              p.codes;
            !m)
          ps)
      profs
  in
  let suffix_mask =
    Array.init (k + 1) (fun j ->
        let m = ref 0 in
        for i = j to k - 1 do
          m := !m lor (1 lsl i)
        done;
        !m)
  in
  (* Cached pairwise block signatures, keyed by profile-index pair. *)
  let block_tbl = Array.init k (fun _ -> Array.init k (fun _ -> Hashtbl.create 16)) in
  let block_sig i a j b =
    let tbl = block_tbl.(i).(j) in
    let key = (a * Array.length profs.(j)) + b in
    match Hashtbl.find_opt tbl key with
    | Some s -> s
    | None ->
        let ci = profs.(i).(a).codes and cj = profs.(j).(b).codes in
        let m = Array.length cj in
        let base = Omega.block_offset omega i j in
        let s =
          Bits.build width (fun set ->
              for x = 0 to Array.length ci - 1 do
                let c = ci.(x) in
                if c >= 0 then
                  for y = 0 to m - 1 do
                    if Int.equal c cj.(y) then set (base + (x * m) + y)
                  done
              done)
        in
        Hashtbl.add tbl key s;
        s
  in
  let work = ref 0 in
  let bump () =
    incr work;
    if !work > limit then raise (Kary_too_large { work = !work; limit })
  in
  (* [rep_of rev_prefix len suffix_rep]: the reversed prefix rows (length
     [len]) followed by a suffix representative. *)
  let rep_of rev_prefix len suffix_rep =
    let arr = Array.make (len + Array.length suffix_rep) 0 in
    List.iteri (fun idx v -> arr.(len - 1 - idx) <- v) rev_prefix;
    Array.blit suffix_rep 0 arr len (Array.length suffix_rep);
    arr
  in
  (* suffix.(m): classes of R_m × … × R_{k-1} alone, as full-width
     signatures (their bits live in suffix blocks only) with suffix-length
     representatives.  suffix.(k) is the neutral element. *)
  let suffix = Array.make (k + 1) [] in
  suffix.(k) <- [ (Bits.empty width, 1, [||]) ];
  for m = k - 1 downto 0 do
    let acc = H.create 256 in
    let rec walk j sig_ mult rep_rev touched chosen =
      if Int.equal j k then begin
        bump ();
        merge_into acc sig_ mult (rep_of rep_rev (j - m) [||])
      end
      else if Int.equal (touched land suffix_mask.(j)) 0 then begin
        Obs.Counter.add c_kary_collapsed 1;
        List.iter
          (fun (s, c, srep) ->
            bump ();
            merge_into acc (Bits.union sig_ s) (mult * c) (rep_of rep_rev (j - m) srep))
          suffix.(j)
      end
      else
        Array.iteri
          (fun bidx b ->
            let sig' =
              List.fold_left
                (fun s (i, aidx) -> Bits.union s (block_sig i aidx j bidx))
                sig_ chosen
            in
            walk (j + 1) sig' (mult * b.multiplicity) (b.first_row :: rep_rev)
              (touched lor touch.(j).(bidx))
              ((j, bidx) :: chosen))
          profs.(j)
    in
    Array.iteri
      (fun aidx a ->
        walk (m + 1) (Bits.empty width) a.multiplicity [ a.first_row ]
          touch.(m).(aidx)
          [ (m, aidx) ])
      profs.(m);
    suffix.(m) <- H.fold (fun s (c, rep) l -> (s, c, rep) :: l) acc []
  done;
  Obs.Counter.add c_kary_work !work;
  of_ksignature_list ~relations:rels omega suffix.(0)

(* K-ary [build_sampled]: draw [tuples] uniform random row vectors.  On
   k = 2 it draws the same PRNG sequence as [build_sampled], so the two
   agree given equal seeds.  Like every sampling entry point it depends
   only on the sampled set (min-rep merge), never on draw order. *)
let build_sampled_kary prng ~tuples rels =
  if tuples <= 0 then invalid_arg "Universe.build_sampled: need a positive sample size";
  let rels = Array.of_list rels in
  let k = Array.length rels in
  if k < 2 then invalid_arg "Universe.build_sampled: need at least two relations";
  Array.iter
    (fun r ->
      if Relation.cardinality r = 0 then
        invalid_arg "Universe.build_sampled: empty relation")
    rels;
  let ns = Array.map Relation.cardinality rels in
  let omega = kary_omega rels in
  let acc = H.create 256 in
  let row_tuples = Array.make k (Relation.row rels.(0) 0) in
  for _ = 1 to tuples do
    let rep = Array.init k (fun d -> Jqi_util.Prng.int prng ns.(d)) in
    for d = 0 to k - 1 do
      row_tuples.(d) <- Relation.row rels.(d) rep.(d)
    done;
    merge_into acc (Tsig.of_ktuples omega row_tuples) 1 rep
  done;
  of_ksignature_list ~relations:rels omega
    (H.fold (fun s (c, r) l -> (s, c, r) :: l) acc [])

(* ---------------- incremental maintenance under churn -------------- *)

(* [apply_delta] maintains Ω instead of rebuilding it.  The key fact is
   that a tuple combination's signature depends only on its cell values
   (never on row positions or dictionary code values), so churn on one
   relation only does count arithmetic on the class table:

     U_new  =  U_old  −  (removed rows × partners)  +  (added rows × partners)

   Each contribution is computed through the same profile quotient the
   builders use — removed/added rows group into profiles, partners group
   into profiles, and one signature per distinct-profile combination
   carries the product of multiplicities.  A batch of b changed rows
   against partners with d distinct profiles costs O(rows) integer
   re-grouping plus O(b_profiles · d) signatures, against the builder's
   O(d_R · d_P) — the updates/s gap `bench churn` measures.

   Representatives stay lexicographically smallest:
   - survivors renumber monotonically (new = old − #removed below), so a
     surviving rep is still the minimum over the surviving members;
   - added combinations min-merge their candidate vectors in, and a
     signature unseen before can only arise from added rows, so minted
     classes take the add-side minimum;
   - a class whose rep row was deleted is "damaged": a targeted repair
     pass re-scans all profile combinations but merges reps only for
     damaged signatures — one signature phase, no re-encoding, and only
     when a deletion actually hit a representative.

   Classes whose multiplicity reaches zero retire; any signature going
   negative, or a remove that matches no row, raises [Invalid_argument].
   The result is byte-identical to a from-scratch [build]/[build_kary]
   on the post-delta relations (test/test_churn.ml pins this
   differentially on random edit scripts, Mem and Paged). *)

module Delta = Jqi_relational.Delta

(* Mutable per-class adjustment; [a_rep = None] marks damage. *)
type adj = { mutable a_count : int; mutable a_rep : int array option }

let ensure_cache t rels =
  match t.cache with
  | Some c -> c
  | None ->
      let total_rows =
        Array.fold_left (fun s r -> s + Relation.cardinality r) 0 rels
      in
      let dict = Dict.create ~size:total_rows () in
      let codes = Array.map (fun r -> Dict.encode_rows dict r) rels in
      let c = { dict; codes } in
      t.cache <- Some c;
      c

(* Group a code matrix into profiles (first-seen order, like
   [stream_profiles], but over already-encoded rows — integer hashing
   only). *)
let group_codes codes =
  let tbl = PH.create (max 16 (min 65536 (Array.length codes))) in
  let order = Vec.create () in
  Array.iteri
    (fun i cv ->
      match PH.find_opt tbl cv with
      | Some prof -> prof.multiplicity <- prof.multiplicity + 1
      | None ->
          let prof = { codes = cv; multiplicity = 1; first_row = i } in
          PH.add tbl cv prof;
          Vec.push order prof)
    codes;
  Vec.to_array order

(* Position of [x] among the sorted [removed] indexes: [None] when [x]
   itself was removed, else [Some] of its post-delta index. *)
let renumber removed x =
  let lo = ref 0 and hi = ref (Array.length removed) in
  while !lo < !hi do
    let mid = !lo + ((!hi - !lo) / 2) in
    if removed.(mid) < x then lo := mid + 1 else hi := mid
  done;
  if !lo < Array.length removed && Int.equal removed.(!lo) x then None
  else Some (x - !lo)

let apply_delta t deltas =
  Obs.span "universe.apply_delta" @@ fun () ->
  let rels =
    match t.relations with
    | Some rels -> Array.copy rels
    | None ->
        invalid_arg "Universe.apply_delta: universe was built without relations"
  in
  let k = Array.length rels in
  let cache = ensure_cache t rels in
  let codes = Array.copy cache.codes in
  let dict = cache.dict in
  let tbl = H.create (max 64 (2 * Array.length t.classes)) in
  Array.iter
    (fun c ->
      H.replace tbl c.signature
        { a_count = c.count; a_rep = Some (Array.copy c.rep) })
    t.classes;
  (* Enumerate distinct-profile combinations with relation [ridx] pinned
     to [dprof]; [f] receives the code vectors, the multiplicity product
     and the first-row vector (a fresh candidate rep must copy it). *)
  let with_combos profs ridx dprof f =
    let vecs = Array.make k [||] and frows = Array.make k 0 in
    vecs.(ridx) <- dprof.codes;
    frows.(ridx) <- dprof.first_row;
    let rec go j mult =
      if Int.equal j k then f vecs mult frows
      else if Int.equal j ridx then go (j + 1) mult
      else
        Array.iter
          (fun p ->
            vecs.(j) <- p.codes;
            frows.(j) <- p.first_row;
            go (j + 1) (mult * p.multiplicity))
          profs.(j)
    in
    go 0 dprof.multiplicity
  in
  let step (ridx, d) =
    if ridx < 0 || ridx >= k then
      invalid_arg "Universe.apply_delta: no such relation";
    if not (Delta.is_empty d) then begin
      let removed = Relation.resolve_removes rels.(ridx) d in
      let add_codes = Dict.intern_delta dict d in
      let old_codes = codes.(ridx) in
      let n_removed = Array.length removed in
      let survivors = Array.length old_codes - n_removed in
      let new_codes = Array.make (survivors + Array.length add_codes) [||] in
      let w = ref 0 and j = ref 0 in
      Array.iteri
        (fun i cv ->
          if !j < n_removed && Int.equal removed.(!j) i then incr j
          else begin
            new_codes.(!w) <- cv;
            incr w
          end)
        old_codes;
      Array.iteri (fun i cv -> new_codes.(survivors + i) <- cv) add_codes;
      let partner_profs =
        Array.mapi
          (fun ji cm -> if Int.equal ji ridx then [||] else group_codes cm)
          codes
      in
      (* minus: removed rows re-join into profile groups and decrement *)
      let xprofs = group_codes (Array.map (fun i -> old_codes.(i)) removed) in
      Array.iter
        (fun xp ->
          with_combos partner_profs ridx xp (fun vecs mult _frows ->
              let s = Tsig.of_kcodes t.omega vecs in
              match H.find_opt tbl s with
              | Some a when a.a_count >= mult -> a.a_count <- a.a_count - mult
              | Some _ | None ->
                  invalid_arg
                    "Universe.apply_delta: delta inconsistent with the universe"))
        xprofs;
      (* retire emptied classes before adds can re-mint their signature *)
      let retired =
        H.fold (fun s a acc -> if Int.equal a.a_count 0 then s :: acc else acc)
          tbl []
      in
      List.iter (H.remove tbl) retired;
      (* renumber surviving reps; a rep that lost its row is damaged *)
      if n_removed > 0 then
        H.iter
          (fun _ a ->
            match a.a_rep with
            | None -> ()
            | Some rep -> (
                match renumber removed rep.(ridx) with
                | Some x -> rep.(ridx) <- x
                | None -> a.a_rep <- None))
          tbl;
      (* plus: added rows land in existing classes or mint new ones *)
      let aprofs =
        Array.map
          (fun p -> { p with first_row = survivors + p.first_row })
          (group_codes add_codes)
      in
      Array.iter
        (fun ap ->
          with_combos partner_profs ridx ap (fun vecs mult frows ->
              let s = Tsig.of_kcodes t.omega vecs in
              match H.find_opt tbl s with
              | Some a ->
                  a.a_count <- a.a_count + mult;
                  (match a.a_rep with
                  | Some rep -> a.a_rep <- Some (rep_min rep (Array.copy frows))
                  | None -> ())
              | None ->
                  H.replace tbl s
                    { a_count = mult; a_rep = Some (Array.copy frows) }))
        aprofs;
      (* targeted rep repair: one signature pass over all combinations,
         merging only damaged signatures *)
      let damaged = H.create 8 in
      H.iter
        (fun s a -> if Option.is_none a.a_rep then H.replace damaged s ())
        tbl;
      if H.length damaged > 0 then begin
        let all_profs = Array.copy partner_profs in
        all_profs.(ridx) <- group_codes new_codes;
        Array.iter
          (fun p0 ->
            with_combos all_profs 0 p0 (fun vecs _mult frows ->
                let s = Tsig.of_kcodes t.omega vecs in
                if H.mem damaged s then
                  let a = H.find tbl s in
                  match a.a_rep with
                  | Some rep -> a.a_rep <- Some (rep_min rep (Array.copy frows))
                  | None -> a.a_rep <- Some (Array.copy frows)))
          all_profs.(0)
      end;
      codes.(ridx) <- new_codes;
      (* The relation update comes last, after the class arithmetic has
         validated the delta: on a paged backend this mutates the backing
         store in place, so an inconsistent delta must raise before it. *)
      rels.(ridx) <- Relation.apply_delta rels.(ridx) d
    end
  in
  List.iter step deltas;
  let sigs =
    H.fold
      (fun s a acc ->
        match a.a_rep with
        | Some rep -> (s, a.a_count, rep) :: acc
        | None -> invalid_arg "Universe.apply_delta: unrepaired class")
      tbl []
  in
  (match sigs with
  | [] -> invalid_arg "Universe.apply_delta: empty Cartesian product"
  | _ :: _ -> ());
  let u = of_ksignature_list ~relations:rels t.omega sigs in
  u.cache <- Some { dict; codes };
  u

let omega t = t.omega
let classes t = t.classes
let n_classes t = Array.length t.classes
let cls t i = t.classes.(i)
let total_tuples t = t.total
let n_relations t = Omega.n_relations t.omega

let relations t =
  match t.relations with
  | Some rels when Int.equal (Array.length rels) 2 -> Some (rels.(0), rels.(1))
  | Some _ | None -> None

let relation_array t = Option.map Array.copy t.relations

let signature t i = t.classes.(i).signature
let count t i = t.classes.(i).count

(* The representative tuple of a class, when the universe was built from
   actual relations (interactive CLI display). *)
let representative t i =
  match t.relations with
  | Some rels when Int.equal (Array.length rels) 2 ->
      let rep = t.classes.(i).rep in
      Some (Relation.row rels.(0) rep.(0), Relation.row rels.(1) rep.(1))
  | Some _ | None -> None

let representative_rows t i =
  match t.relations with
  | None -> None
  | Some rels ->
      Some (Array.mapi (fun d ri -> Relation.row rels.(d) ri) t.classes.(i).rep)

(* [classes] is sorted by [Bits.compare] (see [of_ksignature_list]), so
   membership is a binary search. *)
let find_class t signature =
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = lo + ((hi - lo) / 2) in
      let c = Bits.compare t.classes.(mid).signature signature in
      if c = 0 then Some mid else if c < 0 then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length t.classes)

(* Classes selected by θ: exactly those whose signature contains θ. *)
let selected_classes t theta =
  let out = ref [] in
  for i = Array.length t.classes - 1 downto 0 do
    if Tsig.selects theta t.classes.(i).signature then out := i :: !out
  done;
  !out

(* Two predicates are instance-equivalent (§3.3) iff they select the same
   classes of D. *)
let equivalent t theta1 theta2 =
  let n = Array.length t.classes in
  let rec go i =
    i >= n
    || Bool.equal
         (Tsig.selects theta1 t.classes.(i).signature)
         (Tsig.selects theta2 t.classes.(i).signature)
       && go (i + 1)
  in
  go 0

(* Join ratio (§5.3): the average size of the distinct (unique) most
   specific join predicates occurring in D. *)
let join_ratio t =
  let n = Array.length t.classes in
  if n = 0 then 0.
  else
    let sum =
      Array.fold_left (fun s c -> s + Bits.cardinal c.signature) 0 t.classes
    in
    float_of_int sum /. float_of_int n

(* Distinct signatures, i.e. the lattice nodes that have corresponding
   tuples (boxed nodes of Figure 4). *)
let signatures t = Array.to_list (Array.map (fun c -> c.signature) t.classes)

let pp ppf t =
  Fmt.pf ppf "@[<v>universe: |D|=%d, %d signature classes, join ratio %.3f"
    t.total (n_classes t) (join_ratio t);
  Array.iteri
    (fun i c ->
      Fmt.pf ppf "@,  #%d %a ×%d" i (Omega.pp_pred t.omega) c.signature c.count)
    t.classes;
  Fmt.pf ppf "@]"
