(* The quotient of the Cartesian product D = R × P by the T-signature.

   Whether a tuple is informative, certain, or selected by any predicate
   depends only on T(t) (Lemmas 3.3/3.4), so two tuples with equal
   signatures are interchangeable for inference.  The engine therefore
   groups D into equivalence classes, each carrying its signature, its
   multiplicity in D and one representative pair of row indexes.  This is
   also the paper's own observation in §5.3 ("if two tuples are selected by
   the same most specific join predicate, then they are basically
   equivalent w.r.t. the inference process") and is what makes TPC-H-sized
   products tractable. *)

module Bits = Jqi_util.Bits
module Obs = Jqi_obs.Obs
module Relation = Jqi_relational.Relation
module Tuple = Jqi_relational.Tuple

type cls = { signature : Bits.t; count : int; rep : int * int }

type t = {
  omega : Omega.t;
  classes : cls array;
  total : int;  (* |D|; the sum of class multiplicities *)
  relations : (Relation.t * Relation.t) option;
}

module H = Hashtbl.Make (struct
  type t = Bits.t

  let equal = Bits.equal
  let hash = Bits.hash
end)

let of_signature_list ?relations omega sigs =
  let acc = H.create 64 in
  List.iter
    (fun (signature, count, rep) ->
      if count <= 0 then invalid_arg "Universe: class multiplicity must be positive";
      match H.find_opt acc signature with
      | Some (c, r) -> H.replace acc signature (c + count, r)
      | None -> H.replace acc signature (count, rep))
    sigs;
  let classes =
    H.fold (fun signature (count, rep) l -> { signature; count; rep } :: l) acc []
    |> List.sort (fun a b -> Bits.compare a.signature b.signature)
    |> Array.of_list
  in
  let total = Array.fold_left (fun s c -> s + c.count) 0 classes in
  { omega; classes; total; relations }

let build r p =
  Obs.span "universe.build" @@ fun () ->
  let omega = Omega.of_schemas (Relation.schema r) (Relation.schema p) in
  let acc = H.create 256 in
  let nr = Relation.cardinality r and np = Relation.cardinality p in
  for i = 0 to nr - 1 do
    let tr = Relation.row r i in
    for j = 0 to np - 1 do
      let s = Tsig.of_tuples omega tr (Relation.row p j) in
      match H.find_opt acc s with
      | Some (c, rep) -> H.replace acc s (c + 1, rep)
      | None -> H.replace acc s (1, (i, j))
    done
  done;
  let sigs = H.fold (fun s (c, rep) l -> (s, c, rep) :: l) acc [] in
  if sigs = [] then invalid_arg "Universe.build: empty Cartesian product";
  of_signature_list ~relations:(r, p) omega sigs

(* Multicore scan: partition R's rows across domains, build per-domain
   signature tables, merge.  Deterministic regardless of scheduling — the
   representative of a class is the lexicographically smallest row pair,
   which is also what the sequential scan (ascending loops) picks, so
   [build_parallel] and [build] produce identical universes.

   The scan allocates one bitset per pair, so domains contend on the minor
   GC; with few cores the sequential scan wins (measure with
   `bench/main.exe micro` before relying on this — on the 2-core reference
   container it is a net loss, which is why [build] is the default
   everywhere). *)
let build_parallel ?domains r p =
  let nr = Relation.cardinality r and np = Relation.cardinality p in
  if nr = 0 || np = 0 then invalid_arg "Universe.build_parallel: empty relation";
  let domains =
    match domains with
    | Some d -> max 1 (min d nr)
    | None -> max 1 (min (Domain.recommended_domain_count ()) nr)
  in
  let omega = Omega.of_schemas (Relation.schema r) (Relation.schema p) in
  let chunk = (nr + domains - 1) / domains in
  let scan lo hi () =
    let acc = H.create 256 in
    for i = lo to hi - 1 do
      let tr = Relation.row r i in
      for j = 0 to np - 1 do
        let s = Tsig.of_tuples omega tr (Relation.row p j) in
        match H.find_opt acc s with
        | Some (c, rep) -> H.replace acc s (c + 1, rep)
        | None -> H.replace acc s (1, (i, j))
      done
    done;
    acc
  in
  let handles =
    List.init domains (fun d ->
        let lo = d * chunk in
        let hi = min nr ((d + 1) * chunk) in
        Domain.spawn (scan lo hi))
  in
  let merged = H.create 256 in
  List.iter
    (fun handle ->
      let table = Domain.join handle in
      H.iter
        (fun s (c, rep) ->
          match H.find_opt merged s with
          | Some (c', rep') -> H.replace merged s (c + c', min rep rep')
          | None -> H.replace merged s (c, rep))
        table)
    handles;
  let sigs = H.fold (fun s (c, rep) l -> (s, c, rep) :: l) merged [] in
  of_signature_list ~relations:(r, p) omega sigs

(* Approximate universe for products too large to scan (the paper's §1:
   "the database instances may be too big to be skimmed"): draw [pairs]
   uniform random tuple pairs instead of enumerating R × P.  Signatures
   that never come up in the sample are invisible, so the inference result
   is only guaranteed instance-equivalent on the sampled sub-product; rare
   signatures (small join ratio contributions) are the ones at risk. *)
let build_sampled prng ~pairs r p =
  if pairs <= 0 then invalid_arg "Universe.build_sampled: need a positive sample size";
  let nr = Relation.cardinality r and np = Relation.cardinality p in
  if nr = 0 || np = 0 then invalid_arg "Universe.build_sampled: empty relation";
  let omega = Omega.of_schemas (Relation.schema r) (Relation.schema p) in
  let acc = H.create 256 in
  for _ = 1 to pairs do
    let i = Jqi_util.Prng.int prng nr and j = Jqi_util.Prng.int prng np in
    let s = Tsig.of_tuples omega (Relation.row r i) (Relation.row p j) in
    match H.find_opt acc s with
    | Some (c, rep) -> H.replace acc s (c + 1, rep)
    | None -> H.replace acc s (1, (i, j))
  done;
  let sigs = H.fold (fun s (c, rep) l -> (s, c, rep) :: l) acc [] in
  of_signature_list ~relations:(r, p) omega sigs

let omega t = t.omega
let classes t = t.classes
let n_classes t = Array.length t.classes
let cls t i = t.classes.(i)
let total_tuples t = t.total
let relations t = t.relations

let signature t i = t.classes.(i).signature
let count t i = t.classes.(i).count

(* The representative tuple of a class, when the universe was built from
   actual relations (interactive CLI display). *)
let representative t i =
  match t.relations with
  | None -> None
  | Some (r, p) ->
      let ri, pj = t.classes.(i).rep in
      Some (Relation.row r ri, Relation.row p pj)

(* [classes] is sorted by [Bits.compare] (see [of_signature_list]), so
   membership is a binary search. *)
let find_class t signature =
  let rec go lo hi =
    if lo >= hi then None
    else
      let mid = lo + ((hi - lo) / 2) in
      let c = Bits.compare t.classes.(mid).signature signature in
      if c = 0 then Some mid else if c < 0 then go (mid + 1) hi else go lo mid
  in
  go 0 (Array.length t.classes)

(* Classes selected by θ: exactly those whose signature contains θ. *)
let selected_classes t theta =
  let out = ref [] in
  for i = Array.length t.classes - 1 downto 0 do
    if Tsig.selects theta t.classes.(i).signature then out := i :: !out
  done;
  !out

(* Two predicates are instance-equivalent (§3.3) iff they select the same
   classes of D. *)
let equivalent t theta1 theta2 =
  let n = Array.length t.classes in
  let rec go i =
    i >= n
    || Bool.equal
         (Tsig.selects theta1 t.classes.(i).signature)
         (Tsig.selects theta2 t.classes.(i).signature)
       && go (i + 1)
  in
  go 0

(* Join ratio (§5.3): the average size of the distinct (unique) most
   specific join predicates occurring in D. *)
let join_ratio t =
  let n = Array.length t.classes in
  if n = 0 then 0.
  else
    let sum =
      Array.fold_left (fun s c -> s + Bits.cardinal c.signature) 0 t.classes
    in
    float_of_int sum /. float_of_int n

(* Distinct signatures, i.e. the lattice nodes that have corresponding
   tuples (boxed nodes of Figure 4). *)
let signatures t = Array.to_list (Array.map (fun c -> c.signature) t.classes)

let pp ppf t =
  Fmt.pf ppf "@[<v>universe: |D|=%d, %d signature classes, join ratio %.3f"
    t.total (n_classes t) (join_ratio t);
  Array.iteri
    (fun i c ->
      Fmt.pf ppf "@,  #%d %a ×%d" i (Omega.pp_pred t.omega) c.signature c.count)
    t.classes;
  Fmt.pf ppf "@]"
