(** Brute-force reference implementations of the §3 definitions.

    Enumerate C(S) ⊆ PP(Ω) explicitly — exponential, test-oracle use
    only. *)

(** C(S) for a sample given as positive/negative signature lists. *)
val consistent_predicates :
  Omega.t -> pos:Jqi_util.Bits.t list -> neg:Jqi_util.Bits.t list ->
  Jqi_util.Bits.t list

(** C(S) of a live state (recovers positives from its history). *)
val consistent_with_state : State.t -> Jqi_util.Bits.t list

(** Cert± by definition: quantification over every θ ∈ C(S). *)
val certain_pos_def : Jqi_util.Bits.t list -> Jqi_util.Bits.t -> bool

val certain_neg_def : Jqi_util.Bits.t list -> Jqi_util.Bits.t -> bool
val certain_label_def : Jqi_util.Bits.t list -> Jqi_util.Bits.t -> Sample.label option

(** The original goal-dependent Uninf(S) definition: [Some α] when the
    example (t, α) — with α the goal's label for t — is uninformative. *)
val uninformative_def :
  Omega.t ->
  pos:Jqi_util.Bits.t list ->
  neg:Jqi_util.Bits.t list ->
  goal:Jqi_util.Bits.t ->
  Jqi_util.Bits.t ->
  Sample.label option
