(* Algorithm 1 inverted into a sans-IO state machine.

   The loop of [Inference.run] — choose an informative tuple, obtain a
   label, update the sample, repeat — is re-expressed as a value: [create]
   performs the first strategy choice, [pending] exposes it, [answer]
   applies a label and performs the next choice.  No IO, no callbacks, no
   blocking; the oracle lives entirely outside.

   The state machine owns its [State.t] and never leaks it mutably:
   [answer] labels a copy, so engines are persistent values — answering an
   old engine (or answering the same engine twice with different labels)
   is well-defined.  This is what lets one server process hold thousands
   of interleaved sessions, and what makes lookahead-style what-if
   exploration safe for API users.

   Budget semantics replicate [Inference.run] exactly: the bound is
   checked *before* the strategy runs, so a budget of 0 never calls the
   strategy, and a run that exhausts its budget reports [halted = false]
   even if Γ would also have held. *)

module Bits = Jqi_util.Bits
module Obs = Jqi_obs.Obs

let c_creates = Obs.Counter.make "engine.creates"
let c_answers = Obs.Counter.make "engine.answers"

type question = {
  class_id : int;
  signature : Bits.t;
  representative : (Jqi_relational.Tuple.t * Jqi_relational.Tuple.t) option;
  rows : Jqi_relational.Tuple.t array option;
      (* one representative tuple per relation; the k-ary view of
         [representative], present whenever the universe carries its
         relations *)
}

type t = {
  universe : Universe.t;
  strategy : Strategy.t;
  state : State.t;  (* owned: only ever mutated via a fresh copy *)
  asked : int;  (* answers accepted through this engine *)
  max_interactions : int option;
  pending : int option;
  halted : bool;  (* Γ: the strategy returned None *)
}

type outcome = {
  predicate : Bits.t;
  steps : (int * Sample.label) list;
  n_interactions : int;
  halted : bool;
  state : State.t;
}

let budget_left t =
  match t.max_interactions with None -> true | Some b -> t.asked < b

(* One strategy invocation, under the same span name [Inference.run]
   historically used, so traces keep their shape. *)
let select t =
  if not (budget_left t) then { t with pending = None; halted = false }
  else
    match
      Obs.span "strategy.choose" (fun () -> Strategy.choose t.strategy t.state)
    with
    | Some cls -> { t with pending = Some cls; halted = false }
    | None -> { t with pending = None; halted = true }

let create ?max_interactions ?state ?pending universe strategy =
  Obs.Counter.incr c_creates;
  let state =
    match state with
    | Some st -> State.copy st
    | None -> State.create universe
  in
  let t =
    { universe; strategy; state; asked = 0; max_interactions;
      pending = None; halted = false }
  in
  (* A restored in-flight question takes precedence over a fresh strategy
     choice, provided it is still worth asking and the budget allows it. *)
  match pending with
  | Some cls
    when budget_left t
         && cls >= 0
         && cls < Universe.n_classes universe
         && State.informative state cls ->
      { t with pending = Some cls }
  | Some _ | None -> select t

let question_of t cls =
  {
    class_id = cls;
    signature = Universe.signature t.universe cls;
    representative = Universe.representative t.universe cls;
    rows = Universe.representative_rows t.universe cls;
  }

let pending t = Option.map (question_of t) t.pending

let answer t label =
  match t.pending with
  | None -> invalid_arg "Engine.answer: no question pending"
  | Some cls ->
      Obs.Counter.incr c_answers;
      let state = State.copy t.state in
      State.label state cls label;
      select { t with state; asked = t.asked + 1; pending = None }

type stale_reason =
  | Label_retired of {
      step : int;
      signature : Bits.t;
      label : Sample.label;
    }
  | Label_contradicts of {
      step : int;
      signature : Bits.t;
      label : Sample.label;
    }
  | Question_retired of { signature : Bits.t }

type recertification = Recertified of t | Stale of stale_reason

exception Stale_at of stale_reason

(* Replay the engine's history *by signature* into a fresh state over the
   new universe.  Signatures are the whole semantics — informativeness,
   certainty and selection depend only on T(t) — so a replay that finds
   every labeled signature still present reconstructs an equivalent
   sample.  [State.label] tolerates same-sign certainty, and a history
   that was consistent stays consistent under any universe carrying the
   same signatures, so [Label_contradicts] is defensive; the live stale
   mode is a *retired* signature (its class died under churn). *)
let recertify t new_universe =
  Obs.span "engine.recertify" (fun () ->
      let old_u = t.universe in
      let replay () =
        let state = State.create new_universe in
        List.iteri
          (fun i (cls, lbl) ->
            let signature = Universe.signature old_u cls in
            match Universe.find_class new_universe signature with
            | None ->
                raise
                  (Stale_at
                     (Label_retired { step = i + 1; signature; label = lbl }))
            | Some c -> (
                try State.label state c lbl
                with State.Inconsistent _ ->
                  raise
                    (Stale_at
                       (Label_contradicts
                          { step = i + 1; signature; label = lbl }))))
          (State.history t.state);
        let pending =
          match t.pending with
          | None -> None
          | Some cls -> (
              let signature = Universe.signature old_u cls in
              match Universe.find_class new_universe signature with
              | Some c -> Some c
              | None -> raise (Stale_at (Question_retired { signature })))
        in
        let max_interactions =
          Option.map (fun b -> max 0 (b - t.asked)) t.max_interactions
        in
        Recertified
          (create ?max_interactions ~state ?pending new_universe t.strategy)
      in
      try replay () with Stale_at r -> Stale r)

let finished (t : t) = t.pending = None
let halted (t : t) = t.halted && t.pending = None
let n_asked t = t.asked
let universe (t : t) = t.universe
let strategy (t : t) = t.strategy

let result (t : t) =
  {
    predicate = State.inferred t.state;
    steps = State.history t.state;
    n_interactions = State.n_interactions t.state;
    halted = halted t;
    state = State.copy t.state;
  }
