(** Algorithm 1 as a sans-IO state machine.

    [Inference.run] couples the inference loop to an [Oracle.t] callback:
    the caller hands over control until the loop returns.  [Engine] is the
    same algorithm inverted — it never performs IO and never blocks.  It
    exposes the in-flight question through {!pending}; whoever owns the
    IO (a CLI prompt, a network service, a test harness) obtains a label
    by any means and feeds it back through {!answer}, which returns the
    successor engine.

    Values of type [t] behave as immutable values: {!answer} copies the
    underlying {!State.t}, so an engine can be answered twice (e.g. to
    explore both labels) and old engines remain valid.  The driver loop in
    [Inference.run] is a thin wrapper over this module and reproduces its
    historical question sequence exactly — the differential property the
    test suite pins. *)

type question = {
  class_id : int;  (** index into the universe's class array *)
  signature : Jqi_util.Bits.t;  (** T(t) of the class *)
  representative :
    (Jqi_relational.Tuple.t * Jqi_relational.Tuple.t) option;
      (** a concrete tuple pair to show the user, when the universe is
          binary and was built from relations *)
  rows : Jqi_relational.Tuple.t array option;
      (** one representative tuple per relation — the k-ary view of
          [representative], present whenever the universe carries its
          relations *)
}

type t

(** What a finished (or interrupted) engine has established — the payload
    [Inference.result] wraps with timing and the strategy name. *)
type outcome = {
  predicate : Jqi_util.Bits.t;  (** T(S+), the current answer *)
  steps : (int * Sample.label) list;  (** chronological (class, label) *)
  n_interactions : int;
  halted : bool;  (** Γ reached (no informative tuple left) *)
  state : State.t;  (** an independent copy of the engine's sample *)
}

(** [create universe strategy] starts a session and immediately selects
    the first question (when the budget allows and an informative tuple
    exists).  [state] resumes from an existing sample, which is copied —
    the argument is not mutated.  [max_interactions] bounds the number of
    {!answer} calls accepted through this engine, mirroring
    [Inference.run]'s budget: prior interactions of a resumed [state] do
    not count against it.  [pending] forces the initial question to that
    class (a session restored mid-question re-presents the same tuple);
    it is ignored unless the class is still informative. *)
val create :
  ?max_interactions:int -> ?state:State.t -> ?pending:int -> Universe.t ->
  Strategy.t -> t

(** The question awaiting a label; [None] when the engine is finished
    (Γ reached or budget exhausted). *)
val pending : t -> question option

(** Feed the label for the pending question; returns the successor engine
    with the next question selected.  Raises [Invalid_argument] when no
    question is pending, and [State.Inconsistent] when the label
    contradicts a certain label (Algorithm 1 lines 6-7). *)
val answer : t -> Sample.label -> t

(** {2 Re-certification after churn}

    When the universe changes under a live session ({!Universe.apply_delta}),
    the session's labels refer to classes of the {e old} universe.  Because
    every semantic notion — informativeness, certainty, selection — depends
    only on signatures, a session stays meaningful exactly when each
    labeled signature still names a class of the new universe. *)

(** Why a session could not be carried over. *)
type stale_reason =
  | Label_retired of {
      step : int;  (** 1-based position in the history *)
      signature : Jqi_util.Bits.t;
      label : Sample.label;
    }
      (** A labeled signature no longer has tuples in D — the class was
          retired by churn, so the user's example refers to nothing. *)
  | Label_contradicts of {
      step : int;
      signature : Jqi_util.Bits.t;
      label : Sample.label;
    }
      (** Replaying the label hit an opposite certain label.  Defensive:
          consistency of a sample depends only on its signature multiset,
          so a signature-preserving replay cannot newly contradict. *)
  | Question_retired of { signature : Jqi_util.Bits.t }
      (** The in-flight question's class is gone; its answer would label
          a tuple that no longer exists. *)

type recertification = Recertified of t | Stale of stale_reason

(** [recertify t u'] carries a session over to the post-delta universe
    [u']: the history is replayed {e by signature} into a fresh state
    over [u'], the pending question is re-anchored to the class now
    carrying its signature, and the remaining budget is preserved.
    Still-consistent sessions continue — a pending question whose answer
    became certain under [u'] is simply re-selected — while sessions
    referring to retired signatures come back [Stale] with a typed
    reason.  [t] itself is unchanged and remains valid against its own
    universe. *)
val recertify : t -> Universe.t -> recertification

(** No question pending: either Γ was reached or the budget ran out. *)
val finished : t -> bool

(** Γ reached — the strategy found no informative tuple.  [false] while a
    question is pending or when the budget ran out first. *)
val halted : t -> bool

(** Questions answered through this engine (excludes prior interactions
    of a resumed state). *)
val n_asked : t -> int

val universe : t -> Universe.t
val strategy : t -> Strategy.t

(** Snapshot of what the engine knows; callable at any point of the
    session.  The returned state is an independent copy. *)
val result : t -> outcome
