(* User models for the interactive scenario (§3.2).

   The paper assumes a user who labels tuples consistently with a goal
   predicate θG; [honest] is that user.  [noisy] flips labels with a given
   probability to exercise the inconsistency detection of Algorithm 1, and
   [of_fun] supports a real human (the CLI reads the label from stdin). *)

module Bits = Jqi_util.Bits
module Prng = Jqi_util.Prng

type t = { name : string; label : Universe.t -> int -> Sample.label }

let name t = t.name
let label t universe cls = t.label universe cls

let of_fun name label = { name; label }

(* The honest user: t is positive iff θG ⊆ T(t). *)
let honest ~goal =
  {
    name = "honest";
    label =
      (fun u i ->
        if Tsig.selects goal (Universe.signature u i) then Sample.Positive
        else Sample.Negative);
  }

let flip = function Sample.Positive -> Sample.Negative | Sample.Negative -> Sample.Positive

(* A user who answers wrongly with probability [error_rate]. *)
let noisy prng ~error_rate base =
  {
    name = Printf.sprintf "noisy(%.2f,%s)" error_rate base.name;
    label =
      (fun u i ->
        let l = base.label u i in
        if Prng.float prng 1.0 < error_rate then flip l else l);
  }

(* Majority vote of [2k+1] independent draws from the base oracle — the
   standard crowdsourcing redundancy scheme (§1/§7 motivate the whole
   inference problem with crowd pricing).  With a noisy base of error rate
   p, the effective error rate drops to P[Binomial(2k+1, p) > k]. *)
let majority ~votes base =
  if votes < 1 || votes mod 2 = 0 then
    invalid_arg "Oracle.majority: vote count must be odd and positive";
  {
    name = Printf.sprintf "majority(%d,%s)" votes base.name;
    label =
      (fun u i ->
        let positives = ref 0 in
        for _ = 1 to votes do
          if base.label u i = Sample.Positive then incr positives
        done;
        if 2 * !positives > votes then Sample.Positive else Sample.Negative);
  }
