(** Entropy of informative tuples (§4.4).

    entropy_S(t) = (min(u⁺,u⁻), max(u⁺,u⁻)) where u^α is the number of
    tuples of D that become uninformative when t is labeled α, net of the
    queried tuple itself (the paper's counting in Figure 5 and the §4.4
    walk-through).  [entropy_k] generalizes the paper's entropy²
    (Algorithm 5) to arbitrary lookahead depth. *)

type t = { lo : int; hi : int }

(** (∞,∞): labeling this tuple can end the interaction (Algorithm 5,
    lines 3-5). *)
val infinity : t

(** [make a b] orders the components: (min, max). *)
val make : int -> int -> t

val is_infinite : t -> bool
val equal : t -> t -> bool

(** [dominates e e'] iff both components of [e] are ≥ those of [e']. *)
val dominates : t -> t -> bool

(** Entropies not dominated by any other entropy of the set. *)
val skyline : t list -> t list

(** The selection rule of Algorithms 4/6: the skyline element whose min is
    the maximal min (largest max as tie-break); [None] on empty input. *)
val best : t list -> t option

val pp : Format.formatter -> t -> unit

(** entropy¹ of a class. *)
val entropy1 : State.t -> int -> t

(** entropy^k of a class via the fast engine: incremental certainty
    tracking ([State.view]), canonical-state memoization ([State.Key]) and
    skyline shortcuts.  Exact — returns precisely [reference_k]'s value;
    k = 1 coincides with [entropy1], k = 2 is the paper's entropy²
    (Algorithm 5). *)
val entropy_k : State.t -> int -> int -> t

(** [entropy2 st cls] = [entropy_k st 2 cls]. *)
val entropy2 : State.t -> int -> t

(** Reference engine: the direct transcription of Algorithm 5, re-deriving
    certainty from scratch per branch.  Kept as the differential test
    oracle for [entropy_k]/[score]; cost grows as (informative classes)^k
    per class. *)
val reference_k : State.t -> int -> int -> t

(** [reference_k] at k = 1. *)
val reference1 : State.t -> int -> t

(** [score state ~k] is entropy^k of every informative class of [state],
    in ascending class order, sharing one memo across the whole round and
    pruning with Algorithm 4's selection rule: [None] marks a candidate
    whose entropy min is strictly below another candidate's — it can
    neither be the skyline best nor tie with it, so choosing over the
    [Some] entries picks exactly the class the reference engine would.
    [domains] > 1 fans the candidates out over that many domains
    (contiguous chunks, per-domain memo and per-domain pruning); results
    are concatenated in class order, every [Some] entry is exact, and the
    downstream choice is identical to the sequential run's. *)
val score : ?domains:int -> State.t -> k:int -> (int * t option) list
