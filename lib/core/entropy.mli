(** Entropy of informative tuples (§4.4).

    entropy_S(t) = (min(u⁺,u⁻), max(u⁺,u⁻)) where u^α is the number of
    tuples of D that become uninformative when t is labeled α, net of the
    queried tuple itself (the paper's counting in Figure 5 and the §4.4
    walk-through).  [entropy_k] generalizes the paper's entropy²
    (Algorithm 5) to arbitrary lookahead depth. *)

type t = { lo : int; hi : int }

(** (∞,∞): labeling this tuple can end the interaction (Algorithm 5,
    lines 3-5). *)
val infinity : t

(** [make a b] orders the components: (min, max). *)
val make : int -> int -> t

val is_infinite : t -> bool
val equal : t -> t -> bool

(** [dominates e e'] iff both components of [e] are ≥ those of [e']. *)
val dominates : t -> t -> bool

(** Entropies not dominated by any other entropy of the set. *)
val skyline : t list -> t list

(** The selection rule of Algorithms 4/6: the skyline element whose min is
    the maximal min (largest max as tie-break); [None] on empty input. *)
val best : t list -> t option

val pp : Format.formatter -> t -> unit

(** entropy¹ of a class. *)
val entropy1 : State.t -> int -> t

(** entropy^k of a class; k = 1 coincides with [entropy1], k = 2 is the
    paper's entropy² (Algorithm 5).  Cost grows as (informative classes)^k. *)
val entropy_k : State.t -> int -> int -> t

(** [entropy2 st cls] = [entropy_k st 2 cls]. *)
val entropy2 : State.t -> int -> t
