(** User models for the interactive scenario (§3.2). *)

type t

val name : t -> string

(** Label the given class of the universe. *)
val label : t -> Universe.t -> int -> Sample.label

val of_fun : string -> (Universe.t -> int -> Sample.label) -> t

(** The paper's user: labels t positive iff θG ⊆ T(t). *)
val honest : goal:Jqi_util.Bits.t -> t

(** Wraps an oracle to answer wrongly with probability [error_rate];
    exercises robustness of the inference loop. *)
val noisy : Jqi_util.Prng.t -> error_rate:float -> t -> t

(** Majority vote of [votes] (odd) independent draws from the base oracle —
    the crowdsourcing redundancy scheme; with a noisy base the effective
    error rate drops binomially.  Raises [Invalid_argument] on even or
    non-positive vote counts. *)
val majority : votes:int -> t -> t
