(* The attribute-pair universe Ω = attrs(R) × attrs(P).

   A join predicate θ ⊆ Ω is represented as a bitset ([Jqi_util.Bits.t]) of
   width |Ω|; this module owns the bijection between bit positions and
   attribute pairs (A_i, B_j). *)

module Bits = Jqi_util.Bits

type t = { n : int; m : int; r_names : string array; p_names : string array }

let create ?r_names ?p_names ~n ~m () =
  if n <= 0 || m <= 0 then invalid_arg "Omega: need at least one attribute";
  let default prefix k = Array.init k (fun i -> Printf.sprintf "%s%d" prefix (i + 1)) in
  let r_names = Option.value ~default:(default "A" n) r_names in
  let p_names = Option.value ~default:(default "B" m) p_names in
  if Array.length r_names <> n || Array.length p_names <> m then
    invalid_arg "Omega: name arrays must match arities";
  { n; m; r_names; p_names }

let of_schemas sr sp =
  let module S = Jqi_relational.Schema in
  create
    ~r_names:(Array.of_list (S.names sr))
    ~p_names:(Array.of_list (S.names sp))
    ~n:(S.arity sr) ~m:(S.arity sp) ()

let width t = t.n * t.m
let left_arity t = t.n
let right_arity t = t.m

let index t i j =
  if i < 0 || i >= t.n || j < 0 || j >= t.m then
    invalid_arg (Printf.sprintf "Omega.index: (%d,%d) outside %dx%d" i j t.n t.m);
  (i * t.m) + j

let pair t k =
  if k < 0 || k >= width t then invalid_arg "Omega.pair: out of range";
  (k / t.m, k mod t.m)

let r_name t i = t.r_names.(i)
let p_name t j = t.p_names.(j)

let empty t = Bits.empty (width t)
let full t = Bits.full (width t)

let of_pairs t pairs =
  List.fold_left (fun b (i, j) -> Bits.add b (index t i j)) (empty t) pairs

let to_pairs t b = List.map (pair t) (Bits.elements b)

let of_names t pairs =
  let find arr name =
    let rec go i =
      if i >= Array.length arr then
        invalid_arg (Printf.sprintf "Omega.of_names: no attribute %S" name)
      else if String.equal arr.(i) name then i
      else go (i + 1)
    in
    go 0
  in
  of_pairs t (List.map (fun (a, b) -> (find t.r_names a, find t.p_names b)) pairs)

let pp_pred t ppf b =
  let pp_pair ppf (i, j) = Fmt.pf ppf "(%s,%s)" t.r_names.(i) t.p_names.(j) in
  if Bits.is_empty b then Fmt.string ppf "{}"
  else
    Fmt.pf ppf "{%a}"
      (Fmt.list ~sep:(Fmt.any ", ") pp_pair)
      (to_pairs t b)

let pred_to_string t b = Fmt.str "%a" (pp_pred t) b

(* All of PP(Ω) — exponential, only for brute-force reference oracles. *)
let all_predicates t = Bits.subsets (full t)
