(* The attribute-pair universe Ω.

   Binary (the paper's §2): Ω = attrs(R) × attrs(P).  K-ary (ROADMAP
   item 2): for relations R_0..R_{k-1}, Ω = ⋃_{i<j} attrs(R_i) ×
   attrs(R_j) — one block of bits per unordered relation pair, blocks
   laid out in lexicographic (i,j) order.  For k = 2 there is a single
   block (0,1) at offset 0, so the k-ary layout degenerates to the
   historical [i*m + j] bit positions: binary predicates are
   bit-compatible across both code paths.

   A join predicate θ ⊆ Ω is represented as a bitset ([Jqi_util.Bits.t])
   of width |Ω|; this module owns the bijection between bit positions and
   attribute pairs. *)

module Bits = Jqi_util.Bits

type t = {
  arities : int array;  (* arity per relation *)
  names : string array array;  (* attribute names per relation *)
  rel_names : string array;  (* relation names (k-ary printing) *)
  offsets : int array array;  (* offsets.(i).(j) for i < j; -1 elsewhere *)
  width : int;
}

let n_relations t = Array.length t.arities
let arity_at t i = t.arities.(i)
let attr_name t i a = t.names.(i).(a)
let rel_name t i = t.rel_names.(i)
let width t = t.width

let create_kary ?rel_names names =
  let k = Array.length names in
  if k < 2 then invalid_arg "Omega: need at least two relations";
  let arities = Array.map Array.length names in
  Array.iter
    (fun n -> if n <= 0 then invalid_arg "Omega: need at least one attribute")
    arities;
  let rel_names =
    match rel_names with
    | Some rs ->
        if Array.length rs <> k then
          invalid_arg "Omega: relation name array must match relation count";
        rs
    | None -> Array.init k (fun i -> Printf.sprintf "R%d" (i + 1))
  in
  let offsets = Array.make_matrix k k (-1) in
  let off = ref 0 in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      offsets.(i).(j) <- !off;
      off := !off + (arities.(i) * arities.(j))
    done
  done;
  { arities; names; rel_names; offsets; width = !off }

let create ?r_names ?p_names ~n ~m () =
  if n <= 0 || m <= 0 then invalid_arg "Omega: need at least one attribute";
  let default prefix k = Array.init k (fun i -> Printf.sprintf "%s%d" prefix (i + 1)) in
  let r_names = Option.value ~default:(default "A" n) r_names in
  let p_names = Option.value ~default:(default "B" m) p_names in
  if Array.length r_names <> n || Array.length p_names <> m then
    invalid_arg "Omega: name arrays must match arities";
  create_kary ~rel_names:[| "R"; "P" |] [| r_names; p_names |]

let of_schemas sr sp =
  let module S = Jqi_relational.Schema in
  create
    ~r_names:(Array.of_list (S.names sr))
    ~p_names:(Array.of_list (S.names sp))
    ~n:(S.arity sr) ~m:(S.arity sp) ()

let of_schemas_kary named =
  let module S = Jqi_relational.Schema in
  let named = Array.of_list named in
  create_kary
    ~rel_names:(Array.map fst named)
    (Array.map (fun (_, s) -> Array.of_list (S.names s)) named)

(* Binary views: total only when k = 2. *)

let binary t op =
  if n_relations t <> 2 then
    invalid_arg (Printf.sprintf "Omega.%s: k-ary universe (k=%d)" op (n_relations t))

let left_arity t =
  binary t "left_arity";
  t.arities.(0)

let right_arity t =
  binary t "right_arity";
  t.arities.(1)

let index t i j =
  binary t "index";
  let n = t.arities.(0) and m = t.arities.(1) in
  if i < 0 || i >= n || j < 0 || j >= m then
    invalid_arg (Printf.sprintf "Omega.index: (%d,%d) outside %dx%d" i j n m);
  (i * m) + j

let pair t k =
  binary t "pair";
  if k < 0 || k >= width t then invalid_arg "Omega.pair: out of range";
  let m = t.arities.(1) in
  (k / m, k mod m)

let r_name t i =
  binary t "r_name";
  t.names.(0).(i)

let p_name t j =
  binary t "p_name";
  t.names.(1).(j)

(* K-ary bit bijection. *)

let block_offset t i j =
  let k = n_relations t in
  if i < 0 || j < 0 || i >= k || j >= k || i >= j then
    invalid_arg (Printf.sprintf "Omega.block_offset: bad block (%d,%d) for k=%d" i j k);
  t.offsets.(i).(j)

let kindex t (i, a) (j, b) =
  let (i, a), (j, b) = if i <= j then ((i, a), (j, b)) else ((j, b), (i, a)) in
  let k = n_relations t in
  if i < 0 || j >= k || i = j then
    invalid_arg (Printf.sprintf "Omega.kindex: bad relation pair (%d,%d) for k=%d" i j k);
  if a < 0 || a >= t.arities.(i) || b < 0 || b >= t.arities.(j) then
    invalid_arg
      (Printf.sprintf "Omega.kindex: attribute (%d,%d) outside %dx%d" a b
         t.arities.(i) t.arities.(j));
  t.offsets.(i).(j) + (a * t.arities.(j)) + b

let kpair t bit =
  if bit < 0 || bit >= t.width then invalid_arg "Omega.kpair: out of range";
  let k = n_relations t in
  let found = ref None in
  (try
     for i = 0 to k - 1 do
       for j = i + 1 to k - 1 do
         let base = t.offsets.(i).(j) in
         let size = t.arities.(i) * t.arities.(j) in
         if bit >= base && bit < base + size then begin
           let local = bit - base in
           let m = t.arities.(j) in
           found := Some ((i, local / m), (j, local mod m));
           raise Exit
         end
       done
     done
   with Exit -> ());
  match !found with
  | Some p -> p
  | None -> invalid_arg "Omega.kpair: out of range"

let empty t = Bits.empty (width t)
let full t = Bits.full (width t)

let of_kpairs t pairs =
  List.fold_left (fun b (p, q) -> Bits.add b (kindex t p q)) (empty t) pairs

let to_kpairs t b = List.map (kpair t) (Bits.elements b)

let of_pairs t pairs =
  List.fold_left (fun b (i, j) -> Bits.add b (index t i j)) (empty t) pairs

let to_pairs t b = List.map (pair t) (Bits.elements b)

(* [restrict t b i j] keeps only the bits of block (i,j). *)
let restrict t b i j =
  let base = block_offset t i j in
  let size = t.arities.(i) * t.arities.(j) in
  Bits.build (width t) (fun set ->
      for local = 0 to size - 1 do
        if Bits.mem b (base + local) then set (base + local)
      done)

let find_attr arr name =
  let rec go i =
    if i >= Array.length arr then None
    else if String.equal arr.(i) name then Some i
    else go (i + 1)
  in
  go 0

let of_names t pairs =
  binary t "of_names";
  let find arr name =
    match find_attr arr name with
    | Some i -> i
    | None -> invalid_arg (Printf.sprintf "Omega.of_names: no attribute %S" name)
  in
  of_pairs t
    (List.map (fun (a, b) -> (find t.names.(0) a, find t.names.(1) b)) pairs)

(* Resolve "rel.attr" (or a bare attribute name when globally unique) to a
   (relation, attribute) position. *)
let resolve_name t spec =
  let fail msg = invalid_arg (Printf.sprintf "Omega.of_names_kary: %s %S" msg spec) in
  match String.index_opt spec '.' with
  | Some dot ->
      let rel = String.sub spec 0 dot in
      let attr = String.sub spec (dot + 1) (String.length spec - dot - 1) in
      let rec go i =
        if i >= n_relations t then fail "no relation in"
        else if String.equal t.rel_names.(i) rel then
          match find_attr t.names.(i) attr with
          | Some a -> (i, a)
          | None -> fail "no attribute in"
        else go (i + 1)
      in
      go 0
  | None ->
      let hits = ref [] in
      for i = n_relations t - 1 downto 0 do
        match find_attr t.names.(i) spec with
        | Some a -> hits := (i, a) :: !hits
        | None -> ()
      done;
      (match !hits with
      | [ p ] -> p
      | [] -> fail "no attribute"
      | _ :: _ :: _ -> fail "ambiguous attribute (qualify as rel.attr)")

let of_names_kary t pairs =
  of_kpairs t (List.map (fun (a, b) -> (resolve_name t a, resolve_name t b)) pairs)

let pp_pred t ppf b =
  if Bits.is_empty b then Fmt.string ppf "{}"
  else if n_relations t = 2 then
    (* Historical binary rendering: bare attribute names. *)
    let pp_pair ppf (i, j) = Fmt.pf ppf "(%s,%s)" t.names.(0).(i) t.names.(1).(j) in
    Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") pp_pair) (to_pairs t b)
  else
    let pp_pos ppf (i, a) = Fmt.pf ppf "%s.%s" t.rel_names.(i) t.names.(i).(a) in
    let pp_pair ppf (p, q) = Fmt.pf ppf "(%a,%a)" pp_pos p pp_pos q in
    Fmt.pf ppf "{%a}" (Fmt.list ~sep:(Fmt.any ", ") pp_pair) (to_kpairs t b)

let pred_to_string t b = Fmt.str "%a" (pp_pred t) b

(* All of PP(Ω) — exponential, only for brute-force reference oracles. *)
let all_predicates t = Bits.subsets (full t)
