(** The general inference algorithm (Algorithm 1).

    Repeats (strategy chooses an informative tuple → oracle labels it →
    state updates) until no informative tuple remains, then returns
    T(S+) — the most specific predicate consistent with the labels, which
    is instance-equivalent to the goal (§3.3). *)

(** Debug tracing source ("jqi.inference"): set it to [Debug] for one log
    line per question. *)
val log_src : Logs.src

type result = {
  strategy : string;
  predicate : Jqi_util.Bits.t;  (** the inferred T(S+) *)
  steps : (int * Sample.label) list;  (** chronological (class, label) *)
  n_interactions : int;
  elapsed : float;  (** wall-clock seconds for the whole loop *)
  halted : bool;  (** Γ reached (false iff the budget ran out) *)
  state : State.t;
}

(** Run Algorithm 1.  [max_interactions] bounds the number of questions;
    the run reports [halted = false] when it is hit.  [state] resumes an
    existing session (e.g. one reloaded via [Session.load]) instead of
    starting empty; its prior interactions are counted in the result. *)
val run :
  ?max_interactions:int -> ?state:State.t -> Universe.t -> Strategy.t ->
  Oracle.t -> result

(** §3.3 success criterion: the answer is instance-equivalent to the
    goal. *)
val verified : Universe.t -> goal:Jqi_util.Bits.t -> result -> bool

val pp : Omega.t -> Format.formatter -> result -> unit

(** One line per question (representative tuple pair or signature), then
    the inferred predicate. *)
val pp_transcript : Universe.t -> Format.formatter -> result -> unit
