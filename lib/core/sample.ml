(* Samples: sets of labeled examples over the Cartesian product (§3).

   An example is a tuple of D = R × P together with a label; this module is
   the tuple-level view used by the public API and by consistency checking.
   The inference engine itself works on the signature-quotient ([State]). *)

module Bits = Jqi_util.Bits
module Relation = Jqi_relational.Relation

type label = Positive | Negative

let label_of_bool b = if b then Positive else Negative
let bool_of_label = function Positive -> true | Negative -> false
let equal_label a b = Bool.equal (bool_of_label a) (bool_of_label b)

let pp_label ppf = function
  | Positive -> Fmt.string ppf "+"
  | Negative -> Fmt.string ppf "-"

(* Examples address tuples of D by their row-index pair. *)
type example = { tuple : int * int; label : label }

type t = { examples : example list }

let empty = { examples = [] }

let add t ~tuple ~label =
  if
    List.exists
      (fun e -> e.tuple = tuple && e.label <> label)
      t.examples
  then invalid_arg "Sample.add: tuple already labeled with the opposite label";
  if List.exists (fun e -> e.tuple = tuple) t.examples then t
  else { examples = { tuple; label } :: t.examples }

let of_list l =
  List.fold_left (fun s (tuple, label) -> add s ~tuple ~label) empty l

let examples t = List.rev t.examples
let size t = List.length t.examples
let positives t = List.filter_map (fun e -> if e.label = Positive then Some e.tuple else None) t.examples
let negatives t = List.filter_map (fun e -> if e.label = Negative then Some e.tuple else None) t.examples

let signature_of_tuple omega r p (i, j) =
  Tsig.of_tuples omega (Relation.row r i) (Relation.row p j)

(* T(S+): the most specific predicate selecting all positive examples
   (Ω when S+ is empty, cf. §3.3). *)
let most_specific omega r p t =
  Tsig.of_signatures omega
    (List.map (signature_of_tuple omega r p) (positives t))

(* §3.1: S is consistent iff R ⋈_{T(S+)} P selects no negative example,
   i.e. iff T(S+) ⊄ T(t') for every negative t'. *)
let consistent omega r p t =
  let tpos = most_specific omega r p t in
  List.for_all
    (fun tup -> not (Tsig.selects tpos (signature_of_tuple omega r p tup)))
    (negatives t)

(* A predicate θ is consistent with S iff it selects all positives and no
   negative (the definition, used as a reference in tests). *)
let predicate_consistent omega r p t theta =
  List.for_all
    (fun tup -> Tsig.selects theta (signature_of_tuple omega r p tup))
    (positives t)
  && List.for_all
       (fun tup -> not (Tsig.selects theta (signature_of_tuple omega r p tup)))
       (negatives t)
