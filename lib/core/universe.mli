(** The quotient of the Cartesian product D = R × P by the T-signature.

    Informativeness, certainty and selection depend only on T(t)
    (Lemmas 3.3/3.4), so tuples with equal signatures are interchangeable;
    the engine works on equivalence classes carrying multiplicities.  This
    matches the paper's "unique join predicates" discussion (§5.3) and is
    what makes TPC-H-sized products tractable. *)

type cls = {
  signature : Jqi_util.Bits.t;  (** T(t) for every tuple of the class *)
  count : int;  (** multiplicity in D *)
  rep : int * int;  (** row indexes of one representative pair *)
}

type t

(** Build the quotient of R × P.  The default constructor — an alias for
    {!build_quotient}.  Raises [Invalid_argument] on an empty product. *)
val build : Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> t

(** The reference per-pair scan: one [Tsig.of_tuples] call per tuple of
    R × P, O(|R|·|P|·|Ω|).  Kept as the executable definition and the
    differential oracle for the quotient builders, which must produce
    identical universes (classes, counts and representatives). *)
val build_naive : Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> t

(** Profile-quotient construction: interns every cell of both relations
    into a shared {!Jqi_relational.Dict} code space, groups rows by code
    vector, and computes one signature per distinct-profile *pair* with
    multiplicity |profile_R| × |profile_P| — O(d_R·d_P·|Ω|) signature work
    after an O((|R|+|P|)·arity) encoding pass, where d is the
    distinct-profile count.  Identical output to {!build_naive};
    representatives are the lexicographically smallest member pair of each
    class. *)
val build_quotient :
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> t

(** Multicore {!build_quotient}: the distinct R-profiles are partitioned
    across [domains] (default [Domain.recommended_domain_count ()]);
    produces a universe identical to the sequential builders regardless of
    scheduling.  Worthwhile once d_R·d_P is large enough to amortize the
    domain-spawn cost — `bench/main.exe universe` measures the crossover. *)
val build_parallel :
  ?domains:int -> Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> t

(** Approximate universe for products too large to scan: [pairs] uniform
    random tuple pairs instead of the full R × P.  Signatures absent from
    the sample are invisible, so inference is only guaranteed
    instance-equivalent on the sampled sub-product.  Representatives are
    the lexicographically smallest {e sampled} member of each class, so
    the result depends only on the sampled set, not the PRNG draw order. *)
val build_sampled :
  Jqi_util.Prng.t -> pairs:int ->
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> t

(** Assemble a universe directly from (signature, multiplicity,
    representative) triples; duplicate signatures are merged.  Meant for
    tests and the minimax examples. *)
val of_signature_list :
  ?relations:Jqi_relational.Relation.t * Jqi_relational.Relation.t ->
  Omega.t ->
  (Jqi_util.Bits.t * int * (int * int)) list ->
  t

val omega : t -> Omega.t
val classes : t -> cls array
val n_classes : t -> int
val cls : t -> int -> cls

(** |D|, the sum of class multiplicities. *)
val total_tuples : t -> int

val relations :
  t -> (Jqi_relational.Relation.t * Jqi_relational.Relation.t) option

val signature : t -> int -> Jqi_util.Bits.t
val count : t -> int -> int

(** Representative tuple pair of a class, when the universe was built from
    actual relations. *)
val representative :
  t -> int -> (Jqi_relational.Tuple.t * Jqi_relational.Tuple.t) option

(** Class of a signature, if any — binary search over the sorted class
    array, O(log classes). *)
val find_class : t -> Jqi_util.Bits.t -> int option

(** Classes whose signature contains θ — the classes θ selects. *)
val selected_classes : t -> Jqi_util.Bits.t -> int list

(** Instance equivalence (§3.3): θ1 and θ2 select the same classes of D. *)
val equivalent : t -> Jqi_util.Bits.t -> Jqi_util.Bits.t -> bool

(** Join ratio (§5.3): mean size of the distinct T-signatures in D. *)
val join_ratio : t -> float

(** The distinct signatures — the boxed lattice nodes of Figure 4. *)
val signatures : t -> Jqi_util.Bits.t list

val pp : Format.formatter -> t -> unit
