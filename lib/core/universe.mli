(** The quotient of the Cartesian product D = R_0 × … × R_{k-1} by the
    T-signature (k = 2 in the paper; k-ary per ROADMAP item 2).

    Informativeness, certainty and selection depend only on T(t)
    (Lemmas 3.3/3.4), so tuples with equal signatures are interchangeable;
    the engine works on equivalence classes carrying multiplicities.  This
    matches the paper's "unique join predicates" discussion (§5.3) and is
    what makes TPC-H-sized products tractable. *)

type cls = {
  signature : Jqi_util.Bits.t;  (** T(t) for every tuple of the class *)
  count : int;  (** multiplicity in D *)
  rep : int array;  (** one representative row index per relation *)
}

type t

(** Raised by {!build_kary} when the distinct-profile walk exceeds its
    work limit — the typed refusal for products whose quotient is still
    too large to enumerate. *)
exception Kary_too_large of { work : int; limit : int }

(** Build the quotient of R × P.  The default constructor — an alias for
    {!build_quotient}.  Raises [Invalid_argument] on an empty product. *)
val build : Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> t

(** The reference per-pair scan: one [Tsig.of_tuples] call per tuple of
    R × P, O(|R|·|P|·|Ω|).  Kept as the executable definition and the
    differential oracle for the quotient builders, which must produce
    identical universes (classes, counts and representatives). *)
val build_naive : Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> t

(** Profile-quotient construction: interns every cell of both relations
    into a shared {!Jqi_relational.Dict} code space, groups rows by code
    vector, and computes one signature per distinct-profile *pair* with
    multiplicity |profile_R| × |profile_P| — O(d_R·d_P·|Ω|) signature work
    after an O((|R|+|P|)·arity) encoding pass, where d is the
    distinct-profile count.  Identical output to {!build_naive};
    representatives are the lexicographically smallest member pair of each
    class. *)
val build_quotient :
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> t

(** Multicore {!build_quotient}: the distinct R-profiles are partitioned
    across [domains] (default [Domain.recommended_domain_count ()]);
    produces a universe identical to the sequential builders regardless of
    scheduling.  Worthwhile once d_R·d_P is large enough to amortize the
    domain-spawn cost — `bench/main.exe universe` measures the crossover. *)
val build_parallel :
  ?domains:int -> Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> t

(** Approximate universe for products too large to scan: [pairs] uniform
    random tuple pairs instead of the full R × P.  Signatures absent from
    the sample are invisible, so inference is only guaranteed
    instance-equivalent on the sampled sub-product.  Representatives are
    the lexicographically smallest {e sampled} member of each class, so
    the result depends only on the sampled set, not the PRNG draw order. *)
val build_sampled :
  Jqi_util.Prng.t -> pairs:int ->
  Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> t

(** {2 K-ary construction}

    The universe of D = R_0 × … × R_{k-1} with signatures over every
    cross-relation attribute pair ({!Omega.create_kary} layout).  On two
    relations all of these agree byte-for-byte with their binary
    counterparts. *)

(** K-ary quotient: per-relation profile grouping, then a trie walk over
    distinct-profile k-tuples in the leapfrog spirit — whole suffix
    subtrees that can contribute no further cross bits are folded in via
    precomputed suffix universes instead of being enumerated, and
    pairwise block signatures are cached per profile pair.  Identical
    output to {!build_kary_naive}; byte-identical to {!build} on k = 2.
    Raises {!Kary_too_large} when the walk exceeds [limit] (default
    2·10⁷) class merges, and [Invalid_argument] on fewer than two
    relations or an empty product. *)
val build_kary : ?limit:int -> Jqi_relational.Relation.t list -> t

(** The reference k-way scan — one signature per raw tuple of ∏ R_i.
    Exponential; the differential oracle for {!build_kary}. *)
val build_kary_naive : Jqi_relational.Relation.t list -> t

(** K-ary {!build_sampled}: [tuples] uniform random row vectors.  On two
    relations it draws the same PRNG sequence as [build_sampled], so the
    two agree given equal seeds.  Raises [Invalid_argument] on a
    non-positive sample size, fewer than two relations, or an empty
    relation. *)
val build_sampled_kary :
  Jqi_util.Prng.t -> tuples:int -> Jqi_relational.Relation.t list -> t

(** Assemble a binary universe directly from (signature, multiplicity,
    representative) triples; duplicate signatures are merged (keeping the
    first representative).  Meant for tests and the minimax examples. *)
val of_signature_list :
  ?relations:Jqi_relational.Relation.t * Jqi_relational.Relation.t ->
  Omega.t ->
  (Jqi_util.Bits.t * int * (int * int)) list ->
  t

(** K-ary {!of_signature_list}: representatives carry one row index per
    relation of [omega].  Raises [Invalid_argument] on a representative
    or relation count mismatching [omega]. *)
val of_ksignature_list :
  ?relations:Jqi_relational.Relation.t array ->
  Omega.t ->
  (Jqi_util.Bits.t * int * int array) list ->
  t

(** {2 Incremental Ω maintenance under churn}

    [apply_delta u [(i, d); …]] folds each delta into the universe in
    list order: relation [i]'s removed rows re-join into their profile
    groups and decrement class multiplicities (classes reaching zero
    retire), added rows land in an existing signature class or mint a
    new one, and representatives are kept lexicographically smallest by
    min-merge — with a targeted repair pass when a deletion hits a
    representative row.  The result is {e byte-identical} to a
    from-scratch {!build}/{!build_kary} over the post-delta relations
    (same classes, counts and representatives; pinned differentially in
    test/test_churn.ml), at a per-batch cost proportional to the
    changed rows' profile combinations rather than the whole product —
    `bench churn` measures the gap and the crossover batch size.

    A signature-interning cache (dictionary + per-row code vectors)
    rides along the universe chain, so only the first delta after a
    fresh build pays an encoding pass.  Deltas on [Paged] relations
    mutate the backing store in place (see {!Relation.apply_delta}) —
    the pre-delta universe's relations become stale views.

    Raises [Invalid_argument] when the universe was built without
    relations, on an unknown relation index, an arity-mismatched row, a
    remove matching no row, or a delta emptying the product. *)
val apply_delta : t -> (int * Jqi_relational.Delta.t) list -> t

val omega : t -> Omega.t
val classes : t -> cls array
val n_classes : t -> int
val cls : t -> int -> cls

(** |D|, the sum of class multiplicities. *)
val total_tuples : t -> int

(** Number of relations k of the underlying Ω. *)
val n_relations : t -> int

(** The relation pair, when the universe is binary (k = 2) and was built
    from actual relations; [None] on k-ary universes. *)
val relations :
  t -> (Jqi_relational.Relation.t * Jqi_relational.Relation.t) option

(** All k relations, when the universe was built from actual relations. *)
val relation_array : t -> Jqi_relational.Relation.t array option

val signature : t -> int -> Jqi_util.Bits.t
val count : t -> int -> int

(** Representative tuple pair of a class, when the universe is binary and
    was built from actual relations; [None] on k-ary universes (use
    {!representative_rows}). *)
val representative :
  t -> int -> (Jqi_relational.Tuple.t * Jqi_relational.Tuple.t) option

(** Representative tuples of a class, one per relation, when the universe
    was built from actual relations. *)
val representative_rows : t -> int -> Jqi_relational.Tuple.t array option

(** Class of a signature, if any — binary search over the sorted class
    array, O(log classes). *)
val find_class : t -> Jqi_util.Bits.t -> int option

(** Classes whose signature contains θ — the classes θ selects. *)
val selected_classes : t -> Jqi_util.Bits.t -> int list

(** Instance equivalence (§3.3): θ1 and θ2 select the same classes of D. *)
val equivalent : t -> Jqi_util.Bits.t -> Jqi_util.Bits.t -> bool

(** Join ratio (§5.3): mean size of the distinct T-signatures in D. *)
val join_ratio : t -> float

(** The distinct signatures — the boxed lattice nodes of Figure 4. *)
val signatures : t -> Jqi_util.Bits.t list

val pp : Format.formatter -> t -> unit
