(* Brute-force reference implementations of the §3 definitions.

   These enumerate C(S) ⊆ PP(Ω) explicitly, so they are exponential in |Ω|
   and only usable on small instances.  They exist to validate the
   polynomial characterizations (Lemmas 3.2-3.4) in the test suite and to
   ground the minimax strategy. *)

module Bits = Jqi_util.Bits

(* C(S): all predicates consistent with a sample given as signature lists. *)
let consistent_predicates omega ~pos ~neg =
  List.filter
    (fun theta ->
      List.for_all (fun s -> Tsig.selects theta s) pos
      && List.for_all (fun s -> not (Tsig.selects theta s)) neg)
    (Omega.all_predicates omega)

let consistent_with_state state =
  let u = State.universe state in
  let pos =
    (* The positive signatures are recoverable from history. *)
    List.filter_map
      (fun (i, lbl) ->
        if lbl = Sample.Positive then Some (Universe.signature u i) else None)
      (State.history state)
  in
  consistent_predicates (Universe.omega u) ~pos ~neg:(State.negatives state)

(* Cert±(S) by definition: quantify over every θ ∈ C(S). *)
let certain_pos_def cs s = cs <> [] && List.for_all (fun theta -> Tsig.selects theta s) cs
let certain_neg_def cs s = cs <> [] && List.for_all (fun theta -> not (Tsig.selects theta s)) cs

let certain_label_def cs s =
  if certain_pos_def cs s then Some Sample.Positive
  else if certain_neg_def cs s then Some Sample.Negative
  else None

(* Uninf(S) by its original, goal-dependent definition: (t, α) with α the
   goal's label for t is uninformative iff C(S) = C(S ∪ {(t,α)}).  Returns
   the labels, so tests can also check they agree with the goal. *)
let uninformative_def omega ~pos ~neg ~goal s =
  let cs = consistent_predicates omega ~pos ~neg in
  let alpha = if Tsig.selects goal s then Sample.Positive else Sample.Negative in
  let pos', neg' =
    match alpha with
    | Sample.Positive -> (s :: pos, neg)
    | Sample.Negative -> (pos, s :: neg)
  in
  let cs' = consistent_predicates omega ~pos:pos' ~neg:neg' in
  if List.length cs = List.length cs' then Some alpha else None
