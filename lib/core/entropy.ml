(* Entropy of informative tuples (§4.4).

   entropy_S(t) = (min(u+, u−), max(u+, u−)) where u±(t) is the number of
   tuples of D that become uninformative when t is labeled ±.  Lookahead
   depth k generalizes the paper's entropy² (Algorithm 5); (∞,∞) encodes
   "labeling ends the interaction", matching Algorithm 5 lines 3-5.

   Certainty is monotone in the sample (C(S') ⊆ C(S) when S ⊆ S'), so
   tuples uninformative w.r.t. S stay so under any extension; all the
   Uninf(S ∪ …) \ Uninf(S) counts below therefore only ever scan the
   classes informative w.r.t. the current state, which is what keeps the
   lookahead affordable on TPC-H-sized universes.

   Counting convention: the paper's u± values exclude the queried tuples
   themselves — its Figure 5 reports u⁺ = 11 for labeling the ∅-signature
   tuple positively, which certifies all 12 tuples of D0; and the §4.4
   walk-through yields E = {(3,3)} only under that convention.  We follow
   the paper. *)

module Bits = Jqi_util.Bits
module Obs = Jqi_obs.Obs

(* Lookahead-engine counters (doc/OBSERVABILITY.md glossary).  With
   [score ~domains] > 1 the increments race across domains and may lose
   updates; the counts are exact in the default sequential mode. *)
let c_memo_hit = Obs.Counter.make "lookahead.memo_hit"
let c_memo_miss = Obs.Counter.make "lookahead.memo_miss"
let c_branch_cache_hit = Obs.Counter.make "lookahead.branch_cache_hit"
let c_branch_cache_miss = Obs.Counter.make "lookahead.branch_cache_miss"
let c_branch_scans = Obs.Counter.make "lookahead.branch_scans"
let c_leaf_evals = Obs.Counter.make "lookahead.leaf_evals"
let c_scored = Obs.Counter.make "lookahead.candidates_scored"
let c_pruned = Obs.Counter.make "lookahead.candidates_pruned"

type t = { lo : int; hi : int }

let infinity = { lo = max_int; hi = max_int }
let make a b = if a <= b then { lo = a; hi = b } else { lo = b; hi = a }
let is_infinite e = e.lo = max_int

let equal a b = a.lo = b.lo && a.hi = b.hi

(* e dominates e' iff both components are ≥. *)
let dominates a b = a.lo >= b.lo && a.hi >= b.hi

(* Entropies not dominated by any *other* entropy of the set.  Duplicates
   are collapsed first so that equal entropies do not knock each other out. *)
let skyline es =
  let distinct =
    List.fold_left (fun acc e -> if List.exists (equal e) acc then acc else e :: acc) [] es
  in
  List.filter
    (fun e ->
      not (List.exists (fun e' -> (not (equal e e')) && dominates e' e) distinct))
    distinct

let pp ppf e =
  let comp ppf v = if v = max_int then Fmt.string ppf "∞" else Fmt.int ppf v in
  Fmt.pf ppf "(%a,%a)" comp e.lo comp e.hi

(* The paper's selection rule (Algorithm 4 lines 2-3): among a set of
   entropies, the skyline element whose min component is the maximal min.
   When several share that min, keep the largest max. *)
let best es =
  match es with
  | [] -> None
  | es -> (
      let m = List.fold_left (fun acc e -> max acc e.lo) min_int es in
      (* The max-lo element is never dominated, so the filter is nonempty. *)
      match List.filter (fun e -> e.lo = m) (skyline es) with
      | [] -> None
      | c :: cs ->
          Some
            (List.fold_left
               (fun acc e -> if e.hi > acc.hi then e else acc)
               c cs))

(* Tuple-weighted count of the classes in [ids] certain under the
   hypothetical sample; [ids] must all be informative w.r.t. [state], so
   the count is exactly |Uninf(S ∪ extras) \ Uninf(S)| in tuples. *)
let count_newly_certain state ~ids ~tpos ~negs =
  let u = State.universe state in
  List.fold_left
    (fun acc i ->
      if State.certain_label_sig ~tpos ~negs (Universe.signature u i) <> None
      then acc + Universe.count u i
      else acc)
    0 ids

(* u±: tuples becoming uninformative under S ∪ extras ∪ {(t,α)}, net of
   the queried tuples themselves (one per element of extras, plus t). *)
let gains state ~ids ~extras signature =
  let depth = List.length extras + 1 in
  let count extras =
    let tpos, negs = State.extend_virtual state extras in
    count_newly_certain state ~ids ~tpos ~negs - depth
  in
  let u_pos = count ((signature, Sample.Positive) :: extras) in
  let u_neg = count ((signature, Sample.Negative) :: extras) in
  (u_pos, u_neg)

(* ------------------------------------------------------------------ *)
(* Reference engine: the direct transcription of Algorithms 4/5, kept   *)
(* as the differential test oracle for the fast engine below.           *)
(* ------------------------------------------------------------------ *)

(* reference entropy^k for k ≥ 1, the recursive generalization of
   Algorithm 5: for k ≥ 2, for each label α of [cls] consider the extended
   sample; if no informative tuple remains the branch is worth (∞,∞);
   otherwise evaluate entropy^{k-1} (still counting gains relative to the
   original S) of every tuple informative in the branch and keep the best;
   finally return the branch value with the smaller min — the worst case
   over the user's answer (Algorithm 5 lines 13-14). *)
let reference_k state k cls =
  let u = State.universe state in
  let ids0 = State.informative_classes state in
  let sig_of i = Universe.signature u i in
  let informative_subset ids extras =
    let tpos, negs = State.extend_virtual state extras in
    List.filter
      (fun i -> State.certain_label_sig ~tpos ~negs (sig_of i) = None)
      ids
  in
  let rec eval_tuple ~ids ~extras ~k cls =
    if k <= 1 then
      let u_pos, u_neg = gains state ~ids:ids0 ~extras (sig_of cls) in
      make u_pos u_neg
    else
      let branch alpha =
        let extras' = (sig_of cls, alpha) :: extras in
        match informative_subset ids extras' with
        | [] -> infinity
        | is ->
            let es =
              List.map (fun i -> eval_tuple ~ids:is ~extras:extras' ~k:(k - 1) i) is
            in
            (* [is] is nonempty, so [best] returns [Some]. *)
            Option.value ~default:infinity (best es)
      in
      let e_pos = branch Sample.Positive in
      let e_neg = branch Sample.Negative in
      if e_pos.lo <= e_neg.lo then e_pos else e_neg
  in
  eval_tuple ~ids:ids0 ~extras:[] ~k cls

let reference1 state cls = reference_k state 1 cls

(* ------------------------------------------------------------------ *)
(* Fast engine.  Exact same semantics as [reference_k], restructured    *)
(* around three ideas:                                                  *)
(*                                                                      *)
(* 1. Incremental certainty ([State.view]): branches extend the parent  *)
(*    view by one label instead of re-deriving (tpos, negs) from the    *)
(*    root and rescanning every class — monotone certainty means only   *)
(*    the classes informative so far need re-testing, and a negative    *)
(*    label needs just one subset test per class.  The leaf u± counts   *)
(*    fall out of the view for free: a class of the root informative    *)
(*    set becomes uninformative iff it left the view, so               *)
(*    u = W₀ − W(view′) − depth, tuple-weighted.                        *)
(* 2. Canonical-state memoization: subtree values depend only on the    *)
(*    [State.Key] quotient of the extended sample (plus remaining depth *)
(*    and class), and branches of the T-signature lattice converge to   *)
(*    the same quotient constantly — each is evaluated once.            *)
(* 3. Skyline shortcuts: a branch scan stops at (∞,∞) (nothing beats    *)
(*    it), and the worst-case-over-answers rule lets the second branch  *)
(*    stop as soon as its running best min reaches the first branch's   *)
(*    min — the first branch is then the exact result.                  *)
(*                                                                      *)
(* [score] adds the selection-level pruning of Algorithm 4 on top and   *)
(* is what the L1S/L2S/LkS strategies call once per round.              *)
(* ------------------------------------------------------------------ *)

module Memo = Hashtbl.Make (struct
  type t = State.Key.t * int * int (* canonical sample, remaining k, class *)

  let equal (k1, d1, c1) (k2, d2, c2) =
    d1 = d2 && c1 = c2 && State.Key.equal k1 k2

  let hash (k, d, c) = ((State.Key.hash k * 31) + d * 31) + c
end)

module BTbl = Hashtbl.Make (State.Key)

type evaluator = {
  ev_state : State.t;
  ev_k : int;            (* top-level lookahead depth *)
  ev_root : State.view;
  ev_w0 : int;           (* tuple weight of the root informative set *)
  ev_memo : t Memo.t;
  ev_bbest : t BTbl.t;   (* last-level branch values, see [branch_best] *)
}

let evaluator state k =
  let root = State.view state in
  {
    ev_state = state;
    ev_k = k;
    ev_root = root;
    ev_w0 = root.State.vinf_tuples;
    ev_memo = Memo.create 256;
    ev_bbest = BTbl.create 64;
  }

let sig_of ev i = Universe.signature (State.universe ev.ev_state) i

(* Leaf u±: every leaf of one evaluator sits at the same depth
   |extras| + 1 = ev_k, so the memo key (view key, 1, cls) is sound. *)
let leaf ev ~view cls =
  Obs.Counter.incr c_leaf_evals;
  let s = sig_of ev cls in
  let vp = State.view_extend ev.ev_state view (s, Sample.Positive) in
  let vn = State.view_extend ev.ev_state view (s, Sample.Negative) in
  make
    (ev.ev_w0 - vp.State.vinf_tuples - ev.ev_k)
    (ev.ev_w0 - vn.State.vinf_tuples - ev.ev_k)

(* Fold [e] into the running branch best; [best es] of a whole branch is
   (max lo, max hi among that lo), so a running (lo, hi) maximum is exact. *)
let fold_best acc e =
  if e.lo > acc.lo then e
  else if e.lo = acc.lo && e.hi > acc.hi then e
  else acc

(* Best leaf entropy over a branch view — the innermost loop of the whole
   lookahead, so it works on arrays and fused bit tests instead of views:
   every leaf of the branch is scored against the same (tpos, negs), which
   makes the restricted signatures tpos ∩ T(i) shared across all |vinf|²
   certainty tests; with them precomputed, a leaf labeled negative captures
   class i iff restricted(i) ⊆ T(leaf) (one word-wise test, Lemma 3.4) and
   a leaf labeled positive iff restricted(leaf) ⊆ T(i) or
   (restricted(i) ∩ T(leaf)) escapes no old negative — no intermediate
   bitset or list is allocated anywhere in the scan.  The scan stops at
   (∞,∞) (nothing beats it — the stop is exact) or once the running best's
   min reaches [cut] (a lower bound the caller only uses to discard the
   branch). *)
let branch_best ev ~view ~cut =
  Obs.Counter.incr c_branch_scans;
  let u = State.universe ev.ev_state in
  let ids = Array.of_list view.State.vinf in
  let n = Array.length ids in
  let sigs = Array.map (Universe.signature u) ids in
  let counts = Array.map (Universe.count u) ids in
  let tpos = view.State.vtpos in
  let negs = view.State.vnegs in
  let restricted = Array.map (Bits.inter tpos) sigs in
  let base = ev.ev_w0 - view.State.vinf_tuples - ev.ev_k in
  let score j =
    (* tpos ∩ T(j), the positive branch's new T(S+), is restricted(j). *)
    let s = sigs.(j) and tpos' = restricted.(j) in
    let gain_pos = ref 0 and gain_neg = ref 0 in
    for i = 0 to n - 1 do
      if Bits.subset restricted.(i) s then gain_neg := !gain_neg + counts.(i);
      if
        Bits.subset tpos' sigs.(i)
        || List.exists (Bits.inter_subset restricted.(i) s) negs
      then gain_pos := !gain_pos + counts.(i)
    done;
    make (base + !gain_pos) (base + !gain_neg)
  in
  let rec go acc j =
    if j >= n || is_infinite acc || acc.lo >= cut then acc
    else go (fold_best acc (score j)) (j + 1)
  in
  go (score 0) 1

let rec eval ev ~view ~vkey ~k cls =
  let key = (vkey, k, cls) in
  match Memo.find_opt ev.ev_memo key with
  | Some e ->
      Obs.Counter.incr c_memo_hit;
      e
  | None ->
      Obs.Counter.incr c_memo_miss;
      let e =
        if k <= 1 then leaf ev ~view cls
        else begin
          let s = sig_of ev cls in
          let e_pos = branch ev ~view ~k (s, Sample.Positive) ~cut:max_int in
          (* Worst case over the answer keeps the branch with the smaller
             min, so once the negative branch's running best min reaches
             e_pos.lo the result is e_pos exactly. *)
          let e_neg = branch ev ~view ~k (s, Sample.Negative) ~cut:e_pos.lo in
          if e_pos.lo <= e_neg.lo then e_pos else e_neg
        end
      in
      Memo.replace ev.ev_memo key e;
      e

(* Best entropy^{k-1} over the classes left informative after labeling;
   (∞,∞) when none remain (Algorithm 5 lines 3-5).  The scan stops early
   at (∞,∞), or once the running best's min reaches [cut] (the caller
   then discards this branch — see [eval]). *)
and branch ev ~view ~k (s, alpha) ~cut =
  let view' = State.view_extend ev.ev_state view (s, alpha) in
  match view'.State.vinf with
  | [] -> infinity
  | i0 :: rest ->
      if k = 2 then begin
        (* Last level before the leaves: the arena scan, memoized on the
           canonical key.  Cut-truncated scans are lower bounds (only good
           for discarding this branch), so only complete scans — infinity
           is always complete, a scan ending below [cut] ran dry — are
           stored. *)
        let vkey' = State.view_key view' in
        match BTbl.find_opt ev.ev_bbest vkey' with
        | Some e ->
            Obs.Counter.incr c_branch_cache_hit;
            e
        | None ->
            Obs.Counter.incr c_branch_cache_miss;
            let e = branch_best ev ~view:view' ~cut in
            if is_infinite e || e.lo < cut then BTbl.replace ev.ev_bbest vkey' e;
            e
      end
      else
        let vkey' = State.view_key view' in
        let rec go acc = function
          | [] -> acc
          | _ when is_infinite acc || acc.lo >= cut -> acc
          | i :: is ->
              go (fold_best acc (eval ev ~view:view' ~vkey:vkey' ~k:(k - 1) i)) is
        in
        go (eval ev ~view:view' ~vkey:vkey' ~k:(k - 1) i0) rest

(* Drop-in fast entropy^k of a single class (fresh memo per call; use
   [score] to share the memo across a whole candidate round). *)
let entropy_k state k cls =
  let ev = evaluator state k in
  eval ev ~view:ev.ev_root ~vkey:(State.view_key ev.ev_root) ~k cls

let entropy1 state cls = entropy_k state 1 cls
let entropy2 state cls = entropy_k state 2 cls

(* Score one candidate at top level with Algorithm 4's selection-level
   pruning: the chosen class maximizes the entropy min, so once a
   candidate's first branch min drops strictly below the best min seen so
   far its exact value cannot matter — it can neither win nor tie — and
   the second branch is skipped ([None]).  Exact values update
   [best_lo]. *)
let score_candidate ev ~best_lo cls =
  let e =
    if ev.ev_k <= 1 then begin
      let s = sig_of ev cls in
      let vp = State.view_extend ev.ev_state ev.ev_root (s, Sample.Positive) in
      let u_pos = ev.ev_w0 - vp.State.vinf_tuples - 1 in
      if u_pos < !best_lo then None
      else
        let vn = State.view_extend ev.ev_state ev.ev_root (s, Sample.Negative) in
        Some (make u_pos (ev.ev_w0 - vn.State.vinf_tuples - 1))
    end
    else begin
      let s = sig_of ev cls in
      let e_pos = branch ev ~view:ev.ev_root ~k:ev.ev_k (s, Sample.Positive) ~cut:max_int in
      if e_pos.lo < !best_lo then None
      else begin
        let e_neg = branch ev ~view:ev.ev_root ~k:ev.ev_k (s, Sample.Negative) ~cut:e_pos.lo in
        let e = if e_pos.lo <= e_neg.lo then e_pos else e_neg in
        if e.lo < !best_lo then None else Some e
      end
    end
  in
  (match e with
  | Some e ->
      Obs.Counter.incr c_scored;
      best_lo := max !best_lo e.lo
  | None -> Obs.Counter.incr c_pruned);
  (cls, e)

let score_chunk state k classes =
  let ev = evaluator state k in
  let best_lo = ref min_int in
  List.map (score_candidate ev ~best_lo) classes

(* Split [l] into [n] contiguous chunks (some possibly empty). *)
let chunks n l =
  let len = List.length l in
  let size = (len + n - 1) / n in
  let rec take k acc l =
    if k = 0 then (List.rev acc, l)
    else match l with [] -> (List.rev acc, []) | x :: xs -> take (k - 1) (x :: acc) xs
  in
  let rec go n l = if n = 0 then [] else
    let c, rest = take size [] l in
    c :: go (n - 1) rest
  in
  go n l

(* Entropy^k of every informative class of [state], ascending class order.
   [None] marks a candidate pruned as strictly worse (its entropy min is
   below another candidate's): pruned entries can never be the skyline
   best nor tie with it, so selection over the [Some] entries chooses
   exactly the class the reference engine does.  With [domains] > 1 the
   candidates are scored in contiguous chunks across that many domains,
   each with its own memo and its own (locally sound) pruning; chunk
   results are concatenated in class order, every [Some] entry is exact,
   and the downstream choice is identical to the sequential run's. *)
let score ?(domains = 1) state ~k =
  let root = State.view state in
  match root.State.vinf with
  | [] -> []
  | classes ->
      if domains <= 1 || List.length classes <= 1 then score_chunk state k classes
      else
        let parts =
          List.filter (fun c -> c <> []) (chunks (min domains (List.length classes)) classes)
        in
        let handles =
          List.map (fun part -> Domain.spawn (fun () -> score_chunk state k part)) parts
        in
        List.concat_map Domain.join handles
(* R11 waiver: deterministic fork/join over immutable state, mirroring
   [Universe.build_parallel]; [domains = 1] (the default) never spawns. *)
[@@lint.allow "R11"]
