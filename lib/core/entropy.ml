(* Entropy of informative tuples (§4.4).

   entropy_S(t) = (min(u+, u−), max(u+, u−)) where u±(t) is the number of
   tuples of D that become uninformative when t is labeled ±.  Lookahead
   depth k generalizes the paper's entropy² (Algorithm 5); (∞,∞) encodes
   "labeling ends the interaction", matching Algorithm 5 lines 3-5.

   Certainty is monotone in the sample (C(S') ⊆ C(S) when S ⊆ S'), so
   tuples uninformative w.r.t. S stay so under any extension; all the
   Uninf(S ∪ …) \ Uninf(S) counts below therefore only ever scan the
   classes informative w.r.t. the current state, which is what keeps the
   lookahead affordable on TPC-H-sized universes.

   Counting convention: the paper's u± values exclude the queried tuples
   themselves — its Figure 5 reports u⁺ = 11 for labeling the ∅-signature
   tuple positively, which certifies all 12 tuples of D0; and the §4.4
   walk-through yields E = {(3,3)} only under that convention.  We follow
   the paper. *)

module Bits = Jqi_util.Bits

type t = { lo : int; hi : int }

let infinity = { lo = max_int; hi = max_int }
let make a b = if a <= b then { lo = a; hi = b } else { lo = b; hi = a }
let is_infinite e = e.lo = max_int

let equal a b = a.lo = b.lo && a.hi = b.hi

(* e dominates e' iff both components are ≥. *)
let dominates a b = a.lo >= b.lo && a.hi >= b.hi

(* Entropies not dominated by any *other* entropy of the set.  Duplicates
   are collapsed first so that equal entropies do not knock each other out. *)
let skyline es =
  let distinct =
    List.fold_left (fun acc e -> if List.exists (equal e) acc then acc else e :: acc) [] es
  in
  List.filter
    (fun e ->
      not (List.exists (fun e' -> (not (equal e e')) && dominates e' e) distinct))
    distinct

let pp ppf e =
  let comp ppf v = if v = max_int then Fmt.string ppf "∞" else Fmt.int ppf v in
  Fmt.pf ppf "(%a,%a)" comp e.lo comp e.hi

(* The paper's selection rule (Algorithm 4 lines 2-3): among a set of
   entropies, the skyline element whose min component is the maximal min.
   When several share that min, keep the largest max. *)
let best es =
  match es with
  | [] -> None
  | es ->
      let m = List.fold_left (fun acc e -> max acc e.lo) min_int es in
      let candidates = List.filter (fun e -> e.lo = m) (skyline es) in
      Some
        (List.fold_left
           (fun acc e -> if e.hi > acc.hi then e else acc)
           (List.hd candidates) candidates)

(* Tuple-weighted count of the classes in [ids] certain under the
   hypothetical sample; [ids] must all be informative w.r.t. [state], so
   the count is exactly |Uninf(S ∪ extras) \ Uninf(S)| in tuples. *)
let count_newly_certain state ~ids ~tpos ~negs =
  let u = State.universe state in
  List.fold_left
    (fun acc i ->
      if State.certain_label_sig ~tpos ~negs (Universe.signature u i) <> None
      then acc + Universe.count u i
      else acc)
    0 ids

(* u±: tuples becoming uninformative under S ∪ extras ∪ {(t,α)}, net of
   the queried tuples themselves (one per element of extras, plus t). *)
let gains state ~ids ~extras signature =
  let depth = List.length extras + 1 in
  let count extras =
    let tpos, negs = State.extend_virtual state extras in
    count_newly_certain state ~ids ~tpos ~negs - depth
  in
  let u_pos = count ((signature, Sample.Positive) :: extras) in
  let u_neg = count ((signature, Sample.Negative) :: extras) in
  (u_pos, u_neg)

(* entropy¹: direct uninformativeness gains of labeling [cls]. *)
let entropy1 state cls =
  let ids = State.informative_classes state in
  let u_pos, u_neg =
    gains state ~ids ~extras:[] (Universe.signature (State.universe state) cls)
  in
  make u_pos u_neg

(* entropy^k for k ≥ 1, the recursive generalization of Algorithm 5:
   entropy¹ is [entropy1]; for k ≥ 2, for each label α of [cls] consider
   the extended sample; if no informative tuple remains the branch is worth
   (∞,∞); otherwise evaluate entropy^{k-1} (still counting gains relative
   to the original S) of every tuple informative in the branch and keep the
   best; finally return the branch value with the smaller min — the worst
   case over the user's answer (Algorithm 5 lines 13-14). *)
let entropy_k state k cls =
  let u = State.universe state in
  let ids0 = State.informative_classes state in
  let sig_of i = Universe.signature u i in
  let informative_subset ids extras =
    let tpos, negs = State.extend_virtual state extras in
    List.filter
      (fun i -> State.certain_label_sig ~tpos ~negs (sig_of i) = None)
      ids
  in
  let rec eval_tuple ~ids ~extras ~k cls =
    if k <= 1 then
      let u_pos, u_neg = gains state ~ids:ids0 ~extras (sig_of cls) in
      make u_pos u_neg
    else
      let branch alpha =
        let extras' = (sig_of cls, alpha) :: extras in
        match informative_subset ids extras' with
        | [] -> infinity
        | is ->
            let es =
              List.map (fun i -> eval_tuple ~ids:is ~extras:extras' ~k:(k - 1) i) is
            in
            Option.get (best es)
      in
      let e_pos = branch Sample.Positive in
      let e_neg = branch Sample.Negative in
      if e_pos.lo <= e_neg.lo then e_pos else e_neg
  in
  eval_tuple ~ids:ids0 ~extras:[] ~k cls

let entropy2 state cls = entropy_k state 2 cls
