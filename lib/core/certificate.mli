(** Certificates: an inclusion-minimal subsample that still decides every
    tuple of D the same way the full session did — the evidence an
    interactive system shows the user as "why this query". *)

type t = {
  examples : (int * Sample.label) list;  (** chronological (class, label) *)
  predicate : Jqi_util.Bits.t;  (** the certified T(S+) *)
}

val size : t -> int

(** Minimize the history of a finished state.  Raises [Invalid_argument]
    if informative tuples remain.  Greedy (latest-first), so the result is
    inclusion-minimal but not necessarily cardinality-minimal. *)
val of_state : State.t -> t

(** Dropping any example leaves some tuple of D undecided. *)
val is_irredundant : Universe.t -> t -> bool

val pp : Universe.t -> Format.formatter -> t -> unit
