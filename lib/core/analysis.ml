(* Instance analysis: the pre-flight report for an inference session.

   The paper's §5.3 explains how instance structure — the join ratio, the
   signature-size distribution, the lattice shape — determines how many
   questions each strategy needs.  This module computes that structure for
   a concrete instance and turns §5.3's findings into a strategy
   recommendation, so a user (or the CLI) can decide whether lookahead is
   worth its compute before starting to label. *)

module Bits = Jqi_util.Bits

type t = {
  product_size : int;
  n_classes : int;
  join_ratio : float;
  max_signature_size : int;
  size_histogram : (int * int) array;  (* (signature size, class count) *)
  n_maximal : int;  (* ⊆-maximal signatures: TD's opening question pool *)
  has_empty_signature : bool;  (* a ∅-signature tuple: BU's one-shot case *)
  non_nullable_count : int option;  (* lattice nodes; None if too costly *)
  recommendation : string;
}

(* §5.3, distilled: join ratio ≈ 1 means a thin lattice where local
   strategies match lookahead; a bigger ratio means lookahead pays. *)
let recommend ~join_ratio ~n_classes =
  if join_ratio <= 1.05 then
    "TD: the lattice is almost flat (join ratio ≈ 1), lookahead cannot prune \
     more than the local order does (§5.3)"
  else if n_classes > 400 then
    "TD or L1S: the class count makes L2S's per-question cost significant; \
     escalate to L2S only if labels are very expensive"
  else if join_ratio >= 1.5 then
    "L2S (or hybrid): a rich lattice (join ratio ≥ 1.5) is where lookahead \
     saves the most questions (§5.3)"
  else "L1S: moderate lattice; one-step lookahead captures most of the gain"

let max_lattice_signature = 16

let analyze universe =
  let sigs = Universe.signatures universe in
  let sizes = List.map Bits.cardinal sigs in
  let max_size = List.fold_left max 0 sizes in
  let histogram =
    (* One counting pass instead of a filter per size bucket. *)
    let counts = Array.make (max_size + 1) 0 in
    List.iter (fun s -> counts.(s) <- counts.(s) + 1) sizes;
    Array.mapi (fun k n -> (k, n)) counts
  in
  let join_ratio = Universe.join_ratio universe in
  let n_classes = Universe.n_classes universe in
  {
    product_size = Universe.total_tuples universe;
    n_classes;
    join_ratio;
    max_signature_size = max_size;
    size_histogram = histogram;
    n_maximal = List.length (Lattice.maximal_signatures sigs);
    has_empty_signature = List.exists Bits.is_empty sigs;
    non_nullable_count =
      (* The enumeration is exponential in the largest signature; skip it
         when a signature is wide. *)
      (if max_size <= max_lattice_signature then
         Some (Lattice.non_nullable_count sigs)
       else None);
    recommendation = recommend ~join_ratio ~n_classes;
  }

let pp ppf a =
  Fmt.pf ppf
    "@[<v>|D| = %d tuples in %d signature classes@,\
     join ratio %.3f, max signature size %d@,\
     signature sizes: %a@,\
     %d ⊆-maximal signatures%s%s@,\
     recommended strategy: %s@]"
    a.product_size a.n_classes a.join_ratio a.max_signature_size
    (Fmt.array ~sep:(Fmt.any ", ") (fun ppf (k, n) -> Fmt.pf ppf "%d:%d" k n))
    a.size_histogram a.n_maximal
    (if a.has_empty_signature then ", ∅-signature tuple present" else "")
    (match a.non_nullable_count with
    | Some n -> Printf.sprintf ", %d non-nullable predicates" n
    | None -> "")
    a.recommendation
