(** Instance analysis: computes the structure §5.3 says governs question
    counts (join ratio, signature-size distribution, lattice shape) and
    turns its findings into a strategy recommendation. *)

type t = {
  product_size : int;
  n_classes : int;
  join_ratio : float;
  max_signature_size : int;
  size_histogram : (int * int) array;  (** (signature size, class count) *)
  n_maximal : int;  (** ⊆-maximal signatures — TD's opening pool *)
  has_empty_signature : bool;  (** BU can win in one question *)
  non_nullable_count : int option;  (** lattice size; None if too costly *)
  recommendation : string;
}

(** Signatures wider than this skip the exponential lattice count. *)
val max_lattice_signature : int

val analyze : Universe.t -> t
val pp : Format.formatter -> t -> unit
