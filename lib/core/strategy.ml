(* Strategies for presenting tuples to the user (§4).

   A strategy maps the current inference state to the class of D it wants
   labeled next, or [None] when no informative tuple remains (the halt
   condition Γ of Algorithm 1). *)

module Bits = Jqi_util.Bits
module Prng = Jqi_util.Prng
module Obs = Jqi_obs.Obs

let c_choices = Obs.Counter.make "strategy.choices"

type t = { name : string; choose : State.t -> int option }

let make name choose = { name; choose }
let name t = t.name

let choose t state =
  Obs.Counter.incr c_choices;
  t.choose state

let sig_of state i = Universe.signature (State.universe state) i
let size_of state i = Bits.cardinal (sig_of state i)

(* RND: a uniformly random informative tuple (the baseline of §4.1). *)
let rnd prng =
  make "RND" (fun state ->
      match State.informative_classes state with
      | [] -> None
      | is -> Some (Prng.pick_list prng is))

let min_by f = function
  | [] -> None
  | x :: xs ->
      Some
        (fst
           (List.fold_left
              (fun (bx, bv) y ->
                let v = f y in
                if v < bv then (y, v) else (bx, bv))
              (x, f x) xs))

(* BU (Algorithm 2): an informative tuple with the smallest |T(t)| — walk
   the lattice from ∅ upward. *)
let bu_choose state =
  min_by (size_of state) (State.informative_classes state)

let bu = make "BU" bu_choose

(* TD (Algorithm 3): while no positive example has been given, ask about
   tuples whose signature is ⊆-maximal in D; afterwards behave like BU. *)
let td_choose state =
  if State.has_positive state then bu_choose state
  else begin
    let u = State.universe state in
    let all_sigs = Universe.signatures u in
    let is_maximal s =
      not
        (List.exists
           (fun s' -> (not (Bits.equal s s')) && Bits.subset s s')
           all_sigs)
    in
    match
      List.filter (fun i -> is_maximal (sig_of state i))
        (State.informative_classes state)
    with
    | [] -> bu_choose state
    | i :: _ -> Some i
  end

let td = make "TD" td_choose

(* Shared skeleton of the lookahead-skyline strategies (Algorithms 4/6):
   score every informative tuple with an entropy, keep those achieving the
   maximal min on the skyline, return one of them. *)
let skyline_choose entropy_of state =
  match State.informative_classes state with
  | [] -> None
  | is ->
      let scored = List.map (fun i -> (i, entropy_of state i)) is in
      let best = Entropy.best (List.map snd scored) in
      Option.bind best (fun e ->
          List.find_map
            (fun (i, ei) -> if Entropy.equal ei e then Some i else None)
            scored)

(* Same selection over the fast engine's round scores.  Pruned candidates
   ([None]) are strictly worse than some exact one, so the best entropy
   and the first class achieving it are those of [skyline_choose] over the
   reference engine — the property pinned by the differential suite. *)
let skyline_choose_fast ?domains k state =
  let scored = Entropy.score ?domains state ~k in
  let best = Entropy.best (List.filter_map snd scored) in
  Option.bind best (fun e ->
      List.find_map
        (fun (i, ei) ->
          match ei with
          | Some ei when Entropy.equal ei e -> Some i
          | _ -> None)
        scored)

let l1s = make "L1S" (skyline_choose_fast 1)
let l2s = make "L2S" (skyline_choose_fast 2)

(* LkS for arbitrary lookahead depth (the paper evaluates k ≤ 2 and notes
   the generalization). *)
let lks k =
  if k < 1 then invalid_arg "Strategy.lks: k must be >= 1";
  make (Printf.sprintf "L%dS" k) (skyline_choose_fast k)

(* LkS with candidate scoring fanned out over [domains] domains, following
   the [Universe.build_parallel] pattern; ties still break by class index,
   so the chosen classes are identical to the sequential run. *)
let lks_par ~domains k =
  if k < 1 then invalid_arg "Strategy.lks_par: k must be >= 1";
  if domains < 1 then invalid_arg "Strategy.lks_par: domains must be >= 1";
  make (Printf.sprintf "L%dSx%d" k domains) (skyline_choose_fast ~domains k)

(* LkS over the reference engine — the differential oracle's strategies. *)
let lks_reference k =
  if k < 1 then invalid_arg "Strategy.lks_reference: k must be >= 1";
  make
    (Printf.sprintf "L%dS-ref" k)
    (skyline_choose (fun st i -> Entropy.reference_k st k i))

(* IGS (extension; the paper's §7 suggests probabilistic lookahead as
   future work): estimate, by sampling predicates uniformly from C(S), the
   probability p that a tuple is selected by the goal, and ask about the
   tuple whose split is most balanced — maximal expected halving of the
   version space.  Sampling is rejection-free: C(S) is exactly the subsets
   of T(S+) that select no negative example, so we draw subsets of T(S+)
   and filter. *)
let igs ?(samples = 256) prng =
  make "IGS" (fun state ->
      match State.informative_classes state with
      | [] -> None
      | is ->
          let tpos = State.tpos state in
          let negs = State.negatives state in
          let positions = Array.of_list (Bits.elements tpos) in
          let width = Bits.width tpos in
          let consistent = ref [] in
          let n_consistent = ref 0 in
          let attempts = samples * 4 in
          let tries = ref 0 in
          while !n_consistent < samples && !tries < attempts do
            incr tries;
            let theta =
              Array.fold_left
                (fun acc pos -> if Prng.bool prng then Bits.add acc pos else acc)
                (Bits.empty width) positions
            in
            if List.for_all (fun n -> not (Bits.subset theta n)) negs then begin
              consistent := theta :: !consistent;
              incr n_consistent
            end
          done;
          let thetas = !consistent in
          if thetas = [] then
            (* Degenerate sample: fall back to the local choice. *)
            bu_choose state
          else begin
            let score i =
              let s = sig_of state i in
              let sel =
                List.fold_left
                  (fun acc th -> if Bits.subset th s then acc + 1 else acc)
                  0 thetas
              in
              let n = List.length thetas in
              min sel (n - sel)
            in
            min_by (fun i -> -score i) is
          end)

(* Hybrid (extension): TD's cheap maximal-node sweep while no positive
   example exists, then the expensive lookahead once the search is framed.
   Motivated by the §5.3 discussion — TD's strength is the no-positive
   phase, L2S's the refinement phase — so the hybrid buys most of L2S's
   interaction savings at a fraction of its cost. *)
let hybrid =
  make "TD+L2S" (fun state ->
      if State.has_positive state then choose l2s state else choose td state)

let all ?(prng_seed = 42) () =
  [ rnd (Prng.create prng_seed); bu; td; l1s; l2s ]

(* Strategy lookup by the CLI/protocol spelling.  The one constructor the
   CLI offers that this cannot express is the --engine selection behind
   l1s/l2s; callers that need it (bin/jqinfer) keep their own table. *)
let of_name ?(seed = 42) name =
  match String.lowercase_ascii (String.trim name) with
  | "bu" -> Some bu
  | "td" -> Some td
  | "l1s" -> Some l1s
  | "l2s" -> Some l2s
  (* "td+l2s" is [Strategy.name hybrid] — accepted so persisted sessions
     (which store the display name) resolve back to the strategy. *)
  | "hybrid" | "td+l2s" -> Some hybrid
  | "rnd" -> Some (rnd (Prng.create seed))
  | "igs" -> Some (igs (Prng.create seed))
  | _ -> None
