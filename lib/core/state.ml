(* Mutable inference state over the signature quotient.

   Tracks the current sample in the compact form that Lemmas 3.3/3.4 need:
   T(S+) and the signatures of negative examples.  All the certain /
   informative tests of §3.4 run against this state in
   O(classes × negatives) bitset operations. *)

module Bits = Jqi_util.Bits
module Obs = Jqi_obs.Obs

(* Certain-tuple closures: one counter tick per whole-universe certainty
   scan / per incremental view extension, not per class — the per-class
   subset tests are the hot path the <2% overhead budget protects. *)
let c_certainty_scans = Obs.Counter.make "state.certainty_scans"
let c_view_extends = Obs.Counter.make "state.view_extends"
let c_labels = Obs.Counter.make "state.labels"

exception Inconsistent of { class_id : int; label : Sample.label }

type t = {
  universe : Universe.t;
  mutable tpos : Bits.t;       (* T(S+); Ω while S+ is empty *)
  mutable negs : Bits.t list;  (* distinct signatures of negative examples *)
  labels : Sample.label option array;
  mutable history : (int * Sample.label) list;  (* newest first *)
}

let create universe =
  {
    universe;
    tpos = Omega.full (Universe.omega universe);
    negs = [];
    labels = Array.make (Universe.n_classes universe) None;
    history = [];
  }

let copy t =
  {
    universe = t.universe;
    tpos = t.tpos;
    negs = t.negs;
    labels = Array.copy t.labels;
    history = t.history;
  }

let universe t = t.universe
let tpos t = t.tpos
let negatives t = t.negs
let history t = List.rev t.history
let n_interactions t = List.length t.history
let label_of t i = t.labels.(i)

(* Lemma 3.3: t ∈ Cert+(S) iff T(S+) ⊆ T(t). *)
let certain_pos_sig ~tpos s = Bits.subset tpos s

(* Lemma 3.4: t ∈ Cert−(S) iff ∃ t' ∈ S−. T(S+) ∩ T(t) ⊆ T(t'). *)
let certain_neg_sig ~tpos ~negs s =
  let restricted = Bits.inter tpos s in
  List.exists (fun neg -> Bits.subset restricted neg) negs

let certain_label_sig ~tpos ~negs s =
  if certain_pos_sig ~tpos s then Some Sample.Positive
  else if certain_neg_sig ~tpos ~negs s then Some Sample.Negative
  else None

let certain_label t i =
  certain_label_sig ~tpos:t.tpos ~negs:t.negs (Universe.signature t.universe i)

let informative t i = certain_label t i = None

let informative_classes t =
  Obs.Counter.incr c_certainty_scans;
  let out = ref [] in
  for i = Universe.n_classes t.universe - 1 downto 0 do
    if informative t i then out := i :: !out
  done;
  !out

let has_informative t =
  let n = Universe.n_classes t.universe in
  let rec go i = i < n && (informative t i || go (i + 1)) in
  go 0

let has_positive t = List.exists (fun (_, l) -> l = Sample.Positive) t.history

(* Algorithm 1 lines 6-7: labeling against a certain label would make the
   sample inconsistent. *)
let label t i lbl =
  Obs.Counter.incr c_labels;
  (match certain_label t i with
  | Some certain when certain <> lbl -> raise (Inconsistent { class_id = i; label = lbl })
  | _ -> ());
  let s = Universe.signature t.universe i in
  (match lbl with
  | Sample.Positive -> t.tpos <- Bits.inter t.tpos s
  | Sample.Negative ->
      if not (List.exists (Bits.equal s) t.negs) then t.negs <- s :: t.negs);
  t.labels.(i) <- Some lbl;
  t.history <- (i, lbl) :: t.history

(* Number of tuples of D that are uninformative (= certain, Lemma 3.2)
   under a hypothetical sample (T(S+), negatives).  Tuple-weighted: a class
   counts with its multiplicity, matching the paper's u± over D. *)
let uninf_tuples_with u ~tpos ~negs =
  let acc = ref 0 in
  Array.iter
    (fun (c : Universe.cls) ->
      if certain_label_sig ~tpos ~negs c.signature <> None then
        acc := !acc + c.count)
    (Universe.classes u);
  !acc

let uninf_tuples t = uninf_tuples_with t.universe ~tpos:t.tpos ~negs:t.negs

(* Hypothetical sample obtained by adding labeled signatures to [t],
   without mutating it.  Used by the reference lookahead engine. *)
let extend_virtual t extras =
  List.fold_left
    (fun (tpos, negs) (s, lbl) ->
      match lbl with
      | Sample.Positive -> (Bits.inter tpos s, negs)
      | Sample.Negative -> (tpos, s :: negs))
    (t.tpos, t.negs) extras

(* Canonical form of a hypothetical sample: two samples with equal keys
   have the same Cert+/Cert− sets (Lemmas 3.3/3.4 depend only on T(S+)
   and on the ⊆-maximal negative signatures restricted to T(S+)), hence
   the same informative classes and the same game/lookahead values.  The
   minimax solver and the fast lookahead engine both memoize on it. *)
module Key = struct
  type t = { tpos : Bits.t; negs : Bits.t list }

  let canonical ~tpos ~negs =
    let restricted = List.map (Bits.inter tpos) negs in
    let maximal =
      List.filter
        (fun s ->
          not
            (List.exists
               (fun s' -> (not (Bits.equal s s')) && Bits.subset s s')
               restricted))
        restricted
    in
    let distinct =
      List.fold_left
        (fun acc s -> if List.exists (Bits.equal s) acc then acc else s :: acc)
        [] maximal
    in
    { tpos; negs = List.sort Bits.compare distinct }

  let equal a b = Bits.equal a.tpos b.tpos && List.equal Bits.equal a.negs b.negs

  let hash k =
    List.fold_left (fun acc s -> (acc * 31) + Bits.hash s) (Bits.hash k.tpos) k.negs
end

(* Views: hypothetical samples with an incrementally-maintained informative
   set.  Certainty is monotone in the sample, so extending a view by one
   label only ever needs to re-test the classes informative so far — and a
   negative label leaves T(S+) unchanged, so only the new negative can
   capture a previously informative class (one subset test each).  This is
   what replaces the per-branch full rescans of the lookahead inner loop. *)
type view = {
  vtpos : Bits.t;
  vnegs : Bits.t list;
  vinf : int list;   (* informative class ids, ascending *)
  vinf_tuples : int; (* count-weighted |vinf| *)
}

let view t =
  let u = t.universe in
  let vinf = informative_classes t in
  let vinf_tuples =
    List.fold_left (fun acc i -> acc + Universe.count u i) 0 vinf
  in
  { vtpos = t.tpos; vnegs = t.negs; vinf; vinf_tuples }

let view_extend t v (s, lbl) =
  Obs.Counter.incr c_view_extends;
  let u = t.universe in
  match lbl with
  | Sample.Negative ->
      (* T(S+) unchanged: a surviving class is still not certain-positive
         and still escapes every old negative; only the new negative can
         newly capture it (Lemma 3.4). *)
      let vinf, vinf_tuples =
        List.fold_left
          (fun (acc, w) i ->
            if Bits.inter_subset v.vtpos (Universe.signature u i) s then (acc, w)
            else (i :: acc, w + Universe.count u i))
          ([], 0) v.vinf
      in
      { v with vnegs = s :: v.vnegs; vinf = List.rev vinf; vinf_tuples }
  | Sample.Positive ->
      let vtpos = Bits.inter v.vtpos s in
      let vinf, vinf_tuples =
        List.fold_left
          (fun (acc, w) i ->
            if
              certain_label_sig ~tpos:vtpos ~negs:v.vnegs
                (Universe.signature u i)
              = None
            then (i :: acc, w + Universe.count u i)
            else (acc, w))
          ([], 0) v.vinf
      in
      { vtpos; vnegs = v.vnegs; vinf = List.rev vinf; vinf_tuples }

let view_key v = Key.canonical ~tpos:v.vtpos ~negs:v.vnegs

(* The inferred predicate at any point is T(S+) (§3.3). *)
let inferred t = t.tpos

(* The sample is consistent iff T(S+) selects no negative example. *)
let consistent t =
  List.for_all (fun neg -> not (Bits.subset t.tpos neg)) t.negs

let pp ppf t =
  Fmt.pf ppf "@[<v>state: %d interactions, T(S+)=%a, %d negatives, %d informative left@]"
    (n_interactions t)
    (Omega.pp_pred (Universe.omega t.universe))
    t.tpos (List.length t.negs)
    (List.length (informative_classes t))
