(* Mutable inference state over the signature quotient.

   Tracks the current sample in the compact form that Lemmas 3.3/3.4 need:
   T(S+) and the signatures of negative examples.  All the certain /
   informative tests of §3.4 run against this state in
   O(classes × negatives) bitset operations. *)

module Bits = Jqi_util.Bits

exception Inconsistent of { class_id : int; label : Sample.label }

type t = {
  universe : Universe.t;
  mutable tpos : Bits.t;       (* T(S+); Ω while S+ is empty *)
  mutable negs : Bits.t list;  (* distinct signatures of negative examples *)
  labels : Sample.label option array;
  mutable history : (int * Sample.label) list;  (* newest first *)
}

let create universe =
  {
    universe;
    tpos = Omega.full (Universe.omega universe);
    negs = [];
    labels = Array.make (Universe.n_classes universe) None;
    history = [];
  }

let copy t =
  {
    universe = t.universe;
    tpos = t.tpos;
    negs = t.negs;
    labels = Array.copy t.labels;
    history = t.history;
  }

let universe t = t.universe
let tpos t = t.tpos
let negatives t = t.negs
let history t = List.rev t.history
let n_interactions t = List.length t.history
let label_of t i = t.labels.(i)

(* Lemma 3.3: t ∈ Cert+(S) iff T(S+) ⊆ T(t). *)
let certain_pos_sig ~tpos s = Bits.subset tpos s

(* Lemma 3.4: t ∈ Cert−(S) iff ∃ t' ∈ S−. T(S+) ∩ T(t) ⊆ T(t'). *)
let certain_neg_sig ~tpos ~negs s =
  let restricted = Bits.inter tpos s in
  List.exists (fun neg -> Bits.subset restricted neg) negs

let certain_label_sig ~tpos ~negs s =
  if certain_pos_sig ~tpos s then Some Sample.Positive
  else if certain_neg_sig ~tpos ~negs s then Some Sample.Negative
  else None

let certain_label t i =
  certain_label_sig ~tpos:t.tpos ~negs:t.negs (Universe.signature t.universe i)

let informative t i = certain_label t i = None

let informative_classes t =
  let out = ref [] in
  for i = Universe.n_classes t.universe - 1 downto 0 do
    if informative t i then out := i :: !out
  done;
  !out

let has_informative t =
  let n = Universe.n_classes t.universe in
  let rec go i = i < n && (informative t i || go (i + 1)) in
  go 0

let has_positive t = List.exists (fun (_, l) -> l = Sample.Positive) t.history

(* Algorithm 1 lines 6-7: labeling against a certain label would make the
   sample inconsistent. *)
let label t i lbl =
  (match certain_label t i with
  | Some certain when certain <> lbl -> raise (Inconsistent { class_id = i; label = lbl })
  | _ -> ());
  let s = Universe.signature t.universe i in
  (match lbl with
  | Sample.Positive -> t.tpos <- Bits.inter t.tpos s
  | Sample.Negative ->
      if not (List.exists (Bits.equal s) t.negs) then t.negs <- s :: t.negs);
  t.labels.(i) <- Some lbl;
  t.history <- (i, lbl) :: t.history

(* Number of tuples of D that are uninformative (= certain, Lemma 3.2)
   under a hypothetical sample (T(S+), negatives).  Tuple-weighted: a class
   counts with its multiplicity, matching the paper's u± over D. *)
let uninf_tuples_with u ~tpos ~negs =
  let acc = ref 0 in
  Array.iter
    (fun (c : Universe.cls) ->
      if certain_label_sig ~tpos ~negs c.signature <> None then
        acc := !acc + c.count)
    (Universe.classes u);
  !acc

let uninf_tuples t = uninf_tuples_with t.universe ~tpos:t.tpos ~negs:t.negs

(* Hypothetical sample obtained by adding labeled signatures to [t],
   without mutating it.  Used by the lookahead strategies. *)
let extend_virtual t extras =
  List.fold_left
    (fun (tpos, negs) (s, lbl) ->
      match lbl with
      | Sample.Positive -> (Bits.inter tpos s, negs)
      | Sample.Negative -> (tpos, s :: negs))
    (t.tpos, t.negs) extras

(* The inferred predicate at any point is T(S+) (§3.3). *)
let inferred t = t.tpos

(* The sample is consistent iff T(S+) selects no negative example. *)
let consistent t =
  List.for_all (fun neg -> not (Bits.subset t.tpos neg)) t.negs

let pp ppf t =
  Fmt.pf ppf "@[<v>state: %d interactions, T(S+)=%a, %d negatives, %d informative left@]"
    (n_interactions t)
    (Omega.pp_pred (Universe.omega t.universe))
    t.tpos (List.length t.negs)
    (List.length (informative_classes t))
