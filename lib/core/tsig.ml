(* The most specific join predicate selecting a tuple:

     T(t) = { (A_i, B_j) | tR[A_i] = tP[B_j] }

   extended to sets by intersection: T(U) = ∩_{t∈U} T(t).  T is the
   elementary tool of the whole inference machinery (§3): θ selects t iff
   θ ⊆ T(t), so every question about C(S) reduces to subset tests between
   T-signatures. *)

module Bits = Jqi_util.Bits
module Value = Jqi_relational.Value
module Tuple = Jqi_relational.Tuple

let of_tuples omega tr tp =
  Bits.build (Omega.width omega) (fun set ->
      for i = 0 to Omega.left_arity omega - 1 do
        let vr = Tuple.get tr i in
        if not (Value.is_null vr) then
          for j = 0 to Omega.right_arity omega - 1 do
            if Value.eq vr (Tuple.get tp j) then set (Omega.index omega i j)
          done
      done)

(* T over dictionary-encoded rows: [cr]/[cp] are [Dict] code vectors of a
   left and a right row.  Codes replicate [Value.eq] (equal code ⟺
   join-match; NULL/NaN carry a negative sentinel no code equals), so this
   is [of_tuples] with every tag dispatch replaced by one integer compare.
   The guard on the left code alone suffices: a negative right code can
   never equal a non-negative left one. *)
let of_codes omega cr cp =
  if not
       (Int.equal (Array.length cr) (Omega.left_arity omega)
       && Int.equal (Array.length cp) (Omega.right_arity omega))
  then
    invalid_arg "Tsig.of_codes: code vectors must match the arities of Omega";
  let m = Omega.right_arity omega in
  Bits.build (Omega.width omega) (fun set ->
      for i = 0 to Array.length cr - 1 do
        let c = cr.(i) in
        if c >= 0 then
          for j = 0 to m - 1 do
            if Int.equal c cp.(j) then set ((i * m) + j)
          done
      done)

(* K-ary T: one tuple (or code vector) per relation; the signature has a
   bit for every cross-relation attribute pair that matches.  For k = 2
   the block layout makes this coincide bit-for-bit with [of_codes]. *)
let of_kcodes omega codes =
  let k = Omega.n_relations omega in
  if not (Int.equal (Array.length codes) k) then
    invalid_arg "Tsig.of_kcodes: need one code vector per relation";
  for i = 0 to k - 1 do
    if not (Int.equal (Array.length codes.(i)) (Omega.arity_at omega i)) then
      invalid_arg "Tsig.of_kcodes: code vectors must match the arities of Omega"
  done;
  Bits.build (Omega.width omega) (fun set ->
      for i = 0 to k - 2 do
        let ci = codes.(i) in
        for j = i + 1 to k - 1 do
          let cj = codes.(j) in
          let m = Array.length cj in
          let base = Omega.block_offset omega i j in
          for a = 0 to Array.length ci - 1 do
            let c = ci.(a) in
            if c >= 0 then
              for b = 0 to m - 1 do
                if Int.equal c cj.(b) then set (base + (a * m) + b)
              done
          done
        done
      done)

let of_ktuples omega tuples =
  let k = Omega.n_relations omega in
  if not (Int.equal (Array.length tuples) k) then
    invalid_arg "Tsig.of_ktuples: need one tuple per relation";
  Bits.build (Omega.width omega) (fun set ->
      for i = 0 to k - 2 do
        let ti = tuples.(i) in
        for j = i + 1 to k - 1 do
          let tj = tuples.(j) in
          let m = Omega.arity_at omega j in
          let base = Omega.block_offset omega i j in
          for a = 0 to Omega.arity_at omega i - 1 do
            let v = Tuple.get ti a in
            if not (Value.is_null v) then
              for b = 0 to m - 1 do
                if Value.eq v (Tuple.get tj b) then set (base + (a * m) + b)
              done
          done
        done
      done)

(* T(U) for a set of signatures; T(∅) = Ω, the identity of intersection,
   which is exactly what §3.3 needs when the user labels no positive
   example. *)
let of_signatures omega sigs =
  List.fold_left Bits.inter (Omega.full omega) sigs

(* [selects theta sig]: does the predicate θ select a tuple with signature
   [sig]?  This single subset test is the semantics of R ⋈_θ P restricted to
   one tuple of the Cartesian product. *)
let selects theta sig_ = Bits.subset theta sig_
