(** The lattice of join predicates (§4.2, Figure 4). *)

(** Signatures with no strict superset among the given ones — the nodes TD
    visits first. *)
val maximal_signatures : Jqi_util.Bits.t list -> Jqi_util.Bits.t list

val minimal_signatures : Jqi_util.Bits.t list -> Jqi_util.Bits.t list

(** [non_nullable sigs θ]: does θ select at least one tuple, i.e. is it a
    subset of some signature? *)
val non_nullable : Jqi_util.Bits.t list -> Jqi_util.Bits.t -> bool

(** All non-nullable predicates — ∪ PP(sig); exponential in the largest
    signature. *)
val non_nullable_predicates : Jqi_util.Bits.t list -> Jqi_util.Bits.t list

val non_nullable_count : Jqi_util.Bits.t list -> int

(** Hasse cover edges (lo, hi) between the given nodes. *)
val covers :
  Jqi_util.Bits.t list -> (Jqi_util.Bits.t * Jqi_util.Bits.t) list

(** Graphviz rendering of the non-nullable lattice plus Ω, boxing the
    nodes that have corresponding tuples — the shape of Figure 4. *)
val to_dot : Omega.t -> Universe.t -> string
