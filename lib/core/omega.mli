(** The attribute-pair universe Ω = attrs(R) × attrs(P) (§2).

    Join predicates θ ⊆ Ω are bitsets of width |Ω|; this module owns the
    bijection between bit positions and attribute pairs (A_i, B_j), plus
    naming and pretty-printing. *)

type t

(** [create ~n ~m ()] builds Ω for relations with [n] and [m] attributes.
    Default attribute names are A1..An and B1..Bm, as in the paper.
    Raises [Invalid_argument] if an arity is non-positive or a name array
    has the wrong length. *)
val create :
  ?r_names:string array -> ?p_names:string array -> n:int -> m:int -> unit -> t

(** Ω for two concrete schemas, using their column names. *)
val of_schemas : Jqi_relational.Schema.t -> Jqi_relational.Schema.t -> t

(** |Ω| = n·m, the bitset width. *)
val width : t -> int

val left_arity : t -> int
val right_arity : t -> int

(** [index t i j] is the bit position of the pair (A_i, B_j); 0-based. *)
val index : t -> int -> int -> int

(** Inverse of [index]. *)
val pair : t -> int -> int * int

val r_name : t -> int -> string
val p_name : t -> int -> string

(** The most general predicate ∅. *)
val empty : t -> Jqi_util.Bits.t

(** The most specific predicate Ω. *)
val full : t -> Jqi_util.Bits.t

(** Predicate from 0-based (left attr, right attr) index pairs. *)
val of_pairs : t -> (int * int) list -> Jqi_util.Bits.t

(** Index pairs of a predicate, in bit order. *)
val to_pairs : t -> Jqi_util.Bits.t -> (int * int) list

(** Predicate from attribute-name pairs; raises on unknown names. *)
val of_names : t -> (string * string) list -> Jqi_util.Bits.t

(** Print a predicate as {(A1,B3), …} using the attribute names. *)
val pp_pred : t -> Format.formatter -> Jqi_util.Bits.t -> unit

val pred_to_string : t -> Jqi_util.Bits.t -> string

(** All 2^|Ω| predicates — exponential; brute-force oracles only. *)
val all_predicates : t -> Jqi_util.Bits.t list
