(** The attribute-pair universe Ω (§2, generalized to k relations).

    Binary: Ω = attrs(R) × attrs(P).  K-ary: for relations R_0..R_{k-1},
    Ω = ⋃_{i<j} attrs(R_i) × attrs(R_j), one block of bits per unordered
    relation pair in lexicographic (i,j) order.  For k = 2 the single
    block (0,1) sits at offset 0, so binary predicates keep their
    historical [i*m + j] bit positions.

    Join predicates θ ⊆ Ω are bitsets of width |Ω|; this module owns the
    bijection between bit positions and attribute pairs, plus naming and
    pretty-printing. *)

type t

(** [create ~n ~m ()] builds the binary Ω for relations with [n] and [m]
    attributes.  Default attribute names are A1..An and B1..Bm, as in the
    paper.  Raises [Invalid_argument] if an arity is non-positive or a
    name array has the wrong length. *)
val create :
  ?r_names:string array -> ?p_names:string array -> n:int -> m:int -> unit -> t

(** Binary Ω for two concrete schemas, using their column names. *)
val of_schemas : Jqi_relational.Schema.t -> Jqi_relational.Schema.t -> t

(** [create_kary names] builds Ω over k = [Array.length names] relations
    whose attribute names are given per relation.  [rel_names] (default
    R1..Rk) qualify attributes when printing k-ary predicates.  Raises
    [Invalid_argument] when k < 2 or any relation has no attributes. *)
val create_kary : ?rel_names:string array -> string array array -> t

(** K-ary Ω for named schemas, in relation order. *)
val of_schemas_kary : (string * Jqi_relational.Schema.t) list -> t

(** |Ω| — the bitset width: Σ_{i<j} n_i·n_j (= n·m when binary). *)
val width : t -> int

(** Number of relations k (2 for every binary constructor). *)
val n_relations : t -> int

(** Arity of relation [i]; 0-based. *)
val arity_at : t -> int -> int

(** [attr_name t i a] is the name of attribute [a] of relation [i]. *)
val attr_name : t -> int -> int -> string

val rel_name : t -> int -> string

(** {2 Binary views}

    These raise [Invalid_argument] on a k-ary universe (k ≠ 2); callers
    on the k-ary path use the [k*] bijection below. *)

val left_arity : t -> int
val right_arity : t -> int

(** [index t i j] is the bit position of the pair (A_i, B_j); 0-based. *)
val index : t -> int -> int -> int

(** Inverse of [index]. *)
val pair : t -> int -> int * int

val r_name : t -> int -> string
val p_name : t -> int -> string

(** Predicate from 0-based (left attr, right attr) index pairs. *)
val of_pairs : t -> (int * int) list -> Jqi_util.Bits.t

(** Index pairs of a predicate, in bit order. *)
val to_pairs : t -> Jqi_util.Bits.t -> (int * int) list

(** Predicate from attribute-name pairs; raises on unknown names. *)
val of_names : t -> (string * string) list -> Jqi_util.Bits.t

(** {2 K-ary bijection} *)

(** Bit offset of block (i,j), i < j; raises on a bad block. *)
val block_offset : t -> int -> int -> int

(** [kindex t (i,a) (j,b)] is the bit of attribute [a] of relation [i]
    paired with attribute [b] of relation [j]; the pair is normalized so
    argument order does not matter.  Raises on i = j or out-of-range
    positions. *)
val kindex : t -> int * int -> int * int -> int

(** Inverse of [kindex]: bit → ((i,a),(j,b)) with i < j. *)
val kpair : t -> int -> (int * int) * (int * int)

val of_kpairs : t -> ((int * int) * (int * int)) list -> Jqi_util.Bits.t
val to_kpairs : t -> Jqi_util.Bits.t -> ((int * int) * (int * int)) list

(** Keep only the bits of block (i,j) — the projection of a k-ary
    predicate onto one relation pair. *)
val restrict : t -> Jqi_util.Bits.t -> int -> int -> Jqi_util.Bits.t

(** Predicate from name pairs where each side is "rel.attr" or a bare
    attribute name that is unique across all relations; raises on unknown
    or ambiguous names. *)
val of_names_kary : t -> (string * string) list -> Jqi_util.Bits.t

(** The most general predicate ∅. *)
val empty : t -> Jqi_util.Bits.t

(** The most specific predicate Ω. *)
val full : t -> Jqi_util.Bits.t

(** Print a predicate as {(A1,B3), …} (binary, attribute names) or
    {(R1.a,R3.b), …} (k-ary, qualified). *)
val pp_pred : t -> Format.formatter -> Jqi_util.Bits.t -> unit

val pred_to_string : t -> Jqi_util.Bits.t -> string

(** All 2^|Ω| predicates — exponential; brute-force oracles only. *)
val all_predicates : t -> Jqi_util.Bits.t list
