(** The optimal strategy (§4.1) as memoized minimax.

    value(S) = 0 when no informative tuple remains, otherwise
    min over informative t of max over labels of 1 + value(S + (t,α)).
    Exponential (a straightforward implementation is in PSPACE, the paper
    notes); usable on small universes only and guarded by a node budget. *)

exception Too_large

(** Canonical state key — alias of [State.Key.canonical]; the fast
    lookahead engine memoizes on the same quotient.  Exposed for the
    differential test oracle. *)
val canonical :
  tpos:Jqi_util.Bits.t -> negs:Jqi_util.Bits.t list -> State.Key.t

(** Worst-case optimal number of interactions from the empty sample.
    Raises [Too_large] past [max_nodes] distinct states (default 2e6). *)
val optimal_interactions : ?max_nodes:int -> Universe.t -> int

(** The optimal strategy; shares one memo table across the run. *)
val strategy : ?max_nodes:int -> Universe.t -> Strategy.t
