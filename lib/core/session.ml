(* Session persistence: save a labeling session to JSON and resume it
   later against the same relations.

   Examples are stored by representative *tuple* (row-index vector), not
   by class id, so a session survives any change in class numbering — it
   only assumes the underlying relations (and hence each row's signature)
   are unchanged.  Loading replays the labels through [State.label], so a
   file inconsistent with the instance is rejected exactly like a lying
   user (Algorithm 1 lines 6-7).

   Version history:
     v1  { version, examples }                      — examples as {"r","p"}
     v2  adds the optional fields the service layer needs to freeze a
         whole [Engine] session: the strategy name and the in-flight
         question (as a row-index pair).  v1 files still load — they
         simply carry neither.
     v3  k-ary sessions: examples and pending carry {"rows":[i,…]}, one
         row index per relation.  Binary sessions keep writing v2, so
         every document produced by earlier builds round-trips and v2
         readers keep working on binary data. *)

module Json = Jqi_util.Json
module Relation = Jqi_relational.Relation

exception Corrupt of string

exception
  Stale_label of {
    signature : Jqi_util.Bits.t;
    label : Sample.label option;
  }

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let version = 3

type loaded = {
  state : State.t;
  strategy : string option;
  pending : int array option;
  pending_sig : Jqi_util.Bits.t option;
}

let label_to_string = function
  | Sample.Positive -> "+"
  | Sample.Negative -> "-"

let label_of_string = function
  | "+" -> Sample.Positive
  | "-" -> Sample.Negative
  | s -> fail "bad label %S" s

let relations_of universe =
  match Universe.relation_array universe with
  | Some rels -> rels
  | None -> fail "session requires a universe built from relations"

let signature_of universe rels rows =
  Tsig.of_ktuples (Universe.omega universe)
    (Array.mapi (fun d i -> Relation.row rels.(d) i) rows)

(* The additive "sig" field (since the churn pipeline): a signature as
   its sorted set-bit positions.  Unlike row indexes, signatures survive
   churn-induced row renumbering, so a loader that prefers them can thaw
   a session saved against a pre-delta instance — or detect, with a
   typed error, that a labeled class no longer exists. *)
let sig_field s = ("sig", Json.List (List.map Json.int (Jqi_util.Bits.elements s)))

let to_json ?strategy ?pending universe state =
  let rels = relations_of universe in
  let binary = Int.equal (Array.length rels) 2 in
  let rows_fields rep =
    if binary then [ ("r", Json.int rep.(0)); ("p", Json.int rep.(1)) ]
    else [ ("rows", Json.List (Array.to_list (Array.map Json.int rep))) ]
  in
  let example (cls, label) =
    Json.Obj
      (rows_fields (Universe.cls universe cls).Universe.rep
      @ [
          sig_field (Universe.signature universe cls);
          ("label", Json.Str (label_to_string label));
        ])
  in
  Json.Obj
    (List.concat
       [
         [ ("version", Json.int (if binary then 2 else version)) ];
         (match strategy with
         | Some s -> [ ("strategy", Json.Str s) ]
         | None -> []);
         (match pending with
         | Some rep ->
             let fields =
               rows_fields rep
               @ [ sig_field (signature_of universe rels rep) ]
             in
             [ ("pending", Json.Obj fields) ]
         | None -> []);
         [ ("examples", Json.List (List.map example (State.history state))) ];
       ])

let check_row rels d i =
  if i < 0 || i >= Relation.cardinality rels.(d) then
    fail "row %d out of range for %s" i (Relation.name rels.(d));
  i

(* A row-index field: {"r":i,"p":j} (v1/v2, binary only) or
   {"rows":[i,…]} (v3), range-checked against the relations. *)
let row_vector ~what ~v rels json =
  if v >= 3 then
    match Json.member "rows" json with
    | Some (Json.List l) ->
        let rows = Array.of_list l in
        if not (Int.equal (Array.length rows) (Array.length rels)) then
          fail "%s needs one row index per relation" what;
        Array.mapi
          (fun d j ->
            match Json.to_int j with
            | Some i -> check_row rels d i
            | None -> fail "%s has a non-integer row index" what)
          rows
    | Some (Json.Null | Json.Bool _ | Json.Num _ | Json.Str _ | Json.Obj _)
    | None ->
        fail "%s missing rows" what
  else begin
    if not (Int.equal (Array.length rels) 2) then
      fail "%s: v%d documents only describe binary sessions" what v;
    let field name =
      match Option.bind (Json.member name json) Json.to_int with
      | Some i -> i
      | None -> fail "%s missing %s" what name
    in
    [| check_row rels 0 (field "r"); check_row rels 1 (field "p") |]
  end

(* The "sig" member of an example/pending object, when present:
   a list of set-bit positions in [0, |Ω|). *)
let sig_of_member ~what universe json =
  match Json.member "sig" json with
  | None | Some Json.Null -> None
  | Some (Json.List l) ->
      let width = Omega.width (Universe.omega universe) in
      Some
        (Jqi_util.Bits.of_list width
           (List.map
              (fun j ->
                match Json.to_int j with
                | Some b when b >= 0 && b < width -> b
                | Some b -> fail "%s sig bit %d out of range" what b
                | None -> fail "%s sig has a non-integer bit" what)
              l))
  | Some (Json.Bool _ | Json.Num _ | Json.Str _ | Json.Obj _) ->
      fail "%s sig must be a list of bit positions" what

let of_json_full universe json =
  let v =
    match Option.bind (Json.member "version" json) Json.to_int with
    | Some v when v >= 1 && v <= version -> v
    | Some v -> fail "unsupported session version %d (this build reads 1-%d)" v version
    | None -> fail "missing version"
  in
  let examples =
    match Json.member "examples" json with
    | Some (Json.List l) -> l
    | Some (Json.Null | Json.Bool _ | Json.Num _ | Json.Str _ | Json.Obj _)
    | None ->
        fail "missing examples array"
  in
  let state = State.create universe in
  let rels = relations_of universe in
  let pp_rows rows =
    String.concat "," (Array.to_list (Array.map string_of_int rows))
  in
  List.iter
    (fun ex ->
      let label =
        match Json.member "label" ex with
        | Some (Json.Str s) -> label_of_string s
        | Some (Json.Null | Json.Bool _ | Json.Num _ | Json.List _ | Json.Obj _)
        | None ->
            fail "example missing label"
      in
      (* Prefer the signature when persisted: it survives churn-induced
         row renumbering, and its absence from the universe is a typed
         staleness (the labeled class was retired), not corruption. *)
      let signature, from_sig, describe =
        match sig_of_member ~what:"example" universe ex with
        | Some s -> (s, true, fun () -> Jqi_util.Bits.to_string s)
        | None ->
            let rows = row_vector ~what:"example" ~v rels ex in
            (signature_of universe rels rows, false, fun () -> pp_rows rows)
      in
      match Universe.find_class universe signature with
      | None ->
          if from_sig then raise (Stale_label { signature; label = Some label })
          else fail "tuple (%s) has no class in this universe" (describe ())
      | Some cls -> (
          match State.certain_label state cls with
          | Some certain when certain = label ->
              (* Implied by earlier examples; idempotent. *)
              ()
          | _ -> (
              try State.label state cls label
              with State.Inconsistent _ ->
                fail "example (%s) contradicts earlier labels" (describe ()))))
    examples;
  let strategy =
    if v < 2 then None
    else
      match Json.member "strategy" json with
      | Some (Json.Str s) -> Some s
      | None | Some Json.Null -> None
      | Some (Json.Bool _ | Json.Num _ | Json.List _ | Json.Obj _) ->
          fail "strategy must be a string"
  in
  let pending, pending_sig =
    if v < 2 then (None, None)
    else
      match Json.member "pending" json with
      | Some (Json.Obj _ as obj) -> (
          match sig_of_member ~what:"pending" universe obj with
          | Some s ->
              (* With a signature to anchor on, stale row indexes (the
                 rows may have been renumbered away) are tolerable. *)
              let rows =
                try Some (row_vector ~what:"pending" ~v rels obj)
                with Corrupt _ -> None
              in
              (rows, Some s)
          | None -> (Some (row_vector ~what:"pending" ~v rels obj), None))
      | None | Some Json.Null -> (None, None)
      | Some (Json.Bool _ | Json.Num _ | Json.Str _ | Json.List _) ->
          (fail "pending must be an object", None)
  in
  { state; strategy; pending; pending_sig }

let of_json universe json = (of_json_full universe json).state

(* R11 waiver (here and [parse_file]): the document codec is sans-IO
   ([to_json]/[of_json]); these two are the file-at-the-edge convenience
   wrappers the CLI uses, kept beside the codec so the path format has
   one owner.  Server code never calls them. *)
let save ?strategy ?pending path universe state =
  Json.save_file path (to_json ?strategy ?pending universe state)
[@@lint.allow "R11"]

let parse_file path =
  match Json.load_file path with
  | json -> json
  | exception Json.Parse_error { position; message } ->
      fail "malformed JSON at offset %d: %s" position message
[@@lint.allow "R11"]

let load path universe = of_json universe (parse_file path)
let load_full path universe = of_json_full universe (parse_file path)

(* The class of a persisted pending question in [universe], when it
   still names a question worth re-asking.  A persisted signature is
   authoritative: it survives row renumbering, and a signature with no
   class is the typed staleness of a question whose tuples were all
   deleted — unlike dangling rows, which are silently dropped (legacy
   documents cannot distinguish churn from corruption). *)
let pending_class_rows universe state = function
  | None -> None
  | Some rows -> (
      match Universe.relation_array universe with
      | None -> None
      | Some rels -> (
          let ok = ref (Int.equal (Array.length rows) (Array.length rels)) in
          if !ok then
            Array.iteri
              (fun d i ->
                if i < 0 || i >= Relation.cardinality rels.(d) then ok := false)
              rows;
          if not !ok then None
          else
            match
              Universe.find_class universe (signature_of universe rels rows)
            with
            | Some cls when State.informative state cls -> Some cls
            | Some _ | None -> None))

let pending_class ?signature universe state rows =
  match signature with
  | Some s -> (
      match Universe.find_class universe s with
      | Some cls when State.informative state cls -> Some cls
      | Some _ -> None
      | None -> raise (Stale_label { signature = s; label = None }))
  | None -> pending_class_rows universe state rows
