(* Session persistence: save a labeling session to JSON and resume it
   later against the same pair of relations.

   Examples are stored by representative *tuple* (row-index pair), not by
   class id, so a session survives any change in class numbering — it only
   assumes the underlying relations (and hence each row's signature) are
   unchanged.  Loading replays the labels through [State.label], so a file
   inconsistent with the instance is rejected exactly like a lying user
   (Algorithm 1 lines 6-7). *)

module Json = Jqi_util.Json

exception Corrupt of string

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let version = 1

let label_to_string = function
  | Sample.Positive -> "+"
  | Sample.Negative -> "-"

let label_of_string = function
  | "+" -> Sample.Positive
  | "-" -> Sample.Negative
  | s -> fail "bad label %S" s

let to_json universe state =
  let example (cls, label) =
    let r, p =
      match Universe.relations universe with
      | Some _ -> (Universe.cls universe cls).Universe.rep
      | None -> fail "session requires a universe built from relations"
    in
    Json.Obj
      [
        ("r", Json.int r);
        ("p", Json.int p);
        ("label", Json.Str (label_to_string label));
      ]
  in
  Json.Obj
    [
      ("version", Json.int version);
      ("examples", Json.List (List.map example (State.history state)));
    ]

let of_json universe json =
  (match Option.bind (Json.member "version" json) Json.to_int with
  | Some v when v = version -> ()
  | Some v -> fail "unsupported session version %d" v
  | None -> fail "missing version");
  let examples =
    match Json.member "examples" json with
    | Some (Json.List l) -> l
    | Some (Json.Null | Json.Bool _ | Json.Num _ | Json.Str _ | Json.Obj _)
    | None ->
        fail "missing examples array"
  in
  let state = State.create universe in
  let omega = Universe.omega universe in
  let r, p =
    match Universe.relations universe with
    | Some pair -> pair
    | None -> fail "session requires a universe built from relations"
  in
  List.iter
    (fun ex ->
      let field name =
        match Option.bind (Json.member name ex) Json.to_int with
        | Some i -> i
        | None -> fail "example missing %s" name
      in
      let label =
        match Json.member "label" ex with
        | Some (Json.Str s) -> label_of_string s
        | Some (Json.Null | Json.Bool _ | Json.Num _ | Json.List _ | Json.Obj _)
        | None ->
            fail "example missing label"
      in
      let ri = field "r" and pj = field "p" in
      if ri < 0 || ri >= Jqi_relational.Relation.cardinality r then
        fail "row %d out of range for %s" ri (Jqi_relational.Relation.name r);
      if pj < 0 || pj >= Jqi_relational.Relation.cardinality p then
        fail "row %d out of range for %s" pj (Jqi_relational.Relation.name p);
      let signature =
        Tsig.of_tuples omega
          (Jqi_relational.Relation.row r ri)
          (Jqi_relational.Relation.row p pj)
      in
      match Universe.find_class universe signature with
      | None -> fail "tuple (%d,%d) has no class in this universe" ri pj
      | Some cls -> (
          match State.certain_label state cls with
          | Some certain when certain = label ->
              (* Implied by earlier examples; idempotent. *)
              ()
          | _ -> (
              try State.label state cls label
              with State.Inconsistent _ ->
                fail "example (%d,%d) contradicts earlier labels" ri pj)))
    examples;
  state

let save path universe state = Json.save_file path (to_json universe state)

let load path universe =
  match Json.load_file path with
  | json -> of_json universe json
  | exception Json.Parse_error { position; message } ->
      fail "malformed JSON at offset %d: %s" position message
