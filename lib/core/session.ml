(* Session persistence: save a labeling session to JSON and resume it
   later against the same pair of relations.

   Examples are stored by representative *tuple* (row-index pair), not by
   class id, so a session survives any change in class numbering — it only
   assumes the underlying relations (and hence each row's signature) are
   unchanged.  Loading replays the labels through [State.label], so a file
   inconsistent with the instance is rejected exactly like a lying user
   (Algorithm 1 lines 6-7).

   Version history:
     v1  { version, examples }
     v2  adds the optional fields the service layer needs to freeze a
         whole [Engine] session: the strategy name and the in-flight
         question (as a row-index pair).  v1 files still load — they
         simply carry neither. *)

module Json = Jqi_util.Json

exception Corrupt of string

let fail fmt = Printf.ksprintf (fun s -> raise (Corrupt s)) fmt

let version = 2

type loaded = {
  state : State.t;
  strategy : string option;
  pending : (int * int) option;
}

let label_to_string = function
  | Sample.Positive -> "+"
  | Sample.Negative -> "-"

let label_of_string = function
  | "+" -> Sample.Positive
  | "-" -> Sample.Negative
  | s -> fail "bad label %S" s

let to_json ?strategy ?pending universe state =
  let example (cls, label) =
    let r, p =
      match Universe.relations universe with
      | Some _ -> (Universe.cls universe cls).Universe.rep
      | None -> fail "session requires a universe built from relations"
    in
    Json.Obj
      [
        ("r", Json.int r);
        ("p", Json.int p);
        ("label", Json.Str (label_to_string label));
      ]
  in
  Json.Obj
    (List.concat
       [
         [ ("version", Json.int version) ];
         (match strategy with
         | Some s -> [ ("strategy", Json.Str s) ]
         | None -> []);
         (match pending with
         | Some (r, p) ->
             [ ("pending", Json.Obj [ ("r", Json.int r); ("p", Json.int p) ]) ]
         | None -> []);
         [ ("examples", Json.List (List.map example (State.history state))) ];
       ])

(* A row-index pair field {"r":i,"p":j}, range-checked against the
   relations. *)
let row_pair ~what r p json =
  let field name =
    match Option.bind (Json.member name json) Json.to_int with
    | Some i -> i
    | None -> fail "%s missing %s" what name
  in
  let ri = field "r" and pj = field "p" in
  if ri < 0 || ri >= Jqi_relational.Relation.cardinality r then
    fail "row %d out of range for %s" ri (Jqi_relational.Relation.name r);
  if pj < 0 || pj >= Jqi_relational.Relation.cardinality p then
    fail "row %d out of range for %s" pj (Jqi_relational.Relation.name p);
  (ri, pj)

let of_json_full universe json =
  let v =
    match Option.bind (Json.member "version" json) Json.to_int with
    | Some v when v >= 1 && v <= version -> v
    | Some v -> fail "unsupported session version %d (this build reads 1-%d)" v version
    | None -> fail "missing version"
  in
  let examples =
    match Json.member "examples" json with
    | Some (Json.List l) -> l
    | Some (Json.Null | Json.Bool _ | Json.Num _ | Json.Str _ | Json.Obj _)
    | None ->
        fail "missing examples array"
  in
  let state = State.create universe in
  let omega = Universe.omega universe in
  let r, p =
    match Universe.relations universe with
    | Some pair -> pair
    | None -> fail "session requires a universe built from relations"
  in
  List.iter
    (fun ex ->
      let label =
        match Json.member "label" ex with
        | Some (Json.Str s) -> label_of_string s
        | Some (Json.Null | Json.Bool _ | Json.Num _ | Json.List _ | Json.Obj _)
        | None ->
            fail "example missing label"
      in
      let ri, pj = row_pair ~what:"example" r p ex in
      let signature =
        Tsig.of_tuples omega
          (Jqi_relational.Relation.row r ri)
          (Jqi_relational.Relation.row p pj)
      in
      match Universe.find_class universe signature with
      | None -> fail "tuple (%d,%d) has no class in this universe" ri pj
      | Some cls -> (
          match State.certain_label state cls with
          | Some certain when certain = label ->
              (* Implied by earlier examples; idempotent. *)
              ()
          | _ -> (
              try State.label state cls label
              with State.Inconsistent _ ->
                fail "example (%d,%d) contradicts earlier labels" ri pj)))
    examples;
  let strategy =
    if v < 2 then None
    else
      match Json.member "strategy" json with
      | Some (Json.Str s) -> Some s
      | None | Some Json.Null -> None
      | Some (Json.Bool _ | Json.Num _ | Json.List _ | Json.Obj _) ->
          fail "strategy must be a string"
  in
  let pending =
    if v < 2 then None
    else
      match Json.member "pending" json with
      | Some (Json.Obj _ as obj) -> Some (row_pair ~what:"pending" r p obj)
      | None | Some Json.Null -> None
      | Some (Json.Bool _ | Json.Num _ | Json.Str _ | Json.List _) ->
          fail "pending must be an object"
  in
  { state; strategy; pending }

let of_json universe json = (of_json_full universe json).state

let save ?strategy ?pending path universe state =
  Json.save_file path (to_json ?strategy ?pending universe state)

let parse_file path =
  match Json.load_file path with
  | json -> json
  | exception Json.Parse_error { position; message } ->
      fail "malformed JSON at offset %d: %s" position message

let load path universe = of_json universe (parse_file path)
let load_full path universe = of_json_full universe (parse_file path)

(* The class of a persisted pending row pair in [universe], when it still
   names a question worth re-asking. *)
let pending_class universe state = function
  | None -> None
  | Some (ri, pj) -> (
      match Universe.relations universe with
      | None -> None
      | Some (r, p) -> (
          let signature =
            Tsig.of_tuples
              (Universe.omega universe)
              (Jqi_relational.Relation.row r ri)
              (Jqi_relational.Relation.row p pj)
          in
          match Universe.find_class universe signature with
          | Some cls when State.informative state cls -> Some cls
          | Some _ | None -> None))
