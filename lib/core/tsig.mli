(** The most specific join predicate T (§3).

    T(t) = {(A_i, B_j) | tR[A_i] = tP[B_j]} is the paper's elementary tool:
    a predicate θ selects t iff θ ⊆ T(t), so all version-space reasoning
    reduces to subset tests between T-signatures. *)

(** [of_tuples omega tR tP] is T((tR, tP)).  NULL cells never match. *)
val of_tuples :
  Omega.t -> Jqi_relational.Tuple.t -> Jqi_relational.Tuple.t -> Jqi_util.Bits.t

(** [of_codes omega cr cp] is {!of_tuples} over {!Jqi_relational.Dict}
    code vectors: equal codes are join-matches, negative codes (NULL/NaN)
    match nothing.  Raises [Invalid_argument] when vector lengths differ
    from the arities of [omega]. *)
val of_codes : Omega.t -> int array -> int array -> Jqi_util.Bits.t

(** [of_kcodes omega codes] is the k-ary T-signature of one code vector
    per relation: a bit for every cross-relation attribute pair whose
    codes match (negative codes match nothing).  For k = 2 this is
    bit-identical to {!of_codes}.  Raises [Invalid_argument] on a wrong
    relation count or vector length. *)
val of_kcodes : Omega.t -> int array array -> Jqi_util.Bits.t

(** {!of_kcodes} over raw tuples with [Value.eq] semantics. *)
val of_ktuples : Omega.t -> Jqi_relational.Tuple.t array -> Jqi_util.Bits.t

(** [of_signatures omega sigs] is T(U) = ∩ sigs, and Ω when [sigs] is empty
    (the convention §3.3 needs for samples without positive examples). *)
val of_signatures : Omega.t -> Jqi_util.Bits.t list -> Jqi_util.Bits.t

(** [selects theta sig] iff θ ⊆ T(t) — whether θ selects a tuple with the
    given signature. *)
val selects : Jqi_util.Bits.t -> Jqi_util.Bits.t -> bool
