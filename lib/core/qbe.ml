(* Query-by-output, restricted to the paper's setting.

   The related work (§1: Zhang et al., Tran et al., Das Sarma et al.)
   starts from a *given* query output; our interactive scenario replaces
   it with labeling.  This module bridges the two: given example output
   pairs the user already knows she wants (and optionally pairs she
   rejects), it computes the most specific consistent predicate in one
   shot — no interaction — and reports what else that predicate would
   select, which is exactly the information a user needs to decide whether
   to refine with the interactive loop. *)

module Bits = Jqi_util.Bits

type result = {
  predicate : Bits.t;  (* T(S+), most specific consistent *)
  consistent : bool;  (* false iff the negatives contradict the positives *)
  selected_classes : int list;  (* everything the predicate selects *)
  surprise_classes : int list;
      (* selected classes containing no positive example: the "extra" rows
         the user did not ask for and should review *)
}

let infer universe ~positives ~negatives =
  let omega = Universe.omega universe in
  let module R = Jqi_relational.Relation in
  let signature_of (i, j) =
    match Universe.relations universe with
    | Some (r, p) -> Tsig.of_tuples omega (R.row r i) (R.row p j)
    | None -> invalid_arg "Qbe.infer: universe has no backing relations"
  in
  let pos_sigs = List.map signature_of positives in
  let neg_sigs = List.map signature_of negatives in
  let predicate = Tsig.of_signatures omega pos_sigs in
  let consistent =
    List.for_all (fun s -> not (Tsig.selects predicate s)) neg_sigs
  in
  let selected_classes = Universe.selected_classes universe predicate in
  let has_positive cls_id =
    let s = Universe.signature universe cls_id in
    List.exists (Bits.equal s) pos_sigs
  in
  {
    predicate;
    consistent;
    selected_classes;
    surprise_classes = List.filter (fun c -> not (has_positive c)) selected_classes;
  }

(* How many tuples of D the predicate selects beyond the examples —
   a cheap "how under-specified is this output" measure. *)
let surprise_tuples universe result =
  List.fold_left
    (fun acc c -> acc + Universe.count universe c)
    0 result.surprise_classes
