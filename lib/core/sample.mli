(** Samples: labeled examples over the Cartesian product (§3).

    This is the tuple-level view matching the paper's definitions; the
    engine itself runs on the signature quotient ([State]). *)

type label = Positive | Negative

val label_of_bool : bool -> label
val bool_of_label : label -> bool
val equal_label : label -> label -> bool
val pp_label : Format.formatter -> label -> unit

type example = { tuple : int * int;  (** row indexes into R and P *) label : label }

type t

val empty : t

(** Add an example; idempotent on repeats, raises [Invalid_argument] when
    the tuple already carries the opposite label. *)
val add : t -> tuple:int * int -> label:label -> t

val of_list : ((int * int) * label) list -> t
val examples : t -> example list
val size : t -> int
val positives : t -> (int * int) list
val negatives : t -> (int * int) list

(** T of one tuple of D, by row indexes. *)
val signature_of_tuple :
  Omega.t -> Jqi_relational.Relation.t -> Jqi_relational.Relation.t ->
  int * int -> Jqi_util.Bits.t

(** T(S+) — Ω when there are no positives (§3.3). *)
val most_specific :
  Omega.t -> Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> t ->
  Jqi_util.Bits.t

(** Consistency checking (§3.1): T(S+) selects no negative example.  This
    is sound and complete, and PTIME. *)
val consistent :
  Omega.t -> Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> t -> bool

(** Definition-level check that a specific θ is consistent with the
    sample; reference implementation for tests. *)
val predicate_consistent :
  Omega.t -> Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> t ->
  Jqi_util.Bits.t -> bool
