(** Query-by-output in the paper's setting: from example output pairs
    (and optional rejected pairs), compute the most specific consistent
    predicate in one shot and report what else it selects — the bridge
    between the related work's given-output model and the interactive
    loop. *)

type result = {
  predicate : Jqi_util.Bits.t;  (** T(S+), most specific consistent *)
  consistent : bool;  (** false iff some negative is selected *)
  selected_classes : int list;
  surprise_classes : int list;
      (** selected classes with no positive example — rows to review *)
}

(** Requires a universe built from actual relations; positions are row
    index pairs into them. *)
val infer :
  Universe.t -> positives:(int * int) list -> negatives:(int * int) list ->
  result

(** Tuple-weighted size of [surprise_classes]. *)
val surprise_tuples : Universe.t -> result -> int
