(* Certificates: the minimal evidence behind an inference result.

   After Algorithm 1 halts, the accumulated sample often contains examples
   that later answers made redundant — e.g. a BU run's early negatives
   that a subsequent positive would now imply.  A certificate is an
   irredundant subsample that still pins the version space to the same
   answer: dropping any certificate example would leave some tuple of D
   undecided.  This is what an interactive system shows the user as "why
   this query": a handful of labeled pairs instead of the whole
   transcript.

   Greedy minimization: walk the examples (latest first, since later
   examples tend to be the sharper ones under every strategy here) and
   drop each whose removal keeps every class of D certain with the same
   label.  The result is inclusion-minimal, not guaranteed
   cardinality-minimal — finding a smallest certificate would require
   search; inclusion-minimality is the property users need (no shown
   example is redundant). *)

module Bits = Jqi_util.Bits

type t = {
  examples : (int * Sample.label) list;  (* chronological *)
  predicate : Bits.t;  (* the certified T(S+) *)
}

let size t = List.length t.examples

(* The decided classes (with labels) under a sample given as labeled
   signatures; None if some class is informative. *)
let full_labeling universe examples =
  let tpos =
    List.fold_left
      (fun acc (s, lbl) ->
        if lbl = Sample.Positive then Bits.inter acc s else acc)
      (Omega.full (Universe.omega universe))
      examples
  in
  let negs =
    List.filter_map
      (fun (s, lbl) -> if lbl = Sample.Negative then Some s else None)
      examples
  in
  let n = Universe.n_classes universe in
  let rec go i acc =
    if i >= n then Some (List.rev acc)
    else
      match
        State.certain_label_sig ~tpos ~negs (Universe.signature universe i)
      with
      | Some lbl -> go (i + 1) (lbl :: acc)
      | None -> None
  in
  go 0 []

(* Minimize the history of a *finished* state (no informative classes
   left).  Raises [Invalid_argument] otherwise — a certificate of an
   unfinished session would certify the wrong thing. *)
let of_state state =
  let universe = State.universe state in
  if State.has_informative state then
    invalid_arg "Certificate.of_state: inference has not halted";
  let with_sigs =
    List.map
      (fun (cls, lbl) -> (cls, Universe.signature universe cls, lbl))
      (State.history state)
  in
  let target =
    match full_labeling universe (List.map (fun (_, s, l) -> (s, l)) with_sigs) with
    | Some labeling -> labeling
    | None -> invalid_arg "Certificate.of_state: sample does not decide D"
  in
  let keeps_target examples =
    match full_labeling universe examples with
    | Some labeling -> labeling = target
    | None -> false
  in
  (* Latest-first greedy drop. *)
  let kept =
    List.fold_left
      (fun kept candidate ->
        let without = List.filter (fun x -> x != candidate) kept in
        let as_sigs = List.map (fun (_, s, l) -> (s, l)) without in
        if keeps_target as_sigs then without else kept)
      with_sigs
      (List.rev with_sigs)
  in
  {
    examples = List.map (fun (c, _, l) -> (c, l)) kept;
    predicate = State.inferred state;
  }

(* Every example of the certificate is necessary: dropping it leaves some
   tuple undecided.  Exposed so tests (and distrustful callers) can verify
   minimality. *)
let is_irredundant universe t =
  let with_sigs =
    List.map
      (fun (cls, lbl) -> (Universe.signature universe cls, lbl))
      t.examples
  in
  match full_labeling universe with_sigs with
  | None -> false
  | Some target ->
      List.for_all
        (fun dropped ->
          let without = List.filter (fun x -> x != dropped) with_sigs in
          match full_labeling universe without with
          | None -> true
          | Some labeling -> labeling <> target)
        with_sigs

let pp universe ppf t =
  let omega = Universe.omega universe in
  Fmt.pf ppf "@[<v>certificate for %a (%d examples):" (Omega.pp_pred omega)
    t.predicate (size t);
  List.iter
    (fun (cls, lbl) ->
      Fmt.pf ppf "@,  %a %a" Sample.pp_label lbl (Omega.pp_pred omega)
        (Universe.signature universe cls))
    t.examples;
  Fmt.pf ppf "@]"
