(** Strategies for presenting tuples to the user (§4).

    A strategy maps the current state to the class it wants labeled next;
    [None] means no informative tuple remains (halt condition Γ). *)

type t

val make : string -> (State.t -> int option) -> t
val name : t -> string
val choose : t -> State.t -> int option

(** RND: a uniformly random informative tuple. *)
val rnd : Jqi_util.Prng.t -> t

(** BU, Algorithm 2: informative tuple with minimal |T(t)|. *)
val bu : t

(** TD, Algorithm 3: ⊆-maximal signatures while no positive example
    exists, then BU. *)
val td : t

(** L1S, Algorithm 4: one-step lookahead skyline. *)
val l1s : t

(** L2S, Algorithm 6: two-step lookahead skyline. *)
val l2s : t

(** LkS for arbitrary k ≥ 1 (the paper's generalization remark).  Raises
    [Invalid_argument] on k < 1. *)
val lks : int -> t

(** IGS (extension, cf. §7 future work): Monte-Carlo information gain —
    samples predicates uniformly from C(S) and asks about the tuple with
    the most balanced selection probability. *)
val igs : ?samples:int -> Jqi_util.Prng.t -> t

(** Hybrid (extension): TD while no positive example exists, then L2S —
    most of the lookahead's interaction savings at a fraction of the
    cost. *)
val hybrid : t

(** The paper's five strategies: RND, BU, TD, L1S, L2S. *)
val all : ?prng_seed:int -> unit -> t list
