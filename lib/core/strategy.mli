(** Strategies for presenting tuples to the user (§4).

    A strategy maps the current state to the class it wants labeled next;
    [None] means no informative tuple remains (halt condition Γ). *)

type t

val make : string -> (State.t -> int option) -> t
val name : t -> string
val choose : t -> State.t -> int option

(** RND: a uniformly random informative tuple. *)
val rnd : Jqi_util.Prng.t -> t

(** BU, Algorithm 2: informative tuple with minimal |T(t)|. *)
val bu : t

(** TD, Algorithm 3: ⊆-maximal signatures while no positive example
    exists, then BU. *)
val td : t

(** L1S, Algorithm 4: one-step lookahead skyline (fast engine). *)
val l1s : t

(** L2S, Algorithm 6: two-step lookahead skyline (fast engine). *)
val l2s : t

(** LkS for arbitrary k ≥ 1 (the paper's generalization remark).  Raises
    [Invalid_argument] on k < 1. *)
val lks : int -> t

(** LkS with candidate scoring fanned out over [domains] domains.
    Deterministic: ties break by class index, so parallel and sequential
    runs choose identical classes.  Raises [Invalid_argument] on k < 1 or
    domains < 1. *)
val lks_par : domains:int -> int -> t

(** LkS over the reference lookahead engine ([Entropy.reference_k]) — the
    differential oracle the fast strategies are tested against.  Raises
    [Invalid_argument] on k < 1. *)
val lks_reference : int -> t

(** IGS (extension, cf. §7 future work): Monte-Carlo information gain —
    samples predicates uniformly from C(S) and asks about the tuple with
    the most balanced selection probability. *)
val igs : ?samples:int -> Jqi_util.Prng.t -> t

(** Hybrid (extension): TD while no positive example exists, then L2S —
    most of the lookahead's interaction savings at a fraction of the
    cost. *)
val hybrid : t

(** The paper's five strategies: RND, BU, TD, L1S, L2S. *)
val all : ?prng_seed:int -> unit -> t list

(** Strategy from its CLI/protocol spelling (case-insensitive): bu, td,
    l1s, l2s, hybrid, rnd, igs.  [seed] feeds the PRNG of the randomized
    strategies.  [None] on unknown names. *)
val of_name : ?seed:int -> string -> t option
