(* Paged relation store.

   Record stream ('D' = dict entry, 'R' = row):

     'D' tag value                    value: 0/1 = bool, 2 = int
                                      (zigzag varint), 3 = float
                                      (8 bytes IEEE LE), 4 = str
                                      (varint length + bytes)
     'R' cell*                        cell: varint k — 0 = NULL,
                                      1 = NaN (+ 8 bytes IEEE bits),
                                      k >= 2 = store code k - 2

   Store codes are assigned by order of appearance in the stream,
   which is row-major first-sight order — the same order a shared
   Dict.code scan would intern them in.  That equality is what makes
   Dict.iter_encoded's translation-table fast path produce the exact
   shared code space of the in-memory scan, and hence byte-identical
   universes (test/test_storage.ml asserts this differentially).

   NaN keeps its IEEE bits inline so fingerprints — which hash float
   bits — survive the round-trip bit-for-bit.

   Meta blob: "JQIR1" + varint |name| + name + varint ncols +
   (varint |col| + col + ty byte)*.

   Single-writer by design: no latch here (the Vecs below are only
   mutated by appends); concurrent reads after loading are safe — the
   buffer pool serializes page access. *)

module Value = Jqi_relational.Value
module Tuple = Jqi_relational.Tuple
module Schema = Jqi_relational.Schema
module Relation = Jqi_relational.Relation
module Csv = Jqi_relational.Csv
module Vec = Jqi_util.Vec

(* Interning is by *representation*: floats compare by their IEEE bits
   (so 0.0 and -0.0 keep distinct codes and decoded rows fingerprint
   bit-for-bit), everything else by Value.equal.  Join semantics are
   not in play here — Dict.iter_encoded's translation table collapses
   IEEE-equal floats onto one Dict code, so universes still agree with
   the in-memory scan. *)
module VH = Hashtbl.Make (struct
  type t = Value.t

  let equal a b =
    match (a, b) with
    | Value.Float x, Value.Float y ->
        Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
    | (Value.Null | Value.Bool _ | Value.Int _ | Value.Str _ | Value.Float _), _
      ->
        Value.equal a b

  let hash = function
    | Value.Float f ->
        (Hashtbl.hash (Int64.bits_of_float f) [@lint.allow "R1"])
    | (Value.Null | Value.Bool _ | Value.Int _ | Value.Str _) as v ->
        Value.hash v
end)

type t = {
  heap : Heap.t;
  name : string;
  schema : Schema.t;
  values : Value.t Vec.t; (* store code -> value *)
  code_of : int VH.t; (* value -> store code *)
  rids : int Vec.t; (* row index -> heap rid *)
  ebuf : Buffer.t; (* append scratch: row record *)
  dbuf : Buffer.t; (* append scratch: dict record *)
}

let name t = t.name
let schema t = t.schema
let heap t = t.heap
let pool t = Heap.pool t.heap
let path t = Pager.path (Buffer_pool.pager (pool t))
let row_count t = Vec.length t.rids
let distinct_values t = Vec.length t.values
let value_of_code t c = Vec.get t.values c

(* --- varints (LEB128) and zigzag --- *)

let add_varint buf n =
  let n = ref n in
  let continue_ = ref true in
  while !continue_ do
    let b = !n land 0x7f in
    n := !n lsr 7;
    if !n = 0 then begin
      Buffer.add_uint8 buf b;
      continue_ := false
    end
    else Buffer.add_uint8 buf (b lor 0x80)
  done

let read_varint s pos =
  let n = ref 0 and shift = ref 0 and continue_ = ref true in
  while !continue_ do
    if !pos >= String.length s then
      raise (Pager.Bad_file "Relstore: truncated varint");
    let b = Char.code s.[!pos] in
    incr pos;
    n := !n lor ((b land 0x7f) lsl !shift);
    shift := !shift + 7;
    if b land 0x80 = 0 then continue_ := false
  done;
  !n

let zigzag n = (n lsl 1) lxor (n asr 62)
let unzigzag u = (u lsr 1) lxor (-(u land 1))

let add_f64 buf f = Buffer.add_int64_le buf (Int64.bits_of_float f)

let read_f64 s pos =
  if !pos + 8 > String.length s then
    raise (Pager.Bad_file "Relstore: truncated float");
  let f = Int64.float_of_bits (String.get_int64_le s !pos) in
  pos := !pos + 8;
  f

(* --- value codec ('D' payload) --- *)

let add_value buf v =
  match v with
  | Value.Bool false -> Buffer.add_uint8 buf 0
  | Value.Bool true -> Buffer.add_uint8 buf 1
  | Value.Int i ->
      Buffer.add_uint8 buf 2;
      add_varint buf (zigzag i)
  | Value.Float f ->
      Buffer.add_uint8 buf 3;
      add_f64 buf f
  | Value.Str s ->
      Buffer.add_uint8 buf 4;
      add_varint buf (String.length s);
      Buffer.add_string buf s
  | Value.Null -> invalid_arg "Relstore: NULL is never interned"

let read_value s pos =
  if !pos >= String.length s then
    raise (Pager.Bad_file "Relstore: truncated value");
  let tag = Char.code s.[!pos] in
  incr pos;
  match tag with
  | 0 -> Value.Bool false
  | 1 -> Value.Bool true
  | 2 -> Value.Int (unzigzag (read_varint s pos))
  | 3 -> Value.Float (read_f64 s pos)
  | 4 ->
      let len = read_varint s pos in
      if !pos + len > String.length s then
        raise (Pager.Bad_file "Relstore: truncated string value");
      let v = Value.Str (String.sub s !pos len) in
      pos := !pos + len;
      v
  | n -> raise (Pager.Bad_file (Printf.sprintf "Relstore: bad value tag %d" n))

(* --- meta blob --- *)

let meta_magic = "JQIR1"

let ty_byte ty =
  match ty with
  | Value.TInt -> 0
  | Value.TFloat -> 1
  | Value.TBool -> 2
  | Value.TString -> 3

let ty_of_byte = function
  | 0 -> Value.TInt
  | 1 -> Value.TFloat
  | 2 -> Value.TBool
  | 3 -> Value.TString
  | n -> raise (Pager.Bad_file (Printf.sprintf "Relstore: bad type byte %d" n))

let encode_meta ~name schema =
  let buf = Buffer.create 128 in
  Buffer.add_string buf meta_magic;
  add_varint buf (String.length name);
  Buffer.add_string buf name;
  let cols = Schema.columns schema in
  add_varint buf (List.length cols);
  List.iter
    (fun (c : Schema.column) ->
      add_varint buf (String.length c.name);
      Buffer.add_string buf c.name;
      Buffer.add_uint8 buf (ty_byte c.ty))
    cols;
  Buffer.contents buf

let decode_meta blob =
  let n = String.length blob in
  if n < String.length meta_magic
     || not (String.equal (String.sub blob 0 (String.length meta_magic)) meta_magic)
  then raise (Pager.Bad_file "Relstore: missing store meta");
  let pos = ref (String.length meta_magic) in
  let read_str () =
    let len = read_varint blob pos in
    if !pos + len > n then raise (Pager.Bad_file "Relstore: truncated meta");
    let s = String.sub blob !pos len in
    pos := !pos + len;
    s
  in
  let name = read_str () in
  let ncols = read_varint blob pos in
  let cols =
    List.init ncols (fun _ ->
        let cname = read_str () in
        if !pos >= n then raise (Pager.Bad_file "Relstore: truncated meta");
        let ty = ty_of_byte (Char.code blob.[!pos]) in
        incr pos;
        Schema.column cname ty)
  in
  (name, Schema.of_columns cols)

(* --- store lifecycle --- *)

let create ?(page_size = Page.default_size) ?(pool_frames = 64) ~path ~name
    schema =
  let heap = Heap.create_file ~page_size ~pool_frames path in
  Heap.set_meta heap (encode_meta ~name schema);
  {
    heap;
    name;
    schema;
    values = Vec.create ();
    code_of = VH.create 1024;
    rids = Vec.create ();
    ebuf = Buffer.create 256;
    dbuf = Buffer.create 256;
  }

let open_file ?(pool_frames = 64) path =
  let heap = Heap.open_file ~pool_frames path in
  let name, schema = decode_meta (Heap.meta heap) in
  let t =
    {
      heap;
      name;
      schema;
      values = Vec.create ();
      code_of = VH.create 1024;
      rids = Vec.create ();
      ebuf = Buffer.create 256;
      dbuf = Buffer.create 256;
    }
  in
  Heap.iter heap (fun rid record ->
      if String.length record = 0 then
        raise (Pager.Bad_file "Relstore: empty record");
      match record.[0] with
      | 'D' ->
          let pos = ref 1 in
          let v = read_value record pos in
          VH.replace t.code_of v (Vec.length t.values);
          Vec.push t.values v
      | 'R' -> Vec.push t.rids rid
      | c ->
          raise
            (Pager.Bad_file (Printf.sprintf "Relstore: bad record tag %C" c)));
  t

let intern t v =
  match VH.find_opt t.code_of v with
  | Some c -> c
  | None ->
      Buffer.clear t.dbuf;
      Buffer.add_char t.dbuf 'D';
      add_value t.dbuf v;
      ignore (Heap.append t.heap (Buffer.contents t.dbuf));
      let c = Vec.length t.values in
      VH.add t.code_of v c;
      Vec.push t.values v;
      c

let append_row t row =
  if not (Int.equal (Tuple.arity row) (Schema.arity t.schema)) then
    invalid_arg
      (Printf.sprintf "Relstore %s: row arity %d, schema arity %d" t.name
         (Tuple.arity row) (Schema.arity t.schema));
  Buffer.clear t.ebuf;
  Buffer.add_char t.ebuf 'R';
  Array.iter
    (fun v ->
      match v with
      | Value.Null -> add_varint t.ebuf 0
      | Value.Float f when Float.is_nan f ->
          add_varint t.ebuf 1;
          add_f64 t.ebuf f
      | Value.Bool _ | Value.Int _ | Value.Float _ | Value.Str _ ->
          add_varint t.ebuf (intern t v + 2))
    row;
  let rid = Heap.append t.heap (Buffer.contents t.ebuf) in
  Vec.push t.rids rid

(* --- row decoding --- *)

let decode_row t record =
  let arity = Schema.arity t.schema in
  if String.length record = 0 || not (Char.equal record.[0] 'R') then
    raise (Pager.Bad_file "Relstore: expected a row record");
  let pos = ref 1 in
  Array.init arity (fun _ ->
      let k = read_varint record pos in
      if k = 0 then Value.Null
      else if k = 1 then Value.Float (read_f64 record pos)
      else Vec.get t.values (k - 2))

let get_row t i = decode_row t (Heap.get t.heap (Vec.get t.rids i))

(* Fetch by heap rid — the pointer a B-tree index stores. *)
let row_of_rid t rid = decode_row t (Heap.get t.heap rid)

let iter_rows t f =
  let i = ref 0 in
  Heap.iter t.heap (fun _rid record ->
      if String.length record > 0 && Char.equal record.[0] 'R' then begin
        f !i (decode_row t record);
        incr i
      end)

(* Stream store codes per row into a reused buffer: -1 for NULL/NaN,
   the store code otherwise.  This is Backend.coded.iter_codes. *)
let iter_codes t f =
  let arity = Schema.arity t.schema in
  let buf = Array.make arity (-1) in
  let i = ref 0 in
  Heap.iter t.heap (fun _rid record ->
      if String.length record > 0 && Char.equal record.[0] 'R' then begin
        let pos = ref 1 in
        for k = 0 to arity - 1 do
          let c = read_varint record pos in
          if c = 0 then buf.(k) <- -1
          else if c = 1 then begin
            ignore (read_f64 record pos);
            buf.(k) <- -1
          end
          else buf.(k) <- c - 2
        done;
        f !i buf;
        incr i
      end)

(* Churn: tombstone the removed rows' heap records ([removed] holds
   sorted pre-delta row indexes), drop their rids from the row-id
   table, then append the added rows at the heap tail.  Tail-only
   appends keep physical order = logical order, so a reopen scan
   rebuilds exactly this row sequence: survivors in their old order,
   then the adds.  'D' records are never deleted — store codes are
   minted forever, like [Dict] codes. *)
let apply_delta t ~adds ~removed =
  Array.iter (fun i -> Heap.delete t.heap (Vec.get t.rids i)) removed;
  if Array.length removed > 0 then begin
    let old = Vec.to_array t.rids in
    Vec.clear t.rids;
    let j = ref 0 in
    Array.iteri
      (fun i rid ->
        if !j < Array.length removed && Int.equal removed.(!j) i then incr j
        else Vec.push t.rids rid)
      old
  end;
  Array.iter (append_row t) adds;
  Heap.sync t.heap

let delete_row t i = apply_delta t ~adds:[||] ~removed:[| i |]

let rec paged_backend t =
  let n = row_count t in
  {
    Relation.Backend.n_rows = n;
    get_row = (fun i -> get_row t i);
    iter_rows = (fun f -> iter_rows t f);
    coded =
      Some
        {
          Relation.Backend.distinct = distinct_values t;
          value = (fun c -> Vec.get t.values c);
          iter_codes = (fun f -> iter_codes t f);
        };
    describe = "paged:" ^ path t;
    apply_delta =
      Some
        (fun ~adds ~removed ->
          apply_delta t ~adds ~removed;
          paged_backend t);
  }

let relation t =
  Relation.of_paged ~name:t.name ~schema:t.schema (paged_backend t)

let index_column ?page_size ?pool_frames ~path t col =
  if col < 0 || col >= Schema.arity t.schema then
    invalid_arg (Printf.sprintf "Relstore.index_column: no column %d" col);
  let bt = Btree.create_file ?page_size ?pool_frames path in
  iter_codes t (fun i codes ->
      let c = codes.(col) in
      if c >= 0 then
        Btree.insert bt (Int64.of_int c) (Int64.of_int (Vec.get t.rids i)));
  Btree.sync bt;
  bt

let sync t = Heap.sync t.heap
let close t = Heap.close t.heap

(* --- backend selection & loaders --- *)

type backend = Mem | Paged of { frames : int; dir : string option }

let default_frames = 256

let backend_of_string ~frames s =
  match String.lowercase_ascii s with
  | "mem" | "memory" -> Some Mem
  | "paged" | "disk" -> Some (Paged { frames; dir = None })
  | _ -> None

let backend_to_string = function
  | Mem -> "mem"
  | Paged { frames; dir = _ } -> Printf.sprintf "paged[%d pages]" frames

let load_csv ?sep ?schema ?page_size ?pool_frames ~dest ~name path =
  let store, _schema =
    Csv.load_into ?sep ?schema path
      ~init:(fun sch -> create ?page_size ?pool_frames ~path:dest ~name sch)
      ~push:append_row
  in
  sync store;
  store

let of_relation ?page_size ?pool_frames ~dest rel =
  let store =
    create ?page_size ?pool_frames ~path:dest ~name:(Relation.name rel)
      (Relation.schema rel)
  in
  Relation.iter (append_row store) rel;
  sync store;
  store

let load_csv_relation ?sep ?schema ~backend ~name path =
  match backend with
  | Mem -> Csv.load_relation ?sep ~name ?schema path
  | Paged { frames; dir } ->
      let dest =
        match dir with
        | Some d -> Filename.concat d (name ^ ".jqh")
        | None -> Filename.temp_file ("jqi_" ^ name ^ "_") ".jqh"
      in
      relation (load_csv ?sep ?schema ~pool_frames:frames ~dest ~name path)
