(* File of fixed-size pages behind a 4 KiB header. All I/O is
   lseek + full-length read/write loops; synchronization is the
   caller's job (the buffer pool holds the only latch). *)

let magic = "JQIPGv1\n"
let header_len = 4096

type t = {
  fd : Unix.file_descr;
  path : string;
  page_size : int;
  mutable n_pages : int;
  mutable closed : bool;
}

exception Bad_file of string

let page_size t = t.page_size
let path t = t.path
let page_count t = t.n_pages

let really_read fd buf off len =
  let rec go off len =
    if len > 0 then
      let n = Unix.read fd buf off len in
      if n = 0 then (* short file: unwritten tail reads as zeroes *)
        Bytes.fill buf off len '\000'
      else go (off + n) (len - n)
  in
  go off len

let really_write fd buf off len =
  let rec go off len =
    if len > 0 then
      let n = Unix.write fd buf off len in
      go (off + n) (len - n)
  in
  go off len

let write_header t =
  let buf = Bytes.make header_len '\000' in
  Bytes.blit_string magic 0 buf 0 (String.length magic);
  Page.set_u32 buf 8 t.page_size;
  Page.set_u32 buf 12 t.n_pages;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  really_write t.fd buf 0 header_len

let create ?(page_size = Page.default_size) path =
  let page_size = Page.check_size page_size in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let t = { fd; path; page_size; n_pages = 0; closed = false } in
  write_header t;
  t

let open_existing path =
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  let buf = Bytes.make header_len '\000' in
  let n = Unix.read fd buf 0 header_len in
  if n < 16 || Bytes.sub_string buf 0 (String.length magic) <> magic then begin
    Unix.close fd;
    raise (Bad_file (path ^ ": not a jqi page file"))
  end;
  let page_size = Page.get_u32 buf 8 in
  (match Page.check_size page_size with
  | _ -> ()
  | exception Invalid_argument _ ->
      Unix.close fd;
      raise (Bad_file (path ^ ": corrupt page size in header")));
  let n_pages = Page.get_u32 buf 12 in
  { fd; path; page_size; n_pages; closed = false }

let check_open t = if t.closed then invalid_arg "Pager: file is closed"

let check_pid t pid buf =
  check_open t;
  if pid < 0 || pid >= t.n_pages then
    invalid_arg (Printf.sprintf "Pager: page %d out of range 0..%d" pid (t.n_pages - 1));
  if Bytes.length buf <> t.page_size then
    invalid_arg "Pager: buffer length <> page size"

let allocate t =
  check_open t;
  let pid = t.n_pages in
  t.n_pages <- pid + 1;
  pid

let read t pid buf =
  check_pid t pid buf;
  ignore (Unix.lseek t.fd (header_len + (pid * t.page_size)) Unix.SEEK_SET);
  really_read t.fd buf 0 t.page_size

let write t pid buf =
  check_pid t pid buf;
  ignore (Unix.lseek t.fd (header_len + (pid * t.page_size)) Unix.SEEK_SET);
  really_write t.fd buf 0 t.page_size

let sync t =
  check_open t;
  write_header t;
  Unix.fsync t.fd

let close t =
  if not t.closed then begin
    write_header t;
    t.closed <- true;
    Unix.close t.fd
  end
