(* Disk-backed B+tree multimap (int64 -> int64).

   Meta page (page 0): [1]=kind  [4]=u32 root  [8]=i64 count
                       [16]=u16 height
   Leaf page:          [1]=kind  [2]=u16 n  [4]=u32 next (0 = none)
                       entries at [12 + 16i] = { i64 key; i64 value }
   Node page:          [1]=kind  [2]=u16 n (#keys)  [4]=u32 child0
                       pairs at [12 + 12i] = { i64 key; u32 child_{i+1} }

   Split rule: insert first (a node at rest always has n < capacity,
   so there is room), then split when n reaches capacity and promote
   the middle key.  With duplicates a run of equal keys may straddle a
   separator: left subtree keys are <= separator, right subtree keys
   are >=.  Lookups therefore descend leftmost (strict <) and scan
   forward along the leaf chain; inserts descend rightmost (<=) so a
   key's values stay in insertion order.

   R10 waiver: inserts do page I/O (through the buffer pool) while
   holding the tree latch.  Single-latch single-writer design, as in
   the buffer pool itself — see the header there and doc/STORAGE.md. *)
[@@@lint.allow "R10"]

let hdr = 12
let leaf_entry = 16
let node_pair = 12

type t = {
  pool : Buffer_pool.t;
  page_size : int;
  latch : Mutex.t;
  mutable root : int; [@lint.guarded_by "latch"]
  mutable count_ : int; [@lint.guarded_by "latch"]
  mutable height_ : int; [@lint.guarded_by "latch"]
}

let pool t = t.pool
let leaf_cap t = (t.page_size - hdr) / leaf_entry
let node_cap t = (t.page_size - hdr) / node_pair

let check_caps t =
  if leaf_cap t < 4 || node_cap t < 4 then
    invalid_arg "Btree: page size too small for 4 entries per node"

let write_meta t =
  Buffer_pool.with_page_rw t.pool 0 (fun buf ->
      Page.set_u32 buf 4 t.root;
      Page.set_i64 buf 8 (Int64.of_int t.count_);
      Page.set_u16 buf 16 t.height_)

let create pool =
  let pager = Buffer_pool.pager pool in
  if Pager.page_count pager <> 0 then
    invalid_arg "Btree.create: pager is not empty";
  let meta = Buffer_pool.allocate pool Page.Meta in
  ignore meta;
  let root = Buffer_pool.allocate pool Page.Btree_leaf in
  let t =
    {
      pool;
      page_size = Pager.page_size pager;
      latch = Mutex.create ();
      root;
      count_ = 0;
      height_ = 1;
    }
  in
  check_caps t;
  Mutex.protect t.latch (fun () -> write_meta t);
  t

let open_existing pool =
  let pager = Buffer_pool.pager pool in
  let root, count_, height_ =
    Buffer_pool.with_page pool 0 (fun buf ->
        if not (Page.has_kind buf Page.Meta) then
          raise (Pager.Bad_file "Btree: bad meta page");
        (Page.get_u32 buf 4, Int64.to_int (Page.get_i64 buf 8),
         Page.get_u16 buf 16))
  in
  let t =
    { pool; page_size = Pager.page_size pager; latch = Mutex.create ();
      root; count_; height_ }
  in
  check_caps t;
  t

let create_file ?(page_size = Page.default_size) ?(pool_frames = 64) path =
  create (Buffer_pool.create ~frames:pool_frames (Pager.create ~page_size path))

let open_file ?(pool_frames = 64) path =
  open_existing
    (Buffer_pool.create ~frames:pool_frames (Pager.open_existing path))

(* --- in-page accessors (leaf) --- *)

let leaf_n buf = Page.get_u16 buf 2
let leaf_next buf = Page.get_u32 buf 4
let leaf_key buf i = Page.get_i64 buf (hdr + (i * leaf_entry))
let leaf_value buf i = Page.get_i64 buf (hdr + (i * leaf_entry) + 8)

let leaf_set buf i k v =
  Page.set_i64 buf (hdr + (i * leaf_entry)) k;
  Page.set_i64 buf (hdr + (i * leaf_entry) + 8) v

(* --- in-page accessors (interior node) --- *)

let node_n buf = Page.get_u16 buf 2
let node_key buf i = Page.get_i64 buf (hdr + (i * node_pair))

let node_child buf i =
  if i = 0 then Page.get_u32 buf 4
  else Page.get_u32 buf (hdr + ((i - 1) * node_pair) + 8)

let node_set_pair buf i k c =
  Page.set_i64 buf (hdr + (i * node_pair)) k;
  Page.set_u32 buf (hdr + (i * node_pair) + 8) c

(* first index with key > k (rightmost/insert descent uses child of
   this index); binary search over sorted keys *)
let upper_bound key n k =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare (key mid) k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* first index with key >= k (leftmost/lookup descent) *)
let lower_bound key n k =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Int64.compare (key mid) k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* --- insertion --- *)

(* Split a full leaf [pid]; returns (promoted key, right page id). *)
let split_leaf t pid =
  let right = Buffer_pool.allocate t.pool Page.Btree_leaf in
  Buffer_pool.with_page_rw t.pool pid (fun lbuf ->
      Buffer_pool.with_page_rw t.pool right (fun rbuf ->
          let n = leaf_n lbuf in
          let mid = n / 2 in
          for i = mid to n - 1 do
            leaf_set rbuf (i - mid) (leaf_key lbuf i) (leaf_value lbuf i)
          done;
          Page.set_u16 rbuf 2 (n - mid);
          Page.set_u32 rbuf 4 (leaf_next lbuf);
          Page.set_u16 lbuf 2 mid;
          Page.set_u32 lbuf 4 right;
          (leaf_key rbuf 0, right)))

(* Split a full interior node [pid]; promotes the middle key. *)
let split_node t pid =
  let right = Buffer_pool.allocate t.pool Page.Btree_node in
  Buffer_pool.with_page_rw t.pool pid (fun lbuf ->
      Buffer_pool.with_page_rw t.pool right (fun rbuf ->
          let n = node_n lbuf in
          let mid = n / 2 in
          let promoted = node_key lbuf mid in
          Page.set_u32 rbuf 4 (node_child lbuf (mid + 1));
          for i = mid + 1 to n - 1 do
            node_set_pair rbuf (i - mid - 1) (node_key lbuf i)
              (node_child lbuf (i + 1))
          done;
          Page.set_u16 rbuf 2 (n - mid - 1);
          Page.set_u16 lbuf 2 mid;
          (promoted, right)))

(* Insert (k, v) under page [pid] at [depth] (1 = leaf).  Returns
   [Some (separator, right_pid)] when the child split. *)
let rec ins t pid depth k v =
  if depth = 1 then begin
    let n =
      Buffer_pool.with_page_rw t.pool pid (fun buf ->
          let n = leaf_n buf in
          let pos = upper_bound (leaf_key buf) n k in
          (* shift entries [pos..n-1] one slot right (overlapping blit
             is memmove) *)
          Bytes.blit buf (hdr + (pos * leaf_entry)) buf
            (hdr + ((pos + 1) * leaf_entry))
            ((n - pos) * leaf_entry);
          leaf_set buf pos k v;
          Page.set_u16 buf 2 (n + 1);
          n + 1)
    in
    if n >= leaf_cap t then Some (split_leaf t pid) else None
  end
  else begin
    let j, child =
      Buffer_pool.with_page t.pool pid (fun buf ->
          let j = upper_bound (node_key buf) (node_n buf) k in
          (j, node_child buf j))
    in
    match ins t child (depth - 1) k v with
    | None -> None
    | Some (sep, right_pid) ->
        let n =
          Buffer_pool.with_page_rw t.pool pid (fun buf ->
              let n = node_n buf in
              (* the split child was child_j, so the separator goes at
                 pair index j — re-searching could land past an equal
                 key and break child adjacency under duplicates *)
              Bytes.blit buf (hdr + (j * node_pair)) buf
                (hdr + ((j + 1) * node_pair))
                ((n - j) * node_pair);
              node_set_pair buf j sep right_pid;
              Page.set_u16 buf 2 (n + 1);
              n + 1)
        in
        if n >= node_cap t then Some (split_node t pid) else None
  end

(* Page faults happen under the tree latch: inserts are single-writer
   by design. *)
let insert t k v =
  Mutex.protect t.latch (fun () ->
      (match ins t t.root t.height_ k v with
      | None -> ()
      | Some (sep, right) ->
          let new_root = Buffer_pool.allocate t.pool Page.Btree_node in
          Buffer_pool.with_page_rw t.pool new_root (fun buf ->
              Page.set_u32 buf 4 t.root;
              node_set_pair buf 0 sep right;
              Page.set_u16 buf 2 1);
          t.root <- new_root;
          t.height_ <- t.height_ + 1);
      t.count_ <- t.count_ + 1;
      write_meta t)

(* Remove one (k, v) entry.  Leftmost descent to the first leaf that
   can hold k, then walk the leaf chain over the (possibly
   separator-straddling) run of equal keys until a matching value is
   found; entries to its right shift one slot left.  No rebalancing or
   merging: a leaf may underflow — even to empty — which scans and
   descents tolerate (separator keys stay valid as bounds even when
   the keyed entry is gone).  Page faults happen under the tree latch,
   as for inserts (single-writer design). *)
let remove t k v =
  Mutex.protect t.latch (fun () ->
      let rec descend pid depth =
        if depth = 1 then pid
        else
          let child =
            Buffer_pool.with_page t.pool pid (fun buf ->
                node_child buf (lower_bound (node_key buf) (node_n buf) k))
          in
          descend child (depth - 1)
      in
      let rec seek pid =
        let removed, past, next =
          Buffer_pool.with_page_rw t.pool pid (fun buf ->
              let n = leaf_n buf in
              let i = ref (lower_bound (leaf_key buf) n k) in
              let removed = ref false and past = ref false in
              while (not !removed) && (not !past) && !i < n do
                if not (Int64.equal (leaf_key buf !i) k) then past := true
                else if Int64.equal (leaf_value buf !i) v then begin
                  Bytes.blit buf
                    (hdr + ((!i + 1) * leaf_entry))
                    buf
                    (hdr + (!i * leaf_entry))
                    ((n - !i - 1) * leaf_entry);
                  Page.set_u16 buf 2 (n - 1);
                  removed := true
                end
                else incr i
              done;
              (!removed, !past, leaf_next buf))
        in
        if removed then true
        else if past || next = 0 then false
        else seek next
      in
      let hit = seek (descend t.root t.height_) in
      if hit then begin
        t.count_ <- t.count_ - 1;
        write_meta t
      end;
      hit)

let count t = Mutex.protect t.latch (fun () -> t.count_)
let height t = Mutex.protect t.latch (fun () -> t.height_)

(* Leftmost descent to the leaf that may hold the first entry >= k. *)
let descend_leftmost t k =
  let rec go pid depth =
    if depth = 1 then pid
    else
      let child =
        Buffer_pool.with_page t.pool pid (fun buf ->
            node_child buf (lower_bound (node_key buf) (node_n buf) k))
      in
      go child (depth - 1)
  in
  let root, h = Mutex.protect t.latch (fun () -> (t.root, t.height_)) in
  go root h

(* Walk the leaf chain from [pid] starting at entry [pos]; [f] returns
   false to stop. *)
let scan_from t pid pos f =
  let rec go pid pos =
    let cont, next =
      Buffer_pool.with_page t.pool pid (fun buf ->
          let n = leaf_n buf in
          let cont = ref true in
          let i = ref pos in
          while !cont && !i < n do
            cont := f (leaf_key buf !i) (leaf_value buf !i);
            incr i
          done;
          (!cont, leaf_next buf))
    in
    if cont && next <> 0 then go next 0
  in
  go pid pos

let find_all t k =
  let leaf = descend_leftmost t k in
  let pos =
    Buffer_pool.with_page t.pool leaf (fun buf ->
        lower_bound (leaf_key buf) (leaf_n buf) k)
  in
  let acc = ref [] in
  scan_from t leaf pos (fun key v ->
      if Int64.equal key k then begin
        acc := v :: !acc;
        true
      end
      else false);
  List.rev !acc

let iter_from t k f =
  let leaf = descend_leftmost t k in
  let pos =
    Buffer_pool.with_page t.pool leaf (fun buf ->
        lower_bound (leaf_key buf) (leaf_n buf) k)
  in
  scan_from t leaf pos (fun key v ->
      f key v;
      true)

let iter t f = iter_from t Int64.min_int f
let sync t = Buffer_pool.flush t.pool
let close t = Buffer_pool.close t.pool
