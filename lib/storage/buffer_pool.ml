(* Buffer pool with CLOCK (second-chance) eviction.

   One latch serializes the frame table, the clock hand, and the page
   I/O done on behalf of a miss or a flush.  That "I/O under the
   latch" is a deliberate teaching-DB simplification (no per-frame
   loading states, no latch crabbing).  Stats are kept unconditionally so
   the bench can compute hit rates even with observability disabled;
   the same events are mirrored into jqi.obs counters.

   R10 waiver (whole file): the single-latch design does pager I/O
   while holding the pool latch — the simplification this module is
   explicit about; see doc/STORAGE.md for what a latch-crabbing
   version would need. *)
[@@@lint.allow "R10"]

let c_hits = Jqi_obs.Obs.Counter.make "storage.pool_hits"
let c_misses = Jqi_obs.Obs.Counter.make "storage.pool_misses"
let c_evictions = Jqi_obs.Obs.Counter.make "storage.pool_evictions"
let c_flushes = Jqi_obs.Obs.Counter.make "storage.pool_flushes"

type frame = {
  buf : bytes;
  mutable page_id : int; (* -1 while the frame is empty *)
  mutable pins : int;
  mutable dirty : bool;
  mutable refbit : bool;
}

type stats = { hits : int; misses : int; evictions : int; flushes : int }

type t = {
  pager : Pager.t;
  arr : frame array;
  latch : Mutex.t;
  table : (int, frame) Hashtbl.t; [@lint.guarded_by "latch"]
  mutable hand : int; [@lint.guarded_by "latch"]
  mutable hits : int; [@lint.guarded_by "latch"]
  mutable misses : int; [@lint.guarded_by "latch"]
  mutable evictions : int; [@lint.guarded_by "latch"]
  mutable flushes : int; [@lint.guarded_by "latch"]
  mutable closed : bool; [@lint.guarded_by "latch"]
}

exception Exhausted of int

let frame_buf f = f.buf
let frame_page f = f.page_id

let create ?(frames = 64) pager =
  let n = max 1 frames in
  let size = Pager.page_size pager in
  let mk _ =
    { buf = Bytes.make size '\000'; page_id = -1; pins = 0; dirty = false;
      refbit = false }
  in
  {
    pager;
    arr = Array.init n mk;
    latch = Mutex.create ();
    table = Hashtbl.create (2 * n);
    hand = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    flushes = 0;
    closed = false;
  }

let frames t = Array.length t.arr
let pager t = t.pager
let check_open t = if t.closed then invalid_arg "Buffer_pool: pool is closed"

(* CLOCK sweep: skip pinned frames, give referenced frames a second
   chance, take the first unreferenced unpinned frame.  Two full
   sweeps suffice (the first clears every refbit); if none is found
   the pool is exhausted.  Called with the latch held. *)
let victim t =
  let n = Array.length t.arr in
  let rec go steps =
    if steps > 2 * n then raise (Exhausted n)
    else begin
      let f = t.arr.(t.hand) in
      t.hand <- (t.hand + 1) mod n;
      if f.pins > 0 then go (steps + 1)
      else if f.page_id < 0 then f
      else if f.refbit then begin
        f.refbit <- false;
        go (steps + 1)
      end
      else f
    end
  in
  go 1

(* Write back and forget the victim's current page. Latch held. *)
let write_back t f =
  if f.page_id >= 0 then begin
    if f.dirty then begin
      Pager.write t.pager f.page_id f.buf;
      f.dirty <- false;
      t.flushes <- t.flushes + 1;
      Jqi_obs.Obs.Counter.incr c_flushes
    end;
    Hashtbl.remove t.table f.page_id;
    f.page_id <- -1;
    t.evictions <- t.evictions + 1;
    Jqi_obs.Obs.Counter.incr c_evictions
  end

(* Page I/O under the pool latch: single-latch design, see header
   comment. *)
let pin t pid =
  Mutex.protect t.latch (fun () ->
      check_open t;
      match Hashtbl.find_opt t.table pid with
      | Some f ->
          f.pins <- f.pins + 1;
          f.refbit <- true;
          t.hits <- t.hits + 1;
          Jqi_obs.Obs.Counter.incr c_hits;
          f
      | None ->
          t.misses <- t.misses + 1;
          Jqi_obs.Obs.Counter.incr c_misses;
          let f = victim t in
          write_back t f;
          Pager.read t.pager pid f.buf;
          f.page_id <- pid;
          f.pins <- 1;
          f.dirty <- false;
          f.refbit <- true;
          Hashtbl.replace t.table pid f;
          f)

let unpin ?(dirty = false) t f =
  Mutex.protect t.latch (fun () ->
      if f.pins <= 0 then invalid_arg "Buffer_pool.unpin: frame is not pinned";
      f.pins <- f.pins - 1;
      if dirty then f.dirty <- true)

let with_page t pid fn =
  let f = pin t pid in
  Fun.protect ~finally:(fun () -> unpin t f) (fun () -> fn f.buf)

let with_page_rw t pid fn =
  let f = pin t pid in
  Fun.protect ~finally:(fun () -> unpin ~dirty:true t f) (fun () -> fn f.buf)

(* Victim write-back may do page I/O under the latch (see header). *)
let allocate t kind =
  Mutex.protect t.latch (fun () ->
      check_open t;
      let pid = Pager.allocate t.pager in
      let f = victim t in
      write_back t f;
      Bytes.fill f.buf 0 (Bytes.length f.buf) '\000';
      Page.set_kind f.buf kind;
      f.page_id <- pid;
      f.pins <- 0;
      f.dirty <- true;
      f.refbit <- true;
      Hashtbl.replace t.table pid f;
      pid)

(* Latch held across the write-back sweep and fsync: single-latch
   design, see header. *)
let flush_locked t =
  Array.iter
    (fun f ->
      if f.page_id >= 0 && f.dirty then begin
        Pager.write t.pager f.page_id f.buf;
        f.dirty <- false;
        t.flushes <- t.flushes + 1;
        Jqi_obs.Obs.Counter.incr c_flushes
      end)
    t.arr;
  Pager.sync t.pager

let flush t =
  Mutex.protect t.latch (fun () ->
      check_open t;
      flush_locked t)

let pinned t =
  Mutex.protect t.latch (fun () ->
      Array.fold_left (fun acc f -> acc + f.pins) 0 t.arr)

let resident t = Mutex.protect t.latch (fun () -> Hashtbl.length t.table)

let stats t =
  Mutex.protect t.latch (fun () ->
      { hits = t.hits; misses = t.misses; evictions = t.evictions;
        flushes = t.flushes })

let reset_stats t =
  Mutex.protect t.latch (fun () ->
      t.hits <- 0;
      t.misses <- 0;
      t.evictions <- 0;
      t.flushes <- 0)

let close t =
  Mutex.protect t.latch (fun () ->
      if not t.closed then begin
        flush_locked t;
        t.closed <- true;
        Pager.close t.pager
      end)
