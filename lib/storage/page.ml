(* Fixed-size page codec: byte-level field access over a [bytes]
   buffer. See doc/STORAGE.md for the on-disk layouts built on top. *)

let default_size = 4096
let min_size = 512
let max_size = 1 lsl 20

type kind = Meta | Heap_dir | Heap_data | Btree_leaf | Btree_node | Free

let kind_to_byte = function
  | Meta -> 1
  | Heap_dir -> 2
  | Heap_data -> 3
  | Btree_leaf -> 4
  | Btree_node -> 5
  | Free -> 0

let kind_of_byte = function
  | 1 -> Some Meta
  | 2 -> Some Heap_dir
  | 3 -> Some Heap_data
  | 4 -> Some Btree_leaf
  | 5 -> Some Btree_node
  | 0 -> Some Free
  | _ -> None

let pp_kind fmt k =
  Format.pp_print_string fmt
    (match k with
    | Meta -> "meta"
    | Heap_dir -> "heap-dir"
    | Heap_data -> "heap-data"
    | Btree_leaf -> "btree-leaf"
    | Btree_node -> "btree-node"
    | Free -> "free")

let check_size n =
  if n < min_size || n > max_size || n land (n - 1) <> 0 then
    invalid_arg
      (Printf.sprintf "Page.check_size: %d (want power of two in %d..%d)" n
         min_size max_size)
  else n

let get_u8 = Bytes.get_uint8
let set_u8 = Bytes.set_uint8
let get_u16 = Bytes.get_uint16_le
let set_u16 = Bytes.set_uint16_le

let get_u32 buf off =
  Int32.to_int (Bytes.get_int32_le buf off) land 0xffff_ffff

let set_u32 buf off v = Bytes.set_int32_le buf off (Int32.of_int v)
let get_i64 = Bytes.get_int64_le
let set_i64 = Bytes.set_int64_le
let get_string buf ~off ~len = Bytes.sub_string buf off len
let set_string buf ~off s = Bytes.blit_string s 0 buf off (String.length s)

let alloc size kind =
  let buf = Bytes.make (check_size size) '\000' in
  set_u8 buf 0 (kind_to_byte kind);
  buf

let get_kind buf = kind_of_byte (get_u8 buf 0)
let set_kind buf k = set_u8 buf 0 (kind_to_byte k)
let has_kind buf k = get_u8 buf 0 = kind_to_byte k
