(** Paged relation store: one relation in one heap file, dict-coded.

    The heap holds two record kinds in one append-only stream:
    ['D'] records intern a distinct cell value (its store code is its
    order of appearance — dense, first-occurrence order), and ['R']
    records encode one row as varint store codes (with NULL and NaN
    inlined, since they never intern). A ['D'] record always precedes
    the first ['R'] that references it, so {!open_file} rebuilds the
    whole in-memory state — value dictionary and row-id table — in a
    single streaming scan. The name and schema live in the heap's meta
    page.

    {!relation} wraps a store as a [Relation.t] with the [Paged]
    backend: scans stream off the heap under the buffer-pool budget,
    and the coded access lets [Dict.iter_encoded] translate store
    codes instead of re-hashing cells — making universe builds over a
    paged relation byte-identical to (and nearly as fast as) the
    in-memory path.

    Stores are single-writer: load first, then share read-only (reads
    are safe concurrently once loading is done — the buffer pool
    latches page access). *)

type t

val create :
  ?page_size:int -> ?pool_frames:int -> path:string -> name:string ->
  Jqi_relational.Schema.t -> t
(** Create an empty store at [path] (truncating). *)

val open_file : ?pool_frames:int -> string -> t
(** Reopen a store; one streaming scan rebuilds dictionary and row
    ids. Raises {!Pager.Bad_file} on a foreign or corrupt file. *)

val name : t -> string
val schema : t -> Jqi_relational.Schema.t
val path : t -> string
val heap : t -> Heap.t
val pool : t -> Buffer_pool.t

val append_row : t -> Jqi_relational.Tuple.t -> unit
(** Raises [Invalid_argument] on an arity mismatch, or when a single
    cell's encoding exceeds {!Heap.max_record}. *)

val row_count : t -> int
val distinct_values : t -> int

(** The cell value a store code interns (codes are dense, so any
    [0 <= c < distinct_values] is valid). *)
val value_of_code : t -> int -> Jqi_relational.Value.t
val get_row : t -> int -> Jqi_relational.Tuple.t

(** Fetch a row by heap record id — the pointer {!index_column}'s
    B-tree stores as its value. *)
val row_of_rid : t -> int -> Jqi_relational.Tuple.t

val iter_rows : t -> (int -> Jqi_relational.Tuple.t -> unit) -> unit
(** Stream rows in order; one heap scan, one page pin per record. *)

val apply_delta :
  t -> adds:Jqi_relational.Tuple.t array -> removed:int array -> unit
(** Apply one churn batch in place: tombstone the rows at the (sorted
    ascending, pre-delta) indexes [removed] in the heap, drop them from
    the row-id table, then append [adds] at the tail and sync.  Row
    indexes re-pack: survivors keep their relative order, adds follow —
    the exact sequence a reopen scan rebuilds.  ['D'] records are never
    deleted (store codes are minted forever).  Rids handed out earlier
    (e.g. inside an {!index_column} B-tree) dangle for removed rows;
    {!Btree.remove} is the index-side counterpart. *)

val delete_row : t -> int -> unit
(** {!apply_delta} with a single removed row index. *)

val relation : t -> Jqi_relational.Relation.t
(** Wrap as a [Paged] relation. Take it after loading finishes: the
    row count is snapshotted here. The relation's closures keep the
    store (and its file descriptor) alive.  The backend supports
    [Relation.apply_delta], which mutates this store in place and
    invalidates earlier wrappings (their snapshotted row counts go
    stale). *)

val index_column :
  ?page_size:int -> ?pool_frames:int -> path:string -> t -> int -> Btree.t
(** Build a disk-backed B-tree over one column: key = the column's
    store code, value = the row's rid. NULL/NaN cells (which join
    nothing) are skipped. Raises [Invalid_argument] on a bad column. *)

val sync : t -> unit
val close : t -> unit

(** {2 Backend selection for loaders (CLI / bench / server)} *)

type backend =
  | Mem  (** today's in-memory arrays *)
  | Paged of { frames : int; dir : string option }
      (** heap-file stores under a [frames]-page buffer pool; files go
          to [dir] (kept) or fresh temp files (one per relation) *)

val default_frames : int
(** 256 — the default [--buffer-pages]. *)

val backend_of_string : frames:int -> string -> backend option
(** ["mem"] or ["paged"] (case-insensitive). *)

val backend_to_string : backend -> string

val load_csv :
  ?sep:char -> ?schema:Jqi_relational.Schema.t -> ?page_size:int -> ?pool_frames:int ->
  dest:string -> name:string -> string -> t
(** Stream a CSV file straight into heap pages via {!Csv.load_into} —
    the full row list is never materialized. *)

val of_relation :
  ?page_size:int -> ?pool_frames:int -> dest:string -> Jqi_relational.Relation.t -> t
(** Copy any relation into a fresh paged store (used to A/B backends
    over generated data). *)

val load_csv_relation :
  ?sep:char -> ?schema:Jqi_relational.Schema.t -> backend:backend -> name:string -> string ->
  Jqi_relational.Relation.t
(** The one loader the CLI, server and bench share: [Mem] defers to
    {!Csv.load_relation}; [Paged] streams into a store and wraps it. *)
