(** Fixed-size page codec.

    A page is a [bytes] buffer of a power-of-two size whose first byte
    tags its kind. All multi-byte fields are little-endian. This module
    only reads and writes fields inside a buffer — file placement is
    {!Pager}'s job, caching is {!Buffer_pool}'s. *)

val default_size : int
(** 4096 bytes. *)

val min_size : int
(** Smallest supported page size (512); small pages keep eviction
    tests cheap. *)

(** First byte of every page. *)
type kind =
  | Meta  (** file-level metadata (heap header, b-tree root pointer) *)
  | Heap_dir  (** heap page directory: free-space entries + chain link *)
  | Heap_data  (** slotted page of variable-length records *)
  | Btree_leaf  (** sorted (key, value) pairs + next-leaf link *)
  | Btree_node  (** separator keys + child page ids *)
  | Free  (** zeroed / unused *)

val kind_to_byte : kind -> int
val kind_of_byte : int -> kind option
val pp_kind : Format.formatter -> kind -> unit

val check_size : int -> int
(** Validate a page size (power of two, within [min_size]..1 MiB);
    returns it or raises [Invalid_argument]. *)

val alloc : int -> kind -> bytes
(** Fresh zeroed page of the given size with the kind byte set. *)

val get_kind : bytes -> kind option
val set_kind : bytes -> kind -> unit

val has_kind : bytes -> kind -> bool
(** Kind-byte equality without a pattern match. *)

(** Field accessors; offsets are byte offsets from the page start. *)

val get_u8 : bytes -> int -> int
val set_u8 : bytes -> int -> int -> unit
val get_u16 : bytes -> int -> int
val set_u16 : bytes -> int -> int -> unit
val get_u32 : bytes -> int -> int
val set_u32 : bytes -> int -> int -> unit
val get_i64 : bytes -> int -> int64
val set_i64 : bytes -> int -> int64 -> unit

val get_string : bytes -> off:int -> len:int -> string
val set_string : bytes -> off:int -> string -> unit
