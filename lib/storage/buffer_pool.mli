(** Buffer pool: a bounded cache of pages with pin/unpin refcounts,
    dirty tracking, and CLOCK (second-chance) eviction.

    Every page access goes through {!pin}/{!unpin} (or the bracketed
    {!with_page}/{!with_page_rw}). A pinned frame is never evicted;
    eviction of a dirty victim writes it back first. When every frame
    is pinned, {!Exhausted} is raised rather than blocking.

    Hit/miss/eviction/flush counts are kept unconditionally in
    {!stats} and mirrored into [jqi.obs] counters
    [storage.pool_hits], [storage.pool_misses],
    [storage.pool_evictions] and [storage.pool_flushes].

    Thread-safe: one internal latch serializes frame-table updates and
    page I/O. The page [bytes] handed out by {!pin} is safe to read or
    write for as long as the caller holds the pin. *)

type t

type frame
(** A cached page, held pinned by the caller. *)

val frame_buf : frame -> bytes
(** The frame's page buffer; aliases pool memory, so only valid (and
    only guaranteed to hold the pinned page) while the pin is held. *)

val frame_page : frame -> int
(** Page id currently held by the frame. *)

exception Exhausted of int
(** All [n] frames are pinned; carrier is the pool size. *)

type stats = { hits : int; misses : int; evictions : int; flushes : int }

val create : ?frames:int -> Pager.t -> t
(** [create pager] wraps [pager] with a pool of [frames] buffers
    (default 64, minimum 1). The pool owns the pager: {!close} closes
    it. *)

val frames : t -> int
val pager : t -> Pager.t

val pin : t -> int -> frame
(** Fetch page [pid] into a frame (cache hit or a read through the
    pager) and increment its pin count. Raises {!Exhausted} when no
    frame can be freed, [Invalid_argument] on a bad pid. *)

val unpin : ?dirty:bool -> t -> frame -> unit
(** Release one pin; [~dirty:true] marks the frame for write-back.
    Raises [Invalid_argument] if the frame is not pinned. *)

val with_page : t -> int -> (bytes -> 'a) -> 'a
(** [pin]/read/[unpin] bracket (exception-safe). *)

val with_page_rw : t -> int -> (bytes -> 'a) -> 'a
(** Like {!with_page} but unpins with [~dirty:true]. *)

val allocate : t -> Page.kind -> int
(** Allocate a fresh page in the pager, materialize it in the pool as
    a zeroed page of the given kind, marked dirty; returns its id. *)

val flush : t -> unit
(** Write back every dirty frame (pinned ones included) and sync the
    pager. *)

val pinned : t -> int
(** Total outstanding pins across all frames (0 = no leaks). *)

val resident : t -> int
(** Number of frames currently holding a page. *)

val stats : t -> stats
val reset_stats : t -> unit

val close : t -> unit
(** Flush, then close the underlying pager. Idempotent. *)
