(** A file of fixed-size pages.

    The file starts with a 4 KiB header (magic + page size) so
    {!open_existing} can recover the page size; logical page ids are
    dense from 0 and map to [header + pid * page_size].

    A pager is single-owner and NOT internally synchronized: callers
    go through a {!Buffer_pool}, whose latch serializes all I/O on the
    underlying descriptor. *)

type t

exception Bad_file of string
(** Raised by {!open_existing} on a missing/foreign/truncated header. *)

val create : ?page_size:int -> string -> t
(** [create path] creates (or truncates) [path] with a fresh header.
    Raises [Invalid_argument] on a bad [page_size] (see
    {!Page.check_size}). *)

val open_existing : string -> t
(** Open an existing page file, reading the page size from the
    header. *)

val page_size : t -> int
val path : t -> string

val page_count : t -> int
(** Number of allocated pages (high-water mark, not file length). *)

val allocate : t -> int
(** Reserve the next page id. The page is materialized on first
    {!write}. *)

val read : t -> int -> bytes -> unit
(** [read t pid buf] fills [buf] (exactly [page_size] bytes) with page
    [pid]. Pages allocated but never written read back as zeroes.
    Raises [Invalid_argument] on an out-of-range pid or wrong-sized
    buffer. *)

val write : t -> int -> bytes -> unit
(** [write t pid buf] persists [buf] as page [pid]. *)

val sync : t -> unit
(** fsync the file. *)

val close : t -> unit
(** Close the descriptor; idempotent. Does not sync. *)
