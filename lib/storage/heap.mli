(** Append-only heap file of variable-length records over a
    {!Buffer_pool}.

    Layout (see doc/STORAGE.md):
    - page 0 — [Meta]: first directory page id + an application meta
      blob (the relation store keeps the name/schema there);
    - directory pages — [Heap_dir]: a chained array of
      [(data page, n_slots, free_bytes)] entries, giving free-space
      tracking and a scan order without touching data pages;
    - data pages — [Heap_data]: classic slotted pages, slot array
      growing from the header, record bytes packed from the end.

    Record ids ([rid]) encode [page_id lsl 16 lor slot] and are stable
    forever (append-only, no compaction, no delete, no WAL).

    Appends are serialized by an internal latch; reads ({!get},
    {!iter}) are latch-free and may run concurrently with each other
    once loading is done. Appending concurrently with reads is not
    supported. *)

type t

val create : Buffer_pool.t -> t
(** Format the (empty) pager behind [pool] as a heap file. The heap
    takes ownership of the pool: {!close} closes it. Raises
    [Invalid_argument] if the pager already has pages or the page size
    exceeds 32 KiB. *)

val open_existing : Buffer_pool.t -> t
(** Open a heap previously written by {!create}; rebuilds the append
    state (record count, tail page) from the directory chain. Raises
    {!Pager.Bad_file} on a non-heap file. *)

val create_file : ?page_size:int -> ?pool_frames:int -> string -> t
(** [create] over a fresh {!Pager}/{!Buffer_pool} on [path]. *)

val open_file : ?pool_frames:int -> string -> t
(** [open_existing] over [path]. *)

val pool : t -> Buffer_pool.t

val max_record : t -> int
(** Largest record length that fits one data page. *)

val append : t -> string -> int
(** Append a record, returning its rid. Raises [Invalid_argument] when
    the record exceeds {!max_record}. *)

val get : t -> int -> string
(** Fetch a record by rid; raises [Invalid_argument] on an unknown
    rid. *)

val iter : t -> (int -> string -> unit) -> unit
(** [iter t f] calls [f rid record] for every record in append order.
    Pins the containing page once per record (not once per page), so
    a full scan against a warm pool reports [n_slots - 1] hits per
    page — the hit-rate contract the storage bench measures. *)

val record_count : t -> int
val data_pages : t -> int

val set_meta : t -> string -> unit
(** Store an application blob in the meta page (raises
    [Invalid_argument] if it does not fit one page). *)

val meta : t -> string

val sync : t -> unit
(** Flush the pool (writes back every dirty page, fsyncs). *)

val close : t -> unit
(** {!sync} then close the pool and pager. *)
