(** Heap file of variable-length records over a {!Buffer_pool}:
    tail-only appends plus tombstone deletion.

    Layout (see doc/STORAGE.md):
    - page 0 — [Meta]: first directory page id + an application meta
      blob (the relation store keeps the name/schema there);
    - directory pages — [Heap_dir]: a chained array of
      [(data page, n_live, free_bytes)] entries, giving free-space
      tracking and a live record count without touching data pages;
    - data pages — [Heap_data]: classic slotted pages, slot array
      growing from the header, record bytes packed from the end.

    Record ids ([rid]) encode [page_id lsl 16 lor slot] and stay stable
    while the record lives.  {!delete} tombstones a slot in place
    (offset 0xffff, length preserved); deleting a page's {e frontier}
    (last) record reclaims its bytes immediately and cascades over any
    trailing tombstones, so a cascaded slot index on the tail page may
    be reissued to a later append — a deleted rid must be forgotten by
    its owner.  Appends never fill mid-page holes: physical scan order
    therefore remains logical append order, the invariant Relstore's
    reopen scan relies on.  Full compaction is future work (no WAL).

    Appends and deletes are serialized by an internal latch; reads
    ({!get}, {!iter}) are latch-free and may run concurrently with each
    other once loading is done. Mutating concurrently with reads is not
    supported. *)

type t

val create : Buffer_pool.t -> t
(** Format the (empty) pager behind [pool] as a heap file. The heap
    takes ownership of the pool: {!close} closes it. Raises
    [Invalid_argument] if the pager already has pages or the page size
    exceeds 32 KiB. *)

val open_existing : Buffer_pool.t -> t
(** Open a heap previously written by {!create}; rebuilds the append
    state (record count, tail page) from the directory chain. Raises
    {!Pager.Bad_file} on a non-heap file. *)

val create_file : ?page_size:int -> ?pool_frames:int -> string -> t
(** [create] over a fresh {!Pager}/{!Buffer_pool} on [path]. *)

val open_file : ?pool_frames:int -> string -> t
(** [open_existing] over [path]. *)

val pool : t -> Buffer_pool.t

val max_record : t -> int
(** Largest record length that fits one data page. *)

val append : t -> string -> int
(** Append a record, returning its rid. Raises [Invalid_argument] when
    the record exceeds {!max_record}. *)

val get : t -> int -> string
(** Fetch a record by rid; raises [Invalid_argument] on an unknown or
    deleted rid. *)

val delete : t -> int -> unit
(** Delete the record named by a rid: tombstone its slot (frontier
    records are reclaimed immediately, cascading over trailing
    tombstones).  The rid becomes invalid — {!get} raises, {!iter}
    skips it — and on the tail page its slot index may later be
    reissued by {!append}.  Raises [Invalid_argument] on an unknown or
    already-deleted rid. *)

val iter : t -> (int -> string -> unit) -> unit
(** [iter t f] calls [f rid record] for every live record in append
    order (tombstones are skipped). Pins the containing page once per
    record (not once per page, plus one header pin per page), so a
    full scan against a warm pool keeps the hit rate the storage
    bench measures. *)

val record_count : t -> int
(** Live records (deletions excluded). *)

val data_pages : t -> int

val free_bytes : t -> int
(** Total contiguous free bytes across data pages, per the free-space
    directory.  Bytes of mid-page tombstones are counted only once the
    frontier cascade reclaims them. *)

val set_meta : t -> string -> unit
(** Store an application blob in the meta page (raises
    [Invalid_argument] if it does not fit one page). *)

val meta : t -> string

val sync : t -> unit
(** Flush the pool (writes back every dirty page, fsyncs). *)

val close : t -> unit
(** {!sync} then close the pool and pager. *)
