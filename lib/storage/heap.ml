(* Tail-append heap file with tombstone deletion: meta page + directory
   chain + slotted data pages.  Offsets inside pages are u16, so heap
   page sizes are capped at 32 KiB.

   Meta page (page 0):   [1]=kind  [4]=u32 first_dir  [8]=u32 meta_len
                         [12..]=meta blob
   Directory page:       [1]=kind  [4]=u32 next_dir (0 = none)
                         [8]=u16 n_entries
                         [12 + 8i] = { u32 data_page; u16 n_live;
                                       u16 free_bytes }
   Data page:            [1]=kind  [2]=u16 n_slots  [4]=u16 data_start
                         slot i at [8 + 4i] = { u16 off; u16 len };
                         record bytes packed downward from page end.

   Deletion tombstones a slot by setting its offset to 0xffff (never a
   valid offset: pages are <= 32 KiB).  The length is preserved so that
   when the page's *last* slot is deleted, the frontier cascades over
   any trailing tombstones, reclaiming their bytes and slot entries in
   one go.  Appends remain tail-only — mid-page holes are never reused
   for new records, which keeps physical scan order equal to logical
   append order (the invariant Relstore's reopen scan depends on).
   Directory entries carry the page's *live* record count (not its
   physical slot count, which lives in the page header), so opening a
   churned file still rebuilds the record count from the directory
   chain alone.

   R10 waiver: appends/deletes (and the directory walk that rebuilds
   append state on open) fault pages through the buffer pool while
   holding the heap latch.  Single-latch single-writer design — see
   the buffer pool header and doc/STORAGE.md. *)
[@@@lint.allow "R10"]

let dir_header = 12
let dir_entry = 8
let data_header = 8
let slot_entry = 4
let max_heap_page = 32768

(* Slot-offset sentinel marking a deleted record; valid offsets are
   always < [max_heap_page]. *)
let tombstone = 0xffff

type t = {
  pool : Buffer_pool.t;
  page_size : int;
  latch : Mutex.t;
  mutable n_records : int; [@lint.guarded_by "latch"]
  mutable n_data_pages : int; [@lint.guarded_by "latch"]
  mutable last_dir : int; [@lint.guarded_by "latch"]
  mutable tail : int; (* data page appends go to; -1 = none *)
      [@lint.guarded_by "latch"]
  mutable tail_dir : int; (* dir page holding [tail]'s entry *)
      [@lint.guarded_by "latch"]
  mutable tail_idx : int; (* entry index of [tail] in [tail_dir] *)
      [@lint.guarded_by "latch"]
  mutable tail_free : int; (* cached free_bytes of [tail] *)
      [@lint.guarded_by "latch"]
  mutable tail_live : int; (* cached live-record count of [tail] *)
      [@lint.guarded_by "latch"]
}

let pool t = t.pool
let max_record t = t.page_size - data_header - slot_entry
let dir_capacity t = (t.page_size - dir_header) / dir_entry
let rid pid slot = (pid lsl 16) lor slot

let check_page_size n =
  if n > max_heap_page then
    invalid_arg
      (Printf.sprintf "Heap: page size %d exceeds %d (u16 offsets)" n
         max_heap_page)

let create pool =
  let pager = Buffer_pool.pager pool in
  check_page_size (Pager.page_size pager);
  if Pager.page_count pager <> 0 then
    invalid_arg "Heap.create: pager is not empty";
  let meta_pid = Buffer_pool.allocate pool Page.Meta in
  let first_dir = Buffer_pool.allocate pool Page.Heap_dir in
  Buffer_pool.with_page_rw pool meta_pid (fun buf ->
      Page.set_u32 buf 4 first_dir;
      Page.set_u32 buf 8 0);
  {
    pool;
    page_size = Pager.page_size pager;
    latch = Mutex.create ();
    n_records = 0;
    n_data_pages = 0;
    last_dir = first_dir;
    tail = -1;
    tail_dir = first_dir;
    tail_idx = -1;
    tail_free = 0;
    tail_live = 0;
  }

(* Snapshot one directory page: (next, [(data_page, n_live, free)]). *)
let read_dir pool pid =
  Buffer_pool.with_page pool pid (fun buf ->
      if not (Page.has_kind buf Page.Heap_dir) then
        raise (Pager.Bad_file "Heap: expected a directory page");
      let next = Page.get_u32 buf 4 in
      let n = Page.get_u16 buf 8 in
      let entries =
        Array.init n (fun i ->
            let off = dir_header + (i * dir_entry) in
            ( Page.get_u32 buf off,
              Page.get_u16 buf (off + 4),
              Page.get_u16 buf (off + 6) ))
      in
      (next, entries))

let open_existing pool =
  let pager = Buffer_pool.pager pool in
  check_page_size (Pager.page_size pager);
  let first_dir =
    Buffer_pool.with_page pool 0 (fun buf ->
        if not (Page.has_kind buf Page.Meta) then
          raise (Pager.Bad_file "Heap: bad meta page");
        Page.get_u32 buf 4)
  in
  let t =
    {
      pool;
      page_size = Pager.page_size pager;
      latch = Mutex.create ();
      n_records = 0;
      n_data_pages = 0;
      last_dir = first_dir;
      tail = -1;
      tail_dir = first_dir;
      tail_idx = -1;
      tail_free = 0;
      tail_live = 0;
    }
  in
  let rec walk pid =
    let next, entries = read_dir pool pid in
    Array.iteri
      (fun i (data_pid, n_live, free) ->
        t.n_records <- t.n_records + n_live;
        t.n_data_pages <- t.n_data_pages + 1;
        t.tail <- data_pid;
        t.tail_dir <- pid;
        t.tail_idx <- i;
        t.tail_free <- free;
        t.tail_live <- n_live)
      entries;
    t.last_dir <- pid;
    if next <> 0 then walk next
  in
  Mutex.protect t.latch (fun () -> walk first_dir);
  t

let create_file ?(page_size = Page.default_size) ?(pool_frames = 64) path =
  create (Buffer_pool.create ~frames:pool_frames (Pager.create ~page_size path))

let open_file ?(pool_frames = 64) path =
  open_existing
    (Buffer_pool.create ~frames:pool_frames (Pager.open_existing path))

(* Update the tail entry's (n_live, free_bytes) in its dir page. *)
let write_tail_entry t =
  Buffer_pool.with_page_rw t.pool t.tail_dir (fun buf ->
      let off = dir_header + (t.tail_idx * dir_entry) in
      Page.set_u16 buf (off + 4) t.tail_live;
      Page.set_u16 buf (off + 6) t.tail_free)

(* Open a fresh data page and register it in the directory, growing
   the directory chain when the tail dir page is full. Latch held. *)
let grow t =
  let data_pid = Buffer_pool.allocate t.pool Page.Heap_data in
  Buffer_pool.with_page_rw t.pool data_pid (fun buf ->
      Page.set_u16 buf 2 0;
      Page.set_u16 buf 4 t.page_size);
  let n_entries =
    Buffer_pool.with_page t.pool t.last_dir (fun buf -> Page.get_u16 buf 8)
  in
  let dir, idx =
    if n_entries < dir_capacity t then (t.last_dir, n_entries)
    else begin
      let fresh = Buffer_pool.allocate t.pool Page.Heap_dir in
      Buffer_pool.with_page_rw t.pool t.last_dir (fun buf ->
          Page.set_u32 buf 4 fresh);
      t.last_dir <- fresh;
      (fresh, 0)
    end
  in
  t.tail <- data_pid;
  t.tail_dir <- dir;
  t.tail_idx <- idx;
  t.tail_free <- t.page_size - data_header;
  t.tail_live <- 0;
  t.n_data_pages <- t.n_data_pages + 1;
  Buffer_pool.with_page_rw t.pool dir (fun buf ->
      Page.set_u16 buf 8 (idx + 1);
      let off = dir_header + (idx * dir_entry) in
      Page.set_u32 buf off data_pid;
      Page.set_u16 buf (off + 4) 0;
      Page.set_u16 buf (off + 6) t.tail_free)

(* Buffer-pool page faults under the heap latch: appends are
   serialized by design (single-writer heap). *)
let append t record =
  let len = String.length record in
  if len > max_record t then
    invalid_arg
      (Printf.sprintf "Heap.append: record of %d bytes exceeds max %d" len
         (max_record t));
  Mutex.protect t.latch (fun () ->
      let need = slot_entry + len in
      if t.tail < 0 || t.tail_free < need then grow t;
      let slot =
        Buffer_pool.with_page_rw t.pool t.tail (fun buf ->
            let n_slots = Page.get_u16 buf 2 in
            let data_start = Page.get_u16 buf 4 in
            let off = data_start - len in
            Page.set_string buf ~off record;
            let slot_off = data_header + (n_slots * slot_entry) in
            Page.set_u16 buf slot_off off;
            Page.set_u16 buf (slot_off + 2) len;
            Page.set_u16 buf 2 (n_slots + 1);
            Page.set_u16 buf 4 off;
            n_slots)
      in
      t.tail_free <- t.tail_free - need;
      t.tail_live <- t.tail_live + 1;
      write_tail_entry t;
      t.n_records <- t.n_records + 1;
      rid t.tail slot)

(* [None] when the slot is tombstoned. *)
let get_opt t r =
  let pid = r lsr 16 and slot = r land 0xffff in
  Buffer_pool.with_page t.pool pid (fun buf ->
      if not (Page.has_kind buf Page.Heap_data) then
        invalid_arg "Heap.get: rid does not name a data page";
      let n_slots = Page.get_u16 buf 2 in
      if slot >= n_slots then invalid_arg "Heap.get: slot out of range";
      let slot_off = data_header + (slot * slot_entry) in
      let off = Page.get_u16 buf slot_off in
      if off = tombstone then None
      else
        let len = Page.get_u16 buf (slot_off + 2) in
        Some (Page.get_string buf ~off ~len))

let get t r =
  match get_opt t r with
  | Some record -> record
  | None -> invalid_arg "Heap.get: record deleted"

let iter t f =
  let first_dir =
    Buffer_pool.with_page t.pool 0 (fun buf -> Page.get_u32 buf 4)
  in
  let rec walk dir_pid =
    let next, entries = read_dir t.pool dir_pid in
    Array.iter
      (fun (data_pid, _live, _free) ->
        (* Physical slot count lives in the page header (the directory
           tracks live counts); tombstoned slots are skipped. *)
        let n_slots =
          Buffer_pool.with_page t.pool data_pid (fun buf ->
              if not (Page.has_kind buf Page.Heap_data) then
                raise (Pager.Bad_file "Heap: expected a data page");
              Page.get_u16 buf 2)
        in
        for slot = 0 to n_slots - 1 do
          (* one pin per record, deliberately: see .mli *)
          let r = rid data_pid slot in
          match get_opt t r with
          | Some record -> f r record
          | None -> ()
        done)
      entries;
    if next <> 0 then walk next
  in
  walk first_dir

(* Find the directory entry of [data_pid]: (dir page, entry index). *)
let find_dir_entry t data_pid =
  let first_dir =
    Buffer_pool.with_page t.pool 0 (fun buf -> Page.get_u32 buf 4)
  in
  let rec walk dir_pid =
    let next, entries = read_dir t.pool dir_pid in
    let found = ref (-1) in
    Array.iteri
      (fun i (dp, _, _) -> if dp = data_pid && !found < 0 then found := i)
      entries;
    if !found >= 0 then (dir_pid, !found)
    else if next <> 0 then walk next
    else invalid_arg "Heap.delete: rid does not name a data page"
  in
  walk first_dir

(* Delete the record named by [r]: tombstone its slot, or — when it is
   the page's frontier (last) record — drop the slot and cascade over
   any trailing tombstones, reclaiming their bytes too.  rids of
   deleted records become invalid; a cascaded slot index on the tail
   page may be reissued by a later append. *)
let delete t r =
  let pid = r lsr 16 and slot = r land 0xffff in
  Mutex.protect t.latch (fun () ->
      let page_free =
        Buffer_pool.with_page_rw t.pool pid (fun buf ->
            if not (Page.has_kind buf Page.Heap_data) then
              invalid_arg "Heap.delete: rid does not name a data page";
            let n_slots = Page.get_u16 buf 2 in
            if slot >= n_slots then
              invalid_arg "Heap.delete: slot out of range";
            let slot_off = data_header + (slot * slot_entry) in
            if Page.get_u16 buf slot_off = tombstone then
              invalid_arg "Heap.delete: record already deleted";
            if slot = n_slots - 1 then begin
              (* Frontier record: its offset IS data_start (records pack
                 downward, the last slot is the lowest).  Reclaim it and
                 cascade over trailing tombstones. *)
              let data_start =
                ref (Page.get_u16 buf 4 + Page.get_u16 buf (slot_off + 2))
              in
              let n = ref slot in
              let scanning = ref true in
              while !scanning && !n > 0 do
                let so = data_header + ((!n - 1) * slot_entry) in
                if Page.get_u16 buf so = tombstone then begin
                  data_start := !data_start + Page.get_u16 buf (so + 2);
                  decr n
                end
                else scanning := false
              done;
              Page.set_u16 buf 2 !n;
              Page.set_u16 buf 4 !data_start
            end
            else Page.set_u16 buf slot_off tombstone;
            let n_slots = Page.get_u16 buf 2 in
            Page.get_u16 buf 4 - (data_header + (n_slots * slot_entry)))
      in
      if pid = t.tail then begin
        t.tail_free <- page_free;
        t.tail_live <- t.tail_live - 1;
        write_tail_entry t
      end
      else begin
        let dir_pid, idx = find_dir_entry t pid in
        Buffer_pool.with_page_rw t.pool dir_pid (fun buf ->
            let off = dir_header + (idx * dir_entry) in
            let live = Page.get_u16 buf (off + 4) in
            if live = 0 then
              invalid_arg "Heap.delete: page has no live records";
            Page.set_u16 buf (off + 4) (live - 1);
            Page.set_u16 buf (off + 6) page_free)
      end;
      t.n_records <- t.n_records - 1)

(* Contiguous free bytes across all data pages, per the directory. *)
let free_bytes t =
  Mutex.protect t.latch (fun () ->
      let first_dir =
        Buffer_pool.with_page t.pool 0 (fun buf -> Page.get_u32 buf 4)
      in
      let total = ref 0 in
      let rec walk dir_pid =
        let next, entries = read_dir t.pool dir_pid in
        Array.iter (fun (_, _, free) -> total := !total + free) entries;
        if next <> 0 then walk next
      in
      walk first_dir;
      !total)

let record_count t = Mutex.protect t.latch (fun () -> t.n_records)
let data_pages t = Mutex.protect t.latch (fun () -> t.n_data_pages)

let set_meta t blob =
  if String.length blob > t.page_size - dir_header then
    invalid_arg "Heap.set_meta: blob does not fit the meta page";
  Buffer_pool.with_page_rw t.pool 0 (fun buf ->
      Page.set_u32 buf 8 (String.length blob);
      Page.set_string buf ~off:12 blob)

let meta t =
  Buffer_pool.with_page t.pool 0 (fun buf ->
      let len = Page.get_u32 buf 8 in
      Page.get_string buf ~off:12 ~len)

let sync t = Buffer_pool.flush t.pool
let close t = Buffer_pool.close t.pool
