(** Disk-backed B+tree multimap from int64 keys to int64 values, over
    its own {!Buffer_pool}.

    The relation store keys it on [Dict] codes (key = column code,
    value = rid), giving an out-of-core secondary index. Duplicate
    keys are kept; values of one key come back in insertion order.
    Leaves are chained left-to-right, so {!iter} / {!iter_from} stream
    in key order without touching interior nodes.

    Invariants (checked by test/test_storage.ml against a sorted
    model): every node holds [n < capacity] entries at rest; a left
    subtree's keys are [<=] its separator, the right subtree's [>=] —
    duplicates may straddle a separator, which the leftmost-descent +
    leaf-chain scan in {!find_all} handles.

    Inserts are serialized by an internal latch; lookups and scans are
    latch-free and safe once writing is done. The pool needs at least
    4 frames (a split pins two pages plus the meta page). *)

type t

val create : Buffer_pool.t -> t
(** Format the (empty) pager behind [pool] as a b-tree file; takes
    ownership of the pool. *)

val open_existing : Buffer_pool.t -> t
(** Reopen a tree written by {!create}. Raises {!Pager.Bad_file} on a
    foreign file. *)

val create_file : ?page_size:int -> ?pool_frames:int -> string -> t
val open_file : ?pool_frames:int -> string -> t
val pool : t -> Buffer_pool.t

val insert : t -> int64 -> int64 -> unit

val remove : t -> int64 -> int64 -> bool
(** [remove t k v] deletes one [(k, v)] entry (the first in insertion
    order among duplicates); [false] when no such entry exists.  No
    rebalancing: leaves may underflow (even to empty), which scans and
    descents tolerate — the index-side counterpart of the heap's
    tombstone deletion.  Serialized by the same latch as {!insert}. *)

val count : t -> int

val find_all : t -> int64 -> int64 list
(** All values stored under the key, in insertion order. *)

val iter : t -> (int64 -> int64 -> unit) -> unit
(** Full scan in key order (ties in insertion order). *)

val iter_from : t -> int64 -> (int64 -> int64 -> unit) -> unit
(** Scan in key order starting at the first entry with key [>=] the
    given key. *)

val height : t -> int
(** Tree height (1 = root is a leaf). *)

val sync : t -> unit
val close : t -> unit
