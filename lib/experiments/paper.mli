(** The paper's published numbers, used to print paper-vs-measured rows.

    Strategy order everywhere: BU, TD, L1S, L2S, RND (the column order of
    Figures 6c/6d and 7). *)

val strategy_order : string list

(** One Table 1 line. *)
type table1_row = {
  dataset : string;
  goal : string;
  product_size : float;
  join_ratio : float;
  best : string list;  (** strategies tied for fewest interactions *)
  best_interactions : int;
  best_seconds : float list;  (** one entry per strategy in [best] *)
}

val table1_tpch_sf1 : table1_row list
val table1_tpch_sf100000 : table1_row list

(** Synthetic Table 1 lines: per config, |D|, join ratio, and the best
    strategy / interactions / seconds for goal sizes 0..4. *)
type synth_block = {
  config : string;
  product_size : float;
  join_ratio : float;
  by_size : (string * int * float) array;
      (** best strategy, interactions, seconds *)
}

val table1_synth : synth_block list

val fig6c_times_sf1 : float array array
(** Figure 6c: inference times in seconds, rows Join 1..5, columns in
    [strategy_order]. *)

val fig6d_times_sf100000 : float array array
(** Figure 6d: same layout as [fig6c_times_sf1]. *)

val fig7_times : (string * float array array) list
(** Figure 7 time tables: per config, rows goal size 0..4, columns in
    [strategy_order]. *)
