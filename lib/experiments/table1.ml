(* Table 1: the summary of all experiments — Cartesian-product size, join
   ratio, best strategy w.r.t. interactions and its time — printed next to
   the paper's values. *)

module Table = Jqi_util.Ascii_table

type row = {
  dataset : string;
  goal : string;
  product_size : float;
  join_ratio : float;
  best : string;
  best_interactions : float;
  best_seconds : float;
}

let of_measurements ~dataset ~goal ~product_size ~join_ratio measurements =
  (* All strategies tied for the minimum are reported, as in the paper's
     "BU/TD/L2S" entries. *)
  let min_int_ =
    List.fold_left
      (fun acc (m : Runner.measurement) -> Float.min acc m.interactions)
      infinity measurements
  in
  let winners =
    List.filter
      (fun (m : Runner.measurement) -> m.interactions = min_int_)
      measurements
  in
  {
    dataset;
    goal;
    product_size;
    join_ratio;
    best = String.concat "/" (List.map (fun (m : Runner.measurement) -> m.strategy) winners);
    best_interactions = min_int_;
    best_seconds =
      (match winners with [] -> nan | w :: _ -> w.seconds);
  }

let of_fig6 ~dataset (results : Fig6.join_result list) =
  List.map
    (fun (r : Fig6.join_result) ->
      of_measurements ~dataset
        ~goal:(Printf.sprintf "%s (size %d)" r.label r.goal_size)
        ~product_size:r.product_size ~join_ratio:r.join_ratio r.measurements)
    results

let of_fig7 (result : Fig7.config_result) =
  List.map
    (fun (s : Fig7.size_result) ->
      of_measurements
        ~dataset:(Fmt.str "%a" Jqi_synth.Synth.pp_config result.config)
        ~goal:(Printf.sprintf "joins of size %d" s.goal_size)
        ~product_size:result.product_size ~join_ratio:result.join_ratio
        s.measurements)
    result.by_size

let render ?(paper_hint = []) rows =
  let headers =
    [ "dataset"; "goal"; "|D|"; "join ratio"; "best"; "int."; "time (s)"; "paper: best (int.)" ]
  in
  let paper_for i =
    match List.nth_opt paper_hint i with
    | Some (best, ints) -> Printf.sprintf "%s (%d)" best ints
    | None -> ""
  in
  Table.render ~headers
    (List.mapi
       (fun i r ->
         [
           r.dataset;
           r.goal;
           Printf.sprintf "%.3g" r.product_size;
           Printf.sprintf "%.3f" r.join_ratio;
           (if r.best = "" then "n/a" else r.best);
           (if Float.is_finite r.best_interactions then
              Printf.sprintf "%.1f" r.best_interactions
            else "n/a");
           (if Float.is_nan r.best_seconds then "n/a"
            else Printf.sprintf "%.3f" r.best_seconds);
           paper_for i;
         ])
       rows)
