(** Theorem 6.1 made empirical: random 3SAT instances reduced to CONS⋉;
    the SAT answer on φ and the CONS⋉ answer on the reduction must agree,
    and the decision time shows the NP-completeness scaling. *)

type point = {
  nvars : int;
  nclauses : int;
  omega_width : int;
  agree : bool;  (** all instances at this size agreed *)
  sat_fraction : float;
  cons_seconds : float;  (** mean CONS⋉ decision time *)
}

(** One point per (nvars, nclauses), [per_point] random formulas each. *)
val run : ?seed:int -> ?per_point:int -> (int * int) list -> point list

val render : point list -> string
