(** Table 1 rows: best strategy per experiment with instance statistics,
    rendered next to the paper's published best. *)

type row = {
  dataset : string;
  goal : string;
  product_size : float;
  join_ratio : float;
  best : string;  (** ties joined with "/" as in the paper *)
  best_interactions : float;
  best_seconds : float;
}

val of_measurements :
  dataset:string -> goal:string -> product_size:float -> join_ratio:float ->
  Runner.measurement list -> row

val of_fig6 : dataset:string -> Fig6.join_result list -> row list
val of_fig7 : Fig7.config_result -> row list

(** [paper_hint] pairs (best, interactions) line up with the rows. *)
val render : ?paper_hint:(string * int) list -> row list -> string
