(** Figure 6 driver: the five TPC-H goal joins at a given scale, every
    strategy, interactions and times. *)

type join_result = {
  label : string;
  goal_size : int;
  product_size : float;
  join_ratio : float;
  n_classes : int;
  measurements : Runner.measurement list;
}

type setting = { name : string; scale : int; seed : int }

(** [builder] selects the universe constructor (default
    [Jqi_core.Universe.build], the profile quotient). *)
val run_join :
  ?builder:
    (Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Universe.t) ->
  seed:int -> Jqi_tpch.Tpch.goal_join -> join_result

val run :
  ?builder:
    (Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Universe.t) ->
  setting -> join_result list

(** Figure 6a/6b as an ASCII bar chart. *)
val interactions_chart : title:string -> join_result list -> string

(** Figure 6c/6d with the paper's times as the last column (rows in
    [Paper.strategy_order] order). *)
val time_table : paper:float array array -> join_result list -> string
