(* The paper's published numbers, used to print paper-vs-measured rows.

   Strategy order everywhere: BU, TD, L1S, L2S, RND (the column order of
   Figures 6c/6d and 7). *)

let strategy_order = [ "BU"; "TD"; "L1S"; "L2S"; "RND" ]

(* One Table 1 line. *)
type table1_row = {
  dataset : string;
  goal : string;
  product_size : float;
  join_ratio : float;
  best : string list;  (* strategies tied for fewest interactions *)
  best_interactions : int;
  best_seconds : float list;  (* one entry per strategy in [best] *)
}

let table1_tpch_sf1 =
  [
    { dataset = "TPC-H SF=1"; goal = "Join 1 (size 1)"; product_size = 2.5e5;
      join_ratio = 1.; best = [ "BU"; "TD"; "L2S" ]; best_interactions = 2;
      best_seconds = [ 0.001; 0.001; 0.072 ] };
    { dataset = "TPC-H SF=1"; goal = "Join 2 (size 1)"; product_size = 2.5e5;
      join_ratio = 1.; best = [ "TD" ]; best_interactions = 2;
      best_seconds = [ 0.001 ] };
    { dataset = "TPC-H SF=1"; goal = "Join 3 (size 1)"; product_size = 2.5e6;
      join_ratio = 1.142; best = [ "TD"; "L2S" ]; best_interactions = 2;
      best_seconds = [ 0.001; 0.042 ] };
    { dataset = "TPC-H SF=1"; goal = "Join 4 (size 1)"; product_size = 9.1e7;
      join_ratio = 2.109; best = [ "L2S" ]; best_interactions = 4;
      best_seconds = [ 56.167 ] };
    { dataset = "TPC-H SF=1"; goal = "Join 5 (size 2)"; product_size = 9.1e6;
      join_ratio = 1.681; best = [ "TD" ]; best_interactions = 25;
      best_seconds = [ 0.014 ] };
  ]

let table1_tpch_sf100000 =
  [
    { dataset = "TPC-H SF=100000"; goal = "Join 1 (size 1)"; product_size = 2.5e5;
      join_ratio = 1.; best = [ "BU"; "TD"; "L2S" ]; best_interactions = 2;
      best_seconds = [ 0.001; 0.001; 0.072 ] };
    { dataset = "TPC-H SF=100000"; goal = "Join 2 (size 1)"; product_size = 2.5e5;
      join_ratio = 1.; best = [ "TD" ]; best_interactions = 2;
      best_seconds = [ 0.001 ] };
    { dataset = "TPC-H SF=100000"; goal = "Join 3 (size 1)"; product_size = 1.5e7;
      join_ratio = 1.166; best = [ "TD" ]; best_interactions = 2;
      best_seconds = [ 0.001 ] };
    { dataset = "TPC-H SF=100000"; goal = "Join 4 (size 1)"; product_size = 9.6e8;
      join_ratio = 2.03; best = [ "L2S" ]; best_interactions = 3;
      best_seconds = [ 9.694 ] };
    { dataset = "TPC-H SF=100000"; goal = "Join 5 (size 2)"; product_size = 1.5e7;
      join_ratio = 1.523; best = [ "TD" ]; best_interactions = 12;
      best_seconds = [ 0.003 ] };
  ]

(* Synthetic Table 1 lines: (config label, |D|, join ratio,
   per-goal-size best strategy / interactions / seconds for sizes 0..4). *)
type synth_block = {
  config : string;
  product_size : float;
  join_ratio : float;
  by_size : (string * int * float) array;  (* best strategy, interactions, seconds *)
}

let table1_synth =
  [
    { config = "(3,3,100,100)"; product_size = 1e4; join_ratio = 1.647;
      by_size =
        [| ("BU", 1, 0.002); ("L2S", 4, 8.95); ("TD", 15, 0.006);
           ("L2S", 14, 10.241); ("L2S", 13, 9.924) |] };
    { config = "(3,3,50,100)"; product_size = 2.5e3; join_ratio = 1.341;
      by_size =
        [| ("BU", 1, 0.001); ("L2S", 4, 1.373); ("TD", 9, 0.002);
           ("L2S", 7, 1.28); ("L2S", 8, 1.332) |] };
    { config = "(3,4,50,100)"; product_size = 2.5e3; join_ratio = 1.458;
      by_size =
        [| ("BU", 1, 0.001); ("L2S", 5, 6.698); ("TD", 13, 0.004);
           ("L2S", 10, 7.1); ("L2S", 9, 7.344) |] };
    { config = "(2,5,50,100)"; product_size = 2.5e3; join_ratio = 1.377;
      by_size =
        [| ("BU", 1, 0.001); ("L2S", 5, 2.502); ("TD", 10, 0.003);
           ("L2S", 9, 2.859); ("L2S", 10, 3.719) |] };
    { config = "(2,4,50,50)"; product_size = 2.5e3; join_ratio = 1.596;
      by_size =
        [| ("BU", 1, 0.004); ("L2S", 4, 10.71); ("TD", 13, 0.011);
           ("L2S", 13, 14.058); ("L2S", 13, 14.177) |] };
    { config = "(2,4,50,100)"; product_size = 2.5e3; join_ratio = 1.633;
      by_size =
        [| ("BU", 1, 0.001); ("L2S", 4, 0.666); ("TD", 8, 0.001);
           ("L2S", 7, 0.954); ("L2S", 9, 1.072) |] };
  ]

(* Figures 6c/6d: inference times in seconds, rows Join 1..5, columns in
   [strategy_order]. *)
let fig6c_times_sf1 =
  [|
    [| 0.001; 0.001; 0.015; 0.072; 0.001 |];
    [| 0.001; 0.001; 0.008; 0.046; 0.001 |];
    [| 0.001; 0.001; 0.010; 0.042; 0.001 |];
    [| 0.012; 0.010; 3.452; 56.167; 0.013 |];
    [| 0.019; 0.014; 2.530; 73.570; 0.013 |];
  |]

let fig6d_times_sf100000 =
  [|
    [| 0.001; 0.001; 0.017; 0.072; 0.001 |];
    [| 0.001; 0.001; 0.013; 0.074; 0.001 |];
    [| 0.001; 0.001; 0.006; 0.033; 0.001 |];
    [| 0.007; 0.004; 0.627; 9.694; 0.006 |];
    [| 0.004; 0.003; 0.312; 4.423; 0.004 |];
  |]

(* Figure 7 time tables: per config, rows goal size 0..4, columns in
   [strategy_order]. *)
let fig7_times =
  [
    ( "(3,3,100,100)",
      [|
        [| 0.002; 0.002; 0.127; 6.147; 0.002 |];
        [| 0.004; 0.004; 0.335; 8.950; 0.004 |];
        [| 0.008; 0.006; 0.916; 17.648; 0.006 |];
        [| 0.010; 0.008; 1.085; 10.241; 0.008 |];
        [| 0.010; 0.008; 1.132; 9.924; 0.008 |];
      |] );
    ( "(3,3,50,100)",
      [|
        [| 0.001; 0.001; 0.040; 0.999; 0.001 |];
        [| 0.002; 0.002; 0.097; 1.373; 0.002 |];
        [| 0.003; 0.002; 0.189; 2.190; 0.002 |];
        [| 0.003; 0.002; 0.185; 1.280; 0.002 |];
        [| 0.003; 0.002; 0.185; 1.332; 0.003 |];
      |] );
    ( "(3,4,50,100)",
      [|
        [| 0.001; 0.001; 0.100; 3.949; 0.001 |];
        [| 0.004; 0.003; 0.320; 6.698; 0.003 |];
        [| 0.007; 0.004; 0.693; 11.260; 0.005 |];
        [| 0.008; 0.006; 0.856; 7.100; 0.006 |];
        [| 0.010; 0.007; 1.049; 7.344; 0.006 |];
      |] );
    ( "(2,5,50,100)",
      [|
        [| 0.001; 0.001; 0.057; 1.718; 0.001 |];
        [| 0.002; 0.002; 0.155; 2.502; 0.002 |];
        [| 0.004; 0.003; 0.316; 4.074; 0.003 |];
        [| 0.005; 0.004; 0.385; 2.859; 0.004 |];
        [| 0.006; 0.004; 0.516; 3.719; 0.005 |];
      |] );
    ( "(2,4,50,50)",
      [|
        [| 0.004; 0.005; 0.216; 8.739; 0.005 |];
        [| 0.008; 0.008; 0.505; 10.710; 0.008 |];
        [| 0.016; 0.011; 1.306; 18.713; 0.012 |];
        [| 0.019; 0.015; 1.492; 14.058; 0.014 |];
        [| 0.019; 0.015; 1.576; 14.177; 0.014 |];
      |] );
    ( "(2,4,50,100)",
      [|
        [| 0.001; 0.001; 0.027; 0.544; 0.001 |];
        [| 0.001; 0.001; 0.059; 0.666; 0.001 |];
        [| 0.002; 0.001; 0.112; 1.046; 0.002 |];
        [| 0.003; 0.002; 0.138; 0.954; 0.002 |];
        [| 0.003; 0.002; 0.141; 1.072; 0.002 |];
      |] );
  ]
