(** Shared experiment driver: run strategies against goal predicates and
    collect the §5 measures (interactions, time). *)

type measurement = {
  strategy : string;
  interactions : float;
  seconds : float;
  verified : bool;  (** inferred predicate instance-equivalent to the goal *)
}

(** The paper's five strategies, in its column order BU, TD, L1S, L2S, RND. *)
val paper_strategies : seed:int -> unit -> Jqi_core.Strategy.t list

val strategy_names : string list

(** One inference run per strategy against the honest oracle. *)
val run_goal :
  Jqi_core.Universe.t -> goal:Jqi_util.Bits.t -> Jqi_core.Strategy.t list ->
  measurement list

(** Pointwise mean over runs that used the same strategies in the same
    order; [verified] is the conjunction. *)
val average : measurement list list -> measurement list

val best_by_interactions : measurement list -> measurement option
