(* Figure 7: the synthetic experiments (§5.2).

   For each generator configuration, draw fresh instances, use the
   non-nullable predicates of each size 0..4 as goal predicates, run every
   strategy, and average — the paper averages over 100 runs; the number of
   instances and the number of goals sampled per size are parameters so the
   quick bench stays quick. *)

module Bits = Jqi_util.Bits
module Prng = Jqi_util.Prng
module Universe = Jqi_core.Universe
module Chart = Jqi_util.Chart
module Table = Jqi_util.Ascii_table
module Synth = Jqi_synth.Synth

type size_result = {
  goal_size : int;
  n_goals : int;  (* goals actually exercised across all instances *)
  measurements : Runner.measurement list;  (* averaged *)
}

type config_result = {
  config : Synth.config;
  product_size : float;
  join_ratio : float;  (* averaged over instances *)
  by_size : size_result list;
}

let max_goal_size = 4

(* [runs] = independently generated instances; [goals_per_size] caps how
   many distinct goal predicates of each size are exercised per instance
   (None = all of them, the paper's setting). *)
let run ?(builder = Universe.build) ?(seed = 1) ?(runs = 10) ?goals_per_size config =
  let prng = Prng.create seed in
  let per_size = Array.make (max_goal_size + 1) [] in
  let ratios = ref [] in
  let goal_counts = Array.make (max_goal_size + 1) 0 in
  for _ = 1 to runs do
    let r, p = Synth.generate prng config in
    let universe = builder r p in
    ratios := Universe.join_ratio universe :: !ratios;
    for size = 0 to max_goal_size do
      let goals = Synth.goals_of_size universe ~size in
      let goals =
        match goals_per_size with
        | None -> goals
        | Some k ->
            let arr = Prng.shuffle prng (Array.of_list goals) in
            Array.to_list (Array.sub arr 0 (min k (Array.length arr)))
      in
      List.iter
        (fun goal ->
          goal_counts.(size) <- goal_counts.(size) + 1;
          let ms =
            Runner.run_goal universe ~goal
              (Runner.paper_strategies ~seed:(Prng.next_int prng land 0xFFFF) ())
          in
          per_size.(size) <- ms :: per_size.(size))
        goals
    done
  done;
  {
    config;
    product_size = float_of_int (config.rows * config.rows);
    join_ratio = Jqi_util.Stats.mean (Array.of_list !ratios);
    by_size =
      List.init (max_goal_size + 1) (fun size ->
          {
            goal_size = size;
            n_goals = goal_counts.(size);
            measurements = Runner.average per_size.(size);
          });
  }

let interactions_chart result =
  Chart.render_grouped
    ~title:
      (Fmt.str "Interactions vs goal size, config %a (join ratio %.3f)"
         Synth.pp_config result.config result.join_ratio)
    ~value_label:"avg number of interactions"
    (List.map
       (fun s ->
         {
           Chart.label =
             Printf.sprintf "|goal| = %d (%d goals)" s.goal_size s.n_goals;
           values =
             List.map
               (fun (m : Runner.measurement) -> (m.strategy, m.interactions))
               s.measurements;
         })
       result.by_size)

let time_table ~paper result =
  let headers = "|goal|" :: Paper.strategy_order @ [ "paper (same order)" ] in
  let rows =
    List.map
      (fun s ->
        let cell n =
          match
            List.find_opt
              (fun (m : Runner.measurement) -> m.strategy = n)
              s.measurements
          with
          | Some m -> Printf.sprintf "%.3f" m.seconds
          | None -> "n/a"  (* no goal of this size occurred in the sampled runs *)
        in
        List.concat
          [
            [ string_of_int s.goal_size ];
            List.map cell Paper.strategy_order;
            [
              String.concat "/"
                (Array.to_list
                   (Array.map (Printf.sprintf "%.3f") paper.(s.goal_size)));
            ];
          ])
      result.by_size
  in
  Table.render ~headers rows
