(** Figure 7 driver: one synthetic configuration, goals of sizes 0..4,
    averaged over fresh instances. *)

type size_result = {
  goal_size : int;
  n_goals : int;  (** goals exercised across all instances *)
  measurements : Runner.measurement list;  (** averaged *)
}

type config_result = {
  config : Jqi_synth.Synth.config;
  product_size : float;
  join_ratio : float;  (** averaged over instances *)
  by_size : size_result list;
}

val max_goal_size : int

(** [runs] fresh instances; [goals_per_size] caps the distinct goals
    sampled per size and instance (omit for all of them — the paper's
    setting); [builder] selects the universe constructor (default
    [Jqi_core.Universe.build], the profile quotient). *)
val run :
  ?builder:
    (Jqi_relational.Relation.t -> Jqi_relational.Relation.t -> Jqi_core.Universe.t) ->
  ?seed:int -> ?runs:int -> ?goals_per_size:int -> Jqi_synth.Synth.config ->
  config_result

val interactions_chart : config_result -> string
val time_table : paper:float array array -> config_result -> string
