(* Shared experiment driver: run every strategy against a goal predicate on
   an instance and collect the two measures of §5 — number of interactions
   and inference time. *)

module Bits = Jqi_util.Bits
module Prng = Jqi_util.Prng
module Relation = Jqi_relational.Relation
module Omega = Jqi_core.Omega
module Universe = Jqi_core.Universe
module Strategy = Jqi_core.Strategy
module Oracle = Jqi_core.Oracle
module Inference = Jqi_core.Inference

type measurement = {
  strategy : string;
  interactions : float;
  seconds : float;
  verified : bool;  (* inferred predicate instance-equivalent to the goal *)
}

(* The five strategies of the paper's evaluation, in its order. *)
let paper_strategies ~seed () =
  [
    Strategy.bu;
    Strategy.td;
    Strategy.l1s;
    Strategy.l2s;
    Strategy.rnd (Prng.create seed);
  ]

let strategy_names = [ "BU"; "TD"; "L1S"; "L2S"; "RND" ]

let run_goal universe ~goal strategies =
  let oracle = Oracle.honest ~goal in
  List.map
    (fun strat ->
      let result = Inference.run universe strat oracle in
      {
        strategy = Strategy.name strat;
        interactions = float_of_int result.Inference.n_interactions;
        seconds = result.Inference.elapsed;
        verified = Inference.verified universe ~goal result;
      })
    strategies

(* Average a list of per-strategy measurement lists (all runs must use the
   same strategies in the same order). *)
let average runs =
  match runs with
  | [] -> []
  | first :: _ ->
      let runs = List.map Array.of_list runs in
      List.mapi
        (fun i (m : measurement) ->
          let col f = List.map (fun run -> f run.(i)) runs in
          {
            strategy = m.strategy;
            interactions =
              Jqi_util.Stats.mean (Array.of_list (col (fun m -> m.interactions)));
            seconds = Jqi_util.Stats.mean (Array.of_list (col (fun m -> m.seconds)));
            verified = List.for_all (fun run -> run.(i).verified) runs;
          })
        first

let best_by_interactions measurements =
  List.fold_left
    (fun acc m ->
      match acc with
      | None -> Some m
      | Some b -> if m.interactions < b.interactions then Some m else Some b)
    None measurements
