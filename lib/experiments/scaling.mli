(** Scalability sweep (beyond the paper, supporting its §5 claim): quotient
    build time, class count and interaction counts as the instance grows. *)

type point = {
  rows : int;
  product : int;
  build_seconds : float;
  classes : float;
  join_ratio : float;
  td_interactions : float;
  l2s_interactions : float;
  l2s_seconds : float;
}

(** One point per row count, averaged over [runs] fresh instances of the
    (r_arity, p_arity, rows, values) configuration. *)
val run :
  ?seed:int -> ?runs:int -> ?r_arity:int -> ?p_arity:int -> ?values:int ->
  int list -> point list

val render : point list -> string
