(* Figure 6: the TPC-H experiments (§5.1).

   For two database scales ("small" and "large", bracketing the paper's two
   reported scale factors — see DESIGN.md substitution 2), run every
   strategy against the five key/foreign-key goal joins and report the
   number of interactions (6a/6b) and the inference time (6c/6d). *)

module Relation = Jqi_relational.Relation
module Universe = Jqi_core.Universe
module Omega = Jqi_core.Omega
module Chart = Jqi_util.Chart
module Table = Jqi_util.Ascii_table
module Tpch = Jqi_tpch.Tpch

type join_result = {
  label : string;
  goal_size : int;
  product_size : float;
  join_ratio : float;
  n_classes : int;
  measurements : Runner.measurement list;
}

(* [builder] picks the universe constructor (default [Universe.build],
   i.e. the profile quotient) so the bench can A/B builders and report
   which one produced the timings. *)
let run_join ?(builder = Universe.build) ~seed (join : Tpch.goal_join) =
  let universe = builder join.r join.p in
  let omega = Universe.omega universe in
  let goal = Tpch.goal_predicate omega join in
  let measurements =
    Runner.run_goal universe ~goal (Runner.paper_strategies ~seed ())
  in
  {
    label = join.label;
    goal_size = List.length join.pairs;
    product_size =
      float_of_int (Relation.cardinality join.r)
      *. float_of_int (Relation.cardinality join.p);
    join_ratio = Universe.join_ratio universe;
    n_classes = Universe.n_classes universe;
    measurements;
  }

type setting = { name : string; scale : int; seed : int }

let run ?builder setting =
  let db = Tpch.generate ~seed:setting.seed ~scale:setting.scale () in
  List.map (run_join ?builder ~seed:setting.seed) (Tpch.joins db)

let interactions_chart ~title results =
  Chart.render_grouped ~title ~value_label:"number of interactions"
    (List.map
       (fun r ->
         {
           Chart.label =
             Printf.sprintf "%s (|D|=%.2g, ratio %.3f)" r.label r.product_size
               r.join_ratio;
           values =
             List.map
               (fun (m : Runner.measurement) -> (m.strategy, m.interactions))
               r.measurements;
         })
       results)

let time_table ~paper results =
  let headers = "goal" :: Paper.strategy_order @ [ "paper (same order)" ] in
  let rows =
    List.mapi
      (fun i r ->
        let cell n =
          match
            List.find_opt
              (fun (m : Runner.measurement) -> m.strategy = n)
              r.measurements
          with
          | Some m -> Printf.sprintf "%.3f" m.seconds
          | None -> "n/a"
        in
        List.concat
          [
            [ r.label ];
            List.map cell Paper.strategy_order;
            [
              String.concat "/"
                (Array.to_list (Array.map (Printf.sprintf "%.3f") paper.(i)));
            ];
          ])
      results
  in
  Table.render ~headers rows
