(* Theorem 6.1, empirically: random 3SAT instances are reduced to CONS⋉;
   the SAT answer on φ and the CONS⋉ answer on the reduction must agree,
   and the solving time is reported as the instance grows — the observable
   face of NP-completeness in this reproduction. *)

module Prng = Jqi_util.Prng
module Timer = Jqi_util.Timer
module Table = Jqi_util.Ascii_table
module Threesat = Jqi_sat.Threesat
module Dpll = Jqi_sat.Dpll
module Cons = Jqi_semijoin.Cons
module Reduction = Jqi_semijoin.Reduction

type point = {
  nvars : int;
  nclauses : int;
  omega_width : int;
  agree : bool;
  sat_fraction : float;
  cons_seconds : float;  (* mean *)
}

let run ?(seed = 5) ?(per_point = 5) sizes =
  let prng = Prng.create seed in
  List.map
    (fun (nvars, nclauses) ->
      let seconds = ref [] in
      let sats = ref 0 in
      let all_agree = ref true in
      let width = ref 0 in
      for _ = 1 to per_point do
        let phi = Threesat.random prng ~nvars ~nclauses in
        let phi_sat = Dpll.is_sat (Threesat.to_cnf phi) in
        let red = Reduction.build phi in
        width := Jqi_core.Omega.width red.omega;
        let cons, dt =
          Timer.time (fun () ->
              Cons.consistent red.r red.p red.omega red.sample)
        in
        seconds := dt :: !seconds;
        if cons then incr sats;
        if cons <> phi_sat then all_agree := false
      done;
      {
        nvars;
        nclauses;
        omega_width = !width;
        agree = !all_agree;
        sat_fraction = float_of_int !sats /. float_of_int per_point;
        cons_seconds = Jqi_util.Stats.mean (Array.of_list !seconds);
      })
    sizes

let render points =
  Table.render
    ~headers:
      [ "n vars"; "n clauses"; "|Ω|"; "3SAT = CONS⋉"; "sat fraction"; "CONS⋉ time (s)" ]
    (List.map
       (fun p ->
         [
           string_of_int p.nvars;
           string_of_int p.nclauses;
           string_of_int p.omega_width;
           (if p.agree then "agree" else "MISMATCH");
           Printf.sprintf "%.2f" p.sat_fraction;
           Printf.sprintf "%.4f" p.cons_seconds;
         ])
       points)
